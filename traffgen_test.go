package cptraffic_test

import (
	"bytes"
	"testing"

	cptraffic "cptraffic"
)

// TestFacadeEndToEnd exercises the public API surface the README
// advertises: world -> fit -> save/load -> generate -> 5G adapt.
func TestFacadeEndToEnd(t *testing.T) {
	tr, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 150, Duration: 3 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty world")
	}

	var buf bytes.Buffer
	if err := cptraffic.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := cptraffic.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), tr.Len())
	}

	if got := cptraffic.Methods(); len(got) != 4 {
		t.Fatalf("Methods() = %v", got)
	}
	model, err := cptraffic.FitModel(tr, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cptraffic.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	syn, err := cptraffic.GenerateTraffic(loaded, cptraffic.GenOptions{
		NumUEs: 300, StartHour: 1, Duration: cptraffic.Hour, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumUEs() != 300 {
		t.Fatalf("NumUEs = %d", syn.NumUEs())
	}

	sa, err := cptraffic.AdaptToSA(model, cptraffic.SAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	saTr, err := cptraffic.GenerateTraffic(sa, cptraffic.GenOptions{
		NumUEs: 100, StartHour: 1, Duration: cptraffic.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := saTr.CountByType(); c[cptraffic.TrackingAreaUpdate] != 0 {
		t.Fatal("5G SA emitted TAU")
	}
}

func TestFacadeRejectsUnknownMethod(t *testing.T) {
	tr, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 10, Duration: cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cptraffic.FitModel(tr, "nope", cptraffic.ClusterOptions{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestFacadeStreamingEndToEnd is the streaming twin of the end-to-end
// test: world source -> streamed fit -> generator source -> streamed
// write, each stage checked against its materializing counterpart.
func TestFacadeStreamingEndToEnd(t *testing.T) {
	wopt := cptraffic.WorldOptions{NumUEs: 120, Duration: 3 * cptraffic.Hour, Seed: 4}
	tr, err := cptraffic.SimulateWorld(wopt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cptraffic.WorldSource(wopt)
	if err != nil {
		t.Fatal(err)
	}
	collected, err := cptraffic.CollectTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	if collected.Len() != tr.Len() {
		t.Fatalf("world source produced %d events, batch %d", collected.Len(), tr.Len())
	}

	co := cptraffic.ClusterOptions{ThetaN: 25}
	want, err := cptraffic.FitModel(tr, "ours", co)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cptraffic.FitStream(src, cptraffic.FitOptions{Cluster: co})
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := want.Save(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := got.Save(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("FitStream(WorldSource) differs from FitModel(SimulateWorld)")
	}

	gopt := cptraffic.GenOptions{NumUEs: 200, StartHour: 1, Duration: cptraffic.Hour, Seed: 5}
	syn, err := cptraffic.GenerateTraffic(got, gopt)
	if err != nil {
		t.Fatal(err)
	}
	gsrc, err := cptraffic.TrafficSource(got, gopt)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := cptraffic.CollectTrace(gsrc)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != syn.Len() || streamed.NumUEs() != syn.NumUEs() {
		t.Fatalf("TrafficSource: %d events / %d UEs, batch %d / %d",
			streamed.Len(), streamed.NumUEs(), syn.Len(), syn.NumUEs())
	}

	sink := cptraffic.NewTrace()
	if err := cptraffic.GenerateTo(got, gopt, sink); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != syn.Len() {
		t.Fatalf("GenerateTo wrote %d events, batch %d", sink.Len(), syn.Len())
	}
}
