package cptraffic_test

import (
	"bytes"
	"testing"

	cptraffic "cptraffic"
)

// TestFacadeEndToEnd exercises the public API surface the README
// advertises: world -> fit -> save/load -> generate -> 5G adapt.
func TestFacadeEndToEnd(t *testing.T) {
	tr, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 150, Duration: 3 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty world")
	}

	var buf bytes.Buffer
	if err := cptraffic.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := cptraffic.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), tr.Len())
	}

	if got := cptraffic.Methods(); len(got) != 4 {
		t.Fatalf("Methods() = %v", got)
	}
	model, err := cptraffic.FitModel(tr, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cptraffic.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	syn, err := cptraffic.GenerateTraffic(loaded, cptraffic.GenOptions{
		NumUEs: 300, StartHour: 1, Duration: cptraffic.Hour, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumUEs() != 300 {
		t.Fatalf("NumUEs = %d", syn.NumUEs())
	}

	sa, err := cptraffic.AdaptToSA(model, cptraffic.SAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	saTr, err := cptraffic.GenerateTraffic(sa, cptraffic.GenOptions{
		NumUEs: 100, StartHour: 1, Duration: cptraffic.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := saTr.CountByType(); c[cptraffic.TrackingAreaUpdate] != 0 {
		t.Fatal("5G SA emitted TAU")
	}
}

func TestFacadeRejectsUnknownMethod(t *testing.T) {
	tr, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 10, Duration: cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cptraffic.FitModel(tr, "nope", cptraffic.ClusterOptions{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
