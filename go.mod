module cptraffic

go 1.22
