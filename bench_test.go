package cptraffic_test

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md). Each bench regenerates the
// corresponding artifact end to end on the world-simulator substrate at
// the default laptop scale; the rendered output of the same code is
// produced by `go run ./cmd/experiments` and recorded in EXPERIMENTS.md.
//
// The heavy fixtures (training world, four fitted models, validation
// traces) are built once and shared across benches, so the reported
// ns/op measure the experiment's analysis work, not refitting.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/experiments"
	"cptraffic/internal/mcn"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.DefaultConfig())
	})
	return benchLab
}

// prepare forces the shared fixtures outside the timed region.
func prepare(b *testing.B, l *experiments.Lab) {
	b.Helper()
	if _, err := l.Models(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

func runExp(b *testing.B, fn func(*experiments.Lab, io.Writer) error) {
	l := lab(b)
	prepare(b, l)
	for i := 0; i < b.N; i++ {
		if err := fn(l, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_EventBreakdown(b *testing.B) {
	runExp(b, experiments.Table1)
}

func BenchmarkFigure2_DiurnalBoxes(b *testing.B) {
	runExp(b, experiments.Figure2)
}

func BenchmarkTable8_FitNoClustering(b *testing.B) {
	runExp(b, experiments.Table8)
}

func BenchmarkTable9_FitWithClustering(b *testing.B) {
	runExp(b, experiments.Table9)
}

func BenchmarkTable10_SubstateFits(b *testing.B) {
	runExp(b, experiments.Table10)
}

func BenchmarkFigure3_VarianceTime(b *testing.B) {
	runExp(b, experiments.Figure3)
}

func BenchmarkFigure4_CDFvsPoisson(b *testing.B) {
	runExp(b, experiments.Figure4)
}

func BenchmarkClusterCounts(b *testing.B) {
	runExp(b, experiments.Clusters)
}

func BenchmarkTable11_BreakdownScenario1(b *testing.B) {
	runExp(b, func(l *experiments.Lab, w io.Writer) error {
		return experiments.BreakdownTable(l, w, 1)
	})
}

func BenchmarkTable4_BreakdownScenario2(b *testing.B) {
	runExp(b, func(l *experiments.Lab, w io.Writer) error {
		return experiments.BreakdownTable(l, w, 2)
	})
}

func BenchmarkTable5_MaxYDistance(b *testing.B) {
	runExp(b, experiments.Table5)
}

func BenchmarkTable6_ActivitySplit(b *testing.B) {
	runExp(b, experiments.Table6)
}

func BenchmarkFigure7_PerUECDFs(b *testing.B) {
	runExp(b, experiments.Figure7)
}

func BenchmarkTable7_FiveGProjection(b *testing.B) {
	runExp(b, experiments.Table7)
}

func BenchmarkAblationClusterThresholds(b *testing.B) {
	runExp(b, experiments.AblationClusterThresholds)
}

func BenchmarkAblationECDFResolution(b *testing.B) {
	runExp(b, experiments.AblationTableResolution)
}

func BenchmarkAblationTwoLevelVsFlat(b *testing.B) {
	runExp(b, experiments.AblationTwoLevelVsFlat)
}

// BenchmarkGrowthProjection runs the §3.1 growth/dimensioning use case.
func BenchmarkGrowthProjection(b *testing.B) {
	runExp(b, experiments.GrowthProjection)
}

// BenchmarkDiurnalFidelity validates 24-hour hour-chained generation.
func BenchmarkDiurnalFidelity(b *testing.B) {
	runExp(b, experiments.DiurnalFidelity)
}

// BenchmarkImprovementFactors reproduces the introduction's headline
// max-y-distance reduction ratios.
func BenchmarkImprovementFactors(b *testing.B) {
	runExp(b, experiments.ImprovementTable)
}

// BenchmarkGeneratorPerUEHour measures the per-UE traffic generator's
// synthesis throughput — the paper reports 1.46/0.68/0.55 seconds per
// UE-hour for phones/cars/tablets on their 12-CPU testbed (§8.1).
func BenchmarkGeneratorPerUEHour(b *testing.B) {
	l := lab(b)
	models, err := l.Models()
	if err != nil {
		b.Fatal(err)
	}
	ms := models["ours"]
	for _, d := range cp.DeviceTypes {
		mix := make([]float64, cp.NumDeviceTypes)
		mix[d] = 1
		b.Run(d.String(), func(b *testing.B) {
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				tr, err := core.Generate(ms, core.GenOptions{
					NumUEs:    100,
					StartHour: 18,
					Duration:  cp.Hour,
					Seed:      uint64(i + 1),
					DeviceMix: mix,
				})
				if err != nil {
					b.Fatal(err)
				}
				total += tr.Len()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*100)/1e9, "s/UE-hour")
		})
	}
}

// mallocs reads the cumulative heap-allocation count, for allocs/event
// metrics over a whole timed region (b.ReportAllocs reports per-op, but
// the ledger wants per-event).
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// BenchmarkGenerateThroughput is the headline perf-ledger benchmark:
// steady-state event throughput of the per-UE generator, compiled
// engine vs. the interpreted reference on the same model, seeds, and
// population. The two produce byte-identical traces
// (TestCompiledMatchesInterpreted); only the speed differs.
func BenchmarkGenerateThroughput(b *testing.B) {
	l := lab(b)
	models, err := l.Models()
	if err != nil {
		b.Fatal(err)
	}
	ms := models["ours"]
	for _, eng := range []struct {
		name      string
		interpret bool
	}{
		{"compiled", false},
		{"interpreted", true},
	} {
		b.Run(eng.name, func(b *testing.B) {
			events := 0
			b.ResetTimer()
			m0 := mallocs()
			for i := 0; i < b.N; i++ {
				tr, err := core.Generate(ms, core.GenOptions{
					NumUEs:    2000,
					StartHour: 18,
					Duration:  cp.Hour,
					Seed:      uint64(i + 1),
					Interpret: eng.interpret,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += tr.Len()
			}
			allocs := mallocs() - m0
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
		})
	}
}

// BenchmarkWorldThroughput measures the ground-truth world simulator's
// event throughput in the ledger's units (events/sec, allocs/event);
// BenchmarkWorldSimulator keeps the historical per-op shape.
func BenchmarkWorldThroughput(b *testing.B) {
	events := 0
	b.ResetTimer()
	m0 := mallocs()
	for i := 0; i < b.N; i++ {
		tr, err := world.Generate(world.Options{NumUEs: 1000, Duration: cp.Hour * 6, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		events += tr.Len()
	}
	allocs := mallocs() - m0
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
}

// BenchmarkWorldSimulator measures the ground-truth simulator's event
// throughput.
func BenchmarkWorldSimulator(b *testing.B) {
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		tr, err := world.Generate(world.Options{NumUEs: 500, Duration: cp.Hour * 6, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		events += tr.Len()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkFitParallel sweeps the fitting worker count on the Table
// 9-scale workload (the default experiment config's training world).
// Fitting was the last single-threaded stage of the worldgen → fitmodel
// → traffgen → eval pipeline; the sweep documents how far the
// per-(hour, device, cluster) fan-out scales, and the output is
// byte-identical at every worker count (TestFitDeterministicAcrossWorkers).
func BenchmarkFitParallel(b *testing.B) {
	cfg := experiments.DefaultConfig()
	tr, err := world.Generate(world.Options{
		NumUEs:   cfg.TrainUEs,
		Duration: cp.Millis(cfg.Days) * cp.Day,
		Seed:     cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Fit(tr, core.FitOptions{
					Cluster: cluster.Options{ThetaN: cfg.ThetaN},
					Workers: w,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPassRatesParallel sweeps the worker count of the Table 9
// goodness-of-fit sweep (clustered, MLE + K-S/A² per unit), the other
// repeated-fitting hot path.
func BenchmarkPassRatesParallel(b *testing.B) {
	cfg := experiments.DefaultConfig()
	tr, err := world.Generate(world.Options{
		NumUEs:   cfg.TrainUEs,
		Duration: cp.Millis(cfg.Days) * cp.Day,
		Seed:     cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	qs := eval.Table8Quantities()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.PassRates(tr, qs, eval.FitTestOptions{
					Clustered:  true,
					Cluster:    cluster.Options{ThetaN: cfg.ThetaN},
					MinSamples: 30,
					Workers:    w,
				})
			}
		})
	}
}

// BenchmarkModelFit measures the fitting pipeline itself.
func BenchmarkModelFit(b *testing.B) {
	tr, err := world.Generate(world.Options{NumUEs: 400, Duration: cp.Day, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fit(tr, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitStream measures the single-pass bounded-memory fit on the
// same workload as BenchmarkModelFit, so the two are directly
// comparable — the streamed fold produces a byte-identical model
// (TestFitStreamMatchesInMemory) for a lower peak heap.
func BenchmarkFitStream(b *testing.B) {
	tr, err := world.Generate(world.Options{NumUEs: 400, Duration: cp.Day, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitStream(tr, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitSharded measures the shard/merge fit on the
// BenchmarkModelFit workload: each op fits N hash shards concurrently
// and merges the partials into the model, which is byte-identical to
// the unsharded fit (TestShardedFitMatchesUnsharded). shards=1 is the
// PartialFit driver without sharding, for the refactor's baseline cost.
func BenchmarkFitSharded(b *testing.B) {
	tr, err := world.Generate(world.Options{NumUEs: 400, Duration: cp.Day, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	opt := core.FitOptions{Cluster: cluster.Options{ThetaN: 40}}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parts := make([]*core.PartialFit, shards)
				errs := make([]error, shards)
				var wg sync.WaitGroup
				for s := 0; s < shards; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						pf, err := core.NewPartialFit(opt)
						if err != nil {
							errs[s] = err
							return
						}
						src, err := trace.ShardSource(tr, shards, s)
						if err != nil {
							errs[s] = err
							return
						}
						if err := pf.AddSource(src); err != nil {
							errs[s] = err
							return
						}
						parts[s] = pf
					}(s)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				for s := 1; s < shards; s++ {
					if err := parts[0].Merge(parts[s]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := parts[0].Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitSketched compares bounded-memory mode (every sample pool
// capped at SketchK items by a mergeable bottom-k sketch) against the
// exact streamed fit on the same workload, reporting the peak heap
// growth per fit — the quantity SketchK exists to cap.
func BenchmarkFitSketched(b *testing.B) {
	tr, err := world.Generate(world.Options{NumUEs: 400, Duration: cp.Day, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		k    int
	}{{"exact", 0}, {"sketched-k=256", 256}} {
		b.Run(cfg.name, func(b *testing.B) {
			var peak uint64
			for i := 0; i < b.N; i++ {
				p := fitPeakHeap(b, tr, core.FitOptions{
					Cluster: cluster.Options{ThetaN: 40}, SketchK: cfg.k, Workers: 1,
				})
				if p > peak {
					peak = p
				}
			}
			b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
		})
	}
}

// fitPeakHeap runs one streamed fit under a heap sampler and returns
// the peak live-heap growth over the pre-fit baseline.
func fitPeakHeap(b *testing.B, tr *trace.Trace, opt core.FitOptions) uint64 {
	b.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	if _, err := core.FitStream(tr, opt); err != nil {
		b.Fatal(err)
	}
	close(done)
	<-sampled
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	if peak < base {
		return 0
	}
	return peak - base
}

// BenchmarkScanner measures the incremental binary-trace decoder's
// event throughput against the monolithic reader on the same bytes.
func BenchmarkScanner(b *testing.B) {
	tr, err := world.Generate(world.Options{NumUEs: 500, Duration: cp.Hour * 12, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinaryTrace(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("scanner", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			sc, err := trace.NewScanner(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for sc.Scan() {
				n++
			}
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
			if n != tr.Len() {
				b.Fatalf("scanned %d events, want %d", n, tr.Len())
			}
		}
	})
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			got, err := trace.ReadBinaryTrace(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != tr.Len() {
				b.Fatalf("read %d events, want %d", got.Len(), tr.Len())
			}
		}
	})
}

// BenchmarkStreamThroughput measures the streaming generate→write
// pipeline end to end (generator source into the binary writer), in the
// ledger's units, for the per-event path (trace.Copy) and the batched
// path (trace.CopyBatches). The two produce identical bytes
// (TestBatchedMatchesStreamed); the delta is pure pipeline overhead.
func BenchmarkStreamThroughput(b *testing.B) {
	l := lab(b)
	models, err := l.Models()
	if err != nil {
		b.Fatal(err)
	}
	ms := models["ours"]
	for _, path := range []struct {
		name string
		copy func(trace.EventSink, trace.EventSource) error
	}{
		{"batched", trace.CopyBatches},
		{"perevent", trace.Copy},
	} {
		b.Run(path.name, func(b *testing.B) {
			events := 0
			b.ResetTimer()
			m0 := mallocs()
			for i := 0; i < b.N; i++ {
				src, err := core.NewSource(ms, core.GenOptions{
					NumUEs:    2000,
					StartHour: 18,
					Duration:  cp.Hour,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				sw := trace.NewStreamWriter(io.Discard)
				cs := newBenchCountingSink(sw)
				if err := path.copy(cs, src); err != nil {
					b.Fatal(err)
				}
				if err := sw.Close(); err != nil {
					b.Fatal(err)
				}
				events += cs.events
			}
			allocs := mallocs() - m0
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
		})
	}
}

// benchCountingSink tallies events while forwarding whole batches to
// the writer's native batched face, so counting costs one call per
// batch on the batched path rather than one per event.
type benchCountingSink struct {
	sink   trace.EventSink
	bsink  trace.BatchSink
	events int
}

func newBenchCountingSink(sink trace.EventSink) *benchCountingSink {
	return &benchCountingSink{sink: sink, bsink: trace.AsBatchSink(sink)}
}

func (c *benchCountingSink) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	return c.sink.SetDevice(ue, d)
}

func (c *benchCountingSink) Write(e trace.Event) error {
	c.events++
	return c.sink.Write(e)
}

func (c *benchCountingSink) WriteBatch(batch *trace.Batch) error {
	c.events += batch.Len()
	return c.bsink.WriteBatch(batch)
}

// BenchmarkMMEThroughput measures how fast the simulated core consumes
// control events.
func BenchmarkMMEThroughput(b *testing.B) {
	tr, err := world.Generate(world.Options{NumUEs: 500, Duration: cp.Hour * 6, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mcn.New(sm.LTE2Level())
		if _, err := m.ProcessTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}
