// Command modelinfo summarizes a fitted model JSON: method, machine,
// per-device cluster statistics, and the global transition tables with
// sojourn means.
//
// Usage:
//
//	modelinfo -model model.json
package main

import (
	"flag"
	"log"
	"os"

	"cptraffic/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelinfo: ")
	modelPath := flag.String("model", "", "fitted model JSON (required)")
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ms, err := core.Load(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := ms.Describe(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
