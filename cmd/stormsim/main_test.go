package main

import (
	"bytes"
	"testing"

	"cptraffic/internal/scenario"
)

// TestRunWorkerIdentity drives one real scenario through the full
// simulate→storm pipeline at 1 and 8 workers and requires byte-equal
// trace and report output — the same contract the -selftest flag
// enforces in CI, here at a scale small enough for the race detector
// (this package is in RACE_PKGS because run() fans out worker pools).
func TestRunWorkerIdentity(t *testing.T) {
	s, err := scenario.Load("../../scenarios/stadium-event.json")
	if err != nil {
		t.Fatal(err)
	}
	s = s.Scaled(0.02)
	tb1, rb1, rep, err := run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb8, rb8, _, err := run(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tb1, tb8) {
		t.Errorf("trace bytes differ between 1 and 8 workers (%d vs %d bytes)", len(tb1), len(tb8))
	}
	if !bytes.Equal(rb1, rb8) {
		t.Errorf("report bytes differ between 1 and 8 workers")
	}
	if rep.Events == 0 {
		t.Error("scaled scenario produced zero events; the fixture no longer exercises the pipeline")
	}
	drops, retries, peakQ, _ := peaks(rep)
	if drops < 0 || retries < 0 || peakQ < 0 {
		t.Errorf("negative aggregates: drops=%d retries=%d peakQueue=%d", drops, retries, peakQ)
	}
}
