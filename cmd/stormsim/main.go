// Command stormsim runs signaling-storm scenarios end to end: it loads
// each scenario/1 file, simulates its population through the world
// simulator, replays the trace through the fault-bearing NF queueing
// model, and prints one summary row per scenario — how the storm
// propagated as queue depth, drops, retries, and attach latency.
//
// Usage:
//
//	stormsim scenarios/stadium-event.json
//	stormsim -scale 0.05 -selftest scenarios/*.json     # the CI smoke run
//	stormsim -o report.json scenarios/highway-rush-hour.json
//	stormsim -trace storm.trace scenarios/regional-outage-recovery.json
//
// With -selftest every scenario is generated twice, at one worker and
// at eight, and stormsim exits non-zero unless traces and reports are
// byte-identical — the suite's determinism contract, checked in CI.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"cptraffic/internal/mcn"
	"cptraffic/internal/report"
	"cptraffic/internal/scenario"
	"cptraffic/internal/trace"
)

// run simulates one scaled scenario at the given worker count and
// returns the trace's binary encoding, the report's JSON encoding, and
// the report itself.
func run(s *scenario.Scenario, workers int) (traceBytes, repBytes []byte, rep *mcn.StormReport, err error) {
	tr, err := scenario.Simulate(s, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	var tb bytes.Buffer
	if err := trace.WriteBinaryTrace(&tb, tr); err != nil {
		return nil, nil, nil, err
	}
	rep, err = scenario.Storm(s, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	var rb bytes.Buffer
	if err := rep.WriteJSON(&rb); err != nil {
		return nil, nil, nil, err
	}
	return tb.Bytes(), rb.Bytes(), rep, nil
}

// peaks digests a report into the summary-row aggregates.
func peaks(rep *mcn.StormReport) (drops, retries, peakQueue int, peakAttach float64) {
	for n := range rep.PerNF {
		p := &rep.PerNF[n]
		drops += p.Drops
		retries += p.Retries
		if p.PeakQueue > peakQueue {
			peakQueue = p.PeakQueue
		}
	}
	for _, m := range rep.Attach.MaxSec {
		if m > peakAttach {
			peakAttach = m
		}
	}
	return drops, retries, peakQueue, peakAttach
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stormsim: ")
	var (
		scale    = flag.Float64("scale", 1, "population scale factor (explicit capacities scale with it)")
		workers  = flag.Int("workers", 0, "simulation worker bound (0 = GOMAXPROCS; never changes output)")
		selftest = flag.Bool("selftest", false, "run each scenario at 1 and 8 workers and require byte-identical output")
		repOut   = flag.String("o", "", "write the storm report JSON here (single scenario only)")
		trOut    = flag.String("trace", "", "write the generated binary trace here (single scenario only)")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		log.Fatal("usage: stormsim [flags] scenario.json...")
	}
	if *scale <= 0 {
		log.Fatal("-scale must be positive")
	}
	if (*repOut != "" || *trOut != "") && len(files) != 1 {
		log.Fatal("-o and -trace take exactly one scenario")
	}

	tbl := report.Table{Header: []string{
		"Scenario", "UEs", "Events", "Injected", "Drops", "Retries", "Peak queue", "Peak attach",
	}}
	failed := false
	for _, path := range files {
		s, err := scenario.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		s = s.Scaled(*scale)
		tb, rb, rep, err := run(s, *workers)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if *selftest {
			tb1, rb1, _, err := run(s, 1)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			tb8, rb8, _, err := run(s, 8)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			if !bytes.Equal(tb1, tb8) || !bytes.Equal(rb1, rb8) {
				fmt.Fprintf(os.Stderr, "stormsim: %s: FAIL output depends on worker count\n", path)
				failed = true
			} else if !bytes.Equal(tb, tb1) || !bytes.Equal(rb, rb1) {
				fmt.Fprintf(os.Stderr, "stormsim: %s: FAIL default workers diverge from pinned workers\n", path)
				failed = true
			}
		}
		if *repOut != "" {
			if err := os.WriteFile(*repOut, rb, 0o644); err != nil {
				log.Fatal(err)
			}
		}
		if *trOut != "" {
			if err := os.WriteFile(*trOut, tb, 0o644); err != nil {
				log.Fatal(err)
			}
		}
		drops, retries, peakQ, peakA := peaks(rep)
		tbl.AddRow(rep.Scenario,
			fmt.Sprintf("%d", s.Population.UEs),
			fmt.Sprintf("%d", rep.Events),
			fmt.Sprintf("%d", rep.InjectedAttaches),
			fmt.Sprintf("%d", drops),
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", peakQ),
			fmt.Sprintf("%.2f s", peakA))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if failed {
		os.Exit(1)
	}
	if *selftest {
		fmt.Println("\nselftest: all scenarios byte-identical across worker counts")
	}
}
