package main

import (
	"bytes"
	"encoding/json"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cptraffic/internal/lint"
)

// The CLI is tested end to end against a throwaway module: run() is
// driven directly (no subprocess), so exit codes and output streams
// are observable without build machinery. Each test writes its own
// module because -fix mutates it.

// writeModule lays out a minimal module with one exhaustive finding:
// a partial switch over a cp enum inside a gated internal/core
// package.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixmod\n\ngo 1.22\n",
		"internal/cp/cp.go": `// Package cp declares the fixture enum.
package cp

// EventType enumerates control-plane event kinds.
type EventType uint8

const (
	Attach EventType = iota
	Detach
	ServiceRequest
)
`,
		"internal/core/classify.go": `// Package core hosts one deliberately partial switch.
package core

import "fixmod/internal/cp"

// Classify drops ServiceRequest on the floor.
func Classify(e cp.EventType) int {
	switch e {
	case cp.Attach:
		return 1
	case cp.Detach:
		return 2
	}
	return 0
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCplint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeDirtyTree(t *testing.T) {
	dir := writeModule(t)
	code, stdout, stderr := runCplint(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "exhaustive") || !strings.Contains(stdout, "classify.go") {
		t.Errorf("diagnostic missing from output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "issue(s)") {
		t.Errorf("summary missing from stderr: %q", stderr)
	}
}

func TestExitCodeCleanTree(t *testing.T) {
	dir := writeModule(t)
	// Restricted to an analyzer with nothing to say, the tree is clean.
	code, stdout, _ := runCplint(t, "-C", dir, "-only", "detsource", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s", code, stdout)
	}
	if stdout != "" {
		t.Errorf("clean run printed: %q", stdout)
	}
}

func TestExitCodeUsageErrors(t *testing.T) {
	dir := writeModule(t)
	if code, _, stderr := runCplint(t, "-C", dir, "-only", "nosuch", "./..."); code != 2 {
		t.Errorf("unknown -only: exit code = %d, want 2 (stderr %q)", code, stderr)
	} else if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("unknown -only stderr: %q", stderr)
	}
	if code, _, _ := runCplint(t, "-badflag"); code != 2 {
		t.Errorf("bad flag: exit code = %d, want 2", code)
	}
	// A directory with no module is a load error, not a finding.
	empty := t.TempDir()
	if code, _, _ := runCplint(t, "-C", empty, "./..."); code != 2 {
		t.Errorf("load failure: exit code = %d, want 2", code)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCplint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"ctxflow", "detmap", "detsource", "exhaustive", "floatfold", "frozen", "goleak", "guardedby", "hotalloc", "hotcall", "parshare", "retain"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

// TestJSONSchema pins the cplint/4 report shape: stable field names,
// module-relative forward-slash paths, and byte-determinism across
// worker counts.
func TestJSONSchema(t *testing.T) {
	dir := writeModule(t)
	code, stdout, _ := runCplint(t, "-C", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var rep struct {
		Version     string `json:"version"`
		Packages    int    `json:"packages"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
			Fixable  bool   `json:"fixable"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not the expected JSON: %v\n%s", err, stdout)
	}
	if rep.Version != "cplint/4" {
		t.Errorf("version = %q, want cplint/4", rep.Version)
	}
	if rep.Packages != 2 {
		t.Errorf("packages = %d, want 2", rep.Packages)
	}
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(rep.Diagnostics), stdout)
	}
	d := rep.Diagnostics[0]
	if d.Analyzer != "exhaustive" || d.File != "internal/core/classify.go" || d.Line == 0 || d.Column == 0 || !d.Fixable {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if !strings.Contains(d.Message, "missing ServiceRequest") {
		t.Errorf("message = %q", d.Message)
	}

	for _, workers := range []string{"1", "8"} {
		_, again, _ := runCplint(t, "-C", dir, "-json", "-workers", workers, "./...")
		if again != stdout {
			t.Errorf("-workers %s changed the report bytes", workers)
		}
	}
}

func TestSARIFReport(t *testing.T) {
	dir := writeModule(t)
	sarif := filepath.Join(t.TempDir(), "cplint.sarif")
	code, _, _ := runCplint(t, "-C", dir, "-sarif", sarif, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cplint" || len(run.Tool.Driver.Rules) != 12 {
		t.Errorf("driver = %q with %d rules, want cplint with 12", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "exhaustive" {
		t.Fatalf("unexpected results: %+v", run.Results)
	}
	loc := run.Results[0].Locations[0].Physical
	if loc.Artifact.URI != "internal/core/classify.go" || loc.Region.StartLine == 0 {
		t.Errorf("unexpected location: %+v", loc)
	}
}

// TestFixCollisionRefused pins the cross-analyzer overlap policy of
// ApplyFixes, which -fix exposes as exit 2: no pair of current
// analyzers can naturally propose edits on the same span (hotcall
// inserts at declarations, exhaustive inside switches, ctxflow rewrites
// arguments), so the collision is fabricated — two analyzers rewriting
// the same bytes must refuse the whole run before any file is written,
// naming both analyzers, while a same-analyzer overlap keeps the first
// edit and defers the rest.
func TestFixCollisionRefused(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "clash.go")
	src := "package clash\n\nvar v = 1\n"
	if err := os.WriteFile(target, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pos := func(offset, line int) lint.TextEdit {
		return lint.TextEdit{
			Pos: token.Position{Filename: target, Offset: offset, Line: line},
			End: token.Position{Filename: target, Offset: offset + 1, Line: line},
			New: "w",
		}
	}
	diag := func(analyzer string, e lint.TextEdit) lint.Diagnostic {
		return lint.Diagnostic{
			Analyzer: analyzer,
			Pos:      e.Pos,
			Message:  "fabricated",
			Fixes:    []lint.SuggestedFix{{Message: "rewrite", Edits: []lint.TextEdit{e}}},
		}
	}

	// Two analyzers, same span: refused, file untouched.
	off := strings.Index(src, "v =")
	files, applied, err := lint.ApplyFixes([]lint.Diagnostic{
		diag("exhaustive", pos(off, 3)),
		diag("ctxflow", pos(off, 3)),
	})
	if err == nil {
		t.Fatalf("overlapping cross-analyzer fixes applied: files=%v applied=%d", files, applied)
	}
	for _, name := range []string{"exhaustive", "ctxflow", "clash.go:3"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("collision error %q does not name %q", err, name)
		}
	}
	after, rerr := os.ReadFile(target)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(after) != src {
		t.Errorf("refused run still modified the file:\n%s", after)
	}

	// Same analyzer, same span: first edit wins, no error.
	files, applied, err = lint.ApplyFixes([]lint.Diagnostic{
		diag("exhaustive", pos(off, 3)),
		diag("exhaustive", pos(off, 3)),
	})
	if err != nil {
		t.Fatalf("same-analyzer overlap should defer, not fail: %v", err)
	}
	if len(files) != 1 || applied != 1 {
		t.Errorf("same-analyzer overlap: files=%v applied=%d, want 1 file 1 fix", files, applied)
	}
	after, rerr = os.ReadFile(target)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.Contains(string(after), "w = 1") {
		t.Errorf("kept edit not applied:\n%s", after)
	}
}

// TestFixIdempotent pins the -fix contract: the suggested edit is
// applied, the result is gofmt-clean and analyzer-clean, and a second
// run changes nothing.
func TestFixIdempotent(t *testing.T) {
	dir := writeModule(t)
	target := filepath.Join(dir, "internal", "core", "classify.go")

	code, stdout, _ := runCplint(t, "-C", dir, "-fix", "./...")
	if code != 0 {
		t.Fatalf("first -fix run: exit code = %d, want 0 (all findings fixable)\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "fixed ") || !strings.Contains(stdout, "classify.go") {
		t.Errorf("fixed file not reported:\n%s", stdout)
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "default:") || !strings.Contains(string(fixed), "ServiceRequest") {
		t.Errorf("fix not applied:\n%s", fixed)
	}
	formatted, err := format.Source(fixed)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, fixed) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", fixed)
	}

	// The fixed tree is clean...
	if code, stdout, _ := runCplint(t, "-C", dir, "./..."); code != 0 {
		t.Errorf("fixed tree still dirty (exit %d):\n%s", code, stdout)
	}
	// ...and a second -fix run touches nothing.
	code, stdout, _ = runCplint(t, "-C", dir, "-fix", "./...")
	if code != 0 || strings.Contains(stdout, "fixed ") {
		t.Errorf("second -fix run not a no-op (exit %d):\n%s", code, stdout)
	}
	again, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, fixed) {
		t.Errorf("second -fix run changed bytes")
	}
}
