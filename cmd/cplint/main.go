// Command cplint runs the repo's custom static-analysis suite: the
// twelve analyzers in internal/lint that turn the determinism,
// state-machine, hot-path, immutability, and concurrency invariants —
// including the serving-era lock-guard (guardedby), goroutine-lifetime
// (goleak), and cancellation-propagation (ctxflow) contracts — into
// build-time errors.
//
// Usage:
//
//	cplint [-only detmap,frozen] [-fix] [-json] [-sarif file] [packages]
//
// With no package arguments it analyzes ./... . The exit status is 0
// when the tree is clean (or -fix resolved everything), 1 when any
// diagnostic remains, and 2 on a load or usage error — mirroring the
// go/analysis multichecker convention so `make check` and CI can
// distinguish "invariant violated" from "could not analyze".
//
// -fix applies each diagnostic's suggested edit, gofmts the result,
// and is idempotent: a second run finds the fixed sites clean. When two
// different analyzers propose edits on overlapping spans, -fix refuses
// before touching any file and exits 2 naming both analyzers.
// -json writes the stable cplint/4 report to stdout; -sarif writes a
// SARIF 2.1.0 log for GitHub code scanning to the named file. Both
// are byte-deterministic for a given tree, independent of -workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cptraffic/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes, gofmt the touched files, and report what remains")
	jsonOut := fs.Bool("json", false, "write the cplint/4 JSON report to stdout instead of plain text")
	sarif := fs.String("sarif", "", "also write a SARIF 2.1.0 report to this `file`")
	workers := fs.Int("workers", 0, "parallel type-check/analyze workers (0 = GOMAXPROCS; output is identical for any value)")
	dir := fs.String("C", "", "run in `dir` (the module to analyze) instead of the current directory")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cplint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "cplint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.Loader{Dir: *dir, Workers: *workers}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cplint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "cplint: no packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}

	diags := lint.AnalyzeWorkers(pkgs, analyzers, *workers)

	if *fix {
		files, applied, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "cplint: applying fixes: %v\n", err)
			return 2
		}
		for _, f := range files {
			fmt.Fprintf(stdout, "fixed %s\n", f)
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "cplint: applied %d fix(es) in %d file(s)\n", applied, len(files))
		}
		// Fixed diagnostics are resolved; only the ones needing a human
		// keep the exit status red.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	base := *dir
	if base == "" {
		base, _ = os.Getwd()
	}
	if *sarif != "" {
		f, err := os.Create(*sarif)
		if err != nil {
			fmt.Fprintf(stderr, "cplint: %v\n", err)
			return 2
		}
		werr := lint.WriteSARIF(f, analyzers, diags, base)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "cplint: writing SARIF: %v\n", werr)
			return 2
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags, len(pkgs), base); err != nil {
			fmt.Fprintf(stderr, "cplint: writing JSON: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cplint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
