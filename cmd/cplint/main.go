// Command cplint runs the repo's custom static-analysis suite: the
// four analyzers in internal/lint that turn the determinism, hot-path,
// and concurrency invariants into build-time errors.
//
// Usage:
//
//	cplint [-only detmap,parshare] [packages]
//
// With no package arguments it analyzes ./... . The exit status is 0
// when the tree is clean, 1 when any analyzer reported a diagnostic,
// and 2 on a load or usage error — mirroring the go/analysis
// multichecker convention so `make check` and CI can distinguish
// "invariant violated" from "could not analyze".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cptraffic/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cplint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "cplint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var loader lint.Loader
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cplint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Analyze(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cplint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
