// Command evalgen compares a synthesized trace against a real one: the
// macroscopic breakdown differences (Tables 4/11) and the microscopic
// per-UE CDF distances (Tables 5/6).
//
// Usage:
//
//	evalgen -real real.trace -syn syn.trace
package main

import (
	"flag"
	"log"
	"os"

	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/report"
	"cptraffic/internal/trace"
)

func readTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadAuto(f)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalgen: ")
	var (
		realPath = flag.String("real", "", "reference (real) trace")
		synPath  = flag.String("syn", "", "synthesized trace")
	)
	flag.Parse()
	if *realPath == "" || *synPath == "" {
		log.Fatal("-real and -syn are required")
	}
	realTr := readTrace(*realPath)
	synTr := readTrace(*synPath)

	macro := report.Table{
		Title:  "Macroscopic — breakdown shares and differences (syn - real)",
		Header: []string{"Device", "Row", "Real", "Syn", "Diff"},
	}
	for _, d := range cp.DeviceTypes {
		r := eval.ComputeBreakdown(realTr, d)
		s := eval.ComputeBreakdown(synTr, d)
		if r.Total == 0 && s.Total == 0 {
			continue
		}
		diff := eval.BreakdownDiff(r, s)
		for _, k := range eval.BreakdownKeys {
			macro.AddRow(d.String(), k, report.Pct(r.Share[k]), report.Pct(s.Share[k]),
				report.SignedPct(diff[k]))
		}
	}
	if err := macro.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	micro := report.Table{
		Title:  "Microscopic — max y-distance between CDFs (real vs syn)",
		Header: []string{"Device", "SRV_REQ/UE", "S1_CONN_REL/UE", "CONNECTED", "IDLE"},
	}
	for _, d := range cp.DeviceTypes {
		if len(realTr.UEsOfType(d)) == 0 {
			continue
		}
		m := eval.ComputeMicroDistances(realTr, synTr, d)
		micro.AddRow(d.String(), report.Pct(m.SrvReqPerUE), report.Pct(m.S1RelPerUE),
			report.Pct(m.Connected), report.Pct(m.Idle))
	}
	if err := micro.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	split := report.Table{
		Title:  "Activity split — inactive (<=2 events) vs active UEs, per-UE count distance",
		Header: []string{"Device", "Event", "Inactive", "Active"},
	}
	for _, d := range cp.DeviceTypes {
		if len(realTr.UEsOfType(d)) == 0 {
			continue
		}
		for _, e := range []cp.EventType{cp.ServiceRequest, cp.S1ConnRelease} {
			in, act := eval.ActivitySplit(realTr, synTr, d, e)
			split.AddRow(d.String(), e.String(), report.Pct(in), report.Pct(act))
		}
	}
	if err := split.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
