// Command worldgen synthesizes a ground-truth control-plane trace from
// the behavioral world simulator — the stand-in for a carrier trace
// collection (see DESIGN.md). The output feeds cmd/fitmodel.
//
// Usage:
//
//	worldgen -ues 2000 -hours 48 -seed 1 -o world.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worldgen: ")
	var (
		ues    = flag.Int("ues", 2000, "population size")
		hours  = flag.Int("hours", 48, "trace duration in hours (epoch is midnight)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "-", "output file ('-' for stdout)")
		binOut = flag.Bool("binary", false, "write the compact binary trace format")
		phones = flag.Float64("phones", -1, "phone share override (with -cars, -tablets)")
		cars   = flag.Float64("cars", -1, "connected-car share override")
		tabs   = flag.Float64("tablets", -1, "tablet share override")
	)
	flag.Parse()

	opt := world.Options{
		NumUEs:   *ues,
		Duration: cp.Millis(*hours) * cp.Hour,
		Seed:     *seed,
	}
	if *phones >= 0 || *cars >= 0 || *tabs >= 0 {
		if *phones < 0 || *cars < 0 || *tabs < 0 {
			log.Fatal("set all of -phones, -cars, -tablets or none")
		}
		opt.Mix = []float64{*phones, *cars, *tabs}
	}
	tr, err := world.Generate(opt)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	writeFn := trace.WriteTrace
	if *binOut {
		writeFn = trace.WriteBinaryTrace
	}
	if err := writeFn(w, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "worldgen: %d UEs, %d events over %d h\n", tr.NumUEs(), tr.Len(), *hours)
}
