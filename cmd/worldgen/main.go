// Command worldgen synthesizes a ground-truth control-plane trace from
// the behavioral world simulator — the stand-in for a carrier trace
// collection (see DESIGN.md). The output feeds cmd/fitmodel.
//
// Usage:
//
//	worldgen -ues 2000 -hours 48 -seed 1 -o world.trace
//	worldgen -ues 2000000 -hours 24 -stream -binary -o big.trace
//	worldgen -scenario scenarios/stadium-event.json -o stadium.trace
//
// With -scenario the population, window, seed, mix, and scales come
// from a scenario/1 file (see SCENARIOS.md) and the corresponding
// flags are rejected; the fault schedule is applied by cmd/stormsim,
// not here.
//
// With -stream the population is simulated and written incrementally —
// peak memory is O(UEs), not the trace size — producing byte-identical
// output to the in-memory path.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cptraffic/internal/cp"
	"cptraffic/internal/prof"
	"cptraffic/internal/scenario"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

// countingSink wraps an EventSink, tallying what passes through. It
// forwards whole batches to the writer's native batched face, so
// counting does not force the stream back onto the per-event path.
type countingSink struct {
	sink        trace.EventSink
	bsink       trace.BatchSink
	ues, events int
}

func newCountingSink(sink trace.EventSink) *countingSink {
	return &countingSink{sink: sink, bsink: trace.AsBatchSink(sink)}
}

func (c *countingSink) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	c.ues++
	return c.sink.SetDevice(ue, d)
}

func (c *countingSink) Write(e trace.Event) error {
	c.events++
	return c.sink.Write(e)
}

func (c *countingSink) WriteBatch(b *trace.Batch) error {
	c.events += b.Len()
	return c.bsink.WriteBatch(b)
}

// streamOut copies src into w in the chosen format over the batched
// pipeline — the source fills struct-of-arrays batches and the writer
// drains them whole — returning the counts for the summary line. The
// bytes are identical to the per-event path (test-enforced).
func streamOut(w io.Writer, src trace.EventSource, binary bool) (ues, events int, err error) {
	var sink trace.EventSink
	var closeFn func() error
	if binary {
		sw := trace.NewStreamWriter(w)
		sink, closeFn = sw, sw.Close
	} else {
		tw := trace.NewTextWriter(w)
		sink, closeFn = tw, tw.Close
	}
	cs := newCountingSink(sink)
	if err := trace.CopyBatches(cs, src); err != nil {
		return 0, 0, err
	}
	return cs.ues, cs.events, closeFn()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("worldgen: ")
	var (
		ues     = flag.Int("ues", 2000, "population size")
		hours   = flag.Int("hours", 48, "trace duration in hours (epoch is midnight)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "-", "output file ('-' for stdout)")
		binOut  = flag.Bool("binary", false, "write the compact binary trace format")
		stream  = flag.Bool("stream", false, "simulate and write incrementally (O(UEs) memory, identical output)")
		phones  = flag.Float64("phones", -1, "phone share override (with -cars, -tablets)")
		cars    = flag.Float64("cars", -1, "connected-car share override")
		tabs    = flag.Float64("tablets", -1, "tablet share override")
		scnPath = flag.String("scenario", "", "take population/window/seed/mix/scales from this scenario/1 file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	opt := world.Options{
		NumUEs:   *ues,
		Duration: cp.Millis(*hours) * cp.Hour,
		Seed:     *seed,
	}
	if *phones >= 0 || *cars >= 0 || *tabs >= 0 {
		if *phones < 0 || *cars < 0 || *tabs < 0 {
			log.Fatal("set all of -phones, -cars, -tablets or none")
		}
		opt.Mix = []float64{*phones, *cars, *tabs}
	}
	if *scnPath != "" {
		if opt.Mix != nil {
			log.Fatal("-scenario conflicts with -phones/-cars/-tablets; set population.mix in the file")
		}
		s, err := scenario.Load(*scnPath)
		if err != nil {
			log.Fatal(err)
		}
		opt = s.WorldOptions(0)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	if *stream {
		src, err := world.NewSource(opt)
		if err != nil {
			log.Fatal(err)
		}
		nUEs, nEvents, err := streamOut(w, src, *binOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "worldgen: %d UEs, %d events over %.1f h (streamed)\n", nUEs, nEvents, float64(opt.Duration)/float64(cp.Hour))
		return
	}

	tr, err := world.Generate(opt)
	if err != nil {
		log.Fatal(err)
	}
	writeFn := trace.WriteTrace
	if *binOut {
		writeFn = trace.WriteBinaryTrace
	}
	if err := writeFn(w, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "worldgen: %d UEs, %d events over %.1f h\n", tr.NumUEs(), tr.Len(), float64(opt.Duration)/float64(cp.Hour))
}
