// Command evalfit runs the paper's distribution-fitting analysis on a
// trace: the Table 8/9/10 goodness-of-fit sweeps and the Figure 3/4
// burstiness and tail analyses.
//
// Usage:
//
//	evalfit -i world.trace -exp table8
//	evalfit -i world.trace -exp fig3 > fig3.csv
//	evalfit -i big.trace -exp table9 -stream
//
// With -stream the per-UE quantities are gathered in one incremental
// pass over the trace file instead of loading it, producing identical
// tables (fig3 still materializes the trace — its variance-time curves
// need random access to the event series). -stream requires a file path.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/report"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalfit: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		exp     = flag.String("exp", "table8", "experiment: table8 | table9 | table10 | fig3 | fig4")
		thetaN  = flag.Int("thetan", 100, "clustering θn for table9/table10")
		minN    = flag.Int("minsamples", 8, "minimum pooled sample size per tested unit")
		workers = flag.Int("workers", 0, "sweep worker count (0 = all CPUs); never changes the rates")
		stream  = flag.Bool("stream", false, "collect quantities by scanning the trace file incrementally (identical results)")
	)
	flag.Parse()

	// Both paths expose the trace as an EventSource; -stream keeps it
	// on disk, otherwise it is parsed once up front. The experiments
	// that can run incrementally never call loadTrace.
	var src trace.EventSource
	var tr *trace.Trace
	if *stream {
		if *in == "-" {
			log.Fatal("-stream needs a seekable trace file; -i - (stdin) cannot be scanned twice")
		}
		fileSrc, err := trace.NewFileSource(*in)
		if err != nil {
			log.Fatal(err)
		}
		src = fileSrc
	} else {
		r := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		loaded, err := trace.ReadAuto(r)
		if err != nil {
			log.Fatal(err)
		}
		tr, src = loaded, loaded
	}
	loadTrace := func() *trace.Trace {
		if tr == nil {
			fmt.Fprintln(os.Stderr, "evalfit: fig3 needs the full event series; materializing the trace")
			loaded, err := trace.Collect(src)
			if err != nil {
				log.Fatal(err)
			}
			tr = loaded
		}
		return tr
	}

	sweep := func(quantities []eval.Quantity, opt eval.FitTestOptions) map[eval.DistTest]map[cp.DeviceType]map[eval.Quantity]float64 {
		if *stream {
			rates, err := eval.PassRatesSource(src, quantities, opt)
			if err != nil {
				log.Fatal(err)
			}
			return rates
		}
		return eval.PassRates(tr, quantities, opt)
	}
	samples := func(q eval.Quantity) []float64 {
		if *stream {
			xs, err := eval.QuantitySamplesSource(src, cp.Phone, q)
			if err != nil {
				log.Fatal(err)
			}
			return xs
		}
		return eval.QuantitySamples(tr, cp.Phone, q)
	}

	switch *exp {
	case "table8":
		qs := eval.Table8Quantities()
		renderRates("Table 8 — no clustering", qs,
			sweep(qs, eval.FitTestOptions{MinSamples: *minN, Workers: *workers}))
	case "table9":
		qs := eval.Table8Quantities()
		renderRates("Table 9 — with adaptive clustering", qs,
			sweep(qs, eval.FitTestOptions{
				Clustered: true, Cluster: cluster.Options{ThetaN: *thetaN},
				MinSamples: *minN, Workers: *workers}))
	case "table10":
		qs := eval.Table10Quantities()
		renderRates("Table 10 — second-level transitions", qs,
			sweep(qs, eval.FitTestOptions{
				Clustered: true, Cluster: cluster.Options{ThetaN: *thetaN},
				MinSamples: *minN, Workers: *workers}))
	case "fig3":
		full := loadTrace()
		_, hi := full.Span()
		for _, q := range []eval.Quantity{
			{Kind: eval.QStateSojourn, State: cp.StateConnected},
			{Kind: eval.QStateSojourn, State: cp.StateIdle},
			{Kind: eval.QInterArrival, Event: cp.Handover},
			{Kind: eval.QInterArrival, Event: cp.TrackingAreaUpdate},
		} {
			phones := eval.UESet(full.UEsOfType(cp.Phone))
			vt := eval.VarianceTimeFor(full, phones, q, hi)
			fmt.Printf("# Figure 3 — %s (phones), mean log10 gap = %.2f\n", q, vt.LogGap)
			scales := make([]float64, len(vt.Observed))
			obs := make([]float64, len(vt.Observed))
			ref := make([]float64, len(vt.Poisson))
			for i := range vt.Observed {
				scales[i] = vt.Observed[i].ScaleSec
				obs[i] = vt.Observed[i].NormVar
				ref[i] = vt.Poisson[i].NormVar
			}
			if err := report.Series(os.Stdout, []string{"scale_s", "observed", "poisson"}, scales, obs, ref); err != nil {
				log.Fatal(err)
			}
		}
	case "fig4":
		for _, q := range []eval.Quantity{
			{Kind: eval.QStateSojourn, State: cp.StateConnected},
			{Kind: eval.QStateSojourn, State: cp.StateIdle},
			{Kind: eval.QInterArrival, Event: cp.Handover},
			{Kind: eval.QInterArrival, Event: cp.TrackingAreaUpdate},
		} {
			xs := samples(q)
			if len(xs) < 2 {
				continue
			}
			c, err := eval.CDFvsPoisson(xs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("# Figure 4 — %s (phones): observed [%.2f, %.2f] s vs fitted [%.2f, %.2f] s\n",
				q, c.MinObs, c.MaxObs, c.MinFit, c.MaxFit)
			if err := report.Series(os.Stdout, []string{"x", "F_observed", "F_fitted"},
				c.Sample.X, c.Sample.F, c.Fitted.F); err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// renderRates prints one sweep's table. Devices absent from the trace
// have no rate entries at all, so presence is read off the rates map
// instead of needing the trace.
func renderRates(title string, qs []eval.Quantity,
	rates map[eval.DistTest]map[cp.DeviceType]map[eval.Quantity]float64) {
	header := []string{"Test", "Device"}
	for _, q := range qs {
		header = append(header, q.String())
	}
	tbl := report.Table{Title: title, Header: header}
	for t := 0; t < eval.NumDistTests; t++ {
		for _, d := range cp.DeviceTypes {
			if len(rates[eval.DistTest(t)][d]) == 0 {
				continue
			}
			row := []string{eval.DistTest(t).String(), d.String()}
			for _, q := range qs {
				v := rates[eval.DistTest(t)][d][q]
				if math.IsNaN(v) {
					row = append(row, "-")
				} else {
					row = append(row, report.Pct(v))
				}
			}
			tbl.AddRow(row...)
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
