// Command evalfit runs the paper's distribution-fitting analysis on a
// trace: the Table 8/9/10 goodness-of-fit sweeps and the Figure 3/4
// burstiness and tail analyses.
//
// Usage:
//
//	evalfit -i world.trace -exp table8
//	evalfit -i world.trace -exp fig3 > fig3.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/report"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalfit: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		exp     = flag.String("exp", "table8", "experiment: table8 | table9 | table10 | fig3 | fig4")
		thetaN  = flag.Int("thetan", 100, "clustering θn for table9/table10")
		minN    = flag.Int("minsamples", 8, "minimum pooled sample size per tested unit")
		workers = flag.Int("workers", 0, "sweep worker count (0 = all CPUs); never changes the rates")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.ReadAuto(r)
	if err != nil {
		log.Fatal(err)
	}

	switch *exp {
	case "table8":
		rates := eval.PassRates(tr, eval.Table8Quantities(), eval.FitTestOptions{
			MinSamples: *minN, Workers: *workers})
		renderRates(tr, "Table 8 — no clustering", eval.Table8Quantities(), rates)
	case "table9":
		rates := eval.PassRates(tr, eval.Table8Quantities(), eval.FitTestOptions{
			Clustered: true, Cluster: cluster.Options{ThetaN: *thetaN},
			MinSamples: *minN, Workers: *workers})
		renderRates(tr, "Table 9 — with adaptive clustering", eval.Table8Quantities(), rates)
	case "table10":
		rates := eval.PassRates(tr, eval.Table10Quantities(), eval.FitTestOptions{
			Clustered: true, Cluster: cluster.Options{ThetaN: *thetaN},
			MinSamples: *minN, Workers: *workers})
		renderRates(tr, "Table 10 — second-level transitions", eval.Table10Quantities(), rates)
	case "fig3":
		_, hi := tr.Span()
		for _, q := range []eval.Quantity{
			{Kind: eval.QStateSojourn, State: cp.StateConnected},
			{Kind: eval.QStateSojourn, State: cp.StateIdle},
			{Kind: eval.QInterArrival, Event: cp.Handover},
			{Kind: eval.QInterArrival, Event: cp.TrackingAreaUpdate},
		} {
			phones := eval.UESet(tr.UEsOfType(cp.Phone))
			vt := eval.VarianceTimeFor(tr, phones, q, hi)
			fmt.Printf("# Figure 3 — %s (phones), mean log10 gap = %.2f\n", q, vt.LogGap)
			scales := make([]float64, len(vt.Observed))
			obs := make([]float64, len(vt.Observed))
			ref := make([]float64, len(vt.Poisson))
			for i := range vt.Observed {
				scales[i] = vt.Observed[i].ScaleSec
				obs[i] = vt.Observed[i].NormVar
				ref[i] = vt.Poisson[i].NormVar
			}
			if err := report.Series(os.Stdout, []string{"scale_s", "observed", "poisson"}, scales, obs, ref); err != nil {
				log.Fatal(err)
			}
		}
	case "fig4":
		for _, q := range []eval.Quantity{
			{Kind: eval.QStateSojourn, State: cp.StateConnected},
			{Kind: eval.QStateSojourn, State: cp.StateIdle},
			{Kind: eval.QInterArrival, Event: cp.Handover},
			{Kind: eval.QInterArrival, Event: cp.TrackingAreaUpdate},
		} {
			xs := eval.QuantitySamples(tr, cp.Phone, q)
			if len(xs) < 2 {
				continue
			}
			c, err := eval.CDFvsPoisson(xs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("# Figure 4 — %s (phones): observed [%.2f, %.2f] s vs fitted [%.2f, %.2f] s\n",
				q, c.MinObs, c.MaxObs, c.MinFit, c.MaxFit)
			if err := report.Series(os.Stdout, []string{"x", "F_observed", "F_fitted"},
				c.Sample.X, c.Sample.F, c.Fitted.F); err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func renderRates(tr *trace.Trace, title string, qs []eval.Quantity,
	rates map[eval.DistTest]map[cp.DeviceType]map[eval.Quantity]float64) {
	header := []string{"Test", "Device"}
	for _, q := range qs {
		header = append(header, q.String())
	}
	tbl := report.Table{Title: title, Header: header}
	for t := 0; t < eval.NumDistTests; t++ {
		for _, d := range cp.DeviceTypes {
			if len(tr.UEsOfType(d)) == 0 {
				continue
			}
			row := []string{eval.DistTest(t).String(), d.String()}
			for _, q := range qs {
				v := rates[eval.DistTest(t)][d][q]
				if math.IsNaN(v) {
					row = append(row, "-")
				} else {
					row = append(row, report.Pct(v))
				}
			}
			tbl.AddRow(row...)
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
