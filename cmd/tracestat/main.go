// Command tracestat summarizes a control-plane trace: population and
// event totals, per-device breakdowns with the HO/TAU macro-state split,
// the diurnal load profile, per-network-function transaction load, and a
// protocol-conformance check against the two-level machine.
//
// Usage:
//
//	tracestat -i world.trace
//	tracestat -i syn.trace -machine 5g-sa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/mcn"
	"cptraffic/internal/report"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		machine = flag.String("machine", "lte", "conformance machine: lte | emm-ecm | 5g-sa")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.ReadAuto(r)
	if err != nil {
		log.Fatal(err)
	}
	var m *sm.Machine
	switch strings.ToLower(*machine) {
	case "lte":
		m = sm.LTE2Level()
	case "emm-ecm":
		m = sm.EMMECM()
	case "5g-sa":
		m = sm.FiveGSA()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	lo, hi := tr.Span()
	fmt.Printf("UEs: %d   events: %d   span: [%.1f h, %.1f h)\n\n",
		tr.NumUEs(), tr.Len(), lo.Seconds()/3600, hi.Seconds()/3600)

	devTbl := report.Table{
		Title:  "Per-device breakdown (HO/TAU split by macro state)",
		Header: append([]string{"Device", "UEs", "Events"}, eval.BreakdownKeys...),
	}
	for _, d := range cp.DeviceTypes {
		ues := tr.UEsOfType(d)
		if len(ues) == 0 {
			continue
		}
		b := eval.ComputeBreakdown(tr, d)
		row := []string{d.String(), fmt.Sprintf("%d", len(ues)), fmt.Sprintf("%d", b.Total)}
		for _, k := range eval.BreakdownKeys {
			row = append(row, report.Pct(b.Share[k]))
		}
		devTbl.AddRow(row...)
	}
	if err := devTbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Diurnal profile.
	var perHour [24]int
	for _, e := range tr.Events {
		perHour[e.T.HourOfDay()]++
	}
	diurnal := report.Table{Title: "Diurnal profile", Header: []string{"Hour", "Events", "Share"}}
	for h, c := range perHour {
		if c == 0 {
			continue
		}
		diurnal.AddRow(fmt.Sprintf("%02d", h), fmt.Sprintf("%d", c),
			report.Pct(float64(c)/float64(tr.Len())))
	}
	if err := diurnal.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Per-NF transaction load.
	load := mcn.NFLoad(tr)
	nfTbl := report.Table{Title: "Per-network-function transactions", Header: []string{"NF", "Transactions"}}
	for n := 0; n < mcn.NumNFs; n++ {
		nfTbl.AddRow(mcn.NF(n).String(), fmt.Sprintf("%d", load[n]))
	}
	if err := nfTbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Conformance.
	violations, checked := 0, 0
	for _, evs := range tr.PerUE() {
		if len(evs) == 0 {
			continue
		}
		res := sm.Replay(m, sm.InferInitial(m, evs), evs)
		violations += res.Violations
		checked += len(evs)
	}
	fmt.Printf("Conformance vs %s: %d violations across %d events\n",
		m.Name, violations, checked)
}
