// Command tracestat summarizes a control-plane trace: population and
// event totals, per-device breakdowns with the HO/TAU macro-state split,
// the diurnal load profile, per-network-function transaction load, and a
// protocol-conformance check against the two-level machine.
//
// Usage:
//
//	tracestat -i world.trace
//	tracestat -i syn.trace -machine 5g-sa
//	tracestat -i big.trace -stream
//
// With -stream the trace is consumed in struct-of-arrays batches
// through an incremental scanner — peak memory is O(UEs) instead of the
// trace size — and the reported statistics are identical. Both modes
// report ingest throughput and the process's memory footprint; with a
// re-readable (file) input, -stream additionally times the legacy
// per-event ingest and reports the batched-vs-per-event delta in the
// summary line.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/mcn"
	"cptraffic/internal/report"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// ueStat is the per-UE state of the incremental statistics pass: the
// macro tracker behind the HO/TAU breakdown split and the replay cursor
// behind the conformance check. Both need only the current state, so the
// whole pass holds O(UEs) memory however long the trace is.
type ueStat struct {
	dev cp.DeviceType

	// Breakdown: the initial macro state is decidable at the first
	// Category-1 event (sm.InferMacroInitial); HO/TAU seen before then
	// are held as counts and attributed once it is known.
	decided         bool
	macro           cp.UEState
	pendHO, pendTAU int

	// Conformance replay cursor (sm.Replay, incrementally).
	started bool
	cur     sm.State
}

// statCollector accumulates every tracestat figure in one pass over
// registrations and events, in any per-UE-ordered delivery.
type statCollector struct {
	m   *sm.Machine
	ues map[cp.UEID]*ueStat

	devUEs    [cp.NumDeviceTypes]int
	devCounts [cp.NumDeviceTypes]map[string]int
	devTotal  [cp.NumDeviceTypes]int

	perHour    [24]int
	nf         [mcn.NumNFs]int
	events     int
	lo, hi     cp.Millis
	violations int
	checked    int
}

func newStatCollector(m *sm.Machine) *statCollector {
	s := &statCollector{m: m, ues: make(map[cp.UEID]*ueStat)}
	for d := range s.devCounts {
		s.devCounts[d] = make(map[string]int)
	}
	return s
}

func (s *statCollector) register(ue cp.UEID, d cp.DeviceType) error {
	if _, dup := s.ues[ue]; dup {
		return fmt.Errorf("duplicate registration for UE %d", ue)
	}
	s.ues[ue] = &ueStat{dev: d}
	if d.Valid() {
		s.devUEs[d]++
	}
	return nil
}

// breakdownKey mirrors eval.ComputeBreakdown's row labels.
func breakdownKey(e cp.EventType, st cp.UEState) string {
	switch e {
	case cp.Handover:
		if st == cp.StateIdle {
			return "HO (IDLE)"
		}
		return "HO (CONN.)"
	case cp.TrackingAreaUpdate:
		if st == cp.StateIdle {
			return "TAU (IDLE)"
		}
		return "TAU (CONN.)"
	}
	return e.String()
}

func (s *statCollector) addBreakdown(d cp.DeviceType, key string, n int) {
	if !d.Valid() || n == 0 {
		return
	}
	s.devCounts[d][key] += n
	s.devTotal[d] += n
}

func (s *statCollector) push(ev trace.Event) error {
	u, ok := s.ues[ev.UE]
	if !ok {
		return fmt.Errorf("event for unregistered UE %d", ev.UE)
	}
	if s.events == 0 || ev.T < s.lo {
		s.lo = ev.T
	}
	if ev.T > s.hi {
		s.hi = ev.T
	}
	s.events++
	s.perHour[ev.T.HourOfDay()]++
	tx := mcn.Transactions(ev.Type)
	for n := 0; n < mcn.NumNFs; n++ {
		s.nf[n] += tx[n]
	}

	// Breakdown with HO/TAU split by macro state.
	if sm.Category1(ev.Type) {
		if !u.decided {
			u.decided = true
			initial := sm.InferMacroInitial([]trace.Event{ev})
			s.addBreakdown(u.dev, breakdownKey(cp.Handover, initial), u.pendHO)
			s.addBreakdown(u.dev, breakdownKey(cp.TrackingAreaUpdate, initial), u.pendTAU)
			u.pendHO, u.pendTAU = 0, 0
		}
		u.macro = sm.MacroAfter(ev.Type)
		s.addBreakdown(u.dev, breakdownKey(ev.Type, u.macro), 1)
	} else if !u.decided {
		switch ev.Type {
		case cp.Handover:
			u.pendHO++
		case cp.TrackingAreaUpdate:
			u.pendTAU++
		}
	} else {
		s.addBreakdown(u.dev, breakdownKey(ev.Type, u.macro), 1)
	}

	// Conformance replay.
	if !u.started {
		u.started = true
		u.cur = sm.InferInitial(s.m, []trace.Event{ev})
	}
	next, ok := s.m.Next(u.cur, ev.Type)
	if !ok {
		s.violations++
		next = s.m.Forced(ev.Type)
	}
	u.cur = next
	s.checked++
	return nil
}

// finish attributes the held HO/TAU counts of UEs that never emitted a
// Category-1 event, using sm.InferMacroInitial's fallback: any handover
// implies CONNECTED, otherwise IDLE.
func (s *statCollector) finish() {
	for _, u := range s.ues {
		if u.decided || (u.pendHO == 0 && u.pendTAU == 0) {
			continue
		}
		initial := cp.StateIdle
		if u.pendHO > 0 {
			initial = cp.StateConnected
		}
		s.addBreakdown(u.dev, breakdownKey(cp.Handover, initial), u.pendHO)
		s.addBreakdown(u.dev, breakdownKey(cp.TrackingAreaUpdate, initial), u.pendTAU)
		u.pendHO, u.pendTAU = 0, 0
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		machine = flag.String("machine", "lte", "conformance machine: lte | emm-ecm | 5g-sa")
		stream  = flag.Bool("stream", false, "single-pass scan with O(UEs) memory (identical statistics)")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	var m *sm.Machine
	switch strings.ToLower(*machine) {
	case "lte":
		m = sm.LTE2Level()
	case "emm-ecm":
		m = sm.EMMECM()
	case "5g-sa":
		m = sm.FiveGSA()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	s := newStatCollector(m)
	begin := time.Now()
	if *stream {
		sc, err := trace.NewScanner(r)
		if err != nil {
			log.Fatal(err)
		}
		if err := sc.Devices(s.register); err != nil {
			log.Fatal(err)
		}
		// Batched ingest: the scanner decodes whole struct-of-arrays
		// batches, so the per-record interface hop disappears from the
		// hot loop. The statistics are identical to per-event ingest.
		b := trace.NewBatch(trace.DefaultBatchSize)
		for sc.ScanBatch(b) {
			for i := 0; i < b.Len(); i++ {
				if err := s.push(b.At(i)); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
	} else {
		tr, err := trace.ReadAuto(r)
		if err != nil {
			log.Fatal(err)
		}
		for _, ue := range tr.UEs() {
			if err := s.register(ue, tr.Device[ue]); err != nil {
				log.Fatal(err)
			}
		}
		for _, ev := range tr.Events {
			if err := s.push(ev); err != nil {
				log.Fatal(err)
			}
		}
	}
	s.finish()
	elapsed := time.Since(begin)

	// With a re-readable input, measure the legacy per-event ingest too,
	// so the summary line reports what batching bought on this trace.
	var perEventElapsed time.Duration
	if *stream && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		s2 := newStatCollector(m)
		t2 := time.Now()
		sc, err := trace.NewScanner(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := sc.Devices(s2.register); err != nil {
			log.Fatal(err)
		}
		for sc.Scan() {
			if err := s2.push(sc.Event()); err != nil {
				log.Fatal(err)
			}
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
		s2.finish()
		perEventElapsed = time.Since(t2)
		f.Close()
		if s2.events != s.events || s2.violations != s.violations {
			log.Fatalf("batched ingest diverged from per-event ingest: %d/%d events, %d/%d violations",
				s.events, s2.events, s.violations, s2.violations)
		}
	}

	fmt.Printf("UEs: %d   events: %d   span: [%.1f h, %.1f h)\n\n",
		len(s.ues), s.events, s.lo.Seconds()/3600, s.hi.Seconds()/3600)

	devTbl := report.Table{
		Title:  "Per-device breakdown (HO/TAU split by macro state)",
		Header: append([]string{"Device", "UEs", "Events"}, eval.BreakdownKeys...),
	}
	for _, d := range cp.DeviceTypes {
		if s.devUEs[d] == 0 {
			continue
		}
		row := []string{d.String(), fmt.Sprintf("%d", s.devUEs[d]), fmt.Sprintf("%d", s.devTotal[d])}
		for _, k := range eval.BreakdownKeys {
			share := 0.0
			if s.devTotal[d] > 0 {
				share = float64(s.devCounts[d][k]) / float64(s.devTotal[d])
			}
			row = append(row, report.Pct(share))
		}
		devTbl.AddRow(row...)
	}
	if err := devTbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	diurnal := report.Table{Title: "Diurnal profile", Header: []string{"Hour", "Events", "Share"}}
	for h, c := range s.perHour {
		if c == 0 {
			continue
		}
		diurnal.AddRow(fmt.Sprintf("%02d", h), fmt.Sprintf("%d", c),
			report.Pct(float64(c)/float64(s.events)))
	}
	if err := diurnal.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	nfTbl := report.Table{Title: "Per-network-function transactions", Header: []string{"NF", "Transactions"}}
	for n := 0; n < mcn.NumNFs; n++ {
		nfTbl.AddRow(mcn.NF(n).String(), fmt.Sprintf("%d", s.nf[n]))
	}
	if err := nfTbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Conformance vs %s: %d violations across %d events\n",
		m.Name, s.violations, s.checked)

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	rate := float64(s.events) / elapsed.Seconds()
	delta := ""
	if perEventElapsed > 0 && elapsed > 0 {
		perEventRate := float64(s.events) / perEventElapsed.Seconds()
		delta = fmt.Sprintf("   batched vs per-event: %+.0f%% (%.0f -> %.0f events/s)",
			100*(rate-perEventRate)/perEventRate, perEventRate, rate)
	}
	fmt.Printf("Ingest: %d events in %.2f s (%.0f events/s)%s   heap: %.1f MiB live, %.1f MiB peak from OS\n",
		s.events, elapsed.Seconds(), rate, delta,
		float64(mem.HeapAlloc)/(1<<20), float64(mem.Sys)/(1<<20))
}
