// Command fitmodel estimates a control-plane traffic model from a trace:
// the paper's two-level semi-Markov method ("ours") or any of the
// comparison methods of Table 3 ("base", "v1", "v2").
//
// Usage:
//
//	fitmodel -method ours -thetan 100 -i world.trace -o model.json
//	fitmodel -stream -i big.trace -o model.json
//
// With -stream the trace file is scanned incrementally (two passes)
// instead of loaded, so peak memory is bounded by the per-UE sample
// accumulators rather than the event list; the fitted model is
// byte-identical. -stream requires a file path (-i -, stdin, is not
// re-readable).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cptraffic/internal/baseline"
	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/prof"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fitmodel: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		out     = flag.String("o", "-", "output model JSON ('-' for stdout)")
		method  = flag.String("method", "ours", "modeling method: base | v1 | v2 | ours")
		thetaN  = flag.Int("thetan", 100, "adaptive clustering θn (min cluster size)")
		thetaF  = flag.Float64("thetaf", 5, "adaptive clustering θf (feature similarity)")
		workers = flag.Int("workers", 0, "fitting worker count (0 = all CPUs); never changes the model")
		stream  = flag.Bool("stream", false, "fit by scanning the trace file incrementally (bounded memory, identical model)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	co := cluster.Options{
		ThetaF: cluster.Features{*thetaF, *thetaF, *thetaF, *thetaF},
		ThetaN: *thetaN,
	}
	opt, err := baseline.Options(*method, co)
	if err != nil {
		log.Fatal(err)
	}
	opt.Workers = *workers

	var ms *core.ModelSet
	var nUEs, nEvents int
	if *stream {
		if *in == "-" {
			log.Fatal("-stream needs a seekable trace file; -i - (stdin) cannot be scanned twice")
		}
		src, err := trace.NewFileSource(*in)
		if err != nil {
			log.Fatal(err)
		}
		ms, err = core.FitStream(src, opt)
		if err != nil {
			log.Fatal(err)
		}
		for _, dm := range ms.Devices {
			if dm != nil {
				nUEs += dm.TrainUEs
			}
		}
	} else {
		r := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		tr, err := trace.ReadAuto(r)
		if err != nil {
			log.Fatal(err)
		}
		ms, err = core.Fit(tr, opt)
		if err != nil {
			log.Fatal(err)
		}
		nUEs, nEvents = tr.NumUEs(), tr.Len()
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := ms.Save(w); err != nil {
		log.Fatal(err)
	}
	if *stream {
		fmt.Fprintf(os.Stderr, "fitmodel: method=%s machine=%s models=%d (streamed from %d UEs)\n",
			ms.Method, ms.MachineName, ms.NumModels(), nUEs)
	} else {
		fmt.Fprintf(os.Stderr, "fitmodel: method=%s machine=%s models=%d (from %d UEs, %d events)\n",
			ms.Method, ms.MachineName, ms.NumModels(), nUEs, nEvents)
	}
}
