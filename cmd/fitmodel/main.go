// Command fitmodel estimates a control-plane traffic model from a trace:
// the paper's two-level semi-Markov method ("ours") or any of the
// comparison methods of Table 3 ("base", "v1", "v2").
//
// Usage:
//
//	fitmodel -method ours -thetan 100 -i world.trace -o model.json
//	fitmodel -stream -i big.trace -o model.json
//
// Sharded fits split the UE population by hash so each worker fits a
// disjoint slice; merging the partials reproduces the unsharded model
// byte-for-byte, whatever the merge order (see PARTIALFIT.md):
//
//	fitmodel -shards 4 -shard 0 -i big.trace -partial part-0.json   # × 4
//	fitmodel -merge part-0.json,part-1.json,part-2.json,part-3.json -o model.json
//
// Long fits can checkpoint and resume; the resumed model is identical
// to an uninterrupted one:
//
//	fitmodel -i big.trace -checkpoint-every 1e6 -partial ckpt.json -o model.json
//	fitmodel -resume ckpt.json -i big.trace -o model.json
//
// With -stream the trace file is scanned incrementally instead of
// loaded, so peak memory is bounded by the retained samples rather than
// the event list; the fitted model is byte-identical. -sketch k bounds
// the retained samples too (mergeable quantile sketches; the model then
// differs from the exact one within a documented quantile error).
// Sharding, resuming, and checkpointing always stream and therefore
// need a file path (-i -, stdin, is not re-readable).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cptraffic/internal/baseline"
	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/prof"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fitmodel: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		out     = flag.String("o", "-", "output model JSON ('-' for stdout)")
		method  = flag.String("method", "ours", "modeling method: base | v1 | v2 | ours")
		thetaN  = flag.Int("thetan", 100, "adaptive clustering θn (min cluster size)")
		thetaF  = flag.Float64("thetaf", 5, "adaptive clustering θf (feature similarity)")
		workers = flag.Int("workers", 0, "fitting worker count (0 = all CPUs); never changes the model")
		stream  = flag.Bool("stream", false, "fit by scanning the trace file incrementally (bounded memory, identical model)")
		sketch  = flag.Int("sketch", 0, "bound every sample pool to a k-item mergeable sketch (0 = exact)")
		shards  = flag.Int("shards", 1, "split the UE population into this many hash shards")
		shard   = flag.Int("shard", 0, "fit this shard (0-based; requires -shards > 1)")
		partial = flag.String("partial", "", "write the partial-fit state (partialfit/1) here instead of building a model")
		merge   = flag.String("merge", "", "comma-separated partial-fit files to merge and build")
		resume  = flag.String("resume", "", "resume from this partial-fit checkpoint (options come from the checkpoint)")
		ckptEv  = flag.Float64("checkpoint-every", 0, "checkpoint to -partial every N consumed events")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	co := cluster.Options{
		ThetaF: cluster.Features{*thetaF, *thetaF, *thetaF, *thetaF},
		ThetaN: *thetaN,
	}
	opt, err := baseline.Options(*method, co)
	if err != nil {
		log.Fatal(err)
	}
	opt.Workers = *workers
	opt.SketchK = *sketch

	if *merge != "" {
		mergePartials(strings.Split(*merge, ","), *out)
		return
	}
	if *shards > 1 || *resume != "" || *partial != "" || *ckptEv > 0 {
		runPartial(opt, *in, *out, *shards, *shard, *partial, *resume, int64(*ckptEv))
		return
	}

	var ms *core.ModelSet
	var nUEs, nEvents int
	if *stream {
		if *in == "-" {
			log.Fatal("-stream needs a seekable trace file; -i - (stdin) cannot be scanned twice")
		}
		src, err := trace.NewFileSource(*in)
		if err != nil {
			log.Fatal(err)
		}
		ms, err = core.FitStream(src, opt)
		if err != nil {
			log.Fatal(err)
		}
		for _, dm := range ms.Devices {
			if dm != nil {
				nUEs += dm.TrainUEs
			}
		}
	} else {
		r := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		tr, err := trace.ReadAuto(r)
		if err != nil {
			log.Fatal(err)
		}
		ms, err = core.Fit(tr, opt)
		if err != nil {
			log.Fatal(err)
		}
		nUEs, nEvents = tr.NumUEs(), tr.Len()
	}

	saveModel(ms, *out)
	if *stream {
		fmt.Fprintf(os.Stderr, "fitmodel: method=%s machine=%s models=%d (streamed from %d UEs)\n",
			ms.Method, ms.MachineName, ms.NumModels(), nUEs)
	} else {
		fmt.Fprintf(os.Stderr, "fitmodel: method=%s machine=%s models=%d (from %d UEs, %d events)\n",
			ms.Method, ms.MachineName, ms.NumModels(), nUEs, nEvents)
	}
}

// runPartial drives the shard / checkpoint / resume workflows: stream
// the (optionally sharded) trace into a PartialFit, then either write
// the partial state or build the model.
func runPartial(opt core.FitOptions, in, out string, shards, shard int, partialOut, resume string, every int64) {
	if in == "-" {
		log.Fatal("sharded, resumed, and checkpointed fits stream the trace and need a file path, not stdin")
	}
	if shards > 1 && (shard < 0 || shard >= shards) {
		log.Fatalf("-shard %d out of range for -shards %d", shard, shards)
	}
	if every > 0 && partialOut == "" {
		log.Fatal("-checkpoint-every needs -partial to know where to write checkpoints")
	}

	var pf *core.PartialFit
	var err error
	if resume != "" {
		f, err := os.Open(resume)
		if err != nil {
			log.Fatal(err)
		}
		pf, err = core.DecodePartial(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fitmodel: resuming after %d consumed events (%d UEs)\n",
			pf.EventsConsumed(), pf.NumUEs())
	} else {
		pf, err = core.NewPartialFit(opt)
		if err != nil {
			log.Fatal(err)
		}
	}

	var src trace.EventSource
	if src, err = trace.NewFileSource(in); err != nil {
		log.Fatal(err)
	}
	if shards > 1 {
		if src, err = trace.ShardSource(src, shards, shard); err != nil {
			log.Fatal(err)
		}
	}
	var checkpoint func(int64) error
	if every > 0 {
		checkpoint = func(consumed int64) error {
			if err := writePartial(pf, partialOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "fitmodel: checkpointed %s at %d events\n", partialOut, consumed)
			return nil
		}
	}
	if err := pf.AddSourceWithCheckpoints(src, every, checkpoint); err != nil {
		log.Fatal(err)
	}

	if partialOut != "" && out == "-" {
		// Partial-only run: persist the state, build nothing.
		if err := writePartial(pf, partialOut); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fitmodel: wrote partial fit %s (%d UEs, %d events)\n",
			partialOut, pf.NumUEs(), pf.EventsConsumed())
		return
	}
	if partialOut != "" {
		if err := writePartial(pf, partialOut); err != nil {
			log.Fatal(err)
		}
	}
	nUEs, nEvents := pf.NumUEs(), pf.EventsConsumed()
	ms, err := pf.Build()
	if err != nil {
		log.Fatal(err)
	}
	saveModel(ms, out)
	fmt.Fprintf(os.Stderr, "fitmodel: method=%s machine=%s models=%d (from %d UEs, %d events)\n",
		ms.Method, ms.MachineName, ms.NumModels(), nUEs, nEvents)
}

// mergePartials loads the named partial fits, merges them, and writes
// the built model. The CLI fitting flags are ignored: the partials
// carry their own options and must agree among themselves.
func mergePartials(paths []string, out string) {
	var root *core.PartialFit
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		pf, err := core.DecodePartial(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		if root == nil {
			root = pf
			continue
		}
		if err := root.Merge(pf); err != nil {
			log.Fatalf("%s: %v", p, err)
		}
	}
	if root == nil {
		log.Fatal("-merge needs at least one partial-fit file")
	}
	nUEs := root.NumUEs()
	ms, err := root.Build()
	if err != nil {
		log.Fatal(err)
	}
	saveModel(ms, out)
	fmt.Fprintf(os.Stderr, "fitmodel: method=%s machine=%s models=%d (merged %d partials, %d UEs)\n",
		ms.Method, ms.MachineName, ms.NumModels(), len(paths), nUEs)
}

// writePartial encodes pf to path atomically (temp file + rename), so a
// kill mid-checkpoint never leaves a truncated checkpoint behind.
func writePartial(pf *core.PartialFit, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pf.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func saveModel(ms *core.ModelSet, out string) {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := ms.Save(w); err != nil {
		log.Fatal(err)
	}
}
