// Command dimension sizes a mobile core for a control-plane trace: it
// replays the trace through a FIFO queueing model of the five EPC
// network functions and either reports per-NF utilization/delays for a
// given capacity, or finds the smallest capacities meeting a p99
// queueing-delay target.
//
// Usage:
//
//	dimension -i syn.trace -p99 0.05            # suggest capacities
//	dimension -i syn.trace -rate 500            # evaluate a uniform rate
//	dimension -scenario scenarios/stadium-event.json
//
// With -scenario the trace is simulated internally from a scenario/1
// file (see SCENARIOS.md) with its SA share's TAU events filtered; the
// scenario's explicit capacity block, when present, is evaluated,
// otherwise capacities are suggested for the -p99 target. The fault
// schedule is ignored here — dimension sizes the healthy core; replay
// faults with cmd/stormsim.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cptraffic/internal/mcn"
	"cptraffic/internal/report"
	"cptraffic/internal/scenario"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dimension: ")
	var (
		in      = flag.String("i", "-", "input trace ('-' for stdin)")
		p99     = flag.Float64("p99", 0.05, "target p99 queueing delay in seconds (suggest mode)")
		rate    = flag.Float64("rate", 0, "evaluate this uniform per-NF rate instead of suggesting")
		scnPath = flag.String("scenario", "", "simulate this scenario/1 file instead of reading a trace")
	)
	flag.Parse()

	var tr *trace.Trace
	var scnCap *mcn.Capacity
	if *scnPath != "" {
		if *rate > 0 {
			log.Fatal("-scenario conflicts with -rate; set a capacity block in the file")
		}
		s, err := scenario.Load(*scnPath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = scenario.Simulate(s, 0)
		if err != nil {
			log.Fatal(err)
		}
		tr = s.FilterSA(tr)
		if s.Capacity != nil {
			cfg, err := s.StormConfig()
			if err != nil {
				log.Fatal(err)
			}
			scnCap = &cfg.Capacity
		}
		fmt.Printf("Scenario %s: %d UEs, %d events\n\n", s.Name, tr.NumUEs(), tr.Len())
	} else {
		r := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		var err error
		tr, err = trace.ReadAuto(r)
		if err != nil {
			log.Fatal(err)
		}
	}
	tr.Sort()

	var cap mcn.Capacity
	var err error
	if scnCap != nil {
		cap = *scnCap
		fmt.Printf("Evaluating the scenario's capacity block\n\n")
	} else if *rate > 0 {
		for n := range cap {
			cap[n] = *rate
		}
		fmt.Printf("Evaluating uniform capacity %.1f tx/s per NF\n\n", *rate)
	} else {
		cap, err = mcn.SuggestCapacity(tr, *p99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Suggested capacities for p99 queueing delay <= %.0f ms:\n\n", *p99*1000)
	}

	rep, err := mcn.Provision(tr, cap)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.Table{
		Header: []string{"NF", "Capacity tx/s", "Transactions", "Utilization", "Mean delay", "p99 delay", "Max delay"},
	}
	for n := 0; n < mcn.NumNFs; n++ {
		p := rep.PerNF[n]
		tbl.AddRow(mcn.NF(n).String(),
			fmt.Sprintf("%.1f", cap[n]),
			fmt.Sprintf("%d", p.Transactions),
			fmt.Sprintf("%.1f%%", 100*p.Utilization),
			fmt.Sprintf("%.1f ms", 1000*p.MeanDelay),
			fmt.Sprintf("%.1f ms", 1000*p.P99Delay),
			fmt.Sprintf("%.1f ms", 1000*p.MaxDelay))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
