// Command traffgen synthesizes a control-plane trace from a fitted model
// for any UE population size, optionally after adapting the model to 5G
// NSA or SA (paper §6-7).
//
// Usage:
//
//	traffgen -model model.json -ues 380000 -start 18 -hours 1 -o syn.trace
//	traffgen -model model.json -nextg sa -ues 10000 -hours 24 -o sa.trace
//	traffgen -model model.json -ues 5000000 -hours 1 -stream -binary -o big.trace
//	traffgen -model model.json -scenario scenarios/iot-firmware-wave.json -o wave.trace
//
// With -scenario the population, window, seed, and 4G/5G split come
// from a scenario/1 file (see SCENARIOS.md): a sa_share of s generates
// round(s*N) UEs from the SA-adapted model (seeded independently, ids
// above the LTE block) and merges them with the LTE population. The
// scenario's mobility/activity scales and device mix apply only to the
// behavioral world simulator and are ignored here — the fitted model
// carries its own rates and mix.
//
// With -stream the per-UE generators are merged and written
// incrementally — peak memory is O(UEs), not the trace size — producing
// byte-identical output to the in-memory path.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/fiveg"
	"cptraffic/internal/prof"
	"cptraffic/internal/scenario"
	"cptraffic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traffgen: ")
	var (
		modelPath = flag.String("model", "", "fitted model JSON (required)")
		ues       = flag.Int("ues", 10000, "synthetic population size")
		start     = flag.Int("start", 0, "starting hour-of-day H")
		hours     = flag.Int("hours", 1, "trace duration in hours")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "concurrent per-UE generators (0 = GOMAXPROCS)")
		nextg     = flag.String("nextg", "", "adapt to NextG first: '', 'nsa' or 'sa'")
		scnPath   = flag.String("scenario", "", "take population/window/seed/sa_share from this scenario/1 file")
		hoFactor  = flag.Float64("hofactor", 0, "handover scaling override (0 = paper default)")
		out       = flag.String("o", "-", "output trace ('-' for stdout)")
		binOut    = flag.Bool("binary", false, "write the compact binary trace format")
		stream    = flag.Bool("stream", false, "generate and write incrementally (O(UEs) memory, identical output)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := core.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *scnPath != "" {
		if *nextg != "" {
			log.Fatal("-scenario conflicts with -nextg; set sa_share in the file")
		}
		if *stream {
			log.Fatal("-scenario does not support -stream (the SA merge is in-memory)")
		}
		s, err := scenario.Load(*scnPath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := generateScenario(ms, s, *workers, *hoFactor)
		if err != nil {
			log.Fatal(err)
		}
		w := os.Stdout
		if *out != "-" {
			file, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := file.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = file
		}
		writeFn := trace.WriteTrace
		if *binOut {
			writeFn = trace.WriteBinaryTrace
		}
		if err := writeFn(w, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "traffgen: scenario=%s sa_share=%.2f -> %d UEs, %d events\n",
			s.Name, s.SAShare, tr.NumUEs(), tr.Len())
		return
	}

	switch *nextg {
	case "":
	case "nsa":
		factor := *hoFactor
		if factor <= 0 {
			factor = fiveg.NSAHandoverFactor
		}
		if ms, err = fiveg.ToNSA(ms, factor); err != nil {
			log.Fatal(err)
		}
	case "sa":
		factor := *hoFactor
		if factor <= 0 {
			factor = fiveg.SAHandoverFactor
		}
		if ms, err = fiveg.ToSA(ms, factor); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -nextg %q (want nsa or sa)", *nextg)
	}

	gopt := core.GenOptions{
		NumUEs:    *ues,
		StartHour: *start,
		Duration:  cp.Millis(*hours) * cp.Hour,
		Seed:      *seed,
		Workers:   *workers,
	}

	w := os.Stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := file.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = file
	}

	if *stream {
		src, err := core.NewSource(ms, gopt)
		if err != nil {
			log.Fatal(err)
		}
		nUEs, nEvents, err := streamOut(w, src, *binOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "traffgen: method=%s machine=%s -> %d UEs, %d events (streamed)\n",
			ms.Method, ms.MachineName, nUEs, nEvents)
		return
	}

	tr, err := core.Generate(ms, gopt)
	if err != nil {
		log.Fatal(err)
	}
	writeFn := trace.WriteTrace
	if *binOut {
		writeFn = trace.WriteBinaryTrace
	}
	if err := writeFn(w, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "traffgen: method=%s machine=%s -> %d UEs, %d events\n",
		ms.Method, ms.MachineName, tr.NumUEs(), tr.Len())
}

// generateScenario synthesizes a scenario's population from the fitted
// model: the LTE block of UEs [0, n1) from ms with the scenario seed,
// and the 5G SA block [n1, N) — round(sa_share*N) UEs — from the
// SA-adapted model with seed+1, merged into one sorted trace.
func generateScenario(ms *core.ModelSet, s *scenario.Scenario, workers int, hoFactor float64) (*trace.Trace, error) {
	n := s.Population.UEs
	nSA := int(math.Round(s.SAShare * float64(n)))
	nLTE := n - nSA
	gopt := core.GenOptions{
		StartHour: s.StartHour,
		Duration:  s.Duration(),
		Seed:      s.Seed,
		Workers:   workers,
	}
	parts := make([]*trace.Trace, 0, 2)
	if nLTE > 0 {
		lopt := gopt
		lopt.NumUEs = nLTE
		tr, err := core.Generate(ms, lopt)
		if err != nil {
			return nil, err
		}
		parts = append(parts, tr)
	}
	if nSA > 0 {
		factor := hoFactor
		if factor <= 0 {
			factor = fiveg.SAHandoverFactor
		}
		msSA, err := fiveg.ToSA(ms, factor)
		if err != nil {
			return nil, err
		}
		sopt := gopt
		sopt.NumUEs = nSA
		sopt.Seed = s.Seed + 1
		tr, err := core.Generate(msSA, sopt)
		if err != nil {
			return nil, err
		}
		parts = append(parts, renumberUEs(tr, cp.UEID(nLTE)))
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return trace.Merge(parts...)
}

// renumberUEs shifts every UE id in tr by offset, so two independently
// generated populations occupy disjoint id blocks before merging.
func renumberUEs(tr *trace.Trace, offset cp.UEID) *trace.Trace {
	out := trace.New()
	for _, ue := range tr.UEs() {
		if err := out.SetDevice(ue+offset, tr.Device[ue]); err != nil {
			// Shifting a duplicate-free id set cannot conflict.
			panic(err)
		}
	}
	out.Events = make([]trace.Event, 0, tr.Len())
	for _, e := range tr.Events {
		e.UE += offset
		out.Events = append(out.Events, e)
	}
	return out
}

// countingSink wraps an EventSink, tallying what passes through. It
// forwards whole batches to the writer's native batched face, so
// counting does not force the stream back onto the per-event path.
type countingSink struct {
	sink        trace.EventSink
	bsink       trace.BatchSink
	ues, events int
}

func newCountingSink(sink trace.EventSink) *countingSink {
	return &countingSink{sink: sink, bsink: trace.AsBatchSink(sink)}
}

func (c *countingSink) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	c.ues++
	return c.sink.SetDevice(ue, d)
}

func (c *countingSink) Write(e trace.Event) error {
	c.events++
	return c.sink.Write(e)
}

func (c *countingSink) WriteBatch(b *trace.Batch) error {
	c.events += b.Len()
	return c.bsink.WriteBatch(b)
}

// streamOut copies src into w in the chosen format over the batched
// pipeline — the source fills struct-of-arrays batches and the writer
// drains them whole — returning the counts for the summary line. The
// bytes are identical to the per-event path (test-enforced).
func streamOut(w io.Writer, src trace.EventSource, binary bool) (ues, events int, err error) {
	var sink trace.EventSink
	var closeFn func() error
	if binary {
		sw := trace.NewStreamWriter(w)
		sink, closeFn = sw, sw.Close
	} else {
		tw := trace.NewTextWriter(w)
		sink, closeFn = tw, tw.Close
	}
	cs := newCountingSink(sink)
	if err := trace.CopyBatches(cs, src); err != nil {
		return 0, 0, err
	}
	return cs.ues, cs.events, closeFn()
}
