// Command experiments regenerates the paper's evaluation artifacts end to
// end: it simulates a training world, fits all four modeling methods,
// synthesizes validation traces, and prints every table and figure series
// (see the per-experiment index in DESIGN.md).
//
// Usage:
//
//	experiments                       # run everything at the default scale
//	experiments -exp table4          # one experiment
//	experiments -scale 4             # 4x the default populations
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"cptraffic/internal/experiments"
)

var registry = map[string]func(*experiments.Lab, io.Writer) error{
	"table1":    experiments.Table1,
	"fig2":      experiments.Figure2,
	"table8":    experiments.Table8,
	"table9":    experiments.Table9,
	"table10":   experiments.Table10,
	"fig3":      experiments.Figure3,
	"fig4":      experiments.Figure4,
	"clusters":  experiments.Clusters,
	"table4":    func(l *experiments.Lab, w io.Writer) error { return experiments.BreakdownTable(l, w, 2) },
	"table11":   func(l *experiments.Lab, w io.Writer) error { return experiments.BreakdownTable(l, w, 1) },
	"table5":    experiments.Table5,
	"improve":   experiments.ImprovementTable,
	"table6":    experiments.Table6,
	"fig7":      experiments.Figure7,
	"table7":    experiments.Table7,
	"abl-theta": experiments.AblationClusterThresholds,
	"abl-res":   experiments.AblationTableResolution,
	"abl-flat":  experiments.AblationTwoLevelVsFlat,
	"growth":    experiments.GrowthProjection,
	"diurnal":   experiments.DiurnalFidelity,
}

// order fixes the presentation sequence for -exp all.
var order = []string{
	"table1", "fig2", "table8", "table9", "table10", "fig3", "fig4",
	"clusters", "table11", "table4", "table5", "improve", "table6", "fig7", "table7",
	"abl-theta", "abl-res", "abl-flat", "growth", "diurnal",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (see DESIGN.md index)")
		scale   = flag.Float64("scale", 1, "population scale factor over the default config")
		seed    = flag.Uint64("seed", 2023, "random seed")
		workers = flag.Int("workers", 0, "worker count for every pipeline stage (0 = all CPUs); never changes results")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.TrainUEs = int(float64(cfg.TrainUEs) * *scale)
	cfg.Scenario1UEs = int(float64(cfg.Scenario1UEs) * *scale)
	cfg.Scenario2UEs = int(float64(cfg.Scenario2UEs) * *scale)
	cfg.ThetaN = int(float64(cfg.ThetaN) * *scale)
	lab := experiments.NewLab(cfg)

	fmt.Printf("# cptraffic experiments — train %d UEs x %d days, scenarios %d / %d UEs, busy hour %d, θn %d\n\n",
		cfg.TrainUEs, cfg.Days, cfg.Scenario1UEs, cfg.Scenario2UEs, cfg.BusyHour, cfg.ThetaN)

	names := []string{*exp}
	if *exp == "all" {
		names = order
	}
	sort.SliceStable(names, func(i, j int) bool { return indexOf(names[i]) < indexOf(names[j]) })
	for _, name := range names {
		fn, ok := registry[name]
		if !ok {
			log.Fatalf("unknown experiment %q (known: %v)", name, order)
		}
		start := time.Now()
		if err := fn(lab, os.Stdout); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func indexOf(name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}
