#!/bin/sh
# Third-party static audits at pinned versions. Complements cplint
# (which owns the repo-specific invariants) with general-purpose
# checks: staticcheck for bug patterns, govulncheck for known CVEs in
# the dependency graph.
#
# The build container has no module proxy, so when a tool is neither on
# PATH nor installable, that audit is skipped with a warning instead of
# failing the build; CI runs with network and installs both.
set -eu

STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

have_or_install() {
	tool=$1
	mod=$2
	if command -v "$tool" >/dev/null 2>&1; then
		return 0
	fi
	echo "audit: $tool not found, trying go install $mod" >&2
	if GOFLAGS= go install "$mod" >/dev/null 2>&1 &&
		command -v "$tool" >/dev/null 2>&1; then
		return 0
	fi
	echo "audit: WARNING: $tool unavailable (offline?); skipping" >&2
	return 1
}

status=0

if have_or_install staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"; then
	# staticcheck.conf at the repo root scopes the checks; testdata
	# fixture trees are not packages of this module, so `./...` already
	# excludes them.
	staticcheck ./... || status=1
fi

if have_or_install govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"; then
	govulncheck ./... || status=1
fi

exit $status
