#!/bin/sh
# shardcheck.sh — end-to-end check of the sharded-fit CLI contract:
# fit a small world trace unsharded, fit the same trace as four hash
# shards via `fitmodel -shards/-shard -partial`, merge the partials with
# `fitmodel -merge`, and require the two model files to be identical
# byte for byte. This exercises the whole chain the unit tests cover
# in-process — ShardSource, PartialFit, the partialfit/1 codec, Merge,
# Build — through the actual binaries and files users run.
#
# Also checks checkpoint/resume: a fit checkpointed mid-scan and resumed
# from the partialfit/1 file must produce the same bytes too.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/worldgen" ./cmd/worldgen
go build -o "$tmp/fitmodel" ./cmd/fitmodel

"$tmp/worldgen" -ues 200 -hours 6 -seed 7 -binary -o "$tmp/world.trace"

"$tmp/fitmodel" -thetan 25 -i "$tmp/world.trace" -o "$tmp/unsharded.json" 2>/dev/null

shards=4
parts=""
for s in $(seq 0 $((shards - 1))); do
	"$tmp/fitmodel" -thetan 25 -shards $shards -shard "$s" \
		-i "$tmp/world.trace" -partial "$tmp/part-$s.json" 2>/dev/null
	parts="$parts${parts:+,}$tmp/part-$s.json"
done
# Merge in a shuffled order on purpose: order must not matter.
shuffled="$tmp/part-2.json,$tmp/part-0.json,$tmp/part-3.json,$tmp/part-1.json"
"$tmp/fitmodel" -merge "$shuffled" -o "$tmp/merged.json" 2>/dev/null

if ! cmp -s "$tmp/unsharded.json" "$tmp/merged.json"; then
	echo "shardcheck: FAIL — merged 4-shard model differs from the unsharded fit" >&2
	exit 1
fi

# Checkpoint/resume through the CLI: write the partial state with
# periodic checkpoints (no model build), then resume it against the
# same trace and build. Mid-scan kill/resume equivalence is covered by
# TestPartialFitCheckpointResume; this checks the file plumbing.
"$tmp/fitmodel" -thetan 25 -i "$tmp/world.trace" \
	-checkpoint-every 2000 -partial "$tmp/ckpt.json" 2>/dev/null
"$tmp/fitmodel" -resume "$tmp/ckpt.json" -i "$tmp/world.trace" \
	-o "$tmp/resumed.json" 2>/dev/null

if ! cmp -s "$tmp/unsharded.json" "$tmp/resumed.json"; then
	echo "shardcheck: FAIL — resumed fit differs from the plain fit" >&2
	exit 1
fi

echo "shardcheck: OK — 4-shard merge and checkpoint/resume are byte-identical to the unsharded fit"
