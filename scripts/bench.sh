#!/bin/sh
# bench.sh — run the perf-ledger benchmarks and record the results as
# BENCH_<date>.txt (raw `go test -bench` output, benchstat-compatible)
# plus BENCH_<date>.json (parsed, for dashboards and benchcmp.sh).
#
# Usage:
#   scripts/bench.sh                # ledger benchmarks, default count
#   BENCHTIME=20x scripts/bench.sh  # longer runs for stabler numbers
#   PATTERN='Scanner' scripts/bench.sh
#
# The ledger set is the throughput benchmarks plus the historical
# per-UE-hour and scanner benches, the shard/merge fit, and the
# bounded-memory (sketched) fit with its peak-heap metric, so successive
# BENCH_* files track the same quantities across PRs. Compare two
# ledgers with scripts/benchcmp.sh.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${PATTERN:-GenerateThroughput|WorldThroughput|GeneratorPerUEHour|Scanner|FitSharded|FitSketched}"
BENCHTIME="${BENCHTIME:-10x}"
DATE="$(date +%Y-%m-%d)"
TXT="BENCH_${DATE}.txt"
JSON="BENCH_${DATE}.json"

# Whole-pipeline benchmarks: one op is a full Generate, so a fixed
# iteration count keeps run time bounded. The per-step microbenchmark
# needs millions of iterations to mean anything, so it gets a
# time-based budget instead.
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem . | tee "$TXT"
go test -run '^$' -bench 'EngineStep' -benchtime "${STEPTIME:-2s}" -benchmem \
	./internal/core/ | tee -a "$TXT"

# Parse the standard benchmark lines into JSON. Metric pairs start at
# field 4 (field 1 name, 2 iterations, 3/4 first value/unit).
awk -v date="$DATE" -v benchtime="$BENCHTIME" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	iters = $2
	m = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if (m != "") m = m ", "
		m = m "\"" $(i+1) "\": " $i
	}
	if (out != "") out = out ",\n"
	out = out "    {\"name\": \"" name "\", \"iters\": " iters ", \"metrics\": {" m "}}"
}
END {
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"caveat\": \"measured on a shared %d-CPU container; absolute numbers are noisy (±20%% across runs observed), compare only medians of repeated runs on the same host\",\n", cpus
	printf "  \"benchmarks\": [\n%s\n  ]\n}\n", out
}' cpus="$(nproc)" "$TXT" > "$JSON"

echo "wrote $TXT and $JSON" >&2
