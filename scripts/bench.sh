#!/bin/sh
# bench.sh — run the perf-ledger benchmarks and record the results as
# BENCH_<date>.txt (raw `go test -bench` output, benchstat-compatible)
# plus BENCH_<date>.json (parsed, for dashboards and benchcmp.sh). If a
# same-day ledger already exists, a .2/.3/... suffix is added instead of
# overwriting it.
#
# Usage:
#   scripts/bench.sh                # ledger benchmarks, single run each
#   scripts/bench.sh -count 5      # 5 runs each, JSON records medians
#   COUNT=5 scripts/bench.sh       # same, via environment
#   BENCHTIME=20x scripts/bench.sh # longer runs for stabler numbers
#   PATTERN='Scanner' scripts/bench.sh
#
# The ledger set is the throughput benchmarks (generate, world, and the
# batched stream pipeline) plus the historical per-UE-hour and scanner
# benches, the shard/merge fit, the bounded-memory (sketched) fit
# with its peak-heap metric, and the cplint analysis cost
# (BenchmarkLintAnalyze: per analyzer, whole suite, real module), so
# successive BENCH_* files track the same quantities across PRs. With -count N the .txt keeps every run
# (benchstat can consume it directly) and the .json stores the median of
# each metric, which is the number the ledger compares. Compare two
# ledgers with scripts/benchcmp.sh.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${PATTERN:-GenerateThroughput|WorldThroughput|StreamThroughput|GeneratorPerUEHour|Scanner|FitSharded|FitSketched}"
BENCHTIME="${BENCHTIME:-10x}"
COUNT="${COUNT:-1}"
while [ $# -gt 0 ]; do
	case "$1" in
	-count)
		[ $# -ge 2 ] || { echo "bench.sh: -count needs a value" >&2; exit 2; }
		COUNT="$2"
		shift 2
		;;
	*)
		echo "usage: scripts/bench.sh [-count N]" >&2
		exit 2
		;;
	esac
done
case "$COUNT" in
'' | *[!0-9]*)
	echo "bench.sh: -count must be a positive integer, got '$COUNT'" >&2
	exit 2
	;;
esac

DATE="$(date +%Y-%m-%d)"
STEM="BENCH_${DATE}"
n=1
TXT="${STEM}.txt"
JSON="${STEM}.json"
while [ -e "$TXT" ] || [ -e "$JSON" ]; do
	n=$((n + 1))
	TXT="${STEM}.${n}.txt"
	JSON="${STEM}.${n}.json"
done

# Whole-pipeline benchmarks: one op is a full Generate, so a fixed
# iteration count keeps run time bounded. The per-step microbenchmark
# needs millions of iterations to mean anything, so it gets a
# time-based budget instead.
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$TXT"
go test -run '^$' -bench 'EngineStep' -benchtime "${STEPTIME:-2s}" -count "$COUNT" -benchmem \
	./internal/core/ | tee -a "$TXT"

# Static-analysis cost: per-analyzer and whole-suite cplint runs over
# the fixture tree plus the suite over the real module, so the
# call-graph substrate's cost rides the same ledger as generation
# throughput. Type-checking happens in setup; the measured quantity is
# analysis alone.
go test -run '^$' -bench 'LintAnalyze' -benchtime "${LINTTIME:-3x}" -count "$COUNT" -benchmem \
	./internal/lint/ | tee -a "$TXT"

# Parse the standard benchmark lines into JSON. Metric pairs start at
# field 3 (field 1 name, 2 iterations, then value/unit pairs). With
# -count N each benchmark emits N lines; the JSON records the median of
# every metric across them (and of the iteration counts).
awk -v date="$DATE" -v benchtime="$BENCHTIME" -v count="$COUNT" '
function median(name, unit,    i, k, m, tmp, t) {
	k = runs[name]
	for (i = 1; i <= k; i++)
		tmp[i] = val[name SUBSEP unit SUBSEP i] + 0
	# insertion sort: k is the run count, tiny
	for (i = 2; i <= k; i++) {
		t = tmp[i]
		for (m = i - 1; m >= 1 && tmp[m] > t; m--)
			tmp[m + 1] = tmp[m]
		tmp[m + 1] = t
	}
	if (k % 2)
		return tmp[(k + 1) / 2]
	return (tmp[k / 2] + tmp[k / 2 + 1]) / 2
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	if (!(name in runs)) {
		order[++nnames] = name
		nunits[name] = 0
	}
	runs[name]++
	r = runs[name]
	val[name SUBSEP "iters" SUBSEP r] = $2
	for (i = 3; i + 1 <= NF; i += 2) {
		u = $(i + 1)
		if (!(name SUBSEP u in seenunit)) {
			seenunit[name SUBSEP u] = ++nunits[name]
			unit[name SUBSEP nunits[name]] = u
		}
		val[name SUBSEP u SUBSEP r] = $i
	}
}
END {
	for (j = 1; j <= nnames; j++) {
		name = order[j]
		m = ""
		for (i = 1; i <= nunits[name]; i++) {
			u = unit[name SUBSEP i]
			if (m != "") m = m ", "
			m = m "\"" u "\": " median(name, u)
		}
		if (out != "") out = out ",\n"
		out = out "    {\"name\": \"" name "\", \"iters\": " median(name, "iters") \
			", \"samples\": " runs[name] ", \"metrics\": {" m "}}"
	}
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"cpus\": %d,\n", cpus
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"count\": %d,\n", count
	printf "  \"aggregation\": \"median over count runs per benchmark\",\n"
	printf "  \"caveat\": \"measured on a shared %d-CPU container; absolute numbers are noisy (±20%% across runs observed), compare only medians of repeated runs on the same host\",\n", cpus
	printf "  \"benchmarks\": [\n%s\n  ]\n}\n", out
}' cpus="$(nproc)" "$TXT" > "$JSON"

echo "wrote $TXT and $JSON" >&2
