#!/bin/sh
# benchcmp.sh — compare two perf-ledger recordings made by bench.sh.
#
# Usage:
#   scripts/benchcmp.sh BENCH_2026-08-06 BENCH_2026-09-01
#   scripts/benchcmp.sh old.txt new.txt
#
# Accepts either the ledger basename (resolves .txt/.json itself) or
# explicit files. Uses benchstat on the .txt recordings when it is
# installed (it adds significance testing); otherwise falls back to a
# plain old/new/delta table parsed from the .json ledgers.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 <old> <new>  (BENCH_* basename, .txt, or .json)" >&2
	exit 2
fi

resolve() {
	for cand in "$1" "$1.txt" "$1.json"; do
		if [ -f "$cand" ]; then
			echo "$cand"
			return
		fi
	done
	echo "$0: cannot find $1" >&2
	exit 1
}

OLD="$(resolve "$1")"
NEW="$(resolve "$2")"

txt() { echo "${1%.txt}" | sed 's/\.json$//' | sed 's/$/.txt/'; }
json() { echo "${1%.json}" | sed 's/\.txt$//' | sed 's/$/.json/'; }

if command -v benchstat >/dev/null 2>&1 && [ -f "$(txt "$OLD")" ] && [ -f "$(txt "$NEW")" ]; then
	exec benchstat "$(txt "$OLD")" "$(txt "$NEW")"
fi

OLD="$(json "$OLD")"
NEW="$(json "$NEW")"

# Fallback: join the two JSON ledgers on the composite key
# "benchmark|metric" (field 1; the metric value is field 2). Relies on
# the line-per-benchmark layout bench.sh emits.
parse() {
	awk '
	/"name":/ {
		line = $0
		sub(/.*"name": "/, "", line)
		name = line
		sub(/".*/, "", name)
		line = $0
		sub(/.*"metrics": \{/, "", line)
		sub(/\}\}.*/, "", line)
		n = split(line, parts, /, /)
		for (i = 1; i <= n; i++) {
			split(parts[i], kv, /": /)
			unit = kv[1]
			sub(/^"/, "", unit)
			print name "|" unit " " kv[2]
		}
	}' "$1"
}

parse "$OLD" | sort > /tmp/benchcmp_old.$$
parse "$NEW" | sort > /tmp/benchcmp_new.$$
trap 'rm -f /tmp/benchcmp_old.$$ /tmp/benchcmp_new.$$' EXIT

join /tmp/benchcmp_old.$$ /tmp/benchcmp_new.$$ | awk '
BEGIN { printf "%-45s %-14s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta" }
{
	split($1, key, /\|/)
	delta = ($2 == 0) ? "n/a" : sprintf("%+.1f%%", ($3 - $2) / $2 * 100)
	printf "%-45s %-14s %14g %14g %9s\n", key[1], key[2], $2, $3, delta
}'
