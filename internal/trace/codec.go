package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The on-disk trace format is a line-oriented text format chosen for easy
// inspection with standard tools:
//
//	# cptraffic-trace v1
//	U <ue> <device>        one line per UE registration
//	E <millis> <ue> <type> one line per event
//
// Events may appear in any order; ReadTrace preserves file order.

const headerLine = "# cptraffic-trace v1"

// WriteTrace serializes tr to w. UE registrations are written first (in
// ascending UE order), then events in their current order.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintln(bw, headerLine); err != nil {
		return err
	}
	for _, ue := range tr.UEs() {
		if _, err := fmt.Fprintf(bw, "U %d %s\n", ue, tr.Device[ue]); err != nil {
			return err
		}
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintf(bw, "E %d %d %s\n", e.T, e.UE, e.Type); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace previously written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != headerLine {
		return nil, fmt.Errorf("trace: bad header %q", got)
	}
	tr := New()
	lineno := 1
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "U":
			ue, dt, err := parseULine(fields, line, lineno)
			if err != nil {
				return nil, err
			}
			if err := tr.SetDevice(ue, dt); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
			}
		case "E":
			ev, err := parseELine(fields, line, lineno)
			if err != nil {
				return nil, err
			}
			if _, ok := tr.Device[ev.UE]; !ok {
				return nil, fmt.Errorf("trace: line %d: event for unregistered UE %d", lineno, ev.UE)
			}
			tr.Events = append(tr.Events, ev)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", lineno, fields[0])
		}
	}
	return tr, sc.Err()
}
