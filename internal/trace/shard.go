package trace

import (
	"fmt"

	"cptraffic/internal/cp"
)

// UEShard assigns a UE to one of shards buckets by a fixed,
// platform-independent hash of its ID. The function is part of the
// sharded-fit contract (partialfit/1): every process that partitions a
// population must agree on the assignment forever, so the hash is
// pinned here (a SplitMix64 finalizer round over the UE ID) and must
// never change. It panics if shards < 1.
func UEShard(ue cp.UEID, shards int) int {
	if shards < 1 {
		panic("trace: UEShard needs shards >= 1")
	}
	z := uint64(ue) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(shards))
}

// shardSource filters an EventSource down to the UEs of one hash shard.
type shardSource struct {
	src    EventSource
	shards int
	shard  int
}

// ShardSource returns a view of src restricted to the UEs with
// UEShard(ue, shards) == shard: registrations and events for other UEs
// are dropped, relative order is preserved, so the result is itself a
// valid EventSource over a disjoint sub-population. The shards views
// for shard = 0..shards-1 partition src exactly. It errors if shards <
// 1 or shard is out of range; shards == 1 returns src unchanged.
func ShardSource(src EventSource, shards, shard int) (EventSource, error) {
	if shards < 1 {
		return nil, fmt.Errorf("trace: ShardSource needs shards >= 1, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("trace: shard %d out of range [0, %d)", shard, shards)
	}
	if shards == 1 {
		return src, nil
	}
	return &shardSource{src: src, shards: shards, shard: shard}, nil
}

// Devices implements EventSource: the underlying registrations with
// other shards' UEs filtered out (order preserved).
func (s *shardSource) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	return s.src.Devices(func(ue cp.UEID, d cp.DeviceType) error {
		if UEShard(ue, s.shards) != s.shard {
			return nil
		}
		return fn(ue, d)
	})
}

// Scan implements EventSource: the underlying events with other shards'
// UEs filtered out (canonical order preserved — dropping events cannot
// reorder the survivors).
func (s *shardSource) Scan(fn func(Event) error) error {
	return s.src.Scan(func(e Event) error {
		if UEShard(e.UE, s.shards) != s.shard {
			return nil
		}
		return fn(e)
	})
}
