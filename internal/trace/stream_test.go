package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"cptraffic/internal/cp"
)

// streamTrace builds a sorted, registered trace with n pseudo-random
// events over k UEs.
func streamTrace(t *testing.T, k, n int, seed int64) *Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	for i := 0; i < k; i++ {
		ue := cp.UEID(i * 3) // sparse ids
		if err := tr.SetDevice(ue, cp.DeviceType(rng.Intn(int(cp.NumDeviceTypes)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		tr.Append(Event{
			T:    cp.Millis(rng.Int63n(48 * 3600 * 1000)),
			UE:   cp.UEID(rng.Intn(k) * 3),
			Type: cp.EventType(rng.Intn(int(cp.NumEventTypes))),
		})
	}
	tr.Sort()
	return tr
}

func writeStream(t *testing.T, src EventSource) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := Copy(sw, src); err != nil {
		t.Fatalf("Copy into StreamWriter: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func scanAll(t *testing.T, b []byte) *Trace {
	t.Helper()
	sc, err := NewScanner(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	tr, err := collectScanner(sc)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return tr
}

// TestScannerRoundTrip: Scanner ∘ StreamWriter is the identity on
// canonical traces, including the empty and single-UE edge cases and a
// fuzz-sized trace spanning several chunks.
func TestScannerRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"empty", New()},
		{"registry-only", func() *Trace {
			tr := New()
			tr.SetDevice(7, cp.Phone)
			return tr
		}()},
		{"single-UE", func() *Trace {
			tr := New()
			tr.SetDevice(42, cp.Tablet)
			tr.Append(Event{T: 0, UE: 42, Type: cp.Attach})
			tr.Append(Event{T: 1000, UE: 42, Type: cp.ServiceRequest})
			tr.Append(Event{T: 1000, UE: 42, Type: cp.S1ConnRelease})
			return tr
		}()},
		{"multi-chunk", streamTrace(t, 20, 3*streamChunkSize+17, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := scanAll(t, writeStream(t, tc.tr))
			if !reflect.DeepEqual(got.Device, tc.tr.Device) {
				t.Fatalf("device registry mismatch: got %v want %v", got.Device, tc.tr.Device)
			}
			want := tc.tr.Events
			if len(want) == 0 {
				want = nil
			}
			gotEvs := got.Events
			if len(gotEvs) == 0 {
				gotEvs = nil
			}
			if !reflect.DeepEqual(gotEvs, want) {
				t.Fatalf("events mismatch: got %d events, want %d", len(got.Events), len(tc.tr.Events))
			}
		})
	}
}

// The StreamWriter output must be byte-identical to WriteBinaryTrace for
// the same trace — they are one code path now, but the equality is the
// contract that lets producers switch freely.
func TestStreamWriterMatchesWriteBinaryTrace(t *testing.T) {
	tr := streamTrace(t, 13, 2500, 2)
	var monolithic bytes.Buffer
	if err := WriteBinaryTrace(&monolithic, tr); err != nil {
		t.Fatal(err)
	}
	streamed := writeStream(t, tr)
	if !bytes.Equal(monolithic.Bytes(), streamed) {
		t.Fatalf("WriteBinaryTrace and StreamWriter output differ: %d vs %d bytes",
			monolithic.Len(), len(streamed))
	}
}

// Version-1 files (count-prefixed, unchunked) must stay readable.
func TestScannerReadsV1(t *testing.T) {
	// Hand-encode a v1 file: 2 UEs, 3 events.
	v1 := []byte{'C', 'P', 'T', 'B', 1,
		2,                                           // numUEs
		5, byte(cp.Phone), 3, byte(cp.ConnectedCar), // UEs 5, 8
		3,                       // numEvents
		100, 5, byte(cp.Attach), // t=100
		50, 8, byte(cp.TrackingAreaUpdate), // t=150
		0, 5, byte(cp.ServiceRequest), // t=150
	}
	got := scanAll(t, v1)
	want := New()
	want.SetDevice(5, cp.Phone)
	want.SetDevice(8, cp.ConnectedCar)
	want.Append(Event{T: 100, UE: 5, Type: cp.Attach})
	want.Append(Event{T: 150, UE: 8, Type: cp.TrackingAreaUpdate})
	want.Append(Event{T: 150, UE: 5, Type: cp.ServiceRequest})
	if !reflect.DeepEqual(got.Events, want.Events) || !reflect.DeepEqual(got.Device, want.Device) {
		t.Fatalf("v1 decode mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if tr, err := ReadBinaryTrace(bytes.NewReader(v1)); err != nil || tr.Len() != 3 {
		t.Fatalf("ReadBinaryTrace on v1: %v (len %d)", err, tr.Len())
	}
}

// Scanner handles the text format with the same streaming API.
func TestScannerReadsText(t *testing.T) {
	tr := streamTrace(t, 5, 200, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, buf.Bytes())
	if !reflect.DeepEqual(got.Events, tr.Events) || !reflect.DeepEqual(got.Device, tr.Device) {
		t.Fatal("text scan mismatch")
	}
}

// TextWriter output matches WriteTrace for a canonical trace.
func TestTextWriterMatchesWriteTrace(t *testing.T) {
	tr := streamTrace(t, 5, 100, 4)
	var want bytes.Buffer
	if err := WriteTrace(&want, tr); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	tw := NewTextWriter(&got)
	if err := Copy(tw, tr); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("TextWriter and WriteTrace output differ")
	}
}

func TestStreamWriterRejectsBadInput(t *testing.T) {
	t.Run("out-of-order-events", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		sw.SetDevice(1, cp.Phone)
		if err := sw.Write(Event{T: 100, UE: 1, Type: cp.Attach}); err != nil {
			t.Fatal(err)
		}
		if err := sw.Write(Event{T: 50, UE: 1, Type: cp.Attach}); err == nil {
			t.Fatal("want error for out-of-order event")
		}
	})
	t.Run("unregistered-UE", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		if err := sw.Write(Event{T: 0, UE: 9, Type: cp.Attach}); err == nil {
			t.Fatal("want error for unregistered UE")
		}
	})
	t.Run("negative-timestamp", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		sw.SetDevice(1, cp.Phone)
		if err := sw.Write(Event{T: -5, UE: 1, Type: cp.Attach}); err == nil {
			t.Fatal("want error for negative timestamp")
		}
	})
	t.Run("register-after-write", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		sw.SetDevice(1, cp.Phone)
		if err := sw.Write(Event{T: 0, UE: 1, Type: cp.Attach}); err != nil {
			t.Fatal(err)
		}
		if err := sw.SetDevice(2, cp.Phone); err == nil {
			t.Fatal("want error for late registration")
		}
	})
	t.Run("descending-registration", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		sw.SetDevice(5, cp.Phone)
		if err := sw.SetDevice(3, cp.Phone); err == nil {
			t.Fatal("want error for descending UE registration")
		}
	})
}

// Trace implements both EventSource and EventSink; Collect(Copy) over the
// interfaces reproduces the trace exactly, and Scan on an unsorted trace
// yields canonical order without mutating it.
func TestTraceAsSourceAndSink(t *testing.T) {
	tr := streamTrace(t, 8, 500, 5)
	got, err := Collect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) || !reflect.DeepEqual(got.Device, tr.Device) {
		t.Fatal("Collect(trace) != trace")
	}

	unsorted := New()
	unsorted.SetDevice(1, cp.Phone)
	unsorted.Append(Event{T: 500, UE: 1, Type: cp.TrackingAreaUpdate})
	unsorted.Append(Event{T: 100, UE: 1, Type: cp.Attach})
	var seen []Event
	if err := unsorted.Scan(func(e Event) error { seen = append(seen, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i].Before(seen[j]) }) {
		t.Fatal("Scan of unsorted trace not in canonical order")
	}
	if unsorted.Events[0].T != 500 {
		t.Fatal("Scan mutated the unsorted trace")
	}

	if err := tr.Write(Event{T: 0, UE: 9999, Type: cp.Attach}); err == nil {
		t.Fatal("Write for unknown UE should error, not panic")
	}
}

func TestFileSource(t *testing.T) {
	tr := streamTrace(t, 10, 1200, 6)
	dir := t.TempDir()
	for _, tc := range []struct {
		name  string
		write func(f *os.File) error
	}{
		{"binary", func(f *os.File) error { return WriteBinaryTrace(f, tr) }},
		{"text", func(f *os.File) error { return WriteTrace(f, tr) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.write(f); err != nil {
				t.Fatal(err)
			}
			f.Close()
			src, err := NewFileSource(path)
			if err != nil {
				t.Fatal(err)
			}
			// Two full passes: FileSource must be re-iterable.
			for pass := 0; pass < 2; pass++ {
				got, err := Collect(src)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Events, tr.Events) || !reflect.DeepEqual(got.Device, tr.Device) {
					t.Fatalf("pass %d: FileSource decode mismatch", pass)
				}
			}
		})
	}

	if _, err := NewFileSource(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileSource(bad); err == nil {
		t.Fatal("want error for non-trace file")
	}
}

// sliceIter adapts a pre-sorted event slice to EventIterator.
type sliceIter struct {
	evs []Event
	i   int
}

func (s *sliceIter) Next() (Event, bool) {
	if s.i >= len(s.evs) {
		return Event{}, false
	}
	e := s.evs[s.i]
	s.i++
	return e, true
}

func TestMergeScan(t *testing.T) {
	tr := streamTrace(t, 9, 900, 7)
	// Split per-UE (each per-UE stream is individually ordered).
	per := tr.PerUE()
	var its []EventIterator
	for _, ue := range tr.UEs() {
		its = append(its, &sliceIter{evs: per[ue]})
	}
	var merged []Event
	if err := MergeScan(func(e Event) error { merged = append(merged, e); return nil }, its); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, tr.Events) {
		t.Fatalf("MergeScan order mismatch: got %d events, want %d", len(merged), len(tr.Events))
	}

	if err := MergeScan(func(Event) error { return fmt.Errorf("boom") },
		[]EventIterator{&sliceIter{evs: tr.Events[:10]}}); err == nil {
		t.Fatal("MergeScan should propagate fn errors")
	}
}
