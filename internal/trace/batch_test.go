package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/stats"
)

// randomTrace builds a registered, canonically sorted trace with n events
// over nUEs UEs.
func randomTrace(t testing.TB, n, nUEs int, seed uint64) *Trace {
	t.Helper()
	r := stats.NewRNG(seed)
	tr := New()
	for i := 0; i < nUEs; i++ {
		if err := tr.SetDevice(cp.UEID(i), cp.DeviceType(r.Intn(cp.NumDeviceTypes))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, Event{
			T:    cp.Millis(r.Intn(1 << 20)),
			UE:   cp.UEID(r.Intn(nUEs)),
			Type: cp.EventType(r.Intn(cp.NumEventTypes)),
		})
	}
	tr.Sort()
	return tr
}

func TestBatchBasics(t *testing.T) {
	b := NewBatch(4)
	if b.Len() != 0 || b.Cap() != 4 {
		t.Fatalf("fresh batch: len=%d cap=%d", b.Len(), b.Cap())
	}
	evs := []Event{
		{T: 5, UE: 2, Type: cp.Attach},
		{T: 9, UE: 0, Type: cp.Handover},
		{T: 9, UE: 1, Type: cp.Detach},
	}
	for _, e := range evs {
		b.Append(e)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i, want := range evs {
		if got := b.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	if got := b.AppendTo(nil); !reflect.DeepEqual(got, evs) {
		t.Fatalf("AppendTo = %v, want %v", got, evs)
	}
	b.Grow(100)
	if b.Cap() < 100 || b.Len() != 3 || b.At(1) != evs[1] {
		t.Fatalf("Grow lost contents: len=%d cap=%d", b.Len(), b.Cap())
	}
	b.Reset()
	if b.Len() != 0 || b.Cap() < 100 {
		t.Fatalf("Reset: len=%d cap=%d", b.Len(), b.Cap())
	}
}

// collectBatched drains src's batched face and returns the concatenated
// events plus the sizes of the delivered batches.
func collectBatched(t testing.TB, src BatchSource) ([]Event, []int) {
	t.Helper()
	var evs []Event
	var sizes []int
	if err := src.ScanBatches(func(b *Batch) error {
		sizes = append(sizes, b.Len())
		evs = b.AppendTo(evs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return evs, sizes
}

// TestBatchAdapterRoundTrip is the Batch adapter property test: for
// trace sizes around the batch-size boundaries (including the empty
// trace and ragged final batches), event → batch → event adaptation
// must reproduce the event sequence exactly.
func TestBatchAdapterRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 7, DefaultBatchSize - 1, DefaultBatchSize, DefaultBatchSize + 1, 3*DefaultBatchSize + 17}
	for _, n := range sizes {
		tr := randomTrace(t, n, 13, uint64(n)+1)
		// Per-event source through the batching adapter.
		bsrc := AsBatchSource(struct{ EventSource }{tr}) // hide the native face
		got, batches := collectBatched(t, bsrc)
		if !reflect.DeepEqual(got, tr.Events) && !(n == 0 && len(got) == 0) {
			t.Fatalf("n=%d: batched events differ from source", n)
		}
		for i, sz := range batches {
			if sz == 0 {
				t.Fatalf("n=%d: empty batch delivered", n)
			}
			if i < len(batches)-1 && sz != DefaultBatchSize {
				t.Fatalf("n=%d: interior batch of size %d", n, sz)
			}
		}
		// And back: batched source through the unbatching adapter.
		esrc := AsEventSource(struct{ BatchSource }{bsrc})
		var back []Event
		if err := esrc.Scan(func(e Event) error {
			back = append(back, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, tr.Events) && !(n == 0 && len(back) == 0) {
			t.Fatalf("n=%d: unbatched events differ from source", n)
		}
	}
}

func TestAsBatchSourcePrefersNative(t *testing.T) {
	tr := New()
	if _, ok := AsBatchSource(tr).(*Trace); !ok {
		t.Fatal("AsBatchSource did not return the native *Trace")
	}
	if _, ok := AsEventSource(tr).(*Trace); !ok {
		t.Fatal("AsEventSource did not return the native *Trace")
	}
	if _, ok := AsBatchSink(tr).(*Trace); !ok {
		t.Fatal("AsBatchSink did not return the native *Trace")
	}
}

// TestCopyBatchesMatchesCopy pins the tentpole byte-identity at the trace
// layer: CopyBatches into either writer produces the same bytes as Copy,
// for empty, ragged, and multi-batch traces.
func TestCopyBatchesMatchesCopy(t *testing.T) {
	for _, n := range []int{0, 3, DefaultBatchSize, 2*DefaultBatchSize + 9} {
		tr := randomTrace(t, n, 7, uint64(n)+3)
		for _, codec := range []string{"text", "binary"} {
			mk := func(w *bytes.Buffer) interface {
				EventSink
				Close() error
			} {
				if codec == "text" {
					return NewTextWriter(w)
				}
				return NewStreamWriter(w)
			}
			var perEvent, batched bytes.Buffer
			w1 := mk(&perEvent)
			if err := Copy(w1, tr); err != nil {
				t.Fatal(err)
			}
			if err := w1.Close(); err != nil {
				t.Fatal(err)
			}
			w2 := mk(&batched)
			if err := CopyBatches(w2, tr); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(perEvent.Bytes(), batched.Bytes()) {
				t.Fatalf("n=%d %s: CopyBatches bytes differ from Copy", n, codec)
			}
		}
	}
}

func TestTraceWriteBatchChecksRegistry(t *testing.T) {
	tr := New()
	if err := tr.SetDevice(1, cp.Phone); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(0)
	b.Append(Event{T: 1, UE: 1, Type: cp.Attach})
	b.Append(Event{T: 2, UE: 9, Type: cp.Attach})
	if err := tr.WriteBatch(b); err == nil {
		t.Fatal("WriteBatch accepted an unregistered UE")
	}
	if len(tr.Events) != 0 {
		t.Fatalf("failed WriteBatch left %d events", len(tr.Events))
	}
}

// stutterIterator yields a fixed event sequence but only one event per
// NextRun call — the adversarial run boundary for MergeBatches.
type stutterIterator struct{ evs []Event }

func (s *stutterIterator) NextRun(dst []Event) int {
	if len(s.evs) == 0 || len(dst) == 0 {
		return 0
	}
	dst[0] = s.evs[0]
	s.evs = s.evs[1:]
	return 1
}

// TestMergeBatchesMatchesMergeScan pins that the batch-refill merge is
// byte-identical to the per-event merge for random run sets, and that
// run boundaries (down to one event per refill) cannot affect the output.
func TestMergeBatchesMatchesMergeScan(t *testing.T) {
	r := stats.NewRNG(42)
	for round := 0; round < 30; round++ {
		k := r.Intn(40) // 0..39 streams
		runs := make([][]Event, k)
		for i := range runs {
			n := r.Intn(150)
			evs := make([]Event, n)
			for j := range evs {
				evs[j] = Event{
					T:    cp.Millis(r.Intn(5000)),
					UE:   cp.UEID(i),
					Type: cp.EventType(r.Intn(cp.NumEventTypes)),
				}
			}
			tmp := Trace{Events: evs}
			tmp.Sort()
			runs[i] = tmp.Events
		}
		var want []Event
		its := make([]EventIterator, k)
		for i := range runs {
			its[i] = &SliceIterator{Events: runs[i]}
		}
		if err := MergeScan(func(e Event) error {
			want = append(want, e)
			return nil
		}, its); err != nil {
			t.Fatal(err)
		}
		for name, mk := range map[string]func(i int) BatchIterator{
			"slice":   func(i int) BatchIterator { return &SliceIterator{Events: runs[i]} },
			"stutter": func(i int) BatchIterator { return &stutterIterator{evs: runs[i]} },
		} {
			bits := make([]BatchIterator, k)
			for i := range runs {
				bits[i] = mk(i)
			}
			var got []Event
			if err := MergeBatches(func(b *Batch) error {
				got = b.AppendTo(got)
				return nil
			}, bits); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d (%s): MergeBatches differs from MergeScan (k=%d, n=%d vs %d)",
					round, name, k, len(got), len(want))
			}
		}
	}
}

func TestSliceIteratorNextRun(t *testing.T) {
	evs := []Event{{T: 1}, {T: 2}, {T: 3}, {T: 4}, {T: 5}}
	it := &SliceIterator{Events: evs}
	buf := make([]Event, 2)
	var got []Event
	for {
		n := it.NextRun(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("NextRun sequence = %v", got)
	}
}

// TestScannerScanBatch pins that the batched decode yields exactly the
// per-event decode for both codecs, including ragged final batches.
func TestScannerScanBatch(t *testing.T) {
	tr := randomTrace(t, 2*DefaultBatchSize+37, 11, 99)
	dir := t.TempDir()
	for _, codec := range []string{"text", "binary"} {
		path := filepath.Join(dir, "trace."+codec)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		var w interface {
			EventSink
			Close() error
		}
		if codec == "text" {
			w = NewTextWriter(f)
		} else {
			w = NewStreamWriter(f)
		}
		if err := Copy(w, tr); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()

		fs, err := NewFileSource(path)
		if err != nil {
			t.Fatal(err)
		}
		var perEvent []Event
		if err := fs.Scan(func(e Event) error {
			perEvent = append(perEvent, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		batched, _ := collectBatched(t, fs)
		if !reflect.DeepEqual(batched, perEvent) {
			t.Fatalf("%s: ScanBatches differs from Scan", codec)
		}
	}
}
