package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cptraffic/internal/cp"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := mkTrace(t)
	tr.Sort()
	var buf bytes.Buffer
	if err := WriteBinaryTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) || !reflect.DeepEqual(got.Device, tr.Device) {
		t.Fatalf("round trip mismatch")
	}
}

func TestBinarySortsUnsortedInput(t *testing.T) {
	tr := mkTrace(t) // intentionally unsorted
	var buf bytes.Buffer
	if err := WriteBinaryTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sorted() {
		t.Fatal("binary output not sorted")
	}
	if got.Len() != tr.Len() {
		t.Fatalf("lost events: %d vs %d", got.Len(), tr.Len())
	}
	// The writer must not have mutated the caller's trace.
	if tr.Sorted() {
		t.Fatal("writer sorted the caller's events in place")
	}
}

func TestBinaryRejectsNegativeTimestamps(t *testing.T) {
	tr := New()
	tr.SetDevice(1, cp.Phone)
	tr.Events = append(tr.Events, Event{T: -5, UE: 1, Type: cp.Attach})
	if err := WriteBinaryTrace(&bytes.Buffer{}, tr); err == nil {
		t.Fatal("negative timestamp encoded")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		nUE := int(n%15) + 1
		for i := 0; i < nUE; i++ {
			// Sparse, out-of-order ids exercise the delta encoding.
			tr.SetDevice(cp.UEID(i*i*7), cp.DeviceTypes[rng.Intn(cp.NumDeviceTypes)])
		}
		ues := tr.UEs()
		for i := 0; i < int(n); i++ {
			tr.Append(Event{
				T:    cp.Millis(rng.Int63n(int64(cp.Week))),
				UE:   ues[rng.Intn(len(ues))],
				Type: cp.EventTypes[rng.Intn(cp.NumEventTypes)],
			})
		}
		tr.Sort()
		var buf bytes.Buffer
		if err := WriteBinaryTrace(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinaryTrace(&buf)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(got.Device, tr.Device) {
			return false
		}
		return len(got.Events) == len(tr.Events) &&
			(len(tr.Events) == 0 || reflect.DeepEqual(got.Events, tr.Events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryErrors(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("CPTX\x01"),                       // bad magic
		[]byte("CPTB\x09"),                       // bad version
		[]byte("CPTB\x01\x01"),                   // truncated UE table
		append([]byte("CPTB\x01\x01\x00"), 0xFF), // device byte invalid... (0x00 device ok, event count 0xFF varint truncated)
	}
	for i, in := range cases {
		if _, err := ReadBinaryTrace(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed binary accepted", i)
		}
	}
	// Invalid device byte.
	bad := []byte("CPTB\x01\x01\x00\x63") // 1 UE, id 0, device 99
	if _, err := ReadBinaryTrace(bytes.NewReader(bad)); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestReadAutoDetectsBothFormats(t *testing.T) {
	tr := mkTrace(t)
	tr.Sort()

	var text bytes.Buffer
	if err := WriteTrace(&text, tr); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadAuto(&text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText.Events, tr.Events) {
		t.Fatal("auto text mismatch")
	}

	var bin bytes.Buffer
	if err := WriteBinaryTrace(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadAuto(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin.Events, tr.Events) {
		t.Fatal("auto binary mismatch")
	}

	if _, err := ReadAuto(bytes.NewReader([]byte("CPTB\x07rest"))); err == nil {
		t.Fatal("bad version accepted by auto reader")
	}
	if _, err := ReadAuto(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryIsSmallerThanText(t *testing.T) {
	// Build a moderately sized trace.
	tr := New()
	for i := 0; i < 50; i++ {
		tr.SetDevice(cp.UEID(i), cp.Phone)
	}
	for i := 0; i < 5000; i++ {
		tr.Append(Event{T: cp.Millis(i * 720), UE: cp.UEID(i % 50), Type: cp.EventTypes[i%cp.NumEventTypes]})
	}
	var text, bin bytes.Buffer
	if err := WriteTrace(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryTrace(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > text.Len() {
		t.Fatalf("binary (%d B) not at least 3x smaller than text (%d B)", bin.Len(), text.Len())
	}
}
