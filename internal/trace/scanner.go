package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"cptraffic/internal/cp"
)

// Scanner reads a trace file incrementally: the device registry is parsed
// up front (O(UEs)), then events are decoded one at a time into a reused
// record, so a multi-week trace is never resident in memory. It handles
// both binary versions and the text format.
//
//	sc, err := trace.NewScanner(r)
//	for sc.Scan() {
//		ev := sc.Event()
//		...
//	}
//	err = sc.Err()
type Scanner struct {
	br *bufio.Reader

	devs   []deviceEntry // ascending UE order
	devSet map[cp.UEID]cp.DeviceType

	mode    scanMode
	ev      Event
	err     error
	done    bool
	started bool

	// Binary decoding state.
	remaining uint64 // v1: events left; v2: records left in current chunk
	prevT     uint64
	hint      uint64 // total event count when known (v1)

	// Text decoding state.
	lineno  int
	pending *Event // first event line, parsed while reading the registry
}

type deviceEntry struct {
	UE cp.UEID
	D  cp.DeviceType
}

type scanMode uint8

const (
	scanBinaryV1 scanMode = iota
	scanBinaryV2
	scanText
)

// NewScanner detects the trace format from the leading bytes and parses
// the header and device registry, leaving the event stream untouched.
func NewScanner(r io.Reader) (*Scanner, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: peeking format: %w", err)
	}
	if [4]byte{head[0], head[1], head[2], head[3]} == binaryMagic {
		if _, err := br.Discard(4); err != nil {
			return nil, err
		}
		ver, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return newBinaryScanner(br, ver)
	}
	return newTextScanner(br)
}

// newBinaryScanner parses the UE table of a binary trace whose magic and
// version byte have already been consumed.
func newBinaryScanner(br *bufio.Reader, version byte) (*Scanner, error) {
	s := &Scanner{br: br, devSet: make(map[cp.UEID]cp.DeviceType)}
	switch version {
	case 1:
		s.mode = scanBinaryV1
	case binaryVersion:
		s.mode = scanBinaryV2
	default:
		return nil, fmt.Errorf("trace: unsupported binary version %d", version)
	}
	numUEs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading UE count: %w", err)
	}
	prevUE := uint64(0)
	for i := uint64(0); i < numUEs; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading UE %d: %w", i, err)
		}
		ue := delta
		if i > 0 {
			ue = prevUE + delta
		}
		prevUE = ue
		if ue > uint64(^cp.UEID(0)) {
			return nil, fmt.Errorf("trace: UE id %d overflows", ue)
		}
		db, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		d := cp.DeviceType(db)
		if !d.Valid() {
			return nil, fmt.Errorf("trace: invalid device type %d", db)
		}
		if err := s.register(cp.UEID(ue), d); err != nil {
			return nil, err
		}
	}
	if s.mode == scanBinaryV1 {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event count: %w", err)
		}
		s.remaining, s.hint = n, n
	}
	return s, nil
}

// newTextScanner parses the text header plus the leading U lines. The
// streaming text contract requires every registration before the first
// event; ReadTrace remains the permissive whole-file parser.
func newTextScanner(br *bufio.Reader) (*Scanner, error) {
	s := &Scanner{br: br, mode: scanText, devSet: make(map[cp.UEID]cp.DeviceType)}
	line, err := s.readLine()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty input")
		}
		return nil, err
	}
	if strings.TrimSpace(line) != headerLine {
		return nil, fmt.Errorf("trace: bad header %q", strings.TrimSpace(line))
	}
	for {
		line, err := s.readLine()
		if err == io.EOF {
			s.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "U":
			ue, d, err := parseULine(fields, line, s.lineno)
			if err != nil {
				return nil, err
			}
			if err := s.register(ue, d); err != nil {
				return nil, err
			}
		case "E":
			ev, err := parseELine(fields, line, s.lineno)
			if err != nil {
				return nil, err
			}
			s.pending = &ev
			// Registrations are complete; sort them into the canonical
			// ascending order the Devices contract promises.
			sort.Slice(s.devs, func(i, j int) bool { return s.devs[i].UE < s.devs[j].UE })
			return s, nil
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", s.lineno, fields[0])
		}
	}
	sort.Slice(s.devs, func(i, j int) bool { return s.devs[i].UE < s.devs[j].UE })
	return s, nil
}

func (s *Scanner) register(ue cp.UEID, d cp.DeviceType) error {
	if prev, ok := s.devSet[ue]; ok {
		if prev != d {
			return fmt.Errorf("trace: UE %d already registered as %v, cannot change to %v", ue, prev, d)
		}
		return nil
	}
	s.devSet[ue] = d
	s.devs = append(s.devs, deviceEntry{UE: ue, D: d})
	return nil
}

func (s *Scanner) readLine() (string, error) {
	line, err := s.br.ReadString('\n')
	if err == io.EOF && line != "" {
		err = nil // final line without a trailing newline
	}
	if err != nil {
		return "", err
	}
	s.lineno++
	return line, nil
}

// NumUEs returns the number of registered UEs.
func (s *Scanner) NumUEs() int { return len(s.devs) }

// NumEventsHint returns the total event count when the header carries one
// (binary v1), else 0 — useful only for preallocation.
func (s *Scanner) NumEventsHint() uint64 { return s.hint }

// Device returns the device type of a registered UE.
func (s *Scanner) Device(ue cp.UEID) (cp.DeviceType, bool) {
	d, ok := s.devSet[ue]
	return d, ok
}

// Devices iterates the registry in ascending UE order.
func (s *Scanner) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	for _, e := range s.devs {
		if err := fn(e.UE, e.D); err != nil {
			return err
		}
	}
	return nil
}

// Scan advances to the next event, returning false at the end of the
// stream or on error (distinguished by Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	switch s.mode {
	case scanBinaryV1, scanBinaryV2:
		return s.scanBinary()
	default:
		return s.scanText()
	}
}

// Event returns the record decoded by the last successful Scan. It is
// overwritten by the next Scan.
func (s *Scanner) Event() Event { return s.ev }

// ScanBatch resets b and fills it with up to b.Cap() events (growing an
// empty batch to DefaultBatchSize), reporting whether it decoded any.
// It is the batched face of Scan: looping ScanBatch yields exactly the
// events Scan would, DefaultBatchSize at a time, without an interface
// hop per event. Errors surface through Err as usual.
//
//cplint:hotpath the batched ingest loop: decodes straight into the reused batch columns
func (s *Scanner) ScanBatch(b *Batch) bool {
	b.Reset()
	if b.Cap() == 0 {
		b.Grow(DefaultBatchSize)
	}
	for b.Len() < b.Cap() && s.Scan() {
		b.T = append(b.T, s.ev.T)
		b.UE = append(b.UE, s.ev.UE)
		b.Type = append(b.Type, s.ev.Type)
	}
	return b.Len() > 0
}

// Err returns the first error encountered (nil after a clean end).
func (s *Scanner) Err() error { return s.err }

func (s *Scanner) fail(err error) bool {
	s.err = err
	return false
}

func (s *Scanner) scanBinary() bool {
	if s.mode == scanBinaryV2 {
		// Chunked: a zero chunk length terminates the stream.
		for s.remaining == 0 {
			n, err := binary.ReadUvarint(s.br)
			if err != nil {
				return s.fail(fmt.Errorf("trace: reading event chunk: %w", err))
			}
			if n == 0 {
				s.done = true
				return false
			}
			s.remaining = n
		}
	} else if s.remaining == 0 {
		s.done = true
		return false
	}
	delta, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.fail(fmt.Errorf("trace: reading event: %w", err))
	}
	t := delta
	if s.started {
		t = s.prevT + delta
	}
	if t > math.MaxInt64 {
		return s.fail(fmt.Errorf("trace: timestamp %d overflows", t))
	}
	s.prevT = t
	s.started = true
	ue, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.fail(err)
	}
	tb, err := s.br.ReadByte()
	if err != nil {
		return s.fail(err)
	}
	et := cp.EventType(tb)
	if !et.Valid() {
		return s.fail(fmt.Errorf("trace: invalid event type %d", tb))
	}
	if _, ok := s.devSet[cp.UEID(ue)]; !ok {
		return s.fail(fmt.Errorf("trace: event for unregistered UE %d", ue))
	}
	s.remaining--
	s.ev = Event{T: cp.Millis(t), UE: cp.UEID(ue), Type: et}
	return true
}

func (s *Scanner) scanText() bool {
	if s.pending != nil {
		s.ev = *s.pending
		s.pending = nil
		return s.checkTextEvent()
	}
	for {
		line, err := s.readLine()
		if err == io.EOF {
			s.done = true
			return false
		}
		if err != nil {
			return s.fail(err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "E":
			ev, err := parseELine(fields, line, s.lineno)
			if err != nil {
				return s.fail(err)
			}
			s.ev = ev
			return s.checkTextEvent()
		case "U":
			return s.fail(fmt.Errorf("trace: line %d: registration after events (streaming text requires all U lines first)", s.lineno))
		default:
			return s.fail(fmt.Errorf("trace: line %d: unknown record %q", s.lineno, fields[0]))
		}
	}
}

func (s *Scanner) checkTextEvent() bool {
	if _, ok := s.devSet[s.ev.UE]; !ok {
		return s.fail(fmt.Errorf("trace: line %d: event for unregistered UE %d", s.lineno, s.ev.UE))
	}
	if s.ev.T < 0 {
		return s.fail(fmt.Errorf("trace: line %d: negative timestamp %d", s.lineno, s.ev.T))
	}
	return true
}

func parseULine(fields []string, line string, lineno int) (cp.UEID, cp.DeviceType, error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("trace: line %d: want 'U <ue> <device>', got %q", lineno, line)
	}
	ue, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("trace: line %d: bad UE id: %v", lineno, err)
	}
	dt, err := cp.ParseDeviceType(fields[2])
	if err != nil {
		return 0, 0, fmt.Errorf("trace: line %d: %v", lineno, err)
	}
	return cp.UEID(ue), dt, nil
}

func parseELine(fields []string, line string, lineno int) (Event, error) {
	if len(fields) != 4 {
		return Event{}, fmt.Errorf("trace: line %d: want 'E <ms> <ue> <type>', got %q", lineno, line)
	}
	t, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("trace: line %d: bad timestamp: %v", lineno, err)
	}
	ue, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("trace: line %d: bad UE id: %v", lineno, err)
	}
	et, err := cp.ParseEventType(fields[3])
	if err != nil {
		return Event{}, fmt.Errorf("trace: line %d: %v", lineno, err)
	}
	return Event{T: cp.Millis(t), UE: cp.UEID(ue), Type: et}, nil
}

// streamChunkSize is the event count per binary-v2 chunk: small enough
// that a writer's buffered window stays a few KB, large enough that the
// per-chunk length prefix is noise (<0.1% of the record bytes).
const streamChunkSize = 1024

// StreamWriter writes the binary trace format incrementally: register
// every UE (ascending order), then Write events in canonical order, then
// Close. Unlike WriteBinaryTrace it never needs the event count — events
// are framed in chunks with a zero terminator (format version 2) — so a
// generator can pour an unbounded stream through O(1) writer state.
type StreamWriter struct {
	bw     *bufio.Writer
	devs   []deviceEntry
	devSet map[cp.UEID]cp.DeviceType

	started bool // header + UE table written
	closed  bool
	prevT   cp.Millis
	last    Event
	hasLast bool

	chunk   []byte // encoded records of the pending chunk, reused across flushes
	chunkN  int
	scratch [binary.MaxVarintLen64]byte
}

// NewStreamWriter prepares an incremental binary trace writer on w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{
		bw:     bufio.NewWriterSize(w, 1<<16),
		devSet: make(map[cp.UEID]cp.DeviceType),
	}
}

// SetDevice registers a UE. All registrations must precede the first
// Write and arrive in ascending UE order (the EventSource contract).
func (sw *StreamWriter) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	if sw.started {
		return fmt.Errorf("trace: SetDevice(%d) after events started", ue)
	}
	if !d.Valid() {
		return fmt.Errorf("trace: invalid device type %d", d)
	}
	if prev, ok := sw.devSet[ue]; ok {
		if prev != d {
			return fmt.Errorf("trace: UE %d already registered as %v, cannot change to %v", ue, prev, d)
		}
		return nil
	}
	if n := len(sw.devs); n > 0 && sw.devs[n-1].UE >= ue {
		return fmt.Errorf("trace: UE %d registered out of order (after %d)", ue, sw.devs[n-1].UE)
	}
	sw.devSet[ue] = d
	sw.devs = append(sw.devs, deviceEntry{UE: ue, D: d})
	return nil
}

func (sw *StreamWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(sw.scratch[:], v)
	_, err := sw.bw.Write(sw.scratch[:n])
	return err
}

func (sw *StreamWriter) writeHeader() error {
	if _, err := sw.bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := sw.bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	if err := sw.putUvarint(uint64(len(sw.devs))); err != nil {
		return err
	}
	prevUE := uint64(0)
	for i, e := range sw.devs {
		delta := uint64(e.UE)
		if i > 0 {
			delta = uint64(e.UE) - prevUE
		}
		prevUE = uint64(e.UE)
		if err := sw.putUvarint(delta); err != nil {
			return err
		}
		if err := sw.bw.WriteByte(byte(e.D)); err != nil {
			return err
		}
	}
	sw.started = true
	return nil
}

// Write appends one event. Events must be registered, non-negative, and
// arrive in canonical order.
func (sw *StreamWriter) Write(e Event) error {
	if sw.closed {
		return fmt.Errorf("trace: Write after Close")
	}
	if _, ok := sw.devSet[e.UE]; !ok {
		return fmt.Errorf("trace: event for unregistered UE %d", e.UE)
	}
	if e.T < 0 {
		return fmt.Errorf("trace: binary format cannot encode negative timestamp %d", e.T)
	}
	if sw.hasLast && e.Before(sw.last) {
		return fmt.Errorf("trace: event %v out of canonical order (after %v)", e, sw.last)
	}
	if !sw.started {
		if err := sw.writeHeader(); err != nil {
			return err
		}
	}
	sw.appendRecord(e)
	if sw.chunkN >= streamChunkSize {
		return sw.flushChunk()
	}
	return nil
}

// appendRecord delta-encodes one already-validated event into the reused
// chunk buffer and advances the writer's order state.
//
//cplint:hotpath runs once per written event; varint appends into the reused chunk buffer
func (sw *StreamWriter) appendRecord(e Event) {
	delta := uint64(e.T)
	if sw.hasLast {
		delta = uint64(e.T - sw.prevT)
	}
	n := binary.PutUvarint(sw.scratch[:], delta)
	sw.chunk = append(sw.chunk, sw.scratch[:n]...)
	n = binary.PutUvarint(sw.scratch[:], uint64(e.UE))
	sw.chunk = append(sw.chunk, sw.scratch[:n]...)
	sw.chunk = append(sw.chunk, byte(e.Type))
	sw.chunkN++
	sw.prevT = e.T
	sw.last, sw.hasLast = e, true
}

// WriteBatch appends a whole batch of events, enforcing exactly the
// per-event Write checks and producing byte-identical output: records
// accumulate in the same reused chunk buffer and chunks flush at the
// same streamChunkSize boundaries, so chunk framing is independent of
// how events were grouped into batches.
func (sw *StreamWriter) WriteBatch(b *Batch) error {
	if sw.closed {
		return fmt.Errorf("trace: Write after Close")
	}
	if b.Len() > 0 && !sw.started {
		if err := sw.writeHeader(); err != nil {
			return err
		}
	}
	for i := range b.T {
		e := Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]}
		if _, ok := sw.devSet[e.UE]; !ok {
			return fmt.Errorf("trace: event for unregistered UE %d", e.UE)
		}
		if e.T < 0 {
			return fmt.Errorf("trace: binary format cannot encode negative timestamp %d", e.T)
		}
		if sw.hasLast && e.Before(sw.last) {
			return fmt.Errorf("trace: event %v out of canonical order (after %v)", e, sw.last)
		}
		sw.appendRecord(e)
		if sw.chunkN >= streamChunkSize {
			if err := sw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (sw *StreamWriter) flushChunk() error {
	if sw.chunkN == 0 {
		return nil
	}
	if err := sw.putUvarint(uint64(sw.chunkN)); err != nil {
		return err
	}
	if _, err := sw.bw.Write(sw.chunk); err != nil {
		return err
	}
	sw.chunk = sw.chunk[:0]
	sw.chunkN = 0
	return nil
}

// Close flushes the final chunk, writes the stream terminator, and
// flushes the buffer. It does not close the underlying writer.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if !sw.started {
		if err := sw.writeHeader(); err != nil {
			return err
		}
	}
	if err := sw.flushChunk(); err != nil {
		return err
	}
	if err := sw.putUvarint(0); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// TextWriter writes the line-oriented text format incrementally, with the
// same SetDevice/Write/Close protocol as StreamWriter. Its output for a
// canonical stream is byte-identical to WriteTrace of the collected
// trace.
type TextWriter struct {
	bw     *bufio.Writer
	devSet map[cp.UEID]cp.DeviceType

	wroteHeader bool
	seenEvent   bool
	closed      bool
	last        Event
	hasLast     bool

	// line is the reused record-formatting buffer: per-event fmt verbs
	// would box every integer argument, so the writer appends with
	// strconv instead (byte-identical output, zero steady-state
	// allocations).
	line []byte
}

// NewTextWriter prepares an incremental text trace writer on w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{bw: bufio.NewWriterSize(w, 1<<16), devSet: make(map[cp.UEID]cp.DeviceType)}
}

func (tw *TextWriter) header() error {
	if tw.wroteHeader {
		return nil
	}
	tw.wroteHeader = true
	_, err := fmt.Fprintln(tw.bw, headerLine)
	return err
}

// SetDevice registers a UE; registrations must precede the first Write.
func (tw *TextWriter) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	if tw.seenEvent {
		return fmt.Errorf("trace: SetDevice(%d) after events started", ue)
	}
	if !d.Valid() {
		return fmt.Errorf("trace: invalid device type %d", d)
	}
	if prev, ok := tw.devSet[ue]; ok {
		if prev != d {
			return fmt.Errorf("trace: UE %d already registered as %v, cannot change to %v", ue, prev, d)
		}
		return nil
	}
	if err := tw.header(); err != nil {
		return err
	}
	tw.devSet[ue] = d
	_, err := tw.bw.Write(tw.formatDevice(ue, d))
	return err
}

// formatDevice renders one U line into the reused line buffer.
//
//cplint:hotpath strconv.Append* into the reused buffer, no fmt, no fresh slices
func (tw *TextWriter) formatDevice(ue cp.UEID, d cp.DeviceType) []byte {
	b := append(tw.line[:0], 'U', ' ')
	b = strconv.AppendUint(b, uint64(ue), 10)
	b = append(b, ' ')
	b = append(b, d.String()...)
	b = append(b, '\n')
	tw.line = b
	return b
}

// Write appends one event line.
func (tw *TextWriter) Write(e Event) error {
	if tw.closed {
		return fmt.Errorf("trace: Write after Close")
	}
	if _, ok := tw.devSet[e.UE]; !ok {
		return fmt.Errorf("trace: event for unregistered UE %d", e.UE)
	}
	if tw.hasLast && e.Before(tw.last) {
		return fmt.Errorf("trace: event %v out of canonical order (after %v)", e, tw.last)
	}
	if err := tw.header(); err != nil {
		return err
	}
	tw.seenEvent = true
	tw.last, tw.hasLast = e, true
	_, err := tw.bw.Write(tw.formatEvent(e))
	return err
}

// formatEvent renders one E line into the reused line buffer — the
// per-event formatting on the streamed-write path.
//
//cplint:hotpath runs once per written event; strconv.Append* into the reused buffer
func (tw *TextWriter) formatEvent(e Event) []byte {
	b := append(tw.line[:0], 'E', ' ')
	b = strconv.AppendInt(b, int64(e.T), 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, uint64(e.UE), 10)
	b = append(b, ' ')
	b = append(b, e.Type.String()...)
	b = append(b, '\n')
	tw.line = b
	return b
}

// WriteBatch appends a whole batch of event lines with the same checks
// and bytes as per-event Writes: each record formats into the reused line
// buffer, so batching only removes the per-event call overhead.
func (tw *TextWriter) WriteBatch(b *Batch) error {
	if tw.closed {
		return fmt.Errorf("trace: Write after Close")
	}
	if b.Len() > 0 {
		if err := tw.header(); err != nil {
			return err
		}
	}
	for i := range b.T {
		e := Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]}
		if _, ok := tw.devSet[e.UE]; !ok {
			return fmt.Errorf("trace: event for unregistered UE %d", e.UE)
		}
		if tw.hasLast && e.Before(tw.last) {
			return fmt.Errorf("trace: event %v out of canonical order (after %v)", e, tw.last)
		}
		tw.seenEvent = true
		tw.last, tw.hasLast = e, true
		if _, err := tw.bw.Write(tw.formatEvent(e)); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the buffer; it does not close the underlying writer.
func (tw *TextWriter) Close() error {
	if tw.closed {
		return nil
	}
	tw.closed = true
	if err := tw.header(); err != nil {
		return err
	}
	return tw.bw.Flush()
}

// FileSource is a re-iterable EventSource backed by a trace file (binary
// or text). Every Devices/Scan call reopens the file, so concurrent
// passes are independent and peak memory is the registry plus one decode
// record — never the event sequence.
type FileSource struct {
	Path string
}

// NewFileSource validates that path holds a parseable trace header and
// returns the source.
func NewFileSource(path string) (*FileSource, error) {
	fs := &FileSource{Path: path}
	f, sc, err := fs.open()
	if err != nil {
		return nil, err
	}
	f.Close()
	_ = sc
	return fs, nil
}

func (fs *FileSource) open() (*os.File, *Scanner, error) {
	f, err := os.Open(fs.Path)
	if err != nil {
		return nil, nil, err
	}
	sc, err := NewScanner(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, sc, nil
}

// Devices implements EventSource from the file's registry table.
func (fs *FileSource) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	f, sc, err := fs.open()
	if err != nil {
		return err
	}
	defer f.Close()
	return sc.Devices(fn)
}

// Scan implements EventSource, enforcing the canonical-order stream
// contract as it decodes.
func (fs *FileSource) Scan(fn func(Event) error) error {
	f, sc, err := fs.open()
	if err != nil {
		return err
	}
	defer f.Close()
	var last Event
	hasLast := false
	for sc.Scan() {
		ev := sc.Event()
		if hasLast && ev.Before(last) {
			return fmt.Errorf("trace: %s: event %v out of canonical order (after %v)", fs.Path, ev, last)
		}
		last, hasLast = ev, true
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ScanBatches implements BatchSource: the file's events decode straight
// into a reused batch via Scanner.ScanBatch, with the same canonical-order
// enforcement as Scan applied across batch boundaries.
func (fs *FileSource) ScanBatches(fn func(*Batch) error) error {
	f, sc, err := fs.open()
	if err != nil {
		return err
	}
	defer f.Close()
	b := NewBatch(DefaultBatchSize)
	var last Event
	hasLast := false
	for sc.ScanBatch(b) {
		for i := range b.T {
			ev := Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]}
			if hasLast && ev.Before(last) {
				return fmt.Errorf("trace: %s: event %v out of canonical order (after %v)", fs.Path, ev, last)
			}
			last, hasLast = ev, true
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return sc.Err()
}
