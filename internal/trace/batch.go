package trace

import (
	"fmt"

	"cptraffic/internal/cp"
)

// DefaultBatchSize is the number of events a batched pipeline stage moves
// per hop. 256 events keep a batch's three columns (~3.3 KB) inside L1
// while making the per-batch call overhead noise (<0.5% of the per-event
// work it amortizes).
const DefaultBatchSize = 256

// Batch is a struct-of-arrays block of events: three parallel columns
// holding the i-th event's time, UE, and type at index i. It is the
// batched counterpart of Event — the unit of flow through the hot
// pipeline — sized so one batch amortizes the per-event interface hop of
// EventSource over ~256 events.
//
// The columns always have equal length. A Batch carries no device
// registry; registrations travel through the same Devices callback as the
// per-event path.
//
// Batches handed to ScanBatches/WriteBatch callbacks are reused: the
// columns are overwritten after the callback returns, so consumers must
// copy (CopyBatches, AppendTo, append(col[:0:0], col...)) anything they
// keep. cplint's retain analyzer enforces this contract; `-tags
// batchdebug` additionally poisons the columns on Reset at runtime.
//
//cplint:reused ScanBatches/WriteBatch overwrite the columns after every callback; retained views read corrupted events
type Batch struct {
	T    []cp.Millis
	UE   []cp.UEID
	Type []cp.EventType
}

// NewBatch returns an empty batch with the given capacity (DefaultBatchSize
// when n <= 0).
func NewBatch(n int) *Batch {
	if n <= 0 {
		n = DefaultBatchSize
	}
	b := &Batch{}
	b.Grow(n)
	return b
}

// Len returns the number of events in the batch.
func (b *Batch) Len() int { return len(b.T) }

// Cap returns the batch's column capacity.
func (b *Batch) Cap() int { return cap(b.T) }

// Reset empties the batch, keeping the column storage for reuse. Under
// `-tags batchdebug` it first scribbles poison sentinels over the full
// column capacity, so a consumer that retained a column view past its
// callback reads unmistakable garbage instead of silently stale or
// silently fresh events.
func (b *Batch) Reset() {
	poisonBatch(b)
	b.T = b.T[:0]
	b.UE = b.UE[:0]
	b.Type = b.Type[:0]
}

// Grow ensures the batch can hold at least n events without reallocating,
// preserving current contents.
//
//cplint:coldpath one-shot growth to the high-water capacity; steady-state batches hit the early return and reuse the grown columns
func (b *Batch) Grow(n int) {
	if cap(b.T) >= n {
		return
	}
	t := make([]cp.Millis, len(b.T), n)
	u := make([]cp.UEID, len(b.UE), n)
	k := make([]cp.EventType, len(b.Type), n)
	copy(t, b.T)
	copy(u, b.UE)
	copy(k, b.Type)
	b.T, b.UE, b.Type = t, u, k
}

// Append adds one event to the batch, growing the columns as needed.
//
//cplint:hotpath one call per batched event; appends into the receiver's reused columns
func (b *Batch) Append(e Event) {
	b.T = append(b.T, e.T)
	b.UE = append(b.UE, e.UE)
	b.Type = append(b.Type, e.Type)
}

// At gathers the i-th event from the columns.
//
//cplint:hotpath three indexed loads, no allocation
func (b *Batch) At(i int) Event {
	return Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]}
}

// AppendTo appends the batch's events to dst in order and returns the
// extended slice — the bridge from a column batch back to row events.
func (b *Batch) AppendTo(dst []Event) []Event {
	for i := range b.T {
		dst = append(dst, Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]})
	}
	return dst
}

// BatchSource is the batched face of EventSource: the same device
// registry, with events delivered one Batch at a time instead of one
// Event at a time. The concatenation of the delivered batches is exactly
// the canonical event sequence Scan would deliver — batch boundaries are
// an implementation detail and carry no meaning (the byte-identity tests
// pin this).
//
// The *Batch passed to fn is reused between calls; fn must consume or
// copy it before returning.
type BatchSource interface {
	Devices(fn func(cp.UEID, cp.DeviceType) error) error
	ScanBatches(fn func(*Batch) error) error
}

// BatchSink is the batched face of EventSink: registrations first, then
// whole batches in canonical order. WriteBatch(b) is equivalent to
// Write(b.At(0)) … Write(b.At(b.Len()-1)).
type BatchSink interface {
	SetDevice(cp.UEID, cp.DeviceType) error
	WriteBatch(*Batch) error
}

// BatchIterator yields one stream's events in time order a run at a time:
// the pull-style batched counterpart of EventIterator. Per-UE generators
// implement it so MergeBatches can interleave populations with one
// method call per run instead of per event.
type BatchIterator interface {
	// NextRun fills dst from the front with the stream's next events,
	// returning how many were written; 0 means the stream is exhausted
	// (dst is assumed non-empty).
	NextRun(dst []Event) int
}

// NextRun implements BatchIterator by copying the next chunk of the
// already-materialized slice.
func (s *SliceIterator) NextRun(dst []Event) int {
	n := copy(dst, s.Events)
	s.Events = s.Events[n:]
	return n
}

// batchingSource adapts a per-event EventSource to BatchSource by
// accumulating DefaultBatchSize events per delivered batch (the final
// batch is ragged).
type batchingSource struct {
	src EventSource
}

func (b *batchingSource) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	return b.src.Devices(fn)
}

func (b *batchingSource) ScanBatches(fn func(*Batch) error) error {
	batch := NewBatch(DefaultBatchSize)
	err := b.src.Scan(func(e Event) error {
		batch.Append(e)
		if batch.Len() == batch.Cap() {
			if err := fn(batch); err != nil {
				return err
			}
			batch.Reset()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if batch.Len() > 0 {
		return fn(batch)
	}
	return nil
}

// unbatchingSource adapts a BatchSource back to a per-event EventSource.
type unbatchingSource struct {
	src BatchSource
}

func (u *unbatchingSource) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	return u.src.Devices(fn)
}

func (u *unbatchingSource) Scan(fn func(Event) error) error {
	return u.src.ScanBatches(func(b *Batch) error {
		for i := range b.T {
			if err := fn(Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]}); err != nil {
				return err
			}
		}
		return nil
	})
}

// batchingSink adapts a per-event EventSink to BatchSink by unrolling
// each batch.
type batchingSink struct {
	dst EventSink
}

func (s *batchingSink) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	return s.dst.SetDevice(ue, d)
}

func (s *batchingSink) WriteBatch(b *Batch) error {
	for i := range b.T {
		if err := s.dst.Write(Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]}); err != nil {
			return err
		}
	}
	return nil
}

// AsBatchSource returns src's batched face: src itself when it already
// speaks batches natively (generator sources, file sources), else an
// adapter that groups src's per-event stream into DefaultBatchSize
// batches. Either way the delivered event sequence is identical to
// src.Scan's.
func AsBatchSource(src EventSource) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchingSource{src: src}
}

// AsEventSource returns src's per-event face: src itself when it
// implements EventSource natively, else an unbatching adapter. Existing
// per-event consumers keep working unchanged on any batched source.
func AsEventSource(src BatchSource) EventSource {
	if es, ok := src.(EventSource); ok {
		return es
	}
	return &unbatchingSource{src: src}
}

// AsBatchSink returns dst's batched face: dst itself when it accepts
// batches natively (the writers, *Trace), else an adapter that unrolls
// each batch into per-event Writes.
func AsBatchSink(dst EventSink) BatchSink {
	if bs, ok := dst.(BatchSink); ok {
		return bs
	}
	return &batchingSink{dst: dst}
}

// CopyBatches streams src into dst like Copy, but moves events in batches:
// when both ends speak batches natively the whole pipe makes one call per
// ~256 events and the per-event interface hop disappears. The bytes
// written are identical to Copy's — adapters on either end preserve the
// event sequence exactly.
func CopyBatches(dst EventSink, src EventSource) error {
	if err := src.Devices(dst.SetDevice); err != nil {
		return err
	}
	return AsBatchSource(src).ScanBatches(AsBatchSink(dst).WriteBatch)
}

// WriteBatch implements BatchSink on the in-memory trace.
func (tr *Trace) WriteBatch(b *Batch) error {
	for _, ue := range b.UE {
		if _, ok := tr.Device[ue]; !ok {
			return fmt.Errorf("trace: event for unknown UE %d (register it first)", ue)
		}
	}
	tr.Events = b.AppendTo(tr.Events)
	return nil
}

// ScanBatches implements BatchSource on the in-memory trace, delivering
// the same canonical sequence as Scan in DefaultBatchSize groups.
func (tr *Trace) ScanBatches(fn func(*Batch) error) error {
	return (&batchingSource{src: tr}).ScanBatches(fn)
}

// iterRuns adapts a per-event EventIterator to BatchIterator.
type iterRuns struct {
	it EventIterator
}

func (r *iterRuns) NextRun(dst []Event) int {
	n := 0
	for n < len(dst) {
		ev, ok := r.it.Next()
		if !ok {
			break
		}
		dst[n] = ev
		n++
	}
	return n
}

// AsBatchIterator returns it's batched face: it itself when it yields
// runs natively, else a wrapper that fills runs one Next at a time.
func AsBatchIterator(it EventIterator) BatchIterator {
	if bi, ok := it.(BatchIterator); ok {
		return bi
	}
	return &iterRuns{it: it}
}

// mergeRunSize is the per-leaf refill granularity of MergeBatches: long
// enough to amortize the NextRun call, short enough that k leaves' run
// buffers (k × 64 × 24 B) stay cache-resident for populations in the
// thousands.
const mergeRunSize = 64

// MergeBatches is the batch-refill variant of MergeScan: it k-way merges
// the iterators — each individually ordered under Event.Before — into
// canonically ordered batches delivered to fn. Each leaf holds a run of
// up to mergeRunSize pending events (refilled by one NextRun call when
// drained) instead of a single event, and output accumulates into a
// reused DefaultBatchSize batch, so both edges of the merge make one
// call per run/batch rather than per event.
//
// The loser tree compares exactly the same head events in the same order
// as MergeScan — Before is a total order on distinct events and ties
// break to the lower iterator index — so the merged sequence is
// byte-identical to the per-event merge regardless of run or batch
// boundaries. The *Batch passed to fn is reused; fn must not retain it.
func MergeBatches(fn func(*Batch) error, its []BatchIterator) error {
	// One shared slab backs every leaf's run buffer: k small buffers in
	// one allocation, carved into fixed strides.
	slab := make([]Event, len(its)*mergeRunSize)
	runs := make([][]Event, 0, len(its)) // filled prefix of each leaf's stride
	cur := make([]int, 0, len(its))      // index of each leaf's head within its run
	evs := make([]Event, 0, len(its))    // each leaf's head event (the comparator's view)
	act := make([]BatchIterator, 0, len(its))
	for i, it := range its {
		buf := slab[i*mergeRunSize : (i+1)*mergeRunSize]
		if n := it.NextRun(buf); n > 0 {
			runs = append(runs, buf[:n])
			cur = append(cur, 0)
			evs = append(evs, buf[0])
			act = append(act, it)
		}
	}
	k := len(act)
	if k == 0 {
		return nil
	}
	dead := make([]bool, k)
	// Complete-tree embedding, identical to MergeScan: internal nodes
	// 1..k-1, leaf i at node k+i, tree[0] the overall winner.
	tree := make([]int32, k)
	win := make([]int32, 2*k)
	for i := 0; i < k; i++ {
		win[k+i] = int32(i)
	}
	for n := k - 1; n >= 1; n-- {
		a, b := win[2*n], win[2*n+1]
		if leafBeats(a, b, evs, dead) {
			win[n], tree[n] = a, b
		} else {
			win[n], tree[n] = b, a
		}
	}
	tree[0] = win[1]
	out := NewBatch(DefaultBatchSize)
	for alive := k; alive > 0; {
		w := tree[0]
		out.Append(evs[w])
		if out.Len() == out.Cap() {
			if err := fn(out); err != nil {
				return err
			}
			out.Reset()
		}
		if next := cur[w] + 1; next < len(runs[w]) {
			cur[w] = next
			evs[w] = runs[w][next]
		} else if n := act[w].NextRun(runs[w][:mergeRunSize]); n > 0 {
			runs[w] = runs[w][:n]
			cur[w] = 0
			evs[w] = runs[w][0]
		} else {
			dead[w] = true
			alive--
			if alive == 0 {
				break
			}
		}
		tree[0] = sift(w, k, tree, evs, dead)
	}
	if out.Len() > 0 {
		return fn(out)
	}
	return nil
}
