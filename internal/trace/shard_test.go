package trace

import (
	"errors"
	"testing"

	"cptraffic/internal/cp"
)

// shardTestTrace builds a small registered trace with a few events per
// UE in canonical order.
func shardTestTrace(nUEs int) *Trace {
	tr := New()
	for i := 0; i < nUEs; i++ {
		tr.SetDevice(cp.UEID(i), cp.DeviceType(i%3))
	}
	for t := 0; t < 5; t++ {
		for i := 0; i < nUEs; i++ {
			tr.Append(Event{
				T:    cp.Millis(t) * cp.Minute,
				UE:   cp.UEID(i),
				Type: cp.EventType((t + i) % int(cp.NumEventTypes)),
			})
		}
	}
	tr.Sort()
	return tr
}

func TestUEShardDeterministicAndPinned(t *testing.T) {
	for ue := cp.UEID(0); ue < 1000; ue++ {
		for _, n := range []int{1, 2, 4, 7} {
			s := UEShard(ue, n)
			if s < 0 || s >= n {
				t.Fatalf("UEShard(%d, %d) = %d out of range", ue, n, s)
			}
			if s != UEShard(ue, n) {
				t.Fatalf("UEShard(%d, %d) unstable", ue, n)
			}
		}
	}
	// Pin concrete assignments: the hash is a wire-format contract
	// (partial fits from different builds must shard identically).
	pinned := []struct {
		ue     cp.UEID
		shards int
		want   int
	}{
		{0, 4, UEShard(0, 4)},
		{1, 4, UEShard(1, 4)},
		{123456, 7, UEShard(123456, 7)},
	}
	for _, p := range pinned {
		if got := UEShard(p.ue, p.shards); got != p.want {
			t.Fatalf("UEShard(%d, %d) changed: %d != %d", p.ue, p.shards, got, p.want)
		}
	}
	// And the hash must actually spread UEs: no shard of 4 may be
	// empty over 1000 sequential IDs.
	var counts [4]int
	for ue := cp.UEID(0); ue < 1000; ue++ {
		counts[UEShard(ue, 4)]++
	}
	for i, c := range counts {
		if c < 100 {
			t.Fatalf("shard %d holds %d of 1000 UEs — hash not spreading", i, c)
		}
	}
}

func TestShardSourcePartitions(t *testing.T) {
	tr := shardTestTrace(64)
	const shards = 4
	var gotUEs []cp.UEID
	var gotEvents []Event
	for s := 0; s < shards; s++ {
		src, err := ShardSource(tr, shards, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Devices(func(ue cp.UEID, d cp.DeviceType) error {
			if UEShard(ue, shards) != s {
				t.Fatalf("shard %d delivered UE %d of shard %d", s, ue, UEShard(ue, shards))
			}
			if tr.Device[ue] != d {
				t.Fatalf("device type mismatch for UE %d", ue)
			}
			gotUEs = append(gotUEs, ue)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		prev := Event{T: -1 << 62}
		if err := src.Scan(func(e Event) error {
			if UEShard(e.UE, shards) != s {
				t.Fatalf("shard %d delivered event for UE %d", s, e.UE)
			}
			if e.Before(prev) {
				t.Fatalf("shard %d events out of canonical order", s)
			}
			prev = e
			gotEvents = append(gotEvents, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(gotUEs) != len(tr.UEs()) {
		t.Fatalf("shards delivered %d UEs, want %d", len(gotUEs), len(tr.UEs()))
	}
	if len(gotEvents) != len(tr.Events) {
		t.Fatalf("shards delivered %d events, want %d", len(gotEvents), len(tr.Events))
	}
}

func TestShardSourceSingleShardIsIdentity(t *testing.T) {
	tr := shardTestTrace(8)
	src, err := ShardSource(tr, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src != EventSource(tr) {
		t.Fatal("1-shard view should be the source itself")
	}
}

func TestShardSourceRejectsBadArgs(t *testing.T) {
	tr := shardTestTrace(4)
	if _, err := ShardSource(tr, 0, 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if _, err := ShardSource(tr, 4, 4); err == nil {
		t.Fatal("shard out of range accepted")
	}
	if _, err := ShardSource(tr, 4, -1); err == nil {
		t.Fatal("negative shard accepted")
	}
}

func TestShardSourcePropagatesErrors(t *testing.T) {
	tr := shardTestTrace(32)
	src, err := ShardSource(tr, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := src.Devices(func(cp.UEID, cp.DeviceType) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Devices error = %v, want boom", err)
	}
	if err := src.Scan(func(Event) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Scan error = %v, want boom", err)
	}
}

func TestShardSourceReIterable(t *testing.T) {
	tr := shardTestTrace(32)
	src, err := ShardSource(tr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	count := func() int {
		n := 0
		if err := src.Scan(func(Event) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if a, b := count(), count(); a != b || a == 0 {
		t.Fatalf("re-iteration changed count: %d then %d", a, b)
	}
}
