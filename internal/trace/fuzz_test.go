package trace

import (
	"bytes"
	"reflect"
	"testing"

	"cptraffic/internal/cp"
)

// FuzzReadTrace checks that arbitrary text input never panics the parser
// and that anything it accepts round-trips.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte(headerLine + "\nU 1 phone\nE 5 1 ATCH\n"))
	f.Add([]byte(headerLine + "\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte(headerLine + "\nU 1 car\nU 2 tablet\nE 1 2 HO\nE 2 1 TAU\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to parse: %v", err)
		}
		if back.Len() != tr.Len() || back.NumUEs() != tr.NumUEs() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				tr.Len(), tr.NumUEs(), back.Len(), back.NumUEs())
		}
	})
}

// FuzzReadBinaryTrace checks the binary parser never panics and that
// accepted inputs re-encode consistently.
func FuzzReadBinaryTrace(f *testing.F) {
	// Seed with a few real encodings.
	mk := func(build func(tr *Trace)) []byte {
		tr := New()
		build(tr)
		var buf bytes.Buffer
		if err := WriteBinaryTrace(&buf, tr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(mk(func(tr *Trace) {}))
	f.Add(mk(func(tr *Trace) {
		tr.SetDevice(3, cp.Phone)
		tr.Append(Event{T: 10, UE: 3, Type: cp.Attach})
		tr.Append(Event{T: 20, UE: 3, Type: cp.Detach})
	}))
	f.Add([]byte("CPTB\x01"))
	f.Add([]byte("CPTB\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinaryTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinaryTrace(&buf, tr); err != nil {
			t.Fatalf("accepted binary failed to re-encode: %v", err)
		}
		back, err := ReadBinaryTrace(&buf)
		if err != nil {
			t.Fatalf("re-encoded binary failed to parse: %v", err)
		}
		if !reflect.DeepEqual(back.Device, tr.Device) {
			t.Fatal("round trip changed devices")
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(back.Events))
		}
	})
}
