// Package trace provides the control-plane trace data model: timestamped,
// UE-labeled control events, in-memory traces, per-UE views, hour slicing,
// and k-way merging of per-UE event streams.
//
// A trace is the unit of exchange between every stage of the pipeline:
// the world simulator emits one, the model fitter consumes one, the
// traffic generator produces one, and the evaluator compares two.
package trace

import (
	"fmt"
	"sort"

	"cptraffic/internal/cp"
)

// Event is a single control-plane event: at time T, UE performed Type.
// Events are small fixed-size values by design (the paper notes control
// events have fixed, small sizes, so only timing and identity matter).
type Event struct {
	T    cp.Millis
	UE   cp.UEID
	Type cp.EventType
}

// String formats the event as "T=<ms> UE=<id> <TYPE>".
func (e Event) String() string {
	return fmt.Sprintf("T=%d UE=%d %s", e.T, e.UE, e.Type)
}

// Before reports whether e orders before f: primarily by time, with
// (UE, Type) as deterministic tie-breakers so sorts are stable across runs.
func (e Event) Before(f Event) bool {
	if e.T != f.T {
		return e.T < f.T
	}
	if e.UE != f.UE {
		return e.UE < f.UE
	}
	return e.Type < f.Type
}

// Trace is a sequence of control-plane events together with the device
// type of every UE appearing in it. Events need not be sorted unless a
// consumer requires it; Sorted reports the current ordering.
type Trace struct {
	Events []Event
	// Device maps each UE to its device type. Every UE referenced by
	// Events must be present.
	Device map[cp.UEID]cp.DeviceType
}

// New returns an empty trace with an initialized device map.
func New() *Trace {
	return &Trace{Device: make(map[cp.UEID]cp.DeviceType)}
}

// Append adds an event to the trace. The UE must already be registered via
// SetDevice; Append panics otherwise to catch mislabeled events early.
func (tr *Trace) Append(e Event) {
	if _, ok := tr.Device[e.UE]; !ok {
		panic(fmt.Sprintf("trace: event for unknown UE %d (call SetDevice first)", e.UE))
	}
	tr.Events = append(tr.Events, e)
}

// SetDevice records the device type of a UE. A UE's device type is
// immutable: re-registering with a different type is an error.
func (tr *Trace) SetDevice(ue cp.UEID, d cp.DeviceType) error {
	if prev, ok := tr.Device[ue]; ok && prev != d {
		return fmt.Errorf("trace: UE %d already registered as %v, cannot change to %v", ue, prev, d)
	}
	tr.Device[ue] = d
	return nil
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.Events) }

// NumUEs returns the number of distinct UEs registered in the trace.
func (tr *Trace) NumUEs() int { return len(tr.Device) }

// Sorted reports whether Events is in canonical order.
func (tr *Trace) Sorted() bool {
	return sort.SliceIsSorted(tr.Events, func(i, j int) bool {
		return tr.Events[i].Before(tr.Events[j])
	})
}

// Sort puts Events into canonical (time, UE, type) order.
func (tr *Trace) Sort() {
	sort.Slice(tr.Events, func(i, j int) bool {
		return tr.Events[i].Before(tr.Events[j])
	})
}

// Span returns the half-open time interval [lo, hi) covering all events,
// where hi is one past the last event's timestamp. An empty trace returns
// (0, 0).
func (tr *Trace) Span() (lo, hi cp.Millis) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	lo, hi = tr.Events[0].T, tr.Events[0].T
	for _, e := range tr.Events {
		if e.T < lo {
			lo = e.T
		}
		if e.T > hi {
			hi = e.T
		}
	}
	return lo, hi + 1
}

// UEs returns the registered UE ids in ascending order.
func (tr *Trace) UEs() []cp.UEID {
	ids := make([]cp.UEID, 0, len(tr.Device))
	for ue := range tr.Device {
		ids = append(ids, ue)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// UEsOfType returns the UE ids of the given device type in ascending order.
func (tr *Trace) UEsOfType(d cp.DeviceType) []cp.UEID {
	var ids []cp.UEID
	for _, ue := range tr.UEs() {
		if tr.Device[ue] == d {
			ids = append(ids, ue)
		}
	}
	return ids
}

// PerUE splits the trace into per-UE event sequences, each sorted by time.
// UEs with no events map to nil slices only if they were registered via
// SetDevice; they still appear as keys so callers can see silent UEs.
func (tr *Trace) PerUE() map[cp.UEID][]Event {
	out := make(map[cp.UEID][]Event, len(tr.Device))
	for ue := range tr.Device {
		out[ue] = nil
	}
	for _, e := range tr.Events {
		out[e.UE] = append(out[e.UE], e)
	}
	// Each key's slice is sorted in place independently of every other
	// key, and the write is indexed by the iteration key.
	//cplint:ordered-ok per-key in-place sort; no cross-key state
	for ue, evs := range out {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Before(evs[j]) })
		out[ue] = evs
	}
	return out
}

// FilterDevice returns a new trace containing only events from UEs of the
// given device type (and only those UEs' device registrations).
func (tr *Trace) FilterDevice(d cp.DeviceType) *Trace {
	out := New()
	for ue, dt := range tr.Device {
		if dt == d {
			out.Device[ue] = dt
		}
	}
	for _, e := range tr.Events {
		if tr.Device[e.UE] == d {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Slice returns a new trace restricted to events with lo <= T < hi. All
// device registrations are retained so per-UE statistics can distinguish
// "silent this hour" from "absent".
func (tr *Trace) Slice(lo, hi cp.Millis) *Trace {
	out := New()
	for ue, dt := range tr.Device {
		out.Device[ue] = dt
	}
	for _, e := range tr.Events {
		if e.T >= lo && e.T < hi {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// HourSlices partitions a trace into consecutive 1-hour traces covering
// [0, hours*Hour). Events outside that range are dropped. Device
// registrations are copied into every slice.
func (tr *Trace) HourSlices(hours int) []*Trace {
	out := make([]*Trace, hours)
	for i := range out {
		s := New()
		for ue, dt := range tr.Device {
			s.Device[ue] = dt
		}
		out[i] = s
	}
	for _, e := range tr.Events {
		h := e.T.HourIndex()
		if h >= 0 && h < hours {
			out[h].Events = append(out[h].Events, e)
		}
	}
	return out
}

// CountByType tallies events by type.
func (tr *Trace) CountByType() [cp.NumEventTypes]int {
	var c [cp.NumEventTypes]int
	for _, e := range tr.Events {
		if e.Type.Valid() {
			c[e.Type]++
		}
	}
	return c
}

// Merge combines several traces into one. Device registrations must be
// consistent across inputs; conflicting registrations return an error.
// The result is sorted.
func Merge(traces ...*Trace) (*Trace, error) {
	out := New()
	for _, tr := range traces {
		// Ascending UE order so a registration conflict always blames
		// the same UE no matter how the map iterates.
		for _, ue := range tr.UEs() {
			if err := out.SetDevice(ue, tr.Device[ue]); err != nil {
				return nil, err
			}
		}
		out.Events = append(out.Events, tr.Events...)
	}
	out.Sort()
	return out, nil
}

// SampleUEs returns a new trace containing a uniformly sampled
// sub-population of n UEs (all of them when n >= NumUEs) with their
// events — the paper's methodology of randomly sampling UEs from a
// larger collection. The choice is deterministic in seed.
func (tr *Trace) SampleUEs(n int, seed uint64) *Trace {
	ids := tr.UEs()
	if n >= len(ids) {
		out := New()
		for ue, dt := range tr.Device {
			out.Device[ue] = dt
		}
		out.Events = append(out.Events, tr.Events...)
		return out
	}
	// Deterministic Fisher-Yates prefix via SplitMix64-style mixing.
	rng := seed
	next := func(bound int) int {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return int(z % uint64(bound))
	}
	for i := 0; i < n; i++ {
		j := i + next(len(ids)-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	keep := make(map[cp.UEID]bool, n)
	out := New()
	for _, ue := range ids[:n] {
		keep[ue] = true
		out.Device[ue] = tr.Device[ue]
	}
	for _, e := range tr.Events {
		if keep[e.UE] {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Validate checks internal consistency: every event references a
// registered UE and has a valid event type, and timestamps are
// non-negative. It returns the first problem found.
func (tr *Trace) Validate() error {
	for i, e := range tr.Events {
		if !e.Type.Valid() {
			return fmt.Errorf("trace: event %d has invalid type %d", i, e.Type)
		}
		if _, ok := tr.Device[e.UE]; !ok {
			return fmt.Errorf("trace: event %d references unregistered UE %d", i, e.UE)
		}
		if e.T < 0 {
			return fmt.Errorf("trace: event %d has negative timestamp %d", i, e.T)
		}
	}
	return nil
}
