package trace

import (
	"fmt"

	"cptraffic/internal/cp"
)

// EventSource is the streaming unit of exchange between pipeline stages:
// a device registry plus a re-iterable, time-ordered stream of events.
// It is the bounded-memory generalization of *Trace — a stage that
// consumes an EventSource instead of a *Trace never needs the whole
// event sequence in memory, only the registry (O(UEs)) and whatever
// state it accumulates itself.
//
// Contract:
//
//   - Devices delivers every (UE, device type) registration exactly once,
//     in ascending UE order, before any consumer looks at events.
//   - Scan delivers events in canonical order — non-decreasing under
//     Event.Before, i.e. by time with (UE, Type) tie-breaks, the same
//     total order Trace.Sort establishes and k-way merges of per-UE
//     streams produce.
//   - Both methods may be called repeatedly; every call starts a fresh
//     iteration over the same data (sources backed by a seeded generator
//     re-derive it deterministically).
//
// *Trace implements EventSource (the exact in-memory reference);
// FileSource streams a trace file incrementally; the world simulator and
// the traffic generator provide generator-backed sources that never
// materialize the population's events.
type EventSource interface {
	// Devices calls fn for every registered UE in ascending UE order,
	// stopping at the first error, which it returns.
	Devices(fn func(cp.UEID, cp.DeviceType) error) error
	// Scan calls fn for every event in canonical order, stopping at the
	// first error, which it returns.
	Scan(fn func(Event) error) error
}

// EventSink consumes a stream: every device registration first (ascending
// UE order), then events in canonical order. *Trace implements EventSink
// (materializing), StreamWriter and TextWriter write incrementally to a
// file; writers additionally need Close to flush.
type EventSink interface {
	SetDevice(cp.UEID, cp.DeviceType) error
	Write(Event) error
}

// Write appends an event to the trace, erroring (instead of panicking
// like Append) when the UE is unregistered. It is the EventSink
// counterpart of Append.
func (tr *Trace) Write(e Event) error {
	if _, ok := tr.Device[e.UE]; !ok {
		return fmt.Errorf("trace: event for unknown UE %d (register it first)", e.UE)
	}
	tr.Events = append(tr.Events, e)
	return nil
}

// Devices implements EventSource: registrations in ascending UE order.
func (tr *Trace) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	for _, ue := range tr.UEs() {
		if err := fn(ue, tr.Device[ue]); err != nil {
			return err
		}
	}
	return nil
}

// Scan implements EventSource: events in canonical order. A trace that is
// already sorted (the pipeline invariant) is iterated in place; an
// unsorted one pays one O(n) index sort per call without mutating the
// trace.
func (tr *Trace) Scan(fn func(Event) error) error {
	if tr.Sorted() {
		for _, e := range tr.Events {
			if err := fn(e); err != nil {
				return err
			}
		}
		return nil
	}
	sorted := append([]Event(nil), tr.Events...)
	tmp := &Trace{Events: sorted}
	tmp.Sort()
	for _, e := range sorted {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Copy streams src into dst: registrations first, then events. It is the
// universal pipe between pipeline stages; with a FileSource and a
// StreamWriter both ends run in O(UEs) memory. Callers owning a writer
// sink must still Close it afterwards.
func Copy(dst EventSink, src EventSource) error {
	if err := src.Devices(dst.SetDevice); err != nil {
		return err
	}
	return src.Scan(dst.Write)
}

// Collect materializes a source into an in-memory trace — the bridge back
// from the streaming world for consumers that need random access.
func Collect(src EventSource) (*Trace, error) {
	tr := New()
	if err := Copy(tr, src); err != nil {
		return nil, err
	}
	return tr, nil
}

// EventIterator yields one stream's events in time order, pull-style.
// Per-UE generators implement it so MergeScan can interleave populations
// without materializing anyone's future.
type EventIterator interface {
	Next() (Event, bool)
}

// SliceIterator replays an already-materialized, already-ordered event
// slice pull-style — the bridge that lets batch generators feed their
// per-UE buffers into the same MergeScan as the streaming paths. The
// zero value is an empty stream; callers bulk-allocate []SliceIterator
// and pass pointers.
type SliceIterator struct{ Events []Event }

// Next pops the next event, reporting false when the slice is drained.
func (s *SliceIterator) Next() (Event, bool) {
	if len(s.Events) == 0 {
		return Event{}, false
	}
	ev := s.Events[0]
	s.Events = s.Events[1:]
	return ev, true
}

// MergeScan k-way merges the iterators — each individually ordered under
// Event.Before — into one canonically ordered stream delivered to fn,
// holding only one pending event per iterator (O(k) memory). fn's first
// error aborts the merge and is returned.
//
// The merge is a loser tree rather than container/heap: advancing the
// winner costs exactly ⌈log₂ k⌉ comparisons and only index writes (a
// binary heap pays ~2 comparisons per level and swaps whole items), and
// nothing goes through an interface per sift step. Before is a total
// order on distinct events (time, UE, type), so the output sequence is
// uniquely determined by the comparator and any correct merge yields
// identical bytes; should two iterators ever carry the very same event,
// the lower iterator index wins, deterministically.
func MergeScan(fn func(Event) error, its []EventIterator) error {
	evs := make([]Event, 0, len(its))
	act := make([]EventIterator, 0, len(its))
	for _, it := range its {
		if ev, ok := it.Next(); ok {
			evs = append(evs, ev)
			act = append(act, it)
		}
	}
	k := len(act)
	if k == 0 {
		return nil
	}
	dead := make([]bool, k)
	// Complete-tree embedding: internal nodes 1..k-1, leaf i at node k+i;
	// tree[n] is the loser at node n and tree[0] the overall winner.
	tree := make([]int32, k)
	win := make([]int32, 2*k)
	for i := 0; i < k; i++ {
		win[k+i] = int32(i)
	}
	for n := k - 1; n >= 1; n-- {
		a, b := win[2*n], win[2*n+1]
		if leafBeats(a, b, evs, dead) {
			win[n], tree[n] = a, b
		} else {
			win[n], tree[n] = b, a
		}
	}
	tree[0] = win[1]
	for alive := k; alive > 0; {
		w := tree[0]
		if err := fn(evs[w]); err != nil {
			return err
		}
		if ev, ok := act[w].Next(); ok {
			evs[w] = ev
		} else {
			dead[w] = true
			alive--
			if alive == 0 {
				break
			}
		}
		tree[0] = sift(w, k, tree, evs, dead)
	}
	return nil
}

// leafBeats reports whether leaf a's pending event orders before leaf
// b's; exhausted leaves always lose so the tree drains without
// shrinking, and ties break toward the lower iterator index.
//
//cplint:hotpath ⌈log₂k⌉ calls per merged event, inlined into the sift
func leafBeats(a, b int32, evs []Event, dead []bool) bool {
	if dead[a] || dead[b] {
		return !dead[a] && dead[b]
	}
	if evs[a].Before(evs[b]) {
		return true
	}
	if evs[b].Before(evs[a]) {
		return false
	}
	return a < b
}

// sift replays the path from leaf w to the root after the leaf's
// pending event changed: whoever loses parks at the node, the winner
// plays on. It returns the new overall winner.
//
//cplint:hotpath the loser-tree sift: runs once per merged event, index writes only
func sift(w int32, k int, tree []int32, evs []Event, dead []bool) int32 {
	for n := (int(w) + k) / 2; n > 0; n /= 2 {
		if leafBeats(tree[n], w, evs, dead) {
			w, tree[n] = tree[n], w
		}
	}
	return w
}
