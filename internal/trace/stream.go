package trace

import (
	"container/heap"
	"fmt"

	"cptraffic/internal/cp"
)

// EventSource is the streaming unit of exchange between pipeline stages:
// a device registry plus a re-iterable, time-ordered stream of events.
// It is the bounded-memory generalization of *Trace — a stage that
// consumes an EventSource instead of a *Trace never needs the whole
// event sequence in memory, only the registry (O(UEs)) and whatever
// state it accumulates itself.
//
// Contract:
//
//   - Devices delivers every (UE, device type) registration exactly once,
//     in ascending UE order, before any consumer looks at events.
//   - Scan delivers events in canonical order — non-decreasing under
//     Event.Before, i.e. by time with (UE, Type) tie-breaks, the same
//     total order Trace.Sort establishes and k-way merges of per-UE
//     streams produce.
//   - Both methods may be called repeatedly; every call starts a fresh
//     iteration over the same data (sources backed by a seeded generator
//     re-derive it deterministically).
//
// *Trace implements EventSource (the exact in-memory reference);
// FileSource streams a trace file incrementally; the world simulator and
// the traffic generator provide generator-backed sources that never
// materialize the population's events.
type EventSource interface {
	// Devices calls fn for every registered UE in ascending UE order,
	// stopping at the first error, which it returns.
	Devices(fn func(cp.UEID, cp.DeviceType) error) error
	// Scan calls fn for every event in canonical order, stopping at the
	// first error, which it returns.
	Scan(fn func(Event) error) error
}

// EventSink consumes a stream: every device registration first (ascending
// UE order), then events in canonical order. *Trace implements EventSink
// (materializing), StreamWriter and TextWriter write incrementally to a
// file; writers additionally need Close to flush.
type EventSink interface {
	SetDevice(cp.UEID, cp.DeviceType) error
	Write(Event) error
}

// Write appends an event to the trace, erroring (instead of panicking
// like Append) when the UE is unregistered. It is the EventSink
// counterpart of Append.
func (tr *Trace) Write(e Event) error {
	if _, ok := tr.Device[e.UE]; !ok {
		return fmt.Errorf("trace: event for unknown UE %d (register it first)", e.UE)
	}
	tr.Events = append(tr.Events, e)
	return nil
}

// Devices implements EventSource: registrations in ascending UE order.
func (tr *Trace) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	for _, ue := range tr.UEs() {
		if err := fn(ue, tr.Device[ue]); err != nil {
			return err
		}
	}
	return nil
}

// Scan implements EventSource: events in canonical order. A trace that is
// already sorted (the pipeline invariant) is iterated in place; an
// unsorted one pays one O(n) index sort per call without mutating the
// trace.
func (tr *Trace) Scan(fn func(Event) error) error {
	if tr.Sorted() {
		for _, e := range tr.Events {
			if err := fn(e); err != nil {
				return err
			}
		}
		return nil
	}
	sorted := append([]Event(nil), tr.Events...)
	tmp := &Trace{Events: sorted}
	tmp.Sort()
	for _, e := range sorted {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Copy streams src into dst: registrations first, then events. It is the
// universal pipe between pipeline stages; with a FileSource and a
// StreamWriter both ends run in O(UEs) memory. Callers owning a writer
// sink must still Close it afterwards.
func Copy(dst EventSink, src EventSource) error {
	if err := src.Devices(dst.SetDevice); err != nil {
		return err
	}
	return src.Scan(dst.Write)
}

// Collect materializes a source into an in-memory trace — the bridge back
// from the streaming world for consumers that need random access.
func Collect(src EventSource) (*Trace, error) {
	tr := New()
	if err := Copy(tr, src); err != nil {
		return nil, err
	}
	return tr, nil
}

// EventIterator yields one stream's events in time order, pull-style.
// Per-UE generators implement it so MergeScan can interleave populations
// without materializing anyone's future.
type EventIterator interface {
	Next() (Event, bool)
}

// MergeScan k-way merges the iterators — each individually ordered under
// Event.Before — into one canonically ordered stream delivered to fn,
// holding only one pending event per iterator (O(k) memory). fn's first
// error aborts the merge and is returned.
func MergeScan(fn func(Event) error, its []EventIterator) error {
	h := &mergeHeap{}
	for _, it := range its {
		if ev, ok := it.Next(); ok {
			h.items = append(h.items, mergeItem{ev: ev, it: it})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		item := h.items[0]
		if err := fn(item.ev); err != nil {
			return err
		}
		if ev, ok := item.it.Next(); ok {
			h.items[0] = mergeItem{ev: ev, it: item.it}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return nil
}

type mergeItem struct {
	ev Event
	it EventIterator
}

type mergeHeap struct {
	items []mergeItem
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.items[i].ev.Before(h.items[j].ev) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	item := old[n-1]
	h.items = old[:n-1]
	return item
}
