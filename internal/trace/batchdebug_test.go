//go:build batchdebug

package trace

import (
	"testing"

	"cptraffic/internal/cp"
)

// TestResetPoisonsRetainedColumns is the runtime counterpart of the
// retain lint invariant: a consumer that deliberately keeps a column
// view across Reset — exactly what //cplint:reused forbids — reads the
// poison sentinels, not the stale (or worse, silently refreshed)
// events.
func TestResetPoisonsRetainedColumns(t *testing.T) {
	if !batchPoisonEnabled {
		t.Fatal("batchdebug build without poison mode")
	}
	b := NewBatch(8)
	for i := 0; i < 8; i++ {
		b.Append(Event{T: cp.Millis(i + 1), UE: cp.UEID(i), Type: cp.EventType(1)})
	}

	// The contract violation under test: retain the live columns.
	colT, colUE, colType := b.T, b.UE, b.Type

	b.Reset()

	for i := range colT {
		if colT[i] != PoisonMillis || colUE[i] != PoisonUE || colType[i] != PoisonType {
			t.Fatalf("retained slot %d not poisoned: T=%d UE=%d Type=%d",
				i, colT[i], colUE[i], colType[i])
		}
	}

	// The batch itself stays usable: refilled events read back clean.
	b.Append(Event{T: 42, UE: 7, Type: 2})
	if got := b.At(0); got.T != 42 || got.UE != 7 || got.Type != 2 {
		t.Fatalf("refill after poison read back %+v", got)
	}
}

// TestCopiesSurvivePoison pins that the sanctioned copy idioms are
// unaffected: AppendTo rows and append(col[:0:0], col...) copies hold
// their values across Reset even when the source columns are poisoned.
func TestCopiesSurvivePoison(t *testing.T) {
	b := NewBatch(4)
	for i := 0; i < 4; i++ {
		b.Append(Event{T: cp.Millis(10 + i), UE: cp.UEID(i), Type: cp.EventType(1)})
	}
	rows := b.AppendTo(nil)
	colT := append(b.T[:0:0], b.T...)

	b.Reset()

	for i := range rows {
		if rows[i].T != cp.Millis(10+i) || colT[i] != cp.Millis(10+i) {
			t.Fatalf("copy slot %d corrupted: row T=%d col T=%d", i, rows[i].T, colT[i])
		}
	}
}
