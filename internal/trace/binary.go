package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Binary trace format: a compact delta-encoded encoding for large traces
// (a 380K-UE busy hour is ~6x smaller than in the text format).
//
//	magic "CPTB" | u8 version=2
//	uvarint numUEs | numUEs x (uvarint ueDelta, u8 device)   — UEs ascending
//	chunks: uvarint n>0 | n x (uvarint tDelta, uvarint ue, u8 type)
//	terminator: uvarint 0
//
// Events are written in canonical time order; tDelta is the millisecond
// difference from the previous event (the first is the absolute time),
// continuing across chunk boundaries. Chunked framing (v2) lets a writer
// stream events without knowing the total count up front; version 1 —
// a single `uvarint numEvents` prefix instead of chunks — is still read.

var binaryMagic = [4]byte{'C', 'P', 'T', 'B'}

const binaryVersion = 2

// WriteBinaryTrace serializes tr in the compact binary format. Events
// are written in canonical sorted order regardless of their in-memory
// order. It is a convenience wrapper over StreamWriter for in-memory
// traces; streaming producers should drive a StreamWriter directly.
func WriteBinaryTrace(w io.Writer, tr *Trace) error {
	events := tr.Events
	if !tr.Sorted() {
		events = append([]Event(nil), tr.Events...)
		tmp := &Trace{Events: events}
		tmp.Sort()
	}
	sw := NewStreamWriter(w)
	for _, ue := range tr.UEs() {
		if err := sw.SetDevice(ue, tr.Device[ue]); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := sw.Write(e); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ReadBinaryTrace parses a trace written by WriteBinaryTrace (either
// binary version). It materializes the whole trace; use Scanner or
// FileSource to process large files incrementally.
func ReadBinaryTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", err)
	}
	if [4]byte{magic[0], magic[1], magic[2], magic[3]} != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic[:4])
	}
	sc, err := newBinaryScanner(br, magic[4])
	if err != nil {
		return nil, err
	}
	return collectScanner(sc)
}

// collectScanner drains a Scanner into an in-memory trace.
func collectScanner(sc *Scanner) (*Trace, error) {
	tr := New()
	if err := sc.Devices(tr.SetDevice); err != nil {
		return nil, err
	}
	// The v1 count is untrusted input: cap the preallocation so a corrupt
	// header cannot demand terabytes; append grows the rest if the events
	// really are there.
	if hint := sc.NumEventsHint(); hint > 0 {
		if hint > 1<<20 {
			hint = 1 << 20
		}
		tr.Events = make([]Event, 0, hint)
	}
	for sc.Scan() {
		tr.Events = append(tr.Events, sc.Event())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadAuto detects the trace format (binary or text) from the leading
// bytes and parses accordingly.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: peeking format: %w", err)
	}
	if [4]byte{head[0], head[1], head[2], head[3]} == binaryMagic {
		if _, err := br.Discard(4); err != nil {
			return nil, err
		}
		ver, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		sc, err := newBinaryScanner(br, ver)
		if err != nil {
			return nil, err
		}
		return collectScanner(sc)
	}
	return ReadTrace(br)
}
