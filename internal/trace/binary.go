package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"cptraffic/internal/cp"
)

// Binary trace format: a compact delta-encoded encoding for large traces
// (a 380K-UE busy hour is ~6x smaller than in the text format).
//
//	magic "CPTB" | u8 version=1
//	uvarint numUEs | numUEs x (uvarint ueDelta, u8 device)   — UEs ascending
//	uvarint numEvents | numEvents x (uvarint tDelta, uvarint ue, u8 type)
//
// Events are written in canonical time order; tDelta is the millisecond
// difference from the previous event (the first is the absolute time).

var binaryMagic = [4]byte{'C', 'P', 'T', 'B'}

const binaryVersion = 1

// WriteBinaryTrace serializes tr in the compact binary format. Events
// are written in canonical sorted order regardless of their in-memory
// order.
func WriteBinaryTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}

	ues := tr.UEs()
	if err := putUvarint(uint64(len(ues))); err != nil {
		return err
	}
	prevUE := uint64(0)
	for i, ue := range ues {
		delta := uint64(ue)
		if i > 0 {
			delta = uint64(ue) - prevUE
		}
		prevUE = uint64(ue)
		if err := putUvarint(delta); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(tr.Device[ue])); err != nil {
			return err
		}
	}

	events := append([]Event(nil), tr.Events...)
	if !tr.Sorted() {
		tmp := &Trace{Events: events}
		tmp.Sort()
		events = tmp.Events
	}
	if err := putUvarint(uint64(len(events))); err != nil {
		return err
	}
	prevT := cp.Millis(0)
	for i, e := range events {
		if e.T < 0 {
			return fmt.Errorf("trace: binary format cannot encode negative timestamp %d", e.T)
		}
		delta := uint64(e.T)
		if i > 0 {
			delta = uint64(e.T - prevT)
		}
		prevT = e.T
		if err := putUvarint(delta); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.UE)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Type)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinaryTrace parses a trace written by WriteBinaryTrace.
func ReadBinaryTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w", err)
	}
	if [4]byte{magic[0], magic[1], magic[2], magic[3]} != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic[:4])
	}
	if magic[4] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", magic[4])
	}
	return readBinaryBody(br)
}

func readBinaryBody(br *bufio.Reader) (*Trace, error) {
	tr := New()
	numUEs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading UE count: %w", err)
	}
	prevUE := uint64(0)
	for i := uint64(0); i < numUEs; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading UE %d: %w", i, err)
		}
		ue := delta
		if i > 0 {
			ue = prevUE + delta
		}
		prevUE = ue
		if ue > uint64(^cp.UEID(0)) {
			return nil, fmt.Errorf("trace: UE id %d overflows", ue)
		}
		db, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		d := cp.DeviceType(db)
		if !d.Valid() {
			return nil, fmt.Errorf("trace: invalid device type %d", db)
		}
		if err := tr.SetDevice(cp.UEID(ue), d); err != nil {
			return nil, err
		}
	}
	numEvents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	// The count is untrusted input: cap the preallocation so a corrupt
	// header cannot demand terabytes; append grows the rest if the
	// events really are there.
	prealloc := numEvents
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	tr.Events = make([]Event, 0, prealloc)
	prevT := uint64(0)
	for i := uint64(0); i < numEvents; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		t := delta
		if i > 0 {
			t = prevT + delta
		}
		prevT = t
		ue, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		et := cp.EventType(tb)
		if !et.Valid() {
			return nil, fmt.Errorf("trace: invalid event type %d", tb)
		}
		if _, ok := tr.Device[cp.UEID(ue)]; !ok {
			return nil, fmt.Errorf("trace: event for unregistered UE %d", ue)
		}
		tr.Events = append(tr.Events, Event{T: cp.Millis(t), UE: cp.UEID(ue), Type: et})
	}
	return tr, nil
}

// ReadAuto detects the trace format (binary or text) from the leading
// bytes and parses accordingly.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: peeking format: %w", err)
	}
	if [4]byte{head[0], head[1], head[2], head[3]} == binaryMagic {
		if _, err := br.Discard(4); err != nil {
			return nil, err
		}
		ver, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if ver != binaryVersion {
			return nil, fmt.Errorf("trace: unsupported binary version %d", ver)
		}
		return readBinaryBody(br)
	}
	return ReadTrace(br)
}
