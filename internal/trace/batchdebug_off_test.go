//go:build !batchdebug

package trace

import (
	"testing"

	"cptraffic/internal/cp"
)

// TestResetDoesNotScribble pins that the shipped build pays nothing
// for the batchdebug counterpart: Reset only truncates, so the column
// bytes (observable through a retained view, which cplint forbids in
// checked code but tests may take) are untouched.
func TestResetDoesNotScribble(t *testing.T) {
	if batchPoisonEnabled {
		t.Fatal("poison mode enabled in a non-batchdebug build")
	}
	b := NewBatch(4)
	for i := 0; i < 4; i++ {
		b.Append(Event{T: cp.Millis(10 + i), UE: cp.UEID(i), Type: cp.EventType(1)})
	}
	colT := b.T
	b.Reset()
	for i := range colT {
		if colT[i] != cp.Millis(10+i) {
			t.Fatalf("shipped Reset scribbled slot %d: got %d", i, colT[i])
		}
	}
}
