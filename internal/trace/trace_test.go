package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cptraffic/internal/cp"
)

func mkTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New()
	if err := tr.SetDevice(1, cp.Phone); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDevice(2, cp.ConnectedCar); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDevice(3, cp.Tablet); err != nil {
		t.Fatal(err)
	}
	tr.Append(Event{T: 50, UE: 2, Type: cp.ServiceRequest})
	tr.Append(Event{T: 10, UE: 1, Type: cp.Attach})
	tr.Append(Event{T: 50, UE: 1, Type: cp.ServiceRequest})
	tr.Append(Event{T: cp.Hour + 5, UE: 3, Type: cp.Attach})
	return tr
}

func TestAppendUnknownUEPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append for unknown UE did not panic")
		}
	}()
	New().Append(Event{UE: 42})
}

func TestSetDeviceConflict(t *testing.T) {
	tr := New()
	if err := tr.SetDevice(1, cp.Phone); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDevice(1, cp.Phone); err != nil {
		t.Fatalf("idempotent SetDevice failed: %v", err)
	}
	if err := tr.SetDevice(1, cp.Tablet); err == nil {
		t.Fatal("conflicting SetDevice succeeded")
	}
}

func TestSortAndSorted(t *testing.T) {
	tr := mkTrace(t)
	if tr.Sorted() {
		t.Fatal("trace should start unsorted")
	}
	tr.Sort()
	if !tr.Sorted() {
		t.Fatal("trace not sorted after Sort")
	}
	// Tie at T=50 must break by UE.
	if tr.Events[1].UE != 1 || tr.Events[2].UE != 2 {
		t.Fatalf("tie-break wrong: %v", tr.Events)
	}
}

func TestSpan(t *testing.T) {
	tr := mkTrace(t)
	lo, hi := tr.Span()
	if lo != 10 || hi != cp.Hour+6 {
		t.Fatalf("Span = (%d,%d), want (10,%d)", lo, hi, cp.Hour+6)
	}
	lo, hi = New().Span()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty Span = (%d,%d)", lo, hi)
	}
}

func TestUEsAndUEsOfType(t *testing.T) {
	tr := mkTrace(t)
	if got := tr.UEs(); !reflect.DeepEqual(got, []cp.UEID{1, 2, 3}) {
		t.Fatalf("UEs = %v", got)
	}
	if got := tr.UEsOfType(cp.Phone); !reflect.DeepEqual(got, []cp.UEID{1}) {
		t.Fatalf("UEsOfType(Phone) = %v", got)
	}
	if got := tr.UEsOfType(cp.Tablet); !reflect.DeepEqual(got, []cp.UEID{3}) {
		t.Fatalf("UEsOfType(Tablet) = %v", got)
	}
}

func TestPerUE(t *testing.T) {
	tr := mkTrace(t)
	per := tr.PerUE()
	if len(per) != 3 {
		t.Fatalf("PerUE has %d keys, want 3", len(per))
	}
	if len(per[1]) != 2 || per[1][0].T != 10 || per[1][1].T != 50 {
		t.Fatalf("UE1 events = %v", per[1])
	}
	if len(per[2]) != 1 {
		t.Fatalf("UE2 events = %v", per[2])
	}
}

func TestPerUEIncludesSilentUEs(t *testing.T) {
	tr := New()
	if err := tr.SetDevice(7, cp.Phone); err != nil {
		t.Fatal(err)
	}
	per := tr.PerUE()
	if _, ok := per[7]; !ok {
		t.Fatal("silent UE missing from PerUE")
	}
}

func TestFilterDevice(t *testing.T) {
	tr := mkTrace(t)
	ph := tr.FilterDevice(cp.Phone)
	if ph.NumUEs() != 1 || ph.Len() != 2 {
		t.Fatalf("phone filter: %d UEs, %d events", ph.NumUEs(), ph.Len())
	}
	for _, e := range ph.Events {
		if e.UE != 1 {
			t.Fatalf("foreign event %v", e)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := mkTrace(t)
	s := tr.Slice(10, 51)
	if s.Len() != 3 {
		t.Fatalf("Slice(10,51) has %d events, want 3", s.Len())
	}
	s = tr.Slice(11, 50)
	if s.Len() != 0 {
		t.Fatalf("Slice(11,50) has %d events, want 0", s.Len())
	}
	if s.NumUEs() != 3 {
		t.Fatal("Slice must keep device registrations")
	}
}

func TestHourSlices(t *testing.T) {
	tr := mkTrace(t)
	hs := tr.HourSlices(2)
	if len(hs) != 2 {
		t.Fatalf("got %d slices", len(hs))
	}
	if hs[0].Len() != 3 || hs[1].Len() != 1 {
		t.Fatalf("slice lens = %d,%d", hs[0].Len(), hs[1].Len())
	}
	if hs[1].Events[0].UE != 3 {
		t.Fatalf("hour 1 event = %v", hs[1].Events[0])
	}
	// Registrations propagate.
	if hs[1].NumUEs() != 3 {
		t.Fatal("hour slice lost registrations")
	}
	// Events beyond range are dropped.
	hs = tr.HourSlices(1)
	if hs[0].Len() != 3 {
		t.Fatalf("1-hour slicing kept %d events", hs[0].Len())
	}
}

func TestCountByType(t *testing.T) {
	tr := mkTrace(t)
	c := tr.CountByType()
	if c[cp.Attach] != 2 || c[cp.ServiceRequest] != 2 || c[cp.Detach] != 0 {
		t.Fatalf("CountByType = %v", c)
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.SetDevice(1, cp.Phone)
	a.Append(Event{T: 5, UE: 1, Type: cp.Attach})
	b := New()
	b.SetDevice(2, cp.Tablet)
	b.Append(Event{T: 1, UE: 2, Type: cp.Attach})

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || !m.Sorted() {
		t.Fatalf("merge result: %v", m.Events)
	}

	c := New()
	c.SetDevice(1, cp.Tablet) // conflicts with a
	if _, err := Merge(a, c); err == nil {
		t.Fatal("conflicting merge succeeded")
	}
}

func TestValidate(t *testing.T) {
	tr := mkTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := mkTrace(t)
	bad.Events = append(bad.Events, Event{T: -1, UE: 1, Type: cp.Attach})
	if err := bad.Validate(); err == nil {
		t.Fatal("negative timestamp accepted")
	}
	bad2 := mkTrace(t)
	bad2.Events = append(bad2.Events, Event{T: 1, UE: 99, Type: cp.Attach})
	if err := bad2.Validate(); err == nil {
		t.Fatal("unregistered UE accepted")
	}
	bad3 := mkTrace(t)
	bad3.Events = append(bad3.Events, Event{T: 1, UE: 1, Type: cp.EventType(77)})
	if err := bad3.Validate(); err == nil {
		t.Fatal("invalid event type accepted")
	}
}

func TestSampleUEs(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.SetDevice(cp.UEID(i), cp.DeviceTypes[i%3])
		tr.Append(Event{T: cp.Millis(i), UE: cp.UEID(i), Type: cp.ServiceRequest})
	}
	s := tr.SampleUEs(30, 7)
	if s.NumUEs() != 30 || s.Len() != 30 {
		t.Fatalf("sample: %d UEs, %d events", s.NumUEs(), s.Len())
	}
	// Deterministic for the same seed, different for another.
	s2 := tr.SampleUEs(30, 7)
	if !reflect.DeepEqual(s.UEs(), s2.UEs()) {
		t.Fatal("sampling not deterministic")
	}
	s3 := tr.SampleUEs(30, 8)
	if reflect.DeepEqual(s.UEs(), s3.UEs()) {
		t.Fatal("different seeds gave identical samples")
	}
	// Events only from kept UEs, devices preserved.
	for _, e := range s.Events {
		if s.Device[e.UE] != tr.Device[e.UE] {
			t.Fatal("device mismatch in sample")
		}
	}
	// n >= population copies everything.
	all := tr.SampleUEs(1000, 1)
	if all.NumUEs() != 100 || all.Len() != 100 {
		t.Fatal("oversized sample should copy the trace")
	}
	// The copy is independent of the original.
	all.Events[0].Type = cp.Detach
	if tr.Events[0].Type == cp.Detach {
		t.Fatal("sample shares the original's event slice")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := mkTrace(t)
	tr.Sort()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("events differ:\n got %v\nwant %v", got.Events, tr.Events)
	}
	if !reflect.DeepEqual(got.Device, tr.Device) {
		t.Fatalf("devices differ: %v vs %v", got.Device, tr.Device)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		nUE := int(n%20) + 1
		for i := 0; i < nUE; i++ {
			tr.SetDevice(cp.UEID(i), cp.DeviceTypes[rng.Intn(cp.NumDeviceTypes)])
		}
		for i := 0; i < int(n); i++ {
			tr.Append(Event{
				T:    cp.Millis(rng.Int63n(int64(cp.Week))),
				UE:   cp.UEID(rng.Intn(nUE)),
				Type: cp.EventTypes[rng.Intn(cp.NumEventTypes)],
			})
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Device, tr.Device) &&
			(len(got.Events) == 0 && len(tr.Events) == 0 ||
				reflect.DeepEqual(got.Events, tr.Events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",
		"# wrong header\n",
		headerLine + "\nX 1 2\n",
		headerLine + "\nU 1\n",
		headerLine + "\nU 1 toaster\n",
		headerLine + "\nU x phone\n",
		headerLine + "\nE 1 1 ATCH\n",            // unregistered UE
		headerLine + "\nU 1 phone\nE 1 1 NOPE\n", // bad type
		headerLine + "\nU 1 phone\nE z 1 ATCH\n", // bad time
		headerLine + "\nU 1 phone\nE 1 z ATCH\n", // bad ue
		headerLine + "\nU 1 phone\nE 1 1\n",      // short
		headerLine + "\nU 1 phone\nU 1 tablet\n", // conflict
	}
	for i, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed input accepted: %q", i, in)
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := headerLine + "\n\n# comment\nU 1 phone\n\nE 7 1 HO\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Events[0].Type != cp.Handover {
		t.Fatalf("parsed %v", tr.Events)
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 12, UE: 3, Type: cp.Handover}
	if got := e.String(); got != "T=12 UE=3 HO" {
		t.Fatalf("String = %q", got)
	}
}
