package trace

import (
	"reflect"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/stats"
)

// TestRadixSortMatchesSort is the assembly-identity property: radix
// sorting over the packed key must produce exactly the slice a
// comparison sort produces, including heavy duplicate (T, UE, Type)
// collisions and non-zero offsets.
func TestRadixSortMatchesSort(t *testing.T) {
	r := stats.NewRNG(7)
	cases := []struct {
		name string
		n    int
		tMax int
		nUEs int
		t0   cp.Millis
	}{
		{"empty", 0, 1, 1, 0},
		{"single", 1, 1000, 4, 0},
		{"small", 57, 500, 9, 0},
		{"dupes", 4000, 50, 3, 0}, // many exact key collisions
		{"offset", 3000, int(cp.Hour), 257, 36 * cp.Hour},
		{"wide", 20000, int(24 * cp.Hour), 10007, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs := make([]Event, tc.n)
			for i := range evs {
				evs[i] = Event{
					T:    tc.t0 + cp.Millis(r.Intn(tc.tMax)),
					UE:   cp.UEID(r.Intn(tc.nUEs)),
					Type: cp.EventType(r.Intn(cp.NumEventTypes)),
				}
			}
			want := Trace{Events: append([]Event(nil), evs...)}
			want.Sort()
			if !RadixSortEvents(evs, tc.t0) {
				t.Fatal("RadixSortEvents refused a fitting key")
			}
			if len(evs) != len(want.Events) {
				t.Fatalf("length changed: %d vs %d", len(evs), len(want.Events))
			}
			for i := range evs {
				if evs[i] != want.Events[i] {
					t.Fatalf("radix order differs from comparison sort at %d", i)
				}
			}
		})
	}
}

// TestRadixSortFallback covers the refusal paths: oversized keys and
// timestamps below the claimed lower bound must report false and leave
// the slice untouched.
func TestRadixSortFallback(t *testing.T) {
	t.Run("key-overflow", func(t *testing.T) {
		// ~2^62 ms span plus 32 UE bits cannot pack into 64 bits.
		evs := []Event{
			{T: 1 << 62, UE: 1<<32 - 1, Type: cp.Attach},
			{T: 0, UE: 0, Type: cp.Detach},
		}
		orig := append([]Event(nil), evs...)
		if RadixSortEvents(evs, 0) {
			t.Fatal("accepted a key wider than 64 bits")
		}
		if !reflect.DeepEqual(evs, orig) {
			t.Fatal("refused sort mutated the slice")
		}
	})
	t.Run("below-t0", func(t *testing.T) {
		evs := []Event{
			{T: 100, UE: 0, Type: cp.Attach},
			{T: 5, UE: 1, Type: cp.Attach},
		}
		orig := append([]Event(nil), evs...)
		if RadixSortEvents(evs, 50) {
			t.Fatal("accepted a timestamp below t0")
		}
		if !reflect.DeepEqual(evs, orig) {
			t.Fatal("refused sort mutated the slice")
		}
	})
	t.Run("trivial", func(t *testing.T) {
		if !RadixSortEvents(nil, 0) {
			t.Fatal("empty slice should trivially succeed")
		}
		one := []Event{{T: 9, UE: 3, Type: cp.Handover}}
		if !RadixSortEvents(one, 0) {
			t.Fatal("single element should trivially succeed")
		}
	})
}
