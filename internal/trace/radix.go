package trace

import (
	"math/bits"

	"cptraffic/internal/cp"
)

// The canonical event order (Event.Before: time, then UE, then type, all
// ascending and non-negative) is exactly the ascending order of the
// packed integer key
//
//	(T - t0) << (ueBits + typeBits) | UE << typeBits | Type
//
// whenever the three fields' bit widths fit in one uint64. That makes
// trace assembly a non-comparison sort: an LSD radix sort over the packed
// key orders events identically to any Before-based merge or sort —
// equal keys are identical events, so even ties cannot reorder distinct
// records — at O(passes·n) with sequential memory traffic instead of
// O(n log k) comparator work. Generate uses it to assemble per-worker
// event runs without the loser tree; the key-width check falls back to a
// comparison sort for pathological spans (centuries) or UE ids, which
// produces the same bytes by definition of the key.

// radixBits is the digit width per pass: 2048 counting buckets (8 KB per
// pass histogram) stay L1-resident, and a one-hour ledger workload
// (22-bit span + 11-bit UE + 3-bit type) sorts in four passes.
const radixBits = 11

const radixBuckets = 1 << radixBits

// maxRadixPasses covers a full 64-bit key at radixBits per pass.
const maxRadixPasses = (64 + radixBits - 1) / radixBits

// RadixSortEvents sorts evs in place into canonical (time, UE, type)
// order using an LSD radix sort over the packed key above, with t0 a
// known lower bound on every timestamp (pass 0 when unknown — correct,
// just wider keys). It reports whether the key fit in 64 bits; on false
// evs is left untouched and the caller must sort another way. Any
// timestamp below t0 also reports false.
func RadixSortEvents(evs []Event, t0 cp.Millis) bool {
	if len(evs) < 2 {
		return true
	}
	if len(evs) > 1<<31-1 {
		return false // int32 bucket counters
	}
	// One validation sweep finds the actual widths, so the fit check is
	// exact rather than worst-case.
	maxDelta := uint64(0)
	maxUE := uint64(0)
	for i := range evs {
		if evs[i].T < t0 {
			return false
		}
		if d := uint64(evs[i].T - t0); d > maxDelta {
			maxDelta = d
		}
		if u := uint64(evs[i].UE); u > maxUE {
			maxUE = u
		}
	}
	typeBits := uint(bits.Len(uint(cp.NumEventTypes - 1)))
	ueBits := uint(bits.Len64(maxUE))
	tBits := uint(bits.Len64(maxDelta))
	totalBits := tBits + ueBits + typeBits
	if totalBits > 64 {
		return false
	}
	ueShift := typeBits
	tShift := typeBits + ueBits
	passes := int((totalBits + radixBits - 1) / radixBits)
	if passes == 0 {
		passes = 1
	}

	// All pass histograms are gathered in a single read sweep; the
	// per-pass work is then pure prefix-sum + scatter.
	var hist [maxRadixPasses][radixBuckets]int32
	for i := range evs {
		key := uint64(evs[i].T-t0)<<tShift | uint64(evs[i].UE)<<ueShift | uint64(evs[i].Type)
		for p := 0; p < passes; p++ {
			hist[p][(key>>(uint(p)*radixBits))&(radixBuckets-1)]++
		}
	}
	tmp := make([]Event, len(evs))
	src, dst := evs, tmp
	for p := 0; p < passes; p++ {
		h := &hist[p]
		sum := int32(0)
		for b := range h {
			c := h[b]
			h[b] = sum
			sum += c
		}
		shift := uint(p) * radixBits
		for i := range src {
			key := uint64(src[i].T-t0)<<tShift | uint64(src[i].UE)<<ueShift | uint64(src[i].Type)
			b := (key >> shift) & (radixBuckets - 1)
			dst[h[b]] = src[i]
			h[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &evs[0] {
		copy(evs, src)
	}
	return true
}
