//go:build !batchdebug

package trace

// The shipped build: Reset truncates without touching the column
// bytes. Keeping poisonBatch a no-op here (rather than gating the call
// site) keeps Reset's body identical in both builds; the compiler
// erases the empty call.

const batchPoisonEnabled = false

func poisonBatch(*Batch) {}
