//go:build batchdebug

package trace

import "cptraffic/internal/cp"

// Batch poison mode: the runtime counterpart of cplint's retain
// analyzer. Reset scribbles sentinels over the full column capacity, so
// a consumer that held on to a column view past its callback observes
// values no generator produces — loudly, at the first reuse — instead
// of silently reading the next batch's events. The shipped build
// compiles the no-op in batchdebug_off.go; this file exists only under
// `go test -tags batchdebug`.

const batchPoisonEnabled = true

// Sentinel values outside anything the pipeline emits: timestamps are
// non-negative, UE ids are dense from zero, and event types are small
// enums.
const (
	PoisonMillis cp.Millis    = -0x7ead_beef
	PoisonUE     cp.UEID      = 0xdead_beef
	PoisonType   cp.EventType = 0xee
)

// poisonBatch overwrites every column slot up to capacity.
func poisonBatch(b *Batch) {
	t := b.T[:cap(b.T)]
	for i := range t {
		t[i] = PoisonMillis
	}
	u := b.UE[:cap(b.UE)]
	for i := range u {
		u[i] = PoisonUE
	}
	k := b.Type[:cap(b.Type)]
	for i := range k {
		k[i] = PoisonType
	}
}
