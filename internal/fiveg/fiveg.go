// Package fiveg adapts a fitted LTE model to NextG networks (paper §6).
//
// 5G NSA (non-standalone) runs on LTE's core, so it keeps the LTE
// two-level machine and event vocabulary; only event frequencies change —
// most prominently handovers, which the paper scales by 4.6x following
// the mmWave measurement study it cites. 5G SA (standalone) uses the
// adjusted machine of Fig. 6: the one-to-one event mapping of Table 2
// applies (ATCH=REGISTER, DTCH=DEREGISTER, S1_CONN_REL=AN_REL) and TAU
// disappears; the paper's controlled experiment put SA handover scaling
// at 3.0x.
//
// Scaling is a first-order hazard transform: the weight of every HO
// outcome (bottom-level transitions, free processes, first events) is
// multiplied by the factor before renormalizing against the other
// outcomes and the KM tail mass, HO delays shrink by the same factor,
// and state-level delay marginals shrink in proportion to the total
// firing-hazard increase.
package fiveg

import (
	"bytes"
	"fmt"

	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
)

// Paper-derived handover scaling factors.
const (
	// NSAHandoverFactor is the 4.6x increase in HO events measured when
	// UEs move from LTE to 5G mmWave NSA.
	NSAHandoverFactor = 4.6
	// SAHandoverFactor is the 3.0x factor from the paper's controlled
	// LTE-vs-mmWave walking/driving experiment.
	SAHandoverFactor = 3.0
)

// ToNSA derives a 5G NSA model from a fitted LTE two-level model: the
// machine and event set are unchanged (NSA runs on the LTE core), with
// handover frequency scaled by hoFactor (use NSAHandoverFactor for the
// paper's setting).
func ToNSA(ms *core.ModelSet, hoFactor float64) (*core.ModelSet, error) {
	if ms.MachineName != sm.LTE2Level().Name {
		return nil, fmt.Errorf("fiveg: NSA adaptation needs an LTE two-level model, got %s", ms.MachineName)
	}
	out, err := clone(ms)
	if err != nil {
		return nil, err
	}
	out.Method = ms.Method + "+5g-nsa"
	forEachCluster(out, func(cm *core.ClusterModel) {
		scaleEvent(cm, cp.Handover, hoFactor)
	})
	return out, out.Validate()
}

// ToSA derives a 5G SA model: the machine becomes the adjusted Fig. 6
// machine, TAU and its states are removed, and handover frequency is
// scaled by hoFactor (use SAHandoverFactor for the paper's setting).
func ToSA(ms *core.ModelSet, hoFactor float64) (*core.ModelSet, error) {
	if ms.MachineName != sm.LTE2Level().Name {
		return nil, fmt.Errorf("fiveg: SA adaptation needs an LTE two-level model, got %s", ms.MachineName)
	}
	out, err := clone(ms)
	if err != nil {
		return nil, err
	}
	out.MachineName = sm.FiveGSA().Name
	out.Method = ms.Method + "+5g-sa"
	forEachCluster(out, func(cm *core.ClusterModel) {
		dropEvent(cm, cp.TrackingAreaUpdate)
		remapBottomToSA(cm)
		scaleEvent(cm, cp.Handover, hoFactor)
	})
	return out, out.Validate()
}

// clone deep-copies a model set via its JSON form.
func clone(ms *core.ModelSet) (*core.ModelSet, error) {
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		return nil, err
	}
	return core.Load(&buf)
}

// forEachCluster visits every cluster model, the hour aggregates, and
// the device globals.
func forEachCluster(ms *core.ModelSet, f func(*core.ClusterModel)) {
	for _, dm := range ms.Devices {
		if dm == nil {
			continue
		}
		for h := range dm.Hours {
			for c := range dm.Hours[h].Clusters {
				f(&dm.Hours[h].Clusters[c])
			}
			if dm.Hours[h].Aggregate != nil {
				f(dm.Hours[h].Aggregate)
			}
		}
		if dm.Global != nil {
			f(dm.Global)
		}
	}
}

// scaleEvent multiplies the occurrence weight of event e by factor
// throughout one cluster model.
func scaleEvent(cm *core.ClusterModel, e cp.EventType, factor float64) {
	for s := range cm.Bottom {
		scaleState(&cm.Bottom[s], e, factor)
	}
	for i := range cm.Free {
		if cm.Free[i].Event == e {
			cm.Free[i].Inter = scaleSojourn(cm.Free[i].Inter, 1/factor)
		}
	}
	// First-event mix: e becomes factor times likelier relative to the
	// other first events.
	var total float64
	touched := false
	for i := range cm.First.Cats {
		if cm.First.Cats[i].Event == e {
			cm.First.Cats[i].P *= factor
			touched = true
		}
		total += cm.First.Cats[i].P
	}
	if touched && total > 0 {
		for i := range cm.First.Cats {
			cm.First.Cats[i].P /= total
		}
	}
}

// scaleState applies the hazard transform to one bottom-level state: the
// weight of outcomes on event e is multiplied by factor (competing
// against the other events and the never-fires tail PExit), e's delays
// shrink by factor, and the state-level delay marginal shrinks by the
// total firing-hazard increase.
func scaleState(sp *core.StateParam, e cp.EventType, factor float64) {
	var oldFiring, newFiring float64
	hasEvent := false
	for _, tp := range sp.Out {
		w := tp.P * (1 - sp.PExit)
		oldFiring += w
		if tp.Event == e {
			hasEvent = true
			newFiring += w * factor
		} else {
			newFiring += w
		}
	}
	if !hasEvent || oldFiring <= 0 {
		return
	}
	exitW := sp.PExit
	sp.PExit = exitW / (exitW + newFiring)
	// Recompute the per-event probabilities among firing outcomes.
	var firingSum float64
	weights := make([]float64, len(sp.Out))
	for i, tp := range sp.Out {
		w := tp.P
		if tp.Event == e {
			w *= factor
		}
		weights[i] = w
		firingSum += w
	}
	for i := range sp.Out {
		sp.Out[i].P = weights[i] / firingSum
		if sp.Out[i].Event == e {
			sp.Out[i].Sojourn = scaleSojourn(sp.Out[i].Sojourn, 1/factor)
		}
	}
	if sp.Sojourn != nil {
		scaled := scaleSojourn(*sp.Sojourn, oldFiring/newFiring)
		sp.Sojourn = &scaled
	}
}

// scaleSojourn multiplies a sojourn model's time scale by s.
func scaleSojourn(m core.SojournModel, s float64) core.SojournModel {
	switch m.Kind {
	case core.SojournTable:
		q := make([]float64, len(m.Q))
		for i, v := range m.Q {
			q[i] = v * s
		}
		return core.SojournModel{Kind: core.SojournTable, Q: q}
	case core.SojournExp:
		return core.SojournModel{Kind: core.SojournExp, Lambda: m.Lambda / s}
	case core.SojournConst:
		return core.SojournModel{Kind: core.SojournConst, Value: m.Value * s}
	}
	return m
}

// dropEvent removes every outcome on event e from one cluster model,
// renormalizing the survivors; states left with no outgoing transitions
// lose their parameters entirely.
func dropEvent(cm *core.ClusterModel, e cp.EventType) {
	for s := range cm.Bottom {
		dropFromState(&cm.Bottom[s], e)
	}
	for s := range cm.Top {
		dropFromState(&cm.Top[s], e)
	}
	var free []core.FreeProcess
	for _, fp := range cm.Free {
		if fp.Event != e {
			free = append(free, fp)
		}
	}
	cm.Free = free
	var kept []core.FirstCat
	var keptSum float64
	for _, cat := range cm.First.Cats {
		if cat.Event != e {
			kept = append(kept, cat)
			keptSum += cat.P
		}
	}
	if len(kept) != len(cm.First.Cats) {
		if keptSum > 0 {
			for i := range kept {
				kept[i].P /= keptSum
			}
			cm.First.Cats = kept
		} else {
			// Every first event was a TAU: the UE simply stays silent.
			cm.First.Cats = nil
			cm.First.PNone = 1
		}
	}
}

func dropFromState(sp *core.StateParam, e cp.EventType) {
	var kept []core.TransitionParam
	var keptSum float64
	for _, tp := range sp.Out {
		if tp.Event != e {
			kept = append(kept, tp)
			keptSum += tp.P
		}
	}
	if len(kept) == len(sp.Out) {
		return
	}
	if keptSum <= 0 || len(kept) == 0 {
		sp.Out = nil
		sp.Sojourn = nil
		sp.PExit = 0
		return
	}
	for i := range kept {
		kept[i].P /= keptSum
	}
	sp.Out = kept
	// The dropped outcomes' mass moves to the never-fires tail: visits
	// that would have TAU'd now sit silent (first-order approximation).
	sp.PExit = sp.PExit + (1-sp.PExit)*(1-keptSum)
}

// saStateOf maps LTE two-level fine states onto the 5G SA machine.
var saStateOf = map[sm.State]sm.State{
	sm.LTEDeregistered: sm.SADeregistered,
	sm.LTESrvReqS:      sm.SASrvReqS,
	sm.LTEHoS:          sm.SAHoS,
	sm.LTES1RelS1:      sm.SAIdle,
	sm.LTES1RelS2:      sm.SAIdle,
	sm.LTETauSIdle:     sm.SAIdle,
	// TAU_S_CONN disappears; its (TAU-free) remainder folds into HO_S,
	// the closest CONNECTED sub-state.
	sm.LTETauSConn: sm.SAHoS,
}

// remapBottomToSA rebuilds the bottom-level state array (and the
// first-event categories' post-states) on the 5G SA machine's state
// space. TAU transitions must already be dropped.
func remapBottomToSA(cm *core.ClusterModel) {
	for i := range cm.First.Cats {
		cm.First.Cats[i].State = saStateOf[cm.First.Cats[i].State]
	}
	if cm.Bottom == nil {
		return
	}
	out := make([]core.StateParam, sm.NumSAStates)
	for s := range cm.Bottom {
		src := &cm.Bottom[s]
		if len(src.Out) == 0 {
			continue
		}
		dst := saStateOf[sm.State(s)]
		// SA IDLE has no sub-machine (its only internal events were
		// TAU-related); anything remaining there is discarded.
		if dst == sm.SAIdle || dst == sm.SADeregistered {
			continue
		}
		if len(out[dst].Out) == 0 {
			out[dst] = *src
		}
		// When two LTE states fold onto one SA state, keep the first
		// (HO_S wins over TAU_S_CONN by iteration order).
	}
	cm.Bottom = out
}
