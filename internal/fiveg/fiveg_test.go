package fiveg

import (
	"math"
	"testing"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/world"
)

func lteModel(t *testing.T) *core.ModelSet {
	t.Helper()
	tr, err := world.Generate(world.Options{NumUEs: 400, Duration: cp.Day, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.Fit(tr, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func share(tr interface {
	CountByType() [cp.NumEventTypes]int
	Len() int
}, e cp.EventType) float64 {
	if tr.Len() == 0 {
		return 0
	}
	return float64(tr.CountByType()[e]) / float64(tr.Len())
}

func TestToNSAIncreasesHandovers(t *testing.T) {
	lte := lteModel(t)
	nsa, err := ToNSA(lte, NSAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	if nsa.MachineName != sm.LTE2Level().Name {
		t.Fatalf("NSA machine = %s", nsa.MachineName)
	}
	genOpt := core.GenOptions{NumUEs: 500, StartHour: 8, Duration: 2 * cp.Hour, Seed: 1}
	lteTr, err := core.Generate(lte, genOpt)
	if err != nil {
		t.Fatal(err)
	}
	nsaTr, err := core.Generate(nsa, genOpt)
	if err != nil {
		t.Fatal(err)
	}
	lteHO := share(lteTr, cp.Handover)
	nsaHO := share(nsaTr, cp.Handover)
	if lteHO <= 0 {
		t.Fatal("LTE generated no HO")
	}
	ratio := nsaHO / lteHO
	// The paper's Table 7 projects phones 3.8% -> 15.4%, a ~4x share
	// increase for a 4.6x frequency scaling.
	if ratio < 2 || ratio > 8 {
		t.Fatalf("HO share ratio NSA/LTE = %.2f (LTE %.4f, NSA %.4f)", ratio, lteHO, nsaHO)
	}
	// NSA keeps TAU (it runs on the LTE core).
	if share(nsaTr, cp.TrackingAreaUpdate) == 0 {
		t.Fatal("NSA lost TAU")
	}
}

func TestToSARemovesTAU(t *testing.T) {
	lte := lteModel(t)
	sa, err := ToSA(lte, SAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	if sa.MachineName != sm.FiveGSA().Name {
		t.Fatalf("SA machine = %s", sa.MachineName)
	}
	saTr, err := core.Generate(sa, core.GenOptions{NumUEs: 500, StartHour: 3, Duration: 2 * cp.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if saTr.Len() == 0 {
		t.Fatal("SA generated nothing")
	}
	if c := saTr.CountByType(); c[cp.TrackingAreaUpdate] != 0 {
		t.Fatalf("SA generated %d TAU events", c[cp.TrackingAreaUpdate])
	}
	if share(saTr, cp.Handover) == 0 {
		t.Fatal("SA generated no HO")
	}
}

func TestNSAvsSAHandoverOrdering(t *testing.T) {
	// Paper Table 7: NSA has more HO than SA (4.6x vs 3.0x scaling, and
	// NSA hands over on both RANs).
	lte := lteModel(t)
	nsa, err := ToNSA(lte, NSAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ToSA(lte, SAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	genOpt := core.GenOptions{NumUEs: 600, StartHour: 8, Duration: 2 * cp.Hour, Seed: 3}
	nsaTr, err := core.Generate(nsa, genOpt)
	if err != nil {
		t.Fatal(err)
	}
	saTr, err := core.Generate(sa, genOpt)
	if err != nil {
		t.Fatal(err)
	}
	if share(nsaTr, cp.Handover) <= share(saTr, cp.Handover) {
		t.Fatalf("HO share NSA (%.4f) should exceed SA (%.4f)",
			share(nsaTr, cp.Handover), share(saTr, cp.Handover))
	}
}

func TestSAGeneratedTraceConformsToSAMachine(t *testing.T) {
	lte := lteModel(t)
	sa, err := ToSA(lte, SAHandoverFactor)
	if err != nil {
		t.Fatal(err)
	}
	saTr, err := core.Generate(sa, core.GenOptions{NumUEs: 300, Duration: 2 * cp.Hour, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := sm.FiveGSA()
	violations := 0
	for _, evs := range saTr.PerUE() {
		if len(evs) == 0 {
			continue
		}
		violations += sm.Replay(m, sm.InferInitial(m, evs), evs).Violations
	}
	if violations != 0 {
		t.Fatalf("SA trace has %d violations against the SA machine", violations)
	}
}

func TestAdaptationRejectsWrongMachine(t *testing.T) {
	bad := &core.ModelSet{MachineName: "EMM-ECM"}
	if _, err := ToNSA(bad, 4.6); err == nil {
		t.Fatal("NSA accepted EMM-ECM model")
	}
	if _, err := ToSA(bad, 3.0); err == nil {
		t.Fatal("SA accepted EMM-ECM model")
	}
}

func TestScaleSojourn(t *testing.T) {
	table := core.SojournModel{Kind: core.SojournTable, Q: []float64{1, 2, 4}}
	got := scaleSojourn(table, 0.5)
	if got.Q[0] != 0.5 || got.Q[2] != 2 {
		t.Fatalf("scaled table = %v", got.Q)
	}
	exp := core.SojournModel{Kind: core.SojournExp, Lambda: 2}
	if got := scaleSojourn(exp, 0.5); math.Abs(got.Lambda-4) > 1e-12 {
		t.Fatalf("scaled exp lambda = %v", got.Lambda)
	}
	c := core.SojournModel{Kind: core.SojournConst, Value: 10}
	if got := scaleSojourn(c, 0.1); got.Value != 1 {
		t.Fatalf("scaled const = %v", got.Value)
	}
}

func TestScaleStateConservation(t *testing.T) {
	sp := core.StateParam{
		Out: []core.TransitionParam{
			{Event: cp.Handover, P: 0.4, Sojourn: core.SojournModel{Kind: core.SojournConst, Value: 10}},
			{Event: cp.TrackingAreaUpdate, P: 0.6, Sojourn: core.SojournModel{Kind: core.SojournConst, Value: 20}},
		},
		PExit: 0.5,
	}
	scaleState(&sp, cp.Handover, 2)
	var sum float64
	for _, tp := range sp.Out {
		sum += tp.P
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// HO weight doubled: 0.4*2=0.8 vs 0.6 -> p(HO) = 0.8/1.4.
	if math.Abs(sp.Out[0].P-0.8/1.4) > 1e-12 {
		t.Fatalf("p(HO) = %v", sp.Out[0].P)
	}
	// Firing weight grew from 0.5 to 0.7 absolute; PExit = 0.5/1.2.
	if math.Abs(sp.PExit-0.5/1.2) > 1e-12 {
		t.Fatalf("PExit = %v", sp.PExit)
	}
	// HO delay halved.
	if sp.Out[0].Sojourn.Value != 5 {
		t.Fatalf("HO sojourn = %v", sp.Out[0].Sojourn.Value)
	}
}

func TestDropFromState(t *testing.T) {
	sp := core.StateParam{
		Out: []core.TransitionParam{
			{Event: cp.Handover, P: 0.25, Sojourn: core.SojournModel{Kind: core.SojournConst, Value: 1}},
			{Event: cp.TrackingAreaUpdate, P: 0.75, Sojourn: core.SojournModel{Kind: core.SojournConst, Value: 1}},
		},
		PExit: 0.2,
	}
	dropFromState(&sp, cp.TrackingAreaUpdate)
	if len(sp.Out) != 1 || sp.Out[0].Event != cp.Handover {
		t.Fatalf("out = %+v", sp.Out)
	}
	if math.Abs(sp.Out[0].P-1) > 1e-12 {
		t.Fatalf("p = %v", sp.Out[0].P)
	}
	// Dropped mass moves to the tail: 0.2 + 0.8*0.75 = 0.8.
	if math.Abs(sp.PExit-0.8) > 1e-12 {
		t.Fatalf("PExit = %v", sp.PExit)
	}
	// Dropping the only transition clears the state.
	sp2 := core.StateParam{Out: []core.TransitionParam{{Event: cp.TrackingAreaUpdate, P: 1}}}
	dropFromState(&sp2, cp.TrackingAreaUpdate)
	if sp2.Out != nil || sp2.PExit != 0 {
		t.Fatalf("sp2 = %+v", sp2)
	}
}
