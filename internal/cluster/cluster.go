// Package cluster implements the paper's adaptive clustering scheme
// (§5.3): UEs of one device type within one hour-of-day are recursively
// segregated in a 4-dimensional feature space until every cluster is
// either homogeneous (feature spread below θf in every dimension) or
// small (fewer than θn UEs). The recursive partition forms a quadtree:
// each split cuts the current region into four equal sub-regions along
// the two currently most-spread dimensions.
//
// The four features characterize a UE's traffic through the two dominant
// event types: the number of SRV_REQ events and the standard deviation of
// the CONNECTED sojourn, and the number of S1_CONN_REL events and the
// standard deviation of the IDLE sojourn.
package cluster

import (
	"fmt"
	"sort"

	"cptraffic/internal/cp"
)

// NumFeatures is the dimensionality of the clustering feature space.
const NumFeatures = 4

// Feature indices.
const (
	// FSrvReqCount is the number of SRV_REQ events in the interval.
	FSrvReqCount = iota
	// FConnStd is the standard deviation (seconds) of CONNECTED sojourns.
	FConnStd
	// FS1RelCount is the number of S1_CONN_REL events in the interval.
	FS1RelCount
	// FIdleStd is the standard deviation (seconds) of IDLE sojourns.
	FIdleStd
)

// Features is one UE's position in the clustering space.
type Features [NumFeatures]float64

// Point pairs a UE with its features.
type Point struct {
	UE cp.UEID
	F  Features
}

// Options configures the adaptive partition.
type Options struct {
	// ThetaF is the per-dimension similarity threshold: a region whose
	// spread (max-min) is below ThetaF[d] in every dimension d is a final
	// cluster. Zero values default to the paper's θf = 5.
	ThetaF Features
	// ThetaN is the small-cluster threshold: a region with fewer than
	// ThetaN UEs is a final cluster. Zero defaults to the paper's 1000.
	ThetaN int
	// MaxDepth bounds the recursion as a safety net (default 32).
	MaxDepth int
}

func (o Options) withDefaults() Options {
	for d := range o.ThetaF {
		if o.ThetaF[d] <= 0 {
			o.ThetaF[d] = 5
		}
	}
	if o.ThetaN <= 0 {
		o.ThetaN = 1000
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 32
	}
	return o
}

// Cluster is one final region of the partition.
type Cluster struct {
	// ID numbers clusters 0..n-1 in deterministic (depth-first) order.
	ID int
	// UEs lists the member UEs in ascending order.
	UEs []cp.UEID
	// Min and Max bound the members' features.
	Min, Max Features
}

// Size returns the number of member UEs.
func (c *Cluster) Size() int { return len(c.UEs) }

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster %d: %d UEs", c.ID, len(c.UEs))
}

// Partition runs the adaptive quadtree partition over the points and
// returns the final clusters. The result is deterministic for a given
// input ordering-independently: points are sorted by UE id first.
func Partition(points []Point, opt Options) []Cluster {
	opt = opt.withDefaults()
	if len(points) == 0 {
		return nil
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].UE < ps[j].UE })

	var out []Cluster
	var recurse func(ps []Point, depth int)
	recurse = func(ps []Point, depth int) {
		lo, hi := bounds(ps)
		if len(ps) < opt.ThetaN || depth >= opt.MaxDepth || similar(lo, hi, opt.ThetaF) {
			out = append(out, finalize(len(out), ps, lo, hi))
			return
		}
		// Split along the two most-spread dimensions (relative to their
		// thresholds), cutting each at the midpoint: four quadrants.
		d1, d2 := splitDims(lo, hi, opt.ThetaF)
		m1 := (lo[d1] + hi[d1]) / 2
		m2 := (lo[d2] + hi[d2]) / 2
		var quads [4][]Point
		for _, p := range ps {
			q := 0
			if p.F[d1] > m1 {
				q |= 1
			}
			if p.F[d2] > m2 {
				q |= 2
			}
			quads[q] = append(quads[q], p)
		}
		// A degenerate split (everything in one quadrant) cannot happen
		// when the spread exceeds the threshold in d1 or d2, because the
		// midpoint strictly separates min from max; but guard anyway.
		nonEmpty := 0
		for _, q := range quads {
			if len(q) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty <= 1 {
			out = append(out, finalize(len(out), ps, lo, hi))
			return
		}
		for _, q := range quads {
			if len(q) > 0 {
				recurse(q, depth+1)
			}
		}
	}
	recurse(ps, 0)
	return out
}

func bounds(ps []Point) (lo, hi Features) {
	lo, hi = ps[0].F, ps[0].F
	for _, p := range ps[1:] {
		for d := 0; d < NumFeatures; d++ {
			if p.F[d] < lo[d] {
				lo[d] = p.F[d]
			}
			if p.F[d] > hi[d] {
				hi[d] = p.F[d]
			}
		}
	}
	return lo, hi
}

func similar(lo, hi, theta Features) bool {
	for d := 0; d < NumFeatures; d++ {
		if hi[d]-lo[d] >= theta[d] {
			return false
		}
	}
	return true
}

// splitDims returns the two dimensions with the largest spread relative
// to their thresholds.
func splitDims(lo, hi, theta Features) (int, int) {
	type ds struct {
		d int
		s float64
	}
	var all [NumFeatures]ds
	for d := 0; d < NumFeatures; d++ {
		all[d] = ds{d, (hi[d] - lo[d]) / theta[d]}
	}
	s := all[:]
	sort.Slice(s, func(i, j int) bool {
		if s[i].s != s[j].s {
			return s[i].s > s[j].s
		}
		return s[i].d < s[j].d
	})
	return s[0].d, s[1].d
}

func finalize(id int, ps []Point, lo, hi Features) Cluster {
	ues := make([]cp.UEID, len(ps))
	for i, p := range ps {
		ues[i] = p.UE
	}
	sort.Slice(ues, func(i, j int) bool { return ues[i] < ues[j] })
	return Cluster{ID: id, UEs: ues, Min: lo, Max: hi}
}

// Assignment maps every UE to its cluster ID.
func Assignment(clusters []Cluster) map[cp.UEID]int {
	out := make(map[cp.UEID]int)
	for _, c := range clusters {
		for _, ue := range c.UEs {
			out[ue] = c.ID
		}
	}
	return out
}

// Weights returns each cluster's share of the total UE population, in
// cluster-ID order. The traffic generator assigns synthetic UEs to
// clusters with these probabilities (§7).
func Weights(clusters []Cluster) []float64 {
	total := 0
	for _, c := range clusters {
		total += len(c.UEs)
	}
	out := make([]float64, len(clusters))
	if total == 0 {
		return out
	}
	for i, c := range clusters {
		out[i] = float64(len(c.UEs)) / float64(total)
	}
	return out
}
