package cluster

import (
	"testing"
	"testing/quick"

	"cptraffic/internal/cp"
	"cptraffic/internal/stats"
)

func TestPartitionEmpty(t *testing.T) {
	if got := Partition(nil, Options{}); got != nil {
		t.Fatalf("Partition(nil) = %v", got)
	}
}

func TestPartitionSingleCluster(t *testing.T) {
	// All points identical -> one cluster regardless of thresholds.
	pts := make([]Point, 5000)
	for i := range pts {
		pts[i] = Point{UE: cp.UEID(i), F: Features{1, 2, 3, 4}}
	}
	cs := Partition(pts, Options{ThetaN: 10})
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1", len(cs))
	}
	if cs[0].Size() != 5000 {
		t.Fatalf("cluster size = %d", cs[0].Size())
	}
}

func TestPartitionSmallPopulationStops(t *testing.T) {
	// Fewer than ThetaN points -> one cluster even if spread out.
	pts := []Point{
		{UE: 1, F: Features{0, 0, 0, 0}},
		{UE: 2, F: Features{1000, 1000, 1000, 1000}},
	}
	cs := Partition(pts, Options{ThetaN: 1000})
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1", len(cs))
	}
}

func TestPartitionSeparatesDistinctGroups(t *testing.T) {
	// Two well-separated groups, each large enough to matter.
	var pts []Point
	for i := 0; i < 200; i++ {
		pts = append(pts, Point{UE: cp.UEID(i), F: Features{1, 1, 1, 1}})
	}
	for i := 200; i < 400; i++ {
		pts = append(pts, Point{UE: cp.UEID(i), F: Features{100, 100, 100, 100}})
	}
	cs := Partition(pts, Options{ThetaN: 50})
	if len(cs) < 2 {
		t.Fatalf("got %d clusters, want >= 2", len(cs))
	}
	// No cluster may contain members of both groups.
	asg := Assignment(cs)
	for i := 0; i < 200; i++ {
		for j := 200; j < 400; j++ {
			if asg[cp.UEID(i)] == asg[cp.UEID(j)] {
				t.Fatalf("UE %d and %d share cluster %d", i, j, asg[cp.UEID(i)])
			}
		}
	}
}

func TestPartitionFinalClustersMeetStopCriteria(t *testing.T) {
	r := stats.NewRNG(1)
	var pts []Point
	for i := 0; i < 3000; i++ {
		pts = append(pts, Point{
			UE: cp.UEID(i),
			F: Features{
				float64(r.Intn(60)),
				r.Float64() * 200,
				float64(r.Intn(60)),
				r.Float64() * 200,
			},
		})
	}
	opt := Options{ThetaN: 100}
	cs := Partition(pts, opt)
	theta := opt.withDefaults().ThetaF
	for _, c := range cs {
		if c.Size() < opt.ThetaN {
			continue // stopped by size: fine
		}
		for d := 0; d < NumFeatures; d++ {
			if c.Max[d]-c.Min[d] >= theta[d] {
				t.Fatalf("cluster %d has spread %v in dim %d with %d members",
					c.ID, c.Max[d]-c.Min[d], d, c.Size())
			}
		}
	}
}

func TestPartitionCoversAllUEsExactlyOnce(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := stats.NewRNG(seed)
		m := int(n%2000) + 1
		pts := make([]Point, m)
		for i := range pts {
			pts[i] = Point{
				UE: cp.UEID(i),
				F: Features{
					float64(r.Intn(100)),
					r.Float64() * 500,
					float64(r.Intn(100)),
					r.Float64() * 500,
				},
			}
		}
		cs := Partition(pts, Options{ThetaN: 50})
		seen := map[cp.UEID]int{}
		for _, c := range cs {
			for _, ue := range c.UEs {
				seen[ue]++
			}
		}
		if len(seen) != m {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPartitionDeterministicUnderShuffle(t *testing.T) {
	r := stats.NewRNG(7)
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{
			UE: cp.UEID(i),
			F:  Features{float64(r.Intn(40)), r.Float64() * 100, float64(r.Intn(40)), r.Float64() * 100},
		}
	}
	a := Partition(pts, Options{ThetaN: 100})
	shuffled := append([]Point(nil), pts...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := Partition(shuffled, Options{ThetaN: 100})
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].UEs) != len(b[i].UEs) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j := range a[i].UEs {
			if a[i].UEs[j] != b[i].UEs[j] {
				t.Fatalf("cluster %d member %d differs", i, j)
			}
		}
	}
}

func TestAssignmentAndWeights(t *testing.T) {
	cs := []Cluster{
		{ID: 0, UEs: []cp.UEID{1, 2, 3}},
		{ID: 1, UEs: []cp.UEID{4}},
	}
	asg := Assignment(cs)
	if asg[1] != 0 || asg[4] != 1 {
		t.Fatalf("assignment = %v", asg)
	}
	w := Weights(cs)
	if w[0] != 0.75 || w[1] != 0.25 {
		t.Fatalf("weights = %v", w)
	}
	if w := Weights(nil); len(w) != 0 {
		t.Fatalf("Weights(nil) = %v", w)
	}
	if w := Weights([]Cluster{{ID: 0}}); w[0] != 0 {
		t.Fatalf("empty cluster weight = %v", w)
	}
}

func TestClusterIDsAreSequential(t *testing.T) {
	r := stats.NewRNG(3)
	pts := make([]Point, 2000)
	for i := range pts {
		pts[i] = Point{UE: cp.UEID(i), F: Features{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}}
	}
	cs := Partition(pts, Options{ThetaN: 50})
	for i, c := range cs {
		if c.ID != i {
			t.Fatalf("cluster %d has ID %d", i, c.ID)
		}
	}
}

func TestMaxDepthGuard(t *testing.T) {
	// Pathological: many coincident groups forcing deep recursion still
	// terminates thanks to MaxDepth.
	var pts []Point
	r := stats.NewRNG(4)
	for i := 0; i < 5000; i++ {
		pts = append(pts, Point{UE: cp.UEID(i), F: Features{r.Float64() * 1e9, 0, 0, 0}})
	}
	cs := Partition(pts, Options{ThetaN: 2, MaxDepth: 4})
	if len(cs) == 0 {
		t.Fatal("no clusters")
	}
	// With depth 4 and 4-way splits we can have at most 4^4 leaves... but
	// only 2 dims spread here; just check termination and coverage.
	total := 0
	for _, c := range cs {
		total += c.Size()
	}
	if total != 5000 {
		t.Fatalf("covered %d of 5000", total)
	}
}

func TestStringMethods(t *testing.T) {
	c := Cluster{ID: 3, UEs: []cp.UEID{1, 2}}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}
