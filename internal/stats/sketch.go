package stats

import (
	"math"
	"sort"
)

// Sketch is a mergeable bounded-memory quantile sketch: a bottom-k
// priority sample. Every observation carries a caller-supplied priority
// (a deterministic hash of the observation's identity — see
// SketchPriority); the sketch keeps the k observations with the
// smallest (Pri, Tag) pairs. Because "the k smallest of a set" does not
// depend on arrival order or on how the set was split across sketches,
// Add and Merge commute: feeding a stream into one sketch, or sharding
// it across many sketches and merging them in any order, yields
// byte-identical contents. With hash priorities the kept set is a
// uniform sample without replacement, so the empirical CDF of the kept
// values approximates the stream's ECDF with the DKW error bound
// returned by SketchErrorBound.
//
// The zero Sketch is not usable; construct with NewSketch or
// RestoreSketch.
type Sketch struct {
	k     int
	n     int64
	items []SketchItem // max-heap on (Pri, Tag); items[0] is the eviction candidate
}

// SketchItem is one retained observation. Pri is the sampling priority,
// Tag a caller-chosen identity that breaks priority ties and orders the
// canonical serialization, V the observed value.
type SketchItem struct {
	Pri uint64
	Tag uint64
	V   float64
}

// DefaultSketchK is the retained-sample bound used when a caller asks
// for sketched mode without choosing k. At k = 2048 the DKW bound gives
// quantile error ε ≈ 0.049 with confidence 1 − 1e-4 (SketchErrorBound).
const DefaultSketchK = 2048

// NewSketch returns an empty sketch retaining at most k observations.
// It panics if k < 1.
func NewSketch(k int) *Sketch {
	if k < 1 {
		panic("stats: sketch needs k >= 1")
	}
	return &Sketch{k: k}
}

// RestoreSketch rebuilds a sketch from serialized state: the bound k,
// the total observation count n, and the retained items (in any order;
// len(items) <= k and n >= len(items) are required). It panics on
// inconsistent arguments.
func RestoreSketch(k int, n int64, items []SketchItem) *Sketch {
	if k < 1 {
		panic("stats: sketch needs k >= 1")
	}
	if len(items) > k || n < int64(len(items)) {
		panic("stats: inconsistent sketch restore state")
	}
	s := &Sketch{k: k, n: n, items: append([]SketchItem(nil), items...)}
	s.heapify()
	return s
}

// itemLess orders items by (Pri, Tag) lexicographically.
func itemLess(a, b SketchItem) bool {
	if a.Pri != b.Pri {
		return a.Pri < b.Pri
	}
	return a.Tag < b.Tag
}

// Add observes one value with the given priority and tag. Ties on
// (pri, tag) are kept as duplicates; callers that need set semantics
// must supply unique tags.
func (s *Sketch) Add(pri, tag uint64, v float64) {
	s.n++
	s.insert(SketchItem{Pri: pri, Tag: tag, V: v})
}

// insert places it into the bottom-k heap without counting it.
func (s *Sketch) insert(it SketchItem) {
	if len(s.items) < s.k {
		s.items = append(s.items, it)
		s.up(len(s.items) - 1)
		return
	}
	// Full: keep only if smaller than the current maximum.
	if itemLess(it, s.items[0]) {
		s.items[0] = it
		s.down(0)
	}
}

// Merge folds other into s. Both sketches must share the same k (panic
// otherwise). The result holds the k smallest items of the union and
// the summed observation count — identical for any merge order or
// grouping. other is not modified.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil {
		return
	}
	if s.k != other.k {
		panic("stats: merging sketches with different k")
	}
	s.n += other.n
	for _, it := range other.items {
		s.insert(it)
	}
}

// K returns the retention bound.
func (s *Sketch) K() int { return s.k }

// N returns the total number of observations, kept or not.
func (s *Sketch) N() int64 { return s.n }

// Len returns the number of retained observations (<= k).
func (s *Sketch) Len() int { return len(s.items) }

// Items returns the retained observations sorted by (Pri, Tag) — the
// canonical serialization order. The slice is a copy.
func (s *Sketch) Items() []SketchItem {
	out := append([]SketchItem(nil), s.items...)
	sort.Slice(out, func(i, j int) bool { return itemLess(out[i], out[j]) })
	return out
}

// Values returns the retained values sorted ascending (ties broken by
// (Pri, Tag) before sorting, so the bytes are deterministic). The slice
// is a copy.
func (s *Sketch) Values() []float64 {
	items := s.Items()
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = it.V
	}
	sort.Float64s(out)
	return out
}

// Quantile returns the empirical p-quantile of the retained sample,
// using the same interpolation as stats.Empirical so sketched and exact
// pipelines share quantile semantics. It returns 0 on an empty sketch.
func (s *Sketch) Quantile(p float64) float64 {
	if len(s.items) == 0 {
		return 0
	}
	return NewEmpirical(s.Values()).Quantile(p)
}

// SketchPriority derives a sampling priority from a two-part identity
// (for the fit pipeline: a pool-key salt and a per-observation tag).
// It is a fixed, platform-independent function — the same identity
// yields the same priority in every process, which is what makes
// sharded sketches merge into the unsharded result bit-for-bit.
func SketchPriority(salt, tag uint64) uint64 {
	// Two SplitMix64 finalizer rounds over the combined identity.
	_, h := splitmix64(salt ^ rotl(tag, 31))
	_, h2 := splitmix64(h ^ tag)
	return h2
}

// sketchDelta is the confidence parameter δ of the documented error
// bound: the DKW guarantee below holds with probability 1 − δ.
const sketchDelta = 1e-4

// SketchErrorBound returns ε(k): with probability at least 1 − 1e-4,
// every quantile of a merged sketch with k retained observations is
// within ε of the exact ECDF of the full stream, by the
// Dvoretzky–Kiefer–Wolfowitz inequality for a uniform subsample:
//
//	ε = sqrt(ln(2/δ) / (2k)),  δ = 1e-4.
//
// The bound is on CDF (probability) error; tests verify it as the
// Kolmogorov–Smirnov distance between the sketch sample and the exact
// sample. Streams with n <= k observations are retained exactly (ε
// effectively 0).
func SketchErrorBound(k int) float64 {
	return math.Sqrt(math.Log(2/sketchDelta) / (2 * float64(k)))
}

// ---- internal max-heap on (Pri, Tag) ----

func (s *Sketch) heapify() {
	for i := len(s.items)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
}

func (s *Sketch) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(s.items[parent], s.items[i]) {
			return
		}
		s.items[parent], s.items[i] = s.items[i], s.items[parent]
		i = parent
	}
}

func (s *Sketch) down(i int) {
	n := len(s.items)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && itemLess(s.items[big], s.items[l]) {
			big = l
		}
		if r < n && itemLess(s.items[big], s.items[r]) {
			big = r
		}
		if big == i {
			return
		}
		s.items[i], s.items[big] = s.items[big], s.items[i]
		i = big
	}
}
