package stats

import (
	"math"
	"testing"
)

func TestHurstVTPoissonIsHalf(t *testing.T) {
	// An exact Poisson variance-time curve has slope -1 -> H = 0.5.
	curve := PoissonVarianceTime(3, VTOptions{})
	h := HurstVT(curve)
	if math.Abs(h-0.5) > 1e-9 {
		t.Fatalf("H = %v, want 0.5", h)
	}
}

func TestHurstVTOnSimulatedProcesses(t *testing.T) {
	const horizon = 50000.0
	// Poisson arrivals: H ~ 0.5.
	times := poissonArrivals(2, horizon, 51)
	obs := VarianceTime(times, horizon, VTOptions{})
	h := HurstVT(obs)
	if math.Abs(h-0.5) > 0.1 {
		t.Fatalf("Poisson H = %v, want ~0.5", h)
	}
	// ON/OFF-modulated arrivals: clearly above 0.5 at these scales.
	r := NewRNG(52)
	var bursty []float64
	t0 := 0.0
	for t0 < horizon {
		on := r.Exp(1.0 / 50)
		end := math.Min(t0+on, horizon)
		tt := t0 + r.Exp(10)
		for tt < end {
			bursty = append(bursty, tt)
			tt += r.Exp(10)
		}
		t0 = end + r.Exp(1.0/500)
	}
	hb := HurstVT(VarianceTime(bursty, horizon, VTOptions{}))
	if hb < 0.65 {
		t.Fatalf("bursty H = %v, want > 0.65", hb)
	}
	if hb <= h {
		t.Fatalf("bursty H (%v) should exceed Poisson H (%v)", hb, h)
	}
}

func TestHurstVTDegenerate(t *testing.T) {
	if !math.IsNaN(HurstVT(nil)) {
		t.Fatal("empty curve should be NaN")
	}
	one := []VTPoint{{ScaleSec: 1, NormVar: 0.5}}
	if !math.IsNaN(HurstVT(one)) {
		t.Fatal("single point should be NaN")
	}
	withNaN := []VTPoint{{1, math.NaN()}, {10, 0.1}, {100, 0.01}}
	if h := HurstVT(withNaN); math.IsNaN(h) {
		t.Fatal("NaN points should be skipped, not fatal")
	}
}

func TestHurstRSWhiteNoiseNearHalf(t *testing.T) {
	r := NewRNG(53)
	series := make([]float64, 8192)
	for i := range series {
		series[i] = r.Norm()
	}
	h := HurstRS(series)
	// R/S is biased upward on short series; accept a generous band
	// around 0.5.
	if h < 0.4 || h > 0.68 {
		t.Fatalf("white-noise H = %v, want ~0.5", h)
	}
}

func TestHurstRSTrendingSeriesHigh(t *testing.T) {
	// A random walk (integrated noise) is strongly persistent: H -> 1.
	r := NewRNG(54)
	series := make([]float64, 8192)
	acc := 0.0
	for i := range series {
		acc += r.Norm()
		series[i] = acc
	}
	h := HurstRS(series)
	if h < 0.85 {
		t.Fatalf("random-walk H = %v, want ~1", h)
	}
}

func TestHurstRSDegenerate(t *testing.T) {
	if !math.IsNaN(HurstRS(nil)) {
		t.Fatal("empty series should be NaN")
	}
	if !math.IsNaN(HurstRS(make([]float64, 10))) {
		t.Fatal("short series should be NaN")
	}
	if !math.IsNaN(HurstRS(make([]float64, 100))) {
		t.Fatal("constant series should be NaN (zero variance)")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := linearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	s, i := linearFit([]float64{2, 2}, []float64{5, 7})
	if s != 0 || i != 6 {
		t.Fatalf("degenerate fit = %v, %v", s, i)
	}
}

func TestCountSeries(t *testing.T) {
	got := CountSeries([]float64{0.1, 0.9, 1.5, 9.9, -1, 11}, 10, 1)
	if len(got) != 10 || got[0] != 2 || got[1] != 1 || got[9] != 1 {
		t.Fatalf("series = %v", got)
	}
	if CountSeries(nil, 0, 1) != nil || CountSeries(nil, 10, 0) != nil {
		t.Fatal("degenerate inputs should be nil")
	}
}
