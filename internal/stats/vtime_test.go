package stats

import (
	"math"
	"testing"
)

// poissonArrivals generates event times of a homogeneous Poisson process.
func poissonArrivals(rate, horizon float64, seed uint64) []float64 {
	r := NewRNG(seed)
	var ts []float64
	t := r.Exp(rate)
	for t < horizon {
		ts = append(ts, t)
		t += r.Exp(rate)
	}
	return ts
}

func TestVarianceTimePoissonMatchesAnalytic(t *testing.T) {
	const rate, horizon = 5.0, 20000.0
	times := poissonArrivals(rate, horizon, 21)
	opts := VTOptions{Scales: []float64{1, 10, 100}}
	obs := VarianceTime(times, horizon, opts)
	ref := PoissonVarianceTime(rate, opts)
	for i := range obs {
		if math.IsNaN(obs[i].NormVar) {
			t.Fatalf("NaN at scale %v", obs[i].ScaleSec)
		}
		logGap := math.Abs(math.Log10(obs[i].NormVar) - math.Log10(ref[i].NormVar))
		if logGap > 0.15 {
			t.Fatalf("scale %v: obs %v vs ref %v (log gap %v)",
				obs[i].ScaleSec, obs[i].NormVar, ref[i].NormVar, logGap)
		}
	}
}

func TestVarianceTimeBurstyExceedsPoisson(t *testing.T) {
	// An ON/OFF (Markov-modulated) process is burstier than Poisson at
	// scales comparable to the ON/OFF period.
	r := NewRNG(22)
	const horizon = 20000.0
	var times []float64
	t0 := 0.0
	for t0 < horizon {
		// ON for ~30s at rate 20/s, then OFF for ~300s.
		on := r.Exp(1.0 / 30)
		end := math.Min(t0+on, horizon)
		tt := t0 + r.Exp(20)
		for tt < end {
			times = append(times, tt)
			tt += r.Exp(20)
		}
		t0 = end + r.Exp(1.0/300)
	}
	rate := float64(len(times)) / horizon
	opts := VTOptions{Scales: []float64{10, 100}}
	obs := VarianceTime(times, horizon, opts)
	ref := PoissonVarianceTime(rate, opts)
	gap := VTLogGap(obs, ref)
	if math.IsNaN(gap) || gap < 0.5 {
		t.Fatalf("bursty process log gap = %v, want > 0.5", gap)
	}
}

func TestVarianceTimeEdgeCases(t *testing.T) {
	// No horizon -> all NaN.
	pts := VarianceTime(nil, 0, VTOptions{})
	for _, p := range pts {
		if !math.IsNaN(p.NormVar) {
			t.Fatalf("zero horizon produced %v", p)
		}
	}
	// No events -> zero means -> NaN.
	pts = VarianceTime(nil, 100, VTOptions{Scales: []float64{1}})
	if !math.IsNaN(pts[0].NormVar) {
		t.Fatal("empty process should be NaN")
	}
	// Scale too large for horizon -> NaN.
	pts = VarianceTime([]float64{1, 2}, 10, VTOptions{Scales: []float64{10}})
	if !math.IsNaN(pts[0].NormVar) {
		t.Fatal("single-window scale should be NaN")
	}
	// Events outside horizon are ignored.
	a := VarianceTime([]float64{1, 2, 3}, 10, VTOptions{Scales: []float64{1}})
	b := VarianceTime([]float64{1, 2, 3, -5, 11}, 10, VTOptions{Scales: []float64{1}})
	if a[0].NormVar != b[0].NormVar {
		t.Fatal("out-of-horizon events affected the curve")
	}
}

func TestPoissonVarianceTimeShape(t *testing.T) {
	pts := PoissonVarianceTime(2, VTOptions{Scales: []float64{1, 10, 100}})
	// Slope -1 in log-log: each 10x scale divides NormVar by 10.
	r1 := pts[0].NormVar / pts[1].NormVar
	r2 := pts[1].NormVar / pts[2].NormVar
	if math.Abs(r1-10) > 1e-9 || math.Abs(r2-10) > 1e-9 {
		t.Fatalf("ratios %v %v, want 10", r1, r2)
	}
	zero := PoissonVarianceTime(0, VTOptions{Scales: []float64{1}})
	if !math.IsNaN(zero[0].NormVar) {
		t.Fatal("rate 0 should be NaN")
	}
}

func TestVTLogGap(t *testing.T) {
	obs := []VTPoint{{1, 10}, {10, 1}}
	ref := []VTPoint{{1, 1}, {10, 0.1}}
	if g := VTLogGap(obs, ref); math.Abs(g-1) > 1e-12 {
		t.Fatalf("gap = %v, want 1", g)
	}
	if !math.IsNaN(VTLogGap(nil, nil)) {
		t.Fatal("empty gap should be NaN")
	}
	withNaN := []VTPoint{{1, math.NaN()}, {10, 1}}
	if g := VTLogGap(withNaN, ref); math.Abs(g-1) > 1e-12 {
		t.Fatalf("NaN handling wrong: %v", g)
	}
}
