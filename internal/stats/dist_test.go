package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// checkDistInvariants verifies CDF monotonicity, range, and that Quantile
// inverts CDF on a probability grid.
func checkDistInvariants(t *testing.T, d Dist, probe []float64) {
	t.Helper()
	prev := -1.0
	for _, x := range probe {
		f := d.CDF(x)
		if f < 0 || f > 1 {
			t.Fatalf("%s: CDF(%v) = %v out of [0,1]", d, x, f)
		}
		if f < prev-1e-12 {
			t.Fatalf("%s: CDF not monotone at %v", d, x)
		}
		prev = f
	}
	for p := 0.01; p < 1; p += 0.07 {
		x := d.Quantile(p)
		f := d.CDF(x)
		if math.Abs(f-p) > 1e-6 {
			t.Fatalf("%s: CDF(Quantile(%v)) = %v", d, p, f)
		}
	}
}

func TestExponentialBasics(t *testing.T) {
	e := Exponential{Lambda: 2}
	checkDistInvariants(t, e, []float64{-1, 0, 0.1, 0.5, 1, 5, 100})
	if m := e.Mean(); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if e.CDF(-5) != 0 {
		t.Fatal("CDF of negative must be 0")
	}
	if e.Quantile(0) != 0 || !math.IsInf(e.Quantile(1), 1) {
		t.Fatal("Quantile edge cases wrong")
	}
	// Median = ln2 / lambda.
	if q := e.Quantile(0.5); math.Abs(q-math.Ln2/2) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
}

func TestParetoBasics(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 3}
	checkDistInvariants(t, p, []float64{0, 1, 2, 2.5, 4, 100})
	if p.CDF(1.999) != 0 {
		t.Fatal("CDF below xm must be 0")
	}
	if m := p.Mean(); math.Abs(m-3) > 1e-12 {
		t.Fatalf("Mean = %v, want 3", m)
	}
	if !math.IsInf((Pareto{Xm: 1, Alpha: 0.9}).Mean(), 1) {
		t.Fatal("heavy Pareto mean should be +Inf")
	}
	if q := p.Quantile(0); q != 2 {
		t.Fatalf("Quantile(0) = %v, want xm", q)
	}
}

func TestWeibullBasics(t *testing.T) {
	w := Weibull{K: 1.5, Lambda: 3}
	checkDistInvariants(t, w, []float64{-1, 0, 0.5, 1, 3, 10, 50})
	// k=1 degenerates to exponential with rate 1/lambda.
	w1 := Weibull{K: 1, Lambda: 2}
	e := Exponential{Lambda: 0.5}
	for _, x := range []float64{0.1, 1, 3, 7} {
		if math.Abs(w1.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Fatalf("Weibull(k=1) != Exponential at %v", x)
		}
	}
	if m := w1.Mean(); math.Abs(m-2) > 1e-9 {
		t.Fatalf("Weibull(1,2) mean = %v, want 2", m)
	}
}

func TestLognormalBasics(t *testing.T) {
	l := Lognormal{Mu: 0, Sigma: 1}
	checkDistInvariants(t, l, []float64{-1, 0, 0.1, 0.5, 1, 2, 10, 100})
	// Median = exp(mu).
	if q := l.Quantile(0.5); math.Abs(q-1) > 1e-6 {
		t.Fatalf("median = %v, want 1", q)
	}
	if m := l.Mean(); math.Abs(m-math.Exp(0.5)) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	if l.CDF(0) != 0 || l.CDF(-1) != 0 {
		t.Fatal("CDF of non-positive must be 0")
	}
}

func TestNormQuantileAccuracy(t *testing.T) {
	// Check against known values.
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9772498680518208, 2},
		{0.158655253931457, -1},
		{0.999, 3.090232306167813},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.z) > 1e-7 {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile edges wrong")
	}
}

func TestNormQuantileInvertsNormCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.013 {
		z := NormQuantile(p)
		if got := normCDF(z); math.Abs(got-p) > 1e-8 {
			t.Fatalf("normCDF(NormQuantile(%v)) = %v", p, got)
		}
	}
}

func TestEmpiricalBasics(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 2, 5})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	if e.CDF(0) != 0 || e.CDF(1) != 0.2 || e.CDF(2) != 0.6 || e.CDF(5) != 1 || e.CDF(9) != 1 {
		t.Fatalf("CDF values wrong: %v %v %v %v",
			e.CDF(1), e.CDF(2), e.CDF(5), e.CDF(9))
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 {
		t.Fatal("Quantile edges wrong")
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Fatalf("median = %v, want 2", q)
	}
	if m := e.Mean(); math.Abs(m-2.6) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEmpirical(nil) did not panic")
		}
	}()
	NewEmpirical(nil)
}

func TestEmpiricalQuantileMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		e := NewEmpirical(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.05 {
			q := e.Quantile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	// Sampling via inverse transform should pass a K-S test against the
	// source distribution.
	r := NewRNG(99)
	d := Weibull{K: 0.7, Lambda: 5}
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = Sample(d, r)
	}
	res := KSTest(xs, d)
	if res.Reject(0.01) {
		t.Fatalf("samples from Weibull rejected against itself: D=%v p=%v", res.D, res.P)
	}
}

func TestDistStrings(t *testing.T) {
	for _, d := range []Dist{
		Exponential{1}, Pareto{1, 2}, Weibull{1, 2}, Lognormal{0, 1},
		NewEmpirical([]float64{1, 2}),
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}
