package stats

import "sort"

// KaplanMeier estimates the marginal distribution of an event time from
// right-censored observations: fired holds the observed (uncensored)
// event times, censored the times at which observation stopped without
// the event. It returns the conditional-given-finite quantile table, the
// residual tail mass (the KM survival beyond the last observed event —
// the probability the event never fires within observable horizons), and
// ok=false when there are no uncensored observations at all.
//
// The library uses it for the sub-machine (bottom-level) sojourns of the
// two-level model: every top-level state change right-censors the
// pending sub-machine delay, so fitting on uncensored delays alone would
// bias them short and over-generate HO/TAU when raced against the top
// level.
func KaplanMeier(fired, censored []float64) (q *QuantileTable, tail float64, ok bool) {
	if len(fired) == 0 {
		return nil, 1, false
	}
	type obs struct {
		t     float64
		event bool
	}
	all := make([]obs, 0, len(fired)+len(censored))
	for _, t := range fired {
		all = append(all, obs{t, true})
	}
	for _, t := range censored {
		all = append(all, obs{t, false})
	}
	// Sort by time; at ties, events before censorings (the standard
	// convention: a unit censored at t was still at risk at t).
	sort.Slice(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t < all[j].t
		}
		return all[i].event && !all[j].event
	})

	n := len(all)
	type step struct {
		t float64
		F float64 // cumulative incidence 1 - S(t)
	}
	var steps []step
	S := 1.0
	i := 0
	for i < n {
		t := all[i].t
		d := 0 // events at t
		j := i
		for j < n && all[j].t == t {
			if all[j].event {
				d++
			}
			j++
		}
		atRisk := n - i
		if d > 0 {
			S *= 1 - float64(d)/float64(atRisk)
			steps = append(steps, step{t: t, F: 1 - S})
		}
		i = j
	}
	tail = S
	fMax := 1 - S
	if fMax <= 0 {
		return nil, 1, false
	}
	// Build the conditional-given-finite quantile table by inverting
	// F(t)/fMax over an even probability grid.
	// Always use the full grid: unlike a plain sample table, KM steps
	// carry unequal probability masses, and a coarse grid would misplace
	// them.
	points := DefaultQuantilePoints
	qv := make([]float64, points)
	si := 0
	for k := 0; k < points; k++ {
		p := float64(k) / float64(points-1) * fMax
		for si < len(steps)-1 && steps[si].F < p {
			si++
		}
		qv[k] = steps[si].t
	}
	// Guarantee exact lower/upper endpoints.
	qv[0] = steps[0].t
	qv[points-1] = steps[len(steps)-1].t
	return &QuantileTable{Q: qv}, tail, true
}

// CensoredExpMLE returns the maximum-likelihood exponential rate for
// right-censored data: lambda = (#events) / (total observed time at
// risk). ok is false when the estimate is degenerate.
func CensoredExpMLE(fired, censored []float64) (lambda float64, ok bool) {
	if len(fired) == 0 {
		return 0, false
	}
	var total float64
	for _, t := range fired {
		if t < 0 {
			return 0, false
		}
		total += t
	}
	for _, t := range censored {
		if t < 0 {
			return 0, false
		}
		total += t
	}
	if total <= 0 {
		return 0, false
	}
	return float64(len(fired)) / total, true
}
