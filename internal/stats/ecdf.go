package stats

import (
	"fmt"
	"sort"
)

// MaxYDistance returns the maximum vertical distance between the empirical
// CDFs of two samples — the paper's microscopic fidelity metric ("maximum
// y-distance", §8.1.2). It equals the two-sample K–S statistic.
func MaxYDistance(xs, ys []float64) float64 { return KSTest2(xs, ys).D }

// MaxYDistanceToDist returns the maximum vertical distance between the
// empirical CDF of xs and the CDF of a reference distribution (the
// one-sample K–S statistic without the p-value machinery).
func MaxYDistanceToDist(xs []float64, d Dist) float64 { return KSTest(xs, d).D }

// QuantileTable is a compressed empirical distribution: the quantile
// function tabulated on an even probability grid, with exact minimum and
// maximum. Fitted sojourn-time CDFs are stored in this form so a model for
// hundreds of thousands of UEs does not retain raw sample slices, while
// inverse-transform sampling stays O(1).
type QuantileTable struct {
	// Q holds Quantile(i/(len(Q)-1)) for i = 0..len(Q)-1. len(Q) >= 2.
	Q []float64
}

// DefaultQuantilePoints is the grid resolution used by NewQuantileTable.
// 201 points keep the K–S distance between the table and the raw sample
// below 0.005.
const DefaultQuantilePoints = 201

// NewQuantileTable compresses a sample into a quantile table with the
// default resolution. It panics on an empty sample.
func NewQuantileTable(xs []float64) *QuantileTable {
	return NewQuantileTableN(xs, DefaultQuantilePoints)
}

// NewQuantileTableN compresses a sample into a table with n grid points
// (n >= 2). It panics on an empty sample or n < 2.
func NewQuantileTableN(xs []float64, n int) *QuantileTable {
	if n < 2 {
		panic("stats: quantile table needs at least 2 points")
	}
	e := NewEmpirical(xs)
	q := make([]float64, n)
	for i := range q {
		q[i] = e.Quantile(float64(i) / float64(n-1))
	}
	return &QuantileTable{Q: q}
}

// Valid reports whether the table is structurally sound: at least two
// points, non-decreasing.
func (t *QuantileTable) Valid() bool {
	if t == nil || len(t.Q) < 2 {
		return false
	}
	for i := 1; i < len(t.Q); i++ {
		if t.Q[i] < t.Q[i-1] {
			return false
		}
	}
	return true
}

// Quantile interpolates the tabulated quantile function at p.
func (t *QuantileTable) Quantile(p float64) float64 { return QuantileAt(t.Q, p) }

// QuantileAt interpolates a tabulated quantile function (the Q grid of a
// QuantileTable) at p. It is the allocation-free core of Quantile, split
// out so sampling hot loops can draw from a bare grid without
// constructing a table value; the arithmetic is bit-identical.
func QuantileAt(q []float64, p float64) float64 {
	n := len(q)
	switch {
	case p <= 0:
		return q[0]
	case p >= 1:
		return q[n-1]
	}
	h := p * float64(n-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= n {
		return q[n-1]
	}
	return q[i] + frac*(q[i+1]-q[i])
}

// CDF inverts the tabulated quantile function by binary search with linear
// interpolation inside grid cells. Flat regions (repeated values) resolve
// to the upper end, matching right-continuous empirical CDFs.
func (t *QuantileTable) CDF(x float64) float64 {
	n := len(t.Q)
	if x < t.Q[0] {
		return 0
	}
	if x >= t.Q[n-1] {
		return 1
	}
	// Find the last index i with Q[i] <= x.
	i := sort.Search(n, func(j int) bool { return t.Q[j] > x }) - 1
	// Skip forward over a flat run to its end.
	j := i
	for j+1 < n && t.Q[j+1] == t.Q[i] {
		j++
	}
	if t.Q[j] == x || j+1 >= n {
		return float64(j) / float64(n-1)
	}
	frac := (x - t.Q[j]) / (t.Q[j+1] - t.Q[j])
	return (float64(j) + frac) / float64(n-1)
}

// Mean returns the mean of the tabulated distribution (trapezoidal
// integral of the quantile function over [0,1]).
func (t *QuantileTable) Mean() float64 {
	n := len(t.Q)
	var s float64
	for i := 0; i < n-1; i++ {
		s += (t.Q[i] + t.Q[i+1]) / 2
	}
	return s / float64(n-1)
}

func (t *QuantileTable) String() string {
	return fmt.Sprintf("QuantileTable(points=%d, min=%.6g, max=%.6g)",
		len(t.Q), t.Q[0], t.Q[len(t.Q)-1])
}
