package stats

import (
	"math"
	"testing"
)

func TestKSTestAcceptsTrueDistribution(t *testing.T) {
	truth := Exponential{Lambda: 1.5}
	rejections := 0
	const trials = 40
	for s := uint64(0); s < trials; s++ {
		xs := sampleN(truth, 500, 100+s)
		if KSTest(xs, truth).Reject(0.05) {
			rejections++
		}
	}
	// Expect ~5% rejections; allow a generous margin.
	if rejections > 8 {
		t.Fatalf("K-S rejected the true distribution %d/%d times", rejections, trials)
	}
}

func TestKSTestRejectsWrongDistribution(t *testing.T) {
	// Lognormal samples vs a fitted exponential: must reject nearly always.
	truth := Lognormal{Mu: 0, Sigma: 1.5}
	rejections := 0
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		xs := sampleN(truth, 500, 200+s)
		fit, err := FitExponential(xs)
		if err != nil {
			t.Fatal(err)
		}
		if KSTest(xs, fit).Reject(0.05) {
			rejections++
		}
	}
	if rejections < trials-1 {
		t.Fatalf("K-S failed to reject lognormal-vs-exponential: %d/%d", rejections, trials)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// Uniform sample {0.1,...,0.9} against U(0,1)-as-CDF: use Empirical of
	// a dense uniform grid as reference via a custom Dist.
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	d := uniform01{}
	res := KSTest(xs, d)
	// D+ = max(i/n - x_i) at i=9: 1.0-0.9 = 0.1... compute: i/n - x = i/9 - i/10
	// max at i=9: 1 - 0.9 = 0.1; D- = x_i - (i-1)/n = i/10 - (i-1)/9, max at
	// i=1: 0.1. So D = 0.1.
	if math.Abs(res.D-0.1) > 1e-12 {
		t.Fatalf("D = %v, want 0.1", res.D)
	}
}

type uniform01 struct{}

func (uniform01) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
func (uniform01) Quantile(p float64) float64 { return p }
func (uniform01) Mean() float64              { return 0.5 }
func (uniform01) String() string             { return "U(0,1)" }

func TestKSTestEmpty(t *testing.T) {
	res := KSTest(nil, Exponential{Lambda: 1})
	if res.D != 0 || res.P != 1 {
		t.Fatalf("empty K-S = %+v", res)
	}
}

func TestKSTest2SameDistribution(t *testing.T) {
	truth := Weibull{K: 0.8, Lambda: 4}
	rejections := 0
	const trials = 30
	for s := uint64(0); s < trials; s++ {
		xs := sampleN(truth, 400, 300+s)
		ys := sampleN(truth, 400, 900+s)
		if KSTest2(xs, ys).Reject(0.05) {
			rejections++
		}
	}
	if rejections > 6 {
		t.Fatalf("two-sample K-S rejected identical distributions %d/%d", rejections, trials)
	}
}

func TestKSTest2DifferentDistributions(t *testing.T) {
	xs := sampleN(Exponential{Lambda: 1}, 800, 1)
	ys := sampleN(Exponential{Lambda: 3}, 800, 2)
	if !KSTest2(xs, ys).Reject(0.01) {
		t.Fatal("two-sample K-S failed to distinguish rate 1 from rate 3")
	}
}

func TestKSTest2KnownStatistic(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 11, 12, 13}
	res := KSTest2(xs, ys)
	if res.D != 1 {
		t.Fatalf("disjoint samples D = %v, want 1", res.D)
	}
	if res2 := KSTest2(nil, ys); res2.D != 0 || res2.P != 1 {
		t.Fatalf("empty two-sample = %+v", res2)
	}
}

func TestKSTest2TiesHandled(t *testing.T) {
	xs := []float64{1, 1, 1, 2}
	ys := []float64{1, 1, 2, 2}
	res := KSTest2(xs, ys)
	// ECDF_x(1)=0.75, ECDF_y(1)=0.5 -> D = 0.25.
	if math.Abs(res.D-0.25) > 1e-12 {
		t.Fatalf("D = %v, want 0.25", res.D)
	}
}

func TestKSTest2AsymmetricTies(t *testing.T) {
	// Tie runs of unequal length across samples: both ECDFs are the
	// point mass at 5, so D must be exactly 0 (a mid-run comparison
	// would report 0.25).
	if res := KSTest2([]float64{5, 5}, []float64{5, 5, 5, 5}); res.D != 0 {
		t.Fatalf("constant samples D = %v, want 0", res.D)
	}
	// Shared atom at 1 with different masses plus disjoint tails:
	// ECDF_x(1)=2/3 vs ECDF_y(1)=1/4 -> D = 5/12 at x=1.
	xs := []float64{1, 1, 9}
	ys := []float64{1, 2, 3, 4}
	if res := KSTest2(xs, ys); math.Abs(res.D-5.0/12) > 1e-12 {
		t.Fatalf("D = %v, want %v", res.D, 5.0/12)
	}
}

func TestKolmogorovQ(t *testing.T) {
	// Known values of the Kolmogorov survival function.
	cases := []struct{ lambda, q float64 }{
		{0.5, 0.9639452436648751},
		{1.0, 0.26999967168735793},
		{1.36, 0.04948587675537788}, // ~5% critical point
		{2.0, 0.0006709252558037},
	}
	for _, c := range cases {
		if got := kolmogorovQ(c.lambda); math.Abs(got-c.q) > 1e-6 {
			t.Errorf("Q(%v) = %v, want %v", c.lambda, got, c.q)
		}
	}
	if kolmogorovQ(0) != 1 {
		t.Error("Q(0) must be 1")
	}
	if q := kolmogorovQ(50); q != 0 {
		t.Errorf("Q(50) = %v, want 0", q)
	}
}

func TestADTestAcceptsExponential(t *testing.T) {
	rejections := 0
	const trials = 40
	for s := uint64(0); s < trials; s++ {
		xs := sampleN(Exponential{Lambda: 2}, 300, 400+s)
		res, err := ADTestExponential(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.05) {
			rejections++
		}
	}
	if rejections > 8 {
		t.Fatalf("A-D rejected exponential data %d/%d times", rejections, trials)
	}
}

func TestADTestRejectsHeavyTails(t *testing.T) {
	rejections := 0
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		xs := sampleN(Lognormal{Mu: 0, Sigma: 1.5}, 300, 500+s)
		res, err := ADTestExponential(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.05) {
			rejections++
		}
	}
	if rejections < trials-1 {
		t.Fatalf("A-D failed to reject lognormal data: %d/%d", rejections, trials)
	}
}

func TestADTestErrors(t *testing.T) {
	if _, err := ADTestExponential([]float64{1}); err == nil {
		t.Fatal("short sample accepted")
	}
	if _, err := ADTestExponential([]float64{0, 0}); err == nil {
		t.Fatal("degenerate sample accepted")
	}
}

func TestADRejectUsesClosestLevel(t *testing.T) {
	r := ADResult{A2Star: 1.5}
	if !r.Reject(0.05) { // critical 1.341
		t.Fatal("1.5 should reject at 5%")
	}
	if r.Reject(0.01) { // critical 1.957
		t.Fatal("1.5 should not reject at 1%")
	}
	r2 := ADResult{A2Star: 1.0}
	if r2.Reject(0.05) {
		t.Fatal("1.0 should not reject at 5%")
	}
}
