// Package stats implements the statistical machinery the paper relies on,
// from scratch on the standard library: continuous probability
// distributions with maximum-likelihood fitters, the Kolmogorov–Smirnov
// and Anderson–Darling goodness-of-fit tests, empirical CDFs with
// max-y-distance comparison, variance–time (burstiness) analysis, and a
// deterministic splittable random number generator.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256++) with SplitMix64 seeding. It is splittable: Split derives
// an independent stream, which lets every per-UE generator own its own
// stream so concurrent generation is reproducible and order-independent.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	*r = NewRNGVal(seed)
	return r
}

// NewRNGVal is NewRNG without the allocation: it returns the generator by
// value, for callers that embed RNG state in slab-allocated structures.
// The state computation is identical to NewRNG, so the two produce the
// same stream for the same seed.
func NewRNGVal(seed uint64) RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// splitmix64 advances the SplitMix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Split derives a new, statistically independent generator keyed by n.
// Calling Split with distinct keys on the same parent yields distinct
// streams; the parent's own state is not consumed.
func (r *RNG) Split(n uint64) *RNG {
	return NewRNG(r.s[0] ^ rotl(r.s[2], 17) ^ (n * 0xD1342543DE82EF95))
}

// SplitVal is Split by value: the same derived stream with no allocation,
// for per-UE generator state that lives in per-worker slabs.
func (r *RNG) SplitVal(n uint64) RNG {
	return NewRNGVal(r.s[0] ^ rotl(r.s[2], 17) ^ (n * 0xD1342543DE82EF95))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform value in the open interval (0, 1), never
// exactly 0 or 1, which keeps inverse-transform sampling away from
// infinite quantiles.
func (r *RNG) OpenFloat64() float64 {
	for {
		u := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if u > 0 && u < 1 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + (t >> 32)
	return
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	return -math.Log(r.OpenFloat64()) / rate
}

// Norm returns a standard normal value using the polar (Marsaglia) method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Lognormal returns exp(mu + sigma*Z) for standard normal Z.
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// ParetoSample returns a Pareto(xm, alpha) value.
func (r *RNG) ParetoSample(xm, alpha float64) float64 {
	return xm / math.Pow(r.OpenFloat64(), 1/alpha)
}

// Poisson returns a Poisson(lambda)-distributed count. For small lambda it
// uses Knuth's product method; for large lambda, normal approximation with
// continuity correction, which is accurate enough for workload synthesis.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(lambda + math.Sqrt(lambda)*r.Norm() + 0.5)
	if n < 0 {
		return 0
	}
	return n
}

// Shuffle permutes xs uniformly at random (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
