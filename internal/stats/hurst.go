package stats

import "math"

// Self-similarity estimation for point processes. The paper's
// variance-time analysis (§4.2) follows Leland et al. and Garrett &
// Willinger; the Hurst parameter H summarizes the same phenomenon in a
// single number: H = 0.5 for Poisson-like traffic, H -> 1 for strongly
// long-range-dependent (bursty) traffic.

// HurstVT estimates the Hurst parameter from a variance-time curve by
// regressing log10(NormVar) on log10(scale): for an exactly self-similar
// process the slope is beta = 2H - 2, so H = 1 + slope/2. NaN points are
// skipped; fewer than two usable points yield NaN.
func HurstVT(curve []VTPoint) float64 {
	var xs, ys []float64
	for _, p := range curve {
		if math.IsNaN(p.NormVar) || p.NormVar <= 0 || p.ScaleSec <= 0 {
			continue
		}
		xs = append(xs, math.Log10(p.ScaleSec))
		ys = append(ys, math.Log10(p.NormVar))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	slope, _ := linearFit(xs, ys)
	h := 1 + slope/2
	// Clamp to the meaningful range: estimation noise can push slightly
	// past the theoretical bounds.
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h
}

// HurstRS estimates the Hurst parameter of a time series with the
// classical rescaled-range (R/S) method: the series is split into blocks
// of several sizes, each block's rescaled range R/S is computed, and
// log(R/S) is regressed on log(block size). Needs at least 32 points;
// returns NaN otherwise.
func HurstRS(series []float64) float64 {
	n := len(series)
	if n < 32 {
		return math.NaN()
	}
	var xs, ys []float64
	for size := 8; size <= n/4; size *= 2 {
		blocks := n / size
		var sum float64
		count := 0
		for b := 0; b < blocks; b++ {
			rs := rescaledRange(series[b*size : (b+1)*size])
			if !math.IsNaN(rs) && rs > 0 {
				sum += rs
				count++
			}
		}
		if count == 0 {
			continue
		}
		xs = append(xs, math.Log(float64(size)))
		ys = append(ys, math.Log(sum/float64(count)))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	slope, _ := linearFit(xs, ys)
	if slope < 0 {
		slope = 0
	}
	if slope > 1 {
		slope = 1
	}
	return slope
}

// rescaledRange computes R/S of one block.
func rescaledRange(block []float64) float64 {
	mean := Mean(block)
	// Cumulative deviations from the mean.
	var cum, minC, maxC float64
	var sq float64
	for _, x := range block {
		d := x - mean
		cum += d
		if cum < minC {
			minC = cum
		}
		if cum > maxC {
			maxC = cum
		}
		sq += d * d
	}
	s := math.Sqrt(sq / float64(len(block)))
	if s == 0 {
		return math.NaN()
	}
	return (maxC - minC) / s
}

// linearFit returns the least-squares slope and intercept of y on x.
func linearFit(xs, ys []float64) (slope, intercept float64) {
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// CountSeries bins event times (seconds) into fixed windows over
// [0, horizon) — the counting process a Hurst estimate runs on.
func CountSeries(timesSec []float64, horizonSec, binSec float64) []float64 {
	if binSec <= 0 || horizonSec <= 0 {
		return nil
	}
	n := int(horizonSec / binSec)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, t := range timesSec {
		if t < 0 || t >= horizonSec {
			continue
		}
		b := int(t / binSec)
		if b >= n {
			b = n - 1
		}
		out[b]++
	}
	return out
}
