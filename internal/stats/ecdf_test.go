package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxYDistanceIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := MaxYDistance(xs, xs); d != 0 {
		t.Fatalf("identical samples distance = %v", d)
	}
}

func TestMaxYDistanceDisjoint(t *testing.T) {
	if d := MaxYDistance([]float64{1, 2}, []float64{10, 20}); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestMaxYDistanceToDist(t *testing.T) {
	xs := sampleN(Exponential{Lambda: 1}, 2000, 11)
	d1 := MaxYDistanceToDist(xs, Exponential{Lambda: 1})
	d2 := MaxYDistanceToDist(xs, Exponential{Lambda: 5})
	if d1 >= d2 {
		t.Fatalf("true dist (%v) should be closer than wrong dist (%v)", d1, d2)
	}
}

func TestQuantileTableApproximatesSample(t *testing.T) {
	xs := sampleN(Lognormal{Mu: 1, Sigma: 1}, 5000, 12)
	qt := NewQuantileTable(xs)
	if !qt.Valid() {
		t.Fatal("table invalid")
	}
	e := NewEmpirical(xs)
	// Max deviation between table CDF and empirical CDF should be small.
	var maxDiff float64
	for p := 0.0; p <= 1.0; p += 0.001 {
		x := e.Quantile(p)
		diff := math.Abs(qt.CDF(x) - e.CDF(x))
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	if maxDiff > 0.01 {
		t.Fatalf("table-vs-empirical CDF deviation = %v", maxDiff)
	}
	// Exact tails.
	if qt.Quantile(0) != e.Quantile(0) || qt.Quantile(1) != e.Quantile(1) {
		t.Fatal("table does not preserve min/max")
	}
}

func TestQuantileTableRoundTripQuantileCDF(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = r.Float64() * 50
		}
		qt := NewQuantileTableN(xs, 51)
		for p := 0.02; p < 0.99; p += 0.04 {
			x := qt.Quantile(p)
			got := qt.CDF(x)
			if math.Abs(got-p) > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantileTableConstantSample(t *testing.T) {
	qt := NewQuantileTable([]float64{7, 7, 7, 7})
	if qt.Quantile(0.5) != 7 {
		t.Fatalf("Quantile(0.5) = %v", qt.Quantile(0.5))
	}
	if qt.CDF(6.9) != 0 || qt.CDF(7) != 1 || qt.CDF(8) != 1 {
		t.Fatalf("constant CDF wrong: %v %v %v", qt.CDF(6.9), qt.CDF(7), qt.CDF(8))
	}
	if m := qt.Mean(); m != 7 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestQuantileTableMean(t *testing.T) {
	xs := sampleN(Exponential{Lambda: 0.5}, 20000, 13)
	qt := NewQuantileTable(xs)
	if m := qt.Mean(); math.Abs(m-2)/2 > 0.1 {
		t.Fatalf("Mean = %v, want ~2", m)
	}
}

func TestQuantileTableValidity(t *testing.T) {
	var nilTable *QuantileTable
	if nilTable.Valid() {
		t.Fatal("nil table reported valid")
	}
	if (&QuantileTable{Q: []float64{1}}).Valid() {
		t.Fatal("1-point table reported valid")
	}
	if (&QuantileTable{Q: []float64{2, 1}}).Valid() {
		t.Fatal("decreasing table reported valid")
	}
	if !(&QuantileTable{Q: []float64{1, 1, 2}}).Valid() {
		t.Fatal("valid table rejected")
	}
}

func TestNewQuantileTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewQuantileTableN with n<2 did not panic")
		}
	}()
	NewQuantileTableN([]float64{1, 2}, 1)
}

func TestQuantileTableSamplingPreservesDistribution(t *testing.T) {
	// Draw from the table; the draws should be K-S-close to the original.
	src := sampleN(Weibull{K: 0.9, Lambda: 3}, 5000, 14)
	qt := NewQuantileTable(src)
	r := NewRNG(15)
	ys := make([]float64, 5000)
	for i := range ys {
		ys[i] = qt.Quantile(r.OpenFloat64())
	}
	if d := MaxYDistance(src, ys); d > 0.035 {
		t.Fatalf("resampled distance = %v", d)
	}
}
