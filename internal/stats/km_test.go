package stats

import (
	"math"
	"testing"
)

func TestKaplanMeierNoCensoring(t *testing.T) {
	fired := []float64{1, 2, 3, 4, 5}
	q, tail, ok := KaplanMeier(fired, nil)
	if !ok {
		t.Fatal("not ok")
	}
	if tail != 0 {
		t.Fatalf("tail = %v, want 0", tail)
	}
	// Without censoring KM is the empirical distribution.
	if q.Quantile(0) != 1 || q.Quantile(1) != 5 {
		t.Fatalf("endpoints = %v, %v", q.Quantile(0), q.Quantile(1))
	}
	if med := q.Quantile(0.5); med < 2 || med > 4 {
		t.Fatalf("median = %v", med)
	}
}

func TestKaplanMeierAllCensored(t *testing.T) {
	if _, tail, ok := KaplanMeier(nil, []float64{1, 2}); ok || tail != 1 {
		t.Fatal("all-censored should be not-ok with tail 1")
	}
}

func TestKaplanMeierKnownValues(t *testing.T) {
	// Classic worked example: events at 1, 3; censored at 2, 4.
	// n=4 at risk at t=1: S=3/4. At t=3, at risk = {3,4}: S=3/4 * 1/2 = 3/8.
	q, tail, ok := KaplanMeier([]float64{1, 3}, []float64{2, 4})
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(tail-0.375) > 1e-12 {
		t.Fatalf("tail = %v, want 0.375", tail)
	}
	// Conditional CDF: F(1) = 0.25/0.625 = 0.4, F(3) = 1.
	if got := q.CDF(1); math.Abs(got-0.4) > 0.05 {
		t.Fatalf("F(1) = %v, want ~0.4", got)
	}
	if got := q.CDF(3); got != 1 {
		t.Fatalf("F(3) = %v", got)
	}
}

func TestKaplanMeierRecoversMarginalUnderCensoring(t *testing.T) {
	// Event times ~ Exp(1), censor times ~ Exp(0.5) independent. The KM
	// estimate of the event marginal should be close to Exp(1) in spite
	// of heavy censoring.
	r := NewRNG(31)
	var fired, censored []float64
	for i := 0; i < 30000; i++ {
		e := r.Exp(1)
		c := r.Exp(0.5)
		if e <= c {
			fired = append(fired, e)
		} else {
			censored = append(censored, c)
		}
	}
	q, tail, ok := KaplanMeier(fired, censored)
	if !ok {
		t.Fatal("not ok")
	}
	truth := Exponential{Lambda: 1}
	// Compare the conditional-given-finite KM quantiles against the
	// truth conditioned at the same mass: F_cond(t) = F(t)/(1-tail).
	fMax := 1 - tail
	for p := 0.05; p < 0.9; p += 0.1 {
		got := q.Quantile(p)
		want := truth.Quantile(p * fMax)
		if math.Abs(got-want) > 0.12*want+0.03 {
			t.Fatalf("p=%v: KM %v vs truth %v (tail %v)", p, got, want, tail)
		}
	}
	// Naive fitting on uncensored only would give a much smaller median.
	naive := NewEmpirical(fired)
	if naive.Quantile(0.5) >= q.Quantile(0.5) {
		t.Fatal("KM should shift mass right of the naive uncensored fit")
	}
}

func TestKaplanMeierTiesHandled(t *testing.T) {
	// Event and censoring at the same time: censored unit still at risk.
	// n=3 at t=1 (1 event): S = 2/3. Then censored at 1 and 2 -> tail 2/3.
	_, tail, ok := KaplanMeier([]float64{1}, []float64{1, 2})
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(tail-2.0/3) > 1e-12 {
		t.Fatalf("tail = %v, want 2/3", tail)
	}
}

func TestCensoredExpMLE(t *testing.T) {
	// lambda = events / total time.
	l, ok := CensoredExpMLE([]float64{1, 2}, []float64{3})
	if !ok || math.Abs(l-2.0/6) > 1e-12 {
		t.Fatalf("lambda = %v, ok=%v", l, ok)
	}
	if _, ok := CensoredExpMLE(nil, []float64{1}); ok {
		t.Fatal("no events accepted")
	}
	if _, ok := CensoredExpMLE([]float64{0}, nil); ok {
		t.Fatal("zero total time accepted")
	}
	if _, ok := CensoredExpMLE([]float64{-1, 2}, nil); ok {
		t.Fatal("negative time accepted")
	}
}

func TestCensoredExpMLERecoversRate(t *testing.T) {
	r := NewRNG(33)
	var fired, censored []float64
	for i := 0; i < 30000; i++ {
		e := r.Exp(2)
		c := r.Exp(1)
		if e <= c {
			fired = append(fired, e)
		} else {
			censored = append(censored, c)
		}
	}
	l, ok := CensoredExpMLE(fired, censored)
	if !ok || math.Abs(l-2) > 0.05 {
		t.Fatalf("lambda = %v", l)
	}
}
