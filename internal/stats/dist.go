package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous probability distribution over non-negative reals.
// Every model distribution in the library satisfies it; inverse-transform
// sampling via Quantile is how the generators draw sojourn times.
type Dist interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns inf{x : CDF(x) >= p} for p in [0,1].
	Quantile(p float64) float64
	// Mean returns E[X] (may be +Inf, e.g. Pareto with alpha <= 1).
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// Sample draws one value from d using inverse-transform sampling.
func Sample(d Dist, rng *RNG) float64 { return d.Quantile(rng.OpenFloat64()) }

// Exponential is the exponential distribution with rate Lambda — the
// inter-arrival law of a Poisson process, the paper's principal strawman.
type Exponential struct {
	Lambda float64
}

// CDF returns 1 - exp(-lambda*x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Quantile returns -ln(1-p)/lambda.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

// Mean returns 1/lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

func (e Exponential) String() string { return fmt.Sprintf("Exponential(λ=%.6g)", e.Lambda) }

// Pareto is the Pareto Type I distribution with scale Xm (minimum value)
// and shape Alpha.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// CDF returns 1 - (xm/x)^alpha for x >= xm, else 0.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile returns xm / (1-q)^(1/alpha).
func (p Pareto) Quantile(q float64) float64 {
	switch {
	case q <= 0:
		return p.Xm
	case q >= 1:
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%.6g, α=%.6g)", p.Xm, p.Alpha) }

// Weibull is the Weibull distribution with shape K and scale Lambda.
type Weibull struct {
	K      float64
	Lambda float64
}

// CDF returns 1 - exp(-(x/lambda)^k).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

// Quantile returns lambda * (-ln(1-p))^(1/k).
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

// Mean returns lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

func (w Weibull) String() string { return fmt.Sprintf("Weibull(k=%.6g, λ=%.6g)", w.K, w.Lambda) }

// Lognormal is the log-normal distribution: ln X ~ N(Mu, Sigma²).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// CDF returns Phi((ln x - mu)/sigma).
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return normCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns exp(mu + sigma * Phi^-1(p)).
func (l Lognormal) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*NormQuantile(p))
}

// Mean returns exp(mu + sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l Lognormal) String() string { return fmt.Sprintf("Lognormal(μ=%.6g, σ=%.6g)", l.Mu, l.Sigma) }

// normCDF is the standard normal CDF via the complementary error function.
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// NormQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, relative error below 1.15e-9 — ample for sampling and
// fitting).
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Empirical is the empirical distribution of a sample, in the spirit of
// the Tcplib library: CDF steps through the sorted sample; Quantile
// interpolates linearly between order statistics so synthetic draws are
// not restricted to observed values.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from xs (which it copies
// and sorts). It panics on an empty sample.
func NewEmpirical(xs []float64) *Empirical {
	if len(xs) == 0 {
		panic("stats: empirical distribution of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &Empirical{sorted: s}
}

// N returns the sample size.
func (e *Empirical) N() int { return len(e.sorted) }

// Values returns the sorted sample (shared slice; do not modify).
func (e *Empirical) Values() []float64 { return e.sorted }

// CDF returns the fraction of sample values <= x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile interpolates between order statistics using the standard
// (type 7) definition; Quantile(0) and Quantile(1) are the sample min and
// max.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	switch {
	case p <= 0:
		return e.sorted[0]
	case p >= 1:
		return e.sorted[n-1]
	}
	h := p * float64(n-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	var s float64
	for _, x := range e.sorted {
		s += x
	}
	return s / float64(len(e.sorted))
}

func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, min=%.6g, max=%.6g)",
		len(e.sorted), e.sorted[0], e.sorted[len(e.sorted)-1])
}
