package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the same stream")
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 9 {
		t.Fatalf("zero-seeded RNG nearly constant: %d distinct of 10", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	s1again := r.Split(1)
	if s1.Uint64() != s1again.Uint64() {
		t.Fatal("Split not deterministic for same key")
	}
	if s1.Uint64() == s2.Uint64() && s1.Uint64() == s2.Uint64() {
		t.Fatal("Split streams for different keys coincide")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		o := r.OpenFloat64()
		if o <= 0 || o >= 1 {
			t.Fatalf("OpenFloat64 out of range: %v", o)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) biased: count[%d] = %d", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestExpSampleMoments(t *testing.T) {
	r := NewRNG(4)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(2.0)
		if x <= 0 {
			t.Fatalf("Exp returned %v", x)
		}
		sum += x
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", m)
	}
}

func TestNormSampleMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		z := r.Norm()
		sum += z
		sumSq += z * z
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 || math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm moments: mean=%v var=%v", mean, variance)
	}
}

func TestLognormalSampleMedian(t *testing.T) {
	r := NewRNG(6)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Lognormal(1.0, 0.5)
	}
	e := NewEmpirical(xs)
	med := e.Quantile(0.5)
	if math.Abs(med-math.E) > 0.1 {
		t.Fatalf("Lognormal(1,0.5) median = %v, want ~e", med)
	}
}

func TestParetoSampleBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.ParetoSample(2.0, 1.5)
		if x < 2.0 {
			t.Fatalf("Pareto sample %v below xm", x)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(8)
	for _, lambda := range []float64{0.5, 3, 25, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		m := sum / n
		if math.Abs(m-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, m)
		}
	}
	if NewRNG(1).Poisson(0) != 0 || NewRNG(1).Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]int, 20)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, 20)
		for _, v := range xs {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
