package stats

import (
	"math"
	"sort"
)

// KSResult reports the outcome of a Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the K–S statistic: the supremum distance between the empirical
	// CDF of the sample and the reference CDF.
	D float64
	// P is the (asymptotic) p-value: the probability of observing a
	// distance at least D under the null hypothesis.
	P float64
	// N is the effective sample size used for the p-value.
	N int
}

// Reject reports whether the null hypothesis is rejected at significance
// level alpha (the paper uses alpha = 0.05).
func (r KSResult) Reject(alpha float64) bool { return r.P < alpha }

// KSTest performs the one-sample Kolmogorov–Smirnov test of the sample xs
// against the reference distribution d. The p-value uses the asymptotic
// Kolmogorov distribution with the Stephens small-sample correction
// (D * (sqrt(n) + 0.12 + 0.11/sqrt(n))), matching common practice (and
// scipy's asymptotic mode the paper's pipeline would have used).
func KSTest(xs []float64, d Dist) KSResult {
	n := len(xs)
	if n == 0 {
		return KSResult{D: 0, P: 1, N: 0}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var dMax float64
	for i, x := range s {
		f := d.CDF(x)
		dPlus := float64(i+1)/float64(n) - f
		dMinus := f - float64(i)/float64(n)
		if dPlus > dMax {
			dMax = dPlus
		}
		if dMinus > dMax {
			dMax = dMinus
		}
	}
	return KSResult{D: dMax, P: ksPValue(dMax, float64(n)), N: n}
}

// KSTest2 performs the two-sample Kolmogorov–Smirnov test between samples
// xs and ys. It is used for the Tcplib-style comparison where the
// reference is itself an empirical distribution.
func KSTest2(xs, ys []float64) KSResult {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return KSResult{D: 0, P: 1}
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < n && j < m {
		// Advance both pointers past every copy of the smaller value
		// before measuring: the ECDFs only jump at value boundaries, so
		// measuring mid-run of a cross-sample tie would compare
		// half-stepped CDFs (on tied samples of unequal size that
		// reports a spurious distance).
		t := math.Min(a[i], b[j])
		for i < n && a[i] == t {
			i++
		}
		for j < m && b[j] == t {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	return KSResult{D: d, P: ksPValue(d, ne), N: int(ne)}
}

// ksPValue returns Q_KS(d * (sqrt(ne) + 0.12 + 0.11/sqrt(ne))), the
// asymptotic survival function of the Kolmogorov distribution
// (Numerical Recipes form).
func ksPValue(d, ne float64) float64 {
	if ne <= 0 || d <= 0 {
		return 1
	}
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²),
// clamped to [0, 1].
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-10 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) || math.Abs(term) < 1e-300 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// ADResult reports the outcome of an Anderson–Darling test for
// exponentiality.
type ADResult struct {
	// A2 is the Anderson–Darling statistic.
	A2 float64
	// A2Star is the statistic adjusted for estimating the scale from the
	// sample (Stephens 1974): A²(1 + 0.6/n).
	A2Star float64
	// N is the sample size.
	N int
}

// adExpCritical holds (significance level, critical value) pairs for the
// exponential distribution with estimated scale, from Stephens (1974),
// "EDF Statistics for Goodness of Fit", Case where the mean is estimated.
var adExpCritical = []struct {
	Alpha float64
	Value float64
}{
	{0.15, 0.922},
	{0.10, 1.078},
	{0.05, 1.341},
	{0.025, 1.606},
	{0.01, 1.957},
}

// Reject reports whether exponentiality is rejected at the given
// significance level; supported levels are those in Stephens' table
// (0.15, 0.10, 0.05, 0.025, 0.01). Unsupported levels fall back to the
// closest tabulated level.
func (r ADResult) Reject(alpha float64) bool {
	best := adExpCritical[0]
	for _, c := range adExpCritical[1:] {
		if math.Abs(c.Alpha-alpha) < math.Abs(best.Alpha-alpha) {
			best = c
		}
	}
	return r.A2Star > best.Value
}

// ADTestExponential performs the Anderson–Darling goodness-of-fit test of
// xs against the exponential family with rate estimated by MLE from the
// same sample. The A² statistic weights the tails more heavily than K–S,
// which is exactly why the paper runs both.
func ADTestExponential(xs []float64) (ADResult, error) {
	n := len(xs)
	if n < 2 {
		return ADResult{}, ErrTooFewSamples
	}
	fit, err := FitExponential(xs)
	if err != nil {
		return ADResult{}, err
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for i, x := range s {
		f := fit.CDF(x)
		// Clamp away from 0/1 so the logs stay finite for ties at zero.
		f = math.Min(math.Max(f, 1e-15), 1-1e-15)
		fRev := fit.CDF(s[n-1-i])
		fRev = math.Min(math.Max(fRev, 1e-15), 1-1e-15)
		sum += float64(2*i+1) * (math.Log(f) + math.Log(1-fRev))
	}
	a2 := -float64(n) - sum/float64(n)
	return ADResult{A2: a2, A2Star: a2 * (1 + 0.6/float64(n)), N: n}, nil
}
