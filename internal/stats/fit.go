package stats

import (
	"errors"
	"math"
)

// ErrTooFewSamples is returned by the fitters when the sample is too small
// to estimate the distribution's parameters.
var ErrTooFewSamples = errors.New("stats: too few samples to fit")

// ErrDegenerate is returned when a sample admits no valid MLE (e.g. all
// values identical for a Weibull fit, or non-positive values).
var ErrDegenerate = errors.New("stats: degenerate sample")

// FitExponential returns the maximum-likelihood exponential distribution
// for xs: lambda = 1/mean. This is the "fit a Poisson process" step the
// paper applies per (cluster, hour, device type, event/state).
func FitExponential(xs []float64) (Exponential, error) {
	if len(xs) < 2 {
		return Exponential{}, ErrTooFewSamples
	}
	var sum float64
	for _, x := range xs {
		if x < 0 {
			return Exponential{}, ErrDegenerate
		}
		sum += x
	}
	if sum <= 0 {
		return Exponential{}, ErrDegenerate
	}
	return Exponential{Lambda: float64(len(xs)) / sum}, nil
}

// FitPareto returns the maximum-likelihood Pareto distribution for xs:
// xm = min(xs), alpha = n / sum(ln(x/xm)). Zero values are nudged to the
// smallest positive sample value because ln(0) is undefined; if all
// values are equal the sample is degenerate.
func FitPareto(xs []float64) (Pareto, error) {
	if len(xs) < 2 {
		return Pareto{}, ErrTooFewSamples
	}
	minPos := math.Inf(1)
	for _, x := range xs {
		if x < 0 {
			return Pareto{}, ErrDegenerate
		}
		if x > 0 && x < minPos {
			minPos = x
		}
	}
	if math.IsInf(minPos, 1) {
		return Pareto{}, ErrDegenerate
	}
	xm := minPos
	var logSum float64
	n := 0
	for _, x := range xs {
		if x < xm {
			x = xm
		}
		logSum += math.Log(x / xm)
		n++
	}
	if logSum <= 0 {
		return Pareto{}, ErrDegenerate
	}
	return Pareto{Xm: xm, Alpha: float64(n) / logSum}, nil
}

// FitWeibull returns the maximum-likelihood Weibull distribution for xs,
// solving the profile-likelihood equation for the shape k by Newton's
// method with bisection safeguards:
//
//	g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
//
// then lambda = (sum(x^k)/n)^(1/k). Non-positive samples are rejected.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 3 {
		return Weibull{}, ErrTooFewSamples
	}
	n := float64(len(xs))
	var meanLog float64
	allEqual := true
	for i, x := range xs {
		if x <= 0 {
			return Weibull{}, ErrDegenerate
		}
		meanLog += math.Log(x)
		if i > 0 && x != xs[0] {
			allEqual = false
		}
	}
	if allEqual {
		return Weibull{}, ErrDegenerate
	}
	meanLog /= n

	g := func(k float64) float64 {
		var swl, sw float64 // sum x^k ln x, sum x^k
		for _, x := range xs {
			w := math.Pow(x, k)
			sw += w
			swl += w * math.Log(x)
		}
		return swl/sw - 1/k - meanLog
	}

	// Bracket the root. g is increasing in k; g(k)->-inf as k->0+ and
	// g(k) -> max(ln x) - meanLog > 0 as k->inf.
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e6 {
			return Weibull{}, ErrDegenerate
		}
	}
	// Newton with bisection fallback.
	k := math.Max(lo, math.Min(hi, 1.0))
	for iter := 0; iter < 100; iter++ {
		gk := g(k)
		if math.Abs(gk) < 1e-10 {
			break
		}
		if gk > 0 {
			hi = k
		} else {
			lo = k
		}
		// Numerical derivative for the Newton step.
		h := 1e-6 * math.Max(1, k)
		dg := (g(k+h) - gk) / h
		next := k - gk/dg
		if !(next > lo && next < hi) || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-k) < 1e-12*math.Max(1, k) {
			k = next
			break
		}
		k = next
	}
	var sw float64
	for _, x := range xs {
		sw += math.Pow(x, k)
	}
	lambda := math.Pow(sw/n, 1/k)
	if !(k > 0) || !(lambda > 0) || math.IsNaN(k) || math.IsNaN(lambda) {
		return Weibull{}, ErrDegenerate
	}
	return Weibull{K: k, Lambda: lambda}, nil
}

// FitLognormal returns the maximum-likelihood log-normal distribution:
// mu and sigma are the mean and standard deviation of ln(x). Non-positive
// samples are rejected.
func FitLognormal(xs []float64) (Lognormal, error) {
	if len(xs) < 2 {
		return Lognormal{}, ErrTooFewSamples
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Lognormal{}, ErrDegenerate
		}
		logs[i] = math.Log(x)
	}
	mu := Mean(logs)
	sigma := math.Sqrt(PopVariance(logs))
	if sigma <= 0 {
		return Lognormal{}, ErrDegenerate
	}
	return Lognormal{Mu: mu, Sigma: sigma}, nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance (0 if n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// PopVariance returns the population (n) variance (0 for an empty slice).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }
