package stats

import (
	"math"
	"reflect"
	"testing"
)

// sketchFill feeds n values drawn by gen into a fresh sketch, using
// sequential tags and the given salt, and returns the sketch plus the
// exact sample.
func sketchFill(k int, salt uint64, n int, gen func(i int) float64) (*Sketch, []float64) {
	s := NewSketch(k)
	exact := make([]float64, n)
	for i := 0; i < n; i++ {
		v := gen(i)
		exact[i] = v
		s.Add(SketchPriority(salt, uint64(i)), uint64(i), v)
	}
	return s, exact
}

func TestSketchExactBelowK(t *testing.T) {
	rng := NewRNG(7)
	s, exact := sketchFill(64, 1, 40, func(int) float64 { return rng.Float64() })
	if s.N() != 40 || s.Len() != 40 {
		t.Fatalf("N=%d Len=%d, want 40/40", s.N(), s.Len())
	}
	got := s.Values()
	want := append([]float64(nil), exact...)
	NewEmpirical(want) // no-op sanity: constructor sorts a copy
	for i, v := range got {
		found := false
		for _, w := range exact {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("value %v at %d not in input", v, i)
		}
	}
	if len(got) != len(exact) {
		t.Fatalf("retained %d, want %d", len(got), len(exact))
	}
}

// TestSketchMergeOrderIndependent is the core property: sharding a
// stream across sketches and merging in any order/grouping yields
// item-for-item the same sketch as the unsharded feed.
func TestSketchMergeOrderIndependent(t *testing.T) {
	const k, n, shards = 128, 10_000, 4
	rng := NewRNG(42)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.ParetoSample(1, 1.2)
	}
	feed := func(s *Sketch, idx []int) {
		for _, i := range idx {
			s.Add(SketchPriority(99, uint64(i)), uint64(i), vals[i])
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	whole := NewSketch(k)
	feed(whole, all)

	parts := make([]*Sketch, shards)
	for sh := range parts {
		parts[sh] = NewSketch(k)
		var idx []int
		for i := 0; i < n; i++ {
			if int(SketchPriority(7, uint64(i))%shards) == sh {
				idx = append(idx, i)
			}
		}
		feed(parts[sh], idx)
	}

	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	for _, ord := range orders {
		m := NewSketch(k)
		for _, sh := range ord {
			m.Merge(parts[sh])
		}
		if m.N() != whole.N() {
			t.Fatalf("order %v: N=%d, want %d", ord, m.N(), whole.N())
		}
		if !reflect.DeepEqual(m.Items(), whole.Items()) {
			t.Fatalf("order %v: merged items differ from unsharded", ord)
		}
	}

	// Tree merge: (0+1) + (2+3).
	left, right := NewSketch(k), NewSketch(k)
	left.Merge(parts[0])
	left.Merge(parts[1])
	right.Merge(parts[2])
	right.Merge(parts[3])
	left.Merge(right)
	if !reflect.DeepEqual(left.Items(), whole.Items()) {
		t.Fatal("tree merge differs from unsharded")
	}
}

func TestSketchRestoreRoundTrip(t *testing.T) {
	rng := NewRNG(3)
	s, _ := sketchFill(32, 5, 500, func(int) float64 { return rng.Exp(1) })
	r := RestoreSketch(s.K(), s.N(), s.Items())
	if r.N() != s.N() || r.K() != s.K() || !reflect.DeepEqual(r.Items(), s.Items()) {
		t.Fatal("restore round trip changed the sketch")
	}
	// Restored sketches must keep absorbing observations identically.
	s.Add(SketchPriority(5, 1000), 1000, 0.5)
	r.Add(SketchPriority(5, 1000), 1000, 0.5)
	if !reflect.DeepEqual(r.Items(), s.Items()) {
		t.Fatal("restored sketch diverged after Add")
	}
}

func TestSketchMergeKMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different k did not panic")
		}
	}()
	NewSketch(4).Merge(NewSketch(8))
}

// TestSketchErrorBound verifies the documented DKW guarantee on
// adversarial sojourn-like distributions: the K–S distance between the
// retained sample and the exact sample stays within SketchErrorBound(k).
func TestSketchErrorBound(t *testing.T) {
	const k, n = 2048, 200_000
	eps := SketchErrorBound(k)
	if eps > 0.05 || eps < 0.04 {
		t.Fatalf("SketchErrorBound(%d) = %v, want ~0.049", k, eps)
	}
	rng := NewRNG(1234)
	cases := []struct {
		name string
		gen  func(i int) float64
	}{
		{"heavy-tailed", func(int) float64 { return rng.ParetoSample(1, 1.05) }},
		{"constant", func(int) float64 { return 60_000 }},
		{"two-point", func(int) float64 {
			if rng.Float64() < 0.03 {
				return 1e9
			}
			return 1
		}},
		{"lognormal", func(int) float64 { return rng.Lognormal(4, 2.5) }},
	}
	for ci, tc := range cases {
		s, exact := sketchFill(k, uint64(1000+ci), n, tc.gen)
		if s.Len() != k {
			t.Fatalf("%s: retained %d, want %d", tc.name, s.Len(), k)
		}
		d := MaxYDistance(s.Values(), exact)
		if d > eps {
			t.Errorf("%s: K-S distance %v exceeds bound %v", tc.name, d, eps)
		}
		// Spot-check quantiles directly too. At an atom, CDF(Q(p))
		// overshoots p even for the exact quantile, so the correct
		// probability-space statement brackets p between the exact CDF
		// just below and at the sketch quantile, each slack by ε:
		// F(q⁻) − ε ≤ p ≤ F(q) + ε.
		ex := NewEmpirical(exact)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
			q := s.Quantile(p)
			lo := ex.CDF(math.Nextafter(q, math.Inf(-1)))
			hi := ex.CDF(q)
			if p < lo-eps || p > hi+eps {
				t.Errorf("%s: quantile(%v)=%v has exact CDF bracket [%v, %v], outside ±%v",
					tc.name, p, q, lo, hi, eps)
			}
		}
	}
}

// TestSketchMergeBoundError: sharded-and-merged sketches obey the same
// bound (the kept set is identical to unsharded, so this pins the
// merged path explicitly).
func TestSketchMergeBoundError(t *testing.T) {
	const k, n, shards = 1024, 100_000, 8
	rng := NewRNG(77)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Lognormal(2, 1.5)
	}
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch(k)
	}
	for i, v := range vals {
		sh := int(SketchPriority(11, uint64(i)) % shards)
		parts[sh].Add(SketchPriority(2000, uint64(i)), uint64(i), v)
	}
	m := NewSketch(k)
	for _, p := range parts {
		m.Merge(p)
	}
	if m.N() != n {
		t.Fatalf("merged N=%d, want %d", m.N(), n)
	}
	if d, eps := MaxYDistance(m.Values(), vals), SketchErrorBound(k); d > eps {
		t.Fatalf("merged K-S distance %v exceeds bound %v", d, eps)
	}
}

func TestSketchPriorityStable(t *testing.T) {
	// Pin a few priorities: the function is part of the partialfit/1
	// contract (priorities are recomputed on decode, so they must never
	// change across releases).
	got := []uint64{
		SketchPriority(0, 0),
		SketchPriority(1, 0),
		SketchPriority(0, 1),
		SketchPriority(0xDEADBEEF, 0x12345678),
	}
	for i, g := range got {
		for j := 0; j < i; j++ {
			if got[j] == g {
				t.Fatalf("priority collision between pinned cases %d and %d", j, i)
			}
		}
	}
	again := SketchPriority(0xDEADBEEF, 0x12345678)
	if again != got[3] {
		t.Fatal("SketchPriority is not a pure function")
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch(2048)
	for i := 0; i < b.N; i++ {
		s.Add(SketchPriority(1, uint64(i)), uint64(i), float64(i))
	}
}
