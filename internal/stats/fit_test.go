package stats

import (
	"math"
	"testing"
)

func sampleN(d Dist, n int, seed uint64) []float64 {
	r := NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Sample(d, r)
	}
	return xs
}

func TestFitExponentialRecovers(t *testing.T) {
	truth := Exponential{Lambda: 3.5}
	xs := sampleN(truth, 20000, 1)
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-truth.Lambda)/truth.Lambda > 0.03 {
		t.Fatalf("lambda = %v, want ~%v", fit.Lambda, truth.Lambda)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential([]float64{1}); err != ErrTooFewSamples {
		t.Fatalf("want ErrTooFewSamples, got %v", err)
	}
	if _, err := FitExponential([]float64{0, 0}); err != ErrDegenerate {
		t.Fatalf("want ErrDegenerate, got %v", err)
	}
	if _, err := FitExponential([]float64{-1, 2}); err != ErrDegenerate {
		t.Fatalf("negative sample accepted: %v", err)
	}
}

func TestFitParetoRecovers(t *testing.T) {
	truth := Pareto{Xm: 2, Alpha: 2.5}
	xs := sampleN(truth, 20000, 2)
	fit, err := FitPareto(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Xm-2) > 0.01 {
		t.Fatalf("xm = %v, want ~2", fit.Xm)
	}
	if math.Abs(fit.Alpha-2.5)/2.5 > 0.05 {
		t.Fatalf("alpha = %v, want ~2.5", fit.Alpha)
	}
}

func TestFitParetoHandlesZeros(t *testing.T) {
	fit, err := FitPareto([]float64{0, 1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Xm != 1 {
		t.Fatalf("xm = %v, want smallest positive = 1", fit.Xm)
	}
}

func TestFitParetoErrors(t *testing.T) {
	if _, err := FitPareto([]float64{5}); err != ErrTooFewSamples {
		t.Fatal("short sample accepted")
	}
	if _, err := FitPareto([]float64{0, 0, 0}); err != ErrDegenerate {
		t.Fatal("all-zero sample accepted")
	}
	if _, err := FitPareto([]float64{3, 3, 3}); err != ErrDegenerate {
		t.Fatal("constant sample accepted")
	}
	if _, err := FitPareto([]float64{-1, 1}); err != ErrDegenerate {
		t.Fatal("negative sample accepted")
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	for _, truth := range []Weibull{
		{K: 0.6, Lambda: 10},
		{K: 1.0, Lambda: 2},
		{K: 2.3, Lambda: 0.5},
	} {
		xs := sampleN(truth, 20000, 3)
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("%v: %v", truth, err)
		}
		if math.Abs(fit.K-truth.K)/truth.K > 0.05 {
			t.Fatalf("%v: k = %v", truth, fit.K)
		}
		if math.Abs(fit.Lambda-truth.Lambda)/truth.Lambda > 0.05 {
			t.Fatalf("%v: lambda = %v", truth, fit.Lambda)
		}
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{1, 2}); err != ErrTooFewSamples {
		t.Fatal("short sample accepted")
	}
	if _, err := FitWeibull([]float64{1, 0, 2}); err != ErrDegenerate {
		t.Fatal("zero sample accepted")
	}
	if _, err := FitWeibull([]float64{4, 4, 4, 4}); err != ErrDegenerate {
		t.Fatal("constant sample accepted")
	}
}

func TestFitLognormalRecovers(t *testing.T) {
	truth := Lognormal{Mu: 1.2, Sigma: 0.8}
	xs := sampleN(truth, 20000, 4)
	fit, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-1.2) > 0.03 || math.Abs(fit.Sigma-0.8) > 0.03 {
		t.Fatalf("fit = %v", fit)
	}
}

func TestFitLognormalErrors(t *testing.T) {
	if _, err := FitLognormal([]float64{1}); err != ErrTooFewSamples {
		t.Fatal("short sample accepted")
	}
	if _, err := FitLognormal([]float64{1, 0}); err != ErrDegenerate {
		t.Fatal("zero sample accepted")
	}
	if _, err := FitLognormal([]float64{2, 2, 2}); err != ErrDegenerate {
		t.Fatal("constant sample accepted")
	}
}

func TestMomentHelpers(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if v := PopVariance(xs); v != 4 {
		t.Fatalf("PopVariance = %v", v)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || PopVariance(nil) != 0 {
		t.Fatal("empty-slice moments should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}
