package stats

import "math"

// Variance–time analysis (paper §4.2, Fig. 3): the timeline is divided
// into fixed 100 ms bins; for each aggregation scale M seconds, events are
// grouped into M-second windows, the per-window average bin count k_i is
// computed, and the variance of k_i across windows — normalized by the
// squared mean — measures burstiness at that scale. A Poisson process
// yields a straight line of slope -1 in log–log space; long-range
// dependent (bursty) traffic decays more slowly and sits above it.

// VTPoint is one point of a variance–time curve.
type VTPoint struct {
	// ScaleSec is the window length M in seconds.
	ScaleSec float64
	// NormVar is Var(k_i) / Mean(k_i)², the normalized variance of the
	// per-window average bin count. NaN when fewer than two windows fit
	// or the mean is zero.
	NormVar float64
}

// DefaultVTScales are the paper's aggregation scales: 1 s to 10³ s.
var DefaultVTScales = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// VTOptions configures VarianceTime.
type VTOptions struct {
	// BinWidthSec is the base bin width; 0 means the paper's 100 ms.
	BinWidthSec float64
	// Scales are the window lengths in seconds; nil means DefaultVTScales.
	Scales []float64
}

// VarianceTime computes the variance–time curve of a point process whose
// event times (in seconds, within [0, horizonSec)) are given. Events
// outside the horizon are ignored.
func VarianceTime(timesSec []float64, horizonSec float64, opts VTOptions) []VTPoint {
	bw := opts.BinWidthSec
	if bw <= 0 {
		bw = 0.1
	}
	scales := opts.Scales
	if scales == nil {
		scales = DefaultVTScales
	}
	nBins := int(horizonSec / bw)
	if nBins <= 0 {
		out := make([]VTPoint, len(scales))
		for i, m := range scales {
			out[i] = VTPoint{ScaleSec: m, NormVar: math.NaN()}
		}
		return out
	}
	counts := make([]float64, nBins)
	for _, t := range timesSec {
		if t < 0 || t >= horizonSec {
			continue
		}
		b := int(t / bw)
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}

	out := make([]VTPoint, 0, len(scales))
	for _, m := range scales {
		binsPerWin := int(m/bw + 0.5)
		if binsPerWin < 1 {
			binsPerWin = 1
		}
		nWin := nBins / binsPerWin
		if nWin < 2 {
			out = append(out, VTPoint{ScaleSec: m, NormVar: math.NaN()})
			continue
		}
		ks := make([]float64, nWin)
		for w := 0; w < nWin; w++ {
			var s float64
			for b := w * binsPerWin; b < (w+1)*binsPerWin; b++ {
				s += counts[b]
			}
			ks[w] = s / float64(binsPerWin)
		}
		mean := Mean(ks)
		if mean == 0 {
			out = append(out, VTPoint{ScaleSec: m, NormVar: math.NaN()})
			continue
		}
		out = append(out, VTPoint{ScaleSec: m, NormVar: PopVariance(ks) / (mean * mean)})
	}
	return out
}

// PoissonVarianceTime returns the analytic variance–time curve of a
// homogeneous Poisson process with the given event rate (events/second):
// with bin width b and window of m bins, Var(k) = rate*b/m and
// Mean(k) = rate*b, so NormVar = 1/(rate*b*m) — the slope -1 reference
// line of Fig. 3.
func PoissonVarianceTime(rate float64, opts VTOptions) []VTPoint {
	bw := opts.BinWidthSec
	if bw <= 0 {
		bw = 0.1
	}
	scales := opts.Scales
	if scales == nil {
		scales = DefaultVTScales
	}
	out := make([]VTPoint, len(scales))
	for i, m := range scales {
		binsPerWin := math.Max(1, math.Round(m/bw))
		if rate <= 0 {
			out[i] = VTPoint{ScaleSec: m, NormVar: math.NaN()}
			continue
		}
		out[i] = VTPoint{ScaleSec: m, NormVar: 1 / (rate * bw * binsPerWin)}
	}
	return out
}

// VTLogGap returns the mean difference, in log10 space, between the
// observed and reference variance–time curves over scales where both are
// finite — the paper's "difference in the log-scale normalized variance".
// Positive values mean the observation is burstier than the reference.
func VTLogGap(observed, reference []VTPoint) float64 {
	var sum float64
	n := 0
	for i := range observed {
		if i >= len(reference) {
			break
		}
		a, b := observed[i].NormVar, reference[i].NormVar
		if math.IsNaN(a) || math.IsNaN(b) || a <= 0 || b <= 0 {
			continue
		}
		sum += math.Log10(a) - math.Log10(b)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
