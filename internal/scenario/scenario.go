// Package scenario defines the versioned scenario file format of the
// signaling-storm suite: a named, self-contained description of a
// population, its diurnal placement, the 4G/5G split, the core's
// capacities, and a timed fault schedule. One scenario file plus its
// seed fully determines a trace and a storm-propagation report, byte
// for byte, at any worker count.
//
// The on-disk format is JSON with schema tag "scenario/1". Parsing is
// strict — unknown fields and unknown schema versions are rejected —
// and Marshal produces the canonical indented encoding, so a canonical
// file round-trips byte-identically through Parse and Marshal. The
// normative field reference lives in SCENARIOS.md at the repo root.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"cptraffic/internal/cp"
	"cptraffic/internal/mcn"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

// SchemaV1 is the schema tag every scenario/1 file must carry.
const SchemaV1 = "scenario/1"

// Mix is an explicit device composition. Entries are relative weights
// (they are normalized, so 627/249/124 and 0.627/0.249/0.124 are the
// same mix); at least one must be positive.
type Mix struct {
	Phone        float64 `json:"phone"`
	ConnectedCar float64 `json:"connected_car"`
	Tablet       float64 `json:"tablet"`
}

// Population describes who is in the cell: how many UEs and,
// optionally, their device composition. A nil Mix means the paper's
// default 62.7/24.9/12.4% phone/car/tablet split.
type Population struct {
	UEs int  `json:"ues"`
	Mix *Mix `json:"mix,omitempty"`
}

// Capacity is an explicit per-NF service capacity in transactions per
// second. Entries that are 0 (or the whole block, when absent) are
// derived from the healthy offered load with 30% headroom.
type Capacity struct {
	MME  float64 `json:"mme"`
	HSS  float64 `json:"hss"`
	SGW  float64 `json:"sgw"`
	PGW  float64 `json:"pgw"`
	PCRF float64 `json:"pcrf"`
}

// Fault is one fault-schedule entry. Times are minutes relative to the
// scenario start, so a schedule reads naturally next to duration_min
// and survives changes to start_hour.
type Fault struct {
	// Kind is one of "slowdown", "outage", "retry_storm",
	// "mass_reattach" (mcn.FaultKind spellings).
	Kind string `json:"kind"`
	// NF targets "MME", "HSS", "SGW", "PGW", or "PCRF"; required for
	// slowdown, outage, and retry_storm, ignored by mass_reattach.
	NF string `json:"nf,omitempty"`
	// StartMin and DurationMin bound the fault window, in minutes from
	// the scenario start.
	StartMin    float64 `json:"start_min"`
	DurationMin float64 `json:"duration_min"`
	// Factor is the slowdown service-rate divisor or the retry_storm
	// timeout divisor; must be > 1 for those kinds.
	Factor float64 `json:"factor,omitempty"`
	// Fraction is the share of the population that re-attaches in a
	// mass_reattach window; must be in (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
}

// Scenario is a parsed scenario/1 file. The zero value is not valid;
// build scenarios by hand and Validate them, or Load them from disk.
type Scenario struct {
	// Schema must be "scenario/1".
	Schema string `json:"schema"`
	// Name identifies the scenario in reports and CI output.
	Name string `json:"name"`
	// Description is free-form prose for humans.
	Description string `json:"description,omitempty"`
	// Seed makes the scenario reproducible; same file + same seed =>
	// identical trace and report bytes at any worker count.
	Seed uint64 `json:"seed"`
	// StartHour places the window in the diurnal cycle: the simulation
	// warm-starts at this hour of day 0 (0-23).
	StartHour int `json:"start_hour"`
	// DurationMin is the scenario length in minutes.
	DurationMin int `json:"duration_min"`
	// Population describes the UE fleet.
	Population Population `json:"population"`
	// Mobility scales every UE's handover rate; 0 means the calibrated
	// default of 1.0 (a highway is > 1, a seated crowd < 1).
	Mobility float64 `json:"mobility,omitempty"`
	// Activity scales every UE's session-arrival rate; 0 means 1.0.
	Activity float64 `json:"activity,omitempty"`
	// SAShare is the fraction of UEs treated as 5G standalone, whose
	// TAU events are filtered before the storm replay (paper Table 2).
	SAShare float64 `json:"sa_share,omitempty"`
	// TimeoutSec is the client retry timeout; 0 means 1 s.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// MaxRetries caps re-sends per transaction; 0 means 2, negative
	// disables retries.
	MaxRetries int `json:"max_retries,omitempty"`
	// MaxQueue bounds each NF's pending queue; 0 means 10000.
	MaxQueue int `json:"max_queue,omitempty"`
	// ReportBinSec is the report time-series resolution; 0 means 60 s.
	ReportBinSec int `json:"report_bin_sec,omitempty"`
	// Capacity optionally pins per-NF capacities; absent or zero
	// entries are derived with 30% headroom over the healthy load.
	Capacity *Capacity `json:"capacity,omitempty"`
	// Faults is the fault schedule.
	Faults []Fault `json:"faults,omitempty"`
}

// Parse decodes one scenario from r. The schema version is checked
// first (so files from a future scenario/2 fail with a version error,
// not a field error); then the full document is decoded strictly,
// rejecting unknown fields, and validated.
func Parse(r io.Reader) (*Scenario, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if head.Schema != SchemaV1 {
		return nil, fmt.Errorf("scenario: unsupported schema %q (this build reads %q)", head.Schema, SchemaV1)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	s := new(Scenario)
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads and parses the scenario file at path.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal returns the canonical encoding: two-space-indented JSON in
// struct field order with a trailing newline. Canonical files (the
// starter library, anything written by this function) round-trip
// byte-identically through Parse and Marshal.
func (s *Scenario) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Validate checks every field. It is called by Parse; call it directly
// on hand-built scenarios.
func (s *Scenario) Validate() error {
	if s.Schema != SchemaV1 {
		return fmt.Errorf("scenario: unsupported schema %q (this build reads %q)", s.Schema, SchemaV1)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if strings.ContainsAny(s.Name, "\n\r") {
		return fmt.Errorf("scenario: name must be a single line")
	}
	if s.StartHour < 0 || s.StartHour > 23 {
		return fmt.Errorf("scenario: start_hour must be in [0, 23] (got %d)", s.StartHour)
	}
	if s.DurationMin <= 0 {
		return fmt.Errorf("scenario: duration_min must be positive (got %d)", s.DurationMin)
	}
	if s.Population.UEs <= 0 {
		return fmt.Errorf("scenario: population.ues must be positive (got %d)", s.Population.UEs)
	}
	if m := s.Population.Mix; m != nil {
		if m.Phone < 0 || m.ConnectedCar < 0 || m.Tablet < 0 {
			return fmt.Errorf("scenario: population.mix entries must be non-negative")
		}
		if m.Phone+m.ConnectedCar+m.Tablet <= 0 {
			return fmt.Errorf("scenario: population.mix must have a positive entry")
		}
	}
	if s.Mobility < 0 {
		return fmt.Errorf("scenario: mobility must be non-negative (got %g)", s.Mobility)
	}
	if s.Activity < 0 {
		return fmt.Errorf("scenario: activity must be non-negative (got %g)", s.Activity)
	}
	if s.SAShare < 0 || s.SAShare > 1 {
		return fmt.Errorf("scenario: sa_share must be in [0, 1] (got %g)", s.SAShare)
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("scenario: timeout_sec must be non-negative (got %g)", s.TimeoutSec)
	}
	if s.MaxQueue < 0 {
		return fmt.Errorf("scenario: max_queue must be non-negative (got %d)", s.MaxQueue)
	}
	if s.ReportBinSec < 0 {
		return fmt.Errorf("scenario: report_bin_sec must be non-negative (got %d)", s.ReportBinSec)
	}
	if c := s.Capacity; c != nil {
		for _, v := range [...]float64{c.MME, c.HSS, c.SGW, c.PGW, c.PCRF} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("scenario: capacity entries must be finite and non-negative")
			}
		}
	}
	faults, err := s.faults()
	if err != nil {
		return err
	}
	return mcn.ValidateSchedule(faults)
}

// Offset is the absolute simulation start time (start_hour into day 0).
func (s *Scenario) Offset() cp.Millis { return cp.Millis(s.StartHour) * cp.Hour }

// Duration is the scenario length.
func (s *Scenario) Duration() cp.Millis { return cp.Millis(s.DurationMin) * cp.Minute }

// WorldOptions maps the scenario onto the world simulator. Workers
// only bounds concurrency — it never changes output bytes.
func (s *Scenario) WorldOptions(workers int) world.Options {
	opt := world.Options{
		NumUEs:        s.Population.UEs,
		Duration:      s.Duration(),
		Offset:        s.Offset(),
		Seed:          s.Seed,
		MobilityScale: s.Mobility,
		ActivityScale: s.Activity,
		Workers:       workers,
	}
	if m := s.Population.Mix; m != nil {
		// Canonical device order: phone, connected car, tablet.
		opt.Mix = []float64{m.Phone, m.ConnectedCar, m.Tablet}
	}
	return opt
}

// faults maps the schedule onto mcn faults in absolute trace time
// (offset + start_min minutes).
func (s *Scenario) faults() ([]mcn.Fault, error) {
	if len(s.Faults) == 0 {
		return nil, nil
	}
	out := make([]mcn.Fault, 0, len(s.Faults))
	off := s.Offset()
	for i, f := range s.Faults {
		kind, err := mcn.ParseFaultKind(f.Kind)
		if err != nil {
			return nil, fmt.Errorf("scenario: fault %d: %w", i, err)
		}
		mf := mcn.Fault{
			Kind:     kind,
			Start:    off + cp.MillisFromSeconds(60*f.StartMin),
			Duration: cp.MillisFromSeconds(60 * f.DurationMin),
			Factor:   f.Factor,
			Fraction: f.Fraction,
		}
		if kind != mcn.FaultMassReattach {
			nf, err := mcn.ParseNF(f.NF)
			if err != nil {
				return nil, fmt.Errorf("scenario: fault %d: %w", i, err)
			}
			mf.NF = nf
		} else if f.NF != "" {
			return nil, fmt.Errorf("scenario: fault %d: mass_reattach takes no nf", i)
		}
		if f.StartMin < 0 {
			return nil, fmt.Errorf("scenario: fault %d: start_min must be non-negative", i)
		}
		out = append(out, mf)
	}
	return out, nil
}

// StormConfig maps the scenario onto the storm replay engine.
func (s *Scenario) StormConfig() (mcn.StormConfig, error) {
	faults, err := s.faults()
	if err != nil {
		return mcn.StormConfig{}, err
	}
	cfg := mcn.StormConfig{
		TimeoutSec: s.TimeoutSec,
		MaxRetries: s.MaxRetries,
		MaxQueue:   s.MaxQueue,
		Bin:        cp.Millis(s.ReportBinSec) * cp.Second,
		SAShare:    s.SAShare,
		Faults:     faults,
	}
	if c := s.Capacity; c != nil {
		cfg.Capacity[mcn.NFMME] = c.MME
		cfg.Capacity[mcn.NFHSS] = c.HSS
		cfg.Capacity[mcn.NFSGW] = c.SGW
		cfg.Capacity[mcn.NFPGW] = c.PGW
		cfg.Capacity[mcn.NFPCRF] = c.PCRF
	}
	return cfg, nil
}

// Scaled returns a copy of the scenario with the population — and any
// explicit capacities, so fault pressure is preserved — multiplied by
// factor (population floor 1). Fault fractions, scales, and the
// schedule are untouched: a scaled scenario storms the same way,
// smaller. Scaled(1) returns an identical copy.
func (s *Scenario) Scaled(factor float64) *Scenario {
	out := *s
	out.Faults = append([]Fault(nil), s.Faults...)
	if factor == 1 {
		if s.Population.Mix != nil {
			m := *s.Population.Mix
			out.Population.Mix = &m
		}
		if s.Capacity != nil {
			c := *s.Capacity
			out.Capacity = &c
		}
		return &out
	}
	ues := int(math.Round(float64(s.Population.UEs) * factor))
	if ues < 1 {
		ues = 1
	}
	out.Population.UEs = ues
	if s.Population.Mix != nil {
		m := *s.Population.Mix
		out.Population.Mix = &m
	}
	if s.Capacity != nil {
		c := *s.Capacity
		c.MME *= factor
		c.HSS *= factor
		c.SGW *= factor
		c.PGW *= factor
		c.PCRF *= factor
		out.Capacity = &c
	}
	return &out
}

// FilterSA returns a copy of tr without the tracking-area updates of
// the scenario's 5G SA share (SA has no TAU, paper Table 2), using the
// same deterministic membership hash as the storm replay. A zero share
// returns tr unchanged.
func (s *Scenario) FilterSA(tr *trace.Trace) *trace.Trace {
	if s.SAShare <= 0 {
		return tr
	}
	out := trace.New()
	for _, ue := range tr.UEs() {
		if err := out.SetDevice(ue, tr.Device[ue]); err != nil {
			// UEs() is duplicate-free, so registration cannot conflict.
			panic(err)
		}
	}
	for _, e := range tr.Events {
		if e.Type == cp.TrackingAreaUpdate && mcn.SAMember(e.UE, s.SAShare) {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// Simulate generates the scenario's ground-truth trace.
func Simulate(s *Scenario, workers int) (*trace.Trace, error) {
	return world.Generate(s.WorldOptions(workers))
}

// Storm replays tr through the scenario's fault schedule and returns
// the storm-propagation report, stamped with the scenario name.
func Storm(s *Scenario, tr *trace.Trace) (*mcn.StormReport, error) {
	cfg, err := s.StormConfig()
	if err != nil {
		return nil, err
	}
	rep, err := mcn.ReplayStorm(tr, cfg)
	if err != nil {
		return nil, err
	}
	rep.Scenario = s.Name
	return rep, nil
}
