package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// testScenario builds a small fault-bearing scenario covering every
// top-level field.
func testScenario() *Scenario {
	return &Scenario{
		Schema:       SchemaV1,
		Name:         "unit-test",
		Description:  "tiny fault-bearing scenario for tests",
		Seed:         42,
		StartHour:    18,
		DurationMin:  30,
		Population:   Population{UEs: 400, Mix: &Mix{Phone: 0.5, ConnectedCar: 0.3, Tablet: 0.2}},
		Mobility:     1.5,
		Activity:     2,
		SAShare:      0.25,
		TimeoutSec:   0.5,
		MaxRetries:   3,
		MaxQueue:     500,
		ReportBinSec: 30,
		Capacity:     &Capacity{MME: 20, HSS: 5, SGW: 15, PGW: 5, PCRF: 5},
		Faults: []Fault{
			{Kind: "outage", NF: "MME", StartMin: 5, DurationMin: 3},
			{Kind: "slowdown", NF: "SGW", StartMin: 10, DurationMin: 5, Factor: 4},
			{Kind: "retry_storm", NF: "MME", StartMin: 10, DurationMin: 5, Factor: 5},
			{Kind: "mass_reattach", StartMin: 8, DurationMin: 2, Fraction: 0.5},
		},
	}
}

func TestRoundTripByteStable(t *testing.T) {
	s := testScenario()
	b1, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical marshal is not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatal("round trip changed the scenario value")
	}
}

func TestParseRejectsUnknownVersion(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"schema": "scenario/2", "name": "x"}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("want unsupported-schema error, got %v", err)
	}
	// The version check must win over the unknown-field check, so a
	// future file with new fields reports its version, not its fields.
	_, err = Parse(strings.NewReader(`{"schema": "scenario/2", "name": "x", "new_knob": 1}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("want unsupported-schema error, got %v", err)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	s := testScenario()
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(b, []byte(`"name"`), []byte(`"nmae"`), 1)
	if _, err := Parse(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }},
		{"multiline name", func(s *Scenario) { s.Name = "a\nb" }},
		{"bad hour", func(s *Scenario) { s.StartHour = 24 }},
		{"zero duration", func(s *Scenario) { s.DurationMin = 0 }},
		{"zero population", func(s *Scenario) { s.Population.UEs = 0 }},
		{"negative mix", func(s *Scenario) { s.Population.Mix.Phone = -1 }},
		{"empty mix", func(s *Scenario) { *s.Population.Mix = Mix{} }},
		{"negative mobility", func(s *Scenario) { s.Mobility = -1 }},
		{"negative activity", func(s *Scenario) { s.Activity = -0.1 }},
		{"sa share", func(s *Scenario) { s.SAShare = 1.5 }},
		{"negative timeout", func(s *Scenario) { s.TimeoutSec = -1 }},
		{"negative queue", func(s *Scenario) { s.MaxQueue = -1 }},
		{"negative bin", func(s *Scenario) { s.ReportBinSec = -1 }},
		{"negative capacity", func(s *Scenario) { s.Capacity.HSS = -1 }},
		{"bad fault kind", func(s *Scenario) { s.Faults[0].Kind = "meltdown" }},
		{"bad fault nf", func(s *Scenario) { s.Faults[0].NF = "AMF2" }},
		{"reattach with nf", func(s *Scenario) { s.Faults[3].NF = "MME" }},
		{"weak slowdown", func(s *Scenario) { s.Faults[1].Factor = 1 }},
		{"zero fault duration", func(s *Scenario) { s.Faults[2].DurationMin = 0 }},
		{"bad fraction", func(s *Scenario) { s.Faults[3].Fraction = 0 }},
	}
	for _, c := range cases {
		s := testScenario()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := testScenario().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
}

func TestTimeMapping(t *testing.T) {
	s := testScenario()
	if s.Offset() != 18*cp.Hour {
		t.Fatalf("Offset = %d", s.Offset())
	}
	if s.Duration() != 30*cp.Minute {
		t.Fatalf("Duration = %d", s.Duration())
	}
	cfg, err := s.StormConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Faults[0].Start; got != 18*cp.Hour+5*cp.Minute {
		t.Fatalf("fault start = %d, want offset+5min", got)
	}
	if got := cfg.Faults[0].Duration; got != 3*cp.Minute {
		t.Fatalf("fault duration = %d", got)
	}
	if cfg.Capacity[0] != 20 || cfg.Capacity[4] != 5 {
		t.Fatalf("capacity mapping wrong: %v", cfg.Capacity)
	}
	if cfg.Bin != 30*cp.Second || cfg.SAShare != 0.25 {
		t.Fatal("bin or sa_share mapping wrong")
	}
}

func TestScaled(t *testing.T) {
	s := testScenario()
	half := s.Scaled(0.5)
	if half.Population.UEs != 200 {
		t.Fatalf("scaled UEs = %d", half.Population.UEs)
	}
	if half.Capacity.MME != 10 || half.Capacity.PCRF != 2.5 {
		t.Fatalf("scaled capacity = %+v", half.Capacity)
	}
	if half.Faults[3].Fraction != 0.5 || half.Mobility != s.Mobility {
		t.Fatal("Scaled must not touch fractions or scales")
	}
	if s.Population.UEs != 400 || s.Capacity.MME != 20 {
		t.Fatal("Scaled mutated the original")
	}
	if same := s.Scaled(1); !reflect.DeepEqual(s, same) {
		t.Fatal("Scaled(1) is not an identical copy")
	}
	if tiny := s.Scaled(1e-9); tiny.Population.UEs != 1 {
		t.Fatal("population floor missing")
	}
}

// TestScenarioDeterministicAcrossWorkers pins the suite's headline
// guarantee: one fault-bearing scenario file plus its seed produces
// byte-identical traces and storm-propagation reports at any worker
// count.
func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	s := testScenario()
	run := func(workers int) ([]byte, []byte) {
		tr, err := Simulate(s, workers)
		if err != nil {
			t.Fatal(err)
		}
		var tb bytes.Buffer
		if err := trace.WriteBinaryTrace(&tb, tr); err != nil {
			t.Fatal(err)
		}
		rep, err := Storm(s, tr)
		if err != nil {
			t.Fatal(err)
		}
		var rb bytes.Buffer
		if err := rep.WriteJSON(&rb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), rb.Bytes()
	}
	t1, r1 := run(1)
	t8, r8 := run(8)
	if !bytes.Equal(t1, t8) {
		t.Fatal("trace bytes depend on worker count")
	}
	if !bytes.Equal(r1, r8) {
		t.Fatal("storm report bytes depend on worker count")
	}
}

func TestStormStampsScenarioName(t *testing.T) {
	s := testScenario()
	tr, err := Simulate(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Storm(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "unit-test" {
		t.Fatalf("report scenario = %q", rep.Scenario)
	}
	if rep.InjectedAttaches != 200 {
		t.Fatalf("injected attaches = %d, want 200 (half of 400)", rep.InjectedAttaches)
	}
}
