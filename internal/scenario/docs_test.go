package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// collectJSONFields walks a struct type and appends every json field
// name the loader consumes, recursing through pointers, slices, and
// nested structs. Append order follows struct declaration order, so
// the result is deterministic.
func collectJSONFields(t reflect.Type, out []string) []string {
	for t.Kind() == reflect.Pointer || t.Kind() == reflect.Slice {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return out
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("json")
		if tag == "" || tag == "-" {
			continue
		}
		name := tag
		if c := strings.IndexByte(tag, ','); c >= 0 {
			name = tag[:c]
		}
		if name != "" {
			out = append(out, name)
		}
		out = collectJSONFields(f.Type, out)
	}
	return out
}

// TestSpecDocumentsEveryField pins SCENARIOS.md to the loader: every
// json field of the Scenario struct tree must appear (backticked) in
// the normative spec, so the spec cannot silently drift behind the
// code.
func TestSpecDocumentsEveryField(t *testing.T) {
	md, err := os.ReadFile("../../SCENARIOS.md")
	if err != nil {
		t.Fatalf("SCENARIOS.md missing: %v", err)
	}
	spec := string(md)
	fields := collectJSONFields(reflect.TypeOf(Scenario{}), nil)
	if len(fields) < 15 {
		t.Fatalf("field walk found only %d fields — walker broken?", len(fields))
	}
	for _, n := range fields {
		if !strings.Contains(spec, "`"+n+"`") {
			t.Errorf("SCENARIOS.md does not document field `%s`", n)
		}
	}
}
