package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseScenario feeds arbitrary bytes through the scenario JSON
// parser, seeded with the four shipped scenario files so the fuzzer
// starts from real structure instead of discovering the schema from
// scratch. The invariant under test is round-trip stability: any input
// Parse accepts must Marshal to bytes that Parse again and Marshal to
// the identical bytes — otherwise two runs loading "the same" scenario
// could drive different worlds, breaking the determinism contract.
func FuzzParseScenario(f *testing.F) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading seed corpus %s: %v", dir, err)
	}
	seeded := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading seed %s: %v", e.Name(), err)
		}
		f.Add(data)
		seeded++
	}
	if seeded == 0 {
		f.Fatalf("no .json seeds in %s", dir)
	}
	f.Add([]byte(`{"name":"x","start_hour":0,"duration_min":1,"ues":{"smartphone":1}}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not crash
		}
		out1, err := s.Marshal()
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		s2, err := Parse(bytes.NewReader(out1))
		if err != nil {
			t.Fatalf("marshalled scenario does not re-parse: %v\n%s", err, out1)
		}
		out2, err := s2.Marshal()
		if err != nil {
			t.Fatalf("re-parsed scenario does not marshal: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("marshal not stable across a round trip:\nfirst:  %s\nsecond: %s", out1, out2)
		}
	})
}
