package core

import (
	"bytes"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// partialSeed encodes a PartialFit to bytes for the fuzz seed corpus,
// failing the fuzz setup if construction or encoding breaks.
func partialSeed(f *testing.F, build func(pf *PartialFit)) []byte {
	f.Helper()
	pf, err := NewPartialFit(FitOptions{})
	if err != nil {
		f.Fatal(err)
	}
	if build != nil {
		build(pf)
	}
	var buf bytes.Buffer
	if err := pf.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodePartial feeds arbitrary bytes through the partial-fit
// decoder, seeded with encodings of an empty fit and a small populated
// one. The invariant under test is round-trip stability: any input
// DecodePartial accepts must Encode to bytes that decode and re-encode
// identically — the mergeable-checkpoint protocol (DESIGN.md) depends
// on shards resuming from byte-for-byte reproducible snapshots.
func FuzzDecodePartial(f *testing.F) {
	f.Add(partialSeed(f, nil))
	f.Add(partialSeed(f, func(pf *PartialFit) {
		for ue := cp.UEID(1); ue <= 3; ue++ {
			if err := pf.AddDevice(ue, cp.Phone); err != nil {
				f.Fatal(err)
			}
		}
		events := []trace.Event{
			{T: 10, UE: 1, Type: cp.Attach},
			{T: 20, UE: 2, Type: cp.Attach},
			{T: 900, UE: 1, Type: cp.ServiceRequest},
			{T: 2500, UE: 1, Type: cp.S1ConnRelease},
			{T: 4000, UE: 2, Type: cp.TrackingAreaUpdate},
		}
		for _, e := range events {
			if err := pf.AddEvent(e); err != nil {
				f.Fatal(err)
			}
		}
	}))
	f.Add([]byte{})
	f.Add([]byte("cppf"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := DecodePartial(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not crash
		}
		var out1 bytes.Buffer
		if err := pf.Encode(&out1); err != nil {
			t.Fatalf("accepted partial fit does not encode: %v", err)
		}
		pf2, err := DecodePartial(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("encoded partial fit does not re-decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := pf2.Encode(&out2); err != nil {
			t.Fatalf("re-decoded partial fit does not encode: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("encode not stable across a round trip: %d bytes vs %d bytes",
				out1.Len(), out2.Len())
		}
	})
}
