package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
)

// TransitionParam parameterizes one semi-Markov transition: with
// probability P (among the state's outgoing transitions), the state is
// left on Event after a Sojourn-distributed duration.
type TransitionParam struct {
	Event   cp.EventType `json:"event"`
	P       float64      `json:"p"`
	Sojourn SojournModel `json:"sojourn"`
}

// StateParam holds the outgoing transitions of one state. An empty Out
// means the state was never observed to be left in the fitted data; the
// generator falls back to coarser models (hour aggregate, then device
// global) before treating the state as absorbing.
//
// For bottom-level states, PExit is the competing-risks censoring
// probability: the fraction of entries into this sub-state whose
// enclosing top-level visit ended before any sub-machine event fired.
// The generator honors it by leaving the bottom level silent (until the
// next top-level transition re-enters the sub-machine) with probability
// PExit. Fitting sojourns only on uncensored observations while racing
// them against the top level would otherwise inflate HO/TAU volume —
// the uncensored delays are biased short.
type StateParam struct {
	Out   []TransitionParam `json:"out,omitempty"`
	PExit float64           `json:"pExit,omitempty"`
	// Sojourn, when present, is the state-level delay marginal estimated
	// with Kaplan–Meier over both fired and censored observations; the
	// generator prefers it over per-transition sojourns for bottom-level
	// states because it is unbiased under the top-level race.
	Sojourn *SojournModel `json:"sojourn,omitempty"`
}

// FreeProcess is a free-running event process used by the Base and V1
// methods for HO and TAU: occurrences are generated with i.i.d.
// inter-arrival times, independent of the UE state — which is exactly why
// those methods emit handovers while IDLE.
type FreeProcess struct {
	Event cp.EventType `json:"event"`
	Inter SojournModel `json:"inter"`
}

// FirstCat is one category of the first-event model: the first event of
// the hour is of type Event and leaves the UE in machine state State with
// probability P. Carrying the post-event state matters because the same
// event type can land in different states (a TAU is TAU_S_CONN while
// CONNECTED but TAU_S_IDLE while IDLE).
type FirstCat struct {
	Event cp.EventType `json:"event"`
	State sm.State     `json:"state"`
	P     float64      `json:"p"`
}

// FirstEventModel captures, for one (cluster, hour), the distribution of
// the first control event of a UE in that hour: whether the UE is silent
// (PNone), the (event, post-state) category, and the start offset within
// the hour in seconds (§5.4).
type FirstEventModel struct {
	PNone  float64      `json:"pNone"`
	Cats   []FirstCat   `json:"cats,omitempty"`
	Offset SojournModel `json:"offset"`
}

// valid reports whether the first-event model can be sampled.
func (f FirstEventModel) valid() bool {
	return len(f.Cats) > 0 && f.Offset.Valid()
}

// sample draws (silent, category, offsetSeconds).
func (f FirstEventModel) sample(r *stats.RNG) (bool, FirstCat, float64) {
	if !f.valid() || r.Float64() < f.PNone {
		return true, FirstCat{}, 0
	}
	u := r.Float64()
	var acc float64
	cat := f.Cats[len(f.Cats)-1]
	for _, c := range f.Cats {
		acc += c.P
		if u < acc {
			cat = c
			break
		}
	}
	off := f.Offset.Sample(r)
	if off < 0 {
		off = 0
	}
	if off >= 3600 {
		off = 3599.999
	}
	return false, cat, off
}

// ClusterModel is the fitted semi-Markov model for one (device type,
// hour-of-day, UE cluster) combination.
type ClusterModel struct {
	// Top is indexed by cp.UEState: the EMM-ECM level chain driven by
	// Category-1 events.
	Top []StateParam `json:"top,omitempty"`
	// Bottom is indexed by the machine's fine states: the sub-machine
	// chains inside CONNECTED and IDLE, driven by HO, TAU and the
	// TAU-releasing S1_CONN_REL. Empty for flat (EMM-ECM) models.
	Bottom []StateParam `json:"bottom,omitempty"`
	// Free holds the free-running processes of flat models (HO, TAU).
	Free []FreeProcess `json:"free,omitempty"`
	// First is the first-event model for generation start.
	First FirstEventModel `json:"first"`
	// NumUEs records how many training UEs the model was fitted on.
	NumUEs int `json:"numUEs"`
}

// HourModel holds all cluster models of one hour-of-day plus the
// device-wide aggregate fallback.
type HourModel struct {
	Clusters  []ClusterModel `json:"clusters,omitempty"`
	Aggregate *ClusterModel  `json:"aggregate,omitempty"`
	// Weights[i] is the fraction of training UEs in cluster i.
	Weights []float64 `json:"weights,omitempty"`
}

// Persona is a deduplicated cluster-membership vector: the fraction
// Weight of training UEs belonged to Cluster[h] during hour-of-day h.
// Synthetic UEs adopt a persona, which preserves cross-hour activity
// correlation (a chatty UE at 9am is chatty at 10am).
type Persona struct {
	Cluster []int   `json:"cluster"`
	Weight  float64 `json:"weight"`
}

// DeviceModel is the complete model for one device type.
type DeviceModel struct {
	Personas []Persona     `json:"personas"`
	Hours    []HourModel   `json:"hours"` // indexed by hour-of-day (24)
	Global   *ClusterModel `json:"global,omitempty"`
	// Share is the device type's fraction of the training population.
	Share float64 `json:"share"`
	// TrainUEs is the number of training UEs of this type.
	TrainUEs int `json:"trainUEs"`
}

// ModelSet is a fully fitted traffic model: one DeviceModel per device
// type, bound to a protocol state machine.
type ModelSet struct {
	// MachineName names the state machine ("LTE-2LEVEL", "EMM-ECM",
	// "5G-SA").
	MachineName string `json:"machine"`
	// Method is a human-readable label ("ours", "base", "v1", "v2").
	Method string `json:"method"`
	// Devices is indexed by cp.DeviceType; entries may be nil when the
	// training trace had no UEs of that type.
	Devices []*DeviceModel `json:"devices"`

	// compileOnce guards compiled, the lowered form built lazily on the
	// first Generate/Stream/NewSource call and reused afterwards. A
	// ModelSet is treated as immutable once generation has started —
	// in-repo callers already honor this (the 5G adapters clone before
	// mutating) — so the cache never goes stale.
	compileOnce sync.Once
	compiled    *compiledModel
}

// lower returns the model compiled for machine, building it on first
// use. Concurrent callers share one build.
func (ms *ModelSet) lower(machine *sm.Machine) *compiledModel {
	ms.compileOnce.Do(func() { ms.compiled = compile(ms, machine) })
	return ms.compiled
}

// Machine resolves the model's state machine.
func (ms *ModelSet) Machine() (*sm.Machine, error) {
	return machineByName(ms.MachineName)
}

// machineByName resolves a serialized machine name — the shared
// resolution for model JSON and partialfit/1 files.
func machineByName(name string) (*sm.Machine, error) {
	switch name {
	case "LTE-2LEVEL":
		return sm.LTE2Level(), nil
	case "EMM-ECM":
		return sm.EMMECM(), nil
	case "5G-SA":
		return sm.FiveGSA(), nil
	}
	return nil, fmt.Errorf("core: unknown machine %q", name)
}

// Device returns the device model for d, or nil.
func (ms *ModelSet) Device(d cp.DeviceType) *DeviceModel {
	if int(d) >= len(ms.Devices) {
		return nil
	}
	return ms.Devices[d]
}

// NumModels counts the instantiated (cluster, hour, device) models — the
// paper's "20,216 two-level state-machine-based Semi-Markov models".
func (ms *ModelSet) NumModels() int {
	n := 0
	for _, dm := range ms.Devices {
		if dm == nil {
			continue
		}
		for _, hm := range dm.Hours {
			n += len(hm.Clusters)
		}
	}
	return n
}

// clusterAt returns the cluster model for (hour, cluster id), or nil.
func (dm *DeviceModel) clusterAt(hour, cl int) *ClusterModel {
	if hour < 0 || hour >= len(dm.Hours) {
		return nil
	}
	hm := &dm.Hours[hour]
	if cl < 0 || cl >= len(hm.Clusters) {
		return nil
	}
	return &hm.Clusters[cl]
}

// topParams resolves the outgoing transitions of macro state s at (hour,
// cluster) with the fallback chain cluster → hour aggregate → global.
func (dm *DeviceModel) topParams(hour, cl int, s cp.UEState) []TransitionParam {
	if cm := dm.clusterAt(hour, cl); cm != nil && int(s) < len(cm.Top) && len(cm.Top[s].Out) > 0 {
		return cm.Top[s].Out
	}
	if hour >= 0 && hour < len(dm.Hours) {
		if agg := dm.Hours[hour].Aggregate; agg != nil && int(s) < len(agg.Top) && len(agg.Top[s].Out) > 0 {
			return agg.Top[s].Out
		}
	}
	if dm.Global != nil && int(s) < len(dm.Global.Top) {
		return dm.Global.Top[s].Out
	}
	return nil
}

// bottomParams resolves the bottom-level state parameters of fine state s
// with the same fallback chain.
func (dm *DeviceModel) bottomParams(hour, cl int, s sm.State) *StateParam {
	if cm := dm.clusterAt(hour, cl); cm != nil && int(s) < len(cm.Bottom) && len(cm.Bottom[s].Out) > 0 {
		return &cm.Bottom[s]
	}
	if hour >= 0 && hour < len(dm.Hours) {
		if agg := dm.Hours[hour].Aggregate; agg != nil && int(s) < len(agg.Bottom) && len(agg.Bottom[s].Out) > 0 {
			return &agg.Bottom[s]
		}
	}
	if dm.Global != nil && int(s) < len(dm.Global.Bottom) {
		return &dm.Global.Bottom[s]
	}
	return nil
}

// freeParams resolves the free-running processes.
func (dm *DeviceModel) freeParams(hour, cl int) []FreeProcess {
	if cm := dm.clusterAt(hour, cl); cm != nil && len(cm.Free) > 0 {
		return cm.Free
	}
	if hour >= 0 && hour < len(dm.Hours) {
		if agg := dm.Hours[hour].Aggregate; agg != nil && len(agg.Free) > 0 {
			return agg.Free
		}
	}
	if dm.Global != nil {
		return dm.Global.Free
	}
	return nil
}

// firstEvent resolves the first-event model.
func (dm *DeviceModel) firstEvent(hour, cl int) (FirstEventModel, bool) {
	if cm := dm.clusterAt(hour, cl); cm != nil && cm.First.valid() {
		return cm.First, true
	}
	if hour >= 0 && hour < len(dm.Hours) {
		if agg := dm.Hours[hour].Aggregate; agg != nil && agg.First.valid() {
			return agg.First, true
		}
	}
	if dm.Global != nil && dm.Global.First.valid() {
		return dm.Global.First, true
	}
	return FirstEventModel{}, false
}

// pickPersona samples a persona index by weight.
func (dm *DeviceModel) pickPersona(r *stats.RNG) int {
	if len(dm.Personas) == 0 {
		return -1
	}
	u := r.Float64()
	var acc float64
	for i, p := range dm.Personas {
		acc += p.Weight
		if u < acc {
			return i
		}
	}
	return len(dm.Personas) - 1
}

// Validate checks structural invariants of the model set: probabilities
// in [0,1] summing to ~1 per state, valid sojourn models, persona vectors
// covering all hours.
func (ms *ModelSet) Validate() error {
	if _, err := ms.Machine(); err != nil {
		return err
	}
	checkStates := func(where string, sp []StateParam) error {
		for si, s := range sp {
			if len(s.Out) == 0 {
				continue
			}
			var sum float64
			if s.PExit < 0 || s.PExit > 1 {
				return fmt.Errorf("core: %s state %d: PExit %v out of range", where, si, s.PExit)
			}
			if s.Sojourn != nil && !s.Sojourn.Valid() {
				return fmt.Errorf("core: %s state %d: invalid state-level sojourn", where, si)
			}
			for _, tp := range s.Out {
				if tp.P < 0 || tp.P > 1+1e-9 {
					return fmt.Errorf("core: %s state %d: probability %v out of range", where, si, tp.P)
				}
				if !tp.Sojourn.Valid() {
					return fmt.Errorf("core: %s state %d event %v: invalid sojourn", where, si, tp.Event)
				}
				sum += tp.P
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("core: %s state %d: probabilities sum to %v", where, si, sum)
			}
		}
		return nil
	}
	for d, dm := range ms.Devices {
		if dm == nil {
			continue
		}
		var wsum float64
		for _, p := range dm.Personas {
			wsum += p.Weight
			if len(p.Cluster) != len(dm.Hours) {
				return fmt.Errorf("core: device %d persona covers %d hours, model has %d",
					d, len(p.Cluster), len(dm.Hours))
			}
		}
		if len(dm.Personas) > 0 && math.Abs(wsum-1) > 1e-6 {
			return fmt.Errorf("core: device %d persona weights sum to %v", d, wsum)
		}
		for h := range dm.Hours {
			for c := range dm.Hours[h].Clusters {
				cm := &dm.Hours[h].Clusters[c]
				where := fmt.Sprintf("device %d hour %d cluster %d top", d, h, c)
				if err := checkStates(where, cm.Top); err != nil {
					return err
				}
				if err := checkStates(where+"/bottom", cm.Bottom); err != nil {
					return err
				}
				if len(cm.First.Cats) > 0 {
					var sum float64
					for _, cat := range cm.First.Cats {
						if cat.P < 0 || cat.P > 1+1e-9 {
							return fmt.Errorf("core: %s: first-event probability %v out of range", where, cat.P)
						}
						sum += cat.P
					}
					if math.Abs(sum-1) > 1e-6 {
						return fmt.Errorf("core: %s: first-event probabilities sum to %v", where, sum)
					}
				}
			}
		}
	}
	return nil
}

// Save serializes the model set as JSON.
func (ms *ModelSet) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ms)
}

// Load deserializes a model set written by Save and validates it.
func Load(r io.Reader) (*ModelSet, error) {
	var ms ModelSet
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ms); err != nil {
		return nil, fmt.Errorf("core: decoding model set: %w", err)
	}
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	return &ms, nil
}
