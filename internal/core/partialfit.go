package core

import (
	"fmt"
	"math"
	"sort"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// PartialFit is the fit pipeline's state as a first-class value: the
// per-(hour, device, cluster) accumulators, feature state, and sojourn
// sample pools of a fit over some subset of a population, held in a
// form that is
//
//   - mergeable: Merge folds another partial (over a disjoint UE set)
//     in, and Build on the result is byte-identical to one fit over the
//     union — for any shard count, merge order, or merge tree. Every
//     retained sample is tagged with its (UE, per-UE sequence) identity,
//     so the serial fold order is reconstructed at Build time no matter
//     how the samples were scattered across partials;
//   - serializable: Encode/DecodePartial round-trip the full mid-scan
//     state (including each UE's extractor walk) through the strict,
//     versioned partialfit/1 format, so a killed fit resumes from its
//     last checkpoint instead of restarting;
//   - boundable: with FitOptions.SketchK > 0, sample pools are backed
//     by mergeable bottom-k priority sketches (stats.Sketch) instead of
//     exact lists, capping per-pool memory at SketchK samples with the
//     quantile error bound of stats.SketchErrorBound. Sketch priorities
//     are deterministic hashes of the sample identity, so even sketched
//     fits are byte-identical sharded vs unsharded.
//
// Clustering is deferred to Build: the adaptive partition needs every
// UE's features, which only exist once all shards are merged. That is
// why counts are held per-(UE, hour) — Build splits them per cluster
// after assignment — and why the partial's memory is O(UEs + samples),
// with the sample term bounded by the sketch and the UE term bounded by
// sharding.
//
// Fit and FitStream are thin drivers over this type (NewPartialFit →
// AddSource → Build); construct one directly to shard, checkpoint, or
// bound a fit.
type PartialFit struct {
	opt     FitOptions
	freeSet [cp.NumEventTypes]bool

	devOf map[cp.UEID]cp.DeviceType
	devs  [cp.NumDeviceTypes]*devPartial

	exts map[cp.UEID]*ueFitState

	span       cp.Millis
	consumed   int64 // events ingested via AddEvent; -1 once merged (not resumable)
	violations int64
	restored   bool // decoded from a checkpoint: AddSource verifies the registry
	built      bool
}

// ueFitState pairs one UE's extractor walk with its tagging sink.
type ueFitState struct {
	ext  *ueExtractor
	sink *partialSink
}

// devPartial is one device type's share of a partial fit.
type devPartial struct {
	ues []cp.UEID
	// counts holds every integer tally per (UE, kind, hour, key) — see
	// cntKey. Per-UE granularity is what lets Build split exact counts
	// per cluster after the deferred clustering assigns UEs.
	counts map[uint64]int64
	// pools holds the float sample lists per (hour, kind, state, event),
	// each sample tagged (UE, seq); exact lists or bottom-k sketches.
	pools map[poolKey]*pool
	// moments holds per-(UE, hour) streaming moments of CONNECTED/IDLE
	// sojourns — the clustering features of sketched mode, where the
	// exact per-UE sample lists are not recoverable from the pools.
	moments map[momKey]*welford
}

func newDevPartial() *devPartial {
	return &devPartial{
		counts:  make(map[uint64]int64),
		pools:   make(map[poolKey]*pool),
		moments: make(map[momKey]*welford),
	}
}

// ---- count keys ----

// Count kinds. A count record is keyed (UE, kind, hour, a, b); the a/b
// payload depends on the kind.
const (
	cntTop      = uint8(0) // a = cp.UEState, b = event: top transition count
	cntBot      = uint8(1) // a = sm.State, b = event: bottom transition count
	cntFirst    = uint8(2) // a = event, b = post-state: first-event category
	cntWithEv   = uint8(3) // cells of this (UE, hour) with >= 1 event
	cntEvt      = uint8(4) // b = event (SRV_REQ / S1_CONN_REL only): feature count
	numCntKinds = uint8(5)
)

// cntKey packs a count identity: UE in the high 32 bits (so sorting by
// key groups per UE), then kind(3) | hour(5) | a(8) in bits 28..8, b in
// the low byte.
func cntKey(ue cp.UEID, kind uint8, hour int, a, b uint8) uint64 {
	return uint64(ue)<<32 | uint64(kind)<<29 | uint64(hour)<<24 | uint64(a)<<8 | uint64(b)
}

// countRec is one decoded count entry.
type countRec struct {
	ue   cp.UEID
	kind uint8
	hour uint8
	a, b uint8
	n    int64
}

func decodeCntKey(k uint64, n int64) countRec {
	return countRec{
		ue:   cp.UEID(k >> 32),
		kind: uint8(k>>29) & 7,
		hour: uint8(k>>24) & 31,
		a:    uint8(k >> 8),
		b:    uint8(k),
		n:    n,
	}
}

// countRecs decodes the count map into records sorted by
// (hour, UE, kind, a, b) — hour-major so Build can slice per hour.
func (dp *devPartial) countRecs() []countRec {
	recs := make([]countRec, 0, len(dp.counts))
	for k, n := range dp.counts {
		recs = append(recs, decodeCntKey(k, n))
	}
	sort.Slice(recs, func(i, j int) bool {
		x, y := recs[i], recs[j]
		if x.hour != y.hour {
			return x.hour < y.hour
		}
		if x.ue != y.ue {
			return x.ue < y.ue
		}
		if x.kind != y.kind {
			return x.kind < y.kind
		}
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	})
	return recs
}

// applyCount folds one count record into an accumulator. cntEvt records
// feed clustering features only, never the accumulators.
func (a *acc) applyCount(r countRec) {
	switch r.kind {
	case cntTop:
		a.TopCount[topKey{S: cp.UEState(r.a), E: cp.EventType(r.b)}] += int(r.n)
	case cntBot:
		a.BotCount[botKey{S: sm.State(r.a), E: cp.EventType(r.b)}] += int(r.n)
	case cntFirst:
		a.FirstCnt[firstCatKey{E: cp.EventType(r.a), S: sm.State(r.b)}] += int(r.n)
	case cntWithEv:
		a.WithEv += int(r.n)
	}
}

// ---- sample pools ----

// Pool kinds.
const (
	poolTop      = uint8(0) // A = cp.UEState, B = event: uncensored top sojourns
	poolBot      = uint8(1) // A = sm.State, B = event: uncensored bottom sojourns
	poolCensor   = uint8(2) // A = sm.State: right-censored bottom sojourns
	poolFree     = uint8(3) // B = event: free-process inter-arrivals
	poolFirst    = uint8(4) // first-event offsets within the hour
	numPoolKinds = 5
)

// poolKey addresses one sample pool.
type poolKey struct {
	Hour uint8
	Kind uint8
	A    uint8
	B    uint8
}

// poolSalt derives the sketch-priority salt of a pool. It depends only
// on the pool's identity — never on the process or shard — which is
// what makes sketched shards merge into the unsharded result exactly.
func poolSalt(k poolKey) uint64 {
	return uint64(k.Kind)<<24 | uint64(k.Hour)<<16 | uint64(k.A)<<8 | uint64(k.B)
}

// pitem is one retained sample: the (UE, seq) identity that
// reconstructs the serial fold order, and the value.
type pitem struct {
	ue  cp.UEID
	seq uint32
	v   float64
}

func sortPitems(items []pitem) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].ue != items[j].ue {
			return items[i].ue < items[j].ue
		}
		return items[i].seq < items[j].seq
	})
}

// pool is one sample pool: an exact tagged list, or a bottom-k sketch
// when the partial runs in bounded-memory mode.
type pool struct {
	items []pitem       // exact mode
	sk    *stats.Sketch // sketched mode (items unused)
}

// count returns the total number of observations (kept or not).
func (p *pool) count() int64 {
	if p.sk != nil {
		return p.sk.N()
	}
	return int64(len(p.items))
}

// canonicalItems returns the retained samples in (UE, seq) order — the
// serial fold order within the pool.
func (p *pool) canonicalItems() []pitem {
	var items []pitem
	if p.sk != nil {
		ski := p.sk.Items()
		items = make([]pitem, len(ski))
		for i, it := range ski {
			items[i] = pitem{ue: cp.UEID(it.Tag >> 32), seq: uint32(it.Tag), v: it.V}
		}
	} else {
		items = append([]pitem(nil), p.items...)
	}
	sortPitems(items)
	return items
}

// addSample routes one tagged observation into pool k.
func (dp *devPartial) addSample(k poolKey, sketchK int, ue cp.UEID, seq uint32, v float64) {
	p := dp.pools[k]
	if p == nil {
		p = &pool{}
		if sketchK > 0 {
			p.sk = stats.NewSketch(sketchK)
		}
		dp.pools[k] = p
	}
	if p.sk != nil {
		tag := uint64(ue)<<32 | uint64(seq)
		p.sk.Add(stats.SketchPriority(poolSalt(k), tag), tag, v)
		return
	}
	p.items = append(p.items, pitem{ue: ue, seq: seq, v: v})
}

// appendPool folds one pool sample into an accumulator's list for the
// pool's key.
func (a *acc) appendPool(k poolKey, v float64) {
	switch k.Kind {
	case poolTop:
		tk := topKey{S: cp.UEState(k.A), E: cp.EventType(k.B)}
		a.TopSoj[tk] = append(a.TopSoj[tk], v)
	case poolBot:
		bk := botKey{S: sm.State(k.A), E: cp.EventType(k.B)}
		a.BotSoj[bk] = append(a.BotSoj[bk], v)
	case poolCensor:
		s := sm.State(k.A)
		a.BotCensor[s] = append(a.BotCensor[s], v)
	case poolFree:
		e := cp.EventType(k.B)
		a.FreeIA[e] = append(a.FreeIA[e], v)
	case poolFirst:
		a.FirstOff = append(a.FirstOff, v)
	}
}

// ---- streaming moments (sketched-mode clustering features) ----

// momKey addresses one UE's CONNECTED (conn=true) or IDLE sojourn
// moments at one hour-of-day.
type momKey struct {
	ue   cp.UEID
	hour uint8
	conn bool
}

// welford is a streaming mean/variance accumulator (Welford's update).
// Per-UE moments never merge across partials — a UE's samples all live
// in one shard — so the update order is the UE's emission order in
// every execution, keeping sketched fits byte-identical sharded vs
// unsharded.
type welford struct {
	n    int64
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// std is the sample standard deviation, 0 below two observations —
// mirroring stats.StdDev's convention, though not bit-identical to the
// two-pass computation (documented sketched-mode divergence).
func (w *welford) std() float64 {
	if w == nil || w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// ---- the tagging sink ----

// partialSink implements sampleSink for one UE, tagging every retained
// sample with (UE, seq) and routing it into the device's pools. seq
// counts retained samples only, exactly like the serial fold retains
// them, so (UE, seq) is shard-invariant: the same UE under the same
// options emits the same tags in any process.
type partialSink struct {
	pf  *PartialFit
	d   cp.DeviceType
	ue  cp.UEID
	seq uint32
}

func (s *partialSink) nextSeq() uint32 {
	v := s.seq
	s.seq++
	return v
}

func (s *partialSink) dev() *devPartial { return s.pf.devs[s.d] }

func (s *partialSink) countEvent(h int, e cp.EventType) {
	// Only the two §5.3 feature counts are ever read back.
	if e == cp.ServiceRequest || e == cp.S1ConnRelease {
		s.dev().counts[cntKey(s.ue, cntEvt, h, 0, uint8(e))]++
	}
}

func (s *partialSink) top(sam topSample) {
	dp := s.dev()
	dp.counts[cntKey(s.ue, cntTop, int(sam.Hour), uint8(sam.Key.S), uint8(sam.Key.E))]++
	if !sam.Has {
		return
	}
	dp.addSample(poolKey{Hour: sam.Hour, Kind: poolTop, A: uint8(sam.Key.S), B: uint8(sam.Key.E)},
		s.pf.opt.SketchK, s.ue, s.nextSeq(), sam.Soj)
	if s.pf.opt.SketchK > 0 {
		switch sam.Key.S {
		case cp.StateConnected:
			s.moment(sam.Hour, true).add(sam.Soj)
		case cp.StateIdle:
			s.moment(sam.Hour, false).add(sam.Soj)
		default: // DEREGISTERED sojourns are not clustering features (§5.3)
		}
	}
}

func (s *partialSink) moment(hour uint8, conn bool) *welford {
	dp := s.dev()
	k := momKey{ue: s.ue, hour: hour, conn: conn}
	w := dp.moments[k]
	if w == nil {
		w = &welford{}
		dp.moments[k] = w
	}
	return w
}

func (s *partialSink) bot(sam botSample) {
	dp := s.dev()
	dp.counts[cntKey(s.ue, cntBot, int(sam.Hour), uint8(sam.Key.S), uint8(sam.Key.E))]++
	if !sam.Has {
		return
	}
	dp.addSample(poolKey{Hour: sam.Hour, Kind: poolBot, A: uint8(sam.Key.S), B: uint8(sam.Key.E)},
		s.pf.opt.SketchK, s.ue, s.nextSeq(), sam.Soj)
}

func (s *partialSink) botCensor(sam censorSample) {
	s.dev().addSample(poolKey{Hour: sam.Hour, Kind: poolCensor, A: uint8(sam.S)},
		s.pf.opt.SketchK, s.ue, s.nextSeq(), sam.Dur)
}

func (s *partialSink) free(sam iaSample) {
	// Only configured free-process events are retained; acc.build reads
	// no others (the same memory discipline the streamed fit used).
	if !s.pf.freeSet[sam.E] {
		return
	}
	s.dev().addSample(poolKey{Hour: sam.Hour, Kind: poolFree, B: uint8(sam.E)},
		s.pf.opt.SketchK, s.ue, s.nextSeq(), sam.IA)
}

func (s *partialSink) first(sam firstSample) {
	dp := s.dev()
	dp.counts[cntKey(s.ue, cntFirst, int(sam.Hour), uint8(sam.E), uint8(sam.State))]++
	dp.counts[cntKey(s.ue, cntWithEv, int(sam.Hour), 0, 0)]++
	dp.addSample(poolKey{Hour: sam.Hour, Kind: poolFirst},
		s.pf.opt.SketchK, s.ue, s.nextSeq(), sam.Off)
}

func (s *partialSink) violation() { s.pf.violations++ }

// ---- construction and ingestion ----

// NewPartialFit returns an empty partial fit with the given options
// (nil machine, empty sojourn kind and method default as in Fit).
// SketchK > 0 selects bounded-memory mode: every sample pool keeps at
// most SketchK observations in a mergeable bottom-k sketch.
func NewPartialFit(opt FitOptions) (*PartialFit, error) {
	opt = opt.withDefaults()
	if opt.SketchK < 0 {
		return nil, fmt.Errorf("core: negative SketchK %d", opt.SketchK)
	}
	pf := &PartialFit{
		opt:   opt,
		devOf: make(map[cp.UEID]cp.DeviceType),
		exts:  make(map[cp.UEID]*ueFitState),
	}
	for _, e := range opt.FreeEvents {
		if e.Valid() {
			pf.freeSet[e] = true
		}
	}
	return pf, nil
}

func (pf *PartialFit) register(ue cp.UEID, d cp.DeviceType) {
	pf.devOf[ue] = d
	dp := pf.devs[d]
	if dp == nil {
		dp = newDevPartial()
		pf.devs[d] = dp
	}
	dp.ues = append(dp.ues, ue)
}

// AddDevice registers one UE. Every UE must be registered before its
// first event.
func (pf *PartialFit) AddDevice(ue cp.UEID, d cp.DeviceType) error {
	if pf.built {
		return fmt.Errorf("core: partial fit already built")
	}
	if !d.Valid() {
		return fmt.Errorf("core: invalid device type %d for UE %d", d, ue)
	}
	if _, dup := pf.devOf[ue]; dup {
		return fmt.Errorf("core: UE %d registered twice", ue)
	}
	pf.register(ue, d)
	return nil
}

// AddEvent ingests one event of a registered UE. Events must arrive in
// canonical (time, UE, type) order across calls — the order every
// EventSource delivers.
func (pf *PartialFit) AddEvent(e trace.Event) error {
	if pf.built {
		return fmt.Errorf("core: partial fit already built")
	}
	d, ok := pf.devOf[e.UE]
	if !ok {
		return fmt.Errorf("core: event for unregistered UE %d", e.UE)
	}
	st := pf.exts[e.UE]
	if st == nil {
		sink := &partialSink{pf: pf, d: d, ue: e.UE}
		st = &ueFitState{sink: sink, ext: newUEExtractor(pf.opt.Machine, sink)}
		pf.exts[e.UE] = st
	}
	st.ext.push(e)
	if e.T > pf.span {
		pf.span = e.T
	}
	if pf.consumed >= 0 {
		pf.consumed++
	}
	return nil
}

// AddSource ingests a whole source: registrations, then one scan of the
// events. On a partial decoded from a checkpoint, the source's registry
// must match the checkpoint's and the first EventsConsumed events are
// skipped — pass the same source the checkpointed run was scanning and
// the fit resumes exactly where it stopped.
func (pf *PartialFit) AddSource(src trace.EventSource) error {
	return pf.AddSourceWithCheckpoints(src, 0, nil)
}

// AddSourceWithCheckpoints is AddSource with a checkpoint hook: after
// every multiple of `every` ingested events, checkpoint is called with
// the running total (its error aborts the scan). Checkpoint callbacks
// typically Encode the partial to a temporary file and rename it into
// place.
func (pf *PartialFit) AddSourceWithCheckpoints(src trace.EventSource, every int64, checkpoint func(consumed int64) error) error {
	if pf.built {
		return fmt.Errorf("core: partial fit already built")
	}
	if pf.consumed < 0 {
		return fmt.Errorf("core: merged partial fits cannot ingest a source; merge completed partials instead")
	}
	matched := 0
	err := src.Devices(func(ue cp.UEID, d cp.DeviceType) error {
		if !d.Valid() {
			return fmt.Errorf("core: invalid device type %d for UE %d", d, ue)
		}
		if prev, ok := pf.devOf[ue]; ok {
			if pf.restored && prev == d {
				matched++
				return nil
			}
			return fmt.Errorf("core: UE %d registered twice", ue)
		}
		if pf.restored {
			return fmt.Errorf("core: resume source registers UE %d absent from the checkpoint", ue)
		}
		pf.register(ue, d)
		return nil
	})
	if err != nil {
		return err
	}
	if pf.restored && matched != len(pf.devOf) {
		return fmt.Errorf("core: resume source registry mismatch: %d of %d checkpointed UEs present",
			matched, len(pf.devOf))
	}
	var idx int64
	skip := pf.consumed
	return src.Scan(func(e trace.Event) error {
		idx++
		if idx <= skip {
			return nil
		}
		if err := pf.AddEvent(e); err != nil {
			return err
		}
		if every > 0 && checkpoint != nil && pf.consumed%every == 0 {
			return checkpoint(pf.consumed)
		}
		return nil
	})
}

// EventsConsumed returns how many events this partial has ingested; -1
// once partials have been merged (a merged partial cannot resume a
// source scan).
func (pf *PartialFit) EventsConsumed() int64 { return pf.consumed }

// NumUEs returns the number of registered UEs.
func (pf *PartialFit) NumUEs() int { return len(pf.devOf) }

// ---- merging ----

// optionsMismatch explains why two partials cannot merge, or "".
func optionsMismatch(a, b FitOptions) string {
	switch {
	case a.Machine != b.Machine && a.Machine.Name != b.Machine.Name:
		return fmt.Sprintf("machine %q vs %q", a.Machine.Name, b.Machine.Name)
	case a.SojournKind != b.SojournKind:
		return fmt.Sprintf("sojourn kind %q vs %q", a.SojournKind, b.SojournKind)
	case len(a.FreeEvents) != len(b.FreeEvents):
		return "free events differ"
	case a.NoClustering != b.NoClustering:
		return "clustering flag differs"
	case a.Cluster != b.Cluster:
		return "cluster options differ"
	case a.Method != b.Method:
		return fmt.Sprintf("method %q vs %q", a.Method, b.Method)
	case a.SketchK != b.SketchK:
		return fmt.Sprintf("sketch k %d vs %d", a.SketchK, b.SketchK)
	}
	for i := range a.FreeEvents {
		if a.FreeEvents[i] != b.FreeEvents[i] {
			return "free events differ"
		}
	}
	return ""
}

// Merge folds other into pf. The two partials must carry identical fit
// options and disjoint UE sets; other is consumed (sealed) by the
// merge. Merging is associative and commutative up to Build: any merge
// order or grouping of the same shards yields byte-identical models,
// because samples carry their serial-fold identity and every tally is
// an integer sum.
func (pf *PartialFit) Merge(other *PartialFit) error {
	if other == pf {
		return fmt.Errorf("core: cannot merge a partial fit with itself")
	}
	if pf.built || other.built {
		return fmt.Errorf("core: cannot merge a built partial fit")
	}
	if why := optionsMismatch(pf.opt, other.opt); why != "" {
		return fmt.Errorf("core: merging incompatible partial fits: %s", why)
	}
	for _, d := range cp.DeviceTypes {
		odp := other.devs[d]
		if odp == nil {
			continue
		}
		for _, ue := range odp.ues {
			if _, dup := pf.devOf[ue]; dup {
				return fmt.Errorf("core: merging overlapping partial fits: UE %d in both", ue)
			}
		}
	}
	for _, d := range cp.DeviceTypes {
		odp := other.devs[d]
		if odp == nil {
			continue
		}
		dp := pf.devs[d]
		if dp == nil {
			dp = newDevPartial()
			pf.devs[d] = dp
		}
		dp.ues = append(dp.ues, odp.ues...)
		for _, ue := range odp.ues {
			pf.devOf[ue] = d
		}
		// Count keys are UE-prefixed and the UE sets are disjoint, so
		// these are pure inserts; += keeps the fold commutative anyway.
		for k, n := range odp.counts {
			dp.counts[k] += n
		}
		//cplint:ordered-ok per-key fold into the key's own pool; sketch merge is commutative and exact lists are re-sorted by (UE, seq) at Build
		for k, p := range odp.pools {
			mine := dp.pools[k]
			if mine == nil {
				dp.pools[k] = p
				continue
			}
			if mine.sk != nil {
				mine.sk.Merge(p.sk)
			} else {
				mine.items = append(mine.items, p.items...)
			}
		}
		for k, w := range odp.moments {
			dp.moments[k] = w
		}
	}
	// Adopt other's in-flight extractors, re-pointing their sinks at the
	// merged partial (ascending-UE order for a deterministic walk).
	moved := make([]cp.UEID, 0, len(other.exts))
	for ue := range other.exts {
		moved = append(moved, ue)
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
	for _, ue := range moved {
		st := other.exts[ue]
		st.sink.pf = pf
		pf.exts[ue] = st
	}
	if other.span > pf.span {
		pf.span = other.span
	}
	pf.violations += other.violations
	pf.consumed = -1
	other.built = true // sealed: its state now lives in pf
	return nil
}

// ---- building ----

// Build finalizes the partial into a fitted ModelSet: it finishes every
// UE's extractor walk, computes clustering features, runs the adaptive
// partition, splits the per-UE counts and (UE, seq)-ordered sample
// pools per (hour, cluster), and fits every model with the same
// acc.build as always. Build consumes the partial — a second call
// errors.
func (pf *PartialFit) Build() (*ModelSet, error) {
	if pf.built {
		return nil, fmt.Errorf("core: partial fit already built")
	}
	pf.built = true
	total := len(pf.devOf)
	if total == 0 {
		return nil, fmt.Errorf("core: cannot fit an empty trace")
	}
	// Finish every extractor in ascending UE order; a UE whose stream
	// had no Category-1 event resolves and flushes its buffered prefix
	// here. (Sample identity is (UE, seq)-tagged, so the finish order
	// cannot leak into the model — the sort just keeps the walk
	// deterministic.)
	finishOrder := make([]cp.UEID, 0, len(pf.exts))
	for ue := range pf.exts {
		finishOrder = append(finishOrder, ue)
	}
	sort.Slice(finishOrder, func(i, j int) bool { return finishOrder[i] < finishOrder[j] })
	for _, ue := range finishOrder {
		pf.exts[ue].ext.finish()
	}
	days := int((pf.span + cp.Day - 1) / cp.Day)
	if days < 1 {
		days = 1
	}
	ms := &ModelSet{
		MachineName: pf.opt.Machine.Name,
		Method:      pf.opt.Method,
		Devices:     make([]*DeviceModel, cp.NumDeviceTypes),
	}
	for _, d := range cp.DeviceTypes {
		dp := pf.devs[d]
		if dp == nil || len(dp.ues) == 0 {
			continue
		}
		sort.Slice(dp.ues, func(i, j int) bool { return dp.ues[i] < dp.ues[j] })
		dm := dp.build(pf, days)
		dm.Share = float64(len(dp.ues)) / float64(total)
		dm.TrainUEs = len(dp.ues)
		ms.Devices[d] = dm
	}
	return ms, nil
}

// build fits one device type's model from its partial state.
func (dp *devPartial) build(pf *PartialFit, days int) *DeviceModel {
	opt := pf.opt
	ues := dp.ues

	// Canonicalize every pool once: items in (UE, seq) order.
	pools := make(map[poolKey][]pitem, len(dp.pools))
	//cplint:ordered-ok each key is written once into its own slot from its own pool
	for k, p := range dp.pools {
		pools[k] = p.canonicalItems()
	}
	poolKeys := make([]poolKey, 0, len(pools))
	for k := range pools {
		poolKeys = append(poolKeys, k)
	}
	sort.Slice(poolKeys, func(i, j int) bool {
		x, y := poolKeys[i], poolKeys[j]
		if x.Hour != y.Hour {
			return x.Hour < y.Hour
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.A != y.A {
			return x.A < y.A
		}
		return x.B < y.B
	})
	var hourKeys [HoursPerDay][]poolKey
	for _, k := range poolKeys {
		hourKeys[k.Hour] = append(hourKeys[k.Hour], k)
	}

	recs := dp.countRecs()
	var hourRecs [HoursPerDay][]countRec
	for lo := 0; lo < len(recs); {
		hi := lo
		h := recs[lo].hour
		for hi < len(recs) && recs[hi].hour == h {
			hi++
		}
		hourRecs[h] = recs[lo:hi]
		lo = hi
	}

	assignments, numClusters, weights := clusterHours(ues, opt, dp.featureFn(pf, pools, days))

	dm := &DeviceModel{
		Personas: buildPersonas(ues, assignments),
		Hours:    make([]HourModel, HoursPerDay),
	}
	par.For(HoursPerDay, opt.Workers, func(h int) {
		asg := assignments[h]
		accs := make([]*acc, numClusters[h])
		for c := range accs {
			accs[c] = newAcc()
		}
		agg := newAcc()
		// NumUEs/Cells are functions of the assignments alone — every
		// UE contributes whether or not it produced samples, exactly
		// like the serial per-UE fold.
		for _, ue := range ues {
			accs[asg[ue]].NumUEs++
			accs[asg[ue]].Cells += days
		}
		agg.NumUEs = len(ues)
		agg.Cells = len(ues) * days
		for _, r := range hourRecs[h] {
			accs[asg[r.ue]].applyCount(r)
			agg.applyCount(r)
		}
		// Pool items are (UE, seq)-ordered; a stable split per cluster
		// keeps each cluster's list — and the aggregate's — in the
		// serial fold order.
		for _, k := range hourKeys[h] {
			for _, it := range pools[k] {
				accs[asg[it.ue]].appendPool(k, it.v)
				agg.appendPool(k, it.v)
			}
		}
		hm := &dm.Hours[h]
		hm.Clusters = make([]ClusterModel, numClusters[h])
		for c := range accs {
			hm.Clusters[c] = accs[c].build(opt.Machine, opt)
		}
		a := agg.build(opt.Machine, opt)
		hm.Aggregate = &a
		hm.Weights = weights[h]
	})

	// Global fallback: hour-agnostic sums and hour-merged sample lists,
	// restored to (UE, seq) order across hours.
	global := newAcc()
	global.NumUEs = len(ues)
	global.Cells = len(ues) * days * HoursPerDay
	for _, r := range recs {
		global.applyCount(r)
	}
	type flatKey struct{ kind, a, b uint8 }
	flat := make(map[flatKey][]pitem)
	flatOrder := []flatKey{}
	for _, k := range poolKeys {
		fk := flatKey{k.Kind, k.A, k.B}
		if _, ok := flat[fk]; !ok {
			flatOrder = append(flatOrder, fk)
		}
		flat[fk] = append(flat[fk], pools[k]...)
	}
	for _, fk := range flatOrder {
		items := flat[fk]
		sortPitems(items)
		k := poolKey{Kind: fk.kind, A: fk.a, B: fk.b}
		for _, it := range items {
			global.appendPool(k, it.v)
		}
	}
	g := global.build(opt.Machine, opt)
	dm.Global = &g
	return dm
}

// featureFn returns the §5.3 clustering-feature function for this
// device's UEs. Exact mode recovers each UE's per-hour CONNECTED/IDLE
// sojourn lists from the top pools — in emission order, so the standard
// deviations are bit-identical to the reference fit. Sketched mode uses
// the per-UE streaming moments instead (the pools are lossy), which is
// numerically equivalent but not bit-identical to the two-pass
// computation: sketched fits are self-consistent (sharded == unsharded)
// but intentionally diverge from exact fits.
func (dp *devPartial) featureFn(pf *PartialFit, pools map[poolKey][]pitem, days int) func(i, h int) cluster.Features {
	ues := dp.ues
	srvReq := func(ue cp.UEID, h int) float64 {
		return float64(dp.counts[cntKey(ue, cntEvt, h, 0, uint8(cp.ServiceRequest))]) / float64(days)
	}
	s1Rel := func(ue cp.UEID, h int) float64 {
		return float64(dp.counts[cntKey(ue, cntEvt, h, 0, uint8(cp.S1ConnRelease))]) / float64(days)
	}
	if pf.opt.SketchK > 0 {
		return func(i, h int) cluster.Features {
			ue := ues[i]
			return cluster.Features{
				cluster.FSrvReqCount: srvReq(ue, h),
				cluster.FConnStd:     dp.moments[momKey{ue: ue, hour: uint8(h), conn: true}].std(),
				cluster.FS1RelCount:  s1Rel(ue, h),
				cluster.FIdleStd:     dp.moments[momKey{ue: ue, hour: uint8(h), conn: false}].std(),
			}
		}
	}
	var connStd, idleStd [HoursPerDay]map[cp.UEID]float64
	for h := 0; h < HoursPerDay; h++ {
		connStd[h] = sojournStds(pools, h, cp.StateConnected)
		idleStd[h] = sojournStds(pools, h, cp.StateIdle)
	}
	return func(i, h int) cluster.Features {
		ue := ues[i]
		return cluster.Features{
			cluster.FSrvReqCount: srvReq(ue, h),
			cluster.FConnStd:     connStd[h][ue],
			cluster.FS1RelCount:  s1Rel(ue, h),
			cluster.FIdleStd:     idleStd[h][ue],
		}
	}
}

// sojournStds recovers, for every UE with uncensored sojourns of macro
// state s at hour h, the standard deviation of those sojourns in
// emission order — exactly the list the per-UE extraction would have
// built.
func sojournStds(pools map[poolKey][]pitem, h int, s cp.UEState) map[cp.UEID]float64 {
	var all []pitem
	for _, e := range cp.EventTypes {
		all = append(all, pools[poolKey{Hour: uint8(h), Kind: poolTop, A: uint8(s), B: uint8(e)}]...)
	}
	sortPitems(all)
	out := make(map[cp.UEID]float64)
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].ue == all[i].ue {
			j++
		}
		vs := make([]float64, j-i)
		for k := i; k < j; k++ {
			vs[k-i] = all[k].v
		}
		out[all[i].ue] = stats.StdDev(vs)
		i = j
	}
	return out
}

// fitSource is the one construction path both Fit and FitStream drive:
// a fresh partial, one source, one build.
func fitSource(src trace.EventSource, opt FitOptions) (*ModelSet, error) {
	pf, err := NewPartialFit(opt)
	if err != nil {
		return nil, err
	}
	if err := pf.AddSource(src); err != nil {
		return nil, err
	}
	return pf.Build()
}
