package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// PartialFormatV1 is the format tag every partialfit/1 file must carry.
// The format is strict like scenario/1: unknown fields and unknown
// format tags are rejected, and Encode emits one canonical byte stream
// per partial state (devices in device-type order, UEs ascending,
// counts by packed key, pool items by (UE, seq)), so a file round-trips
// byte-identically through DecodePartial and Encode. The normative
// field reference lives in PARTIALFIT.md at the repo root.
const PartialFormatV1 = "partialfit/1"

// partialFile is the top-level partialfit/1 document.
type partialFile struct {
	// Format must be "partialfit/1".
	Format string `json:"format"`
	// Options pins the fit options; partials only merge when they agree.
	Options partialOptions `json:"options"`
	// SpanMS is the maximum event timestamp seen, in ms.
	SpanMS int64 `json:"span_ms"`
	// EventsConsumed counts ingested events (resume skips that many),
	// or -1 for a merged partial, which cannot resume a source.
	EventsConsumed int64 `json:"events_consumed"`
	// Violations counts machine-violation events observed so far.
	Violations int64 `json:"violations,omitempty"`
	// Devices holds one block per device type with registered UEs, in
	// device-type order.
	Devices []partialDevice `json:"devices"`
}

// partialOptions is the serialized form of FitOptions. Workers is
// deliberately absent: it never affects the fitted bytes.
type partialOptions struct {
	// Machine is the state-machine name ("LTE-2LEVEL", "EMM-ECM", "5G-SA").
	Machine string `json:"machine"`
	// Method is the model label ("ours", "base", "v1", "v2").
	Method string `json:"method"`
	// SojournKind is the sojourn family ("table" or "exp" spellings of
	// SojournTable / SojournExp).
	SojournKind string `json:"sojourn_kind"`
	// FreeEvents lists free-process event types by name, in option order.
	FreeEvents []string `json:"free_events,omitempty"`
	// NoClustering disables adaptive clustering (the Base method).
	NoClustering bool `json:"no_clustering,omitempty"`
	// ThetaF carries the four per-feature split thresholds (raw option
	// values; zeros mean the cluster package defaults).
	ThetaF []float64 `json:"theta_f"`
	// ThetaN is the minimum cluster size before a split is considered.
	ThetaN int `json:"theta_n"`
	// MaxDepth bounds the partition tree depth.
	MaxDepth int `json:"max_depth"`
	// SketchK is the bounded-memory pool size; 0 means exact pools.
	SketchK int `json:"sketch_k,omitempty"`
}

// partialDevice is one device type's state.
type partialDevice struct {
	// Device is the device-type name ("phone", "connected_car", "tablet").
	Device string `json:"device"`
	// UEs lists the registered UE IDs, strictly ascending.
	UEs []cp.UEID `json:"ues"`
	// Extractors holds the in-flight per-UE walk states, by UE ascending.
	Extractors []partialExtractor `json:"extractors,omitempty"`
	// Counts holds every integer tally in packed-column form.
	Counts partialCounts `json:"counts"`
	// Pools holds the tagged sample pools in canonical key order.
	Pools []partialPool `json:"pools,omitempty"`
	// Moments holds the sketched-mode per-UE feature moments, sorted by
	// (ue, hour, conn).
	Moments []partialMoment `json:"moments,omitempty"`
}

// partialCounts is a column-oriented dump of the count map, sorted by
// (ue, key) ascending. Entry i is (UE[i], Key[i]) -> N[i], where Key is
// the low 32 bits of the packed count key: kind<<29 | hour<<24 | a<<8 | b.
type partialCounts struct {
	UE  []cp.UEID `json:"ue,omitempty"`
	Key []uint32  `json:"key,omitempty"`
	N   []int64   `json:"n,omitempty"`
}

// partialPool is one sample pool. The kind decides which of state/event
// are meaningful: "top" (state = cp.UEState, event), "bot" (state =
// machine state, event), "censor" (state only), "free" (event only),
// "first" (neither). Items are column-oriented in (ue, seq) order; n is
// the total number of observations, which exceeds len(ue) when the pool
// is a bottom-k sketch (sketch priorities are recomputed on decode, so
// they never appear on the wire).
type partialPool struct {
	Hour  int       `json:"hour"`
	Kind  string    `json:"kind"`
	State int       `json:"state,omitempty"`
	Event string    `json:"event,omitempty"`
	N     int64     `json:"n"`
	UE    []cp.UEID `json:"ue,omitempty"`
	Seq   []uint32  `json:"seq,omitempty"`
	V     []float64 `json:"v,omitempty"`
}

// partialMoment is one UE's streaming sojourn moments at one hour
// (conn=true for CONNECTED, false for IDLE): count, mean, and the
// Welford M2 sum of squared deviations.
type partialMoment struct {
	UE    cp.UEID `json:"ue"`
	Hour  int     `json:"hour"`
	Conn  bool    `json:"conn,omitempty"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
}

// partialExtractor is one UE's in-flight extraction walk: the buffered
// undecided prefix, the two machine levels, and the per-event-type
// recency state. The fixed-length arrays are indexed by event type;
// their length is pinned to the event-type count (a new event type is a
// format break).
type partialExtractor struct {
	UE             cp.UEID        `json:"ue"`
	Seq            uint32         `json:"seq,omitempty"`
	Decided        bool           `json:"decided,omitempty"`
	Buf            []partialEvent `json:"buf,omitempty"`
	Macro          int            `json:"macro"`
	Bottom         int            `json:"bottom"`
	MacroAtMS      int64          `json:"macro_at_ms"`
	BotAtMS        int64          `json:"bot_at_ms"`
	MacroHas       bool           `json:"macro_has,omitempty"`
	BotHas         bool           `json:"bot_has,omitempty"`
	LastOfTypeMS   []int64        `json:"last_of_type_ms"`
	LastCellOfType []int          `json:"last_cell_of_type"`
	SeenType       []bool         `json:"seen_type"`
	LastCell       int            `json:"last_cell"`
}

// partialEvent is one buffered event of the extractor's own UE.
type partialEvent struct {
	TMS  int64  `json:"t_ms"`
	Type string `json:"type"`
}

var poolKindNames = [numPoolKinds]string{
	poolTop:    "top",
	poolBot:    "bot",
	poolCensor: "censor",
	poolFree:   "free",
	poolFirst:  "first",
}

func poolKindByName(s string) (uint8, bool) {
	for k, n := range poolKindNames {
		if n == s {
			return uint8(k), true
		}
	}
	return 0, false
}

// Encode writes the partial's full state as one canonical partialfit/1
// JSON document. A built partial cannot be encoded (Build consumes the
// state), and neither can a partial whose machine is not one of the
// named machines machineByName resolves.
func (pf *PartialFit) Encode(w io.Writer) error {
	if pf.built {
		return fmt.Errorf("core: cannot encode a built partial fit")
	}
	if _, err := machineByName(pf.opt.Machine.Name); err != nil {
		return fmt.Errorf("core: cannot encode a partial fit over an unnamed custom machine: %w", err)
	}
	f := partialFile{
		Format:         PartialFormatV1,
		SpanMS:         int64(pf.span),
		EventsConsumed: pf.consumed,
		Violations:     pf.violations,
	}
	f.Options = partialOptions{
		Machine:      pf.opt.Machine.Name,
		Method:       pf.opt.Method,
		SojournKind:  pf.opt.SojournKind,
		NoClustering: pf.opt.NoClustering,
		ThetaF:       append([]float64(nil), pf.opt.Cluster.ThetaF[:]...),
		ThetaN:       pf.opt.Cluster.ThetaN,
		MaxDepth:     pf.opt.Cluster.MaxDepth,
		SketchK:      pf.opt.SketchK,
	}
	for _, e := range pf.opt.FreeEvents {
		f.Options.FreeEvents = append(f.Options.FreeEvents, e.String())
	}
	for _, d := range cp.DeviceTypes {
		dp := pf.devs[d]
		if dp == nil || len(dp.ues) == 0 {
			continue
		}
		pd := partialDevice{Device: d.String()}
		pd.UEs = append([]cp.UEID(nil), dp.ues...)
		sort.Slice(pd.UEs, func(i, j int) bool { return pd.UEs[i] < pd.UEs[j] })

		for _, ue := range pd.UEs {
			st := pf.exts[ue]
			if st == nil {
				continue
			}
			pd.Extractors = append(pd.Extractors, encodeExtractor(ue, st))
		}

		keys := make([]uint64, 0, len(dp.counts))
		for k := range dp.counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			pd.Counts.UE = append(pd.Counts.UE, cp.UEID(k>>32))
			pd.Counts.Key = append(pd.Counts.Key, uint32(k))
			pd.Counts.N = append(pd.Counts.N, dp.counts[k])
		}

		pkeys := make([]poolKey, 0, len(dp.pools))
		for k := range dp.pools {
			pkeys = append(pkeys, k)
		}
		sort.Slice(pkeys, func(i, j int) bool { return poolKeyLess(pkeys[i], pkeys[j]) })
		for _, k := range pkeys {
			p := dp.pools[k]
			pp := partialPool{
				Hour: int(k.Hour),
				Kind: poolKindNames[k.Kind],
				N:    p.count(),
			}
			switch k.Kind {
			case poolTop, poolBot:
				pp.State = int(k.A)
				pp.Event = cp.EventType(k.B).String()
			case poolCensor:
				pp.State = int(k.A)
			case poolFree:
				pp.Event = cp.EventType(k.B).String()
			}
			for _, it := range p.canonicalItems() {
				pp.UE = append(pp.UE, it.ue)
				pp.Seq = append(pp.Seq, it.seq)
				pp.V = append(pp.V, it.v)
			}
			pd.Pools = append(pd.Pools, pp)
		}

		mkeys := make([]momKey, 0, len(dp.moments))
		for k := range dp.moments {
			mkeys = append(mkeys, k)
		}
		sort.Slice(mkeys, func(i, j int) bool {
			x, y := mkeys[i], mkeys[j]
			if x.ue != y.ue {
				return x.ue < y.ue
			}
			if x.hour != y.hour {
				return x.hour < y.hour
			}
			return !x.conn && y.conn
		})
		for _, k := range mkeys {
			m := dp.moments[k]
			pd.Moments = append(pd.Moments, partialMoment{
				UE: k.ue, Hour: int(k.hour), Conn: k.conn,
				Count: m.n, Mean: m.mean, M2: m.m2,
			})
		}
		f.Devices = append(f.Devices, pd)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

func poolKeyLess(x, y poolKey) bool {
	if x.Hour != y.Hour {
		return x.Hour < y.Hour
	}
	if x.Kind != y.Kind {
		return x.Kind < y.Kind
	}
	if x.A != y.A {
		return x.A < y.A
	}
	return x.B < y.B
}

func encodeExtractor(ue cp.UEID, st *ueFitState) partialExtractor {
	x := st.ext
	px := partialExtractor{
		UE:        ue,
		Seq:       st.sink.seq,
		Decided:   x.decided,
		Macro:     int(x.macro),
		Bottom:    int(x.bottom),
		MacroAtMS: int64(x.macroAt),
		BotAtMS:   int64(x.botAt),
		MacroHas:  x.macroHas,
		BotHas:    x.botHas,
		LastCell:  x.lastCell,
	}
	for _, ev := range x.buf {
		px.Buf = append(px.Buf, partialEvent{TMS: int64(ev.T), Type: ev.Type.String()})
	}
	px.LastOfTypeMS = make([]int64, cp.NumEventTypes)
	px.LastCellOfType = make([]int, cp.NumEventTypes)
	px.SeenType = make([]bool, cp.NumEventTypes)
	for i := 0; i < cp.NumEventTypes; i++ {
		px.LastOfTypeMS[i] = int64(x.lastOfType[i])
		px.LastCellOfType[i] = x.lastCellOfType[i]
		px.SeenType[i] = x.seenType[i]
	}
	return px
}

// DecodePartial reads one partialfit/1 document and reconstructs the
// partial fit, mid-scan extractor state included. Decoding is strict:
// unknown fields, unknown format tags, unknown names, unsorted or
// inconsistent columns are all errors. The result behaves exactly like
// the encoded partial — resume its source scan with AddSource, Merge it
// with sibling shards, or Build it.
func DecodePartial(r io.Reader) (*PartialFit, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f partialFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding partial fit: %w", err)
	}
	if f.Format != PartialFormatV1 {
		return nil, fmt.Errorf("core: unknown partial-fit format %q (want %q)", f.Format, PartialFormatV1)
	}
	opt, err := decodePartialOptions(f.Options)
	if err != nil {
		return nil, err
	}
	pf, err := NewPartialFit(opt)
	if err != nil {
		return nil, err
	}
	if f.EventsConsumed < -1 {
		return nil, fmt.Errorf("core: partial fit: invalid events_consumed %d", f.EventsConsumed)
	}
	pf.span = cp.Millis(f.SpanMS)
	pf.consumed = f.EventsConsumed
	pf.violations = f.Violations
	pf.restored = true

	seenDev := map[string]bool{}
	for _, pd := range f.Devices {
		d, err := cp.ParseDeviceType(pd.Device)
		if err != nil {
			return nil, fmt.Errorf("core: partial fit: %w", err)
		}
		if seenDev[pd.Device] {
			return nil, fmt.Errorf("core: partial fit: device %q appears twice", pd.Device)
		}
		seenDev[pd.Device] = true
		if len(pd.UEs) == 0 {
			return nil, fmt.Errorf("core: partial fit: device %q has no UEs", pd.Device)
		}
		for i, ue := range pd.UEs {
			if i > 0 && pd.UEs[i-1] >= ue {
				return nil, fmt.Errorf("core: partial fit: device %q UE list not strictly ascending", pd.Device)
			}
			if _, dup := pf.devOf[ue]; dup {
				return nil, fmt.Errorf("core: partial fit: UE %d registered twice", ue)
			}
			pf.register(ue, d)
		}
		dp := pf.devs[d]
		if err := decodeCounts(dp, d, pf, pd); err != nil {
			return nil, err
		}
		if err := decodePools(dp, d, pf, pd); err != nil {
			return nil, err
		}
		if err := decodeMoments(dp, d, pf, pd); err != nil {
			return nil, err
		}
		if err := decodeExtractors(d, pf, pd); err != nil {
			return nil, err
		}
	}
	return pf, nil
}

func decodePartialOptions(po partialOptions) (FitOptions, error) {
	var opt FitOptions
	m, err := machineByName(po.Machine)
	if err != nil {
		return opt, err
	}
	opt.Machine = m
	opt.Method = po.Method
	opt.SojournKind = po.SojournKind
	switch po.SojournKind {
	case SojournTable, SojournExp:
	default:
		return opt, fmt.Errorf("core: partial fit: unknown sojourn kind %q", po.SojournKind)
	}
	for _, name := range po.FreeEvents {
		e, err := cp.ParseEventType(name)
		if err != nil {
			return opt, fmt.Errorf("core: partial fit: %w", err)
		}
		opt.FreeEvents = append(opt.FreeEvents, e)
	}
	opt.NoClustering = po.NoClustering
	if len(po.ThetaF) != len(opt.Cluster.ThetaF) {
		return opt, fmt.Errorf("core: partial fit: theta_f needs %d entries, got %d",
			len(opt.Cluster.ThetaF), len(po.ThetaF))
	}
	var tf cluster.Features
	copy(tf[:], po.ThetaF)
	opt.Cluster = cluster.Options{ThetaF: tf, ThetaN: po.ThetaN, MaxDepth: po.MaxDepth}
	if po.SketchK < 0 {
		return opt, fmt.Errorf("core: partial fit: negative sketch_k %d", po.SketchK)
	}
	opt.SketchK = po.SketchK
	return opt, nil
}

func decodeCounts(dp *devPartial, d cp.DeviceType, pf *PartialFit, pd partialDevice) error {
	c := pd.Counts
	if len(c.UE) != len(c.Key) || len(c.UE) != len(c.N) {
		return fmt.Errorf("core: partial fit: device %q count columns differ in length", pd.Device)
	}
	var prev uint64
	for i := range c.UE {
		if dev, ok := pf.devOf[c.UE[i]]; !ok || dev != d {
			return fmt.Errorf("core: partial fit: count for UE %d not of device %q", c.UE[i], pd.Device)
		}
		k := uint64(c.UE[i])<<32 | uint64(c.Key[i])
		if i > 0 && k <= prev {
			return fmt.Errorf("core: partial fit: device %q counts not strictly ascending", pd.Device)
		}
		prev = k
		r := decodeCntKey(k, c.N[i])
		if r.kind >= numCntKinds {
			return fmt.Errorf("core: partial fit: unknown count kind %d", r.kind)
		}
		if int(r.hour) >= HoursPerDay {
			return fmt.Errorf("core: partial fit: count hour %d out of range", r.hour)
		}
		if c.N[i] <= 0 {
			return fmt.Errorf("core: partial fit: count %d must be positive", c.N[i])
		}
		dp.counts[k] = c.N[i]
	}
	return nil
}

func decodePools(dp *devPartial, d cp.DeviceType, pf *PartialFit, pd partialDevice) error {
	var prev poolKey
	for pi, pp := range pd.Pools {
		kind, ok := poolKindByName(pp.Kind)
		if !ok {
			return fmt.Errorf("core: partial fit: unknown pool kind %q", pp.Kind)
		}
		if pp.Hour < 0 || pp.Hour >= HoursPerDay {
			return fmt.Errorf("core: partial fit: pool hour %d out of range", pp.Hour)
		}
		k := poolKey{Hour: uint8(pp.Hour), Kind: kind}
		needState := kind == poolTop || kind == poolBot || kind == poolCensor
		needEvent := kind == poolTop || kind == poolBot || kind == poolFree
		if needState {
			max := pf.opt.Machine.NumStates()
			if kind == poolTop {
				max = cp.NumUEStates
			}
			if pp.State < 0 || pp.State >= max {
				return fmt.Errorf("core: partial fit: pool state %d out of range for kind %q", pp.State, pp.Kind)
			}
			k.A = uint8(pp.State)
		} else if pp.State != 0 {
			return fmt.Errorf("core: partial fit: pool kind %q takes no state", pp.Kind)
		}
		if needEvent {
			e, err := cp.ParseEventType(pp.Event)
			if err != nil {
				return fmt.Errorf("core: partial fit: %w", err)
			}
			k.B = uint8(e)
		} else if pp.Event != "" {
			return fmt.Errorf("core: partial fit: pool kind %q takes no event", pp.Kind)
		}
		if pi > 0 && !poolKeyLess(prev, k) {
			return fmt.Errorf("core: partial fit: device %q pools not in canonical order", pd.Device)
		}
		prev = k
		if len(pp.UE) != len(pp.Seq) || len(pp.UE) != len(pp.V) {
			return fmt.Errorf("core: partial fit: pool %q/%d columns differ in length", pp.Kind, pp.Hour)
		}
		items := make([]pitem, len(pp.UE))
		for i := range pp.UE {
			if dev, ok := pf.devOf[pp.UE[i]]; !ok || dev != d {
				return fmt.Errorf("core: partial fit: pool sample for UE %d not of device %q", pp.UE[i], pd.Device)
			}
			if i > 0 && (pp.UE[i-1] > pp.UE[i] || (pp.UE[i-1] == pp.UE[i] && pp.Seq[i-1] >= pp.Seq[i])) {
				return fmt.Errorf("core: partial fit: pool %q/%d items not in (ue, seq) order", pp.Kind, pp.Hour)
			}
			items[i] = pitem{ue: pp.UE[i], seq: pp.Seq[i], v: pp.V[i]}
		}
		p := &pool{}
		if pf.opt.SketchK > 0 {
			if len(items) > pf.opt.SketchK {
				return fmt.Errorf("core: partial fit: pool %q/%d holds %d items, over sketch_k %d",
					pp.Kind, pp.Hour, len(items), pf.opt.SketchK)
			}
			if pp.N < int64(len(items)) {
				return fmt.Errorf("core: partial fit: pool %q/%d n=%d below %d retained items",
					pp.Kind, pp.Hour, pp.N, len(items))
			}
			ski := make([]stats.SketchItem, len(items))
			salt := poolSalt(k)
			for i, it := range items {
				tag := uint64(it.ue)<<32 | uint64(it.seq)
				ski[i] = stats.SketchItem{Pri: stats.SketchPriority(salt, tag), Tag: tag, V: it.v}
			}
			p.sk = stats.RestoreSketch(pf.opt.SketchK, pp.N, ski)
		} else {
			if pp.N != int64(len(items)) {
				return fmt.Errorf("core: partial fit: exact pool %q/%d n=%d != %d items",
					pp.Kind, pp.Hour, pp.N, len(items))
			}
			p.items = items
		}
		dp.pools[k] = p
	}
	return nil
}

func decodeMoments(dp *devPartial, d cp.DeviceType, pf *PartialFit, pd partialDevice) error {
	if len(pd.Moments) > 0 && pf.opt.SketchK == 0 {
		return fmt.Errorf("core: partial fit: exact-mode device %q carries moments", pd.Device)
	}
	for i, m := range pd.Moments {
		if dev, ok := pf.devOf[m.UE]; !ok || dev != d {
			return fmt.Errorf("core: partial fit: moment for UE %d not of device %q", m.UE, pd.Device)
		}
		if m.Hour < 0 || m.Hour >= HoursPerDay {
			return fmt.Errorf("core: partial fit: moment hour %d out of range", m.Hour)
		}
		if m.Count < 1 || m.M2 < 0 {
			return fmt.Errorf("core: partial fit: moment for UE %d has count %d, m2 %v", m.UE, m.Count, m.M2)
		}
		k := momKey{ue: m.UE, hour: uint8(m.Hour), conn: m.Conn}
		if i > 0 {
			pm := pd.Moments[i-1]
			pk := momKey{ue: pm.UE, hour: uint8(pm.Hour), conn: pm.Conn}
			if !momKeyLess(pk, k) {
				return fmt.Errorf("core: partial fit: device %q moments not in (ue, hour, conn) order", pd.Device)
			}
		}
		if _, dup := dp.moments[k]; dup {
			return fmt.Errorf("core: partial fit: duplicate moment for UE %d", m.UE)
		}
		dp.moments[k] = &welford{n: m.Count, mean: m.Mean, m2: m.M2}
	}
	return nil
}

func momKeyLess(x, y momKey) bool {
	if x.ue != y.ue {
		return x.ue < y.ue
	}
	if x.hour != y.hour {
		return x.hour < y.hour
	}
	return !x.conn && y.conn
}

func decodeExtractors(d cp.DeviceType, pf *PartialFit, pd partialDevice) error {
	var prev cp.UEID
	for i, px := range pd.Extractors {
		if dev, ok := pf.devOf[px.UE]; !ok || dev != d {
			return fmt.Errorf("core: partial fit: extractor for UE %d not of device %q", px.UE, pd.Device)
		}
		if i > 0 && px.UE <= prev {
			return fmt.Errorf("core: partial fit: device %q extractors not strictly ascending", pd.Device)
		}
		prev = px.UE
		if _, dup := pf.exts[px.UE]; dup {
			return fmt.Errorf("core: partial fit: duplicate extractor for UE %d", px.UE)
		}
		if px.Macro < 0 || px.Macro >= cp.NumUEStates {
			return fmt.Errorf("core: partial fit: extractor macro state %d out of range", px.Macro)
		}
		if px.Bottom < 0 || px.Bottom >= pf.opt.Machine.NumStates() {
			return fmt.Errorf("core: partial fit: extractor bottom state %d out of range", px.Bottom)
		}
		if len(px.LastOfTypeMS) != cp.NumEventTypes ||
			len(px.LastCellOfType) != cp.NumEventTypes ||
			len(px.SeenType) != cp.NumEventTypes {
			return fmt.Errorf("core: partial fit: extractor per-type arrays need %d entries", cp.NumEventTypes)
		}
		if px.Decided && len(px.Buf) != 0 {
			return fmt.Errorf("core: partial fit: decided extractor for UE %d still buffers events", px.UE)
		}
		sink := &partialSink{pf: pf, d: d, ue: px.UE, seq: px.Seq}
		x := newUEExtractor(pf.opt.Machine, sink)
		x.decided = px.Decided
		x.macro = cp.UEState(px.Macro)
		x.bottom = sm.State(px.Bottom)
		x.macroAt = cp.Millis(px.MacroAtMS)
		x.botAt = cp.Millis(px.BotAtMS)
		x.macroHas = px.MacroHas
		x.botHas = px.BotHas
		x.lastCell = px.LastCell
		for _, pe := range px.Buf {
			e, err := cp.ParseEventType(pe.Type)
			if err != nil {
				return fmt.Errorf("core: partial fit: %w", err)
			}
			x.buf = append(x.buf, trace.Event{T: cp.Millis(pe.TMS), UE: px.UE, Type: e})
		}
		for j := 0; j < cp.NumEventTypes; j++ {
			x.lastOfType[j] = cp.Millis(px.LastOfTypeMS[j])
			x.lastCellOfType[j] = px.LastCellOfType[j]
			x.seenType[j] = px.SeenType[j]
		}
		pf.exts[px.UE] = &ueFitState{ext: x, sink: sink}
	}
	return nil
}
