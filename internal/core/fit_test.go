package core

import (
	"bytes"
	"math"
	"testing"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

func mkEvents(ue cp.UEID, pairs ...interface{}) []trace.Event {
	var out []trace.Event
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, trace.Event{
			T:    cp.MillisFromSeconds(pairs[i].(float64)),
			UE:   ue,
			Type: pairs[i+1].(cp.EventType),
		})
	}
	return out
}

func TestExtractUETopAndBottom(t *testing.T) {
	m := sm.LTE2Level()
	evs := mkEvents(1,
		10.0, cp.Attach, // top: DEREG -> CONN (no sojourn: entry unknown? entry known after infer... first event has Has=false)
		15.0, cp.Handover, // bottom: SRV_REQ_S -HO-> HO_S, soj 5
		18.0, cp.Handover, // bottom: HO_S self, soj 3
		40.0, cp.S1ConnRelease, // top: CONN -> IDLE, soj 30
		100.0, cp.TrackingAreaUpdate, // bottom: S1_REL_S_1 -TAU->, soj 60
		101.0, cp.S1ConnRelease, // bottom: TAU_S_IDLE -S1REL->, soj 1 (no macro change!)
		400.0, cp.ServiceRequest, // top: IDLE -> CONN, soj 360
	)
	d := extractUE(m, 1, evs)
	if d.Violations != 0 {
		t.Fatalf("violations = %d", d.Violations)
	}
	// Top samples: ATCH (no sojourn), S1REL(conn, 30), SRVREQ(idle, 360).
	if len(d.Top) != 3 {
		t.Fatalf("top samples = %+v", d.Top)
	}
	if d.Top[0].Has {
		t.Fatal("first top sample should have no sojourn")
	}
	if d.Top[1].Key != (topKey{S: cp.StateConnected, E: cp.S1ConnRelease}) || d.Top[1].Soj != 30 {
		t.Fatalf("top[1] = %+v", d.Top[1])
	}
	if d.Top[2].Key != (topKey{S: cp.StateIdle, E: cp.ServiceRequest}) || d.Top[2].Soj != 360 {
		t.Fatalf("top[2] = %+v", d.Top[2])
	}
	// Bottom: HO(5), HO(3), TAU(60), S1REL(1).
	if len(d.Bot) != 4 {
		t.Fatalf("bottom samples = %+v", d.Bot)
	}
	wantBot := []struct {
		k   botKey
		soj float64
	}{
		{botKey{S: sm.LTESrvReqS, E: cp.Handover}, 5},
		{botKey{S: sm.LTEHoS, E: cp.Handover}, 3},
		{botKey{S: sm.LTES1RelS1, E: cp.TrackingAreaUpdate}, 60},
		{botKey{S: sm.LTETauSIdle, E: cp.S1ConnRelease}, 1},
	}
	for i, w := range wantBot {
		if d.Bot[i].Key != w.k || d.Bot[i].Soj != w.soj || !d.Bot[i].Has {
			t.Fatalf("bot[%d] = %+v, want %+v", i, d.Bot[i], w)
		}
	}
	// Counts land in hour 0.
	if d.Counts[0][cp.Handover] != 2 || d.Counts[0][cp.ServiceRequest] != 1 {
		t.Fatalf("counts = %v", d.Counts[0])
	}
	// First sample: one cell (hour 0), ATCH at offset 10.
	if len(d.First) != 1 || d.First[0].E != cp.Attach || d.First[0].Off != 10 {
		t.Fatalf("first = %+v", d.First)
	}
}

func TestExtractUEFirstEventCarriesPostState(t *testing.T) {
	m := sm.LTE2Level()
	// An idle UE whose first event of the hour is a periodic TAU: the
	// category must record TAU_S_IDLE, not TAU_S_CONN.
	evs := mkEvents(1,
		100.0, cp.S1ConnRelease, // hour 0: first event, enters IDLE
		4000.0, cp.TrackingAreaUpdate, // hour 1: first event, idle TAU
		4001.0, cp.S1ConnRelease,
	)
	d := extractUE(m, 1, evs)
	if len(d.First) != 2 {
		t.Fatalf("first samples = %+v", d.First)
	}
	if d.First[0].State != sm.LTES1RelS1 {
		t.Fatalf("first[0] state = %v", d.First[0].State)
	}
	if d.First[1].E != cp.TrackingAreaUpdate || d.First[1].State != sm.LTETauSIdle {
		t.Fatalf("first[1] = %+v, want idle TAU in TAU_S_IDLE", d.First[1])
	}
	if d.First[1].Off != 400 {
		t.Fatalf("first[1] offset = %v, want 400", d.First[1].Off)
	}
}

func TestExtractUEFirstPerHourCell(t *testing.T) {
	m := sm.LTE2Level()
	evs := mkEvents(1,
		10.0, cp.Attach,
		3700.0, cp.S1ConnRelease, // hour 1
		90000.0, cp.ServiceRequest, // day 2, hour 1 (25h = 90000s)
	)
	d := extractUE(m, 1, evs)
	if len(d.First) != 3 {
		t.Fatalf("first samples = %+v", d.First)
	}
	if d.First[1].Hour != 1 || d.First[1].Off != 100 {
		t.Fatalf("first[1] = %+v", d.First[1])
	}
	if d.First[2].Hour != 1 || d.First[2].Off != 0 {
		t.Fatalf("first[2] = %+v", d.First[2])
	}
}

func TestExtractUEFreeInterArrivals(t *testing.T) {
	m := sm.EMMECM()
	evs := mkEvents(1,
		0.0, cp.Attach,
		10.0, cp.Handover,
		25.0, cp.Handover,
		30.0, cp.S1ConnRelease,
	)
	d := extractUE(m, 1, evs)
	var hoIA []float64
	for _, s := range d.Free {
		if s.E == cp.Handover {
			hoIA = append(hoIA, s.IA)
		}
	}
	if len(hoIA) != 1 || hoIA[0] != 15 {
		t.Fatalf("HO inter-arrivals = %v", hoIA)
	}
	// EMM-ECM has no sub-structure: Category-2 events are not violations.
	if d.Violations != 0 {
		t.Fatalf("violations = %d", d.Violations)
	}
}

func TestHasSubStructure(t *testing.T) {
	if !hasSubStructure(sm.LTE2Level()) {
		t.Fatal("LTE2Level should have sub-structure")
	}
	if !hasSubStructure(sm.FiveGSA()) {
		t.Fatal("FiveGSA should have sub-structure (HO self-loop)")
	}
	if hasSubStructure(sm.EMMECM()) {
		t.Fatal("EMMECM should not have sub-structure")
	}
}

func TestFitProducesValidModel(t *testing.T) {
	tr := toyTrace(t, 60, 3*cp.Hour, 2)
	ms, err := Fit(tr, FitOptions{Cluster: clusterOptSmall()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if ms.MachineName != "LTE-2LEVEL" || ms.Method != "ours" {
		t.Fatalf("ms = %+v", ms)
	}
	// All three device types trained.
	for _, d := range cp.DeviceTypes {
		dm := ms.Device(d)
		if dm == nil {
			t.Fatalf("device %v missing", d)
		}
		if dm.TrainUEs != 20 {
			t.Fatalf("device %v trained on %d UEs", d, dm.TrainUEs)
		}
		if math.Abs(dm.Share-1.0/3) > 1e-9 {
			t.Fatalf("share = %v", dm.Share)
		}
		if len(dm.Hours) != HoursPerDay {
			t.Fatalf("hours = %d", len(dm.Hours))
		}
		if dm.Global == nil {
			t.Fatal("global fallback missing")
		}
		// Persona weights sum to 1 (checked by Validate too).
		var w float64
		for _, p := range dm.Personas {
			w += p.Weight
		}
		if math.Abs(w-1) > 1e-9 {
			t.Fatalf("persona weights sum to %v", w)
		}
	}
	if ms.NumModels() == 0 {
		t.Fatal("no cluster models instantiated")
	}
}

func TestFitGlobalModelCoversActiveHours(t *testing.T) {
	tr := toyTrace(t, 30, 2*cp.Hour, 3)
	ms, err := Fit(tr, FitOptions{Cluster: clusterOptSmall()})
	if err != nil {
		t.Fatal(err)
	}
	dm := ms.Device(cp.Phone)
	// Hours 0 and 1 have data; hour 5 does not, so lookups there must
	// fall back to the global model.
	if got := dm.topParams(5, 0, cp.StateIdle); got == nil {
		t.Fatal("hour-5 lookup did not fall back to global")
	}
	// The global model knows IDLE -> SRV_REQ.
	found := false
	for _, tp := range dm.Global.Top[cp.StateIdle].Out {
		if tp.Event == cp.ServiceRequest {
			found = true
		}
	}
	if !found {
		t.Fatal("global model lacks IDLE->SRV_REQ")
	}
}

func TestFitBaseUsesFreeProcesses(t *testing.T) {
	tr := toyTrace(t, 45, 3*cp.Hour, 4)
	ms, err := Fit(tr, FitOptions{
		Machine:      sm.EMMECM(),
		SojournKind:  SojournExp,
		FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
		NoClustering: true,
		Method:       "base",
	})
	if err != nil {
		t.Fatal(err)
	}
	dm := ms.Device(cp.ConnectedCar)
	if dm == nil {
		t.Fatal("no car model")
	}
	// The global model must have HO and TAU free processes.
	if len(dm.Global.Free) == 0 {
		t.Fatal("no free processes in base model")
	}
	seen := map[cp.EventType]bool{}
	for _, fp := range dm.Global.Free {
		seen[fp.Event] = true
		if fp.Inter.Kind != SojournExp && fp.Inter.Kind != SojournConst {
			t.Fatalf("free process kind = %q", fp.Inter.Kind)
		}
	}
	if !seen[cp.Handover] {
		t.Fatal("HO free process missing")
	}
	// No bottom structure for EMM-ECM models.
	for h := range dm.Hours {
		for _, cm := range dm.Hours[h].Clusters {
			if cm.Bottom != nil {
				t.Fatal("EMM-ECM model has bottom structure")
			}
		}
	}
	// Exactly one cluster per hour (NoClustering).
	for h := range dm.Hours {
		if len(dm.Hours[h].Clusters) != 1 {
			t.Fatalf("hour %d has %d clusters", h, len(dm.Hours[h].Clusters))
		}
	}
}

// TestFitDeterministicAcrossWorkers requires the serialized model to be
// byte-identical regardless of the fitting worker count (the same
// discipline as TestGenerateDeterministicAcrossWorkers in
// internal/world): Workers only changes the wall clock.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	tr := toyTrace(t, 48, 3*cp.Hour, 7)
	fits := []FitOptions{
		{Cluster: clusterOptSmall()}, // "ours": two-level + quantile tables
		{Machine: sm.EMMECM(), SojournKind: SojournExp,
			FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
			NoClustering: true, Method: "base"}, // exercises CensoredExpMLE summation
	}
	for _, base := range fits {
		var want []byte
		for _, w := range []int{1, 2, 8} {
			opt := base
			opt.Workers = w
			ms, err := Fit(tr, opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ms.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("method %q: model JSON differs between Workers=1 and Workers=%d (%d vs %d bytes)",
					base.Method, w, len(want), buf.Len())
			}
		}
	}
}

func TestFitEmptyTraceFails(t *testing.T) {
	if _, err := Fit(trace.New(), FitOptions{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestFitFirstEventModel(t *testing.T) {
	tr := toyTrace(t, 60, 2*cp.Hour, 5)
	ms, err := Fit(tr, FitOptions{Cluster: clusterOptSmall()})
	if err != nil {
		t.Fatal(err)
	}
	dm := ms.Device(cp.Phone)
	fe, ok := dm.firstEvent(0, 0)
	if !ok {
		t.Fatal("no first-event model for hour 0")
	}
	var sum float64
	for _, c := range fe.Cats {
		sum += c.P
		if int(c.State) >= sm.NumLTEStates {
			t.Fatalf("category state out of range: %+v", c)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("first-event probs sum to %v", sum)
	}
	if fe.PNone < 0 || fe.PNone >= 1 {
		t.Fatalf("PNone = %v", fe.PNone)
	}
	if !fe.Offset.Valid() {
		t.Fatal("offset model invalid")
	}
}

// clusterOptSmall scales the paper's thresholds down to test populations.
func clusterOptSmall() cluster.Options {
	return cluster.Options{ThetaN: 8}
}
