package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// fitToy fits a model on a toy world trace.
func fitToy(t testing.TB, nUEs int, dur cp.Millis, seed uint64, opt FitOptions) *ModelSet {
	t.Helper()
	if opt.Cluster.ThetaN == 0 {
		opt.Cluster = clusterOptSmall()
	}
	tr := toyTrace(t, nUEs, dur, seed)
	ms, err := Fit(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestGenerateBasics(t *testing.T) {
	ms := fitToy(t, 60, 3*cp.Hour, 10, FitOptions{})
	gen, err := Generate(ms, GenOptions{NumUEs: 100, StartHour: 0, Duration: cp.Hour, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	if !gen.Sorted() {
		t.Fatal("generated trace not sorted")
	}
	if gen.NumUEs() != 100 {
		t.Fatalf("NumUEs = %d", gen.NumUEs())
	}
	if gen.Len() == 0 {
		t.Fatal("no events generated")
	}
	lo, hi := gen.Span()
	if lo < 0 || hi > cp.Hour+1 {
		t.Fatalf("span = [%d,%d)", lo, hi)
	}
}

func TestGenerateStartHourWindow(t *testing.T) {
	ms := fitToy(t, 60, 6*cp.Hour, 11, FitOptions{})
	gen, err := Generate(ms, GenOptions{NumUEs: 50, StartHour: 2, Duration: 2 * cp.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := gen.Span()
	if lo < 2*cp.Hour || hi > 4*cp.Hour+1 {
		t.Fatalf("span = [%d,%d), want within [2h,4h)", lo, hi)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ms := fitToy(t, 40, 2*cp.Hour, 12, FitOptions{})
	a, err := Generate(ms, GenOptions{NumUEs: 60, Duration: cp.Hour, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ms, GenOptions{NumUEs: 60, Duration: cp.Hour, Seed: 99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("generation depends on worker count")
	}
	if !reflect.DeepEqual(a.Device, b.Device) {
		t.Fatal("device assignment depends on worker count")
	}
	c, err := Generate(ms, GenOptions{NumUEs: 60, Duration: cp.Hour, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratedTraceIsProtocolConformant(t *testing.T) {
	// The defining claim of the two-level model: generated traces follow
	// the two-level machine (per UE), so e.g. HO never fires in IDLE.
	ms := fitToy(t, 60, 4*cp.Hour, 13, FitOptions{})
	gen, err := Generate(ms, GenOptions{NumUEs: 200, Duration: 2 * cp.Hour, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := sm.LTE2Level()
	totalViolations := 0
	for _, evs := range gen.PerUE() {
		if len(evs) == 0 {
			continue
		}
		res := sm.Replay(m, sm.InferInitial(m, evs), evs)
		totalViolations += res.Violations
	}
	if totalViolations != 0 {
		t.Fatalf("generated trace has %d protocol violations", totalViolations)
	}
}

func TestGeneratedBreakdownTracksSource(t *testing.T) {
	// Macroscopic fidelity at toy scale: per-event-type shares of the
	// generated trace within 10 percentage points of the source.
	src := toyTrace(t, 90, 4*cp.Hour, 14)
	ms, err := Fit(src, FitOptions{Cluster: clusterOptSmall()})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(ms, GenOptions{NumUEs: 300, Duration: 4 * cp.Hour, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	srcC, genC := src.CountByType(), gen.CountByType()
	srcN, genN := src.Len(), gen.Len()
	if genN == 0 {
		t.Fatal("no events")
	}
	for _, e := range cp.EventTypes {
		s := float64(srcC[e]) / float64(srcN)
		g := float64(genC[e]) / float64(genN)
		if math.Abs(s-g) > 0.10 {
			t.Errorf("%v share: source %.3f vs generated %.3f", e, s, g)
		}
	}
}

func TestGenerateScalesPopulation(t *testing.T) {
	// 10x the training population, per-UE volume should stay comparable.
	ms := fitToy(t, 30, 2*cp.Hour, 15, FitOptions{})
	small, err := Generate(ms, GenOptions{NumUEs: 30, Duration: cp.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(ms, GenOptions{NumUEs: 300, Duration: cp.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	perSmall := float64(small.Len()) / 30
	perBig := float64(big.Len()) / 300
	if perSmall == 0 || perBig == 0 {
		t.Fatal("no events")
	}
	ratio := perBig / perSmall
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("per-UE volume changed with population: %.1f vs %.1f", perSmall, perBig)
	}
}

func TestGenerateBaseEmitsHOInIdle(t *testing.T) {
	// The Base method must exhibit the paper's failure mode: HO events
	// while IDLE, which the two-level model never produces.
	src := toyTrace(t, 90, 3*cp.Hour, 16)
	base, err := Fit(src, FitOptions{
		Machine:      sm.EMMECM(),
		SojournKind:  SojournExp,
		FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
		NoClustering: true,
		Method:       "base",
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(base, GenOptions{NumUEs: 200, Duration: 2 * cp.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hoIdle := 0
	for _, evs := range gen.PerUE() {
		if len(evs) == 0 {
			continue
		}
		b := sm.MacroBreakdown(evs, sm.InferMacroInitial(evs))
		hoIdle += b[cp.Handover][cp.StateIdle]
	}
	if hoIdle == 0 {
		t.Fatal("base method produced no HO in IDLE — free processes not running")
	}
}

func TestGenerateOptionValidation(t *testing.T) {
	ms := fitToy(t, 20, cp.Hour, 17, FitOptions{})
	if _, err := Generate(ms, GenOptions{NumUEs: 0, Duration: cp.Hour}); err == nil {
		t.Fatal("NumUEs=0 accepted")
	}
	if _, err := Generate(ms, GenOptions{NumUEs: 1, StartHour: 24, Duration: cp.Hour}); err == nil {
		t.Fatal("StartHour=24 accepted")
	}
	if _, err := Generate(ms, GenOptions{NumUEs: 1, Duration: 0}); err == nil {
		t.Fatal("Duration=0 accepted")
	}
	if _, err := Generate(ms, GenOptions{NumUEs: 1, Duration: cp.Hour, DeviceMix: []float64{1}}); err == nil {
		t.Fatal("short DeviceMix accepted")
	}
	if _, err := Generate(ms, GenOptions{NumUEs: 1, Duration: cp.Hour, DeviceMix: []float64{0, 0, 0}}); err == nil {
		t.Fatal("zero DeviceMix accepted")
	}
}

func TestGenerateDeviceMixOverride(t *testing.T) {
	ms := fitToy(t, 60, 2*cp.Hour, 18, FitOptions{})
	gen, err := Generate(ms, GenOptions{
		NumUEs:    300,
		Duration:  cp.Hour,
		Seed:      4,
		DeviceMix: []float64{1, 0, 0}, // phones only
	})
	if err != nil {
		t.Fatal(err)
	}
	for ue, d := range gen.Device {
		if d != cp.Phone {
			t.Fatalf("UE %d is %v, want phone", ue, d)
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ms := fitToy(t, 30, 2*cp.Hour, 19, FitOptions{})
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Generation from the loaded model must match exactly.
	a, err := Generate(ms, GenOptions{NumUEs: 40, Duration: cp.Hour, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(got, GenOptions{NumUEs: 40, Duration: cp.Hour, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("loaded model generates differently")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"machine":"NOPE","devices":[]}`))); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	ms := fitToy(t, 20, cp.Hour, 20, FitOptions{})
	// Corrupt a probability.
	dm := ms.Device(cp.Phone)
	for h := range dm.Hours {
		for c := range dm.Hours[h].Clusters {
			cm := &dm.Hours[h].Clusters[c]
			for s := range cm.Top {
				if len(cm.Top[s].Out) > 0 {
					cm.Top[s].Out[0].P = 5
					if err := ms.Validate(); err == nil {
						t.Fatal("corrupted probability accepted")
					}
					return
				}
			}
		}
	}
	t.Skip("no transitions to corrupt")
}

func TestNumModels(t *testing.T) {
	ms := fitToy(t, 45, 2*cp.Hour, 21, FitOptions{})
	n := ms.NumModels()
	// 3 device types x 24 hours x >=1 cluster.
	if n < 3*24 {
		t.Fatalf("NumModels = %d", n)
	}
}

func TestGenerateFiveGSAModel(t *testing.T) {
	// A 5G SA model (fitted via the SA machine on a TAU-free trace)
	// generates with no TAU at all.
	src := toyTrace(t, 60, 3*cp.Hour, 22)
	// Drop TAU events to make the trace 5G-SA-like (the fiveg package
	// does this properly; here we exercise the machinery).
	sa := trace.New()
	for ue, d := range src.Device {
		sa.SetDevice(ue, d)
	}
	for _, e := range src.Events {
		if e.Type != cp.TrackingAreaUpdate {
			sa.Events = append(sa.Events, e)
		}
	}
	ms, err := Fit(sa, FitOptions{Machine: sm.FiveGSA(), Cluster: clusterOptSmall(), Method: "5g-sa"})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(ms, GenOptions{NumUEs: 100, Duration: cp.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c := gen.CountByType(); c[cp.TrackingAreaUpdate] != 0 {
		t.Fatalf("5G SA generated %d TAU events", c[cp.TrackingAreaUpdate])
	}
	if gen.Len() == 0 {
		t.Fatal("no events")
	}
}
