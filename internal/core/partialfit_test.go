package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// partialFitOptVariants are the option sets the sharding tests sweep:
// the paper method, the free-process baseline, and bounded-memory mode.
func partialFitOptVariants() []FitOptions {
	return []FitOptions{
		{Cluster: clusterOptSmall()},
		{Machine: sm.EMMECM(), SojournKind: SojournExp,
			FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
			NoClustering: true, Method: "base"},
		{Cluster: clusterOptSmall(), SketchK: 64, Method: "v2"},
	}
}

// shardPartials fits one PartialFit per hash shard of tr.
func shardPartials(t *testing.T, tr *trace.Trace, shards int, opt FitOptions) []*PartialFit {
	t.Helper()
	parts := make([]*PartialFit, shards)
	for s := range parts {
		pf, err := NewPartialFit(opt)
		if err != nil {
			t.Fatal(err)
		}
		src, err := trace.ShardSource(tr, shards, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.AddSource(src); err != nil {
			t.Fatal(err)
		}
		parts[s] = pf
	}
	return parts
}

func mergeAndBuild(t *testing.T, parts []*PartialFit, order []int) []byte {
	t.Helper()
	root := parts[order[0]]
	for _, i := range order[1:] {
		if err := root.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := root.Build()
	if err != nil {
		t.Fatal(err)
	}
	return modelBytes(t, ms)
}

// TestShardedFitMatchesUnsharded is the tentpole property: fitting N
// hash shards independently and merging the partials — in any order or
// grouping — produces byte-identical model JSON to the unsharded fit,
// for exact and sketched modes alike, at any worker count.
func TestShardedFitMatchesUnsharded(t *testing.T) {
	traces := map[string]*trace.Trace{
		"toy":  toyTrace(t, 48, 3*cp.Hour, 7),
		"edge": edgeTrace(t),
	}
	const shards = 4
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	for name, tr := range traces {
		for _, base := range partialFitOptVariants() {
			for _, w := range []int{1, 8} {
				opt := base
				opt.Workers = w
				ref, err := Fit(tr, opt)
				if err != nil {
					t.Fatal(err)
				}
				want := modelBytes(t, ref)
				for _, order := range orders {
					got := mergeAndBuild(t, shardPartials(t, tr, shards, opt), order)
					if !bytes.Equal(want, got) {
						t.Fatalf("%s method=%q sketch=%d workers=%d: merge order %v differs from unsharded",
							name, opt.Method, opt.SketchK, w, order)
					}
				}
				// Tree merge: (0+1) + (2+3).
				parts := shardPartials(t, tr, shards, opt)
				if err := parts[0].Merge(parts[1]); err != nil {
					t.Fatal(err)
				}
				if err := parts[2].Merge(parts[3]); err != nil {
					t.Fatal(err)
				}
				if err := parts[0].Merge(parts[2]); err != nil {
					t.Fatal(err)
				}
				ms, err := parts[0].Build()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, modelBytes(t, ms)) {
					t.Fatalf("%s method=%q sketch=%d workers=%d: tree merge differs from unsharded",
						name, opt.Method, opt.SketchK, w)
				}
			}
		}
	}
}

// TestPartialFitCheckpointResume kills a fit mid-scan at a checkpoint,
// restores the partial from the checkpoint bytes, resumes the same
// source, and requires the final model to be byte-identical to the
// uninterrupted fit — for exact and sketched modes.
func TestPartialFitCheckpointResume(t *testing.T) {
	tr := toyTrace(t, 48, 3*cp.Hour, 7)
	for _, base := range partialFitOptVariants() {
		opt := base
		opt.Workers = 1
		ref, err := Fit(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := modelBytes(t, ref)

		pf, err := NewPartialFit(opt)
		if err != nil {
			t.Fatal(err)
		}
		killed := errors.New("killed")
		var ckpt bytes.Buffer
		nCkpt := 0
		err = pf.AddSourceWithCheckpoints(tr, 500, func(consumed int64) error {
			nCkpt++
			ckpt.Reset()
			if err := pf.Encode(&ckpt); err != nil {
				return err
			}
			if nCkpt == 3 {
				return killed // simulate the process dying right after a checkpoint
			}
			return nil
		})
		if !errors.Is(err, killed) {
			t.Fatalf("method=%q: scan ended with %v, want the kill sentinel", opt.Method, err)
		}
		if nCkpt != 3 {
			t.Fatalf("method=%q: %d checkpoints, want 3", opt.Method, nCkpt)
		}

		resumed, err := DecodePartial(bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if resumed.EventsConsumed() != 1500 {
			t.Fatalf("method=%q: checkpoint consumed %d events, want 1500", opt.Method, resumed.EventsConsumed())
		}
		if err := resumed.AddSource(tr); err != nil {
			t.Fatal(err)
		}
		ms, err := resumed.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, modelBytes(t, ms)) {
			t.Fatalf("method=%q: resumed fit differs from uninterrupted fit", opt.Method)
		}
	}
}

// TestPartialCodecRoundTrip: a mid-scan or completed partial encodes to
// one canonical byte stream that survives decode/encode byte-for-byte,
// and the decoded partial builds the same model as the original fit.
// The edge trace keeps one extractor undecided to the end (an HO-only
// UE), so the in-flight buffered-prefix state is on the wire too.
func TestPartialCodecRoundTrip(t *testing.T) {
	tr := edgeTrace(t)
	for _, base := range partialFitOptVariants() {
		opt := base
		opt.Workers = 1
		pf, err := NewPartialFit(opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.AddSource(tr); err != nil {
			t.Fatal(err)
		}
		var b1 bytes.Buffer
		if err := pf.Encode(&b1); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodePartial(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := decoded.Encode(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("method=%q: encode/decode/encode not byte-stable", opt.Method)
		}
		ref, err := Fit(tr, opt)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := decoded.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(modelBytes(t, ref), modelBytes(t, ms)) {
			t.Fatalf("method=%q: decoded partial builds a different model", opt.Method)
		}
	}
}

// TestPartialCodecStrict: the decoder rejects unknown fields, unknown
// tags and names, broken canonical orders, and inconsistent columns.
func TestPartialCodecStrict(t *testing.T) {
	tr := edgeTrace(t)
	pf, err := NewPartialFit(FitOptions{Cluster: clusterOptSmall()})
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.AddSource(tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pf.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	canonical := buf.Bytes()

	tamper := func(mut func(doc map[string]any)) []byte {
		var doc map[string]any
		if err := json.Unmarshal(canonical, &doc); err != nil {
			t.Fatal(err)
		}
		mut(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	dev := func(doc map[string]any) map[string]any {
		return doc["devices"].([]any)[0].(map[string]any)
	}
	cases := map[string][]byte{
		"unknown field": tamper(func(d map[string]any) { d["surprise"] = 1 }),
		"bad format":    tamper(func(d map[string]any) { d["format"] = "partialfit/99" }),
		"bad machine":   tamper(func(d map[string]any) { d["options"].(map[string]any)["machine"] = "NOPE" }),
		"bad sojourn":   tamper(func(d map[string]any) { d["options"].(map[string]any)["sojourn_kind"] = "gamma" }),
		"short theta_f": tamper(func(d map[string]any) { d["options"].(map[string]any)["theta_f"] = []any{1.0} }),
		"bad consumed":  tamper(func(d map[string]any) { d["events_consumed"] = -2 }),
		"bad device":    tamper(func(d map[string]any) { dev(d)["device"] = "toaster" }),
		"unsorted ues":  tamper(func(d map[string]any) { ues := dev(d)["ues"].([]any); ues[0], ues[1] = ues[1], ues[0] }),
		"count columns": tamper(func(d map[string]any) { c := dev(d)["counts"].(map[string]any); c["n"] = c["n"].([]any)[1:] }),
		"bad pool kind": tamper(func(d map[string]any) { dev(d)["pools"].([]any)[0].(map[string]any)["kind"] = "median" }),
		"bad pool hour": tamper(func(d map[string]any) { dev(d)["pools"].([]any)[0].(map[string]any)["hour"] = 24 }),
		"exact moments": tamper(func(d map[string]any) {
			dev(d)["moments"] = []any{map[string]any{"ue": dev(d)["ues"].([]any)[0], "hour": 0, "count": 2, "mean": 1.0, "m2": 1.0}}
		}),
		"extractor array": tamper(func(d map[string]any) {
			x := dev(d)["extractors"].([]any)[0].(map[string]any)
			x["seen_type"] = x["seen_type"].([]any)[1:]
		}),
	}
	for name, doc := range cases {
		if _, err := DecodePartial(bytes.NewReader(doc)); err == nil {
			t.Errorf("%s: decoder accepted the tampered document", name)
		}
	}
	// The canonical document itself must still decode.
	if _, err := DecodePartial(bytes.NewReader(canonical)); err != nil {
		t.Fatalf("canonical document rejected: %v", err)
	}
}

// TestPartialFitMergeRejects pins the merge misuse errors.
func TestPartialFitMergeRejects(t *testing.T) {
	tr := toyTrace(t, 12, 2*cp.Hour, 3)
	mk := func(opt FitOptions) *PartialFit {
		pf, err := NewPartialFit(opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.AddSource(tr); err != nil {
			t.Fatal(err)
		}
		return pf
	}
	opt := FitOptions{Cluster: clusterOptSmall()}
	a := mk(opt)
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge accepted")
	}
	if err := a.Merge(mk(FitOptions{Cluster: clusterOptSmall(), SketchK: 8})); err == nil {
		t.Fatal("sketch-k mismatch accepted")
	}
	if err := a.Merge(mk(FitOptions{Cluster: clusterOptSmall(), Method: "base"})); err == nil {
		t.Fatal("method mismatch accepted")
	}
	if err := a.Merge(mk(opt)); err == nil {
		t.Fatal("overlapping UE sets accepted")
	}

	// Disjoint halves merge fine; a merged partial refuses sources, and
	// built partials refuse everything.
	shards := shardPartials(t, tr, 2, opt)
	if err := shards[0].Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if shards[0].EventsConsumed() != -1 {
		t.Fatalf("merged partial consumed=%d, want -1", shards[0].EventsConsumed())
	}
	if err := shards[0].AddSource(tr); err == nil {
		t.Fatal("merged partial accepted a source")
	}
	if _, err := shards[0].Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := shards[0].Build(); err == nil {
		t.Fatal("second Build accepted")
	}
	if err := shards[0].Merge(mk(opt)); err == nil {
		t.Fatal("merge into built partial accepted")
	}
}

// TestPartialFitRegistrationErrors pins the ingestion misuse errors.
func TestPartialFitRegistrationErrors(t *testing.T) {
	pf, err := NewPartialFit(FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.AddDevice(1, cp.Phone); err != nil {
		t.Fatal(err)
	}
	if err := pf.AddDevice(1, cp.Phone); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := pf.AddDevice(2, cp.DeviceType(250)); err == nil {
		t.Fatal("invalid device type accepted")
	}
	if err := pf.AddEvent(trace.Event{T: 1, UE: 99, Type: cp.Attach}); err == nil {
		t.Fatal("event for unregistered UE accepted")
	}
	if _, err := NewPartialFit(FitOptions{SketchK: -1}); err == nil {
		t.Fatal("negative SketchK accepted")
	}
	empty, err := NewPartialFit(FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Build(); err == nil {
		t.Fatal("empty build accepted")
	}
}

// TestFitSketchedErrorBound: on the bounded-memory workload, every pool
// the sketch actually truncates stays within the documented DKW bound
// of the exact pool's ECDF — measured pool by pool against the exact
// partial's retained samples.
func TestFitSketchedErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("bound measurement skipped in -short mode")
	}
	tr := toyTrace(t, 256, 24*cp.Hour, 11)
	const k = 64
	eps := stats.SketchErrorBound(k)

	fill := func(opt FitOptions) *PartialFit {
		pf, err := NewPartialFit(opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.AddSource(tr); err != nil {
			t.Fatal(err)
		}
		return pf
	}
	exact := fill(FitOptions{Cluster: clusterOptSmall(), Workers: 1})
	sketched := fill(FitOptions{Cluster: clusterOptSmall(), Workers: 1, SketchK: k})

	truncated := 0
	for _, d := range cp.DeviceTypes {
		edp, sdp := exact.devs[d], sketched.devs[d]
		if edp == nil {
			continue
		}
		for key, ep := range edp.pools {
			if len(ep.items) <= k {
				continue
			}
			truncated++
			sp := sdp.pools[key]
			if sp == nil || sp.sk == nil {
				t.Fatalf("pool %+v missing or unsketched in sketched partial", key)
			}
			if sp.sk.Len() != k {
				t.Fatalf("pool %+v retained %d, want %d", key, sp.sk.Len(), k)
			}
			ev := make([]float64, len(ep.items))
			for i, it := range ep.items {
				ev[i] = it.v
			}
			if dist := stats.MaxYDistance(sp.sk.Values(), ev); dist > eps {
				t.Errorf("pool %+v: K-S distance %v exceeds bound %v (n=%d)", key, dist, eps, len(ev))
			}
		}
	}
	if truncated == 0 {
		t.Fatal("no pool exceeded k — the bound was never exercised; shrink k or grow the workload")
	}
	t.Logf("checked %d truncated pools against eps=%.3f", truncated, eps)
}

// TestFitSketchedBoundedMemory: bounded-memory mode must peak below the
// exact streamed fit on the same workload — the sample pools are the
// exact fit's unbounded term, and the sketch caps them at k items each.
func TestFitSketchedBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile run skipped in -short mode")
	}
	tr := toyTrace(t, 256, 24*cp.Hour, 11)
	path := traceFile(t, tr)

	run := func(opt FitOptions) uint64 {
		return peakHeap(func() {
			src, err := trace.NewFileSource(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := FitStream(src, opt); err != nil {
				t.Fatal(err)
			}
		})
	}
	exactPeak := run(FitOptions{Cluster: clusterOptSmall(), Workers: 1})
	sketchPeak := run(FitOptions{Cluster: clusterOptSmall(), Workers: 1, SketchK: 64})
	t.Logf("peak heap growth: exact %.1f MiB, sketched %.1f MiB (%.0f%%)",
		float64(exactPeak)/(1<<20), float64(sketchPeak)/(1<<20),
		100*float64(sketchPeak)/float64(exactPeak))
	if sketchPeak >= exactPeak {
		t.Fatalf("sketched fit peak (%d B) not below exact streamed peak (%d B)", sketchPeak, exactPeak)
	}
}
