package core

import (
	"sort"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// FitOptions configures the model-fitting pipeline.
type FitOptions struct {
	// Machine is the protocol state machine to fit against; nil means
	// the LTE two-level machine.
	Machine *sm.Machine
	// SojournKind selects the sojourn distribution family: SojournTable
	// (the paper's method, default) or SojournExp (the V2 ablation and
	// the Poisson baselines).
	SojournKind string
	// FreeEvents lists event types modeled as free-running processes
	// instead of sub-machine transitions; the Base and V1 methods use
	// {HO, TAU} with the flat EMM-ECM machine.
	FreeEvents []cp.EventType
	// NoClustering disables adaptive clustering (the Base method): all
	// UEs of a device type form a single cluster.
	NoClustering bool
	// Cluster configures the adaptive clustering scheme (§5.3).
	Cluster cluster.Options
	// Method is a label stored in the model ("ours", "base", "v1", "v2").
	Method string
	// Workers bounds fitting concurrency; 0 means GOMAXPROCS. It never
	// affects the fitted model, only the wall clock: the independent
	// per-UE and per-(hour, cluster) fit units are distributed over the
	// pool deterministically and merged in serial order (DESIGN.md
	// decision 2, the same discipline as GenOptions.Workers).
	Workers int
	// SketchK, when positive, puts the fit in bounded-memory mode: every
	// sojourn/inter-arrival sample pool keeps at most SketchK
	// observations in a mergeable bottom-k sketch (stats.Sketch) instead
	// of an exact list, with quantile error bounded by
	// stats.SketchErrorBound(SketchK). Sketched fits remain
	// byte-deterministic — and byte-identical sharded vs unsharded — but
	// intentionally diverge from SketchK == 0 (exact) fits.
	SketchK int
}

func (o FitOptions) withDefaults() FitOptions {
	if o.Machine == nil {
		o.Machine = sm.LTE2Level()
	}
	if o.SojournKind == "" {
		o.SojournKind = SojournTable
	}
	if o.Method == "" {
		o.Method = "ours"
	}
	return o
}

// HoursPerDay is the number of hour-of-day buckets models are fitted for.
const HoursPerDay = 24

// Fit estimates a complete ModelSet from a control-plane trace: it
// replays every UE through the machine's hierarchy, clusters UEs per
// (hour-of-day, device type), and fits transition probabilities, sojourn
// distributions, free processes, and first-event models for every
// (cluster, hour, device type) combination.
//
// Fit is a thin driver over PartialFit — the one construction path all
// fits share: NewPartialFit, one AddSource over the trace, Build.
func Fit(tr *trace.Trace, opt FitOptions) (*ModelSet, error) {
	return fitSource(tr, opt)
}

// --- per-UE extraction ---

type topKey struct {
	S cp.UEState
	E cp.EventType
}

type botKey struct {
	S sm.State
	E cp.EventType
}

type topSample struct {
	Hour uint8
	Key  topKey
	Soj  float64
	Has  bool
}

type botSample struct {
	Hour uint8
	Key  botKey
	Soj  float64
	Has  bool
}

type iaSample struct {
	Hour uint8
	E    cp.EventType
	IA   float64
}

type firstSample struct {
	Hour  uint8
	E     cp.EventType
	State sm.State // machine state right after the event
	Off   float64  // seconds within the hour
}

// firstCatKey keys first-event categories by (event, post-state).
type firstCatKey struct {
	E cp.EventType
	S sm.State
}

// censorSample records that a visit to a top-level state ended while the
// bottom level sat in state S with no sub-machine event having fired for
// Dur seconds — a right-censored bottom sojourn (competing risks).
type censorSample struct {
	Hour uint8
	S    sm.State
	Dur  float64
}

type ueData struct {
	UE         cp.UEID
	Counts     [HoursPerDay][cp.NumEventTypes]int
	Top        []topSample
	Bot        []botSample
	BotCensor  []censorSample
	Free       []iaSample
	First      []firstSample
	Violations int
}

// sampleSink receives the samples extracted from one UE's event stream.
// ueData implements it by appending (the in-memory reference); FitStream
// routes samples straight into per-(hour, cluster) accumulators without
// materializing per-UE slices.
type sampleSink interface {
	countEvent(h int, e cp.EventType)
	top(s topSample)
	bot(s botSample)
	botCensor(s censorSample)
	free(s iaSample)
	first(s firstSample)
	violation()
}

func (d *ueData) countEvent(h int, e cp.EventType) { d.Counts[h][e]++ }
func (d *ueData) top(s topSample)                  { d.Top = append(d.Top, s) }
func (d *ueData) bot(s botSample)                  { d.Bot = append(d.Bot, s) }
func (d *ueData) botCensor(s censorSample)         { d.BotCensor = append(d.BotCensor, s) }
func (d *ueData) free(s iaSample)                  { d.Free = append(d.Free, s) }
func (d *ueData) first(s firstSample)              { d.First = append(d.First, s) }
func (d *ueData) violation()                       { d.Violations++ }

// extractUE walks one UE's time-ordered events, tracking the two levels
// of the machine concurrently, and collects every sample the fitting
// stage needs.
func extractUE(m *sm.Machine, ue cp.UEID, evs []trace.Event) *ueData {
	d := &ueData{UE: ue}
	x := newUEExtractor(m, d)
	for _, ev := range evs {
		x.push(ev)
	}
	x.finish()
	return d
}

// ueExtractor is the push-based form of the extraction walk: events
// arrive one at a time (in the UE's time order) and samples leave through
// the sink as soon as they are determined. Because the initial macro
// state is inferred from the first Category-1 event, the extractor buffers
// the (typically empty) Category-2 prefix until that event arrives and
// replays it; a UE with no Category-1 events at all is resolved at
// finish. Both paths call sm.InferMacroInitial on exactly the events that
// decide it, so the state walk — and every emitted sample — is identical
// to the batch extraction.
type ueExtractor struct {
	m    *sm.Machine
	sink sampleSink

	decided bool
	buf     []trace.Event // prefix held until the initial macro state is known

	macro            cp.UEState
	bottom           sm.State
	macroAt, botAt   cp.Millis
	macroHas, botHas bool

	lastOfType     [cp.NumEventTypes]cp.Millis
	lastCellOfType [cp.NumEventTypes]int
	seenType       [cp.NumEventTypes]bool
	lastCell       int
}

func newUEExtractor(m *sm.Machine, sink sampleSink) *ueExtractor {
	return &ueExtractor{m: m, sink: sink, lastCell: -1}
}

// push feeds the next event of this UE's time-ordered stream.
func (x *ueExtractor) push(ev trace.Event) {
	if !x.decided {
		x.buf = append(x.buf, ev)
		if sm.Category1(ev.Type) {
			x.start()
		}
		return
	}
	x.step(ev)
}

// finish flushes a stream that never produced a Category-1 event. It must
// be called exactly once after the last push.
func (x *ueExtractor) finish() {
	if !x.decided {
		x.start()
	}
}

// start resolves the initial macro state from the buffered prefix and
// replays it through the walk.
func (x *ueExtractor) start() {
	x.decided = true
	x.macro = sm.InferMacroInitial(x.buf)
	x.bottom = x.m.SubEntry(x.macro)
	for _, ev := range x.buf {
		x.step(ev)
	}
	x.buf = nil
}

// step is the extraction walk body, one event at a time.
func (x *ueExtractor) step(ev trace.Event) {
	m := x.m
	t := ev.T
	h := t.HourOfDay()
	if h >= 0 && h < HoursPerDay && ev.Type.Valid() {
		x.sink.countEvent(h, ev.Type)
	}
	// First event per (day, hour) cell; the post-event machine
	// state is filled in after the classification below.
	cell := t.HourIndex()
	isFirstOfCell := cell != x.lastCell
	x.lastCell = cell
	// Inter-arrival per event type (for free-process fitting). The
	// paper preprocesses the trace into non-overlapping 1-hour
	// intervals, so gaps never span interval boundaries — which is
	// precisely what makes the Base method's fitted HO/TAU rates
	// reflect only busy movers and explode at generation time.
	if x.seenType[ev.Type] && x.lastCellOfType[ev.Type] == cell {
		x.sink.free(iaSample{Hour: uint8(h), E: ev.Type, IA: (t - x.lastOfType[ev.Type]).Seconds()})
	}
	x.lastOfType[ev.Type] = t
	x.lastCellOfType[ev.Type] = cell
	x.seenType[ev.Type] = true

	if sm.Category1(ev.Type) {
		next := macroNext(ev.Type)
		if next != x.macro {
			// Top-level transition. Sojourn samples are attributed
			// to the hour the state was entered (the generator draws
			// the sojourn at entry time), falling back to the event
			// hour when the entry is unknown.
			sampleHour := uint8(h)
			if x.macroHas {
				sampleHour = uint8(x.macroAt.HourOfDay())
			}
			x.sink.top(topSample{
				Hour: sampleHour,
				Key:  topKey{S: x.macro, E: ev.Type},
				Soj:  (t - x.macroAt).Seconds(),
				Has:  x.macroHas,
			})
			// The bottom level's sojourn-in-progress is right-
			// censored by the top-level exit.
			if x.botHas {
				x.sink.botCensor(censorSample{
					Hour: uint8(x.botAt.HourOfDay()),
					S:    x.bottom,
					Dur:  (t - x.botAt).Seconds(),
				})
			}
			x.macro = next
			x.macroAt, x.macroHas = t, true
			x.bottom = m.SubEntry(x.macro)
			x.botAt, x.botHas = t, true
			x.recordFirst(isFirstOfCell, h, cell, t, ev.Type, x.bottom)
			return
		}
		// Category-1 event without a macro change: only legal as a
		// bottom transition (the TAU-releasing S1_CONN_REL in IDLE).
	}
	if to, ok := m.Next(x.bottom, ev.Type); ok && m.Top(to) == x.macro {
		sampleHour := uint8(h)
		if x.botHas {
			sampleHour = uint8(x.botAt.HourOfDay())
		}
		x.sink.bot(botSample{
			Hour: sampleHour,
			Key:  botKey{S: x.bottom, E: ev.Type},
			Soj:  (t - x.botAt).Seconds(),
			Has:  x.botHas,
		})
		x.bottom = to
		x.botAt, x.botHas = t, true
		x.recordFirst(isFirstOfCell, h, cell, t, ev.Type, x.bottom)
		return
	}
	// Machines without sub-structure (EMM-ECM) take Category-2
	// events here by design: they are modeled as free processes, not
	// violations.
	if hasSubStructure(m) && !sm.Category1(ev.Type) {
		x.sink.violation()
	}
	x.recordFirst(isFirstOfCell, h, cell, t, ev.Type, x.bottom)
}

// recordFirst emits a first-event sample when the event opened a new
// (day, hour) cell. state is the machine state right after the event.
func (x *ueExtractor) recordFirst(isFirst bool, h, cell int, t cp.Millis, e cp.EventType, state sm.State) {
	if !isFirst {
		return
	}
	hourStart := cp.Millis(cell) * cp.Hour
	x.sink.first(firstSample{
		Hour:  uint8(h),
		E:     e,
		State: state,
		Off:   (t - hourStart).Seconds(),
	})
}

func macroNext(e cp.EventType) cp.UEState {
	switch e {
	case cp.Attach, cp.ServiceRequest:
		return cp.StateConnected
	case cp.Detach:
		return cp.StateDeregistered
	case cp.S1ConnRelease:
		return cp.StateIdle
	default: // Category-2 (HO, TAU): no macro transition to give
		panic("core: macroNext of Category-2 event")
	}
}

// hasSubStructure reports whether the machine has any bottom-level edges.
func hasSubStructure(m *sm.Machine) bool {
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.Edges[s] {
			if m.Top(e.To) == m.Top(sm.State(s)) {
				return true
			}
		}
	}
	return false
}

// --- aggregation ---

type acc struct {
	TopCount  map[topKey]int
	TopSoj    map[topKey][]float64
	BotCount  map[botKey]int
	BotSoj    map[botKey][]float64
	BotCensor map[sm.State][]float64
	FreeIA    map[cp.EventType][]float64
	FirstCnt  map[firstCatKey]int
	FirstOff  []float64
	Cells     int // UE-day cells (PNone denominator)
	WithEv    int // cells that had at least one event
	NumUEs    int
}

func newAcc() *acc {
	return &acc{
		TopCount:  make(map[topKey]int),
		TopSoj:    make(map[topKey][]float64),
		BotCount:  make(map[botKey]int),
		BotSoj:    make(map[botKey][]float64),
		BotCensor: make(map[sm.State][]float64),
		FreeIA:    make(map[cp.EventType][]float64),
		FirstCnt:  make(map[firstCatKey]int),
	}
}

// build converts an accumulator into a ClusterModel.
func (a *acc) build(m *sm.Machine, opt FitOptions) ClusterModel {
	cm := ClusterModel{
		Top:    make([]StateParam, cp.NumUEStates),
		NumUEs: a.NumUEs,
	}
	if hasSubStructure(m) {
		cm.Bottom = make([]StateParam, m.NumStates())
	}
	// Top level: normalize counts per macro state.
	var topTotal [cp.NumUEStates]int
	for k, c := range a.TopCount {
		topTotal[k.S] += c
	}
	// Emit transitions in fixed (state, event) order, not map order:
	// FitSojourn's float folds must see each sample list at a
	// reproducible point in the build, and the output is then sorted by
	// construction rather than by the sortTransitions pass below.
	for s := 0; s < cp.NumUEStates; s++ {
		for _, e := range cp.EventTypes {
			k := topKey{S: cp.UEState(s), E: e}
			c, ok := a.TopCount[k]
			if !ok {
				continue
			}
			p := float64(c) / float64(topTotal[k.S])
			cm.Top[k.S].Out = append(cm.Top[k.S].Out, TransitionParam{
				Event:   k.E,
				P:       p,
				Sojourn: FitSojourn(a.TopSoj[k], opt.SojournKind),
			})
		}
	}
	// Bottom level, with competing-risks censoring. The state-level
	// delay marginal is estimated with Kaplan–Meier (SojournTable kind)
	// or the censored exponential MLE (SojournExp kind); the race
	// against the top level then re-applies the censoring naturally.
	// PExit is the KM tail mass: the probability the sub-machine never
	// fires within observable horizons.
	if cm.Bottom != nil {
		botTotal := make([]int, m.NumStates())
		firedBy := make([][]float64, m.NumStates())
		for k, c := range a.BotCount {
			botTotal[k.S] += c
		}
		// Assemble each state's fired delays in fixed (state, event)
		// order, not map order: CensoredExpMLE sums them, and float
		// summation order must not depend on map iteration for the model
		// bytes to be reproducible.
		for s := 0; s < m.NumStates(); s++ {
			for _, e := range cp.EventTypes {
				if soj, ok := a.BotSoj[botKey{S: sm.State(s), E: e}]; ok {
					firedBy[s] = append(firedBy[s], soj...)
				}
			}
		}
		for s := 0; s < m.NumStates(); s++ {
			for _, e := range cp.EventTypes {
				k := botKey{S: sm.State(s), E: e}
				c, ok := a.BotCount[k]
				if !ok {
					continue
				}
				p := float64(c) / float64(botTotal[k.S])
				cm.Bottom[k.S].Out = append(cm.Bottom[k.S].Out, TransitionParam{
					Event:   k.E,
					P:       p,
					Sojourn: FitSojourn(a.BotSoj[k], opt.SojournKind),
				})
			}
		}
		for s := 0; s < m.NumStates(); s++ {
			fired := firedBy[s]
			censored := a.BotCensor[sm.State(s)]
			if len(fired) == 0 {
				continue
			}
			switch opt.SojournKind {
			case SojournExp:
				if lambda, ok := stats.CensoredExpMLE(fired, censored); ok {
					cm.Bottom[s].Sojourn = &SojournModel{Kind: SojournExp, Lambda: lambda}
				}
			default:
				if q, tail, ok := stats.KaplanMeier(fired, censored); ok {
					cm.Bottom[s].Sojourn = &SojournModel{Kind: SojournTable, Q: q.Q}
					cm.Bottom[s].PExit = tail
				}
			}
		}
	}
	// Deterministic transition order (by event) for reproducible output.
	for i := range cm.Top {
		sortTransitions(cm.Top[i].Out)
	}
	for i := range cm.Bottom {
		sortTransitions(cm.Bottom[i].Out)
	}
	// Free processes.
	for _, e := range opt.FreeEvents {
		ia := a.FreeIA[e]
		if len(ia) < 2 {
			continue
		}
		cm.Free = append(cm.Free, FreeProcess{
			Event: e,
			Inter: FitSojourn(ia, opt.SojournKind),
		})
	}
	// First-event model.
	if a.Cells > 0 && a.WithEv > 0 {
		cm.First.PNone = 1 - float64(a.WithEv)/float64(a.Cells)
		cats := make([]FirstCat, 0, len(a.FirstCnt))
		for k, c := range a.FirstCnt {
			cats = append(cats, FirstCat{
				Event: k.E,
				State: k.S,
				P:     float64(c) / float64(a.WithEv),
			})
		}
		sort.Slice(cats, func(i, j int) bool {
			if cats[i].Event != cats[j].Event {
				return cats[i].Event < cats[j].Event
			}
			return cats[i].State < cats[j].State
		})
		cm.First.Cats = cats
		cm.First.Offset = FitSojourn(a.FirstOff, SojournTable)
	}
	return cm
}

func sortTransitions(out []TransitionParam) {
	sort.Slice(out, func(i, j int) bool { return out[i].Event < out[j].Event })
}

// --- clustering ---

// clusterHours partitions a device type's UEs per hour-of-day, with
// featAt supplying the clustering features of UE index i at hour h. Hours
// are independent and every write is indexed by h; cluster.Partition
// itself is deterministic (it sorts its input by UE id), so the result is
// identical for any worker count. Both the in-memory and the streaming
// fit run exactly this code.
func clusterHours(ues []cp.UEID, opt FitOptions, featAt func(i, h int) cluster.Features) (assignments []map[cp.UEID]int, numClusters []int, weights [][]float64) {
	assignments = make([]map[cp.UEID]int, HoursPerDay)
	numClusters = make([]int, HoursPerDay)
	weights = make([][]float64, HoursPerDay)
	par.For(HoursPerDay, opt.Workers, func(h int) {
		if opt.NoClustering {
			asg := make(map[cp.UEID]int, len(ues))
			for _, ue := range ues {
				asg[ue] = 0
			}
			assignments[h] = asg
			numClusters[h] = 1
			weights[h] = []float64{1}
			return
		}
		pts := make([]cluster.Point, len(ues))
		for i, ue := range ues {
			pts[i] = cluster.Point{UE: ue, F: featAt(i, h)}
		}
		cs := cluster.Partition(pts, opt.Cluster)
		assignments[h] = cluster.Assignment(cs)
		numClusters[h] = len(cs)
		weights[h] = cluster.Weights(cs)
	})
	return assignments, numClusters, weights
}

// buildPersonas deduplicates per-UE cluster-membership vectors into
// weighted personas.
func buildPersonas(ues []cp.UEID, assignments []map[cp.UEID]int) []Persona {
	type key [HoursPerDay]int
	counts := make(map[key]int)
	order := []key{}
	for _, ue := range ues {
		var k key
		for h := 0; h < HoursPerDay; h++ {
			k[h] = assignments[h][ue]
		}
		if _, ok := counts[k]; !ok {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		for h := 0; h < HoursPerDay; h++ {
			if order[i][h] != order[j][h] {
				return order[i][h] < order[j][h]
			}
		}
		return false
	})
	out := make([]Persona, len(order))
	total := float64(len(ues))
	for i, k := range order {
		cl := make([]int, HoursPerDay)
		copy(cl, k[:])
		out[i] = Persona{Cluster: cl, Weight: float64(counts[k]) / total}
	}
	return out
}
