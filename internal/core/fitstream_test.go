package core

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

func modelBytes(t *testing.T, ms *ModelSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func traceFile(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinaryTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// edgeTrace exercises the streaming-specific corners the toy world never
// hits: a UE whose whole stream is Category-2 (initial state resolved
// only at finish), a registered UE with zero events, and duplicate
// events.
func edgeTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := toyTrace(t, 12, 2*cp.Hour, 3)
	mustSet := func(ue cp.UEID, d cp.DeviceType) {
		t.Helper()
		if err := tr.SetDevice(ue, d); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(100, cp.Phone) // zero events
	mustSet(101, cp.ConnectedCar)
	for i := 0; i < 5; i++ { // HO-only mover: fallback initial = CONNECTED
		tr.Append(trace.Event{T: cp.Millis(i+1) * cp.Minute, UE: 101, Type: cp.Handover})
	}
	mustSet(102, cp.Tablet)
	tr.Append(trace.Event{T: 10 * cp.Minute, UE: 102, Type: cp.TrackingAreaUpdate})
	tr.Append(trace.Event{T: 10 * cp.Minute, UE: 102, Type: cp.TrackingAreaUpdate}) // exact duplicate
	tr.Sort()
	return tr
}

// TestFitStreamMatchesInMemory: the streamed fit must be byte-identical
// to the in-memory fit for every source kind (in-memory trace, binary
// file) and worker count — the same discipline as worker determinism.
// Both entry points are thin drivers over one PartialFit now, so the
// load-bearing comparisons are the file source (scanner decode path)
// and the worker sweep.
func TestFitStreamMatchesInMemory(t *testing.T) {
	traces := map[string]*trace.Trace{
		"toy":  toyTrace(t, 48, 3*cp.Hour, 7),
		"edge": edgeTrace(t),
	}
	fits := []FitOptions{
		{Cluster: clusterOptSmall()}, // "ours": two-level + quantile tables
		{Machine: sm.EMMECM(), SojournKind: SojournExp,
			FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
			NoClustering: true, Method: "base"}, // free processes + censored MLE
	}
	for name, tr := range traces {
		path := traceFile(t, tr)
		fileSrc, err := trace.NewFileSource(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range fits {
			ref, err := Fit(tr, base)
			if err != nil {
				t.Fatal(err)
			}
			want := modelBytes(t, ref)
			sources := map[string]trace.EventSource{
				"trace": tr,
				"file":  fileSrc,
			}
			for srcName, src := range sources {
				for _, w := range []int{1, 8} {
					opt := base
					opt.Workers = w
					ms, err := FitStream(src, opt)
					if err != nil {
						t.Fatalf("%s/%s/%s workers=%d: %v", name, base.Method, srcName, w, err)
					}
					if got := modelBytes(t, ms); !bytes.Equal(want, got) {
						t.Fatalf("%s: FitStream(%s, method=%q, workers=%d) differs from Fit (%d vs %d bytes)",
							name, srcName, base.Method, w, len(got), len(want))
					}
				}
			}
		}
	}
}

func TestFitStreamEmptySourceFails(t *testing.T) {
	if _, err := FitStream(trace.New(), FitOptions{}); err == nil {
		t.Fatal("want error for empty source")
	}
}

// peakHeap runs fn and returns the peak live-heap growth over the
// baseline, sampled concurrently (plus a final sample, so short-lived
// peaks between ticks still bound from below). An aggressive GC target
// keeps HeapAlloc tracking the live set rather than collection timing,
// so the two paths compare by what they actually retain.
func peakHeap(fn func()) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	peakCh := make(chan uint64, 1)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	fn()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	close(stop)
	peak := <-peakCh
	if end.HeapAlloc > peak {
		peak = end.HeapAlloc
	}
	if peak <= base.HeapAlloc {
		return 0
	}
	return peak - base.HeapAlloc
}

// TestFitStreamBoundedMemory: fitting from a file through FitStream must
// peak measurably below the read-then-fit in-memory path on the same
// trace. Exact byte-identity forces the streamed fit to retain every
// sojourn sample in its pools, so its heap still grows with the trace —
// what it never holds is the materialized event slice, which is where
// the in-memory path's peak lives. (FitOptions.SketchK bounds the
// retained-sample term too; TestFitSketchedBoundedMemory gates that.)
func TestFitStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile run skipped in -short mode")
	}
	tr := toyTrace(t, 256, 24*cp.Hour, 11)
	path := traceFile(t, tr)
	opt := FitOptions{Cluster: clusterOptSmall(), Workers: 1}

	var inMemModel, streamModel []byte
	inMemPeak := peakHeap(func() {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		loaded, err := trace.ReadBinaryTrace(f)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := Fit(loaded, opt)
		if err != nil {
			t.Fatal(err)
		}
		inMemModel = modelBytes(t, ms)
	})
	streamPeak := peakHeap(func() {
		src, err := trace.NewFileSource(path)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := FitStream(src, opt)
		if err != nil {
			t.Fatal(err)
		}
		streamModel = modelBytes(t, ms)
	})
	if !bytes.Equal(inMemModel, streamModel) {
		t.Fatal("models differ between paths")
	}
	t.Logf("peak heap growth: in-memory %.1f MiB, streamed %.1f MiB (%.0f%%), %d events",
		float64(inMemPeak)/(1<<20), float64(streamPeak)/(1<<20),
		100*float64(streamPeak)/float64(inMemPeak), tr.Len())
	if streamPeak >= inMemPeak {
		t.Fatalf("streamed fit peak (%d B) not below in-memory peak (%d B)", streamPeak, inMemPeak)
	}
}
