package core

import (
	"fmt"
	"io"
	"sort"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
)

// Describe renders a human-readable summary of a fitted model set: the
// method and machine, per-device cluster/persona statistics, and the
// global-model transition tables with sojourn means — the quickest way
// to sanity-check what a fit learned.
func (ms *ModelSet) Describe(w io.Writer) error {
	machine, err := ms.Machine()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "model: method=%s machine=%s models=%d\n",
		ms.Method, ms.MachineName, ms.NumModels())
	for _, d := range cp.DeviceTypes {
		dm := ms.Device(d)
		if dm == nil {
			continue
		}
		clusters := 0
		for h := range dm.Hours {
			clusters += len(dm.Hours[h].Clusters)
		}
		fmt.Fprintf(w, "\n%s: trained on %d UEs (share %.1f%%), %d personas, %.1f clusters/hour\n",
			d, dm.TrainUEs, 100*dm.Share, len(dm.Personas),
			float64(clusters)/float64(len(dm.Hours)))
		if dm.Global == nil {
			continue
		}
		fmt.Fprintf(w, "  global top level:\n")
		describeStates(w, machine, dm.Global.Top, func(i int) string {
			return cp.UEState(i).String()
		})
		if len(dm.Global.Bottom) > 0 {
			fmt.Fprintf(w, "  global bottom level:\n")
			describeStates(w, machine, dm.Global.Bottom, func(i int) string {
				return machine.StateName(sm.State(i))
			})
		}
		for _, fp := range dm.Global.Free {
			fmt.Fprintf(w, "  free process: %-12s mean inter-arrival %.1f s\n",
				fp.Event, fp.Inter.Mean())
		}
		if dm.Global.First.valid() {
			fmt.Fprintf(w, "  first event: PNone=%.2f, %d categories\n",
				dm.Global.First.PNone, len(dm.Global.First.Cats))
		}
	}
	return nil
}

func describeStates(w io.Writer, machine *sm.Machine, states []StateParam, name func(int) string) {
	idx := make([]int, 0, len(states))
	for i := range states {
		if len(states[i].Out) > 0 {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		sp := states[i]
		fmt.Fprintf(w, "    %-14s", name(i))
		if sp.PExit > 0 {
			fmt.Fprintf(w, " [PExit %.2f]", sp.PExit)
		}
		for _, tp := range sp.Out {
			fmt.Fprintf(w, "  --%s--> p=%.2f mean=%.1fs", tp.Event, tp.P, tp.Sojourn.Mean())
		}
		if sp.Sojourn != nil {
			fmt.Fprintf(w, "  (KM delay mean %.1fs)", sp.Sojourn.Mean())
		}
		fmt.Fprintln(w)
	}
}

// Stats summarizes a model set numerically for tooling.
type ModelStats struct {
	Method      string
	MachineName string
	Models      int
	// PerDevice is indexed by cp.DeviceType; zero-valued when absent.
	PerDevice [cp.NumDeviceTypes]DeviceStats
}

// DeviceStats summarizes one device model.
type DeviceStats struct {
	TrainUEs        int
	Share           float64
	Personas        int
	ClustersPerHour float64
	Transitions     int
}

// Stats computes the numeric summary.
func (ms *ModelSet) Stats() ModelStats {
	out := ModelStats{Method: ms.Method, MachineName: ms.MachineName, Models: ms.NumModels()}
	for _, d := range cp.DeviceTypes {
		dm := ms.Device(d)
		if dm == nil {
			continue
		}
		clusters, transitions := 0, 0
		for h := range dm.Hours {
			clusters += len(dm.Hours[h].Clusters)
			for c := range dm.Hours[h].Clusters {
				cm := &dm.Hours[h].Clusters[c]
				for _, sp := range cm.Top {
					transitions += len(sp.Out)
				}
				for _, sp := range cm.Bottom {
					transitions += len(sp.Out)
				}
			}
		}
		out.PerDevice[d] = DeviceStats{
			TrainUEs:        dm.TrainUEs,
			Share:           dm.Share,
			Personas:        len(dm.Personas),
			ClustersPerHour: float64(clusters) / float64(len(dm.Hours)),
			Transitions:     transitions,
		}
	}
	return out
}
