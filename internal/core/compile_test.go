package core

import (
	"bytes"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamBytes drives the source through the incremental text writer —
// the CLI -stream path.
func streamBytes(t *testing.T, src trace.EventSource) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := trace.NewTextWriter(&buf)
	if err := trace.Copy(tw, src); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompiledMatchesInterpreted is the tentpole invariant: the compiled
// engine produces byte-identical traces to the interpreted reference for
// every seed, worker count, and source kind — on the full two-level
// model and on a flat model whose free-running HO/TAU processes the
// two-level model never exercises.
func TestCompiledMatchesInterpreted(t *testing.T) {
	models := map[string]*ModelSet{
		"ours": fitToy(t, 50, 3*cp.Hour, 42, FitOptions{}),
	}
	src := toyTrace(t, 60, 3*cp.Hour, 43)
	base, err := Fit(src, FitOptions{
		Machine:      sm.EMMECM(),
		SojournKind:  SojournExp,
		FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
		NoClustering: true,
		Method:       "base",
	})
	if err != nil {
		t.Fatal(err)
	}
	models["base"] = base

	for name, ms := range models {
		for _, seed := range []uint64{1, 7, 99} {
			for _, workers := range []int{1, 8} {
				opt := GenOptions{NumUEs: 80, StartHour: 22, Duration: 3 * cp.Hour, Seed: seed, Workers: workers}
				iopt := opt
				iopt.Interpret = true

				want, err := Generate(ms, iopt)
				if err != nil {
					t.Fatal(err)
				}
				wb := traceBytes(t, want)
				got, err := Generate(ms, opt)
				if err != nil {
					t.Fatal(err)
				}
				if gb := traceBytes(t, got); !bytes.Equal(wb, gb) {
					t.Fatalf("%s seed=%d workers=%d: compiled Generate differs from interpreted (%d vs %d bytes)",
						name, seed, workers, len(gb), len(wb))
				}

				csrc, err := NewSource(ms, opt)
				if err != nil {
					t.Fatal(err)
				}
				if sb := streamBytes(t, csrc); !bytes.Equal(wb, sb) {
					t.Fatalf("%s seed=%d workers=%d: compiled stream differs from interpreted in-memory", name, seed, workers)
				}
				isrc, err := NewSource(ms, iopt)
				if err != nil {
					t.Fatal(err)
				}
				if sb := streamBytes(t, isrc); !bytes.Equal(wb, sb) {
					t.Fatalf("%s seed=%d workers=%d: interpreted stream differs from interpreted in-memory", name, seed, workers)
				}
			}
		}
	}
}

// TestUEGenSteadyStateAllocs is the allocation regression gate: the
// compiled generator's steady-state Next must not allocate at all, and
// the interpreted reference must stay near zero (it reuses its queue
// backing array; the historical g.queue = g.queue[1:] re-slice leaked
// capacity and re-allocated on every flush). Skipped under the race
// detector, which changes allocation behavior.
func TestUEGenSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	ms := fitToy(t, 40, 3*cp.Hour, 44, FitOptions{})
	machine, err := ms.Machine()
	if err != nil {
		t.Fatal(err)
	}
	cm := compile(ms, machine)
	var dev cp.DeviceType = 255
	for d := 0; d < cp.NumDeviceTypes; d++ {
		if cm.devs[d] != nil {
			dev = cp.DeviceType(d)
			break
		}
	}
	if dev == 255 {
		t.Fatal("toy model has no device models")
	}
	const warmup, runs = 2000, 4000
	end := 365 * cp.Day

	measure := func(name string, it trace.EventIterator, limit float64) {
		for i := 0; i < warmup; i++ {
			if _, ok := it.Next(); !ok {
				t.Fatalf("%s: generator exhausted after %d warm-up events", name, i)
			}
		}
		alive := true
		avg := testing.AllocsPerRun(runs, func() {
			if _, ok := it.Next(); !ok {
				alive = false
			}
		})
		if !alive {
			t.Fatalf("%s: generator exhausted during measurement", name)
		}
		if avg > limit {
			t.Errorf("%s: steady-state Next allocates %.4f allocs/event, want <= %.4f", name, avg, limit)
		}
	}
	measure("compiled", newUEGen(cm, cm.dev(dev), 1, stats.NewRNGVal(1), 0, end), 0)
	measure("interpreted", newUEInterp(machine, ms.Device(dev), 1, stats.NewRNG(1), 0, end), 0.05)
}
