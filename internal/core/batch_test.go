package core

import (
	"bytes"
	"fmt"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// TestBatchedMatchesStreamed is the tentpole identity test on the core
// engine: across seeds × workers, the parallel Generate assembly, the
// streaming per-event Source.Scan, and the native batched
// Source.ScanBatches must all yield the same event sequence, and
// writing that sequence batched vs per-event must produce the same
// bytes for both codecs. Batch boundaries are an implementation detail;
// the trace is the contract.
func TestBatchedMatchesStreamed(t *testing.T) {
	ms := fitToy(t, 60, 3*cp.Hour, 10, FitOptions{})
	for _, seed := range []uint64{1, 7, 99} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				opt := GenOptions{NumUEs: 80, StartHour: 5, Duration: 2 * cp.Hour, Seed: seed, Workers: workers}
				gen, err := Generate(ms, opt)
				if err != nil {
					t.Fatal(err)
				}
				src, err := NewSource(ms, opt)
				if err != nil {
					t.Fatal(err)
				}
				var streamed []trace.Event
				if err := src.Scan(func(e trace.Event) error {
					streamed = append(streamed, e)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				var batched []trace.Event
				if err := src.ScanBatches(func(b *trace.Batch) error {
					batched = b.AppendTo(batched)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if len(gen.Events) == 0 {
					t.Fatal("generated no events; test is vacuous")
				}
				diff := func(name string, got []trace.Event) {
					t.Helper()
					if len(got) != len(gen.Events) {
						t.Fatalf("%s: %d events, Generate produced %d", name, len(got), len(gen.Events))
					}
					for i := range got {
						if got[i] != gen.Events[i] {
							t.Fatalf("%s: event %d = %v, Generate produced %v", name, i, got[i], gen.Events[i])
						}
					}
				}
				diff("Scan", streamed)
				diff("ScanBatches", batched)

				// Byte identity through both writers: per-event Copy from
				// the generated trace vs batched CopyBatches from the
				// streaming source.
				for _, codec := range []string{"text", "binary"} {
					mk := func(w *bytes.Buffer) interface {
						trace.EventSink
						Close() error
					} {
						if codec == "text" {
							return trace.NewTextWriter(w)
						}
						return trace.NewStreamWriter(w)
					}
					var perEvent, viaBatches bytes.Buffer
					w1 := mk(&perEvent)
					if err := trace.Copy(w1, gen); err != nil {
						t.Fatal(err)
					}
					if err := w1.Close(); err != nil {
						t.Fatal(err)
					}
					w2 := mk(&viaBatches)
					if err := trace.CopyBatches(w2, src); err != nil {
						t.Fatal(err)
					}
					if err := w2.Close(); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(perEvent.Bytes(), viaBatches.Bytes()) {
						t.Fatalf("%s: batched source bytes differ from per-event trace bytes", codec)
					}
				}
			})
		}
	}
}

// TestGenerateAllocsPerEvent gates the arena work: the compiled
// end-to-end Generate path must average at most 0.02 heap allocations
// per emitted event (issue target; the measured figure is ~0.002).
func TestGenerateAllocsPerEvent(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	ms := fitToy(t, 60, 3*cp.Hour, 10, FitOptions{})
	opt := GenOptions{NumUEs: 200, StartHour: 0, Duration: 2 * cp.Hour, Seed: 3, Workers: 1}
	warm, err := Generate(ms, opt)
	if err != nil {
		t.Fatal(err)
	}
	events := len(warm.Events)
	if events == 0 {
		t.Fatal("generated no events; test is vacuous")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Generate(ms, opt); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := allocs / float64(events)
	t.Logf("%.0f allocs / %d events = %.5f allocs/event", allocs, events, perEvent)
	if perEvent > 0.02 {
		t.Fatalf("allocs/event = %.5f, want <= 0.02", perEvent)
	}
}
