package core

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// collectPartialJSONFields walks a codec struct type and appends every
// json field name the partialfit/1 codec consumes, recursing through
// pointers, slices, and nested structs. Append order follows struct
// declaration order, so the result is deterministic.
func collectPartialJSONFields(t reflect.Type, out []string) []string {
	for t.Kind() == reflect.Pointer || t.Kind() == reflect.Slice {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return out
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("json")
		if tag == "" || tag == "-" {
			continue
		}
		name := tag
		if c := strings.IndexByte(tag, ','); c >= 0 {
			name = tag[:c]
		}
		if name != "" {
			out = append(out, name)
		}
		out = collectPartialJSONFields(f.Type, out)
	}
	return out
}

// TestPartialSpecDocumentsEveryField pins PARTIALFIT.md to the codec:
// every json field of the partialfit/1 struct tree must appear
// (backticked) in the normative spec, so the spec cannot silently drift
// behind the code.
func TestPartialSpecDocumentsEveryField(t *testing.T) {
	md, err := os.ReadFile("../../PARTIALFIT.md")
	if err != nil {
		t.Fatalf("PARTIALFIT.md missing: %v", err)
	}
	spec := string(md)
	fields := collectPartialJSONFields(reflect.TypeOf(partialFile{}), nil)
	if len(fields) < 30 {
		t.Fatalf("field walk found only %d fields — walker broken?", len(fields))
	}
	for _, n := range fields {
		if !strings.Contains(spec, "`"+n+"`") {
			t.Errorf("PARTIALFIT.md does not document field `%s`", n)
		}
	}
	// The pool kind vocabulary is part of the format too.
	for _, kind := range poolKindNames {
		if !strings.Contains(spec, "`"+kind+"`") {
			t.Errorf("PARTIALFIT.md does not document pool kind `%s`", kind)
		}
	}
	if !strings.Contains(spec, "`"+PartialFormatV1+"`") {
		t.Errorf("PARTIALFIT.md does not name the format tag `%s`", PartialFormatV1)
	}
}
