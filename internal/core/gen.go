package core

import (
	"fmt"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// GenOptions configures trace synthesis.
type GenOptions struct {
	// NumUEs is the synthetic population size (any size — the model is
	// per-UE, so it scales to populations far larger than the training
	// trace, the paper's Scenario 2).
	NumUEs int
	// StartHour is the hour-of-day H at which generation starts (§7).
	StartHour int
	// Duration is the length of the synthesized trace.
	Duration cp.Millis
	// Seed makes the output deterministic; each UE derives an
	// independent stream from it.
	Seed uint64
	// Workers bounds the number of concurrent per-UE generators; 0 means
	// GOMAXPROCS. It never affects the output, only the wall clock.
	Workers int
	// DeviceMix optionally overrides the device-type population shares;
	// nil uses the training trace's shares.
	DeviceMix []float64
}

// maxEventsPerUE is a safety valve against pathological fitted models
// (e.g. a zero-width sojourn on a self-loop); no realistic UE comes
// anywhere near it.
const maxEventsPerUE = 1 << 20

// minSojournSec keeps generated events strictly advancing in time: two
// control events of one UE are never closer than 1 ms (the trace
// granularity).
const minSojournSec = 0.001

// Generate synthesizes a control-plane trace for opt.NumUEs UEs starting
// at hour opt.StartHour, by running one per-UE semi-Markov generator per
// UE concurrently (§7). The result covers [StartHour*Hour,
// StartHour*Hour+Duration) and is sorted.
func Generate(ms *ModelSet, opt GenOptions) (*trace.Trace, error) {
	jobs, machine, t0, end, workers, err := planGeneration(ms, opt)
	if err != nil {
		return nil, err
	}
	out := make([][]trace.Event, workers)
	par.Do(workers, func(w int) {
		var evs []trace.Event
		for i := w; i < len(jobs); i += workers {
			j := jobs[i]
			dm := ms.Device(j.dev)
			if dm == nil {
				continue
			}
			g := newUEGen(machine, dm, j.ue, j.rng, t0, end)
			for {
				ev, ok := g.Next()
				if !ok {
					break
				}
				evs = append(evs, ev)
			}
		}
		out[w] = evs
	})

	tr := trace.New()
	for _, j := range jobs {
		tr.Device[j.ue] = j.dev
	}
	n := 0
	for _, evs := range out {
		n += len(evs)
	}
	tr.Events = make([]trace.Event, 0, n)
	for _, evs := range out {
		tr.Events = append(tr.Events, evs...)
	}
	tr.Sort()
	return tr, nil
}

// Stream synthesizes the same trace Generate would, but delivers events
// one at a time in global (time, UE) order with O(NumUEs) memory instead
// of materializing everything: the per-UE generators are k-way merged
// with trace.MergeScan. fn returning an error aborts the stream. The
// device registration of every UE is reported through reg before any
// event is delivered.
//
// Use it to drive a live core with populations whose full trace would
// not fit in memory, or to pipe events into another system as they are
// drawn.
func Stream(ms *ModelSet, opt GenOptions, reg func(cp.UEID, cp.DeviceType) error, fn func(trace.Event) error) error {
	jobs, machine, t0, end, _, err := planGeneration(ms, opt)
	if err != nil {
		return err
	}
	if reg != nil {
		for _, j := range jobs {
			if err := reg(j.ue, j.dev); err != nil {
				return err
			}
		}
	}
	its := make([]trace.EventIterator, 0, len(jobs))
	for _, j := range jobs {
		dm := ms.Device(j.dev)
		if dm == nil {
			continue
		}
		its = append(its, newUEGen(machine, dm, j.ue, j.rng, t0, end))
	}
	return trace.MergeScan(fn, its)
}

// Source is a generator-backed trace.EventSource: scanning it draws the
// synthetic population on the fly, so a trace of any size can be fitted,
// evaluated, or written to disk without ever materializing it. Both
// Devices and Scan re-derive the population plan from the seed, so the
// source is re-iterable and successive passes agree.
type Source struct {
	ms  *ModelSet
	opt GenOptions
}

// NewSource validates the generation options once and returns the lazy
// source; no events are drawn until Scan.
func NewSource(ms *ModelSet, opt GenOptions) (*Source, error) {
	if _, _, _, _, _, err := planGeneration(ms, opt); err != nil {
		return nil, err
	}
	return &Source{ms: ms, opt: opt}, nil
}

// Devices reports every planned UE's device type in ascending UE order.
func (s *Source) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	jobs, _, _, _, _, err := planGeneration(s.ms, s.opt)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		if err := fn(j.ue, j.dev); err != nil {
			return err
		}
	}
	return nil
}

// Scan generates the population's events in canonical order.
func (s *Source) Scan(fn func(trace.Event) error) error {
	return Stream(s.ms, s.opt, nil, fn)
}

// genJob is one UE's generation assignment.
type genJob struct {
	ue  cp.UEID
	dev cp.DeviceType
	rng *stats.RNG
}

// planGeneration validates options and pre-derives every UE's device and
// RNG stream, so results do not depend on scheduling.
func planGeneration(ms *ModelSet, opt GenOptions) ([]genJob, *sm.Machine, cp.Millis, cp.Millis, int, error) {
	if opt.NumUEs <= 0 {
		return nil, nil, 0, 0, 0, fmt.Errorf("core: NumUEs must be positive")
	}
	if opt.StartHour < 0 || opt.StartHour >= HoursPerDay {
		return nil, nil, 0, 0, 0, fmt.Errorf("core: StartHour %d out of range", opt.StartHour)
	}
	if opt.Duration <= 0 {
		return nil, nil, 0, 0, 0, fmt.Errorf("core: Duration must be positive")
	}
	machine, err := ms.Machine()
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	mix, err := deviceMix(ms, opt.DeviceMix)
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	workers := par.Workers(opt.Workers, opt.NumUEs)
	t0 := cp.Millis(opt.StartHour) * cp.Hour
	end := t0 + opt.Duration
	root := stats.NewRNG(opt.Seed)
	jobs := make([]genJob, opt.NumUEs)
	for i := range jobs {
		r := root.Split(uint64(i) + 1)
		jobs[i] = genJob{ue: cp.UEID(i), dev: pickDevice(mix, r), rng: r}
	}
	return jobs, machine, t0, end, workers, nil
}

// deviceMix resolves the device-type population shares.
func deviceMix(ms *ModelSet, override []float64) ([]float64, error) {
	mix := make([]float64, cp.NumDeviceTypes)
	if override != nil {
		if len(override) != cp.NumDeviceTypes {
			return nil, fmt.Errorf("core: DeviceMix must have %d entries", cp.NumDeviceTypes)
		}
		copy(mix, override)
	} else {
		for d, dm := range ms.Devices {
			if dm != nil {
				mix[d] = dm.Share
			}
		}
	}
	var sum float64
	for d, m := range mix {
		if m > 0 && ms.Devices[d] == nil {
			return nil, fmt.Errorf("core: DeviceMix requests %v but the model has no such device", cp.DeviceType(d))
		}
		sum += m
	}
	if sum <= 0 {
		return nil, fmt.Errorf("core: empty device mix")
	}
	for d := range mix {
		mix[d] /= sum
	}
	return mix, nil
}

func pickDevice(mix []float64, r *stats.RNG) cp.DeviceType {
	u := r.Float64()
	var acc float64
	for d, m := range mix {
		acc += m
		if u < acc {
			return cp.DeviceType(d)
		}
	}
	for d := len(mix) - 1; d >= 0; d-- {
		if mix[d] > 0 {
			return cp.DeviceType(d)
		}
	}
	return cp.Phone
}

// pending is a scheduled future event of one level of the generator.
type pending struct {
	at    cp.Millis
	ev    cp.EventType
	valid bool
	// toTop / toBot are the successor states (only one is meaningful,
	// depending on which level owns the pending event).
	toTop cp.UEState
	toBot sm.State
}

// ueGen is one per-UE traffic generator (§7), exposed as an incremental
// iterator: Next returns the UE's events one at a time in time order.
// It samples the first event from the first-event model, then drives the
// two-level machine — both levels keep their own timers and race; a
// top-level transition drops the bottom level's pending event and
// re-enters the sub-machine of the new top state. Free-running processes
// (Base/V1's HO and TAU) race alongside while the UE is registered.
type ueGen struct {
	m       *sm.Machine
	dm      *DeviceModel
	ue      cp.UEID
	rng     *stats.RNG
	t0, end cp.Millis

	personaIdx int
	started    bool
	exhausted  bool
	emitted    int

	top    cp.UEState
	bottom sm.State
	topP   pending
	botP   pending
	free   map[cp.EventType]cp.Millis

	// queue holds events already decided but not yet delivered (the
	// sub-machine flush before a blocked top-level event produces
	// several at once).
	queue []trace.Event
}

// newUEGen prepares the iterator; no work happens until the first Next.
func newUEGen(m *sm.Machine, dm *DeviceModel, ue cp.UEID, rng *stats.RNG, t0, end cp.Millis) *ueGen {
	return &ueGen{
		m: m, dm: dm, ue: ue, rng: rng, t0: t0, end: end,
		personaIdx: dm.pickPersona(rng),
		free:       map[cp.EventType]cp.Millis{},
	}
}

// Next returns the UE's next event, or ok=false when the window is done.
func (g *ueGen) Next() (trace.Event, bool) {
	for {
		if len(g.queue) > 0 {
			ev := g.queue[0]
			g.queue = g.queue[1:]
			g.emitted++
			return ev, true
		}
		if g.exhausted || g.emitted >= maxEventsPerUE {
			return trace.Event{}, false
		}
		if !g.started {
			g.startup()
			continue
		}
		g.step()
	}
}

func (g *ueGen) clusterAt(t cp.Millis) int {
	if g.personaIdx < 0 {
		return -1
	}
	h := t.HourOfDay()
	p := g.dm.Personas[g.personaIdx]
	if h < len(p.Cluster) {
		return p.Cluster[h]
	}
	return -1
}

func (g *ueGen) push(t cp.Millis, e cp.EventType) {
	g.queue = append(g.queue, trace.Event{T: t, UE: g.ue, Type: e})
}

// startup finds the first event (§5.4): a UE silent in one hour re-rolls
// the next hour's first-event model.
func (g *ueGen) startup() {
	g.started = true
	for hourStart := g.t0; hourStart < g.end; hourStart += cp.Hour {
		fe, ok := g.dm.firstEvent(hourStart.HourOfDay(), g.clusterAt(hourStart))
		if !ok {
			continue
		}
		silent, cat, off := fe.sample(g.rng)
		if silent {
			continue
		}
		t := hourStart + cp.MillisFromSeconds(off)
		if t >= g.end {
			break
		}
		g.push(t, cat.Event)
		// The fitted category carries the post-event machine state, so
		// e.g. a first TAU lands in TAU_S_IDLE when the training UEs
		// were idle, not blindly in TAU_S_CONN.
		fine := cat.State
		if int(fine) >= g.m.NumStates() {
			fine = g.m.Forced(cat.Event)
		}
		g.top = g.m.Top(fine)
		g.bottom = fine
		g.drawTop(t)
		g.drawBot(t)
		g.drawFree(t)
		return
	}
	g.exhausted = true
}

// step advances the two-level race by one firing, pushing the resulting
// event(s) onto the queue (or marking the generator exhausted).
func (g *ueGen) step() {
	next := cp.Millis(math.MaxInt64)
	kind := 0 // 0 none, 1 top, 2 bottom, 3 free
	var freeEv cp.EventType
	if g.topP.valid && g.topP.at < next {
		next, kind = g.topP.at, 1
	}
	if g.botP.valid && g.botP.at < next {
		next, kind = g.botP.at, 2
	}
	for e, at := range g.free {
		if at < next {
			next, kind, freeEv = at, 3, e
		}
	}
	if kind == 0 || next >= g.end {
		g.exhausted = true
		return
	}
	switch kind {
	case 1:
		// The top event must be legal from the current bottom state
		// (the starred arrow in Fig. 5: SRV_REQ may not leave IDLE from
		// TAU_S_IDLE). If it is not, flush the sub-machine first: the
		// protocol mandates the TAU's S1_CONN_REL before the connection
		// can be re-established.
		at := next
		for guard := 0; guard < 8; guard++ {
			if _, ok := g.m.Next(g.bottom, g.topP.ev); ok {
				break
			}
			ev, to, found := bridgeEdge(g.m, g.bottom, g.botP)
			if !found {
				break
			}
			g.push(at, ev)
			g.bottom = to
			at += cp.Millis(1)
		}
		g.push(at, g.topP.ev)
		g.top = g.topP.toTop
		g.bottom = g.m.SubEntry(g.top)
		g.drawTop(at)
		g.drawBot(at)
		g.drawFree(at)
	case 2:
		g.push(next, g.botP.ev)
		g.bottom = g.botP.toBot
		g.drawBot(next)
	case 3:
		g.push(next, freeEv)
		g.redrawOneFree(freeEv, next)
	}
}

func (g *ueGen) drawTop(now cp.Millis) {
	g.topP = pending{}
	params := g.dm.topParams(now.HourOfDay(), g.clusterAt(now), g.top)
	tp, ok := pickFrom(params, g.rng)
	if !ok {
		return
	}
	to, ok := topNext(g.top, tp.Event)
	if !ok {
		return
	}
	d := math.Max(tp.Sojourn.Sample(g.rng), minSojournSec)
	g.topP = pending{at: now + cp.MillisFromSeconds(d), ev: tp.Event, valid: true, toTop: to}
}

func (g *ueGen) drawBot(now cp.Millis) {
	g.botP = pending{}
	sp := g.dm.bottomParams(now.HourOfDay(), g.clusterAt(now), g.bottom)
	if sp == nil {
		return
	}
	// KM tail mass: the probability the sub-machine never fires within
	// observable horizons; the bottom stays silent until the next
	// top-level transition re-enters it.
	if sp.PExit > 0 && g.rng.Float64() < sp.PExit {
		return
	}
	tp, ok := pickFrom(sp.Out, g.rng)
	if !ok {
		return
	}
	to, ok := g.m.Next(g.bottom, tp.Event)
	if !ok || g.m.Top(to) != g.top {
		return
	}
	// Prefer the Kaplan-Meier state-level delay marginal: it is the
	// unbiased estimate under the top-level race (per-transition
	// sojourns are fitted on uncensored observations only).
	soj := tp.Sojourn
	if sp.Sojourn != nil {
		soj = *sp.Sojourn
	}
	d := math.Max(soj.Sample(g.rng), minSojournSec)
	g.botP = pending{at: now + cp.MillisFromSeconds(d), ev: tp.Event, valid: true, toBot: to}
}

func (g *ueGen) drawFree(now cp.Millis) {
	for k := range g.free {
		delete(g.free, k)
	}
	if g.top == cp.StateDeregistered {
		return
	}
	for _, fp := range g.dm.freeParams(now.HourOfDay(), g.clusterAt(now)) {
		d := math.Max(fp.Inter.Sample(g.rng), minSojournSec)
		g.free[fp.Event] = now + cp.MillisFromSeconds(d)
	}
}

func (g *ueGen) redrawOneFree(e cp.EventType, now cp.Millis) {
	for _, fp := range g.dm.freeParams(now.HourOfDay(), g.clusterAt(now)) {
		if fp.Event == e {
			d := math.Max(fp.Inter.Sample(g.rng), minSojournSec)
			g.free[e] = now + cp.MillisFromSeconds(d)
			return
		}
	}
	delete(g.free, e)
}

// bridgeEdge chooses the sub-machine event that moves the bottom level
// toward a state from which a blocked top-level event becomes legal:
// preferably the already-pending bottom event, otherwise the first
// within-macro machine edge.
func bridgeEdge(m *sm.Machine, bottom sm.State, botP pending) (cp.EventType, sm.State, bool) {
	if botP.valid {
		return botP.ev, botP.toBot, true
	}
	for _, e := range m.Edges[bottom] {
		if m.Top(e.To) == m.Top(bottom) {
			return e.Event, e.To, true
		}
	}
	return 0, bottom, false
}

// pickFrom samples a transition from params by probability.
func pickFrom(params []TransitionParam, r *stats.RNG) (TransitionParam, bool) {
	if len(params) == 0 {
		return TransitionParam{}, false
	}
	u := r.Float64()
	var acc float64
	for _, tp := range params {
		acc += tp.P
		if u < acc {
			return tp, true
		}
	}
	return params[len(params)-1], true
}

// topNext gives the macro-level successor for a Category-1 event leaving
// macro state s. It mirrors the shared top-level structure of all three
// machines.
func topNext(s cp.UEState, e cp.EventType) (cp.UEState, bool) {
	switch e {
	case cp.Attach:
		if s == cp.StateDeregistered {
			return cp.StateConnected, true
		}
	case cp.Detach:
		if s != cp.StateDeregistered {
			return cp.StateDeregistered, true
		}
	case cp.ServiceRequest:
		if s == cp.StateIdle {
			return cp.StateConnected, true
		}
	case cp.S1ConnRelease:
		if s == cp.StateConnected {
			return cp.StateIdle, true
		}
	}
	return s, false
}
