package core

import (
	"fmt"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// GenOptions configures trace synthesis.
type GenOptions struct {
	// NumUEs is the synthetic population size (any size — the model is
	// per-UE, so it scales to populations far larger than the training
	// trace, the paper's Scenario 2).
	NumUEs int
	// StartHour is the hour-of-day H at which generation starts (§7).
	StartHour int
	// Duration is the length of the synthesized trace.
	Duration cp.Millis
	// Seed makes the output deterministic; each UE derives an
	// independent stream from it.
	Seed uint64
	// Workers bounds the number of concurrent per-UE generators; 0 means
	// GOMAXPROCS. It never affects the output, only the wall clock.
	Workers int
	// DeviceMix optionally overrides the device-type population shares;
	// nil uses the training trace's shares.
	DeviceMix []float64
	// Interpret runs the uncompiled reference engine (interp.go) instead
	// of the compiled one. The output is byte-identical either way
	// (test-enforced); the compiled engine exists purely for speed, so
	// this knob matters only to equivalence tests and the benchmark
	// ledger.
	Interpret bool
}

// maxEventsPerUE is a safety valve against pathological fitted models
// (e.g. a zero-width sojourn on a self-loop); no realistic UE comes
// anywhere near it.
const maxEventsPerUE = 1 << 20

// minSojournSec keeps generated events strictly advancing in time: two
// control events of one UE are never closer than 1 ms (the trace
// granularity).
const minSojournSec = 0.001

// Generate synthesizes a control-plane trace for opt.NumUEs UEs starting
// at hour opt.StartHour, by running one per-UE semi-Markov generator per
// UE concurrently (§7). The result covers [StartHour*Hour,
// StartHour*Hour+Duration) and is sorted.
//
// The model is first lowered into a compiled form (compile.go) so the
// per-event work is pure array indexing; the interpreted reference
// engine is available via opt.Interpret and produces identical bytes.
func Generate(ms *ModelSet, opt GenOptions) (*trace.Trace, error) {
	jobs, machine, t0, end, workers, err := planGeneration(ms, opt)
	if err != nil {
		return nil, err
	}
	var cm *compiledModel
	if !opt.Interpret {
		cm = ms.lower(machine)
	}
	out := make([][]trace.Event, workers)
	par.Do(workers, func(w int) {
		var evs []trace.Event
		if cm != nil {
			// Compiled fast path: one stack-resident ueGen reused across
			// every UE of the stripe — zero per-UE allocations, no
			// interface hop, bulk queue drains.
			var g ueGen
			for i := w; i < len(jobs); i += workers {
				cd := cm.dev(jobs[i].dev)
				if cd == nil {
					continue
				}
				g.init(cm, cd, jobs[i].ue, jobs[i].rng, t0, end)
				evs = g.drainInto(evs)
			}
		} else {
			mk := genFactory(ms, machine, cm, t0, end)
			for i := w; i < len(jobs); i += workers {
				it := mk(jobs[i])
				if it == nil {
					continue
				}
				for {
					ev, ok := it.Next()
					if !ok {
						break
					}
					evs = append(evs, ev)
				}
			}
		}
		out[w] = evs
	})

	tr := trace.New()
	for _, j := range jobs {
		tr.Device[j.ue] = j.dev
	}
	n := 0
	for _, evs := range out {
		n += len(evs)
	}
	// Assembly: concatenate the per-worker runs and radix-sort the packed
	// (T-t0, UE, Type) key — the canonical order is exactly the key's
	// integer order, so the result is byte-identical to the k-way merge
	// the streaming path uses, without the O(n log k) comparator work.
	// The key-width check only fails for pathological spans (centuries)
	// or UE ids; the comparison sort it falls back to defines the same
	// order.
	tr.Events = make([]trace.Event, 0, n)
	for _, evs := range out {
		tr.Events = append(tr.Events, evs...)
	}
	if !trace.RadixSortEvents(tr.Events, t0) {
		tr.Sort()
	}
	return tr, nil
}

// Stream synthesizes the same trace Generate would, but delivers events
// one at a time in global (time, UE) order with O(NumUEs) memory instead
// of materializing everything: the per-UE generators are k-way merged
// with trace.MergeScan. fn returning an error aborts the stream. The
// device registration of every UE is reported through reg before any
// event is delivered.
//
// Use it to drive a live core with populations whose full trace would
// not fit in memory, or to pipe events into another system as they are
// drawn.
func Stream(ms *ModelSet, opt GenOptions, reg func(cp.UEID, cp.DeviceType) error, fn func(trace.Event) error) error {
	jobs, machine, t0, end, _, err := planGeneration(ms, opt)
	if err != nil {
		return err
	}
	if reg != nil {
		for _, j := range jobs {
			if err := reg(j.ue, j.dev); err != nil {
				return err
			}
		}
	}
	var cm *compiledModel
	if !opt.Interpret {
		cm = ms.lower(machine)
	}
	return mergeJobs(ms, machine, cm, jobs, t0, end, fn)
}

// compiledGens prepares one slab of per-UE compiled generators for jobs:
// a single allocation holds every ueGen, initialized in place, so the
// streaming merge paths carry no per-UE heap objects. The returned slice
// has one live generator per job with a device model, in job order.
func compiledGens(cm *compiledModel, jobs []genJob, t0, end cp.Millis) []ueGen {
	gens := make([]ueGen, len(jobs))
	m := 0
	for _, j := range jobs {
		cd := cm.dev(j.dev)
		if cd == nil {
			continue
		}
		gens[m].init(cm, cd, j.ue, j.rng, t0, end)
		m++
	}
	return gens[:m]
}

// mergeJobs k-way merges the per-UE iterators of jobs into fn.
func mergeJobs(ms *ModelSet, machine *sm.Machine, cm *compiledModel, jobs []genJob, t0, end cp.Millis, fn func(trace.Event) error) error {
	if cm != nil {
		gens := compiledGens(cm, jobs, t0, end)
		its := make([]trace.EventIterator, len(gens))
		for i := range gens {
			its[i] = &gens[i]
		}
		return trace.MergeScan(fn, its)
	}
	mk := genFactory(ms, machine, cm, t0, end)
	its := make([]trace.EventIterator, 0, len(jobs))
	for _, j := range jobs {
		if it := mk(j); it != nil {
			its = append(its, it)
		}
	}
	return trace.MergeScan(fn, its)
}

// mergeJobsBatches is the batch-refill counterpart of mergeJobs: the same
// per-UE streams, interleaved by trace.MergeBatches so the merge makes
// one NextRun call per ~64 events and one fn call per ~256.
func mergeJobsBatches(ms *ModelSet, machine *sm.Machine, cm *compiledModel, jobs []genJob, t0, end cp.Millis, fn func(*trace.Batch) error) error {
	if cm != nil {
		gens := compiledGens(cm, jobs, t0, end)
		its := make([]trace.BatchIterator, len(gens))
		for i := range gens {
			its[i] = &gens[i]
		}
		return trace.MergeBatches(fn, its)
	}
	mk := genFactory(ms, machine, cm, t0, end)
	its := make([]trace.BatchIterator, 0, len(jobs))
	for _, j := range jobs {
		if it := mk(j); it != nil {
			its = append(its, trace.AsBatchIterator(it))
		}
	}
	return trace.MergeBatches(fn, its)
}

// genFactory returns the per-UE iterator builder for the selected
// engine: compiled when cm is non-nil, the interpreted reference
// otherwise. Both consume the job's RNG stream identically and produce
// identical events (TestCompiledMatchesInterpreted). A nil return means
// the model has no device model for the job's device type.
func genFactory(ms *ModelSet, machine *sm.Machine, cm *compiledModel, t0, end cp.Millis) func(genJob) trace.EventIterator {
	if cm == nil {
		return func(j genJob) trace.EventIterator {
			dm := ms.Device(j.dev)
			if dm == nil {
				return nil
			}
			rng := j.rng
			return newUEInterp(machine, dm, j.ue, &rng, t0, end)
		}
	}
	return func(j genJob) trace.EventIterator {
		cd := cm.dev(j.dev)
		if cd == nil {
			return nil
		}
		return newUEGen(cm, cd, j.ue, j.rng, t0, end)
	}
}

// Source is a generator-backed trace.EventSource: scanning it draws the
// synthetic population on the fly, so a trace of any size can be fitted,
// evaluated, or written to disk without ever materializing it. Both
// Devices and Scan re-derive the population plan from the seed, so the
// source is re-iterable and successive passes agree. The compiled model
// is built once in NewSource and shared by every Scan.
type Source struct {
	ms  *ModelSet
	opt GenOptions
	cm  *compiledModel // nil when opt.Interpret
}

// NewSource validates the generation options once, compiles the model,
// and returns the lazy source; no events are drawn until Scan.
func NewSource(ms *ModelSet, opt GenOptions) (*Source, error) {
	_, machine, _, _, _, err := planGeneration(ms, opt)
	if err != nil {
		return nil, err
	}
	s := &Source{ms: ms, opt: opt}
	if !opt.Interpret {
		s.cm = ms.lower(machine)
	}
	return s, nil
}

// Devices reports every planned UE's device type in ascending UE order.
func (s *Source) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	jobs, _, _, _, _, err := planGeneration(s.ms, s.opt)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		if err := fn(j.ue, j.dev); err != nil {
			return err
		}
	}
	return nil
}

// Scan generates the population's events in canonical order.
func (s *Source) Scan(fn func(trace.Event) error) error {
	jobs, machine, t0, end, _, err := planGeneration(s.ms, s.opt)
	if err != nil {
		return err
	}
	return mergeJobs(s.ms, machine, s.cm, jobs, t0, end, fn)
}

// ScanBatches implements trace.BatchSource natively: the per-UE
// generators fill merge runs directly (one interface call per ~64 events)
// and events are delivered in reused struct-of-arrays batches. The event
// sequence is byte-identical to Scan's (TestBatchedMatchesStreamed).
func (s *Source) ScanBatches(fn func(*trace.Batch) error) error {
	jobs, machine, t0, end, _, err := planGeneration(s.ms, s.opt)
	if err != nil {
		return err
	}
	return mergeJobsBatches(s.ms, machine, s.cm, jobs, t0, end, fn)
}

// genJob is one UE's generation assignment. The RNG is held by value —
// the job slice doubles as the arena for per-UE stream state, so planning
// a million-UE population performs one allocation, not one per UE.
type genJob struct {
	ue  cp.UEID
	dev cp.DeviceType
	rng stats.RNG
}

// planGeneration validates options and pre-derives every UE's device and
// RNG stream, so results do not depend on scheduling.
func planGeneration(ms *ModelSet, opt GenOptions) ([]genJob, *sm.Machine, cp.Millis, cp.Millis, int, error) {
	if opt.NumUEs <= 0 {
		return nil, nil, 0, 0, 0, fmt.Errorf("core: NumUEs must be positive")
	}
	if opt.StartHour < 0 || opt.StartHour >= HoursPerDay {
		return nil, nil, 0, 0, 0, fmt.Errorf("core: StartHour %d out of range", opt.StartHour)
	}
	if opt.Duration <= 0 {
		return nil, nil, 0, 0, 0, fmt.Errorf("core: Duration must be positive")
	}
	machine, err := ms.Machine()
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	mix, err := deviceMix(ms, opt.DeviceMix)
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	workers := par.Workers(opt.Workers, opt.NumUEs)
	t0 := cp.Millis(opt.StartHour) * cp.Hour
	end := t0 + opt.Duration
	root := stats.NewRNG(opt.Seed)
	jobs := make([]genJob, opt.NumUEs)
	for i := range jobs {
		jobs[i].ue = cp.UEID(i)
		jobs[i].rng = root.SplitVal(uint64(i) + 1)
		jobs[i].dev = pickDevice(mix, &jobs[i].rng)
	}
	return jobs, machine, t0, end, workers, nil
}

// deviceMix resolves the device-type population shares.
func deviceMix(ms *ModelSet, override []float64) ([]float64, error) {
	mix := make([]float64, cp.NumDeviceTypes)
	if override != nil {
		if len(override) != cp.NumDeviceTypes {
			return nil, fmt.Errorf("core: DeviceMix must have %d entries", cp.NumDeviceTypes)
		}
		copy(mix, override)
	} else {
		for d, dm := range ms.Devices {
			if dm != nil {
				mix[d] = dm.Share
			}
		}
	}
	var sum float64
	for d, m := range mix {
		if m > 0 && ms.Devices[d] == nil {
			return nil, fmt.Errorf("core: DeviceMix requests %v but the model has no such device", cp.DeviceType(d))
		}
		sum += m
	}
	if sum <= 0 {
		return nil, fmt.Errorf("core: empty device mix")
	}
	for d := range mix {
		mix[d] /= sum
	}
	return mix, nil
}

func pickDevice(mix []float64, r *stats.RNG) cp.DeviceType {
	u := r.Float64()
	var acc float64
	for d, m := range mix {
		acc += m
		if u < acc {
			return cp.DeviceType(d)
		}
	}
	for d := len(mix) - 1; d >= 0; d-- {
		if mix[d] > 0 {
			return cp.DeviceType(d)
		}
	}
	return cp.Phone
}

// pending is a scheduled future event of one level of the generator.
type pending struct {
	at    cp.Millis
	ev    cp.EventType
	valid bool
	// toTop / toBot are the successor states (only one is meaningful,
	// depending on which level owns the pending event).
	toTop cp.UEState
	toBot sm.State
}

// ueGen is the compiled per-UE traffic generator (§7): the same
// two-level semi-Markov race as the interpreted reference (interp.go),
// but running on the dense compiledModel tables, so the steady-state
// step performs no map lookups, no fallback-chain walks, no edge-list
// scans, and no allocations (TestUEGenSteadyStateAllocs). Draw-for-draw
// it consumes the RNG exactly like ueInterp, so the two produce
// byte-identical traces.
type ueGen struct {
	cm      *compiledModel
	cd      *cDevice
	ue      cp.UEID
	rng     stats.RNG // by value: the generator is self-contained, slab-friendly state
	t0, end cp.Millis

	personaIdx int
	started    bool
	exhausted  bool
	emitted    int

	top    cp.UEState
	bottom sm.State
	topP   pending
	botP   pending

	// freeAt/freeOn replace the interpreter's map: the free-running
	// processes' next firing time per event type, fixed-size so the
	// race scan is a bounded loop over an array.
	freeAt [cp.NumEventTypes]cp.Millis
	freeOn [cp.NumEventTypes]bool

	// queue holds events already decided but not yet delivered; qhead is
	// the next to deliver, qlen the fill level. A step pushes at most
	// ueGenMaxPush events (the flush guard in step bounds case 1 at 8+1)
	// and the queue always drains fully between steps, so a fixed-size
	// array suffices — no per-UE heap allocation at all.
	queue [ueGenQueueCap]trace.Event
	qhead int
	qlen  int
}

// ueGenMaxPush is the most events one startup or step call can push: the
// case-1 flush guard emits up to 8 sub-machine events plus the top event.
const ueGenMaxPush = 9

// ueGenQueueCap leaves slack above ueGenMaxPush so the bound is not
// load-bearing on the exact guard constant.
const ueGenQueueCap = 12

// newUEGen prepares the compiled iterator; no work happens until the
// first Next. The persona pick consumes the stream's next draw exactly
// like DeviceModel.pickPersona.
func newUEGen(cm *compiledModel, cd *cDevice, ue cp.UEID, rng stats.RNG, t0, end cp.Millis) *ueGen {
	g := &ueGen{}
	g.init(cm, cd, ue, rng, t0, end)
	return g
}

// init (re)initializes the generator in place, so per-worker code can
// reuse one ueGen value — or a slab of them — across the whole
// population instead of heap-allocating one per UE.
func (g *ueGen) init(cm *compiledModel, cd *cDevice, ue cp.UEID, rng stats.RNG, t0, end cp.Millis) {
	*g = ueGen{cm: cm, cd: cd, ue: ue, rng: rng, t0: t0, end: end, personaIdx: -1}
	if len(cd.personaCum) > 0 {
		g.personaIdx = pickByCum(cd.personaCum, g.rng.Float64())
	}
}

// pickByCum returns the first index whose cumulative probability
// exceeds u, defaulting to the last — the same comparisons the
// interpreter's serial accumulation makes, on the precomputed partial
// sums.
func pickByCum(cum []float64, u float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// Next returns the UE's next event, or ok=false when the window is done.
//
//cplint:hotpath compiled engine steady state; TestUEGenSteadyStateAllocs gates it at exactly 0 allocs
func (g *ueGen) Next() (trace.Event, bool) {
	for {
		if g.qhead < g.qlen {
			ev := g.queue[g.qhead]
			g.qhead++
			if g.qhead == g.qlen {
				g.qhead, g.qlen = 0, 0
			}
			g.emitted++
			return ev, true
		}
		if g.exhausted || g.emitted >= maxEventsPerUE {
			return trace.Event{}, false
		}
		if !g.started {
			g.startup()
			continue
		}
		g.step()
	}
}

// drainInto runs the generator to exhaustion, appending every event to
// evs — the bulk counterpart of looping Next used by Generate's workers.
// Queued events move with one bounded copy per step instead of a pop per
// event, and nothing crosses an interface.
//
//cplint:hotpath the batch drain: one bulk append per engine step
func (g *ueGen) drainInto(evs []trace.Event) []trace.Event {
	for {
		if g.qhead < g.qlen {
			// Queued events deliver unconditionally, exactly like Next;
			// the safety cap only stops further stepping.
			evs = append(evs, g.queue[g.qhead:g.qlen]...)
			g.emitted += g.qlen - g.qhead
			g.qhead, g.qlen = 0, 0
			continue
		}
		if g.exhausted || g.emitted >= maxEventsPerUE {
			return evs
		}
		if !g.started {
			g.startup()
			continue
		}
		g.step()
	}
}

// NextRun implements trace.BatchIterator: it fills dst with the
// generator's next events, one engine step at a time, delivering exactly
// the sequence repeated Next calls would.
//
//cplint:hotpath the batched per-UE fill: one call per merge run instead of per event
func (g *ueGen) NextRun(dst []trace.Event) int {
	n := 0
	for n < len(dst) {
		if g.qhead < g.qlen {
			dst[n] = g.queue[g.qhead]
			n++
			g.qhead++
			g.emitted++
			if g.qhead == g.qlen {
				g.qhead, g.qlen = 0, 0
			}
			continue
		}
		if g.exhausted || g.emitted >= maxEventsPerUE {
			break
		}
		if !g.started {
			g.startup()
			continue
		}
		g.step()
	}
	return n
}

// cellAt resolves the compiled parameter cell for time t: the persona's
// cluster for the hour, with -1 (the fallback cell) when the UE has no
// persona.
func (g *ueGen) cellAt(t cp.Millis) *cCell {
	h := t.HourOfDay()
	cl := int16(-1)
	if g.personaIdx >= 0 {
		cl = g.cd.personaCl[g.personaIdx][h]
	}
	return &g.cd.cells[h][cl+1]
}

//cplint:hotpath writes into the fixed-size staging queue, no allocation ever
func (g *ueGen) push(t cp.Millis, e cp.EventType) {
	g.queue[g.qlen] = trace.Event{T: t, UE: g.ue, Type: e}
	g.qlen++
}

// startup finds the first event (§5.4): a UE silent in one hour re-rolls
// the next hour's first-event model. Draw order per hour matches
// FirstEventModel.sample: the PNone draw, then (if active) the category
// draw and the offset sample.
func (g *ueGen) startup() {
	g.started = true
	for hourStart := g.t0; hourStart < g.end; hourStart += cp.Hour {
		cf := &g.cellAt(hourStart).first
		if !cf.ok {
			continue
		}
		if g.rng.Float64() < cf.pnone {
			continue
		}
		u := g.rng.Float64()
		cat := &cf.cats[len(cf.cats)-1]
		for i := range cf.cats {
			if u < cf.cats[i].cum {
				cat = &cf.cats[i]
				break
			}
		}
		off := cf.offset.sample(&g.rng)
		if off < 0 {
			off = 0
		}
		if off >= 3600 {
			off = 3599.999
		}
		t := hourStart + cp.MillisFromSeconds(off)
		if t >= g.end {
			break
		}
		g.push(t, cat.ev)
		// The fitted category carries the post-event machine state
		// (compile resolved the out-of-range → Forced fallback).
		g.top = cat.top
		g.bottom = cat.fine
		g.drawTop(t)
		g.drawBot(t)
		g.drawFree(t)
		return
	}
	g.exhausted = true
}

// step advances the two-level race by one firing, pushing the resulting
// event(s) onto the queue (or marking the generator exhausted).
//
//cplint:hotpath the compiled engine step: runs once per generated event
func (g *ueGen) step() {
	next := cp.Millis(math.MaxInt64)
	kind := 0 // 0 none, 1 top, 2 bottom, 3 free
	var freeEv cp.EventType
	if g.topP.valid && g.topP.at < next {
		next, kind = g.topP.at, 1
	}
	if g.botP.valid && g.botP.at < next {
		next, kind = g.botP.at, 2
	}
	// Fixed ascending event-type order, same tie-break as the
	// interpreter's scan over cp.EventTypes.
	for e := range g.freeAt {
		if g.freeOn[e] && g.freeAt[e] < next {
			next, kind, freeEv = g.freeAt[e], 3, cp.EventType(e)
		}
	}
	if kind == 0 || next >= g.end {
		g.exhausted = true
		return
	}
	switch kind {
	case 1:
		// The top event must be legal from the current bottom state
		// (the starred arrow in Fig. 5: SRV_REQ may not leave IDLE from
		// TAU_S_IDLE). If it is not, flush the sub-machine first: the
		// protocol mandates the TAU's S1_CONN_REL before the connection
		// can be re-established.
		at := next
		for guard := 0; guard < 8; guard++ {
			if g.cm.next[g.bottom][g.topP.ev] >= 0 {
				break
			}
			var ev cp.EventType
			var to sm.State
			if g.botP.valid {
				ev, to = g.botP.ev, g.botP.toBot
			} else if g.cm.bridgeOK[g.bottom] {
				ev, to = g.cm.bridgeEv[g.bottom], g.cm.bridgeTo[g.bottom]
			} else {
				break
			}
			g.push(at, ev)
			g.bottom = to
			at += cp.Millis(1)
		}
		g.push(at, g.topP.ev)
		g.top = g.topP.toTop
		g.bottom = g.cm.subEntry[g.top]
		g.drawTop(at)
		g.drawBot(at)
		g.drawFree(at)
	case 2:
		g.push(next, g.botP.ev)
		g.bottom = g.botP.toBot
		g.drawBot(next)
	case 3:
		g.push(next, freeEv)
		g.redrawOneFree(freeEv, next)
	}
}

//cplint:hotpath one draw per top-level firing
func (g *ueGen) drawTop(now cp.Millis) {
	g.topP = pending{}
	trans := g.cellAt(now).top[g.top]
	if len(trans) == 0 {
		return
	}
	u := g.rng.Float64()
	tp := &trans[pickByCum2(trans, u)]
	if !tp.ok {
		return
	}
	d := math.Max(tp.soj.sample(&g.rng), minSojournSec)
	g.topP = pending{at: now + cp.MillisFromSeconds(d), ev: tp.ev, valid: true, toTop: tp.to}
}

// pickByCum2 is pickByCum over cTopTrans (kept separate so the hot loop
// indexes the cum field without building a float slice).
func pickByCum2(trans []cTopTrans, u float64) int {
	for i := range trans {
		if u < trans[i].cum {
			return i
		}
	}
	return len(trans) - 1
}

//cplint:hotpath one draw per bottom-level firing
func (g *ueGen) drawBot(now cp.Millis) {
	g.botP = pending{}
	bs := &g.cellAt(now).bottom[g.bottom]
	if !bs.present {
		return
	}
	// KM tail mass: the probability the sub-machine never fires within
	// observable horizons; the bottom stays silent until the next
	// top-level transition re-enters it.
	if bs.pexit > 0 && g.rng.Float64() < bs.pexit {
		return
	}
	if len(bs.trans) == 0 {
		return
	}
	u := g.rng.Float64()
	idx := len(bs.trans) - 1
	for i := range bs.trans {
		if u < bs.trans[i].cum {
			idx = i
			break
		}
	}
	tp := &bs.trans[idx]
	if !tp.ok {
		return
	}
	d := math.Max(tp.soj.sample(&g.rng), minSojournSec)
	g.botP = pending{at: now + cp.MillisFromSeconds(d), ev: tp.ev, valid: true, toBot: tp.to}
}

//cplint:hotpath re-arms every free-event clock after a macro transition
func (g *ueGen) drawFree(now cp.Millis) {
	for i := range g.freeOn {
		g.freeOn[i] = false
	}
	if g.top == cp.StateDeregistered {
		return
	}
	free := g.cellAt(now).free
	for i := range free {
		fp := &free[i]
		d := math.Max(fp.inter.sample(&g.rng), minSojournSec)
		g.freeAt[fp.ev] = now + cp.MillisFromSeconds(d)
		g.freeOn[fp.ev] = true
	}
}

//cplint:hotpath re-arms one free-event clock after it fires
func (g *ueGen) redrawOneFree(e cp.EventType, now cp.Millis) {
	free := g.cellAt(now).free
	for i := range free {
		fp := &free[i]
		if fp.ev == e {
			d := math.Max(fp.inter.sample(&g.rng), minSojournSec)
			g.freeAt[e] = now + cp.MillisFromSeconds(d)
			g.freeOn[e] = true
			return
		}
	}
	g.freeOn[e] = false
}

// topNext gives the macro-level successor for a Category-1 event leaving
// macro state s. It mirrors the shared top-level structure of all three
// machines.
func topNext(s cp.UEState, e cp.EventType) (cp.UEState, bool) {
	switch e {
	case cp.Attach:
		if s == cp.StateDeregistered {
			return cp.StateConnected, true
		}
	case cp.Detach:
		if s != cp.StateDeregistered {
			return cp.StateDeregistered, true
		}
	case cp.ServiceRequest:
		if s == cp.StateIdle {
			return cp.StateConnected, true
		}
	case cp.S1ConnRelease:
		if s == cp.StateConnected {
			return cp.StateIdle, true
		}
	default: // Category-2 (HO, TAU): macro state never moves
	}
	return s, false
}
