package core

import (
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// toyTrace synthesizes a protocol-conformant multi-UE trace by walking
// the LTE two-level machine directly with simple stochastic choices. It
// is correct by construction (only machine edges are taken), which makes
// it a clean fitting target for tests: any violation in a model-generated
// trace is then the model's fault.
func toyTrace(t testing.TB, nUEs int, dur cp.Millis, seed uint64) *trace.Trace {
	t.Helper()
	m := sm.LTE2Level()
	root := stats.NewRNG(seed)
	tr := trace.New()
	for i := 0; i < nUEs; i++ {
		ue := cp.UEID(i)
		var dev cp.DeviceType
		switch i % 3 {
		case 0:
			dev = cp.Phone
		case 1:
			dev = cp.ConnectedCar
		default:
			dev = cp.Tablet
		}
		if err := tr.SetDevice(ue, dev); err != nil {
			t.Fatal(err)
		}
		r := root.Split(uint64(i))
		state := sm.LTEDeregistered
		// Stagger power-on within the first 10 minutes.
		now := cp.MillisFromSeconds(r.Float64() * 600)
		for now < dur {
			ev, next, wait := toyStep(m, state, dev, r)
			now += cp.MillisFromSeconds(wait)
			if now >= dur {
				break
			}
			tr.Append(trace.Event{T: now, UE: ue, Type: ev})
			state = next
		}
	}
	tr.Sort()
	return tr
}

// toyStep picks the next edge and sojourn from a state. Sojourns are
// lognormal (heavy-tailed, distinctly non-exponential) so the toy world
// also exercises the paper's "Poisson fails" findings at small scale.
func toyStep(m *sm.Machine, s sm.State, dev cp.DeviceType, r *stats.RNG) (cp.EventType, sm.State, float64) {
	mobility := 1.0
	if dev == cp.ConnectedCar {
		mobility = 4.0
	}
	type choice struct {
		ev   cp.EventType
		w    float64
		wait float64
	}
	var cs []choice
	switch s {
	case sm.LTEDeregistered:
		cs = []choice{{cp.Attach, 1, r.Lognormal(5.5, 1.0)}}
	case sm.LTESrvReqS, sm.LTEHoS, sm.LTETauSConn:
		cs = []choice{
			{cp.S1ConnRelease, 10, r.Lognormal(2.5, 1.2)},
			{cp.Handover, 1.5 * mobility, r.Lognormal(2.0, 0.8)},
			{cp.TrackingAreaUpdate, 0.5 * mobility, r.Lognormal(3.0, 0.7)},
			{cp.Detach, 0.05, r.Lognormal(4.0, 0.5)},
		}
	case sm.LTES1RelS1, sm.LTES1RelS2:
		cs = []choice{
			{cp.ServiceRequest, 10, r.Lognormal(3.5, 1.5)},
			{cp.TrackingAreaUpdate, 0.7 * mobility, r.Lognormal(5.0, 0.8)},
			{cp.Detach, 0.05, r.Lognormal(5.0, 0.5)},
		}
	case sm.LTETauSIdle:
		cs = []choice{{cp.S1ConnRelease, 1, r.Lognormal(0.0, 0.5)}}
	}
	// Keep only choices that are actual machine edges from s.
	valid := cs[:0]
	for _, c := range cs {
		if _, ok := m.Next(s, c.ev); ok {
			valid = append(valid, c)
		}
	}
	var totalW float64
	for _, c := range valid {
		totalW += c.w
	}
	u := r.Float64() * totalW
	var acc float64
	pick := valid[len(valid)-1]
	for _, c := range valid {
		acc += c.w
		if u < acc+1e-12 {
			pick = c
			break
		}
	}
	next, _ := m.Next(s, pick.ev)
	return pick.ev, next, pick.wait
}

func TestToyTraceIsConformant(t *testing.T) {
	tr := toyTrace(t, 30, 2*cp.Hour, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m := sm.LTE2Level()
	per := tr.PerUE()
	for ue, evs := range per {
		res := sm.Replay(m, sm.InferInitial(m, evs), evs)
		if res.Violations != 0 {
			t.Fatalf("UE %d: %d violations in toy trace", ue, res.Violations)
		}
	}
	if tr.Len() == 0 {
		t.Fatal("toy trace is empty")
	}
}
