package core

import (
	"testing"
	"testing/quick"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// sharedToyModel amortizes one fit across the property tests.
var sharedToyModel *ModelSet

func toyModel(t *testing.T) *ModelSet {
	t.Helper()
	if sharedToyModel == nil {
		sharedToyModel = fitToy(t, 45, 3*cp.Hour, 77, FitOptions{})
	}
	return sharedToyModel
}

func TestPropertyPerUETimesStrictlyIncrease(t *testing.T) {
	ms := toyModel(t)
	f := func(seed uint64) bool {
		gen, err := Generate(ms, GenOptions{NumUEs: 30, Duration: cp.Hour, Seed: seed})
		if err != nil {
			return false
		}
		for _, evs := range gen.PerUE() {
			for i := 1; i < len(evs); i++ {
				if evs[i].T <= evs[i-1].T {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEventsWithinWindow(t *testing.T) {
	ms := toyModel(t)
	f := func(seed uint64, startRaw uint8) bool {
		start := int(startRaw % 24)
		gen, err := Generate(ms, GenOptions{
			NumUEs: 20, StartHour: start, Duration: cp.Hour, Seed: seed,
		})
		if err != nil {
			return false
		}
		t0 := cp.Millis(start) * cp.Hour
		for _, e := range gen.Events {
			if e.T < t0 || e.T >= t0+cp.Hour {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGeneratedTracesConform(t *testing.T) {
	ms := toyModel(t)
	m := sm.LTE2Level()
	f := func(seed uint64) bool {
		gen, err := Generate(ms, GenOptions{NumUEs: 25, Duration: cp.Hour, Seed: seed})
		if err != nil {
			return false
		}
		for _, evs := range gen.PerUE() {
			if len(evs) == 0 {
				continue
			}
			if sm.Replay(m, sm.InferInitial(m, evs), evs).Violations != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllUEsRegisteredInOutput(t *testing.T) {
	ms := toyModel(t)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		gen, err := Generate(ms, GenOptions{NumUEs: n, Duration: cp.Hour, Seed: seed})
		if err != nil {
			return false
		}
		if gen.NumUEs() != n {
			return false
		}
		return gen.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestFitTolerantOfProtocolNoise injects protocol-violating events into
// a conformant trace; fitting must succeed and still produce a valid,
// generatable model (real carrier traces contain glitches).
func TestFitTolerantOfProtocolNoise(t *testing.T) {
	tr := toyTrace(t, 40, 2*cp.Hour, 88)
	// Inject HO events at random times for random UEs, with no regard
	// for protocol state.
	noisy := trace.New()
	for ue, d := range tr.Device {
		noisy.SetDevice(ue, d)
	}
	noisy.Events = append(noisy.Events, tr.Events...)
	for i := 0; i < 200; i++ {
		noisy.Events = append(noisy.Events, trace.Event{
			T:    cp.Millis(i) * 30 * cp.Second,
			UE:   cp.UEID(i % 40),
			Type: cp.Handover,
		})
	}
	noisy.Sort()
	ms, err := Fit(noisy, FitOptions{Cluster: clusterOptSmall()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(ms, GenOptions{NumUEs: 40, Duration: cp.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() == 0 {
		t.Fatal("noisy-fit model generated nothing")
	}
}

// TestGenerateFromTruncatedModelDegradesGracefully removes hour models to
// simulate partially trained models; generation must still work through
// the fallback chain.
func TestGenerateFromTruncatedModelDegradesGracefully(t *testing.T) {
	ms := fitToy(t, 30, 2*cp.Hour, 89, FitOptions{})
	dm := ms.Device(cp.Phone)
	// Blow away every per-hour cluster model, keeping only the global
	// fallback.
	for h := range dm.Hours {
		dm.Hours[h].Clusters = nil
		dm.Hours[h].Aggregate = nil
		dm.Hours[h].Weights = nil
	}
	gen, err := Generate(ms, GenOptions{
		NumUEs: 50, Duration: cp.Hour, Seed: 2,
		DeviceMix: []float64{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() == 0 {
		t.Fatal("global-only model generated nothing")
	}
}
