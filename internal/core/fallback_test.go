package core

import (
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
)

// mkDeviceModel builds a minimal DeviceModel with distinguishable
// parameters at each fallback level so lookups can be traced.
func mkDeviceModel() *DeviceModel {
	tp := func(mean float64) []TransitionParam {
		return []TransitionParam{{
			Event:   cp.ServiceRequest,
			P:       1,
			Sojourn: SojournModel{Kind: SojournConst, Value: mean},
		}}
	}
	clusterLevel := ClusterModel{
		Top:    make([]StateParam, cp.NumUEStates),
		Bottom: make([]StateParam, sm.NumLTEStates),
	}
	clusterLevel.Top[cp.StateIdle].Out = tp(1)
	clusterLevel.Bottom[sm.LTESrvReqS].Out = []TransitionParam{{
		Event: cp.Handover, P: 1, Sojourn: SojournModel{Kind: SojournConst, Value: 1},
	}}

	hourAgg := ClusterModel{Top: make([]StateParam, cp.NumUEStates)}
	hourAgg.Top[cp.StateIdle].Out = tp(2)
	hourAgg.Top[cp.StateConnected].Out = []TransitionParam{{
		Event: cp.S1ConnRelease, P: 1, Sojourn: SojournModel{Kind: SojournConst, Value: 2},
	}}

	global := ClusterModel{Top: make([]StateParam, cp.NumUEStates)}
	global.Top[cp.StateIdle].Out = tp(3)
	global.Top[cp.StateConnected].Out = []TransitionParam{{
		Event: cp.S1ConnRelease, P: 1, Sojourn: SojournModel{Kind: SojournConst, Value: 3},
	}}
	global.Top[cp.StateDeregistered].Out = []TransitionParam{{
		Event: cp.Attach, P: 1, Sojourn: SojournModel{Kind: SojournConst, Value: 3},
	}}
	global.First = FirstEventModel{
		PNone:  0,
		Cats:   []FirstCat{{Event: cp.ServiceRequest, State: sm.LTESrvReqS, P: 1}},
		Offset: SojournModel{Kind: SojournConst, Value: 10},
	}

	dm := &DeviceModel{Hours: make([]HourModel, HoursPerDay), Global: &global}
	dm.Hours[0].Clusters = []ClusterModel{clusterLevel}
	agg := hourAgg
	dm.Hours[0].Aggregate = &agg
	dm.Personas = []Persona{{Cluster: make([]int, HoursPerDay), Weight: 1}}
	return dm
}

func TestTopParamsFallbackChain(t *testing.T) {
	dm := mkDeviceModel()
	// Cluster level wins when present.
	if got := dm.topParams(0, 0, cp.StateIdle); got[0].Sojourn.Value != 1 {
		t.Fatalf("cluster level not used: %v", got[0].Sojourn.Value)
	}
	// State absent at cluster level: hour aggregate.
	if got := dm.topParams(0, 0, cp.StateConnected); got[0].Sojourn.Value != 2 {
		t.Fatalf("hour aggregate not used: %v", got[0].Sojourn.Value)
	}
	// State absent at both: global.
	if got := dm.topParams(0, 0, cp.StateDeregistered); got[0].Sojourn.Value != 3 {
		t.Fatalf("global not used: %v", got[0].Sojourn.Value)
	}
	// Untrained hour: global.
	if got := dm.topParams(5, 0, cp.StateIdle); got[0].Sojourn.Value != 3 {
		t.Fatalf("global not used for untrained hour: %v", got[0].Sojourn.Value)
	}
	// Out-of-range hour and cluster fall through safely.
	if got := dm.topParams(-1, 99, cp.StateIdle); got[0].Sojourn.Value != 3 {
		t.Fatalf("out-of-range lookup: %v", got[0].Sojourn.Value)
	}
}

func TestBottomParamsFallbackChain(t *testing.T) {
	dm := mkDeviceModel()
	if sp := dm.bottomParams(0, 0, sm.LTESrvReqS); sp == nil || sp.Out[0].Event != cp.Handover {
		t.Fatal("cluster bottom not used")
	}
	// No bottom anywhere else.
	if sp := dm.bottomParams(0, 0, sm.LTETauSIdle); sp != nil {
		t.Fatalf("unexpected bottom params: %+v", sp)
	}
	if sp := dm.bottomParams(7, 0, sm.LTESrvReqS); sp != nil {
		t.Fatal("untrained hour should fall to global (which has no bottom)")
	}
}

func TestFirstEventFallback(t *testing.T) {
	dm := mkDeviceModel()
	// Hour 0 cluster/aggregate have no first-event model: global's wins.
	fe, ok := dm.firstEvent(0, 0)
	if !ok || fe.Offset.Value != 10 {
		t.Fatalf("first event fallback: %+v ok=%v", fe, ok)
	}
	if _, ok := (&DeviceModel{Hours: make([]HourModel, HoursPerDay)}).firstEvent(0, 0); ok {
		t.Fatal("empty model reported a first-event model")
	}
}

func TestPickPersonaEdge(t *testing.T) {
	dm := mkDeviceModel()
	r := stats.NewRNG(1)
	if idx := dm.pickPersona(r); idx != 0 {
		t.Fatalf("persona = %d", idx)
	}
	empty := &DeviceModel{}
	if idx := empty.pickPersona(r); idx != -1 {
		t.Fatalf("empty personas = %d", idx)
	}
}

func TestGenerateFromHandBuiltModel(t *testing.T) {
	// The tiny hand-built model must generate: SRV_REQ at offset 10 s,
	// then S1_CONN_REL after 2 s (hour aggregate), then SRV_REQ after
	// 1 s (cluster idle), cycling.
	ms := &ModelSet{
		MachineName: "LTE-2LEVEL",
		Method:      "hand",
		Devices:     make([]*DeviceModel, cp.NumDeviceTypes),
	}
	ms.Devices[cp.Phone] = mkDeviceModel()
	ms.Devices[cp.Phone].Share = 1
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(ms, GenOptions{NumUEs: 3, Duration: cp.Minute, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic race: SRV_REQ at the 10 s offset enters CONNECTED;
	// the bottom HO (1 s) fires before the top S1_CONN_REL (2 s); the
	// sub-machine then sits in HO_S with no parameters until the top
	// release at 12 s; idle lasts 1 s (cluster model) and the cycle
	// repeats.
	per := tr.PerUE()
	for ue, evs := range per {
		if len(evs) < 4 {
			t.Fatalf("UE %d generated %d events", ue, len(evs))
		}
		want := []struct {
			e cp.EventType
			t cp.Millis
		}{
			{cp.ServiceRequest, 10 * cp.Second},
			{cp.Handover, 11 * cp.Second},
			{cp.S1ConnRelease, 12 * cp.Second},
			{cp.ServiceRequest, 13 * cp.Second},
		}
		for i, w := range want {
			if evs[i].Type != w.e || evs[i].T != w.t {
				t.Fatalf("UE %d event %d = %v, want %v@%d", ue, i, evs[i], w.e, w.t)
			}
		}
	}
}
