package core

import (
	"math"
	"testing"

	"cptraffic/internal/stats"
)

func TestFitSojournTable(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := FitSojourn(samples, SojournTable)
	if s.Kind != SojournTable || !s.Valid() {
		t.Fatalf("got %+v", s)
	}
	if m := s.Mean(); math.Abs(m-5.5) > 0.5 {
		t.Fatalf("mean = %v", m)
	}
	// Small samples get small tables.
	if len(s.Q) > len(samples)+1 {
		t.Fatalf("table has %d points for %d samples", len(s.Q), len(samples))
	}
}

func TestFitSojournExp(t *testing.T) {
	r := stats.NewRNG(1)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.Exp(0.5)
	}
	s := FitSojourn(samples, SojournExp)
	if s.Kind != SojournExp {
		t.Fatalf("kind = %q", s.Kind)
	}
	if math.Abs(s.Lambda-0.5) > 0.05 {
		t.Fatalf("lambda = %v", s.Lambda)
	}
}

func TestFitSojournDegenerate(t *testing.T) {
	if s := FitSojourn(nil, SojournTable); s.Kind != SojournConst || s.Value != 60 {
		t.Fatalf("empty -> %+v", s)
	}
	if s := FitSojourn([]float64{7, 7, 7}, SojournTable); s.Kind != SojournConst || s.Value != 7 {
		t.Fatalf("constant -> %+v", s)
	}
	if s := FitSojourn([]float64{3}, SojournExp); s.Kind != SojournConst || s.Value != 3 {
		t.Fatalf("single -> %+v", s)
	}
	// Exp fit of a degenerate (all-zero) sample falls back to const.
	if s := FitSojourn([]float64{0, 0, 0.0}, SojournExp); s.Kind != SojournConst {
		t.Fatalf("zero-exp -> %+v", s)
	}
}

func TestSojournSampleBounds(t *testing.T) {
	r := stats.NewRNG(2)
	table := FitSojourn([]float64{1, 2, 3, 4, 5}, SojournTable)
	for i := 0; i < 1000; i++ {
		x := table.Sample(r)
		if x < 1 || x > 5 {
			t.Fatalf("table sample %v outside [1,5]", x)
		}
	}
	c := SojournModel{Kind: SojournConst, Value: 4.5}
	if c.Sample(r) != 4.5 {
		t.Fatal("const sample wrong")
	}
	e := SojournModel{Kind: SojournExp, Lambda: 2}
	for i := 0; i < 100; i++ {
		if e.Sample(r) <= 0 {
			t.Fatal("exp sample non-positive")
		}
	}
}

func TestSojournValidAndDist(t *testing.T) {
	cases := []struct {
		s    SojournModel
		want bool
	}{
		{SojournModel{Kind: SojournExp, Lambda: 1}, true},
		{SojournModel{Kind: SojournExp, Lambda: 0}, false},
		{SojournModel{Kind: SojournConst, Value: 0}, true},
		{SojournModel{Kind: SojournConst, Value: -1}, false},
		{SojournModel{Kind: SojournTable, Q: []float64{1, 2}}, true},
		{SojournModel{Kind: SojournTable, Q: []float64{2, 1}}, false},
		{SojournModel{Kind: "bogus"}, false},
	}
	for i, c := range cases {
		if c.s.Valid() != c.want {
			t.Errorf("case %d: Valid() = %v", i, !c.want)
		}
	}
	cs := SojournModel{Kind: SojournConst, Value: 9}
	if m := cs.Dist().Mean(); m != 9 {
		t.Fatalf("const dist mean = %v", m)
	}
}

func TestSojournPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SojournModel{Kind: "bogus"}.Sample(stats.NewRNG(1))
}
