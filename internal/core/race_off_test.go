//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression tests skip under it because instrumentation
// changes allocation counts.
const raceEnabled = false
