package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

func TestStreamMatchesGenerate(t *testing.T) {
	ms := fitToy(t, 40, 2*cp.Hour, 90, FitOptions{})
	opt := GenOptions{NumUEs: 80, Duration: cp.Hour, Seed: 5}
	batch, err := Generate(ms, opt)
	if err != nil {
		t.Fatal(err)
	}
	streamed := trace.New()
	err = Stream(ms, opt,
		func(ue cp.UEID, d cp.DeviceType) error { return streamed.SetDevice(ue, d) },
		func(ev trace.Event) error {
			streamed.Events = append(streamed.Events, ev)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.Device, batch.Device) {
		t.Fatal("device registrations differ")
	}
	if !reflect.DeepEqual(streamed.Events, batch.Events) {
		t.Fatalf("streamed %d events, batch %d; contents differ",
			len(streamed.Events), len(batch.Events))
	}
}

func TestStreamDeliversInOrder(t *testing.T) {
	ms := fitToy(t, 30, 2*cp.Hour, 91, FitOptions{})
	var prev trace.Event
	first := true
	err := Stream(ms, GenOptions{NumUEs: 60, Duration: cp.Hour, Seed: 6}, nil,
		func(ev trace.Event) error {
			if !first && ev.Before(prev) {
				t.Fatalf("out of order: %v after %v", ev, prev)
			}
			prev, first = ev, false
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if first {
		t.Fatal("stream delivered nothing")
	}
}

func TestStreamAbortsOnError(t *testing.T) {
	ms := fitToy(t, 20, cp.Hour, 92, FitOptions{})
	boom := errors.New("boom")
	count := 0
	err := Stream(ms, GenOptions{NumUEs: 30, Duration: cp.Hour, Seed: 7}, nil,
		func(trace.Event) error {
			count++
			if count == 5 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if count != 5 {
		t.Fatalf("delivered %d events after abort", count)
	}
	// Registration errors abort too.
	err = Stream(ms, GenOptions{NumUEs: 5, Duration: cp.Hour, Seed: 7},
		func(cp.UEID, cp.DeviceType) error { return boom },
		func(trace.Event) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("registration err = %v", err)
	}
}

func TestStreamValidatesOptions(t *testing.T) {
	ms := fitToy(t, 10, cp.Hour, 93, FitOptions{})
	if err := Stream(ms, GenOptions{NumUEs: 0, Duration: cp.Hour}, nil, nil); err == nil {
		t.Fatal("NumUEs=0 accepted")
	}
}

func TestSourceMatchesGenerate(t *testing.T) {
	ms := fitToy(t, 40, 2*cp.Hour, 95, FitOptions{})
	opt := GenOptions{NumUEs: 80, Duration: cp.Hour, Seed: 5}
	batch, err := Generate(ms, opt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(ms, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes: the source must be re-iterable with identical output.
	for pass := 0; pass < 2; pass++ {
		got, err := trace.Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Device, batch.Device) {
			t.Fatalf("pass %d: device registrations differ", pass)
		}
		if !reflect.DeepEqual(got.Events, batch.Events) {
			t.Fatalf("pass %d: collected %d events, batch %d; contents differ",
				pass, len(got.Events), len(batch.Events))
		}
	}
	if _, err := NewSource(ms, GenOptions{NumUEs: 0, Duration: cp.Hour}); err == nil {
		t.Fatal("NewSource accepted NumUEs=0")
	}
}

// TestFitFromGeneratedSource closes the loop: a model refitted directly
// from a generator-backed source — no intermediate trace anywhere —
// matches refitting from the materialized generated trace.
func TestFitFromGeneratedSource(t *testing.T) {
	ms := fitToy(t, 30, 2*cp.Hour, 96, FitOptions{})
	opt := GenOptions{NumUEs: 50, Duration: 2 * cp.Hour, Seed: 9}
	batch, err := Generate(ms, opt)
	if err != nil {
		t.Fatal(err)
	}
	refitOpt := FitOptions{Cluster: clusterOptSmall()}
	want, err := Fit(batch, refitOpt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(ms, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FitStream(src, refitOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEqualModels(t, want, got) {
		t.Fatal("FitStream(Source) differs from Fit(Generate)")
	}
}

func bytesEqualModels(t *testing.T, a, b *ModelSet) bool {
	t.Helper()
	return bytes.Equal(modelBytes(t, a), modelBytes(t, b))
}

func TestUEGenIteratorResumable(t *testing.T) {
	// Next can be called after exhaustion without panicking, on both
	// engines.
	ms := fitToy(t, 10, cp.Hour, 94, FitOptions{})
	dm := ms.Device(cp.Phone)
	if dm == nil {
		t.Skip("no phone model")
	}
	m, err := ms.Machine()
	if err != nil {
		t.Fatal(err)
	}
	cm := compile(ms, m)
	cd := cm.dev(cp.Phone)
	if cd == nil {
		t.Fatal("compiled model lost the phone device")
	}
	its := map[string]trace.EventIterator{
		"compiled":    newUEGen(cm, cd, 1, stats.NewRNGVal(1), 0, cp.Hour),
		"interpreted": newUEInterp(m, dm, 1, stats.NewRNG(1), 0, cp.Hour),
	}
	for name, g := range its {
		n := 0
		for {
			_, ok := g.Next()
			if !ok {
				break
			}
			n++
		}
		for i := 0; i < 3; i++ {
			if _, ok := g.Next(); ok {
				t.Fatalf("%s: exhausted iterator produced an event", name)
			}
		}
	}
}
