package core

import (
	"strings"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
)

func TestDescribeRendersAllSections(t *testing.T) {
	ms := fitToy(t, 45, 2*cp.Hour, 95, FitOptions{})
	var sb strings.Builder
	if err := ms.Describe(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"method=ours", "machine=LTE-2LEVEL",
		"phone:", "car:", "tablet:",
		"global top level", "global bottom level",
		"--SRV_REQ-->", "first event",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDescribeBaseShowsFreeProcesses(t *testing.T) {
	tr := toyTrace(t, 45, 2*cp.Hour, 96)
	ms, err := Fit(tr, FitOptions{
		Machine:      sm.EMMECM(),
		SojournKind:  SojournExp,
		FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
		NoClustering: true,
		Method:       "base",
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ms.Describe(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "free process") {
		t.Fatal("base description lacks free processes")
	}
	if strings.Contains(sb.String(), "bottom level") {
		t.Fatal("EMM-ECM description should have no bottom level")
	}
}

func TestModelStats(t *testing.T) {
	ms := fitToy(t, 45, 2*cp.Hour, 97, FitOptions{})
	st := ms.Stats()
	if st.Method != "ours" || st.Models != ms.NumModels() {
		t.Fatalf("stats = %+v", st)
	}
	for _, d := range cp.DeviceTypes {
		ds := st.PerDevice[d]
		if ds.TrainUEs != 15 {
			t.Fatalf("%v TrainUEs = %d", d, ds.TrainUEs)
		}
		if ds.Personas == 0 || ds.ClustersPerHour <= 0 || ds.Transitions == 0 {
			t.Fatalf("%v stats empty: %+v", d, ds)
		}
	}
}

func TestDescribeRejectsBadMachine(t *testing.T) {
	bad := &ModelSet{MachineName: "NOPE"}
	if err := bad.Describe(&strings.Builder{}); err == nil {
		t.Fatal("bad machine accepted")
	}
}
