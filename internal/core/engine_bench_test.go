package core

import (
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/stats"
)

// BenchmarkEngineStep isolates the steady-state cost of one generated
// event in each engine — no merging, no sorting, no trace assembly —
// so the compiled/interpreted ratio here is the pure stepping speedup
// that BenchmarkGenerateThroughput (root package) then reports diluted
// by the shared pipeline overhead.
func BenchmarkEngineStep(b *testing.B) {
	ms := fitToy(b, 50, 3*cp.Hour, 42, FitOptions{})
	machine, err := ms.Machine()
	if err != nil {
		b.Fatal(err)
	}
	cm := compile(ms, machine)
	cd := cm.dev(cp.Phone)
	dm := ms.Devices[cp.Phone]
	const window = 365 * cp.Day
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		seed := uint64(1)
		g := newUEGen(cm, cd, 1, stats.NewRNGVal(seed), 0, window)
		for i := 0; i < b.N; i++ {
			if _, ok := g.Next(); !ok {
				seed++
				g = newUEGen(cm, cd, 1, stats.NewRNGVal(seed), 0, window)
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		seed := uint64(1)
		g := newUEInterp(machine, dm, 1, stats.NewRNG(seed), 0, window)
		for i := 0; i < b.N; i++ {
			if _, ok := g.Next(); !ok {
				seed++
				g = newUEInterp(machine, dm, 1, stats.NewRNG(seed), 0, window)
			}
		}
	})
}
