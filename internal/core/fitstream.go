package core

import (
	"cptraffic/internal/trace"
)

// FitStream fits the same model as Fit from an EventSource without ever
// materializing the trace: the source is scanned once, per-UE state is
// a small extractor, and every sample flows straight into the
// PartialFit's tagged pools. Peak memory is O(UEs + retained samples)
// instead of O(trace): the event slice and per-UE event groups of the
// in-memory path are never built, and with FitOptions.SketchK > 0 the
// retained-sample term is bounded too.
//
// The output is byte-identical to Fit on the collected trace for the
// same options (enforced by TestFitStreamMatchesInMemory): both are the
// same thin driver over PartialFit, whose (UE, seq) sample tags restore
// the serial fold order before any float reduction.
func FitStream(src trace.EventSource, opt FitOptions) (*ModelSet, error) {
	return fitSource(src, opt)
}
