package core

import (
	"fmt"
	"sort"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// FitStream fits the same model as Fit from an EventSource without ever
// materializing the trace: the source is scanned twice (features, then
// sample accumulation), per-UE state is a small extractor, and samples
// flow straight into per-(hour, device, cluster) accumulators. Peak
// memory is O(UEs + retained sojourn samples) instead of O(trace): the
// event slice, the per-UE event groups, and the per-UE sample slices of
// the in-memory path are never built.
//
// The output is byte-identical to Fit on the collected trace for the
// same options (enforced by TestFitStreamMatchesInMemory). The exactness
// discipline: every float that enters a reduction does so in exactly the
// serial fold order — time-interleaved samples are tagged with the UE's
// rank and stably sorted back to (UE, event-order) before fitting, and
// clustering/build run the same code as the in-memory path. Lossy
// bounded-sample sketches (reservoirs, quantile digests) are therefore
// out of scope here; they belong to a separate approximate mode.
func FitStream(src trace.EventSource, opt FitOptions) (*ModelSet, error) {
	opt = opt.withDefaults()

	// Registry pass: per-device UE lists in ascending order (the Devices
	// contract), matching Trace.UEsOfType.
	var ues [cp.NumDeviceTypes][]cp.UEID
	devOf := make(map[cp.UEID]cp.DeviceType)
	rank := make(map[cp.UEID]int32)
	total := 0
	err := src.Devices(func(ue cp.UEID, d cp.DeviceType) error {
		if !d.Valid() {
			return fmt.Errorf("core: invalid device type %d for UE %d", d, ue)
		}
		if _, dup := devOf[ue]; dup {
			return fmt.Errorf("core: UE %d registered twice", ue)
		}
		devOf[ue] = d
		rank[ue] = int32(len(ues[d]))
		ues[d] = append(ues[d], ue)
		total++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, fmt.Errorf("core: cannot fit an empty trace")
	}

	// Pass A: per-UE clustering features plus the trace span.
	var feats [cp.NumDeviceTypes][]*featureSink
	for _, d := range cp.DeviceTypes {
		if len(ues[d]) > 0 {
			feats[d] = make([]*featureSink, len(ues[d]))
		}
	}
	var hi cp.Millis
	err = scanPerUE(src, opt.Machine, func(ue cp.UEID) (sampleSink, error) {
		d, ok := devOf[ue]
		if !ok {
			return nil, fmt.Errorf("core: event for unregistered UE %d", ue)
		}
		fs := &featureSink{}
		feats[d][rank[ue]] = fs
		return fs, nil
	}, func(e trace.Event) {
		if e.T > hi {
			hi = e.T
		}
	}, ues)
	if err != nil {
		return nil, err
	}
	days := int((hi + cp.Day - 1) / cp.Day)
	if days < 1 {
		days = 1
	}

	// Clustering and personas: identical code to the in-memory path.
	var states [cp.NumDeviceTypes]*devStream
	for _, d := range cp.DeviceTypes {
		if len(ues[d]) == 0 {
			continue
		}
		du := ues[d]
		df := feats[d]
		assignments, numClusters, weights := clusterHours(du, opt, func(i, h int) cluster.Features {
			return df[i].features(h, days)
		})
		states[d] = newDevStream(du, assignments, numClusters, weights, days, opt)
		feats[d] = nil // pass-A sample lists are dead once clustered
	}

	// Pass B: route every sample into its (hour, cluster) accumulators.
	err = scanPerUE(src, opt.Machine, func(ue cp.UEID) (sampleSink, error) {
		d, ok := devOf[ue]
		if !ok {
			return nil, fmt.Errorf("core: event for unregistered UE %d", ue)
		}
		return &streamSink{ue: ue, rank: rank[ue], dev: states[d]}, nil
	}, nil, ues)
	if err != nil {
		return nil, err
	}

	// Build: finalize accumulators and fit, device by device.
	ms := &ModelSet{
		MachineName: opt.Machine.Name,
		Method:      opt.Method,
		Devices:     make([]*DeviceModel, cp.NumDeviceTypes),
	}
	for _, d := range cp.DeviceTypes {
		st := states[d]
		if st == nil {
			continue
		}
		dm := st.build(opt)
		n := len(ues[d])
		dm.Share = float64(n) / float64(total)
		dm.TrainUEs = n
		ms.Devices[d] = dm
	}
	return ms, nil
}

// scanPerUE runs one full scan of the source, demultiplexing the
// canonical time-ordered stream into per-UE extractors (created lazily
// via newSink on a UE's first event) and finishing them in ascending UE
// order afterwards. onEvent, when non-nil, observes every raw event.
func scanPerUE(src trace.EventSource, m *sm.Machine, newSink func(cp.UEID) (sampleSink, error), onEvent func(trace.Event), ues [cp.NumDeviceTypes][]cp.UEID) error {
	exts := make(map[cp.UEID]*ueExtractor)
	err := src.Scan(func(e trace.Event) error {
		if onEvent != nil {
			onEvent(e)
		}
		x := exts[e.UE]
		if x == nil {
			sink, err := newSink(e.UE)
			if err != nil {
				return err
			}
			x = newUEExtractor(m, sink)
			exts[e.UE] = x
		}
		x.push(e)
		return nil
	})
	if err != nil {
		return err
	}
	// Deterministic finish order; a UE whose stream had no Category-1
	// event flushes its buffered samples here.
	for _, d := range cp.DeviceTypes {
		for _, ue := range ues[d] {
			if x := exts[ue]; x != nil {
				x.finish()
			}
		}
	}
	return nil
}

// featureSink retains only what featuresAt needs: per-hour SRV_REQ and
// S1_CONN_REL counts and the CONNECTED/IDLE sojourn samples, in the same
// order the per-UE extraction emits them.
type featureSink struct {
	srvReq [HoursPerDay]int
	s1Rel  [HoursPerDay]int
	conn   [HoursPerDay][]float64
	idle   [HoursPerDay][]float64
}

func (f *featureSink) countEvent(h int, e cp.EventType) {
	switch e {
	case cp.ServiceRequest:
		f.srvReq[h]++
	case cp.S1ConnRelease:
		f.s1Rel[h]++
	default: // only SRV_REQ and S1_CONN_REL counts are clustering features (§5.3)
	}
}

func (f *featureSink) top(s topSample) {
	if !s.Has {
		return
	}
	switch s.Key.S {
	case cp.StateConnected:
		f.conn[s.Hour] = append(f.conn[s.Hour], s.Soj)
	case cp.StateIdle:
		f.idle[s.Hour] = append(f.idle[s.Hour], s.Soj)
	default: // DEREGISTERED sojourns are not clustering features (§5.3)
	}
}

func (f *featureSink) bot(botSample)          {}
func (f *featureSink) botCensor(censorSample) {}
func (f *featureSink) free(iaSample)          {}
func (f *featureSink) first(firstSample)      {}
func (f *featureSink) violation()             {}

// features mirrors featuresAt: f may be nil for a UE with no events,
// which yields the same all-zero features as extracting an empty
// sequence.
func (f *featureSink) features(h, days int) cluster.Features {
	if f == nil {
		return cluster.Features{}
	}
	return cluster.Features{
		cluster.FSrvReqCount: float64(f.srvReq[h]) / float64(days),
		cluster.FConnStd:     stats.StdDev(f.conn[h]),
		cluster.FS1RelCount:  float64(f.s1Rel[h]) / float64(days),
		cluster.FIdleStd:     stats.StdDev(f.idle[h]),
	}
}

// taggedVal is a float sample tagged with its UE's rank and a per-UE
// emission sequence number, so the serial fold order (ascending UE, then
// event order) can be restored from a time-interleaved stream — even for
// lists derived by merging several accumulators — by sorting on
// (rank, seq). Each sample is stored exactly once, in its hour's cluster
// accumulator; the hour aggregate and the global fallback are derived by
// merge at build time instead of holding their own copies, which is what
// keeps the streamed fit's peak below the in-memory path's.
type taggedVal struct {
	rank int32
	seq  uint32
	v    float64
}

// sortTagged orders a sample list back into the serial fold order, in
// place. (rank, seq) pairs are unique, so the sort is total.
func sortTagged(l []taggedVal) {
	sort.Slice(l, func(i, j int) bool {
		if l[i].rank != l[j].rank {
			return l[i].rank < l[j].rank
		}
		return l[i].seq < l[j].seq
	})
}

func taggedFloats(l []taggedVal) []float64 {
	sortTagged(l)
	out := make([]float64, len(l))
	for i, t := range l {
		out[i] = t.v
	}
	return out
}

// mergeTagged concatenates several sample lists and restores the serial
// fold order across them.
func mergeTagged(lists ...[]taggedVal) []float64 {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	all := make([]taggedVal, 0, n)
	for _, l := range lists {
		all = append(all, l...)
	}
	return taggedFloats(all)
}

// streamAcc is the order-tolerant twin of acc: integer tallies (already
// order-free) plus rank-tagged float samples. finalize restores the
// serial sample order and hands the result to the shared acc.build.
type streamAcc struct {
	TopCount  map[topKey]int
	TopSoj    map[topKey][]taggedVal
	BotCount  map[botKey]int
	BotSoj    map[botKey][]taggedVal
	BotCensor map[sm.State][]taggedVal
	FreeIA    map[cp.EventType][]taggedVal
	FirstCnt  map[firstCatKey]int
	FirstOff  []taggedVal
	WithEv    int
	NumUEs    int
	Cells     int
}

func newStreamAcc() *streamAcc {
	return &streamAcc{
		TopCount:  make(map[topKey]int),
		TopSoj:    make(map[topKey][]taggedVal),
		BotCount:  make(map[botKey]int),
		BotSoj:    make(map[botKey][]taggedVal),
		BotCensor: make(map[sm.State][]taggedVal),
		FreeIA:    make(map[cp.EventType][]taggedVal),
		FirstCnt:  make(map[firstCatKey]int),
	}
}

func (a *streamAcc) finalize() *acc {
	out := newAcc()
	out.TopCount = a.TopCount
	out.BotCount = a.BotCount
	out.FirstCnt = a.FirstCnt
	out.WithEv = a.WithEv
	out.NumUEs = a.NumUEs
	out.Cells = a.Cells
	out.TopSoj = mapApply(a.TopSoj, taggedFloats)
	out.BotSoj = mapApply(a.BotSoj, taggedFloats)
	out.BotCensor = mapApply(a.BotCensor, taggedFloats)
	out.FreeIA = mapApply(a.FreeIA, taggedFloats)
	out.FirstOff = taggedFloats(a.FirstOff)
	return out
}

// mapApply rebuilds a map with f applied to every value. f must be
// value-pure: it may only look at the one value it is handed, so the
// map's iteration order cannot leak into any output.
func mapApply[K comparable, V, W any](src map[K]V, f func(V) W) map[K]W {
	out := make(map[K]W, len(src))
	//cplint:ordered-ok each key is written once into its own slot and f is value-pure by contract
	for k, v := range src {
		out[k] = f(v)
	}
	return out
}

// unionAcc derives the accumulator a serial fold over the union of the
// parts' UEs would have produced: tallies sum, and each sample list is
// the (rank, seq)-ordered merge of the parts' lists. This reconstructs
// the hour aggregate from the hour's cluster accumulators and the global
// fallback from all of them — byte-exactly, because every UE lives in
// exactly one part and its samples carry their emission order.
func unionAcc(parts []*streamAcc) *acc {
	out := newAcc()
	topSoj := make(map[topKey][][]taggedVal)
	botSoj := make(map[botKey][][]taggedVal)
	botCen := make(map[sm.State][][]taggedVal)
	freeIA := make(map[cp.EventType][][]taggedVal)
	var firstOff [][]taggedVal
	for _, p := range parts {
		for k, c := range p.TopCount {
			out.TopCount[k] += c
		}
		for k, c := range p.BotCount {
			out.BotCount[k] += c
		}
		for k, c := range p.FirstCnt {
			out.FirstCnt[k] += c
		}
		out.WithEv += p.WithEv
		for k, l := range p.TopSoj {
			topSoj[k] = append(topSoj[k], l)
		}
		for k, l := range p.BotSoj {
			botSoj[k] = append(botSoj[k], l)
		}
		for k, l := range p.BotCensor {
			botCen[k] = append(botCen[k], l)
		}
		for k, l := range p.FreeIA {
			freeIA[k] = append(freeIA[k], l)
		}
		firstOff = append(firstOff, p.FirstOff)
	}
	mergeAll := func(ls [][]taggedVal) []float64 { return mergeTagged(ls...) }
	out.TopSoj = mapApply(topSoj, mergeAll)
	out.BotSoj = mapApply(botSoj, mergeAll)
	out.BotCensor = mapApply(botCen, mergeAll)
	out.FreeIA = mapApply(freeIA, mergeAll)
	out.FirstOff = mergeTagged(firstOff...)
	return out
}

// devStream is one device type's accumulation state during Pass B.
type devStream struct {
	ues         []cp.UEID
	days        int
	assignments []map[cp.UEID]int
	numClusters []int
	weights     [][]float64
	freeSet     [cp.NumEventTypes]bool

	clusters [HoursPerDay][]*streamAcc
}

func newDevStream(ues []cp.UEID, assignments []map[cp.UEID]int, numClusters []int, weights [][]float64, days int, opt FitOptions) *devStream {
	st := &devStream{
		ues:         ues,
		days:        days,
		assignments: assignments,
		numClusters: numClusters,
		weights:     weights,
	}
	// Only the configured free-process events are worth retaining:
	// acc.build reads no others, and dropping the rest keeps the biggest
	// per-event sample class (inter-arrivals) out of memory entirely for
	// the default method.
	for _, e := range opt.FreeEvents {
		if e.Valid() {
			st.freeSet[e] = true
		}
	}
	for h := 0; h < HoursPerDay; h++ {
		st.clusters[h] = make([]*streamAcc, numClusters[h])
		for c := range st.clusters[h] {
			st.clusters[h][c] = newStreamAcc()
		}
	}
	return st
}

// build fills in the stream-independent counters, finalizes every
// accumulator, and fits the device model with the shared acc.build.
func (st *devStream) build(opt FitOptions) *DeviceModel {
	// NumUEs/Cells are functions of the assignments alone — every UE of
	// the device contributes to its cluster, the hour aggregate, and the
	// global fallback whether or not it produced samples, exactly like the
	// serial addUEHour/addUEAll fold.
	for h := 0; h < HoursPerDay; h++ {
		for _, ue := range st.ues {
			c := st.assignments[h][ue]
			st.clusters[h][c].NumUEs++
			st.clusters[h][c].Cells += st.days
		}
	}

	dm := &DeviceModel{
		Personas: buildPersonas(st.ues, st.assignments),
		Hours:    make([]HourModel, HoursPerDay),
	}
	par.For(HoursPerDay, opt.Workers, func(h int) {
		hm := &dm.Hours[h]
		hm.Clusters = make([]ClusterModel, st.numClusters[h])
		for c := range st.clusters[h] {
			hm.Clusters[c] = st.clusters[h][c].finalize().build(opt.Machine, opt)
		}
		agg := unionAcc(st.clusters[h])
		agg.NumUEs = len(st.ues)
		agg.Cells = len(st.ues) * st.days
		a := agg.build(opt.Machine, opt)
		hm.Aggregate = &a
		hm.Weights = st.weights[h]
	})
	var all []*streamAcc
	for h := 0; h < HoursPerDay; h++ {
		all = append(all, st.clusters[h]...)
	}
	global := unionAcc(all)
	global.NumUEs = len(st.ues)
	global.Cells = len(st.ues) * st.days * HoursPerDay
	g := global.build(opt.Machine, opt)
	dm.Global = &g
	return dm
}

// streamSink routes one UE's samples into the accumulator of the hour's
// assigned cluster, tagging each with (rank, seq) so the aggregate and
// global views can be merged back out in serial order later.
type streamSink struct {
	ue   cp.UEID
	rank int32
	seq  uint32
	dev  *devStream
}

func (s *streamSink) accFor(h int) *streamAcc {
	c := s.dev.assignments[h][s.ue]
	return s.dev.clusters[h][c]
}

func (s *streamSink) tag(v float64) taggedVal {
	t := taggedVal{rank: s.rank, seq: s.seq, v: v}
	s.seq++
	return t
}

func (s *streamSink) countEvent(int, cp.EventType) {}
func (s *streamSink) violation()                   {}

func (s *streamSink) top(sam topSample) {
	a := s.accFor(int(sam.Hour))
	a.TopCount[sam.Key]++
	if sam.Has {
		a.TopSoj[sam.Key] = append(a.TopSoj[sam.Key], s.tag(sam.Soj))
	}
}

func (s *streamSink) bot(sam botSample) {
	a := s.accFor(int(sam.Hour))
	a.BotCount[sam.Key]++
	if sam.Has {
		a.BotSoj[sam.Key] = append(a.BotSoj[sam.Key], s.tag(sam.Soj))
	}
}

func (s *streamSink) botCensor(sam censorSample) {
	a := s.accFor(int(sam.Hour))
	a.BotCensor[sam.S] = append(a.BotCensor[sam.S], s.tag(sam.Dur))
}

func (s *streamSink) free(sam iaSample) {
	if !s.dev.freeSet[sam.E] {
		return
	}
	a := s.accFor(int(sam.Hour))
	a.FreeIA[sam.E] = append(a.FreeIA[sam.E], s.tag(sam.IA))
}

func (s *streamSink) first(sam firstSample) {
	a := s.accFor(int(sam.Hour))
	a.WithEv++
	a.FirstCnt[firstCatKey{E: sam.E, S: sam.State}]++
	a.FirstOff = append(a.FirstOff, s.tag(sam.Off))
}
