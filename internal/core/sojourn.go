// Package core implements the paper's primary contribution: the two-level
// hierarchical state-machine-based Semi-Markov traffic model for per-UE
// control-plane traffic, its fitting pipeline, and the trace generator.
//
// A fitted ModelSet holds, for every (device type, hour-of-day, UE
// cluster) combination, a semi-Markov parameterization of the top-level
// EMM–ECM chain and of the bottom-level sub-machine chains (Fig. 5), plus
// a first-event model (§5.4). The generator (§7) runs one per-UE process
// per synthetic UE: the two levels race — each keeps its own timer, and a
// top-level transition drops the bottom level's pending event and
// re-enters the new state's sub-machine.
//
// The same structures express the paper's comparison methods (Table 3):
// the Base and V1 methods use the flat EMM–ECM machine with HO and TAU as
// free-running Poisson processes, and exponential (fitted-Poisson)
// sojourns; V2 uses the two-level machine with exponential sojourns; the
// full method uses the two-level machine with empirical CDF sojourns.
package core

import (
	"fmt"

	"cptraffic/internal/stats"
)

// Sojourn distribution kinds.
const (
	// SojournTable is an empirical CDF stored as a quantile table — the
	// paper's choice ("CDF" column of Table 3).
	SojournTable = "table"
	// SojournExp is an exponential distribution (fitted Poisson process).
	SojournExp = "exp"
	// SojournConst is a degenerate point mass, used when a transition was
	// observed with a single distinct duration.
	SojournConst = "const"
)

// SojournModel is the serializable distribution of the time (seconds) a
// UE stays in a state before a particular transition fires.
type SojournModel struct {
	Kind   string    `json:"kind"`
	Q      []float64 `json:"q,omitempty"`      // quantile grid for SojournTable
	Lambda float64   `json:"lambda,omitempty"` // rate for SojournExp
	Value  float64   `json:"value,omitempty"`  // point mass for SojournConst
}

// Sample draws one duration in seconds.
func (s SojournModel) Sample(r *stats.RNG) float64 {
	switch s.Kind {
	case SojournTable:
		return stats.QuantileAt(s.Q, r.OpenFloat64())
	case SojournExp:
		return r.Exp(s.Lambda)
	case SojournConst:
		return s.Value
	}
	panic(fmt.Sprintf("core: sample of invalid sojourn model kind %q", s.Kind))
}

// Dist returns the distribution view of the model (for tests and
// analysis). SojournConst is represented as a two-point table.
func (s SojournModel) Dist() stats.Dist {
	switch s.Kind {
	case SojournTable:
		return &stats.QuantileTable{Q: s.Q}
	case SojournExp:
		return stats.Exponential{Lambda: s.Lambda}
	case SojournConst:
		return &stats.QuantileTable{Q: []float64{s.Value, s.Value}}
	}
	panic(fmt.Sprintf("core: dist of invalid sojourn model kind %q", s.Kind))
}

// Mean returns the model's expected duration in seconds.
func (s SojournModel) Mean() float64 { return s.Dist().Mean() }

// Valid reports whether the model is structurally usable.
func (s SojournModel) Valid() bool {
	switch s.Kind {
	case SojournTable:
		return (&stats.QuantileTable{Q: s.Q}).Valid()
	case SojournExp:
		return s.Lambda > 0
	case SojournConst:
		return s.Value >= 0
	}
	return false
}

// FitSojourn builds a sojourn model of the requested kind from observed
// durations (seconds). It degrades gracefully: empty samples become a
// 60-second point mass (never reached in practice because transitions are
// only parameterized when observed), single-valued samples become point
// masses, and exponential fits that are degenerate fall back to a point
// mass at the sample mean.
func FitSojourn(samples []float64, kind string) SojournModel {
	if len(samples) == 0 {
		return SojournModel{Kind: SojournConst, Value: 60}
	}
	allEqual := true
	for _, x := range samples[1:] {
		if x != samples[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return SojournModel{Kind: SojournConst, Value: samples[0]}
	}
	switch kind {
	case SojournExp:
		fit, err := stats.FitExponential(samples)
		if err != nil {
			return SojournModel{Kind: SojournConst, Value: stats.Mean(samples)}
		}
		return SojournModel{Kind: SojournExp, Lambda: fit.Lambda}
	default: // SojournTable
		n := stats.DefaultQuantilePoints
		if len(samples) < n {
			// No point tabulating finer than the sample itself.
			n = len(samples) + 1
			if n < 2 {
				n = 2
			}
		}
		t := stats.NewQuantileTableN(samples, n)
		return SojournModel{Kind: SojournTable, Q: t.Q}
	}
}
