package core

import (
	"fmt"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
)

// This file lowers a fitted ModelSet into the dense, index-addressed
// form the generator's hot loop runs on. The interpreted generator
// (interp.go) resolves a fallback chain (cluster → hour aggregate →
// device global) and walks machine edge lists on every draw; the
// compiled form performs that resolution once per Generate/Stream call,
// for every (device, hour, cluster, state) cell the generator could
// possibly touch, so the steady-state step is pure array indexing.
//
// Determinism contract: a compiled generator must consume the RNG
// stream draw-for-draw like the interpreted one and map every draw to
// the same outcome, so traces stay byte-identical (test-enforced by
// TestCompiledMatchesInterpreted). Two rules make that hold:
//
//   - Cumulative probabilities are accumulated in the same serial
//     order as pickFrom's running sum (acc += p, compare u < acc), so
//     each partial sum is the bit-identical float and every u lands on
//     the same index, with the same last-entry fallback.
//   - Resolution reuses the interpreted resolvers themselves
//     (topParams, bottomParams, freeParams, firstEvent): a compiled
//     cell is by construction exactly what the interpreter would have
//     seen at that (hour, cluster).

// cDist is a sojourn distribution resolved for sampling: a small tag
// plus flat parameters, so drawing never switches on a string kind.
// sample consumes the RNG exactly like SojournModel.Sample.
type cDist struct {
	kind   uint8
	lambda float64
	value  float64
	q      []float64
}

const (
	cdTable uint8 = iota
	cdExp
	cdConst
)

func compileDist(s SojournModel) cDist {
	switch s.Kind {
	case SojournTable:
		return cDist{kind: cdTable, q: s.Q}
	case SojournExp:
		return cDist{kind: cdExp, lambda: s.Lambda}
	case SojournConst:
		return cDist{kind: cdConst, value: s.Value}
	}
	panic(fmt.Sprintf("core: compile of invalid sojourn model kind %q", s.Kind))
}

func (d *cDist) sample(r *stats.RNG) float64 {
	switch d.kind {
	case cdTable:
		return stats.QuantileAt(d.q, r.OpenFloat64())
	case cdExp:
		return r.Exp(d.lambda)
	default:
		return d.value
	}
}

// cTopTrans is one outgoing top-level transition with its successor
// lookup (topNext) precomputed; ok=false entries are picked and then
// discarded, exactly like the interpreter's post-pick topNext check.
type cTopTrans struct {
	cum float64
	ev  cp.EventType
	ok  bool
	to  cp.UEState
	soj cDist
}

// cBotTrans is one outgoing bottom-level transition. ok folds both
// interpreter checks — the machine edge exists AND stays within the
// current macro state — which is precomputable because the generator
// maintains top == Top(bottom) as an invariant. soj is the resolved
// sampling distribution: the state-level Kaplan–Meier marginal when the
// state has one, else the per-transition sojourn.
type cBotTrans struct {
	cum float64
	ev  cp.EventType
	ok  bool
	to  sm.State
	soj cDist
}

// cBotState mirrors a resolved *StateParam: present=false means the
// fallback chain ended at nil (no draw at all), pexit is the censoring
// mass (drawn only when positive), and trans may be empty (the global
// fallback can resolve to a state with no outgoing transitions, in
// which case only the PExit draw happens).
type cBotState struct {
	present bool
	pexit   float64
	trans   []cBotTrans
}

// cFree is one free-running process (Base/V1's HO and TAU).
type cFree struct {
	ev    cp.EventType
	inter cDist
}

// cFirstCat is one first-event category with the fine-state resolution
// (out-of-range state → machine's forced post-state) precomputed.
type cFirstCat struct {
	cum  float64
	ev   cp.EventType
	fine sm.State
	top  cp.UEState
}

// cFirst is the resolved first-event model; ok=false means the fallback
// chain found no sampleable model for this (hour, cluster).
type cFirst struct {
	ok     bool
	pnone  float64
	offset cDist
	cats   []cFirstCat
}

// cCell holds every parameter the generator can touch at one (hour,
// cluster), with the fallback chain already applied.
type cCell struct {
	top    [cp.NumUEStates][]cTopTrans
	bottom []cBotState
	free   []cFree
	first  cFirst
}

// cDevice is one device type's compiled model. cells[h] is indexed by
// cluster id + 1, so the "no cluster" fallback (-1) is cells[h][0];
// personaCl pre-resolves each persona's hourly cluster schedule, with
// out-of-range ids mapped to -1 (the interpreted resolvers treat any
// out-of-range id identically to -1, so the cells coincide).
type cDevice struct {
	personaCum []float64
	personaCl  [][HoursPerDay]int16
	cells      [HoursPerDay][]cCell
}

// compiledModel is a ModelSet lowered onto one machine: dense
// edge/bridge tables per fine state plus one cDevice per device type.
type compiledModel struct {
	m *sm.Machine
	// next[s][e] is the machine successor of fine state s on event e,
	// -1 when the edge does not exist (replaces the edge-list scan).
	next [][cp.NumEventTypes]int16
	// topOf and subEntry flatten the macro-state accessors.
	topOf    []cp.UEState
	subEntry [cp.NumUEStates]sm.State
	// bridge{Ev,To,OK}[s] is the first within-macro edge out of s — the
	// sub-machine flush step used when a pending top event is blocked
	// and no bottom event is pending (see bridgeEdge).
	bridgeEv []cp.EventType
	bridgeTo []sm.State
	bridgeOK []bool
	devs     []*cDevice
}

func (cm *compiledModel) dev(d cp.DeviceType) *cDevice {
	if int(d) >= len(cm.devs) {
		return nil
	}
	return cm.devs[d]
}

// compile lowers ms onto machine. It is cheap relative to generation —
// O(hours × clusters × states) — and is run per Generate/Stream call
// (Source caches it), so model mutations between calls are picked up.
func compile(ms *ModelSet, machine *sm.Machine) *compiledModel {
	n := machine.NumStates()
	cm := &compiledModel{
		m:        machine,
		next:     make([][cp.NumEventTypes]int16, n),
		topOf:    make([]cp.UEState, n),
		bridgeEv: make([]cp.EventType, n),
		bridgeTo: make([]sm.State, n),
		bridgeOK: make([]bool, n),
		devs:     make([]*cDevice, cp.NumDeviceTypes),
	}
	for s := 0; s < n; s++ {
		st := sm.State(s)
		cm.topOf[s] = machine.Top(st)
		for e := range cm.next[s] {
			cm.next[s][e] = -1
		}
		for _, edge := range machine.Edges[s] {
			if cm.next[s][edge.Event] < 0 { // first match, like Machine.Next
				cm.next[s][edge.Event] = int16(edge.To)
			}
		}
		for _, edge := range machine.Edges[s] {
			if machine.Top(edge.To) == machine.Top(st) {
				cm.bridgeEv[s], cm.bridgeTo[s], cm.bridgeOK[s] = edge.Event, edge.To, true
				break
			}
		}
	}
	for t := 0; t < cp.NumUEStates; t++ {
		cm.subEntry[t] = machine.SubEntry(cp.UEState(t))
	}
	for d := 0; d < cp.NumDeviceTypes; d++ {
		if dm := ms.Device(cp.DeviceType(d)); dm != nil {
			cm.devs[d] = compileDevice(dm, machine)
		}
	}
	return cm
}

// numClusters is the cluster count of hour h (0 past the model's hours).
func numClusters(dm *DeviceModel, h int) int {
	if h >= 0 && h < len(dm.Hours) {
		return len(dm.Hours[h].Clusters)
	}
	return 0
}

func compileDevice(dm *DeviceModel, machine *sm.Machine) *cDevice {
	cd := &cDevice{}
	if n := len(dm.Personas); n > 0 {
		cd.personaCum = make([]float64, n)
		cd.personaCl = make([][HoursPerDay]int16, n)
		acc := 0.0
		for i, p := range dm.Personas {
			acc += p.Weight
			cd.personaCum[i] = acc
			for h := 0; h < HoursPerDay; h++ {
				cl := -1
				if h < len(p.Cluster) {
					cl = p.Cluster[h]
				}
				if cl < 0 || cl >= numClusters(dm, h) {
					cl = -1
				}
				cd.personaCl[i][h] = int16(cl)
			}
		}
	}
	for h := 0; h < HoursPerDay; h++ {
		n := numClusters(dm, h)
		cells := make([]cCell, n+1)
		for cl := -1; cl < n; cl++ {
			compileCell(dm, machine, h, cl, &cells[cl+1])
		}
		cd.cells[h] = cells
	}
	return cd
}

func compileCell(dm *DeviceModel, machine *sm.Machine, h, cl int, cell *cCell) {
	for s := 0; s < cp.NumUEStates; s++ {
		st := cp.UEState(s)
		params := dm.topParams(h, cl, st)
		if len(params) == 0 {
			continue
		}
		ts := make([]cTopTrans, len(params))
		acc := 0.0
		for i, tp := range params {
			acc += tp.P
			to, ok := topNext(st, tp.Event)
			ts[i] = cTopTrans{cum: acc, ev: tp.Event, ok: ok, to: to, soj: compileDist(tp.Sojourn)}
		}
		cell.top[s] = ts
	}
	cell.bottom = make([]cBotState, machine.NumStates())
	for s := range cell.bottom {
		sp := dm.bottomParams(h, cl, sm.State(s))
		if sp == nil {
			continue
		}
		bs := &cell.bottom[s]
		bs.present = true
		bs.pexit = sp.PExit
		if len(sp.Out) == 0 {
			continue
		}
		bs.trans = make([]cBotTrans, len(sp.Out))
		acc := 0.0
		for i, tp := range sp.Out {
			acc += tp.P
			to, ok := machine.Next(sm.State(s), tp.Event)
			ok = ok && machine.Top(to) == machine.Top(sm.State(s))
			soj := tp.Sojourn
			if sp.Sojourn != nil {
				soj = *sp.Sojourn
			}
			bs.trans[i] = cBotTrans{cum: acc, ev: tp.Event, ok: ok, to: to, soj: compileDist(soj)}
		}
	}
	if fps := dm.freeParams(h, cl); len(fps) > 0 {
		cell.free = make([]cFree, len(fps))
		for i, fp := range fps {
			cell.free[i] = cFree{ev: fp.Event, inter: compileDist(fp.Inter)}
		}
	}
	if fe, ok := dm.firstEvent(h, cl); ok {
		cf := &cell.first
		cf.ok = true
		cf.pnone = fe.PNone
		cf.offset = compileDist(fe.Offset)
		cf.cats = make([]cFirstCat, len(fe.Cats))
		acc := 0.0
		for i, c := range fe.Cats {
			acc += c.P
			fine := c.State
			if int(fine) >= machine.NumStates() {
				fine = machine.Forced(c.Event)
			}
			cf.cats[i] = cFirstCat{cum: acc, ev: c.Event, fine: fine, top: machine.Top(fine)}
		}
	}
}
