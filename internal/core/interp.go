package core

import (
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// ueInterp is the interpreted per-UE traffic generator (§7): it walks
// the fitted ModelSet directly, resolving the cluster → hour aggregate
// → device-global fallback chain and scanning machine edge lists on
// every draw. It is the reference engine the compiled ueGen is held
// byte-identical to (GenOptions.Interpret selects it;
// TestCompiledMatchesInterpreted enforces the equivalence), and it is
// the easier of the two to audit against the paper.
//
// Like ueGen it is an incremental iterator: Next returns the UE's
// events one at a time in time order. It samples the first event from
// the first-event model, then drives the two-level machine — both
// levels keep their own timers and race; a top-level transition drops
// the bottom level's pending event and re-enters the sub-machine of the
// new top state. Free-running processes (Base/V1's HO and TAU) race
// alongside while the UE is registered.
type ueInterp struct {
	m       *sm.Machine
	dm      *DeviceModel
	ue      cp.UEID
	rng     *stats.RNG
	t0, end cp.Millis

	personaIdx int
	started    bool
	exhausted  bool
	emitted    int

	top    cp.UEState
	bottom sm.State
	topP   pending
	botP   pending
	free   map[cp.EventType]cp.Millis

	// queue holds events already decided but not yet delivered (the
	// sub-machine flush before a blocked top-level event produces
	// several at once); qhead is the next to deliver, so the backing
	// array is reused across flushes instead of leaking capacity one
	// re-slice at a time.
	queue []trace.Event
	qhead int
}

// newUEInterp prepares the iterator; no work happens until the first
// Next.
func newUEInterp(m *sm.Machine, dm *DeviceModel, ue cp.UEID, rng *stats.RNG, t0, end cp.Millis) *ueInterp {
	return &ueInterp{
		m: m, dm: dm, ue: ue, rng: rng, t0: t0, end: end,
		personaIdx: dm.pickPersona(rng),
		free:       map[cp.EventType]cp.Millis{},
	}
}

// Next returns the UE's next event, or ok=false when the window is done.
func (g *ueInterp) Next() (trace.Event, bool) {
	for {
		if g.qhead < len(g.queue) {
			ev := g.queue[g.qhead]
			g.qhead++
			if g.qhead == len(g.queue) {
				g.queue, g.qhead = g.queue[:0], 0
			}
			g.emitted++
			return ev, true
		}
		if g.exhausted || g.emitted >= maxEventsPerUE {
			return trace.Event{}, false
		}
		if !g.started {
			g.startup()
			continue
		}
		g.step()
	}
}

func (g *ueInterp) clusterAt(t cp.Millis) int {
	if g.personaIdx < 0 {
		return -1
	}
	h := t.HourOfDay()
	p := g.dm.Personas[g.personaIdx]
	if h < len(p.Cluster) {
		return p.Cluster[h]
	}
	return -1
}

func (g *ueInterp) push(t cp.Millis, e cp.EventType) {
	g.queue = append(g.queue, trace.Event{T: t, UE: g.ue, Type: e})
}

// startup finds the first event (§5.4): a UE silent in one hour re-rolls
// the next hour's first-event model.
func (g *ueInterp) startup() {
	g.started = true
	for hourStart := g.t0; hourStart < g.end; hourStart += cp.Hour {
		fe, ok := g.dm.firstEvent(hourStart.HourOfDay(), g.clusterAt(hourStart))
		if !ok {
			continue
		}
		silent, cat, off := fe.sample(g.rng)
		if silent {
			continue
		}
		t := hourStart + cp.MillisFromSeconds(off)
		if t >= g.end {
			break
		}
		g.push(t, cat.Event)
		// The fitted category carries the post-event machine state, so
		// e.g. a first TAU lands in TAU_S_IDLE when the training UEs
		// were idle, not blindly in TAU_S_CONN.
		fine := cat.State
		if int(fine) >= g.m.NumStates() {
			fine = g.m.Forced(cat.Event)
		}
		g.top = g.m.Top(fine)
		g.bottom = fine
		g.drawTop(t)
		g.drawBot(t)
		g.drawFree(t)
		return
	}
	g.exhausted = true
}

// step advances the two-level race by one firing, pushing the resulting
// event(s) onto the queue (or marking the generator exhausted).
func (g *ueInterp) step() {
	next := cp.Millis(math.MaxInt64)
	kind := 0 // 0 none, 1 top, 2 bottom, 3 free
	var freeEv cp.EventType
	if g.topP.valid && g.topP.at < next {
		next, kind = g.topP.at, 1
	}
	if g.botP.valid && g.botP.at < next {
		next, kind = g.botP.at, 2
	}
	// Scan free processes in fixed ascending event-type order, not map
	// order: with a strict < comparison, a same-millisecond tie between
	// two free events would otherwise be broken by Go's randomized map
	// iteration, making the generator non-reproducible.
	for _, e := range cp.EventTypes {
		if at, ok := g.free[e]; ok && at < next {
			next, kind, freeEv = at, 3, e
		}
	}
	if kind == 0 || next >= g.end {
		g.exhausted = true
		return
	}
	switch kind {
	case 1:
		// The top event must be legal from the current bottom state
		// (the starred arrow in Fig. 5: SRV_REQ may not leave IDLE from
		// TAU_S_IDLE). If it is not, flush the sub-machine first: the
		// protocol mandates the TAU's S1_CONN_REL before the connection
		// can be re-established.
		at := next
		for guard := 0; guard < 8; guard++ {
			if _, ok := g.m.Next(g.bottom, g.topP.ev); ok {
				break
			}
			ev, to, found := bridgeEdge(g.m, g.bottom, g.botP)
			if !found {
				break
			}
			g.push(at, ev)
			g.bottom = to
			at += cp.Millis(1)
		}
		g.push(at, g.topP.ev)
		g.top = g.topP.toTop
		g.bottom = g.m.SubEntry(g.top)
		g.drawTop(at)
		g.drawBot(at)
		g.drawFree(at)
	case 2:
		g.push(next, g.botP.ev)
		g.bottom = g.botP.toBot
		g.drawBot(next)
	case 3:
		g.push(next, freeEv)
		g.redrawOneFree(freeEv, next)
	}
}

func (g *ueInterp) drawTop(now cp.Millis) {
	g.topP = pending{}
	params := g.dm.topParams(now.HourOfDay(), g.clusterAt(now), g.top)
	tp, ok := pickFrom(params, g.rng)
	if !ok {
		return
	}
	to, ok := topNext(g.top, tp.Event)
	if !ok {
		return
	}
	d := math.Max(tp.Sojourn.Sample(g.rng), minSojournSec)
	g.topP = pending{at: now + cp.MillisFromSeconds(d), ev: tp.Event, valid: true, toTop: to}
}

func (g *ueInterp) drawBot(now cp.Millis) {
	g.botP = pending{}
	sp := g.dm.bottomParams(now.HourOfDay(), g.clusterAt(now), g.bottom)
	if sp == nil {
		return
	}
	// KM tail mass: the probability the sub-machine never fires within
	// observable horizons; the bottom stays silent until the next
	// top-level transition re-enters it.
	if sp.PExit > 0 && g.rng.Float64() < sp.PExit {
		return
	}
	tp, ok := pickFrom(sp.Out, g.rng)
	if !ok {
		return
	}
	to, ok := g.m.Next(g.bottom, tp.Event)
	if !ok || g.m.Top(to) != g.top {
		return
	}
	// Prefer the Kaplan-Meier state-level delay marginal: it is the
	// unbiased estimate under the top-level race (per-transition
	// sojourns are fitted on uncensored observations only).
	soj := tp.Sojourn
	if sp.Sojourn != nil {
		soj = *sp.Sojourn
	}
	d := math.Max(soj.Sample(g.rng), minSojournSec)
	g.botP = pending{at: now + cp.MillisFromSeconds(d), ev: tp.Event, valid: true, toBot: to}
}

func (g *ueInterp) drawFree(now cp.Millis) {
	for k := range g.free {
		delete(g.free, k)
	}
	if g.top == cp.StateDeregistered {
		return
	}
	for _, fp := range g.dm.freeParams(now.HourOfDay(), g.clusterAt(now)) {
		d := math.Max(fp.Inter.Sample(g.rng), minSojournSec)
		g.free[fp.Event] = now + cp.MillisFromSeconds(d)
	}
}

func (g *ueInterp) redrawOneFree(e cp.EventType, now cp.Millis) {
	for _, fp := range g.dm.freeParams(now.HourOfDay(), g.clusterAt(now)) {
		if fp.Event == e {
			d := math.Max(fp.Inter.Sample(g.rng), minSojournSec)
			g.free[e] = now + cp.MillisFromSeconds(d)
			return
		}
	}
	delete(g.free, e)
}

// bridgeEdge chooses the sub-machine event that moves the bottom level
// toward a state from which a blocked top-level event becomes legal:
// preferably the already-pending bottom event, otherwise the first
// within-macro machine edge.
func bridgeEdge(m *sm.Machine, bottom sm.State, botP pending) (cp.EventType, sm.State, bool) {
	if botP.valid {
		return botP.ev, botP.toBot, true
	}
	for _, e := range m.Edges[bottom] {
		if m.Top(e.To) == m.Top(bottom) {
			return e.Event, e.To, true
		}
	}
	return 0, bottom, false
}

// pickFrom samples a transition from params by probability.
func pickFrom(params []TransitionParam, r *stats.RNG) (TransitionParam, bool) {
	if len(params) == 0 {
		return TransitionParam{}, false
	}
	u := r.Float64()
	var acc float64
	for _, tp := range params {
		acc += tp.P
		if u < acc {
			return tp, true
		}
	}
	return params[len(params)-1], true
}
