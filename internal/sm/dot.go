package sm

import (
	"fmt"
	"sort"
	"strings"

	"cptraffic/internal/cp"
)

// DOT renders the machine in Graphviz dot syntax, grouping fine states
// into clusters by macro state — a faithful rendering of the paper's
// Fig. 5 / Fig. 6 layout. Useful for documentation and for eyeballing
// machine edits.
func (m *Machine) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse];\n")

	// Group states by macro state.
	groups := map[cp.UEState][]State{}
	for s := 0; s < m.NumStates(); s++ {
		top := m.Top(State(s))
		groups[top] = append(groups[top], State(s))
	}
	macros := make([]cp.UEState, 0, len(groups))
	for top := range groups {
		macros = append(macros, top)
	}
	sort.Slice(macros, func(i, j int) bool { return macros[i] < macros[j] })
	for _, top := range macros {
		states := groups[top]
		if len(states) == 1 && m.StateName(states[0]) == top.String() {
			// A macro state with no sub-structure: plain node.
			fmt.Fprintf(&b, "  %q;\n", m.StateName(states[0]))
			continue
		}
		fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n    label=%q;\n", top, top.String())
		for _, s := range states {
			fmt.Fprintf(&b, "    %q;\n", m.StateName(s))
		}
		b.WriteString("  }\n")
	}
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.Edges[s] {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
				m.StateName(State(s)), m.StateName(e.To), e.Event.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
