package sm

import (
	"math"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// evs builds a per-UE event sequence from (time-in-seconds, type) pairs.
func evs(pairs ...interface{}) []trace.Event {
	var out []trace.Event
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, trace.Event{
			T:    cp.MillisFromSeconds(pairs[i].(float64)),
			UE:   1,
			Type: pairs[i+1].(cp.EventType),
		})
	}
	return out
}

func TestReplayCleanSequence(t *testing.T) {
	m := LTE2Level()
	seq := evs(
		0.0, cp.Attach, // DEREG -> SRV_REQ_S
		5.0, cp.Handover, // -> HO_S
		8.0, cp.TrackingAreaUpdate, // -> TAU_S_CONN
		20.0, cp.S1ConnRelease, // -> S1_REL_S_1
		60.0, cp.TrackingAreaUpdate, // -> TAU_S_IDLE
		61.0, cp.S1ConnRelease, // -> S1_REL_S_2
		300.0, cp.ServiceRequest, // -> SRV_REQ_S
		310.0, cp.Detach, // -> DEREG
	)
	res := Replay(m, LTEDeregistered, seq)
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
	if res.Final != LTEDeregistered {
		t.Fatalf("final = %s", m.StateName(res.Final))
	}
	if len(res.Transitions) != 8 {
		t.Fatalf("transitions = %d", len(res.Transitions))
	}
	if res.Transitions[0].HasSojourn {
		t.Fatal("first transition must not have a sojourn")
	}
	// Sojourn of HO_S before TAU at t=8 is 3 seconds.
	tr := res.Transitions[2]
	if tr.From != LTEHoS || !tr.HasSojourn || tr.Sojourn != 3*cp.Second {
		t.Fatalf("transition 2 = %+v", tr)
	}
}

func TestReplayViolationRecovery(t *testing.T) {
	m := LTE2Level()
	// HO while DEREGISTERED is a violation; replay must record it and
	// resynchronize to HO_S.
	seq := evs(0.0, cp.Handover, 1.0, cp.S1ConnRelease)
	res := Replay(m, LTEDeregistered, seq)
	if res.Violations != 1 {
		t.Fatalf("violations = %d", res.Violations)
	}
	if !res.Transitions[0].Forced || res.Transitions[0].To != LTEHoS {
		t.Fatalf("forced transition = %+v", res.Transitions[0])
	}
	// After recovery the S1_CONN_REL is legal.
	if res.Transitions[1].Forced {
		t.Fatal("second transition should be clean")
	}
	if res.Final != LTES1RelS1 {
		t.Fatalf("final = %s", m.StateName(res.Final))
	}
}

func TestInferInitial(t *testing.T) {
	m := LTE2Level()
	cases := []struct {
		first cp.EventType
		want  State
	}{
		{cp.Attach, LTEDeregistered},
		{cp.ServiceRequest, LTES1RelS1},
		{cp.S1ConnRelease, LTESrvReqS},
		{cp.Handover, LTESrvReqS},
		{cp.Detach, LTESrvReqS},
		{cp.TrackingAreaUpdate, LTESrvReqS},
	}
	for _, c := range cases {
		got := InferInitial(m, evs(0.0, c.first))
		if got != c.want {
			t.Errorf("InferInitial(%s) = %s, want %s", c.first, m.StateName(got), m.StateName(c.want))
		}
		// Replaying from the inferred state must not violate on the
		// first event.
		res := Replay(m, got, evs(0.0, c.first))
		if res.Violations != 0 {
			t.Errorf("InferInitial(%s) still violates", c.first)
		}
	}
	if InferInitial(m, nil) != m.Initial {
		t.Error("empty sequence should infer the machine's initial state")
	}
}

func TestSojournsByTransition(t *testing.T) {
	m := LTE2Level()
	seq := evs(
		0.0, cp.Attach,
		10.0, cp.S1ConnRelease,
		40.0, cp.ServiceRequest,
		45.0, cp.S1ConnRelease,
		95.0, cp.ServiceRequest,
	)
	res := Replay(m, LTEDeregistered, seq)
	so := SojournsByTransition(res)
	k := TransitionKey{From: LTESrvReqS, Event: cp.S1ConnRelease}
	if got := so[k]; len(got) != 2 || got[0] != 10 || got[1] != 5 {
		t.Fatalf("sojourns for %v = %v", k, got)
	}
	k2 := TransitionKey{From: LTES1RelS1, Event: cp.ServiceRequest}
	if got := so[k2]; len(got) != 2 || got[0] != 30 || got[1] != 50 {
		t.Fatalf("sojourns for %v = %v", k2, got)
	}
	// The first event (Attach) has no sojourn.
	if _, ok := so[TransitionKey{From: LTEDeregistered, Event: cp.Attach}]; ok {
		t.Fatal("first event contributed a sojourn")
	}
}

func TestTopSojourns(t *testing.T) {
	m := LTE2Level()
	seq := evs(
		0.0, cp.Attach, // enter CONNECTED at t=0
		5.0, cp.Handover, // still CONNECTED
		30.0, cp.S1ConnRelease, // enter IDLE at t=30: CONNECTED lasted 30
		90.0, cp.ServiceRequest, // enter CONNECTED at t=90: IDLE lasted 60
		100.0, cp.S1ConnRelease, // CONNECTED lasted 10
	)
	res := Replay(m, LTEDeregistered, seq)
	top := TopSojourns(m, res)
	conn := top[cp.StateConnected]
	idle := top[cp.StateIdle]
	if len(conn) != 2 || conn[0] != 30 || conn[1] != 10 {
		t.Fatalf("CONNECTED sojourns = %v", conn)
	}
	if len(idle) != 1 || idle[0] != 60 {
		t.Fatalf("IDLE sojourns = %v", idle)
	}
	// Incomplete final IDLE visit (never left) must not be counted.
	if len(top[cp.StateDeregistered]) != 0 {
		t.Fatalf("DEREGISTERED sojourns = %v", top[cp.StateDeregistered])
	}
}

func TestTopSojournsNoDoubleCountWithinMacro(t *testing.T) {
	m := LTE2Level()
	// Sub-state churn inside CONNECTED must not split the macro sojourn.
	seq := evs(
		0.0, cp.Attach,
		1.0, cp.Handover,
		2.0, cp.Handover,
		3.0, cp.TrackingAreaUpdate,
		50.0, cp.S1ConnRelease,
	)
	res := Replay(m, LTEDeregistered, seq)
	top := TopSojourns(m, res)
	conn := top[cp.StateConnected]
	if len(conn) != 1 || conn[0] != 50 {
		t.Fatalf("CONNECTED sojourns = %v, want [50]", conn)
	}
}

func TestInterArrivals(t *testing.T) {
	seq := evs(
		0.0, cp.Handover,
		2.0, cp.TrackingAreaUpdate,
		5.0, cp.Handover,
		11.0, cp.Handover,
	)
	ia := InterArrivals(seq, cp.Handover)
	if len(ia) != 2 || ia[0] != 5 || ia[1] != 6 {
		t.Fatalf("HO inter-arrivals = %v", ia)
	}
	if got := InterArrivals(seq, cp.Attach); got != nil {
		t.Fatalf("ATCH inter-arrivals = %v", got)
	}
	if got := InterArrivals(seq, cp.TrackingAreaUpdate); got != nil {
		t.Fatalf("single-event inter-arrivals = %v", got)
	}
}

func TestCountMacroEvents(t *testing.T) {
	m := LTE2Level()
	seq := evs(
		0.0, cp.Attach,
		1.0, cp.Handover, // HO in CONNECTED
		2.0, cp.TrackingAreaUpdate, // TAU in CONNECTED
		3.0, cp.S1ConnRelease,
		10.0, cp.TrackingAreaUpdate, // TAU in IDLE
		11.0, cp.S1ConnRelease, // the TAU's release, in IDLE
		20.0, cp.ServiceRequest,
		25.0, cp.Detach,
	)
	res := Replay(m, LTEDeregistered, seq)
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
	counts := CountMacroEvents(m, res)
	if counts[cp.Handover][cp.StateConnected] != 1 || counts[cp.Handover][cp.StateIdle] != 0 {
		t.Fatalf("HO counts = %v", counts[cp.Handover])
	}
	if counts[cp.TrackingAreaUpdate][cp.StateConnected] != 1 ||
		counts[cp.TrackingAreaUpdate][cp.StateIdle] != 1 {
		t.Fatalf("TAU counts = %v", counts[cp.TrackingAreaUpdate])
	}
	if counts[cp.S1ConnRelease][cp.StateIdle] != 2 {
		t.Fatalf("S1_CONN_REL counts = %v", counts[cp.S1ConnRelease])
	}
	if counts[cp.ServiceRequest][cp.StateConnected] != 1 {
		t.Fatalf("SRV_REQ counts = %v", counts[cp.ServiceRequest])
	}
}

func TestReplaySojournSecondsPrecision(t *testing.T) {
	m := EMMECM()
	seq := []trace.Event{
		{T: 0, UE: 1, Type: cp.Attach},
		{T: 1, UE: 1, Type: cp.S1ConnRelease}, // 1 ms sojourn
	}
	res := Replay(m, EEDeregistered, seq)
	so := SojournsByTransition(res)
	k := TransitionKey{From: EEConnected, Event: cp.S1ConnRelease}
	if got := so[k]; len(got) != 1 || math.Abs(got[0]-0.001) > 1e-12 {
		t.Fatalf("sojourn = %v, want [0.001]", got)
	}
}
