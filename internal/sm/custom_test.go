package sm

import (
	"strings"
	"testing"

	"cptraffic/internal/cp"
)

// validSpec returns a minimal well-formed custom machine: DEREG, CONN,
// IDLE with the standard Category-1 edges.
func validSpec() Spec {
	return Spec{
		Name: "TEST-FLAT",
		States: []StateInfo{
			{"OFF", cp.StateDeregistered},
			{"ON", cp.StateConnected},
			{"REST", cp.StateIdle},
		},
		Edges: [][]Edge{
			{{cp.Attach, 1}},
			{{cp.S1ConnRelease, 2}, {cp.Detach, 0}},
			{{cp.ServiceRequest, 1}, {cp.Detach, 0}},
		},
		Initial: 0,
		Forced: map[cp.EventType]State{
			cp.Attach: 1, cp.Detach: 0, cp.ServiceRequest: 1,
			cp.S1ConnRelease: 2, cp.Handover: 1, cp.TrackingAreaUpdate: 1,
		},
		SubEntry: map[cp.UEState]State{
			cp.StateDeregistered: 0, cp.StateConnected: 1, cp.StateIdle: 2,
		},
	}
}

func TestNewMachineValid(t *testing.T) {
	m, err := NewMachine(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 3 {
		t.Fatalf("NumStates = %d", m.NumStates())
	}
	if to, ok := m.Next(0, cp.Attach); !ok || to != 1 {
		t.Fatal("edge lookup broken")
	}
	if m.SubEntry(cp.StateIdle) != 2 || m.Forced(cp.Handover) != 1 {
		t.Fatal("maps broken")
	}
	// The custom machine works with the replay machinery.
	res := Replay(m, m.Initial, evs(0.0, cp.Attach, 5.0, cp.S1ConnRelease))
	if res.Violations != 0 || res.Final != 2 {
		t.Fatalf("replay = %+v", res)
	}
}

func TestNewMachineRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"reserved", func(s *Spec) { s.Name = "LTE-2LEVEL" }, "reserved"},
		{"no states", func(s *Spec) { s.States = nil; s.Edges = nil }, "at least one state"},
		{"edges mismatch", func(s *Spec) { s.Edges = s.Edges[:2] }, "edge lists"},
		{"initial range", func(s *Spec) { s.Initial = 9 }, "initial state"},
		{"unnamed state", func(s *Spec) { s.States[1].Name = "" }, "no name"},
		{"dup state name", func(s *Spec) { s.States[1].Name = "OFF" }, "duplicate"},
		{"bad event", func(s *Spec) { s.Edges[0] = append(s.Edges[0], Edge{cp.EventType(99), 1}) }, "invalid event"},
		{"edge range", func(s *Spec) { s.Edges[0] = append(s.Edges[0], Edge{cp.Detach, 9}) }, "out-of-range"},
		{"nondeterministic", func(s *Spec) { s.Edges[0] = append(s.Edges[0], Edge{cp.Attach, 2}) }, "deterministic"},
		{"forced missing", func(s *Spec) { delete(s.Forced, cp.Handover) }, "Forced map missing"},
		{"forced range", func(s *Spec) { s.Forced[cp.Handover] = 9 }, "out of range"},
		{"subentry missing", func(s *Spec) { delete(s.SubEntry, cp.StateIdle) }, "SubEntry map missing"},
		{"subentry range", func(s *Spec) { s.SubEntry[cp.StateIdle] = 9 }, "out of range"},
		{"subentry wrong macro", func(s *Spec) { s.SubEntry[cp.StateIdle] = 1 }, "not in that macro state"},
		{"unreachable", func(s *Spec) {
			s.States = append(s.States, StateInfo{"ORPHAN", cp.StateIdle})
			s.Edges = append(s.Edges, []Edge{{cp.Detach, 0}})
		}, "unreachable"},
	}
	for _, c := range cases {
		spec := validSpec()
		c.mutate(&spec)
		_, err := NewMachine(spec)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNewMachineIndependentOfSpec(t *testing.T) {
	spec := validSpec()
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the spec after construction must not affect the machine.
	spec.States[0].Name = "MUTATED"
	spec.Edges[0][0].To = 2
	if m.StateName(0) != "OFF" {
		t.Fatal("machine shares the spec's state slice")
	}
	if to, _ := m.Next(0, cp.Attach); to != 1 {
		t.Fatal("machine shares the spec's edge slices")
	}
}
