package sm

import (
	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// This file provides macro-level (EMM-ECM) accounting that is robust to
// traces violating the two-level protocol — which baseline-generated
// traces do by design (e.g. HO while IDLE). The macro state is tracked
// from Category-1 events only (ATCH, DTCH, SRV_REQ, S1_CONN_REL), whose
// semantics every method honors, so attribution of Category-2 events
// (HO, TAU) never desynchronizes.

// Category1 reports whether e is a state-changing (Category-1) event.
func Category1(e cp.EventType) bool {
	switch e {
	case cp.Attach, cp.Detach, cp.ServiceRequest, cp.S1ConnRelease:
		return true
	default: // Category-2: HO, TAU
		return false
	}
}

// MacroAfter returns the macro state a UE occupies right after a
// Category-1 event.
func MacroAfter(e cp.EventType) cp.UEState {
	switch e {
	case cp.Attach, cp.ServiceRequest:
		return cp.StateConnected
	case cp.Detach:
		return cp.StateDeregistered
	case cp.S1ConnRelease:
		return cp.StateIdle
	default: // Category-2 (HO, TAU): no macro transition to give
		panic("sm: MacroAfter of Category-2 event")
	}
}

// InferMacroInitial guesses the macro state a UE occupied before its
// first observed event, from the first Category-1 event in the sequence
// (the state that event departs from). If the sequence has no Category-1
// event, registered UEs are assumed: CONNECTED if any HO appears (HO
// requires CONNECTED), IDLE otherwise.
func InferMacroInitial(evs []trace.Event) cp.UEState {
	for _, ev := range evs {
		switch ev.Type {
		case cp.Attach:
			return cp.StateDeregistered
		case cp.ServiceRequest:
			return cp.StateIdle
		case cp.S1ConnRelease, cp.Detach:
			return cp.StateConnected
		default: // Category-2 (HO, TAU) departs no particular macro state; keep scanning
		}
	}
	for _, ev := range evs {
		if ev.Type == cp.Handover {
			return cp.StateConnected
		}
	}
	return cp.StateIdle
}

// MacroBreakdown attributes every event of a single UE's time-ordered
// sequence to the macro state in which it occurred. Category-1 events
// are attributed to the state they establish (the paper counts SRV_REQ
// as a CONNECTED event and S1_CONN_REL as an IDLE event); Category-2
// events to the state current when they fire. This is the accounting
// behind the "HO (CONN.) / HO (IDLE) / TAU (CONN.) / TAU (IDLE)" rows of
// Tables 4 and 11.
func MacroBreakdown(evs []trace.Event, initial cp.UEState) map[cp.EventType]map[cp.UEState]int {
	out := make(map[cp.EventType]map[cp.UEState]int)
	add := func(e cp.EventType, s cp.UEState) {
		inner := out[e]
		if inner == nil {
			inner = make(map[cp.UEState]int)
			out[e] = inner
		}
		inner[s]++
	}
	cur := initial
	for _, ev := range evs {
		if Category1(ev.Type) {
			cur = MacroAfter(ev.Type)
			add(ev.Type, cur)
		} else {
			add(ev.Type, cur)
		}
	}
	return out
}

// MacroSojourns returns the completed visit durations (seconds) in each
// macro state for one UE, tracked from Category-1 events only. The visit
// in progress at the start (unknown entry) and at the end (unknown exit)
// are not counted.
func MacroSojourns(evs []trace.Event, initial cp.UEState) map[cp.UEState][]float64 {
	out := make(map[cp.UEState][]float64)
	cur := initial
	var enteredAt cp.Millis
	have := false
	for _, ev := range evs {
		if !Category1(ev.Type) {
			continue
		}
		next := MacroAfter(ev.Type)
		if next != cur {
			if have {
				out[cur] = append(out[cur], (ev.T - enteredAt).Seconds())
			}
			cur = next
			enteredAt = ev.T
			have = true
		}
		// A Category-1 event that does not change the macro state (e.g.
		// the S1_CONN_REL that releases a TAU's signaling while already
		// IDLE) leaves the visit running.
	}
	return out
}
