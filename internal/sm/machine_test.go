package sm

import (
	"testing"

	"cptraffic/internal/cp"
)

func TestLTE2LevelStructure(t *testing.T) {
	m := LTE2Level()
	if m.NumStates() != NumLTEStates {
		t.Fatalf("NumStates = %d", m.NumStates())
	}
	// Top-level mapping.
	wantTop := map[State]cp.UEState{
		LTEDeregistered: cp.StateDeregistered,
		LTESrvReqS:      cp.StateConnected,
		LTEHoS:          cp.StateConnected,
		LTETauSConn:     cp.StateConnected,
		LTES1RelS1:      cp.StateIdle,
		LTETauSIdle:     cp.StateIdle,
		LTES1RelS2:      cp.StateIdle,
	}
	for s, top := range wantTop {
		if m.Top(s) != top {
			t.Errorf("Top(%s) = %v, want %v", m.StateName(s), m.Top(s), top)
		}
	}
}

func TestLTE2LevelEdges(t *testing.T) {
	m := LTE2Level()
	type step struct {
		from State
		ev   cp.EventType
		to   State
		ok   bool
	}
	steps := []step{
		{LTEDeregistered, cp.Attach, LTESrvReqS, true},
		{LTEDeregistered, cp.ServiceRequest, 0, false},
		{LTEDeregistered, cp.Handover, 0, false},
		{LTESrvReqS, cp.Handover, LTEHoS, true},
		{LTESrvReqS, cp.TrackingAreaUpdate, LTETauSConn, true},
		{LTESrvReqS, cp.S1ConnRelease, LTES1RelS1, true},
		{LTESrvReqS, cp.Detach, LTEDeregistered, true},
		{LTESrvReqS, cp.ServiceRequest, 0, false}, // already connected
		{LTEHoS, cp.Handover, LTEHoS, true},       // self-loop
		{LTEHoS, cp.TrackingAreaUpdate, LTETauSConn, true},
		{LTETauSConn, cp.TrackingAreaUpdate, LTETauSConn, true}, // self-loop
		{LTETauSConn, cp.Handover, LTEHoS, true},
		{LTES1RelS1, cp.ServiceRequest, LTESrvReqS, true},
		{LTES1RelS1, cp.TrackingAreaUpdate, LTETauSIdle, true},
		{LTES1RelS1, cp.Handover, 0, false}, // HO forbidden in IDLE
		{LTETauSIdle, cp.S1ConnRelease, LTES1RelS2, true},
		{LTETauSIdle, cp.ServiceRequest, 0, false}, // starred arrow rule
		{LTES1RelS2, cp.TrackingAreaUpdate, LTETauSIdle, true},
		{LTES1RelS2, cp.ServiceRequest, LTESrvReqS, true},
		{LTES1RelS2, cp.Handover, 0, false},
	}
	for _, s := range steps {
		to, ok := m.Next(s.from, s.ev)
		if ok != s.ok || (ok && to != s.to) {
			t.Errorf("Next(%s, %s) = (%s, %v), want (%s, %v)",
				m.StateName(s.from), s.ev, m.StateName(to), ok, m.StateName(s.to), s.ok)
		}
	}
}

func TestHandoverImpossibleInIdle(t *testing.T) {
	// The defining property of the two-level machine: HO can never be
	// generated from any IDLE or DEREGISTERED state.
	m := LTE2Level()
	for s := 0; s < m.NumStates(); s++ {
		st := State(s)
		if m.Top(st) == cp.StateConnected {
			continue
		}
		if _, ok := m.Next(st, cp.Handover); ok {
			t.Errorf("HO edge exists from non-CONNECTED state %s", m.StateName(st))
		}
	}
}

func TestEMMECMStructure(t *testing.T) {
	m := EMMECM()
	if m.NumStates() != 3 {
		t.Fatalf("NumStates = %d", m.NumStates())
	}
	steps := []struct {
		from State
		ev   cp.EventType
		to   State
		ok   bool
	}{
		{EEDeregistered, cp.Attach, EEConnected, true},
		{EEConnected, cp.S1ConnRelease, EEIdle, true},
		{EEConnected, cp.Detach, EEDeregistered, true},
		{EEIdle, cp.ServiceRequest, EEConnected, true},
		{EEIdle, cp.Detach, EEDeregistered, true},
		// HO/TAU are not part of the EMM-ECM machine at all.
		{EEConnected, cp.Handover, 0, false},
		{EEConnected, cp.TrackingAreaUpdate, 0, false},
		{EEIdle, cp.TrackingAreaUpdate, 0, false},
	}
	for _, s := range steps {
		to, ok := m.Next(s.from, s.ev)
		if ok != s.ok || (ok && to != s.to) {
			t.Errorf("Next(%s,%s) = (%v,%v)", m.StateName(s.from), s.ev, to, ok)
		}
	}
}

func TestFiveGSAHasNoTAU(t *testing.T) {
	m := FiveGSA()
	if m.NumStates() != NumSAStates {
		t.Fatalf("NumStates = %d", m.NumStates())
	}
	for s := 0; s < m.NumStates(); s++ {
		if _, ok := m.Next(State(s), cp.TrackingAreaUpdate); ok {
			t.Errorf("TAU edge exists in 5G SA from %s", m.StateName(State(s)))
		}
	}
	// HO self-loop kept, IDLE single state.
	if to, ok := m.Next(SAHoS, cp.Handover); !ok || to != SAHoS {
		t.Error("HO self-loop missing in 5G SA")
	}
	if to, ok := m.Next(SAHoS, cp.S1ConnRelease); !ok || to != SAIdle {
		t.Error("AN_REL from HO_S missing")
	}
	if to, ok := m.Next(SAIdle, cp.ServiceRequest); !ok || to != SASrvReqS {
		t.Error("SRV_REQ from CM-IDLE missing")
	}
}

func TestStateByName(t *testing.T) {
	m := LTE2Level()
	s, err := m.StateByName("TAU_S_IDLE")
	if err != nil || s != LTETauSIdle {
		t.Fatalf("StateByName = %v, %v", s, err)
	}
	if _, err := m.StateByName("BOGUS"); err == nil {
		t.Fatal("bogus state name accepted")
	}
	if m.StateName(State(99)) != "?" {
		t.Fatal("out-of-range StateName")
	}
}

func TestForcedStates(t *testing.T) {
	m := LTE2Level()
	want := map[cp.EventType]State{
		cp.Attach:             LTESrvReqS,
		cp.Detach:             LTEDeregistered,
		cp.ServiceRequest:     LTESrvReqS,
		cp.S1ConnRelease:      LTES1RelS1,
		cp.Handover:           LTEHoS,
		cp.TrackingAreaUpdate: LTETauSConn,
	}
	for e, s := range want {
		if m.Forced(e) != s {
			t.Errorf("Forced(%s) = %s, want %s", e, m.StateName(m.Forced(e)), m.StateName(s))
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Every (state, event) pair has at most one successor in all machines.
	for _, m := range []*Machine{LTE2Level(), EMMECM(), FiveGSA()} {
		for s := range m.Edges {
			seen := map[cp.EventType]int{}
			for _, e := range m.Edges[s] {
				seen[e.Event]++
				if seen[e.Event] > 1 {
					t.Errorf("%s: state %s has %d edges on %v",
						m.Name, m.StateName(State(s)), seen[e.Event], e.Event)
				}
			}
		}
	}
}

func TestAllStatesReachableFromInitial(t *testing.T) {
	for _, m := range []*Machine{LTE2Level(), EMMECM(), FiveGSA()} {
		reach := map[State]bool{m.Initial: true}
		frontier := []State{m.Initial}
		for len(frontier) > 0 {
			s := frontier[0]
			frontier = frontier[1:]
			for _, e := range m.Edges[s] {
				if !reach[e.To] {
					reach[e.To] = true
					frontier = append(frontier, e.To)
				}
			}
		}
		if len(reach) != m.NumStates() {
			t.Errorf("%s: only %d of %d states reachable", m.Name, len(reach), m.NumStates())
		}
	}
}

func TestEveryStateCanEventuallyDeregister(t *testing.T) {
	// Liveness: from every state there is a path back to the initial
	// (DEREGISTERED) state, so generated UEs can always power-cycle.
	for _, m := range []*Machine{LTE2Level(), EMMECM(), FiveGSA()} {
		// Reverse reachability from Initial.
		rev := make(map[State][]State)
		for s := range m.Edges {
			for _, e := range m.Edges[s] {
				rev[e.To] = append(rev[e.To], State(s))
			}
		}
		ok := map[State]bool{m.Initial: true}
		frontier := []State{m.Initial}
		for len(frontier) > 0 {
			s := frontier[0]
			frontier = frontier[1:]
			for _, p := range rev[s] {
				if !ok[p] {
					ok[p] = true
					frontier = append(frontier, p)
				}
			}
		}
		for s := 0; s < m.NumStates(); s++ {
			if !ok[State(s)] {
				t.Errorf("%s: no path from %s to DEREGISTERED", m.Name, m.StateName(State(s)))
			}
		}
	}
}
