package sm

import (
	"fmt"

	"cptraffic/internal/cp"
)

// Spec declares a custom machine for NewMachine. Beyond the three
// built-in machines (LTE two-level, EMM-ECM, 5G SA), downstream users
// can define their own hierarchies — e.g. a 6G draft protocol or a
// vendor extension — and fit/generate against them with the same
// pipeline, since core only interacts with machines through this
// package's interface.
type Spec struct {
	// Name identifies the machine; it must not collide with the
	// built-in names, which core resolves specially.
	Name string
	// States lists the fine-grained states; indices become State values.
	States []StateInfo
	// Edges[s] lists state s's outgoing labeled transitions.
	Edges [][]Edge
	// Initial is the power-off state.
	Initial State
	// Forced maps each event type to its canonical post-state (used to
	// resynchronize replays after protocol violations).
	Forced map[cp.EventType]State
	// SubEntry maps each macro state to the fine state entered when the
	// top level switches into it.
	SubEntry map[cp.UEState]State
}

// reservedNames are the built-in machine names core resolves by name.
var reservedNames = map[string]bool{
	"LTE-2LEVEL": true,
	"EMM-ECM":    true,
	"5G-SA":      true,
}

// NewMachine validates a Spec and builds a Machine from it. It enforces
// the invariants the fitting pipeline and generator rely on:
// determinism (one successor per (state, event)), a valid initial state,
// complete forced and sub-entry maps, and reachability of every state
// from Initial.
func NewMachine(spec Spec) (*Machine, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("sm: machine needs a name")
	}
	if reservedNames[spec.Name] {
		return nil, fmt.Errorf("sm: machine name %q is reserved for a built-in", spec.Name)
	}
	if len(spec.States) == 0 {
		return nil, fmt.Errorf("sm: machine needs at least one state")
	}
	if len(spec.Edges) != len(spec.States) {
		return nil, fmt.Errorf("sm: %d edge lists for %d states", len(spec.Edges), len(spec.States))
	}
	if int(spec.Initial) >= len(spec.States) {
		return nil, fmt.Errorf("sm: initial state %d out of range", spec.Initial)
	}
	seenName := map[string]bool{}
	for i, si := range spec.States {
		if si.Name == "" {
			return nil, fmt.Errorf("sm: state %d has no name", i)
		}
		if seenName[si.Name] {
			return nil, fmt.Errorf("sm: duplicate state name %q", si.Name)
		}
		seenName[si.Name] = true
		if !si.Top.Registered() && si.Top != cp.StateDeregistered {
			return nil, fmt.Errorf("sm: state %q has invalid macro state %d", si.Name, si.Top)
		}
	}
	m := &Machine{
		Name:    spec.Name,
		States:  append([]StateInfo(nil), spec.States...),
		Edges:   make([][]Edge, len(spec.States)),
		Initial: spec.Initial,
	}
	for s, edges := range spec.Edges {
		seen := map[cp.EventType]bool{}
		for _, e := range edges {
			if !e.Event.Valid() {
				return nil, fmt.Errorf("sm: state %q has edge with invalid event %d",
					spec.States[s].Name, e.Event)
			}
			if int(e.To) >= len(spec.States) {
				return nil, fmt.Errorf("sm: state %q has edge to out-of-range state %d",
					spec.States[s].Name, e.To)
			}
			if seen[e.Event] {
				return nil, fmt.Errorf("sm: state %q has two edges on %v (machines must be deterministic)",
					spec.States[s].Name, e.Event)
			}
			seen[e.Event] = true
		}
		m.Edges[s] = append([]Edge(nil), edges...)
	}
	for _, e := range cp.EventTypes {
		st, ok := spec.Forced[e]
		if !ok {
			return nil, fmt.Errorf("sm: Forced map missing event %v", e)
		}
		if int(st) >= len(spec.States) {
			return nil, fmt.Errorf("sm: Forced[%v] out of range", e)
		}
		m.forced[e] = st
	}
	for _, top := range []cp.UEState{cp.StateDeregistered, cp.StateConnected, cp.StateIdle} {
		st, ok := spec.SubEntry[top]
		if !ok {
			return nil, fmt.Errorf("sm: SubEntry map missing macro state %v", top)
		}
		if int(st) >= len(spec.States) {
			return nil, fmt.Errorf("sm: SubEntry[%v] out of range", top)
		}
		if m.Top(st) != top {
			return nil, fmt.Errorf("sm: SubEntry[%v] = %q is not in that macro state", top, spec.States[st].Name)
		}
		m.subEntry[top] = st
	}
	// Reachability from Initial.
	reach := map[State]bool{m.Initial: true}
	frontier := []State{m.Initial}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, e := range m.Edges[s] {
			if !reach[e.To] {
				reach[e.To] = true
				frontier = append(frontier, e.To)
			}
		}
	}
	for s := range m.States {
		if !reach[State(s)] {
			return nil, fmt.Errorf("sm: state %q unreachable from the initial state", m.States[s].Name)
		}
	}
	return m, nil
}
