package sm

import (
	"strings"
	"testing"
)

func TestDOTContainsAllStatesAndEdges(t *testing.T) {
	for _, m := range []*Machine{LTE2Level(), EMMECM(), FiveGSA()} {
		dot := m.DOT()
		if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(dot, "}\n") {
			t.Fatalf("%s: malformed dot", m.Name)
		}
		for s := 0; s < m.NumStates(); s++ {
			if !strings.Contains(dot, `"`+m.StateName(State(s))+`"`) {
				t.Errorf("%s: state %s missing from dot", m.Name, m.StateName(State(s)))
			}
		}
		edges := 0
		for s := range m.Edges {
			edges += len(m.Edges[s])
		}
		if got := strings.Count(dot, "->"); got != edges {
			t.Errorf("%s: %d edges rendered, want %d", m.Name, got, edges)
		}
	}
}

func TestDOTGroupsSubMachines(t *testing.T) {
	dot := LTE2Level().DOT()
	if !strings.Contains(dot, `subgraph "cluster_CONNECTED"`) {
		t.Error("CONNECTED sub-machine not clustered")
	}
	if !strings.Contains(dot, `subgraph "cluster_IDLE"`) {
		t.Error("IDLE sub-machine not clustered")
	}
	if strings.Contains(dot, `subgraph "cluster_DEREGISTERED"`) {
		t.Error("DEREGISTERED has no sub-structure, should be a plain node")
	}
}
