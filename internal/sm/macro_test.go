package sm

import (
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

func TestCategory1(t *testing.T) {
	want := map[cp.EventType]bool{
		cp.Attach:             true,
		cp.Detach:             true,
		cp.ServiceRequest:     true,
		cp.S1ConnRelease:      true,
		cp.Handover:           false,
		cp.TrackingAreaUpdate: false,
	}
	for e, w := range want {
		if Category1(e) != w {
			t.Errorf("Category1(%v) = %v", e, !w)
		}
	}
}

func TestInferMacroInitial(t *testing.T) {
	cases := []struct {
		seq  []trace.Event
		want cp.UEState
	}{
		{evs(0.0, cp.Attach), cp.StateDeregistered},
		{evs(0.0, cp.ServiceRequest), cp.StateIdle},
		{evs(0.0, cp.S1ConnRelease), cp.StateConnected},
		{evs(0.0, cp.Detach), cp.StateConnected},
		{evs(0.0, cp.Handover, 1.0, cp.ServiceRequest), cp.StateIdle}, // first Cat-1 wins
		{evs(0.0, cp.Handover), cp.StateConnected},                    // HO implies CONNECTED
		{evs(0.0, cp.TrackingAreaUpdate), cp.StateIdle},
		{nil, cp.StateIdle},
	}
	for i, c := range cases {
		if got := InferMacroInitial(c.seq); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestMacroBreakdownAttribution(t *testing.T) {
	seq := evs(
		0.0, cp.Attach, // CONNECTED
		1.0, cp.Handover, // HO in CONNECTED
		2.0, cp.S1ConnRelease, // IDLE
		3.0, cp.Handover, // HO in IDLE (protocol violation, e.g. baseline)
		4.0, cp.TrackingAreaUpdate, // TAU in IDLE
		5.0, cp.ServiceRequest, // CONNECTED
		6.0, cp.TrackingAreaUpdate, // TAU in CONNECTED
	)
	b := MacroBreakdown(seq, cp.StateDeregistered)
	if b[cp.Handover][cp.StateConnected] != 1 || b[cp.Handover][cp.StateIdle] != 1 {
		t.Fatalf("HO = %v", b[cp.Handover])
	}
	if b[cp.TrackingAreaUpdate][cp.StateIdle] != 1 || b[cp.TrackingAreaUpdate][cp.StateConnected] != 1 {
		t.Fatalf("TAU = %v", b[cp.TrackingAreaUpdate])
	}
	if b[cp.ServiceRequest][cp.StateConnected] != 1 {
		t.Fatalf("SRV_REQ = %v", b[cp.ServiceRequest])
	}
	if b[cp.S1ConnRelease][cp.StateIdle] != 1 {
		t.Fatalf("S1_CONN_REL = %v", b[cp.S1ConnRelease])
	}
}

func TestMacroBreakdownViolationDoesNotDesync(t *testing.T) {
	// A HO while IDLE must not flip the tracked state: the next TAU is
	// still an IDLE TAU.
	seq := evs(
		0.0, cp.S1ConnRelease,
		1.0, cp.Handover,
		2.0, cp.TrackingAreaUpdate,
	)
	b := MacroBreakdown(seq, cp.StateConnected)
	if b[cp.TrackingAreaUpdate][cp.StateIdle] != 1 {
		t.Fatalf("TAU = %v, want IDLE", b[cp.TrackingAreaUpdate])
	}
}

func TestMacroSojourns(t *testing.T) {
	seq := evs(
		0.0, cp.Attach, // enter CONNECTED
		10.0, cp.S1ConnRelease, // CONNECTED 10s, enter IDLE
		15.0, cp.TrackingAreaUpdate, // Cat-2: ignored for state tracking
		20.0, cp.S1ConnRelease, // Cat-1 but no state change: visit continues
		70.0, cp.ServiceRequest, // IDLE 60s, enter CONNECTED
		80.0, cp.Detach, // CONNECTED 10s, enter DEREGISTERED (open visit)
	)
	so := MacroSojourns(seq, cp.StateDeregistered)
	conn := so[cp.StateConnected]
	idle := so[cp.StateIdle]
	if len(conn) != 2 || conn[0] != 10 || conn[1] != 10 {
		t.Fatalf("CONNECTED = %v", conn)
	}
	if len(idle) != 1 || idle[0] != 60 {
		t.Fatalf("IDLE = %v", idle)
	}
	if len(so[cp.StateDeregistered]) != 0 {
		t.Fatalf("DEREGISTERED = %v", so[cp.StateDeregistered])
	}
}

func TestSubEntryAndEdgeIsBottom(t *testing.T) {
	m := LTE2Level()
	if m.SubEntry(cp.StateConnected) != LTESrvReqS {
		t.Fatal("CONNECTED sub-entry wrong")
	}
	if m.SubEntry(cp.StateIdle) != LTES1RelS1 {
		t.Fatal("IDLE sub-entry wrong")
	}
	if m.SubEntry(cp.StateDeregistered) != LTEDeregistered {
		t.Fatal("DEREGISTERED sub-entry wrong")
	}

	cases := []struct {
		from     State
		ev       cp.EventType
		isBottom bool
		ok       bool
	}{
		{LTESrvReqS, cp.Handover, true, true},           // stays CONNECTED
		{LTESrvReqS, cp.S1ConnRelease, false, true},     // leaves to IDLE
		{LTETauSIdle, cp.S1ConnRelease, true, true},     // stays IDLE
		{LTES1RelS1, cp.ServiceRequest, false, true},    // leaves to CONNECTED
		{LTEDeregistered, cp.Handover, false, false},    // no edge
		{LTEHoS, cp.Handover, true, true},               // self-loop
		{LTES1RelS2, cp.TrackingAreaUpdate, true, true}, // idle-internal
	}
	for _, c := range cases {
		isBottom, ok := m.EdgeIsBottom(c.from, c.ev)
		if isBottom != c.isBottom || ok != c.ok {
			t.Errorf("EdgeIsBottom(%s,%s) = (%v,%v), want (%v,%v)",
				m.StateName(c.from), c.ev, isBottom, ok, c.isBottom, c.ok)
		}
	}

	sa := FiveGSA()
	if sa.SubEntry(cp.StateIdle) != SAIdle {
		t.Fatal("5G SA idle sub-entry wrong")
	}
	ee := EMMECM()
	if ee.SubEntry(cp.StateConnected) != EEConnected {
		t.Fatal("EMM-ECM sub-entry wrong")
	}
}
