package sm

import (
	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// Transition records one step of a replay: the UE left From on Event at
// time At and entered To, having stayed in From for Sojourn (valid only
// when HasSojourn is true — the entry time of the very first state in a
// trace slice is unknown).
type Transition struct {
	From       State
	Event      cp.EventType
	To         State
	At         cp.Millis
	Sojourn    cp.Millis
	HasSojourn bool
	// Forced marks transitions that did not follow a machine edge and
	// were recovered via the canonical post-state of the event.
	Forced bool
}

// ReplayResult is the outcome of replaying one UE's event sequence.
type ReplayResult struct {
	Transitions []Transition
	// Violations counts events with no edge from the then-current state.
	Violations int
	// Final is the machine state after the last event.
	Final State
}

// Replay walks a single UE's time-ordered events through machine m
// starting from the given state. Events that do not correspond to an
// outgoing edge are counted as violations and recovered by jumping to the
// event's canonical post-state, so one bad event cannot desynchronize the
// rest of the replay.
func Replay(m *Machine, initial State, evs []trace.Event) ReplayResult {
	res := ReplayResult{Final: initial}
	cur := initial
	var enteredAt cp.Millis
	hasEntry := false
	for _, ev := range evs {
		next, ok := m.Next(cur, ev.Type)
		tr := Transition{
			From:  cur,
			Event: ev.Type,
			To:    next,
			At:    ev.T,
		}
		if !ok {
			res.Violations++
			tr.Forced = true
			tr.To = m.Forced(ev.Type)
		}
		if hasEntry {
			tr.Sojourn = ev.T - enteredAt
			tr.HasSojourn = true
		}
		res.Transitions = append(res.Transitions, tr)
		cur = tr.To
		enteredAt = ev.T
		hasEntry = true
	}
	res.Final = cur
	return res
}

// InferInitial guesses the state a UE occupied just before its first
// observed event: the canonical predecessor of that event type. A UE with
// no events is assumed DEREGISTERED only if the machine says so; callers
// that know better (e.g. hour slices of a longer trace) should carry the
// final state of the previous slice instead.
func InferInitial(m *Machine, evs []trace.Event) State {
	if len(evs) == 0 {
		return m.Initial
	}
	first := evs[0].Type
	// Find a state that has an outgoing edge on the first event; prefer
	// the canonical predecessors so replay starts violation-free.
	switch first {
	case cp.Attach:
		return m.Initial
	case cp.Detach, cp.S1ConnRelease, cp.Handover:
		// These require CONNECTED; the forced post-state of SRV_REQ is
		// the canonical CONNECTED entry point.
		return m.Forced(cp.ServiceRequest)
	case cp.ServiceRequest:
		// Requires IDLE; the forced post-state of S1_CONN_REL is the
		// canonical IDLE entry point.
		return m.Forced(cp.S1ConnRelease)
	case cp.TrackingAreaUpdate:
		// TAU can occur in CONNECTED and IDLE; prefer CONNECTED, which
		// accounts for the majority of TAUs in the paper's trace.
		return m.Forced(cp.ServiceRequest)
	}
	return m.Initial
}

// TransitionKey identifies a semi-Markov transition: leaving From on
// Event. Because machines are deterministic the destination is implied.
type TransitionKey struct {
	From  State
	Event cp.EventType
}

// SojournsByTransition groups the observed sojourn times (in seconds) of
// a replay by transition. Only transitions with a known entry time
// contribute.
func SojournsByTransition(res ReplayResult) map[TransitionKey][]float64 {
	out := make(map[TransitionKey][]float64)
	for _, tr := range res.Transitions {
		if !tr.HasSojourn {
			continue
		}
		k := TransitionKey{From: tr.From, Event: tr.Event}
		out[k] = append(out[k], tr.Sojourn.Seconds())
	}
	return out
}

// TopSojourns extracts the durations (in seconds) the UE spent in each
// merged macro state (DEREGISTERED / CONNECTED / IDLE), computed from the
// replay's transitions. Only complete visits — entered and left within
// the replayed events — are counted, matching the paper's per-interval
// replay methodology (§4.1.1).
func TopSojourns(m *Machine, res ReplayResult) map[cp.UEState][]float64 {
	out := make(map[cp.UEState][]float64)
	var enteredAt cp.Millis
	haveEntry := false
	var curTop cp.UEState
	for i, tr := range res.Transitions {
		top := m.Top(tr.To)
		prevTop := m.Top(tr.From)
		if i == 0 {
			// Entry time of the first state is unknown; start tracking
			// from this event.
			curTop = top
			enteredAt = tr.At
			haveEntry = true
			continue
		}
		if top != prevTop {
			// Macro state changed at tr.At.
			if haveEntry && prevTop == curTop {
				out[curTop] = append(out[curTop], (tr.At - enteredAt).Seconds())
			}
			curTop = top
			enteredAt = tr.At
			haveEntry = true
		}
	}
	return out
}

// InterArrivals returns the inter-arrival times (in seconds) between
// consecutive events of the given type within a single UE's time-ordered
// event sequence.
func InterArrivals(evs []trace.Event, t cp.EventType) []float64 {
	var out []float64
	var last cp.Millis
	have := false
	for _, ev := range evs {
		if ev.Type != t {
			continue
		}
		if have {
			out = append(out, (ev.T - last).Seconds())
		}
		last = ev.T
		have = true
	}
	return out
}

// CountMacroEvents tallies, for each event type, how many occurrences
// happened while the UE was in each merged macro state according to the
// replay — the breakdown the paper reports as "HO (CONN.)", "HO (IDLE)",
// "TAU (CONN.)", "TAU (IDLE)" in Tables 4 and 11. The state *before* the
// event determines the bucket, except that state-changing events are
// attributed to the state they establish (ATCH and SRV_REQ to CONNECTED,
// DTCH to DEREGISTERED, S1_CONN_REL to IDLE), mirroring the paper's
// accounting where SRV_REQ is a CONNECTED-establishing event.
func CountMacroEvents(m *Machine, res ReplayResult) map[cp.EventType]map[cp.UEState]int {
	out := make(map[cp.EventType]map[cp.UEState]int)
	add := func(e cp.EventType, s cp.UEState) {
		inner := out[e]
		if inner == nil {
			inner = make(map[cp.UEState]int)
			out[e] = inner
		}
		inner[s]++
	}
	for _, tr := range res.Transitions {
		switch tr.Event {
		case cp.Attach, cp.ServiceRequest:
			add(tr.Event, cp.StateConnected)
		case cp.Detach:
			add(tr.Event, cp.StateDeregistered)
		case cp.S1ConnRelease:
			add(tr.Event, cp.StateIdle)
		default:
			add(tr.Event, m.Top(tr.From))
		}
	}
	return out
}
