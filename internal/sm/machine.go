// Package sm defines the UE protocol state machines of the paper and the
// machinery to replay control-plane traces through them.
//
// Three machines are provided:
//
//   - EMMECM: the merged EMM–ECM machine (3 states) used by the Base and
//     V1 comparison methods. It captures only the Category-1 events
//     (ATCH, DTCH, SRV_REQ, S1_CONN_REL).
//   - LTE2Level: the paper's two-level hierarchical machine (Fig. 5),
//     flattened into 7 fine-grained states. Category-2 events (HO, TAU)
//     are edges of the embedded sub-machines.
//   - FiveGSA: the adjusted machine for 5G standalone (Fig. 6), obtained
//     by removing TAU and its states.
//
// A machine is deterministic: a (state, event) pair has at most one
// successor, so replaying a trace through a machine is unambiguous.
package sm

import (
	"fmt"

	"cptraffic/internal/cp"
)

// State is a fine-grained machine state index, local to one Machine.
type State uint8

// StateInfo describes one fine-grained state.
type StateInfo struct {
	// Name is the paper's name for the state, e.g. "SRV_REQ_S".
	Name string
	// Top is the merged EMM-ECM macro state this fine state belongs to.
	Top cp.UEState
}

// Edge is a labeled transition: on Event, move to To.
type Edge struct {
	Event cp.EventType
	To    State
}

// Machine is a deterministic finite state machine over control events.
type Machine struct {
	// Name identifies the machine ("EMM-ECM", "LTE-2LEVEL", "5G-SA").
	Name string
	// States lists the fine-grained states; State values index it.
	States []StateInfo
	// Edges[s] lists the outgoing edges of state s in canonical order.
	Edges [][]Edge
	// Initial is the canonical initial state (DEREGISTERED).
	Initial State
	// forced maps each event type to the canonical state a UE occupies
	// right after that event, used to resynchronize after a protocol
	// violation in an observed trace.
	forced [cp.NumEventTypes]State
	// subEntry maps each macro state to the fine state entered when the
	// top level switches into that macro state (the sub-machine's entry
	// point, e.g. CONNECTED enters SRV_REQ_S).
	subEntry [cp.NumUEStates]State
}

// SubEntry returns the fine state entered when the top level switches
// into macro state top.
func (m *Machine) SubEntry(top cp.UEState) State { return m.subEntry[top] }

// EdgeIsBottom reports whether the edge leaving from on event e stays
// within the same macro state (a bottom-level / sub-machine transition)
// and whether the edge exists at all.
func (m *Machine) EdgeIsBottom(from State, e cp.EventType) (isBottom, ok bool) {
	to, ok := m.Next(from, e)
	if !ok {
		return false, false
	}
	return m.Top(to) == m.Top(from), true
}

// NumStates returns the number of fine-grained states.
func (m *Machine) NumStates() int { return len(m.States) }

// StateName returns the name of s ("?" if out of range).
func (m *Machine) StateName(s State) string {
	if int(s) < len(m.States) {
		return m.States[s].Name
	}
	return "?"
}

// Top returns the merged macro state of s.
func (m *Machine) Top(s State) cp.UEState { return m.States[s].Top }

// Next returns the successor of s on event e, if the edge exists.
func (m *Machine) Next(s State, e cp.EventType) (State, bool) {
	for _, edge := range m.Edges[s] {
		if edge.Event == e {
			return edge.To, true
		}
	}
	return s, false
}

// Forced returns the canonical post-state of event e, used to recover
// when an observed trace takes an edge the machine does not have.
func (m *Machine) Forced(e cp.EventType) State { return m.forced[e] }

// StateByName returns the state with the given name.
func (m *Machine) StateByName(name string) (State, error) {
	for i, si := range m.States {
		if si.Name == name {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("sm: machine %s has no state %q", m.Name, name)
}

// validate panics if the machine definition is internally inconsistent;
// it runs once at package init for the built-in machines.
func (m *Machine) validate() {
	if len(m.Edges) != len(m.States) {
		panic(fmt.Sprintf("sm: %s: %d edge lists for %d states", m.Name, len(m.Edges), len(m.States)))
	}
	for s, edges := range m.Edges {
		seen := map[cp.EventType]bool{}
		for _, e := range edges {
			if int(e.To) >= len(m.States) {
				panic(fmt.Sprintf("sm: %s: edge from %s to out-of-range state %d",
					m.Name, m.States[s].Name, e.To))
			}
			if seen[e.Event] {
				panic(fmt.Sprintf("sm: %s: state %s has duplicate edge on %s",
					m.Name, m.States[s].Name, e.Event))
			}
			seen[e.Event] = true
		}
	}
}

// Fine-grained states of the LTE two-level machine (paper Fig. 5). The
// sub-machine states are named exactly as in the paper; the DEREGISTERED
// top-level state has no sub-structure.
const (
	LTEDeregistered State = iota // EMM_DEREGISTERED
	LTESrvReqS                   // SRV_REQ_S   (in CONNECTED)
	LTEHoS                       // HO_S        (in CONNECTED)
	LTETauSConn                  // TAU_S_CONN  (in CONNECTED)
	LTES1RelS1                   // S1_REL_S_1  (in IDLE)
	LTETauSIdle                  // TAU_S_IDLE  (in IDLE)
	LTES1RelS2                   // S1_REL_S_2  (in IDLE)

	numLTEStates = iota
)

// NumLTEStates is the number of fine states in the LTE two-level machine.
const NumLTEStates = int(numLTEStates)

var lte2Level = &Machine{
	Name: "LTE-2LEVEL",
	States: []StateInfo{
		LTEDeregistered: {"DEREGISTERED", cp.StateDeregistered},
		LTESrvReqS:      {"SRV_REQ_S", cp.StateConnected},
		LTEHoS:          {"HO_S", cp.StateConnected},
		LTETauSConn:     {"TAU_S_CONN", cp.StateConnected},
		LTES1RelS1:      {"S1_REL_S_1", cp.StateIdle},
		LTETauSIdle:     {"TAU_S_IDLE", cp.StateIdle},
		LTES1RelS2:      {"S1_REL_S_2", cp.StateIdle},
	},
	Edges: [][]Edge{
		// Powered-off UEs can only attach; attach enters CONNECTED
		// (the UE always enters CONNECTED when it registers, §5.1).
		LTEDeregistered: {
			{cp.Attach, LTESrvReqS},
		},
		// CONNECTED sub-machine: HO and TAU move among the sub-states;
		// S1_CONN_REL can leave from any CONNECTED sub-state; DTCH
		// deregisters.
		LTESrvReqS: {
			{cp.Handover, LTEHoS},
			{cp.TrackingAreaUpdate, LTETauSConn},
			{cp.S1ConnRelease, LTES1RelS1},
			{cp.Detach, LTEDeregistered},
		},
		LTEHoS: {
			{cp.Handover, LTEHoS},
			{cp.TrackingAreaUpdate, LTETauSConn},
			{cp.S1ConnRelease, LTES1RelS1},
			{cp.Detach, LTEDeregistered},
		},
		LTETauSConn: {
			{cp.TrackingAreaUpdate, LTETauSConn},
			{cp.Handover, LTEHoS},
			{cp.S1ConnRelease, LTES1RelS1},
			{cp.Detach, LTEDeregistered},
		},
		// IDLE sub-machine: SRV_REQ may only leave from S1_REL_S_1 and
		// S1_REL_S_2 (the starred arrow in Fig. 5); after a TAU in IDLE
		// an S1_CONN_REL always follows to release the TAU's signaling
		// connection.
		LTES1RelS1: {
			{cp.TrackingAreaUpdate, LTETauSIdle},
			{cp.ServiceRequest, LTESrvReqS},
			{cp.Detach, LTEDeregistered},
		},
		LTETauSIdle: {
			{cp.S1ConnRelease, LTES1RelS2},
			{cp.Detach, LTEDeregistered},
		},
		LTES1RelS2: {
			{cp.TrackingAreaUpdate, LTETauSIdle},
			{cp.ServiceRequest, LTESrvReqS},
			{cp.Detach, LTEDeregistered},
		},
	},
	Initial: LTEDeregistered,
	forced: [cp.NumEventTypes]State{
		cp.Attach:             LTESrvReqS,
		cp.Detach:             LTEDeregistered,
		cp.ServiceRequest:     LTESrvReqS,
		cp.S1ConnRelease:      LTES1RelS1,
		cp.Handover:           LTEHoS,
		cp.TrackingAreaUpdate: LTETauSConn,
	},
	subEntry: [cp.NumUEStates]State{
		cp.StateDeregistered: LTEDeregistered,
		cp.StateConnected:    LTESrvReqS,
		cp.StateIdle:         LTES1RelS1,
	},
}

// LTE2Level returns the paper's two-level hierarchical LTE machine.
func LTE2Level() *Machine { return lte2Level }

// States of the merged EMM-ECM machine used by Base and V1.
const (
	EEDeregistered State = iota // EMM_DEREGISTERED
	EEConnected                 // ECM_CONNECTED
	EEIdle                      // ECM_IDLE
)

var emmEcm = &Machine{
	Name: "EMM-ECM",
	States: []StateInfo{
		EEDeregistered: {"DEREGISTERED", cp.StateDeregistered},
		EEConnected:    {"CONNECTED", cp.StateConnected},
		EEIdle:         {"IDLE", cp.StateIdle},
	},
	Edges: [][]Edge{
		EEDeregistered: {
			{cp.Attach, EEConnected},
		},
		EEConnected: {
			{cp.S1ConnRelease, EEIdle},
			{cp.Detach, EEDeregistered},
		},
		EEIdle: {
			{cp.ServiceRequest, EEConnected},
			{cp.Detach, EEDeregistered},
		},
	},
	Initial: EEDeregistered,
	forced: [cp.NumEventTypes]State{
		cp.Attach:             EEConnected,
		cp.Detach:             EEDeregistered,
		cp.ServiceRequest:     EEConnected,
		cp.S1ConnRelease:      EEIdle,
		cp.Handover:           EEConnected,
		cp.TrackingAreaUpdate: EEConnected,
	},
	subEntry: [cp.NumUEStates]State{
		cp.StateDeregistered: EEDeregistered,
		cp.StateConnected:    EEConnected,
		cp.StateIdle:         EEIdle,
	},
}

// EMMECM returns the merged EMM-ECM machine (Fig. 1a + 1b combined).
func EMMECM() *Machine { return emmEcm }

// Fine-grained states of the adjusted 5G SA machine (paper Fig. 6). The
// LTE event-type constants double as the 5G ones through the Table 2
// mapping (ATCH=REGISTER, DTCH=DEREGISTER, S1_CONN_REL=AN_REL); TAU has
// no 5G SA counterpart so its states disappear.
const (
	SADeregistered State = iota // RM-DEREGISTERED
	SASrvReqS                   // SRV_REQ_S (in CM-CONNECTED)
	SAHoS                       // HO_S      (in CM-CONNECTED)
	SAIdle                      // CM-IDLE

	numSAStates = iota
)

// NumSAStates is the number of fine states in the 5G SA machine.
const NumSAStates = int(numSAStates)

var fiveGSA = &Machine{
	Name: "5G-SA",
	States: []StateInfo{
		SADeregistered: {"RM-DEREGISTERED", cp.StateDeregistered},
		SASrvReqS:      {"SRV_REQ_S", cp.StateConnected},
		SAHoS:          {"HO_S", cp.StateConnected},
		SAIdle:         {"CM-IDLE", cp.StateIdle},
	},
	Edges: [][]Edge{
		SADeregistered: {
			{cp.Attach, SASrvReqS},
		},
		SASrvReqS: {
			{cp.Handover, SAHoS},
			{cp.S1ConnRelease, SAIdle},
			{cp.Detach, SADeregistered},
		},
		SAHoS: {
			{cp.Handover, SAHoS},
			{cp.S1ConnRelease, SAIdle},
			{cp.Detach, SADeregistered},
		},
		SAIdle: {
			{cp.ServiceRequest, SASrvReqS},
			{cp.Detach, SADeregistered},
		},
	},
	Initial: SADeregistered,
	forced: [cp.NumEventTypes]State{
		cp.Attach:             SASrvReqS,
		cp.Detach:             SADeregistered,
		cp.ServiceRequest:     SASrvReqS,
		cp.S1ConnRelease:      SAIdle,
		cp.Handover:           SAHoS,
		cp.TrackingAreaUpdate: SASrvReqS, // unreachable: TAU does not exist in 5G SA
	},
	subEntry: [cp.NumUEStates]State{
		cp.StateDeregistered: SADeregistered,
		cp.StateConnected:    SASrvReqS,
		cp.StateIdle:         SAIdle,
	},
}

// FiveGSA returns the adjusted two-level machine for 5G standalone.
func FiveGSA() *Machine { return fiveGSA }

func init() {
	lte2Level.validate()
	emmEcm.validate()
	fiveGSA.validate()
}
