package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "long-header"}}
	tbl.AddRow("x")
	tbl.AddRow("yyyy", "z")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a     long-header") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Padded short row.
	if !strings.HasPrefix(lines[3], "x   ") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestPctFormats(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
	if SignedPct(0.05) != "+5.0%" || SignedPct(-0.05) != "-5.0%" {
		t.Fatalf("SignedPct = %q / %q", SignedPct(0.05), SignedPct(-0.05))
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Series(&buf, []string{"x", "y"}, []float64{1, 2, 3}, []float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,4\n2,5\n3,\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}
