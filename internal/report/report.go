// Package report renders experiment results as fixed-width text tables
// and CSV series, matching the row/column structure of the paper's
// tables and figures so outputs can be compared side by side.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a share as a signed or unsigned percentage with one
// decimal, the paper's table style.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// SignedPct formats a share difference with an explicit sign.
func SignedPct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// Series writes (x, y...) rows as CSV, the export format for figures.
func Series(w io.Writer, header []string, cols ...[]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	n := 0
	for _, c := range cols {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		parts := make([]string, len(cols))
		for j, c := range cols {
			if i < len(c) {
				parts[j] = fmt.Sprintf("%g", c[i])
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}
