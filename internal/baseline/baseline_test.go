package baseline

import (
	"testing"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/world"
)

func TestOptionsMatchTable3(t *testing.T) {
	co := cluster.Options{ThetaN: 10}
	cases := []struct {
		method       string
		machine      string
		kind         string
		free         int
		noClustering bool
	}{
		{"base", "EMM-ECM", core.SojournExp, 2, true},
		{"v1", "EMM-ECM", core.SojournExp, 2, false},
		{"v2", "LTE-2LEVEL", core.SojournExp, 0, false},
		{"ours", "LTE-2LEVEL", core.SojournTable, 0, false},
	}
	for _, c := range cases {
		opt, err := Options(c.method, co)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Machine.Name != c.machine {
			t.Errorf("%s: machine %s, want %s", c.method, opt.Machine.Name, c.machine)
		}
		if opt.SojournKind != c.kind {
			t.Errorf("%s: kind %s, want %s", c.method, opt.SojournKind, c.kind)
		}
		if len(opt.FreeEvents) != c.free {
			t.Errorf("%s: %d free events, want %d", c.method, len(opt.FreeEvents), c.free)
		}
		if opt.NoClustering != c.noClustering {
			t.Errorf("%s: NoClustering = %v", c.method, opt.NoClustering)
		}
		if opt.Method != c.method {
			t.Errorf("%s: label %q", c.method, opt.Method)
		}
	}
	if _, err := Options("nope", co); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestFitAll(t *testing.T) {
	tr, err := world.Generate(world.Options{NumUEs: 150, Duration: 3 * cp.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	models, err := FitAll(tr, cluster.Options{ThetaN: 25}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("got %d models", len(models))
	}
	for _, m := range Methods {
		ms := models[m]
		if ms == nil {
			t.Fatalf("method %s missing", m)
		}
		if err := ms.Validate(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if ms.Method != m {
			t.Fatalf("%s: labeled %q", m, ms.Method)
		}
		// Every method must be able to generate.
		gen, err := core.Generate(ms, core.GenOptions{NumUEs: 50, Duration: cp.Hour, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if gen.Len() == 0 {
			t.Fatalf("%s generated nothing", m)
		}
	}
	// Base has exactly one cluster per hour; ours has at least one.
	base := models["base"].Device(cp.Phone)
	for h := range base.Hours {
		if len(base.Hours[h].Clusters) != 1 {
			t.Fatalf("base hour %d has %d clusters", h, len(base.Hours[h].Clusters))
		}
	}
}
