// Package baseline configures the paper's comparison methods (Table 3):
//
//	method | state machine | distribution | UE clustering
//	-------+---------------+--------------+--------------
//	base   | EMM-ECM       | Poisson      | no
//	v1     | EMM-ECM       | Poisson      | yes
//	v2     | two-level     | Poisson      | yes
//	ours   | two-level     | empirical CDF| yes
//
// The EMM-ECM methods model HO and TAU as free-running fitted-Poisson
// processes, which is why they generate handovers while IDLE; the
// two-level methods bind them to the sub-machines of Fig. 5.
package baseline

import (
	"fmt"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// Methods lists the four modeling methods in presentation order.
var Methods = []string{"base", "v1", "v2", "ours"}

// Options returns the core.FitOptions for one of the Table 3 methods.
func Options(method string, clusterOpt cluster.Options) (core.FitOptions, error) {
	switch method {
	case "base":
		return core.FitOptions{
			Machine:      sm.EMMECM(),
			SojournKind:  core.SojournExp,
			FreeEvents:   []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
			NoClustering: true,
			Method:       "base",
		}, nil
	case "v1":
		return core.FitOptions{
			Machine:     sm.EMMECM(),
			SojournKind: core.SojournExp,
			FreeEvents:  []cp.EventType{cp.Handover, cp.TrackingAreaUpdate},
			Cluster:     clusterOpt,
			Method:      "v1",
		}, nil
	case "v2":
		return core.FitOptions{
			Machine:     sm.LTE2Level(),
			SojournKind: core.SojournExp,
			Cluster:     clusterOpt,
			Method:      "v2",
		}, nil
	case "ours":
		return core.FitOptions{
			Machine:     sm.LTE2Level(),
			SojournKind: core.SojournTable,
			Cluster:     clusterOpt,
			Method:      "ours",
		}, nil
	}
	return core.FitOptions{}, fmt.Errorf("baseline: unknown method %q", method)
}

// FitAll fits all four methods on the same training trace. workers
// bounds each fit's concurrency (0 means GOMAXPROCS); it never affects
// the fitted models.
func FitAll(tr *trace.Trace, clusterOpt cluster.Options, workers int) (map[string]*core.ModelSet, error) {
	out := make(map[string]*core.ModelSet, len(Methods))
	for _, m := range Methods {
		opt, err := Options(m, clusterOpt)
		if err != nil {
			return nil, err
		}
		opt.Workers = workers
		ms, err := core.Fit(tr, opt)
		if err != nil {
			return nil, fmt.Errorf("baseline: fitting %s: %w", m, err)
		}
		out[m] = ms
	}
	return out, nil
}
