package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		opt, n, want int
	}{
		{0, 1000, max},
		{-3, 1000, max},
		{4, 1000, 4},
		{8, 3, 3},
		{0, 0, 1},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.opt, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.opt, c.n, got, c.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		const n = 100
		counts := make([]int32, n)
		For(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForIndexedWritesMatchSerial(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 5, 16} {
		got := make([]int, n)
		For(n, workers, func(i int) { got[i] = i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 8, func(int) { called = true })
	if called {
		t.Fatal("For(0, ...) invoked its body")
	}
}

func TestDoRunsEachWorker(t *testing.T) {
	const workers = 9
	var ran [workers]int32
	Do(workers, func(w int) { atomic.AddInt32(&ran[w], 1) })
	for w, c := range ran {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

func TestDoSingleInline(t *testing.T) {
	hit := 0
	Do(1, func(w int) {
		if w != 0 {
			t.Fatalf("w = %d", w)
		}
		hit++
	})
	if hit != 1 {
		t.Fatalf("fn ran %d times", hit)
	}
}
