// Package par provides the deterministic worker-pool primitives shared
// by the simulation, fitting, generation, and evaluation pipelines.
//
// Every pipeline in this repo obeys one discipline (DESIGN.md decision
// 2): the worker count changes only the wall clock, never the output.
// The helpers here make that easy to uphold — For distributes loop
// indices statically, so a caller that writes results into slots
// indexed by the loop variable produces exactly the layout the serial
// loop would, and any order-sensitive reduction is then done serially
// over those slots.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count option: values <= 0 mean GOMAXPROCS,
// and the result never exceeds n (the number of independent tasks) nor
// falls below 1.
func Workers(opt, n int) int {
	w := opt
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(w) for every worker w in [0, workers) on its own goroutine
// and waits for all of them. workers <= 1 runs fn(0) inline.
func Do(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n), strided across Workers(workers,
// n) goroutines: worker w handles i = w, w+W, w+2W, … Each index runs
// exactly once; writes indexed by i therefore land exactly where the
// serial loop would put them, regardless of the worker count.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	Do(w, func(wi int) {
		for i := wi; i < n; i += w {
			fn(i)
		}
	})
}
