// Package prof wires the runtime's CPU and heap profilers into the
// CLIs: every trace-touching command exposes -cpuprofile/-memprofile so
// perf work measures hot paths with pprof instead of guessing from wall
// clock (which the 1-CPU build container makes a weak signal anyway).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns
// a stop function that ends the CPU profile and writes a heap profile
// to memPath (when non-empty). Both paths empty makes Start and stop
// no-ops, so callers can wire the flags unconditionally:
//
//	stop, err := prof.Start(*cpuprofile, *memprofile)
//	if err != nil { log.Fatal(err) }
//	defer stop()
//
// stop is idempotent and returns the first error it hits.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			// Materialize the final live set so the heap profile shows
			// retained memory, not allocation noise.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
