// Package experiments reproduces every table and figure of the paper's
// evaluation on the world-simulator substrate. Each experiment renders
// the same rows/series the paper reports; the per-experiment index lives
// in DESIGN.md and measured-vs-paper numbers in EXPERIMENTS.md.
//
// All experiments run at a configurable scale. Absolute numbers differ
// from the paper (its substrate was a production carrier trace; ours is
// the behavioral simulator), but the shapes — who wins, by what rough
// factor, which failure modes appear — are the reproduction targets.
package experiments

import (
	"fmt"
	"sync"

	"cptraffic/internal/baseline"
	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

// Config scales the experiment suite.
type Config struct {
	// TrainUEs is the training population (the paper's 37,325).
	TrainUEs int
	// Days is the training trace length in days (the paper's 7).
	Days int
	// Scenario1UEs and Scenario2UEs are the validation population sizes
	// (the paper's 38,000 and 380,000 — about 1x and 10x training).
	Scenario1UEs int
	Scenario2UEs int
	// BusyHour is the validation hour-of-day (the paper validates "one
	// of the busy hours").
	BusyHour int
	// ThetaN is the adaptive-clustering small-cluster threshold, scaled
	// to the population (the paper's 1000 for 37K UEs).
	ThetaN int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the concurrency of every pipeline stage (world
	// simulation, fitting, generation, pass-rate sweeps); 0 means
	// GOMAXPROCS. Results are identical for any value.
	Workers int
}

// DefaultConfig returns a laptop-scale configuration: ~1/50 of the
// paper's population with proportionally scaled clustering thresholds
// (pass -scale to cmd/experiments to grow it).
func DefaultConfig() Config {
	return Config{
		TrainUEs:     800,
		Days:         2,
		Scenario1UEs: 800,
		Scenario2UEs: 8000,
		BusyHour:     18,
		ThetaN:       30,
		Seed:         2023,
	}
}

// Lab lazily builds and caches the shared fixtures: the training world,
// the validation worlds, and the four fitted models.
type Lab struct {
	Cfg Config

	mu     sync.Mutex
	train  *trace.Trace              //cplint:guardedby mu
	realS1 *trace.Trace              //cplint:guardedby mu
	realS2 *trace.Trace              //cplint:guardedby mu
	models map[string]*core.ModelSet //cplint:guardedby mu
	genS1  map[string]*trace.Trace   //cplint:guardedby mu
	genS2  map[string]*trace.Trace   //cplint:guardedby mu
}

// NewLab returns an empty lab for the configuration.
func NewLab(cfg Config) *Lab {
	return &Lab{Cfg: cfg, genS1: map[string]*trace.Trace{}, genS2: map[string]*trace.Trace{}}
}

// ClusterOptions returns the scaled adaptive-clustering options.
func (l *Lab) ClusterOptions() cluster.Options {
	return cluster.Options{ThetaN: l.Cfg.ThetaN}
}

// Train returns the multi-day training trace (the stand-in for the
// paper's one-week carrier collection).
func (l *Lab) Train() (*trace.Trace, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.train == nil {
		tr, err := world.Generate(world.Options{
			NumUEs:   l.Cfg.TrainUEs,
			Duration: cp.Millis(l.Cfg.Days) * cp.Day,
			Seed:     l.Cfg.Seed,
			Workers:  l.Cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		l.train = tr
	}
	return l.train, nil
}

// RealScenario returns the held-out "real" validation trace for scenario
// 1 or 2: an independent world draw for the scenario's population,
// restricted to the busy hour.
func (l *Lab) RealScenario(n int) (*trace.Trace, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cached := &l.realS1
	ues := l.Cfg.Scenario1UEs
	seed := l.Cfg.Seed + 101
	if n == 2 {
		cached = &l.realS2
		ues = l.Cfg.Scenario2UEs
		seed = l.Cfg.Seed + 202
	}
	if *cached == nil {
		// Warm-start two hours before the busy hour: enough for the
		// session/burst dynamics to mix, at a fraction of the cost of
		// simulating from midnight.
		warmup := cp.Millis(2) * cp.Hour
		h := cp.Millis(l.Cfg.BusyHour) * cp.Hour
		full, err := world.Generate(world.Options{
			NumUEs:   ues,
			Duration: warmup + cp.Hour,
			Offset:   h - warmup,
			Seed:     seed,
			Workers:  l.Cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		*cached = full.Slice(h, h+cp.Hour)
	}
	return *cached, nil
}

// Models fits (once) and returns the four Table 3 methods on the
// training trace.
func (l *Lab) Models() (map[string]*core.ModelSet, error) {
	if _, err := l.Train(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.models == nil {
		ms, err := baseline.FitAll(l.train, cluster.Options{ThetaN: l.Cfg.ThetaN}, l.Cfg.Workers)
		if err != nil {
			return nil, err
		}
		l.models = ms
	}
	return l.models, nil
}

// Generated returns (and caches) the synthesized busy-hour trace of one
// method for scenario 1 or 2.
func (l *Lab) Generated(method string, scenario int) (*trace.Trace, error) {
	models, err := l.Models()
	if err != nil {
		return nil, err
	}
	ms, ok := models[method]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown method %q", method)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cache := l.genS1
	ues := l.Cfg.Scenario1UEs
	if scenario == 2 {
		cache = l.genS2
		ues = l.Cfg.Scenario2UEs
	}
	if tr, ok := cache[method]; ok {
		return tr, nil
	}
	tr, err := core.Generate(ms, core.GenOptions{
		NumUEs:    ues,
		StartHour: l.Cfg.BusyHour,
		Duration:  cp.Hour,
		Seed:      l.Cfg.Seed + 999 + uint64(scenario),
		Workers:   l.Cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	cache[method] = tr
	return tr, nil
}
