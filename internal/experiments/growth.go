package experiments

import (
	"fmt"
	"io"

	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/mcn"
	"cptraffic/internal/report"
)

// GrowthProjection runs the §3.1 "large-scale simulations for NextG"
// use case end to end: the fitted model synthesizes busy-hour traffic
// for growing populations with a device mix shifting toward connected
// devices (the industry projection the paper cites), and the core
// dimensioning model reports the capacity each network function needs
// to keep p99 queueing delay under 50 ms.
func GrowthProjection(l *Lab, w io.Writer) error {
	models, err := l.Models()
	if err != nil {
		return err
	}
	ms := models["ours"]
	base := l.Cfg.Scenario1UEs
	tbl := report.Table{
		Title:  "Growth projection — busy-hour capacity (tx/s for p99 <= 50 ms) as the population grows and shifts toward connected devices",
		Header: []string{"Scale", "UEs", "Car share", "Events", "MME", "HSS", "SGW", "PGW", "PCRF"},
	}
	type step struct {
		scale    int
		carShare float64
	}
	for _, st := range []step{{1, 0.25}, {2, 0.35}, {5, 0.45}} {
		mix := []float64{1 - st.carShare - 0.12, st.carShare, 0.12}
		tr, err := core.Generate(ms, core.GenOptions{
			NumUEs:    base * st.scale,
			StartHour: l.Cfg.BusyHour,
			Duration:  cp.Hour,
			Seed:      l.Cfg.Seed + 888 + uint64(st.scale),
			DeviceMix: mix,
			Workers:   l.Cfg.Workers,
		})
		if err != nil {
			return err
		}
		cap, err := mcn.SuggestCapacity(tr, 0.050)
		if err != nil {
			return err
		}
		tbl.AddRow(
			fmt.Sprintf("%dx", st.scale),
			fmt.Sprintf("%d", base*st.scale),
			report.Pct(st.carShare),
			fmt.Sprintf("%d", tr.Len()),
			fmt.Sprintf("%.0f", cap[mcn.NFMME]),
			fmt.Sprintf("%.0f", cap[mcn.NFHSS]),
			fmt.Sprintf("%.0f", cap[mcn.NFSGW]),
			fmt.Sprintf("%.0f", cap[mcn.NFPGW]),
			fmt.Sprintf("%.0f", cap[mcn.NFPCRF]))
	}
	return tbl.Render(w)
}
