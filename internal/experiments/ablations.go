package experiments

import (
	"fmt"
	"io"

	"cptraffic/internal/baseline"
	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/report"
	"cptraffic/internal/stats"
)

// AblationClusterThresholds sweeps the adaptive-clustering small-cluster
// threshold θn and reports the number of instantiated models and the
// resulting phone breakdown error — quantifying the accuracy/size
// trade-off behind the paper's choice of θn.
func AblationClusterThresholds(l *Lab, w io.Writer) error {
	train, err := l.Train()
	if err != nil {
		return err
	}
	realTr, err := l.RealScenario(1)
	if err != nil {
		return err
	}
	tbl := report.Table{
		Title:  "Ablation — clustering threshold θn vs model count and phone breakdown error",
		Header: []string{"θn", "Models", "Personas (P)", "Max |diff| (P)"},
	}
	base := l.Cfg.ThetaN
	for _, thetaN := range []int{base * 4, base, base / 2} {
		if thetaN < 2 {
			continue
		}
		opt, err := baseline.Options("ours", cluster.Options{ThetaN: thetaN})
		if err != nil {
			return err
		}
		opt.Workers = l.Cfg.Workers
		ms, err := core.Fit(train, opt)
		if err != nil {
			return err
		}
		gen, err := core.Generate(ms, core.GenOptions{
			NumUEs:    l.Cfg.Scenario1UEs,
			StartHour: l.Cfg.BusyHour,
			Duration:  cp.Hour,
			Seed:      l.Cfg.Seed + 555,
			Workers:   l.Cfg.Workers,
		})
		if err != nil {
			return err
		}
		realB := eval.ComputeBreakdown(realTr, cp.Phone)
		diff := eval.MaxAbsDiff(eval.BreakdownDiff(realB, eval.ComputeBreakdown(gen, cp.Phone)))
		personas := 0
		if dm := ms.Device(cp.Phone); dm != nil {
			personas = len(dm.Personas)
		}
		tbl.AddRow(fmt.Sprintf("%d", thetaN),
			fmt.Sprintf("%d", ms.NumModels()),
			fmt.Sprintf("%d", personas),
			report.Pct(diff))
	}
	return tbl.Render(w)
}

// AblationTableResolution sweeps the quantile-table grid resolution and
// reports the K-S distance between resampled draws and the original
// sojourn sample — the compression/fidelity trade-off of the empirical
// CDF storage.
func AblationTableResolution(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	xs := eval.StateSojourns(tr, cp.Phone, cp.StateConnected)
	if len(xs) < 100 {
		return fmt.Errorf("experiments: too few CONNECTED sojourns (%d)", len(xs))
	}
	tbl := report.Table{
		Title:  "Ablation — quantile-table resolution vs resampling fidelity (phone CONNECTED sojourns)",
		Header: []string{"Grid points", "K-S distance resampled-vs-original"},
	}
	r := stats.NewRNG(l.Cfg.Seed + 321)
	for _, n := range []int{11, 51, 201, 801} {
		qt := stats.NewQuantileTableN(xs, n)
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = qt.Quantile(r.OpenFloat64())
		}
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.4f", stats.MaxYDistance(xs, ys)))
	}
	return tbl.Render(w)
}

// AblationTwoLevelVsFlat isolates the two-level machine's contribution:
// the share of total events each method emits as HO while IDLE — a
// protocol impossibility that only the flat EMM-ECM methods produce.
func AblationTwoLevelVsFlat(l *Lab, w io.Writer) error {
	tbl := report.Table{
		Title:  "Ablation — HO-in-IDLE leak (protocol violations) per method, scenario 1",
		Header: []string{"Method", "Machine", "HO (IDLE) share"},
	}
	models, err := l.Models()
	if err != nil {
		return err
	}
	for _, m := range baseline.Methods {
		gen, err := l.Generated(m, 1)
		if err != nil {
			return err
		}
		total, leak := 0, 0.0
		for _, d := range cp.DeviceTypes {
			b := eval.ComputeBreakdown(gen, d)
			leak += b.Share["HO (IDLE)"] * float64(b.Total)
			total += b.Total
		}
		share := 0.0
		if total > 0 {
			share = leak / float64(total)
		}
		tbl.AddRow(m, models[m].MachineName, report.Pct(share))
	}
	return tbl.Render(w)
}

// HOIdleLeak returns each method's HO-in-IDLE share for programmatic
// checks.
func HOIdleLeak(l *Lab) (map[string]float64, error) {
	out := map[string]float64{}
	for _, m := range baseline.Methods {
		gen, err := l.Generated(m, 1)
		if err != nil {
			return nil, err
		}
		total, leak := 0, 0.0
		for _, d := range cp.DeviceTypes {
			b := eval.ComputeBreakdown(gen, d)
			leak += b.Share["HO (IDLE)"] * float64(b.Total)
			total += b.Total
		}
		if total > 0 {
			out[m] = leak / float64(total)
		}
	}
	return out, nil
}
