package experiments

import (
	"fmt"
	"io"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/report"
)

// Figure2 summarizes the per-device-hour event-count distributions (the
// paper's box plots) for the four dominant event types.
func Figure2(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	events := []cp.EventType{cp.ServiceRequest, cp.S1ConnRelease, cp.Handover, cp.TrackingAreaUpdate}
	for _, d := range cp.DeviceTypes {
		for _, e := range events {
			hc := eval.HourCounts(tr, d, e, l.Cfg.Days)
			tbl := report.Table{
				Title:  fmt.Sprintf("Figure 2 — %s per device-hour, %s (per-day averages)", e, d),
				Header: []string{"Hour", "Min", "Q1", "Median", "Mean", "Q3", "Max"},
			}
			for h := 0; h < 24; h++ {
				bs := eval.ComputeBoxStats(hc[h])
				tbl.AddRow(fmt.Sprintf("%02d", h),
					fmt.Sprintf("%.2f", bs.Min), fmt.Sprintf("%.2f", bs.Q1),
					fmt.Sprintf("%.2f", bs.Median), fmt.Sprintf("%.2f", bs.Mean),
					fmt.Sprintf("%.2f", bs.Q3), fmt.Sprintf("%.2f", bs.Max))
			}
			if err := tbl.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// DiurnalSwing returns peak-to-trough mean event-rate ratios per device
// type, the headline numbers of Figure 2.
func DiurnalSwing(l *Lab) (map[cp.DeviceType]float64, error) {
	tr, err := l.Train()
	if err != nil {
		return nil, err
	}
	out := map[cp.DeviceType]float64{}
	for _, d := range cp.DeviceTypes {
		hc := eval.HourCounts(tr, d, cp.ServiceRequest, l.Cfg.Days)
		peak, trough := 0.0, math.Inf(1)
		for h := 0; h < 24; h++ {
			m := eval.ComputeBoxStats(hc[h]).Mean
			if m > peak {
				peak = m
			}
			if m < trough {
				trough = m
			}
		}
		if trough <= 0 {
			trough = 1e-9
		}
		out[d] = peak / trough
	}
	return out, nil
}

// passRateTable renders one of the Tables 8/9/10.
func passRateTable(w io.Writer, title string, qs []eval.Quantity,
	rates map[eval.DistTest]map[cp.DeviceType]map[eval.Quantity]float64) error {
	header := []string{"Test", "Device"}
	for _, q := range qs {
		header = append(header, q.String())
	}
	tbl := report.Table{Title: title, Header: header}
	for t := 0; t < eval.NumDistTests; t++ {
		for _, d := range cp.DeviceTypes {
			row := []string{eval.DistTest(t).String(), d.String()}
			for _, q := range qs {
				v := rates[eval.DistTest(t)][d][q]
				if math.IsNaN(v) {
					row = append(row, "-")
				} else {
					row = append(row, report.Pct(v))
				}
			}
			tbl.AddRow(row...)
		}
	}
	return tbl.Render(w)
}

// Table8 runs the goodness-of-fit sweep without clustering.
func Table8(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	rates := eval.PassRates(tr, eval.Table8Quantities(), eval.FitTestOptions{MinSamples: 30, Workers: l.Cfg.Workers})
	return passRateTable(w, "Table 8 — % of 1-hour intervals passing, no clustering",
		eval.Table8Quantities(), rates)
}

// Table9 runs the sweep with the adaptive clustering.
func Table9(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	rates := eval.PassRates(tr, eval.Table8Quantities(),
		eval.FitTestOptions{Clustered: true, Cluster: l.ClusterOptions(), MinSamples: 30, Workers: l.Cfg.Workers})
	return passRateTable(w, "Table 9 — % of 1-hour intervals passing, with adaptive clustering",
		eval.Table8Quantities(), rates)
}

// Table10 runs the sweep over the nine second-level transitions.
func Table10(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	rates := eval.PassRates(tr, eval.Table10Quantities(),
		eval.FitTestOptions{Clustered: true, Cluster: l.ClusterOptions(), MinSamples: 30, Workers: l.Cfg.Workers})
	return passRateTable(w, "Table 10 — % of intervals passing, second-level transitions",
		eval.Table10Quantities(), rates)
}

// PoissonPassRate returns the clustered Poisson K-S pass rate for one
// quantity, averaged over device types — the reproduction's headline
// negative result.
func PoissonPassRate(l *Lab, q eval.Quantity) (float64, error) {
	tr, err := l.Train()
	if err != nil {
		return 0, err
	}
	// Only well-powered units count: K-S cannot reject anything on a
	// handful of samples, and the paper's units pooled thousands.
	rates := eval.PassRates(tr, []eval.Quantity{q},
		eval.FitTestOptions{Clustered: true, Cluster: l.ClusterOptions(), MinSamples: 40, Workers: l.Cfg.Workers})
	var sum float64
	n := 0
	for _, d := range cp.DeviceTypes {
		v := rates[eval.PoissonKS][d][q]
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN(), nil
	}
	return sum / float64(n), nil
}

// figure34Quantities are the four panels of Figures 3 and 4.
func figure34Quantities() []eval.Quantity {
	return []eval.Quantity{
		{Kind: eval.QStateSojourn, State: cp.StateConnected},
		{Kind: eval.QStateSojourn, State: cp.StateIdle},
		{Kind: eval.QInterArrival, Event: cp.Handover},
		{Kind: eval.QInterArrival, Event: cp.TrackingAreaUpdate},
	}
}

// Figure3 exports the variance-time curves (observed vs fitted Poisson)
// for the CONNECTED/IDLE states and HO/TAU events of phones.
func Figure3(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	phones := eval.UESet(tr.UEsOfType(cp.Phone))
	horizon := cp.Millis(l.Cfg.Days) * cp.Day
	for _, q := range figure34Quantities() {
		vt := eval.VarianceTimeFor(tr, phones, q, horizon)
		fmt.Fprintf(w, "# Figure 3 — variance-time, %s (phones); mean log10 gap vs Poisson = %.2f, Hurst = %.2f\n",
			q, vt.LogGap, vt.Hurst)
		scales := make([]float64, len(vt.Observed))
		obs := make([]float64, len(vt.Observed))
		ref := make([]float64, len(vt.Poisson))
		for i := range vt.Observed {
			scales[i] = vt.Observed[i].ScaleSec
			obs[i] = vt.Observed[i].NormVar
			ref[i] = vt.Poisson[i].NormVar
		}
		if err := report.Series(w, []string{"scale_s", "observed", "poisson"}, scales, obs, ref); err != nil {
			return err
		}
	}
	return nil
}

// Figure3Gaps returns the log-gap per panel for programmatic checks.
func Figure3Gaps(l *Lab) (map[string]float64, error) {
	tr, err := l.Train()
	if err != nil {
		return nil, err
	}
	phones := eval.UESet(tr.UEsOfType(cp.Phone))
	horizon := cp.Millis(l.Cfg.Days) * cp.Day
	out := map[string]float64{}
	for _, q := range figure34Quantities() {
		out[q.String()] = eval.VarianceTimeFor(tr, phones, q, horizon).LogGap
	}
	return out, nil
}

// Figure4 exports the real-vs-fitted-Poisson CDF comparisons for the
// same four quantities on phones, and prints the observed-vs-fitted
// value ranges the paper quotes.
func Figure4(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	for _, q := range figure34Quantities() {
		xs := eval.QuantitySamples(tr, cp.Phone, q)
		if len(xs) < 2 {
			continue
		}
		c, err := eval.CDFvsPoisson(xs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Figure 4 — %s (phones): observed range [%.2f, %.2f] s, fitted exponential range [%.2f, %.2f] s\n",
			q, c.MinObs, c.MaxObs, c.MinFit, c.MaxFit)
		if err := report.Series(w, []string{"x", "F_observed", "F_fitted"},
			c.Sample.X, c.Sample.F, c.Fitted.F); err != nil {
			return err
		}
	}
	return nil
}

// Figure4Ranges returns (observed max / fitted max) per panel.
func Figure4Ranges(l *Lab) (map[string]float64, error) {
	tr, err := l.Train()
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, q := range figure34Quantities() {
		xs := eval.QuantitySamples(tr, cp.Phone, q)
		if len(xs) < 2 {
			continue
		}
		c, err := eval.CDFvsPoisson(xs)
		if err != nil {
			return nil, err
		}
		out[q.String()] = c.MaxObs / c.MaxFit
	}
	return out, nil
}

// Clusters reports the adaptive clustering statistics of §5.3: clusters
// per hour per device type and the total number of instantiated models.
func Clusters(l *Lab, w io.Writer) error {
	models, err := l.Models()
	if err != nil {
		return err
	}
	ours := models["ours"]
	tbl := report.Table{
		Title:  "§5.3 — adaptive clustering statistics (method: ours)",
		Header: []string{"Device", "Avg clusters/hour", "Personas", "Models"},
	}
	total := 0
	for _, d := range cp.DeviceTypes {
		dm := ours.Device(d)
		if dm == nil {
			continue
		}
		n := 0
		for h := range dm.Hours {
			n += len(dm.Hours[h].Clusters)
		}
		total += n
		tbl.AddRow(d.String(),
			fmt.Sprintf("%.1f", float64(n)/float64(len(dm.Hours))),
			fmt.Sprintf("%d", len(dm.Personas)),
			fmt.Sprintf("%d", n))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "Total instantiated (cluster, hour, device) models: %d (paper: 20,216 at 37K-UE scale)\n\n", total)
	return err
}

// ClusterCounts returns the total model count.
func ClusterCounts(l *Lab) (int, error) {
	models, err := l.Models()
	if err != nil {
		return 0, err
	}
	return models["ours"].NumModels(), nil
}
