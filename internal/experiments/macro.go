package experiments

import (
	"fmt"
	"io"

	"cptraffic/internal/baseline"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/fiveg"
	"cptraffic/internal/report"
)

// Table1 regenerates the paper's Table 1: the breakdown of control-plane
// events per device type over the multi-day training trace.
func Table1(l *Lab, w io.Writer) error {
	tr, err := l.Train()
	if err != nil {
		return err
	}
	tbl := report.Table{
		Title:  fmt.Sprintf("Table 1 — event breakdown, %d-day world trace, %d UEs", l.Cfg.Days, l.Cfg.TrainUEs),
		Header: []string{"Event Type", "P", "CC", "T"},
	}
	var shares [cp.NumDeviceTypes][cp.NumEventTypes]float64
	for _, d := range cp.DeviceTypes {
		shares[d], _ = eval.SimpleBreakdown(tr, d)
	}
	for _, e := range cp.EventTypes {
		tbl.AddRow(e.String(),
			report.Pct(shares[cp.Phone][e]),
			report.Pct(shares[cp.ConnectedCar][e]),
			report.Pct(shares[cp.Tablet][e]))
	}
	return tbl.Render(w)
}

// BreakdownTable regenerates Table 4 (scenario 2) or Table 11 (scenario
// 1): signed differences between the real busy-hour breakdown and each
// method's synthesized breakdown, per device type.
func BreakdownTable(l *Lab, w io.Writer, scenario int) error {
	realTr, err := l.RealScenario(scenario)
	if err != nil {
		return err
	}
	num := map[int]string{1: "11", 2: "4"}[scenario]
	ues := l.Cfg.Scenario1UEs
	if scenario == 2 {
		ues = l.Cfg.Scenario2UEs
	}
	tbl := report.Table{
		Title:  fmt.Sprintf("Table %s — breakdown differences vs real, scenario %d (%d UEs, hour %d)", num, scenario, ues, l.Cfg.BusyHour),
		Header: []string{"Device", "Row", "Real", "Base", "V1", "V2", "Ours"},
	}
	for _, d := range cp.DeviceTypes {
		realB := eval.ComputeBreakdown(realTr, d)
		diffs := map[string]map[string]float64{}
		for _, m := range baseline.Methods {
			gen, err := l.Generated(m, scenario)
			if err != nil {
				return err
			}
			diffs[m] = eval.BreakdownDiff(realB, eval.ComputeBreakdown(gen, d))
		}
		for _, k := range eval.BreakdownKeys {
			tbl.AddRow(d.String(), k,
				report.Pct(realB.Share[k]),
				report.SignedPct(diffs["base"][k]),
				report.SignedPct(diffs["v1"][k]),
				report.SignedPct(diffs["v2"][k]),
				report.SignedPct(diffs["ours"][k]))
		}
	}
	return tbl.Render(w)
}

// BreakdownErrors returns each method's maximum absolute breakdown error
// per device type — the comparison the reproduction must preserve:
// ours <= v2 < v1 < base.
func BreakdownErrors(l *Lab, scenario int) (map[string]map[cp.DeviceType]float64, error) {
	realTr, err := l.RealScenario(scenario)
	if err != nil {
		return nil, err
	}
	out := map[string]map[cp.DeviceType]float64{}
	for _, m := range baseline.Methods {
		gen, err := l.Generated(m, scenario)
		if err != nil {
			return nil, err
		}
		out[m] = map[cp.DeviceType]float64{}
		for _, d := range cp.DeviceTypes {
			realB := eval.ComputeBreakdown(realTr, d)
			out[m][d] = eval.MaxAbsDiff(eval.BreakdownDiff(realB, eval.ComputeBreakdown(gen, d)))
		}
	}
	return out, nil
}

// Table7 regenerates the 5G projection: the LTE model is adapted to 5G
// NSA (HO x4.6) and 5G SA (HO x3.0, TAU removed), multi-hour traces are
// synthesized for all three, and the per-device breakdowns reported.
func Table7(l *Lab, w io.Writer) error {
	models, err := l.Models()
	if err != nil {
		return err
	}
	lte := models["ours"]
	nsa, err := fiveg.ToNSA(lte, fiveg.NSAHandoverFactor)
	if err != nil {
		return err
	}
	sa, err := fiveg.ToSA(lte, fiveg.SAHandoverFactor)
	if err != nil {
		return err
	}
	genOpt := core.GenOptions{
		NumUEs:    l.Cfg.Scenario1UEs,
		StartHour: 8,
		Duration:  12 * cp.Hour,
		Seed:      l.Cfg.Seed + 77,
		Workers:   l.Cfg.Workers,
	}
	traces := map[string]*core.ModelSet{"LTE": lte, "NSA": nsa, "SA": sa}
	shares := map[string][cp.NumDeviceTypes][cp.NumEventTypes]float64{}
	for name, ms := range traces {
		tr, err := core.Generate(ms, genOpt)
		if err != nil {
			return err
		}
		var s [cp.NumDeviceTypes][cp.NumEventTypes]float64
		for _, d := range cp.DeviceTypes {
			s[d], _ = eval.SimpleBreakdown(tr, d)
		}
		shares[name] = s
	}
	tbl := report.Table{
		Title: "Table 7 — projected 5G NSA/SA breakdowns (plus the LTE reference)",
		Header: []string{"Event (NSA/SA)", "P LTE", "P NSA", "P SA",
			"CC LTE", "CC NSA", "CC SA", "T LTE", "T NSA", "T SA"},
	}
	for _, e := range cp.EventTypes {
		name5g, _ := e.FiveGName()
		label := fmt.Sprintf("%s/%s", e, name5g)
		row := []string{label}
		for _, d := range cp.DeviceTypes {
			for _, net := range []string{"LTE", "NSA", "SA"} {
				row = append(row, report.Pct(shares[net][d][e]))
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// FiveGShares returns the HO shares per network mode for validation.
func FiveGShares(l *Lab) (lteHO, nsaHO, saHO float64, err error) {
	models, err := l.Models()
	if err != nil {
		return 0, 0, 0, err
	}
	lte := models["ours"]
	nsa, err := fiveg.ToNSA(lte, fiveg.NSAHandoverFactor)
	if err != nil {
		return 0, 0, 0, err
	}
	sa, err := fiveg.ToSA(lte, fiveg.SAHandoverFactor)
	if err != nil {
		return 0, 0, 0, err
	}
	genOpt := core.GenOptions{
		NumUEs: l.Cfg.Scenario1UEs, StartHour: 8, Duration: 4 * cp.Hour, Seed: l.Cfg.Seed + 78,
		Workers: l.Cfg.Workers,
	}
	hoShare := func(ms *core.ModelSet) (float64, error) {
		tr, err := core.Generate(ms, genOpt)
		if err != nil {
			return 0, err
		}
		if tr.Len() == 0 {
			return 0, fmt.Errorf("experiments: empty 5G trace")
		}
		return float64(tr.CountByType()[cp.Handover]) / float64(tr.Len()), nil
	}
	if lteHO, err = hoShare(lte); err != nil {
		return
	}
	if nsaHO, err = hoShare(nsa); err != nil {
		return
	}
	saHO, err = hoShare(sa)
	return
}
