package experiments

import (
	"fmt"
	"io"
	"math"

	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/report"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

// DiurnalFidelity validates what the paper's one-hour scenarios do not:
// the generator driven over a whole day, hour after hour (§7's "runs the
// per-hour two-level state machine one after another"), must reproduce
// the diurnal load curve. It synthesizes 24 hours from hour 0, compares
// hourly event volumes against a held-out world day, and reports the
// Pearson correlation of the two curves plus the per-hour relative
// errors.
func DiurnalFidelity(l *Lab, w io.Writer) error {
	models, err := l.Models()
	if err != nil {
		return err
	}
	ms := models["ours"]
	n := l.Cfg.Scenario1UEs
	gen, err := core.Generate(ms, core.GenOptions{
		NumUEs:    n,
		StartHour: 0,
		Duration:  cp.Day,
		Seed:      l.Cfg.Seed + 1313,
		Workers:   l.Cfg.Workers,
	})
	if err != nil {
		return err
	}
	real, err := world.Generate(world.Options{
		NumUEs:   n,
		Duration: cp.Day,
		Seed:     l.Cfg.Seed + 1414,
		Workers:  l.Cfg.Workers,
	})
	if err != nil {
		return err
	}

	realHourly := hourlyVolumes(real)
	genHourly := hourlyVolumes(gen)
	corr := pearson(realHourly[:], genHourly[:])

	tbl := report.Table{
		Title:  fmt.Sprintf("Diurnal fidelity — 24h generation from hour 0, %d UEs (hourly volume correlation %.3f)", n, corr),
		Header: []string{"Hour", "Real", "Generated", "Rel. error"},
	}
	for h := 0; h < 24; h++ {
		relErr := math.NaN()
		if realHourly[h] > 0 {
			relErr = (genHourly[h] - realHourly[h]) / realHourly[h]
		}
		tbl.AddRow(fmt.Sprintf("%02d", h),
			fmt.Sprintf("%.0f", realHourly[h]),
			fmt.Sprintf("%.0f", genHourly[h]),
			report.SignedPct(relErr))
	}
	return tbl.Render(w)
}

// DiurnalCorrelation returns just the hourly-volume correlation for
// programmatic checks.
func DiurnalCorrelation(l *Lab) (float64, error) {
	models, err := l.Models()
	if err != nil {
		return 0, err
	}
	ms := models["ours"]
	n := l.Cfg.Scenario1UEs
	gen, err := core.Generate(ms, core.GenOptions{
		NumUEs: n, StartHour: 0, Duration: cp.Day, Seed: l.Cfg.Seed + 1313,
		Workers: l.Cfg.Workers,
	})
	if err != nil {
		return 0, err
	}
	real, err := world.Generate(world.Options{NumUEs: n, Duration: cp.Day, Seed: l.Cfg.Seed + 1414, Workers: l.Cfg.Workers})
	if err != nil {
		return 0, err
	}
	r := hourlyVolumes(real)
	g := hourlyVolumes(gen)
	return pearson(r[:], g[:]), nil
}

// hourlyVolumes tallies a trace's events per hour-of-day.
func hourlyVolumes(tr *trace.Trace) [24]float64 {
	var out [24]float64
	for _, e := range tr.Events {
		out[e.T.HourOfDay()]++
	}
	return out
}

// pearson computes the correlation coefficient of two equal-length
// series.
func pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return math.NaN()
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var saa, sbb, sab float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		saa += da * da
		sbb += db * db
		sab += da * db
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}
