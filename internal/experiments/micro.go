package experiments

import (
	"fmt"
	"io"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/report"
)

// Table5 regenerates the microscopic comparison: maximum y-distance
// between the CDFs of per-UE SRV_REQ/S1_CONN_REL counts and of the
// CONNECTED/IDLE sojourns, for V2 vs Ours, in both scenarios.
func Table5(l *Lab, w io.Writer) error {
	tbl := report.Table{
		Title:  "Table 5 — max y-distance between synthesized and real CDFs (V2 vs Ours)",
		Header: []string{"Scenario", "Device", "Row", "V2", "Ours"},
	}
	for _, scenario := range []int{1, 2} {
		realTr, err := l.RealScenario(scenario)
		if err != nil {
			return err
		}
		for _, d := range cp.DeviceTypes {
			v2Tr, err := l.Generated("v2", scenario)
			if err != nil {
				return err
			}
			oursTr, err := l.Generated("ours", scenario)
			if err != nil {
				return err
			}
			v2 := eval.ComputeMicroDistances(realTr, v2Tr, d)
			ours := eval.ComputeMicroDistances(realTr, oursTr, d)
			sc := fmt.Sprintf("%d", scenario)
			tbl.AddRow(sc, d.String(), "SRV_REQ", report.Pct(v2.SrvReqPerUE), report.Pct(ours.SrvReqPerUE))
			tbl.AddRow(sc, d.String(), "S1_CONN_REL", report.Pct(v2.S1RelPerUE), report.Pct(ours.S1RelPerUE))
			tbl.AddRow(sc, d.String(), "CONNECTED", report.Pct(v2.Connected), report.Pct(ours.Connected))
			tbl.AddRow(sc, d.String(), "IDLE", report.Pct(v2.Idle), report.Pct(ours.Idle))
		}
	}
	return tbl.Render(w)
}

// ImprovementFactors reproduces the headline ratios of the paper's
// introduction ("our method reduces the maximum y-distance ... by over
// 7.74x/7.46x for SRV_REQ/S1_CONN_REL events, and ... 4.77x/3.25x" for
// the state sojourns): for each comparison method, the factor by which
// Ours shrinks each Table 5 metric.
func ImprovementFactors(l *Lab, scenario int, d cp.DeviceType) (map[string]eval.MicroDistances, error) {
	ours, err := MicroDistancesFor(l, scenario, "ours", d)
	if err != nil {
		return nil, err
	}
	ratio := func(other, ours float64) float64 {
		if ours <= 0 {
			return math.Inf(1)
		}
		return other / ours
	}
	out := make(map[string]eval.MicroDistances, 3)
	for _, m := range []string{"base", "v1", "v2"} {
		md, err := MicroDistancesFor(l, scenario, m, d)
		if err != nil {
			return nil, err
		}
		out[m] = eval.MicroDistances{
			SrvReqPerUE: ratio(md.SrvReqPerUE, ours.SrvReqPerUE),
			S1RelPerUE:  ratio(md.S1RelPerUE, ours.S1RelPerUE),
			Connected:   ratio(md.Connected, ours.Connected),
			Idle:        ratio(md.Idle, ours.Idle),
		}
	}
	return out, nil
}

// ImprovementTable renders the improvement factors for every device type
// in scenario 2.
func ImprovementTable(l *Lab, w io.Writer) error {
	tbl := report.Table{
		Title:  "Improvement factors — how much Ours shrinks each max y-distance vs the other methods (scenario 2)",
		Header: []string{"Device", "Vs", "SRV_REQ/UE", "S1_CONN_REL/UE", "CONNECTED", "IDLE"},
	}
	for _, d := range cp.DeviceTypes {
		factors, err := ImprovementFactors(l, 2, d)
		if err != nil {
			return err
		}
		for _, m := range []string{"base", "v1", "v2"} {
			f := factors[m]
			tbl.AddRow(d.String(), m,
				fmt.Sprintf("%.2fx", f.SrvReqPerUE),
				fmt.Sprintf("%.2fx", f.S1RelPerUE),
				fmt.Sprintf("%.2fx", f.Connected),
				fmt.Sprintf("%.2fx", f.Idle))
		}
	}
	return tbl.Render(w)
}

// MicroDistancesFor exposes the Table 5 cells for one scenario and
// device, for programmatic checks.
func MicroDistancesFor(l *Lab, scenario int, method string, d cp.DeviceType) (eval.MicroDistances, error) {
	realTr, err := l.RealScenario(scenario)
	if err != nil {
		return eval.MicroDistances{}, err
	}
	gen, err := l.Generated(method, scenario)
	if err != nil {
		return eval.MicroDistances{}, err
	}
	return eval.ComputeMicroDistances(realTr, gen, d), nil
}

// Table6 regenerates the inactive/active UE split of the per-UE count
// distances for connected cars and tablets ("our proposed traffic model
// only mis-predicts the number of events by 1 ... for inactive UEs").
func Table6(l *Lab, w io.Writer) error {
	tbl := report.Table{
		Title:  "Table 6 — max y-distance for inactive (<=2 events) / active UE groups, method: ours",
		Header: []string{"Scenario", "Row", "CC inact", "CC act", "T inact", "T act"},
	}
	for _, scenario := range []int{1, 2} {
		realTr, err := l.RealScenario(scenario)
		if err != nil {
			return err
		}
		oursTr, err := l.Generated("ours", scenario)
		if err != nil {
			return err
		}
		for _, e := range []cp.EventType{cp.ServiceRequest, cp.S1ConnRelease} {
			ccIn, ccAct := eval.ActivitySplit(realTr, oursTr, cp.ConnectedCar, e)
			tIn, tAct := eval.ActivitySplit(realTr, oursTr, cp.Tablet, e)
			tbl.AddRow(fmt.Sprintf("%d", scenario), e.String(),
				report.Pct(ccIn), report.Pct(ccAct), report.Pct(tIn), report.Pct(tAct))
		}
	}
	return tbl.Render(w)
}

// Figure7 exports the per-UE event-count CDFs (real vs base vs ours) for
// every device type in scenario 2, as CSV series.
func Figure7(l *Lab, w io.Writer) error {
	realTr, err := l.RealScenario(2)
	if err != nil {
		return err
	}
	baseTr, err := l.Generated("base", 2)
	if err != nil {
		return err
	}
	oursTr, err := l.Generated("ours", 2)
	if err != nil {
		return err
	}
	for _, d := range cp.DeviceTypes {
		for _, e := range []cp.EventType{cp.ServiceRequest, cp.S1ConnRelease} {
			fmt.Fprintf(w, "# Figure 7 — CDF of %s per UE, %s, scenario 2\n", e, d)
			r := eval.ComputeCDF(eval.EventsPerUE(realTr, d, e))
			b := eval.ComputeCDF(eval.EventsPerUE(baseTr, d, e))
			o := eval.ComputeCDF(eval.EventsPerUE(oursTr, d, e))
			if err := report.Series(w,
				[]string{"x_real", "F_real", "x_base", "F_base", "x_ours", "F_ours"},
				r.X, r.F, b.X, b.F, o.X, o.F); err != nil {
				return err
			}
		}
	}
	return nil
}
