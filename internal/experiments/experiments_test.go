package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
)

// testLab returns a shared, small-scale lab. Sharing amortizes the world
// generation and the four model fits across all tests in the package.
var sharedLab = NewLab(Config{
	TrainUEs:     500,
	Days:         1,
	Scenario1UEs: 500,
	Scenario2UEs: 2500,
	BusyHour:     18,
	ThetaN:       60,
	Seed:         7,
})

func TestTable1Renders(t *testing.T) {
	var sb strings.Builder
	if err := Table1(sharedLab, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "SRV_REQ", "HO", "TAU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestBreakdownErrorsOrdering(t *testing.T) {
	// The reproduction's headline: ours/v2 beat v1 beat base.
	errs, err := BreakdownErrors(sharedLab, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range cp.DeviceTypes {
		base, v1, v2, ours := errs["base"][d], errs["v1"][d], errs["v2"][d], errs["ours"][d]
		flatWorst := math.Min(base, v1)
		if !(ours < flatWorst && v2 < flatWorst) {
			t.Errorf("%v: two-level methods (ours %.3f, v2 %.3f) must beat the flat methods (base %.3f, v1 %.3f)",
				d, ours, v2, base, v1)
		}
		if ours > 0.15 {
			t.Errorf("%v: ours error %.3f too large", d, ours)
		}
		if base < 2*ours || base < 0.08 {
			t.Errorf("%v: base error %.3f suspiciously small vs ours %.3f — free processes broken?", d, base, ours)
		}
	}
}

func TestBreakdownTableRenders(t *testing.T) {
	var sb strings.Builder
	if err := BreakdownTable(sharedLab, &sb, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 11") {
		t.Fatal("missing table 11 title")
	}
	sb.Reset()
	if err := BreakdownTable(sharedLab, &sb, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 4") || !strings.Contains(sb.String(), "HO (IDLE)") {
		t.Fatal("table 4 malformed")
	}
}

func TestMicroDistancesOursBeatsV2(t *testing.T) {
	// Table 5's shape: ours <= v2 on most rows; assert on the dominant
	// phone rows with slack for small-scale noise.
	v2, err := MicroDistancesFor(sharedLab, 1, "v2", cp.Phone)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := MicroDistancesFor(sharedLab, 1, "ours", cp.Phone)
	if err != nil {
		t.Fatal(err)
	}
	if ours.SrvReqPerUE > v2.SrvReqPerUE+0.05 {
		t.Errorf("SRV_REQ/UE: ours %.3f vs v2 %.3f", ours.SrvReqPerUE, v2.SrvReqPerUE)
	}
	if ours.Connected > v2.Connected+0.05 {
		t.Errorf("CONNECTED sojourn: ours %.3f vs v2 %.3f", ours.Connected, v2.Connected)
	}
	if ours.Idle > v2.Idle+0.05 {
		t.Errorf("IDLE sojourn: ours %.3f vs v2 %.3f", ours.Idle, v2.Idle)
	}
}

func TestTables5And6Render(t *testing.T) {
	if err := Table5(sharedLab, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := Table6(sharedLab, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestFigure7Renders(t *testing.T) {
	var sb strings.Builder
	if err := Figure7(sharedLab, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "F_ours") {
		t.Fatal("figure 7 series missing")
	}
}

func TestHOIdleLeakSeparatesMethods(t *testing.T) {
	leak, err := HOIdleLeak(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if leak["ours"] != 0 || leak["v2"] != 0 {
		t.Fatalf("two-level methods leak HO in IDLE: %v", leak)
	}
	if leak["base"] <= 0 || leak["v1"] <= 0 {
		t.Fatalf("flat methods should leak HO in IDLE: %v", leak)
	}
}

func TestDiurnalSwing(t *testing.T) {
	swing, err := DiurnalSwing(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range cp.DeviceTypes {
		if swing[d] < 2 {
			t.Errorf("%v: diurnal swing %.2f < 2", d, swing[d])
		}
	}
	// Cars swing hardest (paper: up to 1309x).
	if swing[cp.ConnectedCar] <= swing[cp.Tablet] {
		t.Errorf("cars (%.1f) should swing more than tablets (%.1f)",
			swing[cp.ConnectedCar], swing[cp.Tablet])
	}
}

func TestFigure3GapsPositive(t *testing.T) {
	gaps, err := Figure3Gaps(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) == 0 {
		t.Fatal("no gaps")
	}
	for q, g := range gaps {
		if math.IsNaN(g) {
			t.Errorf("%s: NaN gap", q)
			continue
		}
		if g < 0.05 {
			t.Errorf("%s: log gap %.3f — world not burstier than Poisson", q, g)
		}
	}
}

func TestFigure4ObservedTailsExceedFit(t *testing.T) {
	ratios, err := Figure4Ranges(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	conn := ratios[cp.StateConnected.String()]
	if conn <= 1.5 {
		t.Errorf("CONNECTED observed/fitted max ratio %.2f, want > 1.5", conn)
	}
}

func TestPoissonPassRateLow(t *testing.T) {
	r, err := PoissonPassRate(sharedLab, eval.Quantity{Kind: eval.QInterArrival, Event: cp.ServiceRequest})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r) {
		t.Skip("no testable units at this scale")
	}
	// At the full default scale this sits near 0 (see EXPERIMENTS.md);
	// at this package's tiny test scale the clusters are small and
	// homogeneous enough that K-S keeps some blind spots, so the gate
	// only catches gross regressions.
	if r > 0.35 {
		t.Errorf("clustered Poisson pass rate for SRV_REQ = %.2f, want near 0", r)
	}
}

func TestClusterCountsPositive(t *testing.T) {
	n, err := ClusterCounts(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if n < 24*3 {
		t.Fatalf("only %d models", n)
	}
	if err := Clusters(sharedLab, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestFiveGShares(t *testing.T) {
	lte, nsa, sa, err := FiveGShares(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if !(nsa > sa && sa > lte) {
		t.Fatalf("HO shares: LTE %.4f, NSA %.4f, SA %.4f — want NSA > SA > LTE", lte, nsa, sa)
	}
}

func TestDiurnalCorrelationHigh(t *testing.T) {
	corr, err := DiurnalCorrelation(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	// 0.987 at the default scale (EXPERIMENTS.md); the gate is looser at
	// this package's single-training-day test scale.
	if math.IsNaN(corr) || corr < 0.8 {
		t.Fatalf("hourly volume correlation = %.3f, want > 0.8", corr)
	}
}

func TestRenderAllRemainingExperiments(t *testing.T) {
	for name, fn := range map[string]func(*Lab, io.Writer) error{
		"table7":    Table7,
		"table8":    Table8,
		"table9":    Table9,
		"table10":   Table10,
		"fig2":      Figure2,
		"fig3":      Figure3,
		"fig4":      Figure4,
		"abl-theta": AblationClusterThresholds,
		"abl-res":   AblationTableResolution,
		"abl-flat":  AblationTwoLevelVsFlat,
		"growth":    GrowthProjection,
		"diurnal":   DiurnalFidelity,
		"improve":   ImprovementTable,
	} {
		if err := fn(sharedLab, io.Discard); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
