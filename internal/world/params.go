// Package world synthesizes the "real world": a carrier-scale LTE
// control-plane trace generated from first-principles UE behavior, which
// substitutes for the proprietary operator trace the paper was fitted on
// (see DESIGN.md, "Data substitution").
//
// Every UE runs a behavioral process — application sessions, mobility,
// power cycles — whose mechanics are deliberately different from the
// fitted model's semi-Markov structure:
//
//   - Session arrivals are Markov-modulated (bursty ON/OFF phases) with a
//     diurnal rate envelope and a heavy-tailed per-UE activity level, so
//     inter-arrival times are strongly non-Poisson (paper §4).
//   - Session and idle durations are lognormal: heavy upper tails that
//     exponential fits cannot capture (paper Fig. 4).
//   - Handovers fire while CONNECTED at a mobility-driven rate; tracking
//     area crossings follow a fraction of handovers (TAU in CONNECTED);
//     the periodic TAU timer fires in IDLE and is released by an
//     S1_CONN_REL, exactly the dependence structure of Fig. 5.
//   - Power cycles produce rare ATCH/DTCH pairs.
//
// The emitted traces are protocol-conformant by construction (tests
// replay them through the two-level machine and assert zero violations).
package world

import "cptraffic/internal/cp"

// params is the behavioral parameterization of one device type. Rates
// are per second at diurnal envelope 1.0 for a UE with activity
// multiplier 1.0; durations are lognormal (mu, sigma) in seconds.
type params struct {
	// diurnal scales the session arrival rate by hour-of-day.
	diurnal [24]float64
	// weekend scales activity on days 5 and 6 of each week (the trace
	// epoch is a Monday midnight): commuting devices quieten, leisure
	// devices do not.
	weekend float64
	// mobility scales the handover rate by hour-of-day (cars drive at
	// commute hours; phones move midday).
	mobility [24]float64

	sessRate float64 // session arrivals per second (IDLE, envelope 1)

	// Follow-on sessions ("click trains"): after a session ends, with
	// probability followP the next one starts after a short lognormal
	// think time rather than by the background arrival process. This
	// makes per-UE inter-session gaps bimodal — visibly non-exponential
	// even for a single UE, as real user traffic is (paper §4).
	followP               float64
	followMu, followSigma float64

	sessMu, sessSigma float64 // CONNECTED duration (incl. ~10 s inactivity timer)
	// A small fraction of sessions draw a Pareto duration instead:
	// long-lived connections (video calls, tethering, firmware pulls)
	// give the CONNECTED sojourn a genuinely heavy tail.
	paretoP, paretoXm, paretoAlpha float64

	actSigma float64 // per-UE lognormal activity spread
	mobSigma float64 // per-UE lognormal mobility spread

	// Bursty (Markov-modulated) session arrivals: ON phases with hiFactor
	// times the base rate alternate with OFF phases at loFactor.
	burstOnMean, burstOffMean float64 // seconds
	hiFactor, loFactor        float64

	hoRate   float64 // handovers per second while CONNECTED (envelope 1, mobility mult 1)
	tauPerHO float64 // probability a handover crosses a tracking area (TAU follows)

	idleTauMu, idleTauSigma float64 // periodic-TAU timer in IDLE
	tauRelMu, tauRelSigma   float64 // delay of the TAU-releasing S1_CONN_REL

	offRate               float64 // power-off events per second while registered
	offDurMu, offDurSigma float64 // power-off duration

	pStartOff float64 // probability the UE starts powered off
}

// deviceParams holds the calibrated behavior of the three device types.
// Calibration targets the event-share breakdown of the paper's Table 1
// (phones 0.1/0.2/45.5/47.5/3.8/2.9, cars 0.9/0.9/38.9/45.2/6.6/7.4,
// tablets 1.2/1.1/43.9/47.7/2.1/4.0) and the diurnal swings of Fig. 2.
var deviceParams = [cp.NumDeviceTypes]params{
	cp.Phone: {
		diurnal: [24]float64{
			0.25, 0.15, 0.10, 0.08, 0.08, 0.12, 0.30, 0.55,
			0.75, 0.85, 0.90, 0.95, 1.00, 0.95, 0.90, 0.90,
			0.95, 1.00, 1.00, 0.95, 0.85, 0.70, 0.50, 0.35,
		},
		mobility: [24]float64{
			0.05, 0.03, 0.02, 0.02, 0.02, 0.05, 0.30, 0.80,
			0.90, 0.60, 0.50, 0.55, 0.60, 0.55, 0.50, 0.55,
			0.70, 0.95, 1.00, 0.70, 0.45, 0.30, 0.15, 0.08,
		},
		weekend:      0.90,
		sessRate:     14.0 / 3600, // background arrivals; follow-ons add ~60%
		followP:      0.38,
		followMu:     2.6, // think time median ~13 s
		followSigma:  0.9,
		sessMu:       3.0, // median ~20 s connected
		sessSigma:    1.3,
		paretoP:      0.03,
		paretoXm:     60,
		paretoAlpha:  1.4,
		actSigma:     1.1,
		mobSigma:     1.2,
		burstOnMean:  600,
		burstOffMean: 2400,
		hiFactor:     3.2,
		loFactor:     0.25,
		hoRate:       4.0 / 3600,
		tauPerHO:     0.18,
		idleTauMu:    8.2, // median ~60 min
		idleTauSigma: 0.35,
		tauRelMu:     0.0,
		tauRelSigma:  0.5,
		offRate:      0.035 / 3600,
		offDurMu:     8.0, // median ~50 min off
		offDurSigma:  0.8,
		pStartOff:    0.02,
	},
	cp.ConnectedCar: {
		diurnal: [24]float64{
			0.02, 0.01, 0.01, 0.01, 0.02, 0.08, 0.35, 0.90,
			1.00, 0.70, 0.50, 0.50, 0.55, 0.55, 0.50, 0.60,
			0.85, 1.00, 0.90, 0.60, 0.35, 0.15, 0.08, 0.04,
		},
		mobility: [24]float64{
			0.02, 0.01, 0.01, 0.01, 0.02, 0.10, 0.45, 1.00,
			0.95, 0.55, 0.40, 0.40, 0.50, 0.50, 0.45, 0.55,
			0.90, 1.00, 0.85, 0.50, 0.25, 0.10, 0.05, 0.03,
		},
		weekend:      0.55, // far less commuting
		sessRate:     12.0 / 3600,
		followP:      0.28,
		followMu:     2.3,
		followSigma:  0.7,
		sessMu:       3.2, // telemetry bursts, median ~25 s
		sessSigma:    1.1,
		paretoP:      0.015, // rare long diagnostics sessions
		paretoXm:     90,
		paretoAlpha:  1.6,
		actSigma:     0.9,
		mobSigma:     1.0,
		burstOnMean:  1500, // a drive
		burstOffMean: 5400, // parked
		hiFactor:     4.0,
		loFactor:     0.08,
		hoRate:       28.0 / 3600, // driving: frequent cell changes
		tauPerHO:     0.22,
		idleTauMu:    7.6, // median ~33 min (moving cars re-TAU often)
		idleTauSigma: 0.45,
		tauRelMu:     0.0,
		tauRelSigma:  0.5,
		offRate:      0.16 / 3600, // ignition off/on
		offDurMu:     8.6,
		offDurSigma:  1.0,
		pStartOff:    0.10,
	},
	cp.Tablet: {
		diurnal: [24]float64{
			0.30, 0.20, 0.12, 0.10, 0.10, 0.12, 0.20, 0.35,
			0.50, 0.60, 0.65, 0.70, 0.75, 0.70, 0.65, 0.65,
			0.70, 0.85, 1.00, 1.00, 0.95, 0.80, 0.60, 0.45,
		},
		mobility: [24]float64{
			0.02, 0.01, 0.01, 0.01, 0.01, 0.02, 0.05, 0.15,
			0.20, 0.18, 0.15, 0.15, 0.18, 0.18, 0.15, 0.15,
			0.18, 0.25, 0.30, 0.20, 0.12, 0.08, 0.05, 0.03,
		},
		weekend:      1.15, // more home/leisure use
		sessRate:     12.0 / 3600,
		followP:      0.35,
		followMu:     2.8,
		followSigma:  0.9,
		sessMu:       3.4, // longer media sessions
		sessSigma:    1.4,
		paretoP:      0.05, // streaming: tablets hold connections longest
		paretoXm:     120,
		paretoAlpha:  1.3,
		actSigma:     1.3, // tablets: many nearly-idle, some heavy
		mobSigma:     1.0,
		burstOnMean:  1800,
		burstOffMean: 7200,
		hiFactor:     3.5,
		loFactor:     0.10,
		hoRate:       2.5 / 3600,
		tauPerHO:     0.20,
		idleTauMu:    8.1,
		idleTauSigma: 0.35,
		tauRelMu:     0.0,
		tauRelSigma:  0.5,
		offRate:      0.18 / 3600,
		offDurMu:     8.8,
		offDurSigma:  0.9,
		pStartOff:    0.08,
	},
}

// DefaultMix is the training population's device-type composition,
// matching the paper's sample (23,388 phones, 9,308 connected cars,
// 4,629 tablets out of 37,325 UEs).
var DefaultMix = [cp.NumDeviceTypes]float64{
	cp.Phone:        0.627,
	cp.ConnectedCar: 0.249,
	cp.Tablet:       0.124,
}
