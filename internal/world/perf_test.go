package world

import (
	"bytes"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// TestWorldGenerationEquivalence pins the simulator's byte-level
// determinism across the generation matrix: for each seed, the
// in-memory trace is identical for every worker count, and the
// streaming Source path renders to the same text bytes.
func TestWorldGenerationEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		var ref []byte
		for _, workers := range []int{1, 8} {
			opt := Options{NumUEs: 120, Duration: 5 * cp.Hour, Seed: seed, Workers: workers}
			tr, err := Generate(opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := trace.WriteTrace(&buf, tr); err != nil {
				t.Fatal(err)
			}
			b := buf.Bytes()
			if ref == nil {
				ref = b
			} else if !bytes.Equal(ref, b) {
				t.Fatalf("seed=%d workers=%d: worker count changed the trace bytes", seed, workers)
			}

			src, err := NewSource(opt)
			if err != nil {
				t.Fatal(err)
			}
			var sbuf bytes.Buffer
			tw := trace.NewTextWriter(&sbuf)
			if err := trace.Copy(tw, src); err != nil {
				t.Fatal(err)
			}
			if err := tw.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, sbuf.Bytes()) {
				t.Fatalf("seed=%d workers=%d: streamed source differs from in-memory trace", seed, workers)
			}
		}
	}
}

// TestUESimSteadyStateAllocs pins the simulator's hot loop at zero
// steady-state allocations (the queue ring reuses its backing array).
// Skipped under the race detector, which changes allocation behavior.
func TestUESimSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	opt := Options{NumUEs: 1, Duration: 365 * cp.Day, Seed: 5}
	mix, err := resolveMix(opt)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := newUESim(opt, mix, stats.NewRNG(opt.Seed), 0)
	const warmup, runs = 2000, 4000
	for i := 0; i < warmup; i++ {
		if _, ok := sim.Next(); !ok {
			t.Fatalf("simulator exhausted after %d warm-up events", i)
		}
	}
	alive := true
	avg := testing.AllocsPerRun(runs, func() {
		if _, ok := sim.Next(); !ok {
			alive = false
		}
	})
	if !alive {
		t.Fatal("simulator exhausted during measurement")
	}
	if avg > 0 {
		t.Errorf("steady-state Next allocates %.4f allocs/event, want 0", avg)
	}
}
