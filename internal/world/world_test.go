package world

import (
	"math"
	"reflect"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

func genWorld(t *testing.T, n int, dur cp.Millis, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := Generate(Options{NumUEs: n, Duration: dur, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateBasics(t *testing.T) {
	tr := genWorld(t, 200, 6*cp.Hour, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.Sorted() {
		t.Fatal("world trace not sorted")
	}
	if tr.NumUEs() != 200 {
		t.Fatalf("NumUEs = %d", tr.NumUEs())
	}
	if tr.Len() == 0 {
		t.Fatal("empty world")
	}
	lo, hi := tr.Span()
	if lo < 0 || hi > 6*cp.Hour {
		t.Fatalf("span [%d,%d)", lo, hi)
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	a, err := Generate(Options{NumUEs: 100, Duration: 2 * cp.Hour, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Options{NumUEs: 100, Duration: 2 * cp.Hour, Seed: 3, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) || !reflect.DeepEqual(a.Device, b.Device) {
		t.Fatal("world depends on worker count")
	}
}

func TestWorldIsProtocolConformant(t *testing.T) {
	tr := genWorld(t, 300, 12*cp.Hour, 4)
	m := sm.LTE2Level()
	violations := 0
	for _, evs := range tr.PerUE() {
		if len(evs) == 0 {
			continue
		}
		res := sm.Replay(m, sm.InferInitial(m, evs), evs)
		violations += res.Violations
	}
	if violations != 0 {
		t.Fatalf("world trace has %d protocol violations", violations)
	}
}

func TestWorldHasNoHOInIdle(t *testing.T) {
	tr := genWorld(t, 300, 12*cp.Hour, 5)
	for _, evs := range tr.PerUE() {
		if len(evs) == 0 {
			continue
		}
		b := sm.MacroBreakdown(evs, sm.InferMacroInitial(evs))
		if b[cp.Handover][cp.StateIdle] != 0 {
			t.Fatal("world produced HO in IDLE")
		}
	}
}

func TestDeviceMixApproximatesDefault(t *testing.T) {
	tr := genWorld(t, 5000, cp.Hour, 6)
	var counts [cp.NumDeviceTypes]int
	for _, d := range tr.Device {
		counts[d]++
	}
	for _, d := range cp.DeviceTypes {
		share := float64(counts[d]) / 5000
		if math.Abs(share-DefaultMix[d]) > 0.03 {
			t.Errorf("%v share = %.3f, want ~%.3f", d, share, DefaultMix[d])
		}
	}
}

// TestBreakdownMatchesTable1Shape is the calibration gate: the world's
// event-share breakdown per device type must land near the paper's
// Table 1. Tolerances are loose (the goal is shape, not digits) but tight
// enough that SRV_REQ/S1_CONN_REL dominate, cars out-handover phones,
// etc.
func TestBreakdownMatchesTable1Shape(t *testing.T) {
	tr := genWorld(t, 1500, cp.Day, 7)
	targets := map[cp.DeviceType][cp.NumEventTypes]float64{
		cp.Phone:        {0.001, 0.002, 0.455, 0.475, 0.038, 0.029},
		cp.ConnectedCar: {0.009, 0.009, 0.389, 0.452, 0.066, 0.074},
		cp.Tablet:       {0.012, 0.011, 0.439, 0.477, 0.021, 0.040},
	}
	for _, d := range cp.DeviceTypes {
		sub := tr.FilterDevice(d)
		c := sub.CountByType()
		total := sub.Len()
		if total == 0 {
			t.Fatalf("%v: no events", d)
		}
		for _, e := range cp.EventTypes {
			share := float64(c[e]) / float64(total)
			want := targets[d][e]
			// Relative tolerance 60% plus 1.5pp absolute slack.
			if math.Abs(share-want) > 0.6*want+0.015 {
				t.Errorf("%v %v share = %.4f, want ~%.4f", d, e, share, want)
			}
		}
		// Structural relations the evaluation relies on.
		if c[cp.S1ConnRelease] <= c[cp.ServiceRequest] {
			t.Errorf("%v: S1_CONN_REL (%d) should exceed SRV_REQ (%d) via idle TAU releases",
				d, c[cp.S1ConnRelease], c[cp.ServiceRequest])
		}
	}
	// Cross-device relations: cars have the largest HO and TAU shares.
	share := func(d cp.DeviceType, e cp.EventType) float64 {
		sub := tr.FilterDevice(d)
		return float64(sub.CountByType()[e]) / float64(sub.Len())
	}
	if !(share(cp.ConnectedCar, cp.Handover) > share(cp.Phone, cp.Handover) &&
		share(cp.Phone, cp.Handover) > share(cp.Tablet, cp.Handover)) {
		t.Errorf("HO ordering wrong: car %.4f phone %.4f tablet %.4f",
			share(cp.ConnectedCar, cp.Handover), share(cp.Phone, cp.Handover), share(cp.Tablet, cp.Handover))
	}
	if share(cp.ConnectedCar, cp.TrackingAreaUpdate) <= share(cp.Phone, cp.TrackingAreaUpdate) {
		t.Errorf("TAU ordering wrong: car %.4f <= phone %.4f",
			share(cp.ConnectedCar, cp.TrackingAreaUpdate), share(cp.Phone, cp.TrackingAreaUpdate))
	}
}

func TestDiurnalPattern(t *testing.T) {
	tr := genWorld(t, 800, cp.Day, 8)
	// Peak-hour volume must exceed trough-hour volume by a large factor
	// for every device type (Fig. 2: 2.3x - 1300x).
	for _, d := range cp.DeviceTypes {
		sub := tr.FilterDevice(d)
		var perHour [24]int
		for _, e := range sub.Events {
			perHour[e.T.HourOfDay()]++
		}
		peak, trough := 0, 1<<60
		for _, c := range perHour {
			if c > peak {
				peak = c
			}
			if c < trough {
				trough = c
			}
		}
		if trough == 0 {
			trough = 1
		}
		if ratio := float64(peak) / float64(trough); ratio < 2.2 {
			t.Errorf("%v peak/trough = %.2f, want > 2.2", d, ratio)
		}
	}
}

func TestPerUEDiversity(t *testing.T) {
	tr := genWorld(t, 800, cp.Day, 9)
	// Event counts per UE must be highly skewed (heavy-tailed activity).
	per := tr.PerUE()
	var counts []float64
	for _, evs := range per {
		counts = append(counts, float64(len(evs)))
	}
	var max, sum float64
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	mean := sum / float64(len(counts))
	// Heavy-tailed activity, tempered by connection-time saturation.
	if max < 3*mean {
		t.Errorf("per-UE counts not skewed: max %.0f vs mean %.1f", max, mean)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Generate(Options{NumUEs: 0, Duration: cp.Hour}); err == nil {
		t.Fatal("NumUEs=0 accepted")
	}
	if _, err := Generate(Options{NumUEs: 1, Duration: 0}); err == nil {
		t.Fatal("Duration=0 accepted")
	}
	if _, err := Generate(Options{NumUEs: 1, Duration: 1, Mix: []float64{1}}); err == nil {
		t.Fatal("short mix accepted")
	}
	if _, err := Generate(Options{NumUEs: 1, Duration: 1, Mix: []float64{0, 0, 0}}); err == nil {
		t.Fatal("zero mix accepted")
	}
	if _, err := Generate(Options{NumUEs: 1, Duration: 1, Mix: []float64{-1, 2, 0}}); err == nil {
		t.Fatal("negative mix accepted")
	}
}

func TestWeekendSeasonality(t *testing.T) {
	// Compare a weekday (day 2, Wednesday) with a weekend day (day 5,
	// Saturday) at the same hour for connected cars, whose weekend
	// factor is strongest.
	weekday, err := Generate(Options{
		NumUEs: 400, Duration: 3 * cp.Hour, Offset: 2*cp.Day + 8*cp.Hour,
		Seed: 13, Mix: []float64{0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	weekend, err := Generate(Options{
		NumUEs: 400, Duration: 3 * cp.Hour, Offset: 5*cp.Day + 8*cp.Hour,
		Seed: 13, Mix: []float64{0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if weekend.Len() >= weekday.Len() {
		t.Fatalf("car weekend volume (%d) should be below weekday (%d)",
			weekend.Len(), weekday.Len())
	}
}

func TestOffsetWarmStart(t *testing.T) {
	tr, err := Generate(Options{NumUEs: 300, Duration: cp.Hour, Offset: 18 * cp.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr.Span()
	if lo < 18*cp.Hour || hi > 19*cp.Hour {
		t.Fatalf("span [%d,%d) outside the warm-started hour", lo, hi)
	}
	if tr.Len() == 0 {
		t.Fatal("no events in warm-started hour")
	}
	// The warm-started busy hour must be far busier than the same
	// population's midnight-started hour 0 (diurnal phase respected).
	night, err := Generate(Options{NumUEs: 300, Duration: cp.Hour, Offset: 3 * cp.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 2*night.Len() {
		t.Fatalf("busy hour (%d) not busier than 3am (%d)", tr.Len(), night.Len())
	}
	if _, err := Generate(Options{NumUEs: 1, Duration: 1, Offset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestCustomMix(t *testing.T) {
	tr, err := Generate(Options{NumUEs: 100, Duration: cp.Hour, Seed: 1, Mix: []float64{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tr.Device {
		if d != cp.ConnectedCar {
			t.Fatal("mix override ignored")
		}
	}
}

// TestSourceMatchesGenerate: the streaming source must reproduce
// Generate exactly — same registrations, same events, same order — and
// be re-iterable.
func TestSourceMatchesGenerate(t *testing.T) {
	opt := Options{NumUEs: 150, Duration: 5 * cp.Hour, Seed: 21}
	batch, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(opt)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := trace.Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Device, batch.Device) {
			t.Fatalf("pass %d: device registrations differ", pass)
		}
		if !reflect.DeepEqual(got.Events, batch.Events) {
			t.Fatalf("pass %d: collected %d events, batch %d; contents differ",
				pass, len(got.Events), len(batch.Events))
		}
	}
}

func TestSourceWithOffsetAndMix(t *testing.T) {
	opt := Options{NumUEs: 60, Duration: 2 * cp.Hour, Offset: 30 * cp.Hour,
		Seed: 22, Mix: []float64{1, 0, 0}}
	batch, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Device, batch.Device) {
		t.Fatal("device registrations differ")
	}
	if !reflect.DeepEqual(got.Events, batch.Events) {
		t.Fatal("events differ")
	}
	for _, d := range got.Device {
		if d != cp.Phone {
			t.Fatalf("mix override ignored: got %v", d)
		}
	}
}

func TestNewSourceValidates(t *testing.T) {
	if _, err := NewSource(Options{NumUEs: 0, Duration: cp.Hour}); err == nil {
		t.Fatal("NumUEs=0 accepted")
	}
	if _, err := NewSource(Options{NumUEs: 5, Duration: 0}); err == nil {
		t.Fatal("Duration=0 accepted")
	}
	if _, err := NewSource(Options{NumUEs: 5, Duration: cp.Hour, Offset: -1}); err == nil {
		t.Fatal("negative Offset accepted")
	}
	if _, err := NewSource(Options{NumUEs: 5, Duration: cp.Hour, Mix: []float64{1}}); err == nil {
		t.Fatal("short Mix accepted")
	}
}

func TestScaleOneIsIdentity(t *testing.T) {
	// An explicit scale of exactly 1.0 multiplies every rate by an IEEE
	// no-op, so the trace must be byte-identical to the unscaled default.
	base := genWorld(t, 150, 4*cp.Hour, 11)
	scaled, err := Generate(Options{
		NumUEs: 150, Duration: 4 * cp.Hour, Seed: 11,
		MobilityScale: 1.0, ActivityScale: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Events, scaled.Events) {
		t.Fatal("scale 1.0 changed the trace")
	}
}

func TestScalesMoveTheRates(t *testing.T) {
	base := genWorld(t, 300, 6*cp.Hour, 12)
	mobile, err := Generate(Options{
		NumUEs: 300, Duration: 6 * cp.Hour, Seed: 12, MobilityScale: 4.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bh, mh := base.CountByType()[cp.Handover], mobile.CountByType()[cp.Handover]; mh <= bh {
		t.Errorf("MobilityScale=4 did not raise handovers: %d -> %d", bh, mh)
	}
	busy, err := Generate(Options{
		NumUEs: 300, Duration: 6 * cp.Hour, Seed: 12, ActivityScale: 3.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs, as := base.CountByType()[cp.ServiceRequest], busy.CountByType()[cp.ServiceRequest]; as <= bs {
		t.Errorf("ActivityScale=3 did not raise service requests: %d -> %d", bs, as)
	}
	if _, err := Generate(Options{NumUEs: 10, Duration: cp.Hour, MobilityScale: -1}); err == nil {
		t.Error("negative MobilityScale accepted")
	}
	if _, err := Generate(Options{NumUEs: 10, Duration: cp.Hour, ActivityScale: -1}); err == nil {
		t.Error("negative ActivityScale accepted")
	}
}
