//go:build race

package world

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
