package world

import (
	"bytes"
	"fmt"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// TestBatchedMatchesStreamed is the world half of the tentpole identity
// test: across seeds × workers, the parallel Generate assembly, the
// per-event Source.Scan, and the native batched Source.ScanBatches must
// yield the same event sequence, and batched vs per-event writes must
// produce the same bytes for both codecs.
func TestBatchedMatchesStreamed(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				opt := Options{NumUEs: 90, Duration: 3 * cp.Hour, Seed: seed, Workers: workers}
				gen, err := Generate(opt)
				if err != nil {
					t.Fatal(err)
				}
				src, err := NewSource(opt)
				if err != nil {
					t.Fatal(err)
				}
				var streamed []trace.Event
				if err := src.Scan(func(e trace.Event) error {
					streamed = append(streamed, e)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				var batched []trace.Event
				if err := src.ScanBatches(func(b *trace.Batch) error {
					batched = b.AppendTo(batched)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if len(gen.Events) == 0 {
					t.Fatal("simulated no events; test is vacuous")
				}
				diff := func(name string, got []trace.Event) {
					t.Helper()
					if len(got) != len(gen.Events) {
						t.Fatalf("%s: %d events, Generate produced %d", name, len(got), len(gen.Events))
					}
					for i := range got {
						if got[i] != gen.Events[i] {
							t.Fatalf("%s: event %d = %v, Generate produced %v", name, i, got[i], gen.Events[i])
						}
					}
				}
				diff("Scan", streamed)
				diff("ScanBatches", batched)

				for _, codec := range []string{"text", "binary"} {
					mk := func(w *bytes.Buffer) interface {
						trace.EventSink
						Close() error
					} {
						if codec == "text" {
							return trace.NewTextWriter(w)
						}
						return trace.NewStreamWriter(w)
					}
					var perEvent, viaBatches bytes.Buffer
					w1 := mk(&perEvent)
					if err := trace.Copy(w1, gen); err != nil {
						t.Fatal(err)
					}
					if err := w1.Close(); err != nil {
						t.Fatal(err)
					}
					w2 := mk(&viaBatches)
					if err := trace.CopyBatches(w2, src); err != nil {
						t.Fatal(err)
					}
					if err := w2.Close(); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(perEvent.Bytes(), viaBatches.Bytes()) {
						t.Fatalf("%s: batched source bytes differ from per-event trace bytes", codec)
					}
				}
			})
		}
	}
}

// TestWorldAllocsPerEvent gates the arena work on the simulator's
// end-to-end path: at most 0.02 heap allocations per emitted event.
func TestWorldAllocsPerEvent(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	opt := Options{NumUEs: 200, Duration: 3 * cp.Hour, Seed: 3, Workers: 1}
	warm, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	events := len(warm.Events)
	if events == 0 {
		t.Fatal("simulated no events; test is vacuous")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Generate(opt); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := allocs / float64(events)
	t.Logf("%.0f allocs / %d events = %.5f allocs/event", allocs, events, perEvent)
	if perEvent > 0.02 {
		t.Fatalf("allocs/event = %.5f, want <= 0.02", perEvent)
	}
}
