package world

import (
	"fmt"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// Options configures the ground-truth simulation.
type Options struct {
	// NumUEs is the population size.
	NumUEs int
	// Duration is the trace length; the epoch is midnight, so hour-of-day
	// h covers [h*Hour, (h+1)*Hour).
	Duration cp.Millis
	// Offset warm-starts the simulation at an absolute time instead of
	// midnight: events cover [Offset, Offset+Duration) with the correct
	// diurnal phase. Use it to synthesize a busy hour without paying for
	// the whole day before it.
	Offset cp.Millis
	// Seed makes the world reproducible.
	Seed uint64
	// Mix optionally overrides the device composition (defaults to the
	// paper's 62.7/24.9/12.4% split).
	Mix []float64
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
}

// Generate simulates the UE population and returns the sorted trace.
func Generate(opt Options) (*trace.Trace, error) {
	if opt.NumUEs <= 0 {
		return nil, fmt.Errorf("world: NumUEs must be positive")
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("world: Duration must be positive")
	}
	if opt.Offset < 0 {
		return nil, fmt.Errorf("world: Offset must be non-negative")
	}
	mix := DefaultMix
	if opt.Mix != nil {
		if len(opt.Mix) != cp.NumDeviceTypes {
			return nil, fmt.Errorf("world: Mix must have %d entries", cp.NumDeviceTypes)
		}
		var sum float64
		for d, m := range opt.Mix {
			if m < 0 {
				return nil, fmt.Errorf("world: negative mix entry")
			}
			mix[d] = m
			sum += m
		}
		if sum <= 0 {
			return nil, fmt.Errorf("world: empty mix")
		}
		for d := range mix {
			mix[d] /= sum
		}
	}

	workers := par.Workers(opt.Workers, opt.NumUEs)

	root := stats.NewRNG(opt.Seed)
	devices := make([]cp.DeviceType, opt.NumUEs)
	rngs := make([]*stats.RNG, opt.NumUEs)
	for i := range devices {
		r := root.Split(uint64(i) + 1)
		rngs[i] = r
		u := r.Float64()
		var acc float64
		devices[i] = cp.Tablet
		for d, m := range mix {
			acc += m
			if u < acc {
				devices[i] = cp.DeviceType(d)
				break
			}
		}
	}

	out := make([][]trace.Event, workers)
	par.Do(workers, func(w int) {
		var evs []trace.Event
		for i := w; i < opt.NumUEs; i += workers {
			u := ueSim{
				ue:    cp.UEID(i),
				p:     &deviceParams[devices[i]],
				rng:   rngs[i],
				start: opt.Offset,
				end:   opt.Offset + opt.Duration,
			}
			evs = append(evs, u.run()...)
		}
		out[w] = evs
	})

	tr := trace.New()
	for i, d := range devices {
		tr.Device[cp.UEID(i)] = d
	}
	n := 0
	for _, evs := range out {
		n += len(evs)
	}
	tr.Events = make([]trace.Event, 0, n)
	for _, evs := range out {
		tr.Events = append(tr.Events, evs...)
	}
	tr.Sort()
	return tr, nil
}

// ueSim is the behavioral simulation of one UE.
type ueSim struct {
	ue    cp.UEID
	p     *params
	rng   *stats.RNG
	start cp.Millis
	end   cp.Millis

	evs []trace.Event

	actMult float64 // per-UE activity level (heavy-tailed)
	mobMult float64 // per-UE mobility level

	burstOn    bool
	burstUntil float64 // seconds

	// followWait, when positive, is a pending follow-on session's think
	// time: the next session starts that many seconds after the last
	// one ended, bypassing the background arrival process.
	followWait float64
}

func (u *ueSim) emit(tSec float64, e cp.EventType) {
	t := cp.MillisFromSeconds(tSec)
	if t >= u.end {
		return
	}
	// Monotonicity guard: behavioral delays can round to the same
	// millisecond; nudge forward to keep per-UE event order strict.
	if n := len(u.evs); n > 0 && t <= u.evs[n-1].T {
		t = u.evs[n-1].T + 1
	}
	if t >= u.end {
		return
	}
	u.evs = append(u.evs, trace.Event{T: t, UE: u.ue, Type: e})
}

// run simulates the UE over [0, end) and returns its events.
func (u *ueSim) run() []trace.Event {
	p := u.p
	r := u.rng
	u.actMult = r.Lognormal(-p.actSigma*p.actSigma/2, p.actSigma) // mean 1
	u.mobMult = r.Lognormal(-p.mobSigma*p.mobSigma/2, p.mobSigma)
	startSec := u.start.Seconds()
	u.burstOn = r.Float64() < p.burstOnMean/(p.burstOnMean+p.burstOffMean)
	u.burstUntil = u.nextBurstSwitch(startSec)

	endSec := u.end.Seconds()
	t := startSec
	registered := r.Float64() >= p.pStartOff

	if !registered {
		t += u.offDuration(r) * r.Float64() // mid-way through an off period
	}

	for t < endSec {
		if !registered {
			// Powered off: wait, then attach (attach enters CONNECTED).
			u.emit(t, cp.Attach)
			t = u.connectedPhase(t)
			registered = true
			continue
		}
		// IDLE: race between next session, periodic TAU, and power-off.
		// A pending follow-on session preempts the background arrival
		// process.
		var tSess float64
		if u.followWait > 0 {
			tSess = t + u.followWait
			u.followWait = 0
		} else {
			tSess = t + u.sessionWait(t)
		}
		tTau := t + u.idleTauWait(r)
		tOff := t + u.powerOffWait(r, t)
		switch {
		case tOff <= tSess && tOff <= tTau:
			if tOff >= endSec {
				return u.evs
			}
			u.emit(tOff, cp.Detach)
			registered = false
			t = tOff + u.offDuration(r)
		case tTau <= tSess:
			if tTau >= endSec {
				return u.evs
			}
			// Periodic TAU in IDLE, released by an S1_CONN_REL shortly
			// after (Fig. 5, bottom right).
			u.emit(tTau, cp.TrackingAreaUpdate)
			rel := tTau + math.Max(r.Lognormal(u.p.tauRelMu, u.p.tauRelSigma), 0.01)
			u.emit(rel, cp.S1ConnRelease)
			t = rel
		default:
			if tSess >= endSec {
				return u.evs
			}
			u.emit(tSess, cp.ServiceRequest)
			t = u.connectedPhase(tSess)
		}
	}
	return u.evs
}

// connectedPhase simulates one CONNECTED visit beginning at tSec (the
// connection-establishing event has already been emitted) and returns the
// time of the S1_CONN_REL that ends it. Handovers fire at the
// mobility-driven rate; a fraction of them cross tracking areas and are
// followed by a TAU.
func (u *ueSim) connectedPhase(tSec float64) float64 {
	p := u.p
	r := u.rng
	var dur float64
	if p.paretoP > 0 && r.Float64() < p.paretoP {
		dur = r.ParetoSample(p.paretoXm, p.paretoAlpha)
	} else {
		dur = r.Lognormal(p.sessMu, p.sessSigma) * math.Pow(u.actMult, 0.3)
	}
	if dur < 1 {
		dur = 1
	}
	endConn := tSec + dur
	h := cp.MillisFromSeconds(tSec).HourOfDay()
	hoRate := p.hoRate * p.mobility[h] * u.mobMult * weekendFactor(p, tSec)
	t := tSec
	if hoRate > 0 {
		for {
			t += r.Exp(hoRate)
			if t >= endConn {
				break
			}
			u.emit(t, cp.Handover)
			if r.Float64() < p.tauPerHO {
				tau := t + 0.1 + r.Float64()*2
				if tau < endConn {
					u.emit(tau, cp.TrackingAreaUpdate)
					t = tau
				}
			}
		}
	}
	u.emit(endConn, cp.S1ConnRelease)
	// Roll the follow-on session: user behavior arrives in click trains.
	if r.Float64() < p.followP {
		u.followWait = r.Lognormal(p.followMu, p.followSigma)
	}
	return endConn
}

// sessionWait samples the time until the next session arrival from the
// piecewise-constant rate process (diurnal envelope x per-UE activity x
// burst phase), advancing through hour and burst-phase boundaries.
func (u *ueSim) sessionWait(tSec float64) float64 {
	p := u.p
	r := u.rng
	t := tSec
	endSec := u.end.Seconds()
	// The burst clock only ticks inside this function; after a long
	// connected phase or power-off period it lags t, and a stale
	// burstUntil would otherwise drag the segment end — and with it the
	// simulation clock — into the past.
	u.advanceBurst(t)
	for steps := 0; steps < 100000; steps++ {
		if t >= endSec {
			return t - tSec
		}
		h := cp.MillisFromSeconds(t).HourOfDay()
		factor := p.loFactor
		if u.burstOn {
			factor = p.hiFactor
		}
		rate := p.sessRate * p.diurnal[h] * u.actMult * factor * weekendFactor(p, t)
		segEnd := math.Min(nextHourBoundary(t), u.burstUntil)
		if rate <= 1e-12 {
			t = segEnd
			u.advanceBurst(t)
			continue
		}
		dt := r.Exp(rate)
		if t+dt <= segEnd {
			return t + dt - tSec
		}
		t = segEnd
		u.advanceBurst(t)
	}
	return endSec - tSec
}

// weekendFactor returns the weekend activity multiplier for a time.
func weekendFactor(p *params, tSec float64) float64 {
	if p.weekend == 0 {
		return 1
	}
	day := int(tSec/86400) % 7
	if day < 0 {
		day += 7
	}
	if day >= 5 {
		return p.weekend
	}
	return 1
}

func nextHourBoundary(tSec float64) float64 {
	h := math.Floor(tSec/3600) + 1
	return h * 3600
}

func (u *ueSim) advanceBurst(tSec float64) {
	for u.burstUntil <= tSec {
		u.burstOn = !u.burstOn
		u.burstUntil = u.nextBurstSwitch(u.burstUntil)
	}
}

func (u *ueSim) nextBurstSwitch(fromSec float64) float64 {
	mean := u.p.burstOffMean
	if u.burstOn {
		mean = u.p.burstOnMean
	}
	return fromSec + u.rng.Exp(1/mean)
}

func (u *ueSim) idleTauWait(r *stats.RNG) float64 {
	return r.Lognormal(u.p.idleTauMu, u.p.idleTauSigma)
}

func (u *ueSim) powerOffWait(r *stats.RNG, tSec float64) float64 {
	if u.p.offRate <= 0 {
		return math.Inf(1)
	}
	// Power-off is diurnal too: devices switch off mostly when activity
	// winds down (night for phones, after the commute for cars), which
	// also keeps the REGISTERED sojourn away from a pure exponential.
	h := cp.MillisFromSeconds(tSec).HourOfDay()
	rate := u.p.offRate * (1.6 - 1.2*u.p.diurnal[h])
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.Exp(rate)
}

func (u *ueSim) offDuration(r *stats.RNG) float64 {
	return r.Lognormal(u.p.offDurMu, u.p.offDurSigma)
}
