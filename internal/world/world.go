package world

import (
	"fmt"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// Options configures the ground-truth simulation.
type Options struct {
	// NumUEs is the population size.
	NumUEs int
	// Duration is the trace length; the epoch is midnight, so hour-of-day
	// h covers [h*Hour, (h+1)*Hour).
	Duration cp.Millis
	// Offset warm-starts the simulation at an absolute time instead of
	// midnight: events cover [Offset, Offset+Duration) with the correct
	// diurnal phase. Use it to synthesize a busy hour without paying for
	// the whole day before it.
	Offset cp.Millis
	// Seed makes the world reproducible.
	Seed uint64
	// Mix optionally overrides the device composition (defaults to the
	// paper's 62.7/24.9/12.4% split).
	Mix []float64
	// MobilityScale multiplies every UE's handover rate; 0 means the
	// calibrated default of 1.0. Scenario files use it to express
	// mobility level (a highway rush hour is > 1, a stadium crowd < 1).
	// At exactly 1.0 the multiplication is an IEEE no-op, so default
	// output stays byte-identical.
	MobilityScale float64
	// ActivityScale multiplies every UE's session-arrival rate; 0 means
	// the calibrated default of 1.0. Same byte-identity property as
	// MobilityScale.
	ActivityScale float64
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
}

// resolveMix validates opt and returns the normalized device mix.
func resolveMix(opt Options) ([cp.NumDeviceTypes]float64, error) {
	mix := DefaultMix
	if opt.NumUEs <= 0 {
		return mix, fmt.Errorf("world: NumUEs must be positive")
	}
	if opt.Duration <= 0 {
		return mix, fmt.Errorf("world: Duration must be positive")
	}
	if opt.Offset < 0 {
		return mix, fmt.Errorf("world: Offset must be non-negative")
	}
	if opt.MobilityScale < 0 {
		return mix, fmt.Errorf("world: MobilityScale must be non-negative")
	}
	if opt.ActivityScale < 0 {
		return mix, fmt.Errorf("world: ActivityScale must be non-negative")
	}
	if opt.Mix != nil {
		if len(opt.Mix) != cp.NumDeviceTypes {
			return mix, fmt.Errorf("world: Mix must have %d entries", cp.NumDeviceTypes)
		}
		var sum float64
		for d, m := range opt.Mix {
			if m < 0 {
				return mix, fmt.Errorf("world: negative mix entry")
			}
			mix[d] = m
			sum += m
		}
		if sum <= 0 {
			return mix, fmt.Errorf("world: empty mix")
		}
		for d := range mix {
			mix[d] /= sum
		}
	}
	return mix, nil
}

// simPlan derives UE i's RNG stream and device. The device pick consumes
// the stream's first draw, so the derivation is identical however many
// times it is repeated; the RNG travels by value so per-UE state can live
// in slabs.
func simPlan(mix [cp.NumDeviceTypes]float64, root *stats.RNG, i int) (stats.RNG, cp.DeviceType) {
	r := root.SplitVal(uint64(i) + 1)
	u := r.Float64()
	var acc float64
	dev := cp.Tablet
	for d, m := range mix {
		acc += m
		if u < acc {
			dev = cp.DeviceType(d)
			break
		}
	}
	return r, dev
}

// init (re)initializes the simulator in place for one UE, keeping the
// queue's backing array so a worker can reuse one ueSim — or a slab of
// them — across the population without per-UE allocations.
func (u *ueSim) init(opt Options, ue cp.UEID, dev cp.DeviceType, rng stats.RNG) {
	actScale := opt.ActivityScale
	if actScale == 0 {
		actScale = 1
	}
	mobScale := opt.MobilityScale
	if mobScale == 0 {
		mobScale = 1
	}
	q := u.queue[:0]
	*u = ueSim{
		ue:       ue,
		p:        &deviceParams[dev],
		rng:      rng,
		start:    opt.Offset,
		end:      opt.Offset + opt.Duration,
		actScale: actScale,
		mobScale: mobScale,
	}
	u.queue = q
}

// newUESim derives UE i's stream and prepares its simulator on the heap —
// the slab-free convenience form of simPlan + init.
func newUESim(opt Options, mix [cp.NumDeviceTypes]float64, root *stats.RNG, i int) (*ueSim, cp.DeviceType) {
	rng, dev := simPlan(mix, root, i)
	u := &ueSim{}
	u.init(opt, cp.UEID(i), dev, rng)
	return u, dev
}

// Generate simulates the UE population and returns the sorted trace.
func Generate(opt Options) (*trace.Trace, error) {
	mix, err := resolveMix(opt)
	if err != nil {
		return nil, err
	}
	workers := par.Workers(opt.Workers, opt.NumUEs)

	// Pre-derive every UE's stream and device serially (the plan), so the
	// workers share nothing but read-only values.
	root := stats.NewRNG(opt.Seed)
	seeds := make([]stats.RNG, opt.NumUEs)
	devices := make([]cp.DeviceType, opt.NumUEs)
	for i := range seeds {
		seeds[i], devices[i] = simPlan(mix, root, i)
	}

	out := make([][]trace.Event, workers)
	par.Do(workers, func(w int) {
		// One reused simulator per worker: each UE's state is initialized
		// in place and drained straight into the worker's buffer — no
		// per-UE heap objects, no per-event interface hop.
		var evs []trace.Event
		var sim ueSim
		for i := w; i < opt.NumUEs; i += workers {
			sim.init(opt, cp.UEID(i), devices[i], seeds[i])
			evs = sim.drainInto(evs)
		}
		out[w] = evs
	})

	tr := trace.New()
	for i, d := range devices {
		tr.Device[cp.UEID(i)] = d
	}
	n := 0
	for _, evs := range out {
		n += len(evs)
	}
	// Assembly: concatenate the per-worker runs and radix-sort the packed
	// (T-Offset, UE, Type) key — identical bytes to the k-way merge the
	// streaming Source uses, since the canonical order is exactly the
	// key's integer order. Pathological spans fall back to a comparison
	// sort defining the same order.
	tr.Events = make([]trace.Event, 0, n)
	for _, evs := range out {
		tr.Events = append(tr.Events, evs...)
	}
	if !trace.RadixSortEvents(tr.Events, opt.Offset) {
		tr.Sort()
	}
	return tr, nil
}

// Source is a simulation-backed trace.EventSource: scanning it runs the
// ground-truth behavioral simulation on the fly and k-way merges the
// per-UE streams, holding O(NumUEs) state instead of the whole trace.
// Devices and Scan both re-derive the population from the seed, so the
// source is re-iterable and successive passes agree.
type Source struct {
	opt Options
	mix [cp.NumDeviceTypes]float64
}

// NewSource validates the options once and returns the lazy source; no
// simulation happens until Scan.
func NewSource(opt Options) (*Source, error) {
	mix, err := resolveMix(opt)
	if err != nil {
		return nil, err
	}
	return &Source{opt: opt, mix: mix}, nil
}

// Devices reports every UE's device type in ascending UE order.
func (s *Source) Devices(fn func(cp.UEID, cp.DeviceType) error) error {
	root := stats.NewRNG(s.opt.Seed)
	for i := 0; i < s.opt.NumUEs; i++ {
		_, dev := simPlan(s.mix, root, i)
		if err := fn(cp.UEID(i), dev); err != nil {
			return err
		}
	}
	return nil
}

// sims prepares one slab of per-UE simulators — a single allocation for
// the whole population, initialized in place.
func (s *Source) sims() []ueSim {
	root := stats.NewRNG(s.opt.Seed)
	sims := make([]ueSim, s.opt.NumUEs)
	for i := range sims {
		rng, dev := simPlan(s.mix, root, i)
		sims[i].init(s.opt, cp.UEID(i), dev, rng)
	}
	return sims
}

// Scan simulates the population and delivers its events in canonical
// order.
func (s *Source) Scan(fn func(trace.Event) error) error {
	sims := s.sims()
	its := make([]trace.EventIterator, len(sims))
	for i := range sims {
		its[i] = &sims[i]
	}
	return trace.MergeScan(fn, its)
}

// ScanBatches implements trace.BatchSource natively: per-UE simulators
// fill merge runs directly and events arrive in reused struct-of-arrays
// batches, byte-identical to Scan (TestBatchedMatchesStreamed).
func (s *Source) ScanBatches(fn func(*trace.Batch) error) error {
	sims := s.sims()
	its := make([]trace.BatchIterator, len(sims))
	for i := range sims {
		its[i] = &sims[i]
	}
	return trace.MergeBatches(fn, its)
}

// ueSim is the behavioral simulation of one UE, exposed as an
// incremental iterator (it implements trace.EventIterator): Next
// advances the simulation just far enough to produce the next event, so
// a population can be streamed without holding anyone's future.
type ueSim struct {
	ue    cp.UEID
	p     *params
	rng   stats.RNG // by value: self-contained, slab-friendly state
	start cp.Millis
	end   cp.Millis

	// queue holds events already decided but not yet delivered (one
	// connected phase produces several at once); qhead is the next to
	// deliver, so the backing array is reused across phases.
	queue []trace.Event
	qhead int

	// lastT is the last emitted event time (the monotonicity guard must
	// survive delivery, so it cannot live in the queue).
	lastT   cp.Millis
	hasLast bool

	started    bool
	done       bool
	t          float64 // simulation clock, seconds
	registered bool

	actMult float64 // per-UE activity level (heavy-tailed)
	mobMult float64 // per-UE mobility level

	// actScale and mobScale are the scenario-level rate multipliers
	// (Options.ActivityScale / MobilityScale, resolved to 1 when unset).
	// They are applied as the last factor of each rate product, so at
	// exactly 1.0 the product — and the whole trace — is unchanged.
	actScale float64
	mobScale float64

	burstOn    bool
	burstUntil float64 // seconds

	// followWait, when positive, is a pending follow-on session's think
	// time: the next session starts that many seconds after the last
	// one ended, bypassing the background arrival process.
	followWait float64
}

//cplint:hotpath appends into the reused per-UE queue
func (u *ueSim) emit(tSec float64, e cp.EventType) {
	t := cp.MillisFromSeconds(tSec)
	if t >= u.end {
		return
	}
	// Monotonicity guard: behavioral delays can round to the same
	// millisecond; nudge forward to keep per-UE event order strict.
	if u.hasLast && t <= u.lastT {
		t = u.lastT + 1
	}
	if t >= u.end {
		return
	}
	u.lastT, u.hasLast = t, true
	u.queue = append(u.queue, trace.Event{T: t, UE: u.ue, Type: e})
}

// Next returns the UE's next event, or ok=false when the window is done.
//
//cplint:hotpath simulator steady state; TestUESimSteadyStateAllocs gates it at exactly 0 allocs
func (u *ueSim) Next() (trace.Event, bool) {
	for {
		if u.qhead < len(u.queue) {
			ev := u.queue[u.qhead]
			u.qhead++
			if u.qhead == len(u.queue) {
				u.queue, u.qhead = u.queue[:0], 0
			}
			return ev, true
		}
		if u.done {
			return trace.Event{}, false
		}
		if !u.started {
			u.start0()
			continue
		}
		u.step()
	}
}

// drainInto runs the simulation to exhaustion, appending every event to
// evs — the bulk counterpart of looping Next used by Generate's workers.
// Queued events move with one bounded copy per decision instead of a pop
// per event, and nothing crosses an interface.
//
//cplint:hotpath the batch drain: one bulk append per simulation decision
func (u *ueSim) drainInto(evs []trace.Event) []trace.Event {
	for {
		if u.qhead < len(u.queue) {
			evs = append(evs, u.queue[u.qhead:]...)
			u.queue, u.qhead = u.queue[:0], 0
			continue
		}
		if u.done {
			return evs
		}
		if !u.started {
			u.start0()
			continue
		}
		u.step()
	}
}

// NextRun implements trace.BatchIterator: it fills dst with the
// simulation's next events, delivering exactly the sequence repeated
// Next calls would.
//
//cplint:hotpath the batched per-UE fill: one call per merge run instead of per event
func (u *ueSim) NextRun(dst []trace.Event) int {
	n := 0
	for n < len(dst) {
		if u.qhead < len(u.queue) {
			dst[n] = u.queue[u.qhead]
			n++
			u.qhead++
			if u.qhead == len(u.queue) {
				u.queue, u.qhead = u.queue[:0], 0
			}
			continue
		}
		if u.done {
			break
		}
		if !u.started {
			u.start0()
			continue
		}
		u.step()
	}
	return n
}

// start0 draws the UE's per-lifetime latent state and initial condition.
func (u *ueSim) start0() {
	u.started = true
	p := u.p
	r := &u.rng
	u.actMult = r.Lognormal(-p.actSigma*p.actSigma/2, p.actSigma) // mean 1
	u.mobMult = r.Lognormal(-p.mobSigma*p.mobSigma/2, p.mobSigma)
	startSec := u.start.Seconds()
	u.burstOn = r.Float64() < p.burstOnMean/(p.burstOnMean+p.burstOffMean)
	u.burstUntil = u.nextBurstSwitch(startSec)
	u.t = startSec
	u.registered = r.Float64() >= p.pStartOff
	if !u.registered {
		u.t += u.offDuration(r) * r.Float64() // mid-way through an off period
	}
}

// step advances the simulation by one decision, queueing the resulting
// event(s) or marking the UE done.
//
//cplint:hotpath the simulator step: runs once per behavioral decision
func (u *ueSim) step() {
	r := &u.rng
	endSec := u.end.Seconds()
	if u.t >= endSec {
		u.done = true
		return
	}
	if !u.registered {
		// Powered off: wait, then attach (attach enters CONNECTED).
		u.emit(u.t, cp.Attach)
		u.t = u.connectedPhase(u.t)
		u.registered = true
		return
	}
	// IDLE: race between next session, periodic TAU, and power-off.
	// A pending follow-on session preempts the background arrival
	// process.
	var tSess float64
	if u.followWait > 0 {
		tSess = u.t + u.followWait
		u.followWait = 0
	} else {
		tSess = u.t + u.sessionWait(u.t)
	}
	tTau := u.t + u.idleTauWait(r)
	tOff := u.t + u.powerOffWait(r, u.t)
	switch {
	case tOff <= tSess && tOff <= tTau:
		if tOff >= endSec {
			u.done = true
			return
		}
		u.emit(tOff, cp.Detach)
		u.registered = false
		u.t = tOff + u.offDuration(r)
	case tTau <= tSess:
		if tTau >= endSec {
			u.done = true
			return
		}
		// Periodic TAU in IDLE, released by an S1_CONN_REL shortly
		// after (Fig. 5, bottom right).
		u.emit(tTau, cp.TrackingAreaUpdate)
		rel := tTau + math.Max(r.Lognormal(u.p.tauRelMu, u.p.tauRelSigma), 0.01)
		u.emit(rel, cp.S1ConnRelease)
		u.t = rel
	default:
		if tSess >= endSec {
			u.done = true
			return
		}
		u.emit(tSess, cp.ServiceRequest)
		u.t = u.connectedPhase(tSess)
	}
}

// connectedPhase simulates one CONNECTED visit beginning at tSec (the
// connection-establishing event has already been emitted) and returns the
// time of the S1_CONN_REL that ends it. Handovers fire at the
// mobility-driven rate; a fraction of them cross tracking areas and are
// followed by a TAU.
func (u *ueSim) connectedPhase(tSec float64) float64 {
	p := u.p
	r := &u.rng
	var dur float64
	if p.paretoP > 0 && r.Float64() < p.paretoP {
		dur = r.ParetoSample(p.paretoXm, p.paretoAlpha)
	} else {
		dur = r.Lognormal(p.sessMu, p.sessSigma) * math.Pow(u.actMult, 0.3)
	}
	if dur < 1 {
		dur = 1
	}
	endConn := tSec + dur
	h := cp.MillisFromSeconds(tSec).HourOfDay()
	hoRate := p.hoRate * p.mobility[h] * u.mobMult * weekendFactor(p, tSec) * u.mobScale
	t := tSec
	if hoRate > 0 {
		for {
			t += r.Exp(hoRate)
			if t >= endConn {
				break
			}
			u.emit(t, cp.Handover)
			if r.Float64() < p.tauPerHO {
				tau := t + 0.1 + r.Float64()*2
				if tau < endConn {
					u.emit(tau, cp.TrackingAreaUpdate)
					t = tau
				}
			}
		}
	}
	u.emit(endConn, cp.S1ConnRelease)
	// Roll the follow-on session: user behavior arrives in click trains.
	if r.Float64() < p.followP {
		u.followWait = r.Lognormal(p.followMu, p.followSigma)
	}
	return endConn
}

// sessionWait samples the time until the next session arrival from the
// piecewise-constant rate process (diurnal envelope x per-UE activity x
// burst phase), advancing through hour and burst-phase boundaries.
func (u *ueSim) sessionWait(tSec float64) float64 {
	p := u.p
	r := &u.rng
	t := tSec
	endSec := u.end.Seconds()
	// The burst clock only ticks inside this function; after a long
	// connected phase or power-off period it lags t, and a stale
	// burstUntil would otherwise drag the segment end — and with it the
	// simulation clock — into the past.
	u.advanceBurst(t)
	for steps := 0; steps < 100000; steps++ {
		if t >= endSec {
			return t - tSec
		}
		h := cp.MillisFromSeconds(t).HourOfDay()
		factor := p.loFactor
		if u.burstOn {
			factor = p.hiFactor
		}
		rate := p.sessRate * p.diurnal[h] * u.actMult * factor * weekendFactor(p, t) * u.actScale
		segEnd := math.Min(nextHourBoundary(t), u.burstUntil)
		if rate <= 1e-12 {
			t = segEnd
			u.advanceBurst(t)
			continue
		}
		dt := r.Exp(rate)
		if t+dt <= segEnd {
			return t + dt - tSec
		}
		t = segEnd
		u.advanceBurst(t)
	}
	return endSec - tSec
}

// weekendFactor returns the weekend activity multiplier for a time.
func weekendFactor(p *params, tSec float64) float64 {
	if p.weekend == 0 {
		return 1
	}
	day := int(tSec/86400) % 7
	if day < 0 {
		day += 7
	}
	if day >= 5 {
		return p.weekend
	}
	return 1
}

func nextHourBoundary(tSec float64) float64 {
	h := math.Floor(tSec/3600) + 1
	return h * 3600
}

func (u *ueSim) advanceBurst(tSec float64) {
	for u.burstUntil <= tSec {
		u.burstOn = !u.burstOn
		u.burstUntil = u.nextBurstSwitch(u.burstUntil)
	}
}

func (u *ueSim) nextBurstSwitch(fromSec float64) float64 {
	mean := u.p.burstOffMean
	if u.burstOn {
		mean = u.p.burstOnMean
	}
	return fromSec + u.rng.Exp(1/mean)
}

func (u *ueSim) idleTauWait(r *stats.RNG) float64 {
	return r.Lognormal(u.p.idleTauMu, u.p.idleTauSigma)
}

func (u *ueSim) powerOffWait(r *stats.RNG, tSec float64) float64 {
	if u.p.offRate <= 0 {
		return math.Inf(1)
	}
	// Power-off is diurnal too: devices switch off mostly when activity
	// winds down (night for phones, after the commute for cars), which
	// also keeps the REGISTERED sojourn away from a pure exponential.
	h := cp.MillisFromSeconds(tSec).HourOfDay()
	rate := u.p.offRate * (1.6 - 1.2*u.p.diurnal[h])
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.Exp(rate)
}

func (u *ueSim) offDuration(r *stats.RNG) float64 {
	return r.Lognormal(u.p.offDurMu, u.p.offDurSigma)
}
