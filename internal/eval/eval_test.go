package eval

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func worldTrace(t *testing.T, n int, dur cp.Millis, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := world.Generate(world.Options{NumUEs: n, Duration: dur, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestComputeBreakdownSharesSumToOne(t *testing.T) {
	tr := worldTrace(t, 200, 4*cp.Hour, 1)
	for _, d := range cp.DeviceTypes {
		b := ComputeBreakdown(tr, d)
		if b.Total == 0 {
			t.Fatalf("%v: no events", d)
		}
		var sum float64
		for _, k := range BreakdownKeys {
			sum += b.Share[k]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v shares sum to %v", d, sum)
		}
		if b.Share["HO (IDLE)"] != 0 {
			t.Fatalf("%v: world trace shows HO in IDLE", d)
		}
	}
}

func TestComputeBreakdownHandBuilt(t *testing.T) {
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	add := func(sec float64, e cp.EventType) {
		tr.Append(trace.Event{T: cp.MillisFromSeconds(sec), UE: 1, Type: e})
	}
	add(0, cp.Attach)
	add(1, cp.Handover) // CONNECTED
	add(2, cp.S1ConnRelease)
	add(3, cp.TrackingAreaUpdate) // IDLE
	add(4, cp.S1ConnRelease)      // TAU release, IDLE
	b := ComputeBreakdown(tr, cp.Phone)
	if b.Total != 5 {
		t.Fatalf("total = %d", b.Total)
	}
	if b.Share["HO (CONN.)"] != 0.2 || b.Share["TAU (IDLE)"] != 0.2 || b.Share["S1_CONN_REL"] != 0.4 {
		t.Fatalf("shares = %v", b.Share)
	}
}

func TestBreakdownDiffAndMaxAbs(t *testing.T) {
	a := Breakdown{Share: map[string]float64{"ATCH": 0.1, "DTCH": 0.2}}
	b := Breakdown{Share: map[string]float64{"ATCH": 0.15, "DTCH": 0.1}}
	d := BreakdownDiff(a, b)
	if math.Abs(d["ATCH"]-0.05) > 1e-12 || math.Abs(d["DTCH"]+0.1) > 1e-12 {
		t.Fatalf("diff = %v", d)
	}
	if m := MaxAbsDiff(d); math.Abs(m-0.1) > 1e-12 {
		t.Fatalf("max = %v", m)
	}
}

func TestSimpleBreakdown(t *testing.T) {
	tr := worldTrace(t, 150, 2*cp.Hour, 2)
	shares, total := SimpleBreakdown(tr, cp.Phone)
	if total == 0 {
		t.Fatal("no events")
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	if _, total := SimpleBreakdown(trace.New(), cp.Phone); total != 0 {
		t.Fatal("empty trace nonzero")
	}
}

func TestHourCountsAndBoxStats(t *testing.T) {
	tr := worldTrace(t, 200, cp.Day, 3)
	hc := HourCounts(tr, cp.Phone, cp.ServiceRequest, 1)
	nPhones := len(tr.UEsOfType(cp.Phone))
	for h := range hc {
		if len(hc[h]) != nPhones {
			t.Fatalf("hour %d has %d UEs, want %d", h, len(hc[h]), nPhones)
		}
	}
	// Daytime busier than pre-dawn.
	day := ComputeBoxStats(hc[18])
	night := ComputeBoxStats(hc[3])
	if day.Mean <= night.Mean {
		t.Fatalf("day mean %v <= night mean %v", day.Mean, night.Mean)
	}
	// Box stats sanity on a known sample.
	bs := ComputeBoxStats([]float64{1, 2, 3, 4, 5})
	if bs.Min != 1 || bs.Max != 5 || bs.Median != 3 || bs.Mean != 3 || bs.Q1 != 2 || bs.Q3 != 4 {
		t.Fatalf("box = %+v", bs)
	}
	if (ComputeBoxStats(nil) != BoxStats{}) {
		t.Fatal("empty box stats not zero")
	}
}

func TestEventsPerUEIncludesSilent(t *testing.T) {
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	tr.SetDevice(2, cp.Phone)
	tr.Append(trace.Event{T: 1, UE: 1, Type: cp.ServiceRequest})
	counts := EventsPerUE(tr, cp.Phone, cp.ServiceRequest)
	if len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	sum := counts[0] + counts[1]
	if sum != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestStateSojourns(t *testing.T) {
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	add := func(sec float64, e cp.EventType) {
		tr.Append(trace.Event{T: cp.MillisFromSeconds(sec), UE: 1, Type: e})
	}
	add(0, cp.Attach)
	add(10, cp.S1ConnRelease)
	add(40, cp.ServiceRequest)
	so := StateSojourns(tr, cp.Phone, cp.StateConnected)
	if len(so) != 1 || so[0] != 10 {
		t.Fatalf("connected = %v", so)
	}
	so = StateSojourns(tr, cp.Phone, cp.StateIdle)
	if len(so) != 1 || so[0] != 30 {
		t.Fatalf("idle = %v", so)
	}
}

func TestComputeMicroDistancesSelfIsSmall(t *testing.T) {
	tr := worldTrace(t, 300, 3*cp.Hour, 4)
	d := ComputeMicroDistances(tr, tr, cp.Phone)
	if d.SrvReqPerUE != 0 || d.Connected != 0 {
		t.Fatalf("self-distance = %+v", d)
	}
	other := worldTrace(t, 300, 3*cp.Hour, 5)
	d2 := ComputeMicroDistances(tr, other, cp.Phone)
	// Two draws from the same world should be close but nonzero.
	if d2.SrvReqPerUE <= 0 || d2.SrvReqPerUE > 0.2 {
		t.Fatalf("cross-seed SRV_REQ distance = %v", d2.SrvReqPerUE)
	}
}

func TestActivitySplit(t *testing.T) {
	tr := worldTrace(t, 300, 2*cp.Hour, 6)
	in, act := ActivitySplit(tr, tr, cp.ConnectedCar, cp.ServiceRequest)
	if in != 0 || act != 0 {
		t.Fatalf("self split = %v, %v", in, act)
	}
}

func TestComputeCDF(t *testing.T) {
	c := ComputeCDF([]float64{1, 1, 2, 3})
	if len(c.X) != 3 || c.X[0] != 1 || c.F[0] != 0.5 || c.F[2] != 1 {
		t.Fatalf("cdf = %+v", c)
	}
	if got := ComputeCDF(nil); len(got.X) != 0 {
		t.Fatal("empty CDF not empty")
	}
}

func TestQuantityStrings(t *testing.T) {
	qs := append(Table8Quantities(), Table10Quantities()...)
	seen := map[string]bool{}
	for _, q := range qs {
		s := q.String()
		if s == "?" || s == "" {
			t.Fatalf("bad name for %+v", q)
		}
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if len(Table8Quantities()) != 10 {
		t.Fatalf("table 8 has %d quantities", len(Table8Quantities()))
	}
	if len(Table10Quantities()) != 9 {
		t.Fatalf("table 10 has %d quantities", len(Table10Quantities()))
	}
}

func TestCollectUEQuantities(t *testing.T) {
	evs := []trace.Event{
		{T: cp.MillisFromSeconds(0), UE: 1, Type: cp.Attach},
		{T: cp.MillisFromSeconds(5), UE: 1, Type: cp.Handover},
		{T: cp.MillisFromSeconds(8), UE: 1, Type: cp.Handover},
		{T: cp.MillisFromSeconds(20), UE: 1, Type: cp.S1ConnRelease},
		{T: cp.MillisFromSeconds(80), UE: 1, Type: cp.ServiceRequest},
		{T: cp.MillisFromSeconds(90), UE: 1, Type: cp.Detach},
	}
	u := collectUE(evs)
	// HO inter-arrival: 3 s.
	ho := u.at(0, Quantity{Kind: QInterArrival, Event: cp.Handover})
	if len(ho) != 1 || ho[0] != 3 {
		t.Fatalf("HO inter-arrival = %v", ho)
	}
	// CONNECTED sojourn 20 s; IDLE 60 s.
	conn := u.at(0, Quantity{Kind: QStateSojourn, State: cp.StateConnected})
	if len(conn) != 2 || conn[0] != 20 || conn[1] != 10 {
		t.Fatalf("connected = %v", conn)
	}
	idle := u.at(0, Quantity{Kind: QStateSojourn, State: cp.StateIdle})
	if len(idle) != 1 || idle[0] != 60 {
		t.Fatalf("idle = %v", idle)
	}
	// REGISTERED sojourn: 0 -> 90.
	reg := u.at(0, Quantity{Kind: QRegisteredSojourn})
	if len(reg) != 1 || reg[0] != 90 {
		t.Fatalf("registered = %v", reg)
	}
	// Bottom: SRV_REQ_S -HO (5 s), HO_S -HO (3 s).
	b1 := u.at(0, Quantity{Kind: QTransSojourn, From: sm.LTESrvReqS, Event: cp.Handover})
	if len(b1) != 1 || b1[0] != 5 {
		t.Fatalf("SRV_REQ_S-HO = %v", b1)
	}
	b2 := u.at(0, Quantity{Kind: QTransSojourn, From: sm.LTEHoS, Event: cp.Handover})
	if len(b2) != 1 || b2[0] != 3 {
		t.Fatalf("HO_S-HO = %v", b2)
	}
	// Features: one SRV_REQ in hour 0.
	f := u.features(0, 1)
	if f[cluster.FSrvReqCount] != 1 || f[cluster.FS1RelCount] != 1 {
		t.Fatalf("features = %v", f)
	}
}

func TestPassRatesRejectPoissonOnWorldTraffic(t *testing.T) {
	// The paper's core negative result: classic distributions fail.
	// A full day is needed so every device type has busy hours — K-S
	// has no power against near-empty night-time samples.
	tr := worldTrace(t, 400, cp.Day, 7)
	rates := PassRates(tr, Table8Quantities(), FitTestOptions{MinSamples: 30})
	srv := Quantity{Kind: QInterArrival, Event: cp.ServiceRequest}
	idle := Quantity{Kind: QStateSojourn, State: cp.StateIdle}
	for _, d := range []cp.DeviceType{cp.Phone, cp.ConnectedCar} {
		if r := rates[PoissonKS][d][srv]; !(math.IsNaN(r)) && r > 0.10 {
			t.Errorf("%v: Poisson K-S pass rate for SRV_REQ = %.2f, want near 0", d, r)
		}
		// IDLE sojourns get a looser bound: at test scale the quiet
		// night hours pool few visits and K-S loses power there.
		if r := rates[PoissonKS][d][idle]; !(math.IsNaN(r)) && r > 0.30 {
			t.Errorf("%v: Poisson K-S pass rate for IDLE = %.2f, want near 0", d, r)
		}
		if r := rates[TcplibKS][d][srv]; !(math.IsNaN(r)) && r > 0.10 {
			t.Errorf("%v: Tcplib pass rate = %.2f, want near 0", d, r)
		}
	}
}

func TestPassRatesClusteredRuns(t *testing.T) {
	tr := worldTrace(t, 300, 3*cp.Hour, 8)
	rates := PassRates(tr, []Quantity{{Kind: QInterArrival, Event: cp.ServiceRequest}},
		FitTestOptions{Clustered: true, Cluster: cluster.Options{ThetaN: 30}})
	r := rates[PoissonKS][cp.Phone][Quantity{Kind: QInterArrival, Event: cp.ServiceRequest}]
	if math.IsNaN(r) {
		t.Fatal("no tested units with clustering")
	}
	if r < 0 || r > 1 {
		t.Fatalf("rate = %v", r)
	}
}

// TestPassRatesDeterministicAcrossWorkers requires the sweep to report
// the same rates for any worker count — same rule as the fitting and
// generation pipelines.
func TestPassRatesDeterministicAcrossWorkers(t *testing.T) {
	tr := worldTrace(t, 200, 3*cp.Hour, 11)
	qs := Table8Quantities()
	mk := func(w int) map[DistTest]map[cp.DeviceType]map[Quantity]float64 {
		return PassRates(tr, qs, FitTestOptions{
			Clustered: true, Cluster: cluster.Options{ThetaN: 30},
			MinSamples: 8, Workers: w,
		})
	}
	a, b := mk(1), mk(8)
	for ti := 0; ti < NumDistTests; ti++ {
		for _, d := range cp.DeviceTypes {
			for _, q := range qs {
				va, vb := a[DistTest(ti)][d][q], b[DistTest(ti)][d][q]
				if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
					t.Fatalf("%v/%v/%v: rate %v with Workers=1 vs %v with Workers=8",
						DistTest(ti), d, q, va, vb)
				}
			}
		}
	}
}

func TestVarianceTimeForBurstierThanPoisson(t *testing.T) {
	tr := worldTrace(t, 400, 12*cp.Hour, 9)
	phones := UESet(tr.UEsOfType(cp.Phone))
	vt := VarianceTimeFor(tr, phones, Quantity{Kind: QStateSojourn, State: cp.StateIdle}, 12*cp.Hour)
	if math.IsNaN(vt.LogGap) {
		t.Fatal("no variance-time data")
	}
	if vt.LogGap < 0.15 {
		t.Fatalf("IDLE completions log gap = %.3f, want clearly above Poisson", vt.LogGap)
	}
	if math.IsNaN(vt.Hurst) || vt.Hurst < 0.55 {
		t.Fatalf("IDLE completions Hurst = %.3f, want > 0.55 (long-range dependent)", vt.Hurst)
	}
}

func TestCDFvsPoissonRanges(t *testing.T) {
	tr := worldTrace(t, 300, 6*cp.Hour, 10)
	so := StateSojourns(tr, cp.Phone, cp.StateConnected)
	cmpResult, err := CDFvsPoisson(so)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 4 finding: the observed maximum far exceeds what
	// an exponential fit of the same sample size would produce.
	if cmpResult.MaxObs <= cmpResult.MaxFit {
		t.Fatalf("observed max %v should exceed fitted max %v", cmpResult.MaxObs, cmpResult.MaxFit)
	}
	if len(cmpResult.Sample.X) == 0 || len(cmpResult.Fitted.X) != len(cmpResult.Sample.X) {
		t.Fatal("series malformed")
	}
	if _, err := CDFvsPoisson(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

// TestSourceCollectionMatchesInMemory: the one-pass streaming collection
// must reproduce the in-memory results exactly — pooled samples and
// pass-rate tables alike — whether the source is the trace itself or a
// binary file.
func TestSourceCollectionMatchesInMemory(t *testing.T) {
	tr := worldTrace(t, 120, 6*cp.Hour, 17)
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinaryTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fileSrc, err := trace.NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]trace.EventSource{"trace": tr, "file": fileSrc}

	qs := []Quantity{
		{Kind: QInterArrival, Event: cp.ServiceRequest},
		{Kind: QStateSojourn, State: cp.StateIdle},
		{Kind: QRegisteredSojourn},
		{Kind: QTransSojourn, From: sm.LTESrvReqS, Event: cp.Handover},
	}
	for _, q := range qs {
		want := QuantitySamples(tr, cp.Phone, q)
		for name, src := range sources {
			got, err := QuantitySamplesSource(src, cp.Phone, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: QuantitySamplesSource(%v) = %d samples, want %d (or order differs)",
					name, q, len(got), len(want))
			}
		}
	}

	quantities := Table8Quantities()
	opt := FitTestOptions{MinSamples: 8}
	want := PassRates(tr, quantities, opt)
	for name, src := range sources {
		got, err := PassRatesSource(src, quantities, opt)
		if err != nil {
			t.Fatal(err)
		}
		for dt, byDev := range want {
			for d, byQ := range byDev {
				for q, w := range byQ {
					g, ok := got[dt][d][q]
					if !ok {
						t.Fatalf("%s: missing rate for %v/%v/%v", name, dt, d, q)
					}
					if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
						t.Fatalf("%s: rate %v/%v/%v = %v, want %v", name, dt, d, q, g, w)
					}
				}
			}
		}
	}
}

// TestCollectorIncrementalMatchesBatch pushes interleaved multi-UE
// events through per-UE collectors exactly as a Scan delivers them and
// checks the corner cases the world never hits (no Category-1 event at
// all, HO-only UEs, empty UEs).
func TestCollectorIncrementalMatchesBatch(t *testing.T) {
	tr := trace.New()
	for ue := cp.UEID(0); ue < 3; ue++ {
		if err := tr.SetDevice(ue, cp.Phone); err != nil {
			t.Fatal(err)
		}
	}
	// UE 0: normal session. UE 1: HO-only (fallback initial CONNECTED).
	// UE 2: zero events.
	evs := []trace.Event{
		{T: 1 * cp.Minute, UE: 0, Type: cp.Attach},
		{T: 2 * cp.Minute, UE: 1, Type: cp.Handover},
		{T: 3 * cp.Minute, UE: 0, Type: cp.Handover},
		{T: 4 * cp.Minute, UE: 1, Type: cp.Handover},
		{T: 5 * cp.Minute, UE: 0, Type: cp.S1ConnRelease},
		{T: 90 * cp.Minute, UE: 0, Type: cp.ServiceRequest},
	}
	for _, ev := range evs {
		tr.Append(ev)
	}
	tr.Sort()
	col, err := collectSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	perUE := tr.PerUE()
	for i, ue := range tr.UEsOfType(cp.Phone) {
		want := collectUE(perUE[ue])
		got := col.data[cp.Phone][i]
		if got == nil {
			if len(want.samples) != 0 {
				t.Fatalf("UE %d: streamed collector missing, batch has %d keys", ue, len(want.samples))
			}
			continue
		}
		if !reflect.DeepEqual(want.samples, got.samples) || want.counts != got.counts {
			t.Fatalf("UE %d: streamed collection differs from batch", ue)
		}
	}
}
