package eval

import (
	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// ueQuantities holds every fitted quantity's samples for one UE, bucketed
// by hour-of-day.
type ueQuantities struct {
	samples map[hourQuantity][]float64
	counts  [24][cp.NumEventTypes]int
}

type hourQuantity struct {
	h int8
	q Quantity
}

func (u *ueQuantities) add(h int, q Quantity, v float64) {
	u.samples[hourQuantity{int8(h), q}] = append(u.samples[hourQuantity{int8(h), q}], v)
}

// at returns the samples of quantity q in hour-of-day h.
func (u *ueQuantities) at(h int, q Quantity) []float64 {
	return u.samples[hourQuantity{int8(h), q}]
}

// features computes the adaptive-clustering features (§5.3) for hour h.
func (u *ueQuantities) features(h, days int) cluster.Features {
	conn := u.at(h, Quantity{Kind: QStateSojourn, State: cp.StateConnected})
	idle := u.at(h, Quantity{Kind: QStateSojourn, State: cp.StateIdle})
	return cluster.Features{
		cluster.FSrvReqCount: float64(u.counts[h][cp.ServiceRequest]) / float64(days),
		cluster.FConnStd:     stats.StdDev(conn),
		cluster.FS1RelCount:  float64(u.counts[h][cp.S1ConnRelease]) / float64(days),
		cluster.FIdleStd:     stats.StdDev(idle),
	}
}

// QuantitySamples pools one quantity's samples across all hours and all
// UEs of a device type. UEs are collected concurrently and pooled in
// ascending UE-id order, so the sample sequence — and any float
// reduction downstream of it — is reproducible.
func QuantitySamples(tr *trace.Trace, d cp.DeviceType, q Quantity) []float64 {
	ues := tr.UEsOfType(d)
	perUE := tr.PerUE()
	per := make([][]float64, len(ues))
	par.For(len(ues), 0, func(i int) {
		evs := perUE[ues[i]]
		if len(evs) == 0 {
			return
		}
		u := collectUE(evs)
		for h := 0; h < 24; h++ {
			per[i] = append(per[i], u.at(h, q)...)
		}
	})
	var out []float64
	for _, xs := range per {
		out = append(out, xs...)
	}
	return out
}

// collectUE walks one UE's time-ordered events and gathers every fitted
// quantity: per-type inter-arrivals, macro-state sojourns (including the
// REGISTERED macro state), and the two-level machine's bottom-transition
// sojourns.
func collectUE(evs []trace.Event) *ueQuantities {
	u := &ueQuantities{samples: make(map[hourQuantity][]float64)}
	if len(evs) == 0 {
		return u
	}
	m := sm.LTE2Level()

	// Inter-arrivals and counts. Following the paper's preprocessing,
	// the trace is divided into non-overlapping 1-hour intervals first:
	// an inter-arrival sample exists only when both endpoints fall in
	// the same interval.
	var lastOfType [cp.NumEventTypes]cp.Millis
	var lastCellOfType [cp.NumEventTypes]int
	var seen [cp.NumEventTypes]bool
	for _, ev := range evs {
		h := ev.T.HourOfDay()
		cell := ev.T.HourIndex()
		if ev.Type.Valid() {
			u.counts[h][ev.Type]++
			if seen[ev.Type] && lastCellOfType[ev.Type] == cell {
				u.add(h, Quantity{Kind: QInterArrival, Event: ev.Type},
					(ev.T - lastOfType[ev.Type]).Seconds())
			}
			lastOfType[ev.Type] = ev.T
			lastCellOfType[ev.Type] = cell
			seen[ev.Type] = true
		}
	}

	// Macro-state and REGISTERED sojourns.
	macro := sm.InferMacroInitial(evs)
	registered := macro.Registered()
	var macroAt, regAt cp.Millis
	macroHas, regHas := false, false
	for _, ev := range evs {
		if !sm.Category1(ev.Type) {
			continue
		}
		var next cp.UEState
		switch ev.Type {
		case cp.Attach, cp.ServiceRequest:
			next = cp.StateConnected
		case cp.Detach:
			next = cp.StateDeregistered
		case cp.S1ConnRelease:
			next = cp.StateIdle
		}
		h := ev.T.HourOfDay()
		if next != macro {
			if macroHas {
				u.add(h, Quantity{Kind: QStateSojourn, State: macro}, (ev.T - macroAt).Seconds())
			}
			macro = next
			macroAt, macroHas = ev.T, true
		}
		if next.Registered() != registered {
			if regHas && registered {
				u.add(h, Quantity{Kind: QRegisteredSojourn}, (ev.T - regAt).Seconds())
			}
			registered = next.Registered()
			regAt, regHas = ev.T, true
		}
	}

	// Bottom-level transition sojourns on the two-level machine.
	macro = sm.InferMacroInitial(evs)
	bottom := m.SubEntry(macro)
	var botAt cp.Millis
	botHas := false
	for _, ev := range evs {
		if sm.Category1(ev.Type) {
			var next cp.UEState
			switch ev.Type {
			case cp.Attach, cp.ServiceRequest:
				next = cp.StateConnected
			case cp.Detach:
				next = cp.StateDeregistered
			case cp.S1ConnRelease:
				next = cp.StateIdle
			}
			if next != macro {
				macro = next
				bottom = m.SubEntry(macro)
				botAt, botHas = ev.T, true
				continue
			}
		}
		if to, ok := m.Next(bottom, ev.Type); ok && m.Top(to) == macro {
			if botHas {
				u.add(ev.T.HourOfDay(),
					Quantity{Kind: QTransSojourn, From: bottom, Event: ev.Type},
					(ev.T - botAt).Seconds())
			}
			bottom = to
			botAt, botHas = ev.T, true
		}
	}
	return u
}
