package eval

import (
	"fmt"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// ueQuantities holds every fitted quantity's samples for one UE, bucketed
// by hour-of-day.
type ueQuantities struct {
	samples map[hourQuantity][]float64
	counts  [24][cp.NumEventTypes]int
}

type hourQuantity struct {
	h int8
	q Quantity
}

func (u *ueQuantities) add(h int, q Quantity, v float64) {
	u.samples[hourQuantity{int8(h), q}] = append(u.samples[hourQuantity{int8(h), q}], v)
}

// at returns the samples of quantity q in hour-of-day h.
func (u *ueQuantities) at(h int, q Quantity) []float64 {
	if u == nil {
		return nil
	}
	return u.samples[hourQuantity{int8(h), q}]
}

// features computes the adaptive-clustering features (§5.3) for hour h.
func (u *ueQuantities) features(h, days int) cluster.Features {
	if u == nil {
		return cluster.Features{}
	}
	conn := u.at(h, Quantity{Kind: QStateSojourn, State: cp.StateConnected})
	idle := u.at(h, Quantity{Kind: QStateSojourn, State: cp.StateIdle})
	return cluster.Features{
		cluster.FSrvReqCount: float64(u.counts[h][cp.ServiceRequest]) / float64(days),
		cluster.FConnStd:     stats.StdDev(conn),
		cluster.FS1RelCount:  float64(u.counts[h][cp.S1ConnRelease]) / float64(days),
		cluster.FIdleStd:     stats.StdDev(idle),
	}
}

// ueCollector gathers one UE's fitted quantities incrementally: push one
// event at a time (in the UE's time order), then finish. It fuses what
// used to be three separate passes — per-type inter-arrivals, macro and
// REGISTERED sojourns, and the two-level machine's bottom-transition
// sojourns — into a single walk; each quantity key is written by exactly
// one of the fused strands, so per-key sample order matches the
// multi-pass version exactly.
//
// The initial macro state is only decidable at the first Category-1
// event (or, failing that, from whether the UE ever hands over), so
// events buffer until the decision and replay through the same step
// logic — identical to batch inference, because the first Category-1
// event of the prefix is the first of the whole sequence.
type ueCollector struct {
	u *ueQuantities
	m *sm.Machine

	decided bool
	buf     []trace.Event

	lastOfType     [cp.NumEventTypes]cp.Millis
	lastCellOfType [cp.NumEventTypes]int
	seen           [cp.NumEventTypes]bool

	macro            cp.UEState
	registered       bool
	macroAt, regAt   cp.Millis
	macroHas, regHas bool

	botMacro cp.UEState
	bottom   sm.State
	botAt    cp.Millis
	botHas   bool
}

func newUECollector() *ueCollector {
	return &ueCollector{
		u: &ueQuantities{samples: make(map[hourQuantity][]float64)},
		m: sm.LTE2Level(),
	}
}

func (c *ueCollector) push(ev trace.Event) {
	if !c.decided {
		c.buf = append(c.buf, ev)
		if sm.Category1(ev.Type) {
			c.start()
		}
		return
	}
	c.step(ev)
}

// start fixes the initial macro state from the buffered prefix and
// replays it.
func (c *ueCollector) start() {
	c.decided = true
	macro := sm.InferMacroInitial(c.buf)
	c.macro = macro
	c.registered = macro.Registered()
	c.botMacro = macro
	c.bottom = c.m.SubEntry(macro)
	for _, ev := range c.buf {
		c.step(ev)
	}
	c.buf = nil
}

// finish completes the collection and returns the gathered quantities.
func (c *ueCollector) finish() *ueQuantities {
	if !c.decided && len(c.buf) > 0 {
		c.start()
	}
	return c.u
}

// step processes one event through all three quantity strands.
func (c *ueCollector) step(ev trace.Event) {
	h := ev.T.HourOfDay()
	cell := ev.T.HourIndex()

	// Inter-arrivals and counts. Following the paper's preprocessing,
	// the trace is divided into non-overlapping 1-hour intervals first:
	// an inter-arrival sample exists only when both endpoints fall in
	// the same interval.
	if ev.Type.Valid() {
		c.u.counts[h][ev.Type]++
		if c.seen[ev.Type] && c.lastCellOfType[ev.Type] == cell {
			c.u.add(h, Quantity{Kind: QInterArrival, Event: ev.Type},
				(ev.T - c.lastOfType[ev.Type]).Seconds())
		}
		c.lastOfType[ev.Type] = ev.T
		c.lastCellOfType[ev.Type] = cell
		c.seen[ev.Type] = true
	}

	if sm.Category1(ev.Type) {
		var next cp.UEState
		//cplint:partial-ok guarded by sm.Category1: only the four Category-1 events reach this switch
		switch ev.Type {
		case cp.Attach, cp.ServiceRequest:
			next = cp.StateConnected
		case cp.Detach:
			next = cp.StateDeregistered
		case cp.S1ConnRelease:
			next = cp.StateIdle
		}

		// Macro-state and REGISTERED sojourns.
		if next != c.macro {
			if c.macroHas {
				c.u.add(h, Quantity{Kind: QStateSojourn, State: c.macro}, (ev.T - c.macroAt).Seconds())
			}
			c.macro = next
			c.macroAt, c.macroHas = ev.T, true
		}
		if next.Registered() != c.registered {
			if c.regHas && c.registered {
				c.u.add(h, Quantity{Kind: QRegisteredSojourn}, (ev.T - c.regAt).Seconds())
			}
			c.registered = next.Registered()
			c.regAt, c.regHas = ev.T, true
		}

		// A macro change re-enters the sub-machine; the event is not a
		// bottom-level transition then.
		if next != c.botMacro {
			c.botMacro = next
			c.bottom = c.m.SubEntry(next)
			c.botAt, c.botHas = ev.T, true
			return
		}
	}

	// Bottom-level transition sojourns on the two-level machine.
	if to, ok := c.m.Next(c.bottom, ev.Type); ok && c.m.Top(to) == c.botMacro {
		if c.botHas {
			c.u.add(h, Quantity{Kind: QTransSojourn, From: c.bottom, Event: ev.Type},
				(ev.T - c.botAt).Seconds())
		}
		c.bottom = to
		c.botAt, c.botHas = ev.T, true
	}
}

// collectUE walks one UE's time-ordered events and gathers every fitted
// quantity: per-type inter-arrivals, macro-state sojourns (including the
// REGISTERED macro state), and the two-level machine's bottom-transition
// sojourns.
func collectUE(evs []trace.Event) *ueQuantities {
	if len(evs) == 0 {
		return &ueQuantities{samples: make(map[hourQuantity][]float64)}
	}
	c := newUECollector()
	for _, ev := range evs {
		c.push(ev)
	}
	return c.finish()
}

// collected holds every UE's gathered quantities, grouped by device and
// aligned with the ascending UE lists, plus the trace's day span — the
// shared input of the pass-rate sweep and sample pooling, however the
// events arrived.
type collected struct {
	ues  [cp.NumDeviceTypes][]cp.UEID
	data [cp.NumDeviceTypes][]*ueQuantities
	days int
}

func spanDays(hi cp.Millis) int {
	days := int((hi + cp.Day - 1) / cp.Day)
	if days < 1 {
		days = 1
	}
	return days
}

// collectTrace gathers every UE of an in-memory trace concurrently.
func collectTrace(tr *trace.Trace, workers int) *collected {
	_, hi := tr.Span()
	col := &collected{days: spanDays(hi)}
	perUE := tr.PerUE()
	for _, d := range cp.DeviceTypes {
		ues := tr.UEsOfType(d)
		data := make([]*ueQuantities, len(ues))
		par.For(len(ues), workers, func(i int) {
			data[i] = collectUE(perUE[ues[i]])
		})
		col.ues[d], col.data[d] = ues, data
	}
	return col
}

// collectSource gathers every UE's quantities in one pass over a
// streaming source: each UE gets an incremental collector fed as its
// events interleave in global time order, so the full event list is
// never materialized (peak memory is the collectors' samples, not the
// trace).
func collectSource(src trace.EventSource) (*collected, error) {
	devOf := make(map[cp.UEID]cp.DeviceType)
	col := &collected{}
	err := src.Devices(func(ue cp.UEID, d cp.DeviceType) error {
		if !d.Valid() {
			return fmt.Errorf("eval: UE %d has invalid device %d", ue, d)
		}
		if _, dup := devOf[ue]; dup {
			return fmt.Errorf("eval: duplicate registration for UE %d", ue)
		}
		devOf[ue] = d
		col.ues[d] = append(col.ues[d], ue)
		return nil
	})
	if err != nil {
		return nil, err
	}
	colls := make(map[cp.UEID]*ueCollector, len(devOf))
	var hi cp.Millis
	err = src.Scan(func(ev trace.Event) error {
		if _, ok := devOf[ev.UE]; !ok {
			return fmt.Errorf("eval: event for unregistered UE %d", ev.UE)
		}
		c := colls[ev.UE]
		if c == nil {
			c = newUECollector()
			colls[ev.UE] = c
		}
		c.push(ev)
		if ev.T > hi {
			hi = ev.T
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	col.days = spanDays(hi)
	for _, d := range cp.DeviceTypes {
		data := make([]*ueQuantities, len(col.ues[d]))
		for i, ue := range col.ues[d] {
			if c := colls[ue]; c != nil {
				data[i] = c.finish()
			}
		}
		col.data[d] = data
	}
	return col, nil
}

// pool gathers one quantity's samples across all hours of device d's
// UEs, in ascending UE-id order.
func (col *collected) pool(d cp.DeviceType, q Quantity) []float64 {
	var out []float64
	for _, u := range col.data[d] {
		for h := 0; h < 24; h++ {
			out = append(out, u.at(h, q)...)
		}
	}
	return out
}

// QuantitySamples pools one quantity's samples across all hours and all
// UEs of a device type. UEs are collected concurrently and pooled in
// ascending UE-id order, so the sample sequence — and any float
// reduction downstream of it — is reproducible.
func QuantitySamples(tr *trace.Trace, d cp.DeviceType, q Quantity) []float64 {
	ues := tr.UEsOfType(d)
	perUE := tr.PerUE()
	per := make([][]float64, len(ues))
	par.For(len(ues), 0, func(i int) {
		evs := perUE[ues[i]]
		if len(evs) == 0 {
			return
		}
		u := collectUE(evs)
		for h := 0; h < 24; h++ {
			per[i] = append(per[i], u.at(h, q)...)
		}
	})
	var out []float64
	for _, xs := range per {
		out = append(out, xs...)
	}
	return out
}

// QuantitySamplesSource pools the same samples QuantitySamples would,
// but from a streaming source in one pass, without materializing the
// trace.
func QuantitySamplesSource(src trace.EventSource, d cp.DeviceType, q Quantity) ([]float64, error) {
	col, err := collectSource(src)
	if err != nil {
		return nil, err
	}
	return col.pool(d, q), nil
}
