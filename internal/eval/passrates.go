package eval

import (
	"fmt"
	"math"

	"cptraffic/internal/cluster"
	"cptraffic/internal/cp"
	"cptraffic/internal/par"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// QuantityKind discriminates the per-UE quantities the paper fits.
type QuantityKind uint8

const (
	// QInterArrival is the inter-arrival time of one event type.
	QInterArrival QuantityKind = iota
	// QStateSojourn is the sojourn time in one macro state
	// (DEREGISTERED, CONNECTED, IDLE).
	QStateSojourn
	// QRegisteredSojourn is the sojourn in the REGISTERED macro state
	// (ATCH to DTCH spans).
	QRegisteredSojourn
	// QTransSojourn is the sojourn before one bottom-level transition of
	// the two-level machine (Table 10's nine transitions).
	QTransSojourn
)

// Quantity identifies one fitted quantity.
type Quantity struct {
	Kind  QuantityKind
	Event cp.EventType // QInterArrival, QTransSojourn (trigger event)
	State cp.UEState   // QStateSojourn
	From  sm.State     // QTransSojourn (two-level machine state)
}

// String names the quantity the way the paper's table headers do.
func (q Quantity) String() string {
	switch q.Kind {
	case QInterArrival:
		return q.Event.String()
	case QStateSojourn:
		return q.State.String()
	case QRegisteredSojourn:
		return "REGISTERED"
	case QTransSojourn:
		return fmt.Sprintf("%s-%s", sm.LTE2Level().StateName(q.From), q.Event)
	}
	return "?"
}

// Table8Quantities are the ten columns of Tables 8 and 9: the six event
// inter-arrivals and the four EMM/ECM state sojourns.
func Table8Quantities() []Quantity {
	out := make([]Quantity, 0, 10)
	for _, e := range cp.EventTypes {
		out = append(out, Quantity{Kind: QInterArrival, Event: e})
	}
	out = append(out,
		Quantity{Kind: QRegisteredSojourn},
		Quantity{Kind: QStateSojourn, State: cp.StateDeregistered},
		Quantity{Kind: QStateSojourn, State: cp.StateConnected},
		Quantity{Kind: QStateSojourn, State: cp.StateIdle},
	)
	return out
}

// Table10Quantities are the nine second-level transitions of Table 10.
func Table10Quantities() []Quantity {
	mk := func(from sm.State, e cp.EventType) Quantity {
		return Quantity{Kind: QTransSojourn, From: from, Event: e}
	}
	return []Quantity{
		mk(sm.LTESrvReqS, cp.Handover),
		mk(sm.LTEHoS, cp.Handover),
		mk(sm.LTETauSConn, cp.Handover),
		mk(sm.LTESrvReqS, cp.TrackingAreaUpdate),
		mk(sm.LTETauSConn, cp.TrackingAreaUpdate),
		mk(sm.LTEHoS, cp.TrackingAreaUpdate),
		mk(sm.LTES1RelS1, cp.TrackingAreaUpdate),
		mk(sm.LTES1RelS2, cp.TrackingAreaUpdate),
		mk(sm.LTETauSIdle, cp.S1ConnRelease),
	}
}

// DistTest enumerates the goodness-of-fit tests of Tables 8-10.
type DistTest uint8

const (
	// PoissonKS tests exponential inter-arrivals with Kolmogorov-Smirnov.
	PoissonKS DistTest = iota
	// PoissonAD tests exponentiality with Anderson-Darling.
	PoissonAD
	// ParetoKS tests an MLE Pareto fit with K-S.
	ParetoKS
	// WeibullKS tests an MLE Weibull fit with K-S.
	WeibullKS
	// TcplibKS tests the fixed Tcplib-style empirical reference with K-S.
	TcplibKS

	numDistTests = iota
)

// NumDistTests is the number of tests run per sample.
const NumDistTests = int(numDistTests)

var distTestNames = [NumDistTests]string{
	"Poisson (K-S)", "Poisson (A2)", "Pareto (K-S)", "Weibull (K-S)", "Tcplib (K-S)",
}

// String names the test the way the paper's tables do.
func (d DistTest) String() string {
	if int(d) < len(distTestNames) {
		return distTestNames[d]
	}
	return "?"
}

// tcplibRef is the fixed Tcplib-style empirical reference distribution.
// The original Tcplib library (Danzig & Jamin 1991) shipped empirical
// tables of wide-area TELNET inter-arrivals, which are not publicly
// redistributable in machine form; we substitute a deterministic
// synthetic table with the same character (a sub-second keystroke mode
// plus a heavy multi-second pause tail). Like the original, it is a
// fixed distribution, so virtually no cellular control-plane sample
// matches it — reproducing the ~0% pass rates of Tables 8 and 9.
var tcplibRef = buildTcplibRef()

func buildTcplibRef() *stats.QuantileTable {
	r := stats.NewRNG(0x7C9)
	xs := make([]float64, 4096)
	for i := range xs {
		if r.Float64() < 0.6 {
			xs[i] = r.Lognormal(-1.9, 1.2) // keystrokes: ~150 ms median
		} else {
			xs[i] = r.Lognormal(1.1, 1.8) // pauses: ~3 s median
		}
	}
	return stats.NewQuantileTable(xs)
}

// TcplibReference exposes the fixed reference (for tests and plots).
func TcplibReference() stats.Dist { return tcplibRef }

// runTest fits the reference distribution to the sample (where the test
// family requires it) and reports whether the sample passes at the 5%
// significance level.
func runTest(test DistTest, xs []float64) (pass, ok bool) {
	const alpha = 0.05
	switch test {
	case PoissonKS:
		fit, err := stats.FitExponential(xs)
		if err != nil {
			return false, false
		}
		return !stats.KSTest(xs, fit).Reject(alpha), true
	case PoissonAD:
		res, err := stats.ADTestExponential(xs)
		if err != nil {
			return false, false
		}
		return !res.Reject(alpha), true
	case ParetoKS:
		fit, err := stats.FitPareto(xs)
		if err != nil {
			return false, false
		}
		return !stats.KSTest(xs, fit).Reject(alpha), true
	case WeibullKS:
		fit, err := stats.FitWeibull(xs)
		if err != nil {
			return false, false
		}
		return !stats.KSTest(xs, fit).Reject(alpha), true
	case TcplibKS:
		return !stats.KSTest(xs, tcplibRef).Reject(alpha), true
	}
	return false, false
}

// FitTestOptions configures a pass-rate sweep.
type FitTestOptions struct {
	// Clustered groups UEs with the paper's adaptive clustering before
	// pooling samples (Table 9 and 10); otherwise all UEs of a device
	// type form one group per hour (Table 8).
	Clustered bool
	// Cluster configures the clustering when Clustered is set.
	Cluster cluster.Options
	// MinSamples is the smallest pooled sample a unit needs to be
	// tested (default 8).
	MinSamples int
	// Workers bounds sweep concurrency; 0 means GOMAXPROCS. The
	// independent per-UE collections, per-hour clusterings, and
	// per-(hour, group) test units are distributed over the pool and
	// reduced in deterministic order, so the worker count never changes
	// the reported rates.
	Workers int
}

// PassRates runs the goodness-of-fit sweep: for every (device type,
// hour-of-day, UE group) unit and every quantity, the pooled sample is
// fitted and tested against each distribution family; the result is the
// fraction of units passing at the 5% level.
func PassRates(tr *trace.Trace, quantities []Quantity, opt FitTestOptions) map[DistTest]map[cp.DeviceType]map[Quantity]float64 {
	return passRatesSweep(collectTrace(tr, opt.Workers), quantities, opt)
}

// PassRatesSource runs the same sweep as PassRates from a streaming
// source: the per-UE quantities are gathered in one pass over the
// events, so the trace itself is never materialized. The rates are
// identical to PassRates on the collected trace.
func PassRatesSource(src trace.EventSource, quantities []Quantity, opt FitTestOptions) (map[DistTest]map[cp.DeviceType]map[Quantity]float64, error) {
	col, err := collectSource(src)
	if err != nil {
		return nil, err
	}
	return passRatesSweep(col, quantities, opt), nil
}

// passRatesSweep is the shared back half of the sweep, independent of
// how the per-UE quantities were collected.
func passRatesSweep(col *collected, quantities []Quantity, opt FitTestOptions) map[DistTest]map[cp.DeviceType]map[Quantity]float64 {
	if opt.MinSamples <= 0 {
		opt.MinSamples = 8
	}
	out := make(map[DistTest]map[cp.DeviceType]map[Quantity]float64)
	for t := 0; t < NumDistTests; t++ {
		out[DistTest(t)] = make(map[cp.DeviceType]map[Quantity]float64)
		for _, d := range cp.DeviceTypes {
			out[DistTest(t)][d] = make(map[Quantity]float64)
		}
	}

	days := col.days

	for _, d := range cp.DeviceTypes {
		ues := col.ues[d]
		if len(ues) == 0 {
			continue
		}
		data := col.data[d]
		groups := groupUEs(ues, data, days, opt)

		// Every (hour, UE group) is an independent test unit: pool the
		// group's samples, fit, test. Units run across the worker pool;
		// each writes only its own verdict slot, and the tallies are
		// reduced serially afterwards, so the rates match the serial
		// sweep exactly.
		type unit struct {
			h int
			g []int
		}
		var units []unit
		for h := 0; h < 24; h++ {
			for _, g := range groups[h] {
				units = append(units, unit{h: h, g: g})
			}
		}
		// verdicts[u][qi*NumDistTests+t]: -1 untested, 0 fail, 1 pass.
		verdicts := make([][]int8, len(units))
		par.For(len(units), opt.Workers, func(u int) {
			v := make([]int8, len(quantities)*NumDistTests)
			for i := range v {
				v[i] = -1
			}
			for qi, q := range quantities {
				var xs []float64
				for _, i := range units[u].g {
					xs = append(xs, data[i].at(units[u].h, q)...)
				}
				if len(xs) < opt.MinSamples {
					continue
				}
				for t := 0; t < NumDistTests; t++ {
					pass, ok := runTest(DistTest(t), xs)
					if !ok {
						continue
					}
					if pass {
						v[qi*NumDistTests+t] = 1
					} else {
						v[qi*NumDistTests+t] = 0
					}
				}
			}
			verdicts[u] = v
		})

		// pass[test][quantity] = (passed units, tested units)
		type tally struct{ pass, total int }
		tallies := make(map[DistTest]map[Quantity]*tally)
		for t := 0; t < NumDistTests; t++ {
			tallies[DistTest(t)] = make(map[Quantity]*tally)
			for _, q := range quantities {
				tallies[DistTest(t)][q] = &tally{}
			}
		}
		for _, v := range verdicts {
			for qi, q := range quantities {
				for t := 0; t < NumDistTests; t++ {
					verdict := v[qi*NumDistTests+t]
					if verdict < 0 {
						continue
					}
					tl := tallies[DistTest(t)][q]
					tl.total++
					if verdict == 1 {
						tl.pass++
					}
				}
			}
		}
		for t := 0; t < NumDistTests; t++ {
			for _, q := range quantities {
				tl := tallies[DistTest(t)][q]
				if tl.total > 0 {
					out[DistTest(t)][d][q] = float64(tl.pass) / float64(tl.total)
				} else {
					out[DistTest(t)][d][q] = math.NaN()
				}
			}
		}
	}
	return out
}

// groupUEs forms the per-hour UE groups: one group of everyone (Table
// 8), or the adaptive clusters (Table 9/10). Returned values are indices
// into the data slice.
func groupUEs(ues []cp.UEID, data []*ueQuantities, days int, opt FitTestOptions) [24][][]int {
	var out [24][][]int
	if !opt.Clustered {
		all := make([]int, len(ues))
		for i := range ues {
			all[i] = i
		}
		for h := 0; h < 24; h++ {
			out[h] = [][]int{all}
		}
		return out
	}
	pos := make(map[cp.UEID]int, len(ues))
	for i, ue := range ues {
		pos[ue] = i
	}
	par.For(24, opt.Workers, func(h int) {
		pts := make([]cluster.Point, len(ues))
		for i, ue := range ues {
			pts[i] = cluster.Point{UE: ue, F: data[i].features(h, days)}
		}
		cs := cluster.Partition(pts, opt.Cluster)
		for _, c := range cs {
			idxs := make([]int, len(c.UEs))
			for j, ue := range c.UEs {
				idxs[j] = pos[ue]
			}
			out[h] = append(out[h], idxs)
		}
	})
	return out
}
