package eval

import (
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// PointProcess extracts the event times (seconds) of a quantity's point
// process, pooled over the given UEs, for variance-time analysis:
// for QInterArrival quantities the occurrences of the event type, for
// QStateSojourn the completions of visits to the state.
func PointProcess(tr *trace.Trace, ues map[cp.UEID]bool, q Quantity) []float64 {
	var times []float64
	per := tr.PerUE()
	for _, ue := range tr.UEs() {
		evs := per[ue]
		if ues != nil && !ues[ue] {
			continue
		}
		switch q.Kind {
		case QInterArrival:
			for _, ev := range evs {
				if ev.Type == q.Event {
					times = append(times, ev.T.Seconds())
				}
			}
		case QStateSojourn:
			if len(evs) == 0 {
				continue
			}
			// Completions of visits to the state: the Category-1 events
			// that leave it.
			cur := sm.InferMacroInitial(evs)
			for _, ev := range evs {
				if !sm.Category1(ev.Type) {
					continue
				}
				var next cp.UEState
				//cplint:partial-ok guarded by sm.Category1: only the four Category-1 events reach this switch
				switch ev.Type {
				case cp.Attach, cp.ServiceRequest:
					next = cp.StateConnected
				case cp.Detach:
					next = cp.StateDeregistered
				case cp.S1ConnRelease:
					next = cp.StateIdle
				}
				if next != cur {
					if cur == q.State {
						times = append(times, ev.T.Seconds())
					}
					cur = next
				}
			}
		}
	}
	return times
}

// VTComparison is one Figure 3 panel: the observed variance-time curve
// and the analytic curve of a Poisson process with the same rate.
type VTComparison struct {
	Observed []stats.VTPoint
	Poisson  []stats.VTPoint
	// LogGap is the mean log10 gap between the curves (positive:
	// burstier than Poisson).
	LogGap float64
	// Hurst is the self-similarity parameter estimated from the
	// observed curve's slope (0.5 = Poisson-like, towards 1 =
	// long-range dependent).
	Hurst float64
}

// VarianceTimeFor computes a Figure 3 panel for one quantity over the
// given UE subset (nil means all UEs) within [0, horizon).
func VarianceTimeFor(tr *trace.Trace, ues map[cp.UEID]bool, q Quantity, horizon cp.Millis) VTComparison {
	times := PointProcess(tr, ues, q)
	horizonSec := horizon.Seconds()
	opts := stats.VTOptions{}
	obs := stats.VarianceTime(times, horizonSec, opts)
	rate := float64(len(times)) / horizonSec
	ref := stats.PoissonVarianceTime(rate, opts)
	return VTComparison{
		Observed: obs,
		Poisson:  ref,
		LogGap:   stats.VTLogGap(obs, ref),
		Hurst:    stats.HurstVT(obs),
	}
}

// FitCDFComparison is one Figure 4 panel: the empirical CDF of the
// observed sample against the CDF of its fitted exponential, with the
// observed and expected value ranges the paper quotes ("the maximum
// sojourn time is around 2106.94 seconds, much higher than that of the
// fitted exponential distribution, i.e., 156.35 seconds").
type FitCDFComparison struct {
	Sample CDFSeries
	Fitted CDFSeries
	// Observed range.
	MinObs, MaxObs float64
	// Expected range of a fitted-distribution sample of the same size
	// (order-statistic medians: F^-1(1/(n+1)) and F^-1(n/(n+1))).
	MinFit, MaxFit float64
}

// CDFvsPoisson builds a Figure 4 panel from a sample.
func CDFvsPoisson(xs []float64) (FitCDFComparison, error) {
	fit, err := stats.FitExponential(xs)
	if err != nil {
		return FitCDFComparison{}, err
	}
	sample := ComputeCDF(xs)
	fitted := CDFSeries{X: make([]float64, len(sample.X)), F: make([]float64, len(sample.X))}
	for i, x := range sample.X {
		fitted.X[i] = x
		fitted.F[i] = fit.CDF(x)
	}
	n := float64(len(xs))
	e := stats.NewEmpirical(xs)
	return FitCDFComparison{
		Sample: sample,
		Fitted: fitted,
		MinObs: e.Quantile(0),
		MaxObs: e.Quantile(1),
		MinFit: fit.Quantile(1 / (n + 1)),
		MaxFit: fit.Quantile(n / (n + 1)),
	}, nil
}

// UESet builds the membership set of a UE id list.
func UESet(ues []cp.UEID) map[cp.UEID]bool {
	out := make(map[cp.UEID]bool, len(ues))
	for _, ue := range ues {
		out[ue] = true
	}
	return out
}
