package eval

import (
	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// EventsPerUE returns, for every UE of the device type (including silent
// ones), its count of events of the given type — the sample behind the
// per-UE CDFs of Table 5 and Figure 7.
func EventsPerUE(tr *trace.Trace, d cp.DeviceType, e cp.EventType) []float64 {
	ues := tr.UEsOfType(d)
	idx := make(map[cp.UEID]int, len(ues))
	for i, ue := range ues {
		idx[ue] = i
	}
	counts := make([]float64, len(ues))
	for _, ev := range tr.Events {
		if ev.Type != e {
			continue
		}
		if i, ok := idx[ev.UE]; ok {
			counts[i]++
		}
	}
	return counts
}

// StateSojourns pools the completed macro-state visit durations
// (seconds) of all UEs of the device type — the sample behind the
// CONNECTED/IDLE sojourn CDFs of Table 5.
func StateSojourns(tr *trace.Trace, d cp.DeviceType, s cp.UEState) []float64 {
	var out []float64
	per := tr.PerUE()
	for _, ue := range tr.UEs() {
		evs := per[ue]
		if tr.Device[ue] != d || len(evs) == 0 {
			continue
		}
		so := sm.MacroSojourns(evs, sm.InferMacroInitial(evs))
		out = append(out, so[s]...)
	}
	return out
}

// MicroDistances is the Table 5 row set for one device type: maximum
// y-distance between the real and synthesized CDFs of events-per-UE (the
// two dominant events) and of the sojourn times in the two dominant
// states.
type MicroDistances struct {
	SrvReqPerUE float64
	S1RelPerUE  float64
	Connected   float64
	Idle        float64
}

// ComputeMicroDistances compares a synthesized trace against the real
// one for one device type.
func ComputeMicroDistances(real, syn *trace.Trace, d cp.DeviceType) MicroDistances {
	return MicroDistances{
		SrvReqPerUE: stats.MaxYDistance(
			EventsPerUE(real, d, cp.ServiceRequest),
			EventsPerUE(syn, d, cp.ServiceRequest)),
		S1RelPerUE: stats.MaxYDistance(
			EventsPerUE(real, d, cp.S1ConnRelease),
			EventsPerUE(syn, d, cp.S1ConnRelease)),
		Connected: stats.MaxYDistance(
			StateSojourns(real, d, cp.StateConnected),
			StateSojourns(syn, d, cp.StateConnected)),
		Idle: stats.MaxYDistance(
			StateSojourns(real, d, cp.StateIdle),
			StateSojourns(syn, d, cp.StateIdle)),
	}
}

// ActivitySplit computes Table 6: the per-UE event-count y-distance
// separately for inactive UEs (at most two occurrences in the interval)
// and active UEs (more than two), for one device and event type.
func ActivitySplit(real, syn *trace.Trace, d cp.DeviceType, e cp.EventType) (inactive, active float64) {
	split := func(tr *trace.Trace) (in, act []float64) {
		for _, c := range EventsPerUE(tr, d, e) {
			if c <= 2 {
				in = append(in, c)
			} else {
				act = append(act, c)
			}
		}
		return
	}
	rIn, rAct := split(real)
	sIn, sAct := split(syn)
	return stats.MaxYDistance(rIn, sIn), stats.MaxYDistance(rAct, sAct)
}

// CDFSeries samples an empirical CDF on its own value grid for plotting
// (Figure 7): it returns (x, F(x)) pairs at every distinct sample value.
type CDFSeries struct {
	X []float64
	F []float64
}

// ComputeCDF builds the plot series of a sample's empirical CDF.
func ComputeCDF(xs []float64) CDFSeries {
	if len(xs) == 0 {
		return CDFSeries{}
	}
	e := stats.NewEmpirical(xs)
	vals := e.Values()
	var out CDFSeries
	for i := 0; i < len(vals); i++ {
		if i+1 < len(vals) && vals[i+1] == vals[i] {
			continue
		}
		out.X = append(out.X, vals[i])
		out.F = append(out.F, float64(i+1)/float64(len(vals)))
	}
	return out
}
