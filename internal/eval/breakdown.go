// Package eval computes the paper's evaluation artifacts from traces:
// macroscopic event breakdowns (Tables 1, 4, 7, 11), microscopic per-UE
// CDF distances (Tables 5, 6, Figure 7), goodness-of-fit pass-rate sweeps
// (Tables 8, 9, 10), variance-time curves (Figure 3), CDF-vs-fit series
// (Figure 4), and per-device-hour distribution summaries (Figure 2).
package eval

import (
	"sort"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// BreakdownKeys are the row labels of the paper's breakdown tables, in
// presentation order: the four Category-1 events plus HO and TAU split by
// the macro state they fired in.
var BreakdownKeys = []string{
	"ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL",
	"HO (CONN.)", "HO (IDLE)", "TAU (CONN.)", "TAU (IDLE)",
}

// Breakdown is the event-share decomposition of one device type's
// traffic.
type Breakdown struct {
	// Share maps each BreakdownKey to its fraction of total events.
	Share map[string]float64
	// Total is the event count the shares are relative to.
	Total int
}

// ComputeBreakdown decomposes the events of all UEs of the given device
// type, attributing HO and TAU to the macro state they occurred in (via
// Category-1 tracking, so it is robust to protocol-violating traces from
// the baseline methods).
func ComputeBreakdown(tr *trace.Trace, d cp.DeviceType) Breakdown {
	counts := make(map[string]int, len(BreakdownKeys))
	total := 0
	per := tr.PerUE()
	for _, ue := range tr.UEs() {
		evs := per[ue]
		if tr.Device[ue] != d || len(evs) == 0 {
			continue
		}
		b := sm.MacroBreakdown(evs, sm.InferMacroInitial(evs))
		for _, e := range cp.EventTypes {
			states := b[e]
			for s := 0; s < cp.NumUEStates; s++ {
				c := states[cp.UEState(s)]
				counts[breakdownKey(e, cp.UEState(s))] += c
				total += c
			}
		}
	}
	out := Breakdown{Share: make(map[string]float64, len(BreakdownKeys)), Total: total}
	for _, k := range BreakdownKeys {
		if total > 0 {
			out.Share[k] = float64(counts[k]) / float64(total)
		}
	}
	return out
}

func breakdownKey(e cp.EventType, s cp.UEState) string {
	switch e {
	case cp.Handover:
		if s == cp.StateIdle {
			return "HO (IDLE)"
		}
		return "HO (CONN.)"
	case cp.TrackingAreaUpdate:
		if s == cp.StateIdle {
			return "TAU (IDLE)"
		}
		return "TAU (CONN.)"
	default: // only HO and TAU split by macro state in Tables 4 and 11
		return e.String()
	}
}

// BreakdownDiff returns synthesized-minus-real share differences per row
// (the signed percentages of Tables 4 and 11).
func BreakdownDiff(real, syn Breakdown) map[string]float64 {
	out := make(map[string]float64, len(BreakdownKeys))
	for _, k := range BreakdownKeys {
		out[k] = syn.Share[k] - real.Share[k]
	}
	return out
}

// MaxAbsDiff returns the largest absolute share difference across rows —
// the single-number summary the paper quotes ("within 1.7%, 5.0% and
// 0.8%").
func MaxAbsDiff(diff map[string]float64) float64 {
	var max float64
	for _, k := range BreakdownKeys {
		v := diff[k]
		if v < 0 {
			v = -v
		}
		if v > max {
			max = v
		}
	}
	return max
}

// SimpleBreakdown returns per-event-type shares without the macro-state
// split (the paper's Table 1 format).
func SimpleBreakdown(tr *trace.Trace, d cp.DeviceType) ([cp.NumEventTypes]float64, int) {
	sub := tr.FilterDevice(d)
	c := sub.CountByType()
	var shares [cp.NumEventTypes]float64
	total := sub.Len()
	if total == 0 {
		return shares, 0
	}
	for e, n := range c {
		shares[e] = float64(n) / float64(total)
	}
	return shares, total
}

// HourCounts returns, for one device type and event type, the per-UE
// event counts for every hour-of-day — the data behind the Figure 2 box
// plots. Index: [hour][ue-index]; every UE of the device type appears in
// every hour (zeros included), so box statistics cover silent UEs.
func HourCounts(tr *trace.Trace, d cp.DeviceType, e cp.EventType, days int) [24][]float64 {
	ues := tr.UEsOfType(d)
	idx := make(map[cp.UEID]int, len(ues))
	for i, ue := range ues {
		idx[ue] = i
	}
	if days < 1 {
		days = 1
	}
	var perHour [24][]int
	for h := range perHour {
		perHour[h] = make([]int, len(ues))
	}
	for _, ev := range tr.Events {
		i, ok := idx[ev.UE]
		if !ok || ev.Type != e {
			continue
		}
		perHour[ev.T.HourOfDay()][i]++
	}
	var out [24][]float64
	for h := range perHour {
		out[h] = make([]float64, len(ues))
		for i, c := range perHour[h] {
			out[h][i] = float64(c) / float64(days)
		}
	}
	return out
}

// BoxStats summarizes a sample the way the paper's box plots do.
type BoxStats struct {
	Min, Q1, Median, Mean, Q3, Max float64
}

// ComputeBoxStats returns the five-number summary plus the mean.
func ComputeBoxStats(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		h := p * float64(len(s)-1)
		i := int(h)
		if i+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[i] + (h-float64(i))*(s[i+1]-s[i])
	}
	var sum float64
	for _, x := range s {
		sum += x
	}
	return BoxStats{
		Min:    s[0],
		Q1:     q(0.25),
		Median: q(0.5),
		Mean:   sum / float64(len(s)),
		Q3:     q(0.75),
		Max:    s[len(s)-1],
	}
}
