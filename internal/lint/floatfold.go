package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFold flags order-sensitive floating-point reductions: compound
// assignments (`+=`, `-=`, `*=`, `/=`) on float lvalues whose
// accumulation order is not fixed — inside the body of a range over a
// map, or inside a closure passed to par.Do / par.For. Float addition
// and multiplication are not associative, so the iteration or
// scheduling order changes the last ulp of the result, which changes
// the saved model bytes: exactly the drift class the fitting
// pipeline's build() step once exhibited and now avoids by folding
// over sorted keys.
//
// A fold is exempt when its target cannot carry state across
// orderings: a variable declared inside the loop or closure, or a map
// slot addressed by the iteration key (each key owns its slot). In par
// closures, an element write whose index involves a closure-local
// variable is index-disjoint under the pool's unique-index contract
// and therefore deterministic.
//
// Deliberately order-tolerant folds are annotated
// //cplint:partial-ok <reason> on the assignment; a map-range already
// annotated //cplint:ordered-ok <reason> is also honored, since that
// annotation asserts the whole loop body is order-insensitive and
// carries its own machine-checked justification.
//
// The check runs module-wide: a float fold in a CLI drifts the
// printed summary just as surely as one in the core drifts the model.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc:  "flags order-sensitive float reductions in map ranges and par closures",
	Run:  runFloatFold,
}

func runFloatFold(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapRangeStmt(info, n) {
					checkFoldMapRange(pass, n)
					return false // folds inside are judged against this range
				}
			case *ast.CallExpr:
				if lit := parClosureArg(info, n); lit != nil {
					checkFoldParClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

func isMapRangeStmt(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// parClosureArg returns the func literal passed as the worker of a
// par.Do / par.For call, or nil.
func parClosureArg(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !isParPackage(fn.Pkg().Path()) {
		return nil
	}
	argPos, ok := parCallees[fn.Name()]
	if !ok || argPos >= len(call.Args) {
		return nil
	}
	lit, _ := call.Args[argPos].(*ast.FuncLit)
	return lit
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// foldToken reports whether tok is a compound assignment whose float
// result depends on evaluation order.
func foldToken(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func checkFoldMapRange(pass *Pass, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	// The ordered-ok annotation on the range asserts order-insensitivity
	// for the whole body, reason checked by validateDirectives; it
	// suppresses this check the same way it suppresses detmap.
	ordered := directiveAt(pass.Pkg, DirOrderedOK, rs.For) != nil

	key := rangeVarObj(info, rs.Key)
	usesKey := func(e ast.Expr) bool {
		if key == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == key {
				found = true
			}
			return !found
		})
		return found
	}
	local := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRangeStmt(info, inner) {
			checkFoldMapRange(pass, inner)
			return false // judged against the inner range's own order
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || !foldToken(as.Tok) || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(info.TypeOf(lhs)) {
			return true
		}
		root, keyed := writeRoot(info, lhs, usesKey)
		if root == nil || local(root) || keyed {
			return true
		}
		if ordered {
			return true
		}
		if d := directiveAt(pass.Pkg, DirPartialOK, as.Pos()); d != nil {
			return true
		}
		pass.Reportf(as.Pos(),
			"%s %s folds a float in map iteration order; the sum's last ulp (and any bytes derived from it) depends on the order — fold over sorted keys, accumulate into a key-addressed slot, or annotate //cplint:partial-ok <reason>",
			types.ExprString(lhs), as.Tok.String())
		return true
	})
}

func checkFoldParClosure(pass *Pass, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	closureLocal := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() < lit.End()
	}
	// usesLocal treats any index touching a closure-local variable as
	// index-disjoint, mirroring parshare's contract: the pool hands each
	// worker a unique index, so slots addressed through it are private.
	usesLocal := func(e ast.Expr) bool {
		ok := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, isID := n.(*ast.Ident); isID {
				if v, isVar := info.Uses[id].(*types.Var); isVar && closureLocal(v) {
					ok = true
				}
			}
			return !ok
		})
		return ok
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !foldToken(as.Tok) || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(info.TypeOf(lhs)) {
			return true
		}
		root, disjoint := writeRoot(info, lhs, usesLocal)
		if root == nil || closureLocal(root) || disjoint {
			return true
		}
		if d := directiveAt(pass.Pkg, DirPartialOK, as.Pos()); d != nil {
			return true
		}
		pass.Reportf(as.Pos(),
			"%s %s folds a float across par workers in scheduling order; accumulate into a slot indexed by the worker's index and reduce serially, or annotate //cplint:partial-ok <reason>",
			types.ExprString(lhs), as.Tok.String())
		return true
	})
}
