package lint

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// allFixturePaths lists every fixture package, so the parallel loader
// and analyzer runs exercise a real dependency fan (cluster, sm, and
// report all import other fixture packages).
var allFixturePaths = []string{
	"cptraffic/internal/cluster",
	"cptraffic/internal/concneg",
	"cptraffic/internal/core",
	"cptraffic/internal/cp",
	"cptraffic/internal/ctxflow",
	"cptraffic/internal/eval",
	"cptraffic/internal/ffold",
	"cptraffic/internal/fiveg",
	"cptraffic/internal/guarded",
	"cptraffic/internal/hot",
	"cptraffic/internal/hotchain",
	"cptraffic/internal/mcn",
	"cptraffic/internal/par",
	"cptraffic/internal/report",
	"cptraffic/internal/retainneg",
	"cptraffic/internal/sink",
	"cptraffic/internal/sm",
	"cptraffic/internal/stats",
	"cptraffic/internal/trace",
	"cptraffic/internal/util",
	"cptraffic/internal/world",
}

func diagString(diags []Diagnostic) string {
	var b bytes.Buffer
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}

// TestAnalyzeWorkerCountIndependent pins the satellite invariant: the
// analysis fan-out must never change the output bytes.
func TestAnalyzeWorkerCountIndependent(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.LoadPaths(allFixturePaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	base := diagString(AnalyzeWorkers(pkgs, All(), 1))
	if base == "" {
		t.Fatal("fixture analysis produced no diagnostics; the comparison is vacuous")
	}
	// The call-graph-backed analyzers must be part of the comparison:
	// their substrate is built once before the fan-out, and this is the
	// test that pins that choice.
	for _, name := range []string{" retain: ", " hotcall: ", " guardedby: ", " goleak: ", " ctxflow: "} {
		if !strings.Contains(base, name) {
			t.Errorf("baseline diagnostics carry no%sfindings; the call-graph coverage is vacuous", name)
		}
	}
	for _, workers := range []int{0, 2, 3, 16} {
		if got := diagString(AnalyzeWorkers(pkgs, All(), workers)); got != base {
			t.Errorf("workers=%d changed the diagnostics:\n--- workers=1\n%s--- workers=%d\n%s", workers, base, workers, got)
		}
	}
}

// TestLoaderWorkerCountIndependent type-checks the whole fixture tree
// on a fresh parallel loader and checks the diagnostics match a fresh
// serial loader's byte for byte — the worker count shapes only the
// schedule, never the result. Under -race this also exercises the
// loader's concurrent type-checking.
func TestLoaderWorkerCountIndependent(t *testing.T) {
	load := func(workers int) string {
		l := &Loader{Workers: workers}
		if err := l.AddFixtureTree(filepath.Join("testdata", "src")); err != nil {
			t.Fatalf("fixture tree: %v", err)
		}
		pkgs, err := l.LoadPaths(allFixturePaths...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return diagString(AnalyzeWorkers(pkgs, All(), workers))
	}
	serial := load(1)
	if parallel := load(8); parallel != serial {
		t.Errorf("parallel loader changed the diagnostics:\n--- serial\n%s--- parallel\n%s", serial, parallel)
	}
}
