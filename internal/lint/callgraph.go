package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// This file is the shared interprocedural substrate for the
// call-graph-backed analyzers (retain, hotcall): a deterministic,
// module-local call graph over the packages the loader already
// type-checked, with class-hierarchy analysis (CHA) for interface
// dispatch and flow-insensitive, bitmask-based escape summaries per
// function.
//
// Everything here is computed once, serially, before the per-package
// analyzer fan-out (see AnalyzeWorkers), so the result — and therefore
// the diagnostics built on it — cannot depend on the worker count.
// Passes only read the graph; the one lazily-filled cache (CHA
// implementer lists) is mutex-guarded and its contents are a pure
// function of the type information, so late fills cannot change any
// answer.

// A Graph is the call-graph + dataflow substrate over one analysis run.
type Graph struct {
	pkgs  []*Package // analyzed packages plus transitive non-stdlib deps, sorted by path
	funcs map[*types.Func]*GraphFunc
	order []*GraphFunc // deterministic: package path, then file, then declaration order

	// reused holds the types annotated //cplint:reused: the
	// buffer-reuse contract types whose values retain tracks.
	reused map[*types.TypeName]*Directive

	// guarded maps each //cplint:guardedby-annotated struct field to
	// its guard: the sibling mutex field accesses must hold.
	guarded map[*types.Var]*guardInfo

	// lockDiags holds the guardedby findings, computed serially by the
	// lock-state fixpoint and emitted per package by the analyzer.
	lockDiags map[*Package][]lockDiag

	// closedChans and waitedGroups record, by object identity, every
	// channel some function in the closure closes and every
	// sync.WaitGroup some function Waits on — goleak's termination
	// witnesses. Selector chains contribute both their field object and
	// their root object.
	closedChans  map[types.Object]bool
	waitedGroups map[types.Object]bool

	// named lists every non-interface named type in the closure, in
	// deterministic order — the CHA candidate set.
	named []*types.Named

	inClosure map[*types.Package]bool

	mu  sync.Mutex
	cha map[*types.Func][]*GraphFunc //cplint:guardedby mu
}

// A GraphFunc is one function or method declaration in the graph.
type GraphFunc struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Hot  bool // declared //cplint:hotpath
	Cold bool // declared //cplint:coldpath

	edges []callEdge
	cold  []posRange // early-exit branch ranges of the body

	sum retSummary

	hotRoot bool       // a hot root itself
	hotFrom *GraphFunc // BFS parent on the first hot chain that reached it

	// lockEntry[i] is the set of mutex fields (with held level) that are
	// provably held on every call, for the object passed as
	// receiver-first parameter i. nil until the guardedby fixpoint runs.
	lockEntry []map[*types.Var]int

	// lockSites are the function's resolved call sites with the lock
	// state at each, recorded by the final guardedby walk for the
	// unlocked-chain witness search.
	lockSites []lockSite
}

type callEdge struct {
	pos     token.Pos
	callees []*GraphFunc
}

type posRange struct{ from, to token.Pos }

// retSummary is one function's escape summary in terms of its
// receiver-first parameter list: bit i stands for parameter i (capped
// at 64; spill parameters simply go untracked).
type retSummary struct {
	escapes uint64         // parameter bits that flow somewhere outliving every frame
	toRet   uint64         // parameter bits that flow into the return values
	into    map[int]uint64 // into[j]: parameter bits stored into the object parameter j points to
	note    map[int]string // per escaping bit: what happened, for call-site diagnostics
}

func (s retSummary) equal(o retSummary) bool {
	if s.escapes != o.escapes || s.toRet != o.toRet || len(s.into) != len(o.into) {
		return false
	}
	for k, v := range s.into {
		if o.into[k] != v {
			return false
		}
	}
	return true
}

// buildGraph constructs the substrate: closure, function index, reused
// types, call edges, escape summaries (to a global fixpoint), and the
// hot-path reachability forest. It also claims the graph-level
// directives (hotpath, coldpath, reused) so hygiene validation knows
// they are attached.
func buildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		funcs:        make(map[*types.Func]*GraphFunc),
		reused:       make(map[*types.TypeName]*Directive),
		guarded:      make(map[*types.Var]*guardInfo),
		lockDiags:    make(map[*Package][]lockDiag),
		closedChans:  make(map[types.Object]bool),
		waitedGroups: make(map[types.Object]bool),
		inClosure:    make(map[*types.Package]bool),
		cha:          make(map[*types.Func][]*GraphFunc),
	}

	// Closure: the analyzed packages plus every transitive non-stdlib
	// dependency, so fixture stubs and cross-package helpers have
	// bodies in the graph even when only one package is analyzed.
	seen := make(map[string]*Package)
	var grow func(p *Package)
	grow = func(p *Package) {
		if p == nil || p.std || seen[p.Path] != nil {
			return
		}
		seen[p.Path] = p
		for _, d := range p.deps {
			grow(d)
		}
	}
	for _, p := range pkgs {
		grow(p)
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		g.pkgs = append(g.pkgs, seen[p])
		if tp := seen[p].Types; tp != nil {
			g.inClosure[tp] = true
		}
	}

	for _, pkg := range g.pkgs {
		g.indexPackage(pkg)
	}
	for _, fn := range g.order {
		fn.cold = coldRanges(fn.Decl.Body)
		g.buildEdges(fn)
	}
	g.fixpointSummaries()
	g.propagateHot()
	g.collectSignals()
	g.lockcheck()
	return g
}

// indexPackage registers the package's function declarations and
// reused-type markers, claiming hotpath/coldpath/reused directives.
func (g *Graph) indexPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if obj == nil || d.Body == nil {
					continue
				}
				gf := &GraphFunc{Obj: obj, Decl: d, Pkg: pkg}
				gf.Hot = claimDoc(pkg, DirHotPath, d.Doc, d.Pos()) != nil
				gf.Cold = claimDoc(pkg, DirColdPath, d.Doc, d.Pos()) != nil
				g.funcs[obj] = gf
				g.order = append(g.order, gf)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						g.indexGuardedFields(pkg, ts, st)
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					dir := claimDoc(pkg, DirReused, doc, ts.Pos())
					if dir == nil {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						g.reused[tn] = dir
					}
				}
			}
		}
	}
	// CHA candidates: every named non-interface type in the package
	// scope, in name order.
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		g.named = append(g.named, named)
	}
}

// resolvedCall is one call site's resolution: the possible callees in
// the graph and, for method-value calls, the receiver expression
// (which occupies parameter slot 0 of the callee).
type resolvedCall struct {
	callees []*GraphFunc
	recv    ast.Expr
}

// resolve maps a call expression to its possible graph callees: one
// for a static call, the CHA implementer set for a call through a
// module-local interface, none for dynamic calls (func values),
// builtins, conversions, and out-of-closure targets.
func (g *Graph) resolve(pkg *Package, call *ast.CallExpr) resolvedCall {
	info := pkg.Info
	switch fun := unparenExpr(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			if gf := g.funcs[f]; gf != nil {
				return resolvedCall{callees: []*GraphFunc{gf}}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return resolvedCall{}
			}
			switch sel.Kind() {
			case types.MethodVal:
				if types.IsInterface(sel.Recv()) {
					return resolvedCall{callees: g.implementers(m), recv: fun.X}
				}
				if gf := g.funcs[m]; gf != nil {
					return resolvedCall{callees: []*GraphFunc{gf}, recv: fun.X}
				}
			case types.MethodExpr:
				// T.m used as a function: the receiver is args[0].
				if gf := g.funcs[m]; gf != nil {
					return resolvedCall{callees: []*GraphFunc{gf}}
				}
			}
			return resolvedCall{}
		}
		// Qualified identifier pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if gf := g.funcs[f]; gf != nil {
				return resolvedCall{callees: []*GraphFunc{gf}}
			}
		}
	}
	return resolvedCall{}
}

// implementers returns the graph functions implementing an interface
// method, found by CHA over the closure's named types. Only
// module-local interfaces resolve (BatchSource, BatchSink,
// EventSource, ...); stdlib interfaces yield nothing. The cache is a
// pure function of type information, so lazy fills are
// order-independent.
func (g *Graph) implementers(m *types.Func) []*GraphFunc {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.cha[m]; ok {
		return r
	}
	var out []*GraphFunc
	if m.Pkg() != nil && g.inClosure[m.Pkg()] {
		sig, _ := m.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				for _, named := range g.named {
					ptr := types.NewPointer(named)
					if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
						continue
					}
					obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), m.Name())
					if f, ok := obj.(*types.Func); ok {
						if gf := g.funcs[f]; gf != nil {
							out = append(out, gf)
						}
					}
				}
			}
		}
	}
	g.cha[m] = out
	return out
}

// buildEdges records the call sites of one function body.
func (g *Graph) buildEdges(fn *GraphFunc) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if rc := g.resolve(fn.Pkg, call); len(rc.callees) > 0 {
			fn.edges = append(fn.edges, callEdge{pos: call.Pos(), callees: rc.callees})
		}
		return true
	})
}

// fixpointSummaries computes every function's escape summary to a
// global fixpoint: summaries only grow, functions are processed in
// deterministic order, so the result is unique.
func (g *Graph) fixpointSummaries() {
	for round := 0; round < 32; round++ {
		changed := false
		for _, fn := range g.order {
			s := g.summarize(fn)
			if !s.equal(fn.sum) {
				fn.sum = s
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// summarize runs the taint walk over one function body in summary mode.
func (g *Graph) summarize(fn *GraphFunc) retSummary {
	sig, _ := fn.Obj.Type().(*types.Signature)
	if sig == nil {
		return retSummary{}
	}
	t := newTaint(g, fn.Pkg, fn.Decl, fn.Decl.Body, sig)
	t.run()
	return t.sum
}

// propagateHot BFSes the //cplint:hotpath contract through the graph:
// every function reachable from a hot root over non-cold call sites —
// and not itself annotated hotpath or coldpath — gets a parent pointer
// naming the first chain that reached it.
func (g *Graph) propagateHot() {
	var queue []*GraphFunc
	for _, f := range g.order {
		if f.Hot {
			f.hotRoot = true
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, e := range f.edges {
			if f.coldAt(e.pos) {
				continue
			}
			for _, c := range e.callees {
				if c.hotRoot || c.Cold || c.hotFrom != nil {
					continue
				}
				c.hotFrom = f
				queue = append(queue, c)
			}
		}
	}
}

// chainOf returns the hot call chain root → ... → f.
func (g *Graph) chainOf(f *GraphFunc) []*GraphFunc {
	var rev []*GraphFunc
	for n := f; n != nil; n = n.hotFrom {
		rev = append(rev, n)
		if n.hotRoot {
			break
		}
	}
	out := make([]*GraphFunc, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// displayName renders a function for diagnostics: Name or Type.Method.
func (f *GraphFunc) displayName() string {
	sig, _ := f.Obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + f.Obj.Name()
		}
	}
	return f.Obj.Name()
}

func chainString(chain []*GraphFunc) string {
	s := ""
	for i, f := range chain {
		if i > 0 {
			s += " → "
		}
		s += f.displayName()
	}
	return s
}

func (f *GraphFunc) coldAt(pos token.Pos) bool {
	for _, r := range f.cold {
		if r.from <= pos && pos < r.to {
			return true
		}
	}
	return false
}

// coldRanges collects the early-exit branches of a body: if/else
// blocks and switch/select clauses whose statement list ends by
// returning or panicking. hotcall treats these as off the steady path
// — error handling and one-shot growth allocate there without
// poisoning the whole call chain. (Annotating a function
// //cplint:hotpath explicitly re-enables strict, whole-body checking
// via hotalloc.)
func coldRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	add := func(list []ast.Stmt) {
		if terminates(list) {
			out = append(out, posRange{list[0].Pos(), list[len(list)-1].End()})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			add(n.Body.List)
			if eb, ok := n.Else.(*ast.BlockStmt); ok {
				add(eb.List)
			}
		case *ast.CaseClause:
			add(n.Body)
		case *ast.CommClause:
			add(n.Body)
		}
		return true
	})
	return out
}

// terminates reports whether a statement list ends by returning or
// panicking.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparenExpr(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---- type predicates ----

// isReusedType reports whether t (or its pointee) is a //cplint:reused
// type.
func (g *Graph) isReusedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		_, ok := g.reused[n.Obj()]
		return ok
	}
	return false
}

// hasReusedParam reports whether the signature takes a reused-type
// parameter (receiver included): the definition of a retain frame.
func (g *Graph) hasReusedParam(sig *types.Signature) bool {
	for _, p := range paramVars(sig) {
		if g.isReusedType(p.Type()) {
			return true
		}
	}
	return false
}

// paramVars returns the receiver-first full parameter list.
func paramVars(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// pointerful reports whether values of t can carry references —
// whether an assignment of t aliases rather than copies underlying
// storage. Strings are immutable and count as value-like.
func pointerful(t types.Type) bool {
	return pointerfulDepth(t, 0)
}

func pointerfulDepth(t types.Type, d int) bool {
	if t == nil {
		return false
	}
	if d > 8 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerfulDepth(u.Field(i).Type(), d+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerfulDepth(u.Elem(), d+1)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if pointerfulDepth(u.At(i).Type(), d+1) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// elemType returns the element type delivered by ranging/indexing t.
func elemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Pointer:
		return elemType(u.Elem())
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	case *types.Basic:
		return nil // string: bytes are value-like
	}
	return nil
}
