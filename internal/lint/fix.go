package lint

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one, gofmts each touched file, and writes it back. Edits are
// applied per file from the highest offset down so earlier offsets
// stay valid; overlapping edits (two fixes rewriting the same bytes)
// keep the first in diagnostic order and drop the rest, which the next
// run then re-evaluates — running -fix to a fixed point is safe
// because a fix resolves its diagnostic, so a second run has nothing
// left to apply.
//
// Returns the fixed file names (sorted) and the number of fixes
// applied.
func ApplyFixes(diags []Diagnostic) (files []string, applied int, err error) {
	type edit struct {
		start, end int
		new        string
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			perFile[e.Pos.Filename] = append(perFile[e.Pos.Filename], edit{e.Pos.Offset, e.End.Offset, e.New})
		}
	}
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)

	var fixed []string
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return fixed, applied, err
		}
		edits := perFile[name]
		// Stable order: by start offset, ties keep diagnostic order.
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		kept := edits[:0]
		lastEnd := -1
		for _, e := range edits {
			if e.start < lastEnd || e.start < 0 || e.end > len(src) || e.end < e.start {
				continue // overlapping or out of range: defer to the next run
			}
			kept = append(kept, e)
			lastEnd = e.end
			if e.end == e.start {
				lastEnd = e.end + 1 // two insertions at one point would reorder; keep the first
			}
		}
		out := src
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			out = append(out[:e.start:e.start], append([]byte(e.new), out[e.end:]...)...)
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return fixed, applied, fmt.Errorf("fix for %s does not parse: %v", name, ferr)
		}
		if err := os.WriteFile(name, formatted, 0o644); err != nil {
			return fixed, applied, err
		}
		fixed = append(fixed, name)
		applied += len(kept)
	}
	return fixed, applied, nil
}
