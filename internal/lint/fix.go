package lint

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one, gofmts each touched file, and writes it back. Edits are
// applied per file from the highest offset down so earlier offsets
// stay valid.
//
// Overlap policy: two edits from the SAME analyzer on the same span
// keep the first in diagnostic order and drop the rest — the next run
// re-evaluates what is left, and running -fix to a fixed point is safe
// because a fix resolves its diagnostic. Two edits from DIFFERENT
// analyzers on the same span are refused outright, before any file is
// written: neither analyzer can know what the merged text means, and
// last-write-wins would silently corrupt one of the fixes. The error
// names the file, line, and both analyzers so a human can pick.
//
// Returns the fixed file names (sorted) and the number of fixes
// applied.
func ApplyFixes(diags []Diagnostic) (files []string, applied int, err error) {
	type edit struct {
		start, end int
		new        string
		analyzer   string
		line       int
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			perFile[e.Pos.Filename] = append(perFile[e.Pos.Filename],
				edit{e.Pos.Offset, e.End.Offset, e.New, d.Analyzer, e.Pos.Line})
		}
	}
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)

	// Validate every file before writing any: a cross-analyzer
	// collision anywhere refuses the whole run, leaving the tree
	// untouched.
	keptPerFile := make(map[string][]edit, len(files))
	for _, name := range files {
		edits := perFile[name]
		// Stable order: by start offset, ties keep diagnostic order.
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		kept := edits[:0]
		lastEnd := -1
		lastBy := ""
		for _, e := range edits {
			overlaps := e.start < lastEnd
			if overlaps && e.analyzer != lastBy {
				return nil, 0, fmt.Errorf("%s:%d: overlapping fixes from analyzers %s and %s; apply one, re-run cplint, then the other",
					name, e.line, lastBy, e.analyzer)
			}
			if overlaps || e.start < 0 || e.end < e.start {
				continue // same-analyzer overlap or malformed: defer to the next run
			}
			kept = append(kept, e)
			lastEnd = e.end
			lastBy = e.analyzer
			if e.end == e.start {
				lastEnd = e.end + 1 // two insertions at one point would reorder; keep the first
			}
		}
		keptPerFile[name] = kept
	}

	var fixed []string
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return fixed, applied, err
		}
		kept := keptPerFile[name]
		n := 0
		out := src
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			if e.end > len(src) {
				continue // out of range for the file on disk: defer to the next run
			}
			out = append(out[:e.start:e.start], append([]byte(e.new), out[e.end:]...)...)
			n++
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return fixed, applied, fmt.Errorf("fix for %s does not parse: %v", name, ferr)
		}
		if err := os.WriteFile(name, formatted, 0o644); err != nil {
			return fixed, applied, err
		}
		fixed = append(fixed, name)
		applied += n
	}
	return fixed, applied, nil
}
