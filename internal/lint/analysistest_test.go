package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: fixture packages
// live under testdata/src/<import-path>, and expected diagnostics are
// `// want "regexp"` comments on the line they are reported at. One
// loader is shared across all tests so the standard library is
// type-checked once per test process.

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader = &Loader{}
		loaderErr = loader.AddFixtureTree(filepath.Join("testdata", "src"))
	})
	if loaderErr != nil {
		t.Fatalf("loading fixture tree: %v", loaderErr)
	}
	return loader
}

// runFixture analyzes one fixture package with the given analyzers and
// checks its diagnostics against the package's want comments.
func runFixture(t *testing.T, analyzers []*Analyzer, path string) []Diagnostic {
	t.Helper()
	l := fixtureLoader(t)
	pkgs, err := l.LoadPaths(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	diags := Analyze(pkgs, analyzers)
	checkWants(t, l.Fset(), pkgs[0], diags)
	return diags
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses the sequence of quoted regexps after "// want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: want expectations must be quoted strings, got %q", pos, s)
		}
		q, rest, err := cutQuoted(s)
		if err != nil {
			t.Fatalf("%s: %v in %q", pos, err, s)
		}
		out = append(out, q)
		s = strings.TrimSpace(rest)
	}
	return out
}

func cutQuoted(s string) (string, string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			q, err := strconv.Unquote(s[:i+1])
			return q, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func checkWants(t *testing.T, fset *token.FileSet, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
