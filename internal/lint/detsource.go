package lint

import (
	"go/ast"
	"go/types"
)

// DetSource forbids ambient nondeterminism sources — wall clocks,
// process environment, and the math/rand global source — inside the
// determinism-critical packages. Seeds and clocks must flow in through
// parameters (stats.RNG carries the seed; event times come from the
// trace), so that the same inputs always produce the same output
// bytes. CLIs under cmd/ may read clocks and the environment freely;
// they are exempt because the gate only covers DetPackages.
//
// Explicit-source constructors (rand.New, rand.NewSource, rand.NewPCG,
// rand.NewZipf) are allowed: a seeded source is deterministic. Every
// package-level math/rand function draws from the process-global
// source and is banned, as is referencing one as a function value.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "forbids wall clocks, environment reads, and global rand in determinism-critical packages",
	Run:  runDetSource,
}

// bannedFuncs maps package path -> function name -> replacement hint.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "take the time as a parameter (cp.Millis flows through the pipeline)",
		"Since": "compute durations from parameter-passed timestamps",
		"Until": "compute durations from parameter-passed timestamps",
	},
	"os": {
		"Getenv":    "thread configuration through options structs",
		"LookupEnv": "thread configuration through options structs",
		"Environ":   "thread configuration through options structs",
	},
}

// randConstructors are the explicit-source math/rand functions that
// remain allowed; everything else at package level draws from the
// global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetSource(pass *Pass) error {
	if !inDetPackage(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. t.Sub on a passed-in time) are fine
			}
			path, name := fn.Pkg().Path(), fn.Name()
			if hint, bad := bannedFuncs[path][name]; bad {
				pass.Reportf(sel.Pos(), "%s.%s is nondeterministic; %s", path, name, hint)
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
				pass.Reportf(sel.Pos(), "%s.%s draws from the process-global source; construct an explicit seeded source (stats.NewRNG) and thread it through", path, name)
			}
			return true
		})
	}
	return nil
}
