package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces the //cplint:guardedby lock contract: a struct
// field annotated `//cplint:guardedby <mutexField>` may only be read or
// written while the named sync.Mutex/RWMutex field on the same struct
// is held. The check is interprocedural: a per-function "locks held on
// entry" summary is propagated over the call graph, so a method that
// locks and then calls an unexported helper is clean, while a helper
// reached both locked and unlocked is flagged with the unlocked call
// chain named [lock chain: A → B] style. `defer mu.Unlock()` keeps the
// lock held to the end of the function; branches join by intersection,
// so early returns and partial unlock paths are handled. For an
// RWMutex, RLock suffices for reads and Lock is required for writes.
// Deliberate lock-free access (constructors beyond composite literals,
// sync.Once-published state) takes a reasoned //cplint:unguarded-ok.
//
// The analysis is sound-for-flagging, not complete: exported functions
// are assumed to be entered with no locks held (tests and other modules
// call them), func literals are checked with an empty lock set (they
// may run at any time), and go/defer call sites transfer no locks.
// Composite-literal construction (`&Lab{train: t}`) is exempt — the
// value is not shared yet.
var GuardedBy = &Analyzer{
	Name:       "guardedby",
	Doc:        "flags access to //cplint:guardedby fields without the named mutex held, propagating entry-lock summaries over the call graph",
	Run:        runGuardedBy,
	NeedsGraph: true,
}

func runGuardedBy(pass *Pass) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	for _, d := range g.lockDiags[pass.Pkg] {
		if d.suppressible && directiveAt(pass.Pkg, DirUnguardedOK, d.pos) != nil {
			continue
		}
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// A guardInfo is one guarded field's contract: the sibling mutex that
// must be held, computed once at graph construction.
type guardInfo struct {
	mu    *types.Var // the guarding mutex field on the same struct
	rw    bool       // the mutex is a sync.RWMutex
	owner string     // declaring struct name, for diagnostics
	dir   *Directive
}

// A lockDiag is one guardedby finding, stored on the graph and emitted
// by the per-package pass (which applies //cplint:unguarded-ok).
type lockDiag struct {
	pos          token.Pos
	msg          string
	suppressible bool
}

// Held levels. For a plain Mutex, Lock() grants heldW; for an RWMutex,
// RLock() grants heldR and Lock() grants heldW. Reads need ≥ heldR,
// writes need heldW.
const (
	heldR = 1
	heldW = 2
)

// A lockKey names one mutex instance as far as the analysis can tell:
// the root variable the selector chain starts at, plus the mutex field.
type lockKey struct {
	root types.Object
	mu   *types.Var
}

type heldSet map[lockKey]int

// A lockSite is one resolved call site with the lock state at it.
type lockSite struct {
	pos     token.Pos
	callees []*GraphFunc
	args    []types.Object // receiver-first root object per argument, nil when not a simple variable
	held    heldSet
	async   bool // go or defer: locks do not transfer to the callee
}

// A lockUse is one access of a guarded field.
type lockUse struct {
	pos   token.Pos
	fld   *types.Var
	gi    *guardInfo
	root  types.Object // root variable of the selector chain, nil when not simple
	write bool
	level int // held level for (root, mu) at the access, entry credit included
}

// fieldDirective claims a directive attached to a struct field: in the
// field's doc comment, or trailing on the field's own line — never the
// line above, which on consecutive annotated fields is the previous
// field's trailer.
func fieldDirective(pkg *Package, name string, field *ast.Field) *Directive {
	if field.Doc != nil {
		return claimDoc(pkg, name, field.Doc, field.Pos())
	}
	p := pkg.fset.Position(field.Pos())
	for _, d := range pkg.directives {
		if d.Name == name && d.File == p.Filename && d.Line == p.Line {
			d.used = true
			return d
		}
	}
	return nil
}

// mutexKind classifies t: 0 not a mutex, 1 sync.Mutex, 2 sync.RWMutex.
// Pointers to either count.
func mutexKind(t types.Type) int {
	if t == nil {
		return 0
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	switch obj.Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// indexGuardedFields claims //cplint:guardedby directives on the
// struct's fields and records the guard contracts. A directive naming
// something that is not a sibling mutex field is an error (stored as a
// non-suppressible finding).
func (g *Graph) indexGuardedFields(pkg *Package, ts *ast.TypeSpec, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded field: no name to guard
		}
		dir := fieldDirective(pkg, DirGuardedBy, field)
		if dir == nil || dir.Reason == "" {
			continue // missing mutex name is validateDirectives' diagnostic
		}
		muName := strings.Fields(dir.Reason)[0]
		var muVar *types.Var
		for _, sib := range st.Fields.List {
			for _, n := range sib.Names {
				if n.Name == muName {
					muVar, _ = pkg.Info.Defs[n].(*types.Var)
				}
			}
		}
		kind := 0
		if muVar != nil {
			kind = mutexKind(muVar.Type())
		}
		if kind == 0 {
			g.lockDiags[pkg] = append(g.lockDiags[pkg], lockDiag{
				pos: dir.Pos,
				msg: fmt.Sprintf("//cplint:guardedby names %q, which is not a sync.Mutex or sync.RWMutex field of %s", muName, ts.Name.Name),
			})
			continue
		}
		for _, n := range field.Names {
			fv, _ := pkg.Info.Defs[n].(*types.Var)
			if fv == nil || fv == muVar {
				continue
			}
			g.guarded[fv] = &guardInfo{mu: muVar, rw: kind == 2, owner: ts.Name.Name, dir: dir}
		}
	}
}

// ---- the lock-state walk ----

// A lockWalker computes, for one function body, the held-lock set at
// every statement: Lock/RLock add, Unlock/RUnlock remove, a deferred
// unlock keeps the lock to the end of the function, branches join by
// intersection, and loop bodies run from the intersection of entry and
// one probe pass (a lock taken and released inside an iteration is not
// held at the top of the next one). Call sites and guarded-field
// accesses are recorded with the state at them.
type lockWalker struct {
	g      *Graph
	fn     *GraphFunc
	pkg    *Package
	record bool // collect uses (final pass) as well as sites
	mute   int  // > 0 during loop probe passes: record nothing

	sites []lockSite
	uses  []lockUse
}

func (w *lockWalker) walkFunc() {
	h := heldSet{}
	sig, _ := w.fn.Obj.Type().(*types.Signature)
	for i, p := range paramVars(sig) {
		if i < len(w.fn.lockEntry) {
			for mu, lvl := range w.fn.lockEntry[i] {
				h[lockKey{p, mu}] = lvl
			}
		}
	}
	w.block(w.fn.Decl.Body.List, h)
}

func copyHeld(h heldSet) heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b heldSet) heldSet {
	out := heldSet{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				va = vb
			}
			out[k] = va
		}
	}
	return out
}

func (w *lockWalker) block(list []ast.Stmt, h heldSet) heldSet {
	for _, s := range list {
		h = w.stmt(s, h)
	}
	return h
}

func (w *lockWalker) stmt(s ast.Stmt, h heldSet) heldSet {
	switch s := s.(type) {
	case nil:
		return h
	case *ast.BlockStmt:
		if s == nil {
			return h
		}
		return w.block(s.List, h)
	case *ast.ExprStmt:
		if key, op, ok := w.lockOp(s.X); ok {
			return applyLock(h, key, op)
		}
		w.expr(s.X, h, false)
		return h
	case *ast.DeferStmt:
		if _, op, ok := w.lockOp(s.Call); ok {
			// defer mu.Unlock(): the lock stays held to every return.
			// (A deferred Lock would be nonsense; also a state no-op.)
			_ = op
			return h
		}
		w.call(s.Call, h, true)
		return h
	case *ast.GoStmt:
		w.call(s.Call, h, true)
		return h
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, h, false)
		}
		for _, l := range s.Lhs {
			w.expr(l, h, true)
		}
		return h
	case *ast.IncDecStmt:
		w.expr(s.X, h, true)
		return h
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, h, false)
					}
				}
			}
		}
		return h
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, h, false)
		}
		return h
	case *ast.SendStmt:
		w.expr(s.Chan, h, false)
		w.expr(s.Value, h, false)
		return h
	case *ast.IfStmt:
		h = w.stmt(s.Init, h)
		w.expr(s.Cond, h, false)
		hThen := w.block(s.Body.List, copyHeld(h))
		hElse := h
		if s.Else != nil {
			hElse = w.stmt(s.Else, copyHeld(h))
		}
		thenTerm := terminates(s.Body.List)
		elseTerm := false
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			elseTerm = terminates(eb.List)
		}
		switch {
		case thenTerm && elseTerm:
			return h // whatever follows is unreachable
		case thenTerm:
			return hElse
		case elseTerm:
			return hThen
		}
		return intersectHeld(hThen, hElse)
	case *ast.ForStmt:
		h = w.stmt(s.Init, h)
		if s.Cond != nil {
			w.expr(s.Cond, h, false)
		}
		return w.loop(h, func(hh heldSet) heldSet {
			hh = w.block(s.Body.List, hh)
			return w.stmt(s.Post, hh)
		})
	case *ast.RangeStmt:
		w.expr(s.X, h, false)
		return w.loop(h, func(hh heldSet) heldSet {
			return w.block(s.Body.List, hh)
		})
	case *ast.SwitchStmt:
		h = w.stmt(s.Init, h)
		if s.Tag != nil {
			w.expr(s.Tag, h, false)
		}
		return w.clauses(s.Body.List, h)
	case *ast.TypeSwitchStmt:
		h = w.stmt(s.Init, h)
		w.stmt(s.Assign, copyHeld(h))
		return w.clauses(s.Body.List, h)
	case *ast.SelectStmt:
		return w.clauses(s.Body.List, h)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)
	case *ast.BranchStmt, *ast.EmptyStmt:
		return h
	}
	return h
}

// loop runs a loop body twice: a muted probe from the loop-entry state,
// then the recorded pass from entry ∩ probe-exit — the state that holds
// at the top of every iteration.
func (w *lockWalker) loop(h heldSet, body func(heldSet) heldSet) heldSet {
	w.mute++
	probe := body(copyHeld(h))
	w.mute--
	in := intersectHeld(h, probe)
	out := body(copyHeld(in))
	return intersectHeld(in, out)
}

// clauses joins switch/type-switch/select clause bodies by
// intersection. Clause bodies that terminate (return/panic) drop out of
// the join; without a default clause the pre-switch state joins too.
func (w *lockWalker) clauses(list []ast.Stmt, h heldSet) heldSet {
	var out heldSet
	hasDefault := false
	join := func(hh heldSet, term bool) {
		if term {
			return
		}
		if out == nil {
			out = hh
		} else {
			out = intersectHeld(out, hh)
		}
	}
	for _, c := range list {
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, h, false)
			}
			if cc.List == nil {
				hasDefault = true
			}
			join(w.block(cc.Body, copyHeld(h)), terminates(cc.Body))
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			hh := w.stmt(cc.Comm, copyHeld(h))
			join(w.block(cc.Body, hh), terminates(cc.Body))
		}
	}
	if !hasDefault {
		join(copyHeld(h), false)
	}
	if out == nil {
		return h
	}
	return out
}

// lockOp recognizes a statement-position mutex operation
// root.mu.Lock/Unlock/RLock/RUnlock() on a mutex that is a named field.
func (w *lockWalker) lockOp(e ast.Expr) (lockKey, string, bool) {
	call, ok := unparenExpr(e).(*ast.CallExpr)
	if !ok {
		return lockKey{}, "", false
	}
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	if mutexKind(w.pkg.Info.TypeOf(sel.X)) == 0 {
		return lockKey{}, "", false
	}
	ms, ok := unparenExpr(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	msel, ok := w.pkg.Info.Selections[ms]
	if !ok {
		return lockKey{}, "", false
	}
	muVar, ok := msel.Obj().(*types.Var)
	if !ok {
		return lockKey{}, "", false
	}
	root := w.rootObj(ms.X)
	if root == nil {
		return lockKey{}, "", false
	}
	return lockKey{root, muVar}, op, true
}

func applyLock(h heldSet, key lockKey, op string) heldSet {
	h = copyHeld(h)
	switch op {
	case "Lock":
		h[key] = heldW
	case "RLock":
		if h[key] < heldR {
			h[key] = heldR
		}
	case "Unlock", "RUnlock":
		delete(h, key)
	}
	return h
}

func (w *lockWalker) rootObj(e ast.Expr) types.Object {
	id := retainRoot(e)
	if id == nil {
		return nil
	}
	if o := w.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return w.pkg.Info.Defs[id]
}

func (w *lockWalker) expr(e ast.Expr, h heldSet, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		w.expr(e.X, h, write)
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[e]; ok {
			if fv, ok := sel.Obj().(*types.Var); ok {
				if gi := w.g.guarded[fv]; gi != nil {
					w.addUse(e, h, fv, gi, write)
				}
			}
			w.expr(e.X, h, false)
		}
	case *ast.StarExpr:
		w.expr(e.X, h, write)
	case *ast.IndexExpr:
		w.expr(e.X, h, write)
		w.expr(e.Index, h, false)
	case *ast.SliceExpr:
		w.expr(e.X, h, write)
		for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
			if x != nil {
				w.expr(x, h, false)
			}
		}
	case *ast.UnaryExpr:
		// Taking the address of a guarded field hands out a reference
		// the lock no longer covers: judged as a write.
		w.expr(e.X, h, e.Op == token.AND)
	case *ast.BinaryExpr:
		w.expr(e.X, h, false)
		w.expr(e.Y, h, false)
	case *ast.KeyValueExpr:
		w.expr(e.Value, h, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, h, false)
		}
	case *ast.TypeAssertExpr:
		w.expr(e.X, h, false)
	case *ast.FuncLit:
		// Runs at an unknown time, possibly concurrently: checked with
		// an empty lock set.
		w.block(e.Body.List, heldSet{})
	case *ast.CallExpr:
		w.call(e, h, false)
	}
}

// call records a resolved call site with the current lock state and
// walks the operands. async call sites (go/defer) transfer no locks.
func (w *lockWalker) call(call *ast.CallExpr, h heldSet, async bool) {
	rc := w.g.resolve(w.pkg, call)
	if len(rc.callees) > 0 && w.mute == 0 {
		args := make([]types.Object, 0, len(call.Args)+1)
		if rc.recv != nil {
			args = append(args, w.rootObj(rc.recv))
		}
		for _, a := range call.Args {
			args = append(args, w.rootObj(a))
		}
		w.sites = append(w.sites, lockSite{
			pos: call.Pos(), callees: rc.callees, args: args,
			held: copyHeld(h), async: async,
		})
	}
	switch fun := unparenExpr(call.Fun).(type) {
	case *ast.FuncLit:
		w.block(fun.Body.List, heldSet{})
	case *ast.SelectorExpr:
		if _, ok := w.pkg.Info.Selections[fun]; ok {
			w.expr(fun.X, h, false)
		}
	}
	for _, a := range call.Args {
		w.expr(a, h, false)
	}
}

func (w *lockWalker) addUse(e *ast.SelectorExpr, h heldSet, fv *types.Var, gi *guardInfo, write bool) {
	if !w.record || w.mute > 0 {
		return
	}
	root := w.rootObj(e.X)
	lvl := 0
	if root != nil {
		lvl = h[lockKey{root, gi.mu}]
	}
	w.uses = append(w.uses, lockUse{pos: e.Sel.Pos(), fld: fv, gi: gi, root: root, write: write, level: lvl})
}

// ---- the interprocedural fixpoint ----

// lockcheck runs the guardedby analysis over the whole graph: a
// monotone fixpoint grows every function's entry-lock summary from
// bottom (no locks) using the intersection of what all in-graph call
// sites provably hold, then one recording pass evaluates every guarded
// access against the settled state. Exported functions get no entry
// credit: tests and other modules call them, so they must lock for
// themselves. Everything runs serially at graph construction, so the
// results are worker-count-independent.
func (g *Graph) lockcheck() {
	if len(g.guarded) == 0 {
		return
	}
	for _, fn := range g.order {
		sig, _ := fn.Obj.Type().(*types.Signature)
		fn.lockEntry = make([]map[*types.Var]int, len(paramVars(sig)))
	}
	for round := 0; round < 32; round++ {
		in := make(map[*GraphFunc][]map[*types.Var]int)
		seen := make(map[*GraphFunc]bool)
		for _, fn := range g.order {
			w := &lockWalker{g: g, fn: fn, pkg: fn.Pkg}
			w.walkFunc()
			for _, site := range w.sites {
				for _, c := range site.callees {
					transfer := siteTransfer(site, c)
					if !seen[c] {
						seen[c] = true
						in[c] = transfer
					} else {
						in[c] = intersectEntry(in[c], transfer)
					}
				}
			}
		}
		changed := false
		for _, fn := range g.order {
			next := in[fn]
			if !seen[fn] || fn.Obj.Exported() {
				next = make([]map[*types.Var]int, len(fn.lockEntry))
			}
			if !entryEqual(fn.lockEntry, next) {
				fn.lockEntry = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Recording pass against the settled entries: sites feed the
	// unlocked-chain witness search, uses become findings.
	type fnUses struct {
		fn   *GraphFunc
		uses []lockUse
	}
	var all []fnUses
	for _, fn := range g.order {
		w := &lockWalker{g: g, fn: fn, pkg: fn.Pkg, record: true}
		w.walkFunc()
		fn.lockSites = w.sites
		if len(w.uses) > 0 {
			all = append(all, fnUses{fn, w.uses})
		}
	}
	for _, fu := range all {
		for _, u := range fu.uses {
			need := heldR
			if u.write {
				need = heldW
			}
			if u.level >= need {
				continue
			}
			field := u.gi.owner + "." + u.fld.Name()
			mu := u.gi.mu.Name()
			var msg string
			if u.level == heldR && u.write {
				msg = fmt.Sprintf("field %s is guarded by %s; this write needs %s.Lock(), but only %s.RLock() is held", field, mu, mu, mu)
			} else {
				verb := "read"
				if u.write {
					verb = "write"
				}
				msg = fmt.Sprintf("field %s is guarded by %s (//cplint:guardedby), which is not held at this %s", field, mu, verb)
			}
			if chain := g.unlockedChain(fu.fn, u); len(chain) > 1 {
				msg += fmt.Sprintf(" [lock chain: %s]", chainString(chain))
			}
			msg += fmt.Sprintf("; hold %s or annotate //cplint:unguarded-ok <why>", mu)
			g.lockDiags[fu.fn.Pkg] = append(g.lockDiags[fu.fn.Pkg], lockDiag{pos: u.pos, msg: msg, suppressible: true})
		}
	}
}

// siteTransfer maps one call site's held locks onto the callee's
// receiver-first parameters: parameter i enters with the locks the
// argument's root variable provably holds at the site.
func siteTransfer(site lockSite, c *GraphFunc) []map[*types.Var]int {
	sig, _ := c.Obj.Type().(*types.Signature)
	out := make([]map[*types.Var]int, len(paramVars(sig)))
	if site.async {
		return out
	}
	for i := 0; i < len(out) && i < len(site.args); i++ {
		root := site.args[i]
		if root == nil {
			continue
		}
		for key, lvl := range site.held {
			if key.root == root {
				if out[i] == nil {
					out[i] = make(map[*types.Var]int)
				}
				out[i][key.mu] = lvl
			}
		}
	}
	return out
}

func intersectEntry(a, b []map[*types.Var]int) []map[*types.Var]int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]map[*types.Var]int, n)
	for i := 0; i < n; i++ {
		for mu, va := range a[i] {
			if vb, ok := b[i][mu]; ok {
				if vb < va {
					va = vb
				}
				if out[i] == nil {
					out[i] = make(map[*types.Var]int)
				}
				out[i][mu] = va
			}
		}
	}
	return out
}

func entryEqual(a, b []map[*types.Var]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for mu, va := range a[i] {
			if b[i][mu] != va {
				return false
			}
		}
	}
	return true
}

func paramIndexOf(fn *GraphFunc, obj types.Object) int {
	if obj == nil {
		return -1
	}
	sig, _ := fn.Obj.Type().(*types.Signature)
	for i, p := range paramVars(sig) {
		if p == obj {
			return i
		}
	}
	return -1
}

func entryLevel(fn *GraphFunc, i int, mu *types.Var) int {
	if i < 0 || i >= len(fn.lockEntry) || fn.lockEntry[i] == nil {
		return 0
	}
	return fn.lockEntry[i][mu]
}

// unlockedChain builds the witness call chain for a flagged access
// whose root is a parameter: the path from the nearest function that
// fails to hold the mutex down to the access's function. Empty when
// the access's root is not a parameter or no in-graph caller exists.
func (g *Graph) unlockedChain(fn *GraphFunc, u lockUse) []*GraphFunc {
	idx := paramIndexOf(fn, u.root)
	if idx < 0 {
		return nil
	}
	chain := []*GraphFunc{fn}
	cur, curIdx := fn, idx
	seen := map[*GraphFunc]bool{fn: true}
	for depth := 0; depth < 8; depth++ {
		caller, callerIdx, up := g.unlockedCaller(cur, curIdx, u.gi.mu)
		if caller == nil || seen[caller] {
			break
		}
		seen[caller] = true
		chain = append([]*GraphFunc{caller}, chain...)
		if !up {
			break
		}
		cur, curIdx = caller, callerIdx
	}
	return chain
}

// unlockedCaller finds the first call site (in deterministic graph
// order) reaching cur whose transfer for (paramIdx, mu) is missing.
// up reports whether the unlocked argument is itself a parameter of the
// caller with no entry credit, i.e. the search should continue upward.
func (g *Graph) unlockedCaller(cur *GraphFunc, paramIdx int, mu *types.Var) (caller *GraphFunc, callerIdx int, up bool) {
	for _, cand := range g.order {
		for _, site := range cand.lockSites {
			if paramIdx >= len(site.args) || !hasCallee(site.callees, cur) {
				continue
			}
			root := site.args[paramIdx]
			if root != nil && !site.async && site.held[lockKey{root, mu}] > 0 {
				continue // this site holds the lock
			}
			ci := paramIndexOf(cand, root)
			if ci >= 0 && entryLevel(cand, ci, mu) == 0 {
				return cand, ci, true
			}
			return cand, -1, false
		}
	}
	return nil, -1, false
}

func hasCallee(callees []*GraphFunc, fn *GraphFunc) bool {
	for _, c := range callees {
		if c == fn {
			return true
		}
	}
	return false
}
