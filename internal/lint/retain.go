package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Retain enforces the buffer-reuse contract on types annotated
// //cplint:reused (trace.Batch): a function or callback that receives
// a reused value — *Batch, or anything aliasing its columns — must
// consume or copy it before returning. The analyzer tracks reused
// parameters through assignments, field writes, append, channel sends,
// goroutine captures, and interprocedural flows (per-function escape
// summaries over the module call graph, with CHA for module-local
// interfaces like BatchSource/BatchSink), and flags every flow into a
// location that outlives the frame.
//
// Copies are recognized structurally and need no annotation:
// CopyBatches, AppendTo, append(x[:0:0], x...), append([]T(nil), x...)
// and any other element-wise copy of scalar columns. A deliberate
// retention carries a reasoned //cplint:retained-ok <why> on the
// escaping statement.
var Retain = &Analyzer{
	Name:       "retain",
	Doc:        "flags reused buffers (//cplint:reused types) escaping the callback frame without a copy",
	Run:        runRetain,
	NeedsGraph: true,
}

func runRetain(pass *Pass) error {
	g := pass.Graph
	if g == nil || len(g.reused) == 0 {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				obj, _ := info.Defs[n.Name].(*types.Func)
				if obj == nil {
					return true
				}
				sig, _ := obj.Type().(*types.Signature)
				if sig != nil && g.hasReusedParam(sig) {
					reportFrame(pass, n, n.Body, sig)
				}
			case *ast.FuncLit:
				sig, _ := info.TypeOf(n).(*types.Signature)
				if sig != nil && g.hasReusedParam(sig) {
					reportFrame(pass, n, n.Body, sig)
				}
			}
			return true
		})
	}
	return nil
}

// reportFrame runs the taint walk over one frame (a function with a
// reused-typed parameter) and reports escapes of reused bits.
func reportFrame(pass *Pass, frame ast.Node, body *ast.BlockStmt, sig *types.Signature) {
	g := pass.Graph
	t := newTaint(g, pass.Pkg, frame, body, sig)
	var reusedBits uint64
	for i, p := range t.params {
		if i < 64 && g.isReusedType(p.Type()) {
			reusedBits |= uint64(1) << uint(i)
		}
	}
	if reusedBits == 0 {
		return
	}
	t.report = func(e escapeEvent) {
		if e.mask&reusedBits == 0 {
			return
		}
		if d := directiveAt(pass.Pkg, DirRetainedOK, e.pos); d != nil {
			return
		}
		msg := fmt.Sprintf("reused buffer escapes: %s; the buffer is overwritten after this frame returns — copy it (CopyBatches/AppendTo/append(x[:0:0], x...)) or annotate //cplint:retained-ok <why>", e.desc)
		if fix, ok := copyFix(pass, e); ok {
			pass.ReportFixf(e.pos, fix, "%s", msg)
			return
		}
		pass.Reportf(e.pos, "%s", msg)
	}
	t.run()
}

// copyFix builds the append(x[:0:0], x...) rewrite when the escaping
// value is a plain slice-typed chain with value-like elements — the
// one case where a shallow element copy is a full copy.
func copyFix(pass *Pass, e escapeEvent) (SuggestedFix, bool) {
	if e.expr == nil || !simpleChain(e.expr) {
		return SuggestedFix{}, false
	}
	tt := pass.Pkg.Info.TypeOf(e.expr)
	if tt == nil {
		return SuggestedFix{}, false
	}
	if _, ok := tt.Underlying().(*types.Slice); !ok {
		return SuggestedFix{}, false
	}
	if pointerful(elemType(tt)) {
		return SuggestedFix{}, false
	}
	src := types.ExprString(e.expr)
	return SuggestedFix{
		Message: fmt.Sprintf("copy the column: append(%s[:0:0], %s...)", src, src),
		Edits: []TextEdit{
			pass.Edit(e.expr.Pos(), e.expr.End(), fmt.Sprintf("append(%s[:0:0], %s...)", src, src)),
		},
	}, true
}

// simpleChain reports whether e is a pure identifier/selector/index
// chain — safe to duplicate textually in a rewrite.
func simpleChain(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.Ident, *ast.BasicLit:
			return true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			if !simpleChain(v.Index) {
				return false
			}
			e = v.X
		default:
			return false
		}
	}
}
