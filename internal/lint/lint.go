package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"cptraffic/internal/par"
)

// An Analyzer is one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so these checks would port
// to the upstream driver unchanged.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// NeedsGraph marks analyzers built on the module call graph
	// (retain, hotcall). When any requested analyzer needs it, the
	// driver constructs one Graph over the whole package set — serially,
	// before the per-package fan-out, so worker count cannot influence
	// it — and threads it through Pass.Graph.
	NeedsGraph bool
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	// Graph is the shared call-graph/dataflow substrate, non-nil iff
	// the analyzer set includes one with NeedsGraph. It is read-only
	// during passes.
	Graph *Graph

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a diagnostic at pos carrying one suggested fix.
func (p *Pass) ReportFixf(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Edit builds a TextEdit replacing [pos, end) with new text. pos == end
// is a pure insertion.
func (p *Pass) Edit(pos, end token.Pos, new string) TextEdit {
	return TextEdit{Pos: p.Fset.Position(pos), End: p.Fset.Position(end), New: new}
}

// A TextEdit replaces the source range [Pos.Offset, End.Offset) of
// Pos.Filename with New. Positions carry resolved offsets so fixes can
// be applied without re-parsing.
type TextEdit struct {
	Pos token.Position `json:"pos"`
	End token.Position `json:"end"`
	New string         `json:"new"`
}

// A SuggestedFix is one self-contained, semantics-preserving rewrite
// that resolves a diagnostic. Edits are within a single file.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// A Diagnostic is one finding, addressed by resolved position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes holds machine-applicable rewrites (applied by cplint -fix);
	// empty when the finding needs a human restructure.
	Fixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// DetPackages lists the determinism-critical packages, by import-path
// suffix: the model-fitting and generation core, the ground-truth
// simulator, the state machines, the numeric kernels, the clusterer,
// the trace codecs, the evaluation sweeps, the table renderer, the
// storm-replay engine, and the scenario loader. detmap and detsource
// enforce their invariants only inside these packages; cmd/ CLIs (flag
// parsing, wall-clock logging) are exempt by omission.
var DetPackages = []string{
	"internal/core",
	"internal/world",
	"internal/sm",
	"internal/stats",
	"internal/cluster",
	"internal/trace",
	"internal/eval",
	"internal/report",
	"internal/mcn",
	"internal/scenario",
}

// pathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix (whole-segment match, so fixture paths like
// "cptraffic/internal/core" under testdata qualify too).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// inDetPackage reports whether path is one of the determinism-critical
// packages.
func inDetPackage(path string) bool {
	for _, p := range DetPackages {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// ConcurrencyPackages lists the packages whose goroutines goleak gates:
// every determinism-critical package (the serving stack grows out of
// them) plus the worker pool, the experiment harness, and the lint
// driver itself. cmd/ CLIs spawn nothing long-lived and are exempt by
// omission.
var ConcurrencyPackages = append(append([]string{},
	DetPackages...),
	"internal/par",
	"internal/experiments",
	"internal/lint",
)

// inConcurrencyPackage reports whether path is goroutine-lifecycle
// gated.
func inConcurrencyPackage(path string) bool {
	for _, p := range ConcurrencyPackages {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// All returns the full cplint suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, DetMap, DetSource, Exhaustive, FloatFold, Frozen, GoLeak, GuardedBy, HotAlloc, HotCall, ParShare, Retain}
}

// Analyze runs the given analyzers over the given packages and returns
// the merged diagnostics sorted by position. Packages are analyzed in
// parallel (one worker per package, over the repo's own par pool); the
// final sort makes the output bytes worker-count-independent.
// Directive hygiene (unknown //cplint: names, missing reasons,
// annotations attached to nothing) is validated per package, after
// every analyzer has had the chance to claim its directives.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return AnalyzeWorkers(pkgs, analyzers, 0)
}

// AnalyzeWorkers is Analyze with an explicit worker count (<= 0 means
// GOMAXPROCS). The diagnostics are identical for any worker count: a
// package's directives are only ever touched by the one worker that
// owns it, and the merged result is sorted before returning.
func AnalyzeWorkers(pkgs []*Package, analyzers []*Analyzer, workers int) []Diagnostic {
	var graph *Graph
	for _, a := range analyzers {
		if a.NeedsGraph {
			// Built once, serially, before the fan-out: the graph (and the
			// directive claims it makes) is identical for any worker count,
			// and passes only read it.
			graph = buildGraph(pkgs)
			break
		}
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	par.For(len(pkgs), workers, func(i int) {
		pkg := pkgs[i]
		collect := func(d Diagnostic) { perPkg[i] = append(perPkg[i], d) }
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fsetOf(pkg), Pkg: pkg, Graph: graph, report: collect}
			if err := a.Run(pass); err != nil {
				collect(Diagnostic{
					Analyzer: a.Name,
					Pos:      fsetOf(pkg).Position(pkg.Files[0].Package),
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
		validateDirectives(pkg, analyzers, collect)
	})
	var diags []Diagnostic
	for _, ds := range perPkg {
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// fsetOf recovers the FileSet a package was parsed with. Packages are
// always produced by a Loader, which threads one shared FileSet; the
// pass just needs access to it for position resolution.
func fsetOf(pkg *Package) *token.FileSet {
	return pkg.fset
}

// ---- //cplint: directives ----

// Directive names understood by the suite.
const (
	DirOrderedOK   = "ordered-ok"   // on a range-over-map: order-insensitivity is argued by the reason
	DirHotPath     = "hotpath"      // on a func decl: the body must not allocate
	DirPartialOK   = "partial-ok"   // on an enum switch, float fold, or model write: partial behavior is argued by the reason
	DirReused      = "reused"       // on a type decl: values are reused buffers; retain tracks their escape
	DirRetainedOK  = "retained-ok"  // on an escaping statement: retention is argued safe by the reason
	DirColdPath    = "coldpath"     // on a func decl: off the steady path; hotcall does not propagate into it
	DirGuardedBy   = "guardedby"    // on a struct field: accesses require the named sibling mutex held
	DirUnguardedOK = "unguarded-ok" // on a guarded-field access: lock-free access is argued by the reason
	DirLeakOK      = "leak-ok"      // on a go statement: unbounded lifetime is argued by the reason
	DirDetachedOK  = "detached-ok"  // on a detached-context argument: breaking cancellation is argued by the reason
)

// A Directive is one parsed //cplint:<name> <reason> comment.
type Directive struct {
	Pos    token.Pos
	File   string
	Line   int
	Name   string
	Reason string

	used bool // claimed by a matching node during analysis
}

const dirPrefix = "//cplint:"

// parseDirectives extracts every //cplint: comment from the files.
// Syntax errors (unknown name, missing reason) are kept as directives
// with their problems diagnosed by validateDirectives, so one malformed
// annotation cannot silence an analyzer.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*Directive {
	var dirs []*Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, dirPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, dirPrefix)
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				dirs = append(dirs, &Directive{
					Pos:    c.Pos(),
					File:   pos.Filename,
					Line:   pos.Line,
					Name:   name,
					Reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return dirs
}

// directiveAt returns the package's directive of the given name
// attached to the node starting at pos: on the same line (trailing
// comment) or on the line immediately above. A same-line match wins —
// on consecutive annotated lines (struct fields, say) each node must
// claim its own trailing directive, not the previous line's. It marks
// the directive used so validateDirectives can flag the ones attached
// to nothing.
func directiveAt(pkg *Package, name string, pos token.Pos) *Directive {
	p := pkg.fset.Position(pos)
	var above *Directive
	for _, d := range pkg.directives {
		if d.Name != name || d.File != p.Filename {
			continue
		}
		if d.Line == p.Line {
			d.used = true
			return d
		}
		if above == nil && d.Line == p.Line-1 {
			above = d
		}
	}
	if above != nil {
		above.used = true
	}
	return above
}

// claimDoc marks directives inside a func declaration's doc comment
// (any line between doc start and the decl line) as attached to it.
func claimDoc(pkg *Package, name string, doc *ast.CommentGroup, declPos token.Pos) *Directive {
	if doc == nil {
		return directiveAt(pkg, name, declPos)
	}
	start := pkg.fset.Position(doc.Pos()).Line
	p := pkg.fset.Position(declPos)
	for _, d := range pkg.directives {
		if d.Name != name || d.File != p.Filename {
			continue
		}
		if d.Line >= start && d.Line <= p.Line {
			d.used = true
			return d
		}
	}
	return nil
}

// directiveOwners maps each directive name to the analyzers that can
// claim it. Reason hygiene for a name is enforced when any owner ran;
// the attached-to-nothing check only when every owner ran (a
// single-analyzer fixture test must not call another analyzer's
// legitimately placed annotation a mistake).
var directiveOwners = map[string][]string{
	DirOrderedOK:   {"detmap", "floatfold"},
	DirHotPath:     {"hotalloc", "hotcall"},
	DirPartialOK:   {"exhaustive", "floatfold", "frozen"},
	DirReused:      {"retain"},
	DirRetainedOK:  {"retain"},
	DirColdPath:    {"hotcall"},
	DirGuardedBy:   {"guardedby"},
	DirUnguardedOK: {"guardedby"},
	DirLeakOK:      {"goleak"},
	DirDetachedOK:  {"ctxflow"},
}

// reasonRequired lists the directives whose reason is mandatory: the
// annotation suppresses a finding (or, for reused and guardedby, widens
// or declares a contract), so the justification must travel with it.
// For guardedby the "reason" is the guarding mutex field name.
var reasonRequired = map[string]bool{
	DirOrderedOK:   true,
	DirPartialOK:   true,
	DirReused:      true,
	DirRetainedOK:  true,
	DirColdPath:    true,
	DirGuardedBy:   true,
	DirUnguardedOK: true,
	DirLeakOK:      true,
	DirDetachedOK:  true,
}

// attachWant describes, per directive, what kind of node the
// annotation must be attached to.
var attachWant = map[string]string{
	DirOrderedOK:   "a range-over-map statement",
	DirHotPath:     "a function declaration",
	DirPartialOK:   "a partially-covered enum switch, an order-sensitive float fold, or a frozen-model write",
	DirReused:      "a type declaration",
	DirRetainedOK:  "a statement that retains a reused buffer",
	DirColdPath:    "a function declaration",
	DirGuardedBy:   "a struct field declaration",
	DirUnguardedOK: "a lock-free access of a guarded field",
	DirLeakOK:      "a go statement",
	DirDetachedOK:  "a detached-context argument",
}

func validateDirectives(pkg *Package, ran []*Analyzer, report func(Diagnostic)) {
	names := make(map[string]bool, len(ran))
	for _, a := range ran {
		names[a.Name] = true
	}
	pos := func(d *Directive) token.Position { return pkg.fset.Position(d.Pos) }
	for _, d := range pkg.directives {
		owners, known := directiveOwners[d.Name]
		if !known {
			report(Diagnostic{
				Analyzer: "cplint",
				Pos:      pos(d),
				Message: fmt.Sprintf("unknown directive //cplint:%s (known: %s, %s, %s, %s, %s, %s, %s, %s, %s, %s)",
					d.Name, DirColdPath, DirDetachedOK, DirGuardedBy, DirHotPath, DirLeakOK,
					DirOrderedOK, DirPartialOK, DirRetainedOK, DirReused, DirUnguardedOK),
			})
			continue
		}
		anyRan, allRan := false, true
		for _, o := range owners {
			if names[o] {
				anyRan = true
			} else {
				allRan = false
			}
		}
		if !anyRan {
			continue
		}
		if reasonRequired[d.Name] && d.Reason == "" {
			msg := fmt.Sprintf("//cplint:%s needs a reason: //cplint:%s <why this is justified>", d.Name, d.Name)
			if d.Name == DirGuardedBy {
				// guardedby's "reason" slot names the contract itself.
				msg = "//cplint:guardedby needs the guarding mutex field name: //cplint:guardedby <mutexField>"
			}
			report(Diagnostic{
				Analyzer: owners[0],
				Pos:      pos(d),
				Message:  msg,
			})
			continue
		}
		if !d.used && allRan {
			report(Diagnostic{
				Analyzer: owners[0],
				Pos:      pos(d),
				Message:  fmt.Sprintf("//cplint:%s is not attached to %s", d.Name, attachWant[d.Name]),
			})
		}
	}
}
