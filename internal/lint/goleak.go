package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak demands a provable termination signal for every go statement
// in the concurrency-gated packages (ConcurrencyPackages): the
// goroutine body must not loop unboundedly — an unconditional for-loop
// needs a select arm that receives a cancellation signal
// (<-ctx.Done(), <-done) and exits, and a range over a channel needs
// some function in the module closure to close that channel — or the
// body must join a sync.WaitGroup that is Wait()ed somewhere in the
// closure (a stuck goroutine then deadlocks Wait loudly instead of
// leaking silently). A goroutine whose target is a dynamic func value
// cannot be proven and is flagged too. Deliberately unbounded
// lifetimes take a reasoned //cplint:leak-ok on the go statement.
//
// The check is the static counterpart of `make race`: the serving
// daemon's subscriber/watcher goroutines must not outlive their
// session, and the proof obligation lands where the goroutine is born.
var GoLeak = &Analyzer{
	Name:       "goleak",
	Doc:        "flags go statements in gated packages with no provable termination signal (ctx.Done select arm, closed channel, Wait()ed WaitGroup)",
	Run:        runGoLeak,
	NeedsGraph: true,
}

func runGoLeak(pass *Pass) error {
	gated := inConcurrencyPackage(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// Claim the directive in every package so an annotation on a
			// go statement outside the gate is attached, not an error.
			dir := directiveAt(pass.Pkg, DirLeakOK, gs.Pos())
			if !gated {
				return true
			}
			problem := goleakProblem(pass, gs)
			if problem == "" || dir != nil {
				return true
			}
			pass.Reportf(gs.Pos(), "%s; prove termination (select on <-ctx.Done(), close the channel, or join a Wait()ed sync.WaitGroup) or annotate //cplint:leak-ok <why>", problem)
			return true
		})
	}
	return nil
}

// goleakProblem returns the first termination obstruction of one go
// statement, or "" when the goroutine's lifetime is provably bounded.
func goleakProblem(pass *Pass, gs *ast.GoStmt) string {
	g := pass.Graph
	info := pass.Pkg.Info
	var bodies []*ast.BlockStmt
	switch fun := unparenExpr(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		bodies = []*ast.BlockStmt{fun.Body}
	default:
		rc := g.resolve(pass.Pkg, gs.Call)
		if len(rc.callees) == 0 {
			return "goroutine target is a dynamic func value: termination cannot be proven"
		}
		for _, c := range rc.callees {
			bodies = append(bodies, c.Decl.Body)
		}
	}
	for _, body := range bodies {
		problem := ""
		ast.Inspect(body, func(n ast.Node) bool {
			if problem != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				// A nested literal is a different goroutine's problem
				// (or plain synchronous code); don't scan into it.
				return false
			case *ast.ForStmt:
				if n.Cond == nil && !selectExits(n.Body) {
					problem = fmt.Sprintf("goroutine loops forever (line %d) with no select arm that receives a stop signal and exits", pass.Fset.Position(n.Pos()).Line)
				}
			case *ast.RangeStmt:
				if isChanType(info.TypeOf(n.X)) && !anyIn(signalObjs(info, n.X), g.closedChans) {
					problem = fmt.Sprintf("goroutine ranges over a channel (line %d) no function in the module closes", pass.Fset.Position(n.Pos()).Line)
				}
			}
			return true
		})
		if problem != "" {
			if joinsWaitGroup(g, info, body) {
				continue // a leak would deadlock Wait loudly, not linger silently
			}
			return problem
		}
	}
	return ""
}

// selectExits reports whether the loop body contains a select with a
// receive arm whose body leaves the goroutine: ends in return, panic,
// or a labeled break (a bare break only leaves the select).
func selectExits(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || !isRecvComm(cc.Comm) {
				continue
			}
			if exitsGoroutine(cc.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isRecvComm reports whether a select comm case is a channel receive:
// `<-ch:`, `v := <-ch:`, or `v, ok := <-ch:`.
func isRecvComm(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := unparenExpr(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := unparenExpr(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// exitsGoroutine reports whether a clause body leaves the enclosing
// loop for good: return, panic, or a labeled break.
func exitsGoroutine(list []ast.Stmt) bool {
	if terminates(list) {
		return true
	}
	if len(list) > 0 {
		if br, ok := list[len(list)-1].(*ast.BranchStmt); ok && br.Tok == token.BREAK && br.Label != nil {
			return true
		}
	}
	return false
}

// joinsWaitGroup reports whether the goroutine body calls Done on a
// sync.WaitGroup some function in the closure Waits on.
func joinsWaitGroup(g *Graph, info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || !isWaitGroup(info.TypeOf(sel.X)) {
			return true
		}
		if anyIn(signalObjs(info, sel.X), g.waitedGroups) {
			found = true
		}
		return true
	})
	return found
}

// collectSignals records, once per graph build, goleak's termination
// witnesses: every channel the closure closes and every sync.WaitGroup
// it Waits on, by object identity (field object and root object both,
// so `p.done` matches whether named through the field or the struct).
func (g *Graph) collectSignals() {
	for _, fn := range g.order {
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := unparenExpr(call.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && len(call.Args) == 1 && isBuiltin(info.Uses[fun]) {
					for _, o := range signalObjs(info, call.Args[0]) {
						g.closedChans[o] = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Wait" && isWaitGroup(info.TypeOf(fun.X)) {
					for _, o := range signalObjs(info, fun.X) {
						g.waitedGroups[o] = true
					}
				}
			}
			return true
		})
	}
}

// signalObjs names an expression for signal matching: the selected
// field object (for p.done) plus the root variable of the chain.
func signalObjs(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	if sel, ok := unparenExpr(e).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Obj() != nil {
			out = append(out, s.Obj())
		}
	}
	if id := retainRoot(e); id != nil {
		if o := info.Uses[id]; o != nil {
			out = append(out, o)
		} else if o := info.Defs[id]; o != nil {
			out = append(out, o)
		}
	}
	return out
}

func isBuiltin(o types.Object) bool {
	_, ok := o.(*types.Builtin)
	return ok
}

func anyIn(objs []types.Object, set map[types.Object]bool) bool {
	for _, o := range objs {
		if set[o] {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
