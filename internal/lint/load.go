// Package lint implements the cplint static-analysis suite: a small,
// dependency-free clone of the golang.org/x/tools/go/analysis driver
// plus the twelve repo-specific analyzers (ctxflow, detmap,
// detsource, exhaustive, floatfold, frozen, goleak, guardedby,
// hotalloc, hotcall, parshare, retain) that turn this repo's
// determinism, state-machine, hot-path, buffer-retention, and
// concurrency invariants into build errors. The call-graph-backed
// analyzers (retain, hotcall, guardedby, goleak) additionally share a
// deterministic interprocedural substrate; see callgraph.go.
//
// The framework mirrors the go/analysis API (Analyzer, Pass, Reportf)
// so the analyzers would port to the upstream driver verbatim, but it
// is built entirely on the standard library: packages are enumerated
// with `go list -deps -json` and type-checked from source with
// go/types, including the standard-library closure. The build
// container has no module proxy, so vendoring x/tools is not an
// option; ~100 packages type-check from source in a few seconds, which
// is fine for a pre-commit gate.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cptraffic/internal/par"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path as the type checker sees it
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	fset       *token.FileSet
	directives []*Directive
	typeErrs   []types.Error
	deps       []*Package // direct imports, sorted by path (fixture or module; stdlib included)
	std        bool       // from `go list` Standard (fixture packages are never standard)
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// A Loader enumerates, parses, and type-checks packages. Dependencies
// are resolved through `go list` (run in Dir) and type-checked from
// source; results are cached per Loader, so fixture tests share one
// standard-library type-check.
type Loader struct {
	// Dir is the directory `go list` runs in; it must be inside a Go
	// module. Empty means the current directory.
	Dir string

	// Fixtures maps import paths to directories holding their sources,
	// consulted before `go list`. Tests use this to load analysistest
	// fixture trees from testdata/src without touching the module.
	Fixtures map[string]string

	// Workers bounds the type-check fan-out of LoadPaths: distinct
	// packages type-check on their own goroutines (<= 0 means
	// GOMAXPROCS). Any one package is still checked exactly once — a
	// second demand for an in-flight package blocks until the first
	// completes — so the worker count can never change the result.
	Workers int

	mu      sync.Mutex             // guards fset/meta/entries creation
	fset    *token.FileSet         //cplint:guardedby mu
	meta    map[string]*listPkg    //cplint:guardedby mu
	entries map[string]*checkEntry //cplint:guardedby mu
}

// checkEntry is the once-per-import-path type-check slot.
type checkEntry struct {
	once sync.Once
	pkg  *Package
	err  error
}

// Fset returns the loader's shared file set, creating it on first use.
func (l *Loader) Fset() *token.FileSet {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	return l.fset
}

// AddFixtureTree registers every package directory under root (a
// GOPATH-style src tree: the path of a package is its directory
// relative to root) for subsequent Load calls.
func (l *Loader) AddFixtureTree(root string) error {
	if l.Fixtures == nil {
		l.Fixtures = make(map[string]string)
	}
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || !info.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				l.Fixtures[filepath.ToSlash(rel)] = path
				break
			}
		}
		return nil
	})
}

// Load type-checks the packages matched by the given `go list`
// patterns (plus their dependency closure) and returns the matched
// packages only, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths, err := l.list(false, patterns...)
	if err != nil {
		return nil, err
	}
	return l.LoadPaths(paths...)
}

// LoadPaths type-checks exactly the named import paths (fixture paths
// or module/stdlib paths) and returns them in the given order. The
// per-path checks fan out over Workers goroutines; errors surface in
// path order, so the result is worker-count-independent.
func (l *Loader) LoadPaths(paths ...string) ([]*Package, error) {
	pkgs := make([]*Package, len(paths))
	errs := make([]error, len(paths))
	par.For(len(paths), l.Workers, func(i int) {
		pkgs[i], errs[i] = l.check(paths[i])
	})
	for i, p := range paths {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if n := len(pkgs[i].typeErrs); n > 0 {
			return nil, fmt.Errorf("type-checking %s: %v (and %d more)", p, pkgs[i].typeErrs[0], n-1)
		}
	}
	return pkgs, nil
}

// list runs `go list` and returns matched import paths; with deps it
// also fills the metadata cache for the whole dependency closure. The
// subprocess and the cache write are serialized under the loader lock.
func (l *Loader) list(deps bool, patterns ...string) ([]string, error) {
	args := []string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Standard"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.meta == nil {
		l.meta = make(map[string]*listPkg)
	}
	var paths []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list -json: %v", err)
		}
		if _, ok := l.meta[p.ImportPath]; !ok {
			l.meta[p.ImportPath] = p
		}
		paths = append(paths, p.ImportPath)
	}
	if deps {
		// -deps emits dependencies first; the matched patterns are the
		// trailing entries, but callers of list(true, ...) only want the
		// cache side effect.
		return paths, nil
	}
	sort.Strings(paths)
	return paths, nil
}

// metaFor returns go list metadata for path, querying the go command
// on a cache miss (this pulls in the path's own dependency closure).
func (l *Loader) metaFor(path string) (*listPkg, error) {
	l.mu.Lock()
	m, ok := l.meta[path]
	l.mu.Unlock()
	if ok {
		return m, nil
	}
	if _, err := l.list(true, path); err != nil {
		return nil, err
	}
	l.mu.Lock()
	m, ok = l.meta[path]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("package %q not found by go list", path)
	}
	return m, nil
}

// check parses and type-checks one package (and, recursively, its
// imports), caching the result. Concurrent demands for the same path
// share one check: the entry's once runs the work, later callers block
// on it. The import graph is acyclic, so the blocking cannot deadlock.
func (l *Loader) check(path string) (*Package, error) {
	l.mu.Lock()
	if l.entries == nil {
		l.entries = make(map[string]*checkEntry)
	}
	e, ok := l.entries[path]
	if !ok {
		e = new(checkEntry)
		l.entries[path] = e
	}
	l.mu.Unlock()
	e.once.Do(func() { e.pkg, e.err = l.doCheck(path) })
	return e.pkg, e.err
}

// doCheck performs the actual parse + type-check of one package. Hard
// type errors are accumulated on the package (surfaced by LoadPaths)
// rather than failing the check, so diamond imports of a broken
// package do not re-report it.
func (l *Loader) doCheck(path string) (*Package, error) {
	var dir string
	var files []string
	var std bool
	if fdir, ok := l.Fixtures[path]; ok {
		ents, err := os.ReadDir(fdir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				files = append(files, name)
			}
		}
		sort.Strings(files)
		dir = fdir
	} else {
		m, err := l.metaFor(path)
		if err != nil {
			return nil, err
		}
		dir, files, std = m.Dir, m.GoFiles, m.Standard
	}
	if len(files) == 0 {
		// `go list -e` reports unresolvable patterns as pseudo-packages
		// with no files; surface them as load errors, not clean packages.
		return nil, fmt.Errorf("package %s has no Go files", path)
	}

	fset := l.Fset()
	pkg := &Package{Path: path, Dir: dir, fset: fset, std: std}
	for _, name := range files {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, af)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	deps := make(map[string]*Package)
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == "unsafe" {
				return types.Unsafe, nil
			}
			// Fixture trees shadow the module: "cptraffic/internal/par"
			// inside testdata resolves to the fixture stub, not the
			// real package, so fixtures stay self-contained.
			dep, err := l.check(imp)
			if err != nil {
				return nil, err
			}
			deps[imp] = dep
			return dep.Types, nil
		}),
		Error: func(err error) {
			if te, ok := err.(types.Error); ok && !te.Soft {
				pkg.typeErrs = append(pkg.typeErrs, te)
			}
		},
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.typeErrs) == 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.directives = parseDirectives(fset, pkg.Files)
	depPaths := make([]string, 0, len(deps))
	for p := range deps {
		depPaths = append(depPaths, p)
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		pkg.deps = append(pkg.deps, deps[p])
	}
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
