package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc checks functions annotated //cplint:hotpath for constructs
// that allocate on the heap or box values into interfaces. The runtime
// AllocsPerRun gates catch a regression after the fact; this analyzer
// names the exact expression that allocates, at compile time:
//
//   - any use of package fmt (formatting boxes every operand and
//     builds strings; hot paths use strconv.Append* into reused
//     buffers);
//   - string concatenation inside a loop (each + builds a new string);
//   - make/new (every call is a fresh allocation; hot paths reuse
//     buffers owned by the receiver);
//   - func literals that capture variables (the closure environment is
//     heap-allocated);
//   - append to a slice freshly declared in the function (growing a
//     throwaway slice; hot paths append to reused receiver-owned
//     buffers or to slices reset with buf[:0]);
//   - passing a concrete value to an interface parameter (the value is
//     boxed, and escapes unless inlining saves it).
//
// The check runs in every package — it fires only inside annotated
// functions, so there is nothing to gate.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap allocation and interface boxing inside //cplint:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d := claimDoc(pass.Pkg, DirHotPath, fd.Doc, fd.Pos()); d == nil {
				continue
			}
			if fd.Body == nil {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// An allocChecker runs the hot-path allocation checks over one
// function body. hotalloc uses it directly (strict: every site in an
// annotated body); hotcall reuses it for call-graph-propagated
// functions with a cold-branch skip predicate and a chain-naming
// suffix on every message.
type allocChecker struct {
	pass *Pass
	skip func(token.Pos) bool            // nil: check every site
	emit func(pos token.Pos, msg string) // final reporting hook
}

func (c *allocChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.skip != nil && c.skip(pos) {
		return
	}
	c.emit(pos, fmt.Sprintf(format, args...))
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	c := &allocChecker{
		pass: pass,
		emit: func(pos token.Pos, msg string) { pass.Reportf(pos, "%s", msg) },
	}
	checkAllocBody(c, fd)
}

func checkAllocBody(c *allocChecker, fd *ast.FuncDecl) {
	pass := c.pass
	info := pass.Pkg.Info
	fresh := freshSlices(info, fd)

	var walk func(n ast.Node, inLoop bool)
	inspect := func(n ast.Node, inLoop bool) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			for _, c := range childNodes(n) {
				walk(c, true)
			}
			return false
		case *ast.FuncLit:
			reportCaptures(c, fd, n)
			// Still check the literal's body: it runs on the hot path.
			walk(n.Body, inLoop)
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && inLoop && isString(info.TypeOf(n)) {
				c.reportf(n.OpPos, "string concatenation %s allocates on every loop iteration; use strconv.Append*/byte-slice building", types.ExprString(n))
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && inLoop && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				c.reportf(n.TokPos, "string += %s allocates on every loop iteration", types.ExprString(n.Rhs[0]))
			}
		case *ast.CallExpr:
			checkHotCall(c, n, fresh)
		}
		return true
	}
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			return inspect(m, inLoop)
		})
	}
	walk(fd.Body, false)
}

// childNodes lists the direct AST children worth descending into for a
// loop statement (init/cond/post plus body).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		for _, c := range []ast.Node{n.Init, n.Cond, n.Post, n.Body} {
			if c != nil && !isNilNode(c) {
				out = append(out, c)
			}
		}
	case *ast.RangeStmt:
		if n.X != nil {
			out = append(out, n.X)
		}
		out = append(out, n.Body)
	}
	return out
}

func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.BlockStmt:
		return v == nil
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return n == nil
}

// checkHotCall flags fmt usage, make/new, appends to throwaway slices,
// and interface boxing at call boundaries.
func checkHotCall(c *allocChecker, call *ast.CallExpr, fresh map[types.Object]bool) {
	info := c.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		reportBoxingConversion(c, call)
		return
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fn].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "%s allocates; hot paths reuse receiver-owned buffers", types.ExprString(call))
			case "new":
				c.reportf(call.Pos(), "%s allocates; hot paths reuse receiver-owned state", types.ExprString(call))
			case "append":
				if len(call.Args) > 0 {
					if root := exprRootObj(info, call.Args[0]); root != nil && fresh[root] {
						c.reportf(call.Pos(), "append grows %s, a slice freshly allocated in this function; append into a reused buffer (field or buf[:0])", root.Name())
					}
					if _, isLit := call.Args[0].(*ast.CompositeLit); isLit {
						c.reportf(call.Pos(), "append to a composite literal allocates a throwaway slice")
					}
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.reportf(call.Pos(), "fmt.%s allocates (boxes operands, builds strings); use strconv.Append* into a reused buffer", obj.Name())
			return
		}
	}
	reportInterfaceArgs(c, call)
}

// reportBoxingConversion flags explicit conversions to interface types.
func reportBoxingConversion(c *allocChecker, call *ast.CallExpr) {
	info := c.pass.Pkg.Info
	t := info.TypeOf(call)
	if t == nil || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(t) {
		return
	}
	at := info.TypeOf(call.Args[0])
	if at == nil || types.IsInterface(at) || isUntypedNil(info, call.Args[0]) {
		return
	}
	c.reportf(call.Pos(), "conversion %s boxes a concrete value into an interface", types.ExprString(call))
}

// reportInterfaceArgs flags concrete values passed to interface
// parameters (boxing at the call boundary).
func reportInterfaceArgs(c *allocChecker, call *ast.CallExpr) {
	info := c.pass.Pkg.Info
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			st, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(info, arg) {
			continue
		}
		// Passing a pointer into an interface does not copy the
		// pointee, but the interface header may still escape; flag
		// only non-pointer concrete values, the unambiguous boxing.
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		c.reportf(arg.Pos(), "argument %s is boxed into interface %s", types.ExprString(arg), pt.String())
	}
}

// reportCaptures flags variables a func literal captures from the
// enclosing function; the captured environment is heap-allocated, and
// capturing a loop variable additionally pins one environment per
// iteration.
func reportCaptures(c *allocChecker, fd *ast.FuncDecl, lit *ast.FuncLit) {
	info := c.pass.Pkg.Info
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		// Captured iff declared in the enclosing function but outside
		// the literal. Package-level vars do not enlarge the closure
		// environment.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			seen[obj] = true
			c.reportf(id.Pos(), "closure captures %s, forcing a heap-allocated environment; pass it as a parameter or restructure without a closure", obj.Name())
		}
		return true
	})
}

// freshSlices collects slice-typed locals whose declaration allocates
// (or starts empty) in this function: `var s []T`, `s := []T{...}`,
// `s := make([]T, ...)`. Appending to these grows throwaway storage.
// Slices derived from parameters, receiver fields, or reslicing
// (buf[:0]) are reused storage and not collected.
func freshSlices(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		switch r := rhs.(type) {
		case nil:
			fresh[obj] = true // var s []T
		case *ast.CompositeLit:
			fresh[obj] = true
		case *ast.CallExpr:
			if fn, ok := r.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[fn].(*types.Builtin); ok && b.Name() == "make" {
					fresh[obj] = true
				}
			}
		case *ast.Ident:
			if r.Name == "nil" {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || i >= len(n.Rhs) {
					continue
				}
				mark(id, n.Rhs[i])
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					mark(id, rhs)
				}
			}
		}
		return true
	})
	return fresh
}

// exprRootObj unwraps index/selector/paren chains to the root object.
func exprRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			return nil // field-based storage is receiver-owned, reused
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			return nil // buf[:0] reuse pattern
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
