package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// The machine-readable report schema. The shape is part of cplint's
// contract with CI: fields are only ever added, never renamed or
// removed, so downstream parsers keep working across versions.

// ReportVersion identifies the JSON report schema.
const ReportVersion = "cplint/4"

type jsonReport struct {
	Version     string           `json:"version"`
	Packages    int              `json:"packages"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

// relPath rebases an absolute diagnostic path onto base (the module
// root) with forward slashes, for stable, machine-portable reports.
func relPath(base, name string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(name)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// WriteJSON renders diagnostics as the stable cplint/4 JSON report.
// Diagnostics must already be in their deterministic sorted order (as
// returned by Analyze); the writer adds nothing nondeterministic.
func WriteJSON(w io.Writer, diags []Diagnostic, packages int, base string) error {
	rep := jsonReport{
		Version:     ReportVersion,
		Packages:    packages,
		Diagnostics: []jsonDiagnostic{}, // [] not null when clean
	}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
			Fixable:  len(d.Fixes) > 0,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Minimal SARIF 2.1.0 — just enough for GitHub code scanning to turn
// findings into PR annotations: one run, one rule per analyzer, one
// result per diagnostic with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string    `json:"id"`
	ShortDesc sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log suitable for
// github/codeql-action/upload-sarif. Every analyzer becomes a rule so
// suppressed-but-declared checks still show in the scanning config UI.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic, base string) error {
	driver := sarifDriver{Name: "cplint", Rules: []sarifRule{}}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDesc: sarifText{Text: a.Doc}})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: relPath(base, d.Pos.Filename)},
				Region:   sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
