package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive checks that every switch over one of the repo's small
// enums — cp.EventType, cp.DeviceType, cp.EMMState, cp.ECMState,
// cp.UEState, and the sm state types — either covers every declared
// value or carries an explicit default clause. The paper's artifact is
// a two-level hierarchical state machine, so these switches are its
// semantic heart: a missed case is a silently dropped transition, the
// exact bug class a faithful reproduction cannot afford.
//
// A switch that is deliberately partial (e.g. a classifier that only
// distinguishes two categories) is annotated
// //cplint:partial-ok <reason>, with the same machine-checked hygiene
// as ordered-ok: the reason is mandatory and the annotation must be
// attached to a partially-covered enum switch.
//
// An enum, for this check, is a named integer type declared in a
// package whose import path ends in internal/cp or internal/sm, with
// at least two typed constants of that type in the defining package.
// Members are deduplicated by constant value: sm.State deliberately
// overlays the LTE/EMM-ECM/5G-SA state spaces on the same small
// integers, so covering every *value* is what exhaustiveness means.
// The `num*` sentinels are untyped and therefore never count as
// members.
//
// The check runs in the determinism-critical packages plus internal/cp
// and internal/fiveg — everywhere transitions are dispatched. cmd/
// CLIs are exempt, but an annotation placed there is still claimed so
// directive hygiene does not call it a mistake.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "checks that switches over cp/sm enums cover every value or carry a default",
	Run:  runExhaustive,
}

// exhaustivePackages extends the detmap/detsource gate with the enum
// home package and the 5G adapters, both of which dispatch on enums.
var exhaustivePackages = []string{"internal/cp", "internal/fiveg"}

func inExhaustivePackage(path string) bool {
	if inDetPackage(path) {
		return true
	}
	for _, p := range exhaustivePackages {
		if pathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// enumDef describes one checkable enum type.
type enumDef struct {
	obj *types.TypeName
	// values holds the distinct constant values in increasing order.
	values []int64
	// names maps each value to its declared names ("LTEIdle/EEIdle"
	// for the overlaid state spaces), joined in declaration-name order.
	names map[int64]string
}

// enumHomePackage reports whether pkg declares checkable enums.
func enumHomePackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pathHasSuffix(pkg.Path(), "internal/cp") || pathHasSuffix(pkg.Path(), "internal/sm")
}

// enumFor resolves t to an enum definition, or nil if t is not a
// checkable enum. Definitions are cached per call site's package walk
// via the enums map.
func enumFor(t types.Type, enums map[*types.TypeName]*enumDef) *enumDef {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if def, seen := enums[obj]; seen {
		return def
	}
	enums[obj] = nil // negative-cache until proven otherwise
	if !enumHomePackage(obj.Pkg()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	def := &enumDef{obj: obj, names: make(map[int64]string)}
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(c.Val())
		if !exact {
			continue
		}
		if prev, seen := def.names[v]; seen {
			def.names[v] = prev + "/" + name
		} else {
			def.names[v] = name
			def.values = append(def.values, v)
		}
	}
	if len(def.values) < 2 {
		return nil
	}
	sort.Slice(def.values, func(i, j int) bool { return def.values[i] < def.values[j] })
	enums[obj] = def
	return def
}

func runExhaustive(pass *Pass) error {
	gated := inExhaustivePackage(pass.Pkg.Path)
	info := pass.Pkg.Info
	enums := make(map[*types.TypeName]*enumDef)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := info.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			def := enumFor(t, enums)
			if def == nil {
				return true
			}
			missing, hasDefault := uncovered(info, sw, def)
			if hasDefault || len(missing) == 0 {
				return true
			}
			// The annotation is claimed even outside the gated packages,
			// so a legitimately placed partial-ok in a CLI is not called
			// unattached by directive hygiene.
			if d := directiveAt(pass.Pkg, DirPartialOK, sw.Switch); d != nil {
				return true
			}
			if !gated {
				return true
			}
			var names []string
			for _, v := range missing {
				names = append(names, def.names[v])
			}
			covered := len(def.values) - len(missing)
			fix := SuggestedFix{
				Message: "add an explicit default clause naming the unhandled values",
				Edits: []TextEdit{pass.Edit(sw.Body.Rbrace, sw.Body.Rbrace,
					fmt.Sprintf("default: // unhandled: %s\n", strings.Join(names, ", ")))},
			}
			pass.ReportFixf(sw.Switch, fix,
				"switch on %s covers %d of %d values of %s (missing %s); add the missing cases or an explicit default, or annotate //cplint:partial-ok <reason>",
				types.ExprString(sw.Tag), covered, len(def.values), def.obj.Name(), strings.Join(names, ", "))
			return true
		})
	}
	return nil
}

// uncovered returns the enum values no case clause covers and whether
// the switch has a default clause. Non-constant case expressions prove
// nothing and are ignored; only a default can make such a switch
// exhaustive.
func uncovered(info *types.Info, sw *ast.SwitchStmt, def *enumDef) (missing []int64, hasDefault bool) {
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			if v, exact := constant.Int64Val(tv.Value); exact {
				covered[v] = true
			}
		}
	}
	for _, v := range def.values {
		if !covered[v] {
			missing = append(missing, v)
		}
	}
	return missing, hasDefault
}
