// Package ffold is the floatfold fixture: order-sensitive float
// reductions in map ranges and par closures. The package sits outside
// the determinism-critical list on purpose — floatfold runs
// module-wide, unlike detmap.
package ffold

import "cptraffic/internal/par"

// MapFold folds floats in map iteration order.
func MapFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `sum \+= folds a float in map iteration order`
	}
	return sum
}

// Scale multiplies in map order: the same class.
func Scale(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `p \*= folds a float in map iteration order`
	}
	return p
}

// KeyedFold accumulates into the slot owned by the iteration key.
func KeyedFold(src, dst map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// LocalFold accumulates into a variable declared inside the loop:
// nothing crosses iterations.
func LocalFold(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		t := 0.0
		for _, v := range vs {
			t += v
		}
		out[k] = t
	}
}

// IntFold is exact in any order.
func IntFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// ParFold folds a float across workers in scheduling order.
func ParFold(xs []float64) float64 {
	var sum float64
	par.For(len(xs), 4, func(i int) {
		sum += xs[i] // want `sum \+= folds a float across par workers`
	})
	return sum
}

// ParSlots writes index-disjoint slots: deterministic under the pool's
// unique-index contract.
func ParSlots(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.For(len(xs), 4, func(i int) {
		out[i] += xs[i] * 2
	})
	return out
}

// ParLocal folds into worker-private state.
func ParLocal(xs []float64, out []float64) {
	par.Do(4, func(w int) {
		t := 0.0
		for i := w; i < len(xs); i += 4 {
			t += xs[i]
		}
		out[w] = t
	})
}

// Annotated tolerates the drift, with the justification attached.
func Annotated(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//cplint:partial-ok downstream rounds to whole counts, ulp drift cannot surface
		sum += v
	}
	return sum
}

// Ordered sits inside a loop already annotated ordered-ok: the range
// annotation asserts order-insensitivity for the whole body.
func Ordered(m map[string]float64) float64 {
	var sum float64
	//cplint:ordered-ok fixture: the range annotation covers folds in its body
	for _, v := range m {
		sum += v
	}
	return sum
}
