// Package fiveg mirrors the real 5G adapters: the whole package is the
// sanctioned clone-then-mutate surface, so nothing here is flagged.
package fiveg

import "cptraffic/internal/core"

// Adapt stands in for the real clone-then-mutate adapters; the package
// whitelist makes its writes legal.
func Adapt(ms *core.ModelSet) *core.ModelSet {
	ms.Machine = "5G-SA"
	for _, d := range ms.Devices {
		d.Weight *= 0.5
	}
	return ms
}
