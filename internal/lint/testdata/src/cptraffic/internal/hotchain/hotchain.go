// Package hotchain is the hotcall fixture: a //cplint:hotpath root
// whose allocation happens two calls down, a cold early-exit branch,
// and a //cplint:coldpath stop — the propagated check follows the call
// graph, not annotations.
package hotchain

import "fmt"

// Root is the propagation root: its own body is clean (hotalloc checks
// it strictly), but everything it reaches on the steady path inherits
// the hot contract.
//
//cplint:hotpath fixture: the propagation root
func Root(n int) int {
	primed := setup(n)
	return mid(n) + primed
}

// setup is annotated off the steady path: propagation stops here even
// though Root calls it directly.
//
//cplint:coldpath fixture: one-shot priming, not on the steady path
func setup(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// mid is unannotated: it inherits hotness from Root. Its early-exit
// branch may allocate, and the call edge leaving that branch is
// pruned.
func mid(n int) int {
	if n <= 0 {
		return slowpath(n)
	}
	return leaf(n)
}

// slowpath is reachable only through mid's early-exit branch: never
// hot, so its allocation goes unflagged.
func slowpath(n int) int {
	return len(fmt.Sprintf("%d", n))
}

// leaf allocates two calls below the root: flagged, with the chain.
func leaf(n int) int {
	buf := make([]int, n) // want `make\(\[\]int, n\) allocates; hot paths reuse receiver-owned buffers \[hot chain: Root → mid → leaf\]`
	s := 0
	for _, v := range buf {
		s += v
	}
	return s
}

// encoder is module-local, so CHA resolves its dispatch and the chain
// crosses the interface boundary.
type encoder interface {
	encode(n int) string
}

type jsonEnc struct{}

func (jsonEnc) encode(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates \(boxes operands, builds strings\); use strconv\.Append\* into a reused buffer \[hot chain: Encode → jsonEnc\.encode\]`
}

// Encode is a second root dispatching through the interface.
//
//cplint:hotpath fixture: interface-dispatch root
func Encode(e encoder, n int) string {
	return e.encode(n)
}
