// Package stats is the detsource fixture: it sits at a
// determinism-critical import path, so ambient clocks, environment
// reads, and the global rand source are banned here.
package stats

import (
	"math/rand"
	"os"
	"time"
)

// Wallclock reads the ambient clock.
func Wallclock() time.Time {
	return time.Now() // want `time.Now is nondeterministic`
}

// FromEnv reads ambient process state.
func FromEnv() string {
	return os.Getenv("CPTRAFFIC_SEED") // want `os.Getenv is nondeterministic`
}

// GlobalRoll draws from the shared process-global source.
func GlobalRoll() int {
	return rand.Intn(6) // want `draws from the process-global source`
}

// Seeded constructs an explicit source: deterministic, allowed.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SeededRoll draws from an explicit source: methods are fine.
func SeededRoll(r *rand.Rand) int {
	return r.Intn(6)
}

// Referencing a banned function as a value is just as nondeterministic
// as calling it.
var clock = time.Now // want `time.Now is nondeterministic`
