// Package concneg is the negative-control fixture for the concurrency
// directives: each malformed or misplaced guardedby/unguarded-ok/
// leak-ok/detached-ok annotation must produce exactly one hygiene
// diagnostic — and the package sits outside the concurrency gate, so
// the leaky goroutine at the bottom stays unreported.
package concneg

import "sync"

// A Bad carries the malformed guard contracts.
type Bad struct {
	mu   sync.Mutex
	n    int //cplint:guardedby
	k    int //cplint:guardedby lock
	lock int
}

//cplint:unguarded-ok floating suppression with no guarded access below
var x int

//cplint:leak-ok reasoned, but attached to a var, not a go statement
var y int

//cplint:detached-ok reasoned, but attached to a var, not an argument
var z int

// Spin would be flagged inside a gated package; concneg is not gated.
func Spin(ch chan int) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}
