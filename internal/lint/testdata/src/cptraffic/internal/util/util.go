// Package util sits outside the determinism-critical package list:
// detmap and detsource do not run here, so none of these (deliberately
// order-sensitive) constructs are reported.
package util

import "time"

// FloatSum would be flagged inside a determinism-critical package.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Stamp would be flagged inside a determinism-critical package.
func Stamp() int64 {
	return time.Now().UnixNano()
}
