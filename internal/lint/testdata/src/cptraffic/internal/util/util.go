// Package util sits outside the determinism-critical package list:
// detmap and detsource do not run here, so the map range and the
// wall-clock read are not reported. floatfold, by contrast, runs
// module-wide — the float fold is flagged even out here.
package util

import "time"

// FloatSum escapes detmap (not a gated package) but not floatfold.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `sum \+= folds a float in map iteration order`
	}
	return sum
}

// Stamp would be flagged inside a determinism-critical package.
func Stamp() int64 {
	return time.Now().UnixNano()
}
