// Package world is the detmap fixture: it sits at a determinism-critical
// import path, so every map range and maps.Keys call here is checked.
package world

import (
	"maps"
	"slices"
	"sort"
)

// IntSum accumulates commutatively into an integer: order-insensitive.
func IntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// FloatSum folds floats in map order: the partial sums depend on it.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `float partial sums differ per order`
		sum += v
	}
	return sum
}

// KeyIndexed writes each key's own slot: order-insensitive.
func KeyIndexed(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

// LastWins keeps whichever key the runtime happens to visit last.
func LastWins(m map[string]int) string {
	last := ""
	for k := range m { // want `assignment to last \(declared outside the loop\)`
		last = k
	}
	return last
}

// CollectThenSort is the canonical prelude: append, then immediately
// sort, so nothing can observe the transient map order.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectNoSort leaks map order into the returned slice.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `assignment to keys \(declared outside the loop\)`
		keys = append(keys, k)
	}
	return keys
}

// EarlyReturn selects an arbitrary element.
func EarlyReturn(m map[string]int) string {
	for k, v := range m { // want `return inside the loop`
		if v > 0 {
			return k
		}
	}
	return ""
}

// CallsOut hands elements to an arbitrary function in map order.
func CallsOut(m map[string]int, sink func(string)) {
	for k := range m { // want `call to sink may observe iteration order`
		sink(k)
	}
}

// DeleteCurrent deletes the key being visited: well-defined per spec.
func DeleteCurrent(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Annotated is unprovable (logf is a call) but carries a human
// justification, so it is accepted.
func Annotated(m map[string]int, logf func(string)) {
	//cplint:ordered-ok logf is progress reporting only and ignores order
	for k := range m {
		logf(k)
	}
}

// SortedKeys wraps maps.Keys in slices.Sorted: canonical order.
func SortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// UnsortedKeys iterates the raw key sequence.
func UnsortedKeys(m map[string]int, sink func(string)) {
	for k := range maps.Keys(m) { // want `maps.Keys yields elements in nondeterministic order`
		sink(k)
	}
}
