// Package par is a stub of the repo's worker pool with the same entry
// points, so the parshare fixture can exercise closure inspection
// without importing the real module from inside testdata.
package par

// Do runs fn(w) for every worker w in [0, workers).
func Do(workers int, fn func(w int)) {
	for w := 0; w < workers; w++ {
		fn(w)
	}
}

// For runs fn(i) for every i in [0, n), strided across workers.
func For(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
