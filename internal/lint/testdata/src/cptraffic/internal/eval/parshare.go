// Package eval is the parshare fixture: closures handed to par.Do and
// par.For may only write captured state through index-disjoint slots.
package eval

import "cptraffic/internal/par"

// Disjoint writes out[i], addressed by the closure's own index: the
// layout every worker count produces is identical.
func Disjoint(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.For(len(xs), 4, func(i int) {
		out[i] = xs[i] * 2
	})
	return out
}

// Strided derives i inside the closure from the worker id: still
// disjoint, still accepted.
func Strided(n, workers int, out []int) {
	par.Do(workers, func(w int) {
		for i := w; i < n; i += workers {
			out[i] = i
		}
	})
}

// SharedScalar accumulates into one captured variable from every
// worker: the canonical data race.
func SharedScalar(xs []float64) float64 {
	var sum float64
	par.For(len(xs), 4, func(i int) {
		sum += xs[i] // want `write to captured sum is shared across par workers`
	})
	return sum
}

// SharedMap writes a captured map: concurrent map writes race even on
// distinct keys.
func SharedMap(keys []string) map[string]int {
	m := make(map[string]int)
	par.For(len(keys), 4, func(i int) {
		m[keys[i]]++ // want `write into captured map m`
	})
	return m
}

// PointerWrite shares one slot through a captured pointer.
func PointerWrite(p *int) {
	par.Do(2, func(w int) {
		*p = w // want `write through captured pointer p`
	})
}

// FixedSlot writes one element from every worker: the index does not
// involve any closure-local variable.
func FixedSlot(out []int) {
	par.Do(2, func(w int) {
		out[0] = w // want `write to captured out is shared across par workers`
	})
}

// PerWorkerAppend grows a worker-indexed bucket: the outer index is the
// worker id, so the slot is disjoint even though append reassigns it.
func PerWorkerAppend(n, workers int, bufs [][]int) {
	par.Do(workers, func(w int) {
		for i := w; i < n; i += workers {
			bufs[w] = append(bufs[w], i)
		}
	})
}
