// Package retainneg is the retain hygiene negative control: it lives
// outside the determinism-gated packages — retain still runs, because
// the contract follows the //cplint:reused type, not an import path —
// and every annotation in it is malformed in one way. The expected
// diagnostics are asserted in annotations_test.go (a directive
// occupies its whole line, so it cannot also carry a want comment).
package retainneg

import "cptraffic/internal/trace"

var keep []int64

// MissingReason retains with a reasonless directive: the escape itself
// is suppressed (the annotation attaches), but the missing
// justification is an error.
func MissingReason(b *trace.Batch) {
	//cplint:retained-ok
	keep = b.T
}

//cplint:retained-ok a fine reason, attached to no retaining statement
var unattached = 0

// NotAType misapplies the reused marker to a variable: the contract
// only means something on a type declaration.
//
//cplint:reused a variable is not a type
var NotAType = 0
