// Package sink is the retain fixture: consumers of the reused
// trace.Batch that hold columns past the callback frame (flagged) next
// to the sanctioned copy idioms (clean). The package sits outside the
// determinism-gated set on purpose — retain follows the
// //cplint:reused type, not an import-path list.
package sink

import "cptraffic/internal/trace"

var (
	saved      []int64
	savedBatch *trace.Batch
	rows       []trace.Event
	total      int64
)

// Collector is the helper-retention target: keep stores the column it
// is handed into a field, and the call-graph summary carries that fact
// back to every call site.
type Collector struct {
	Times []int64
}

func (c *Collector) keep(col []int64) {
	c.Times = col
}

var global Collector

// Direct retains the batch and a column directly.
func Direct(b *trace.Batch) {
	savedBatch = b // want `reused buffer escapes: b is assigned to package variable savedBatch`
	saved = b.T    // want `reused buffer escapes: b\.T is assigned to package variable saved`
}

// FieldStore stores a column into a package-level struct field.
func FieldStore(b *trace.Batch) {
	global.Times = b.T // want `b\.T is stored into field global\.Times`
}

// Helper retains through a plain function call: stash's summary says
// its parameter escapes, and the call site names what happened.
func Helper(b *trace.Batch) {
	stash(b.T) // want `b\.T is passed to stash, which retains it: col is assigned to package variable saved`
}

func stash(col []int64) {
	saved = col
}

// Interp is the interprocedural acceptance case: callback → helper →
// struct field store, with the store landing in an object that
// outlives everything.
func Interp(b *trace.Batch) {
	global.keep(b.T) // want `a reused-buffer value is passed to Collector\.keep, which stores it into global`
}

// Sink is a module-local interface; CHA resolves Keep to every
// implementer, so retention inside memSink travels to the interface
// call site.
type Sink interface {
	Keep(col []int64)
}

type memSink struct{}

var kept [][]int64

func (memSink) Keep(col []int64) {
	kept = append(kept, col)
}

// Dispatch hands a column through the interface.
func Dispatch(b *trace.Batch, s Sink) {
	s.Keep(b.T) // want `b\.T is passed to memSink\.Keep, which retains it`
}

// Chan and Spawn cover the remaining sinks: channels and goroutines
// both outlive the callback frame.
func Chan(b *trace.Batch, ch chan []int64) {
	ch <- b.T // want `b\.T is sent on a channel`
}

func observe(col []int64) int { return len(col) }

func Spawn(b *trace.Batch) {
	go observe(b.T) // want `a reused-buffer value is captured by goroutine go observe`
}

// Callback shows the frame boundary on a literal: the callback is its
// own frame, and retention inside it is flagged there.
func Callback(events []trace.Event) {
	trace.ScanBatches(events, func(b *trace.Batch) bool {
		saved = b.T // want `b\.T is assigned to package variable saved`
		return true
	})
}

// Clean exercises every sanctioned idiom with zero annotations: none
// of these flow a live column anywhere that outlives the frame.
func Clean(b *trace.Batch) int {
	rows = b.AppendTo(rows)              // row-copy idiom
	saved = append([]int64(nil), b.T...) // fresh-backing copy
	saved = append(b.T[:0:0], b.T...)    // zero-cap reslice copy
	savedBatch = trace.CopyBatch(b)      // deep copy
	var sum int64
	for _, t := range b.T {
		sum += t // scalar loads carry no aliases
	}
	total = sum
	forward(b) // handing the batch to another reused-typed frame is the contract, not an escape
	return b.Len()
}

func forward(b *trace.Batch) {
	total += int64(b.Len())
}

var audit []int64

// Audited retains deliberately, with the reasoned annotation.
func Audited(b *trace.Batch) {
	//cplint:retained-ok fixture: the audit tap drains synchronously before the next batch lands
	audit = b.T
}
