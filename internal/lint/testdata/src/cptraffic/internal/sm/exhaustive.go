// Package sm is the exhaustive fixture: switches over the cp enums and
// a local state type that, like the real sm.State, overlays several
// state spaces on the same small integers.
package sm

import "cptraffic/internal/cp"

// State overlays two machine-specific state spaces, so exhaustiveness
// is judged by value, not by name.
type State uint8

const (
	LTEIdle State = iota
	LTEConnected
	LTERegistered
)

const (
	EEIdle State = iota
	EEActive
)

// Full covers every event: clean.
func Full(e cp.EventType) int {
	switch e {
	case cp.Attach:
		return 1
	case cp.Detach:
		return 2
	case cp.ServiceRequest:
		return 3
	case cp.Handover:
		return 4
	}
	return 0
}

// Defaulted covers one event and defaults the rest: clean.
func Defaulted(e cp.EventType) int {
	switch e {
	case cp.Attach:
		return 1
	default:
		return 0
	}
}

// Partial silently drops two events.
func Partial(e cp.EventType) int {
	switch e { // want `covers 2 of 4 values of EventType \(missing ServiceRequest, Handover\)`
	case cp.Attach:
		return 1
	case cp.Detach:
		return 2
	}
	return 0
}

// Dynamic compares against a non-constant: only a default could make
// this exhaustive.
func Dynamic(e, other cp.EventType) int {
	switch e { // want `covers 1 of 4 values of EventType`
	case cp.Attach:
		return 1
	case other:
		return 2
	}
	return 0
}

// Overlaid covers value 1 through the EE name and misses value 2:
// members are deduplicated by value.
func Overlaid(s State) int {
	switch s { // want `covers 2 of 3 values of State \(missing LTERegistered\)`
	case LTEIdle:
		return 1
	case EEActive:
		return 2
	}
	return 0
}

// AllValues covers every distinct value using a mix of names: clean.
func AllValues(s State) int {
	switch s {
	case EEIdle:
		return 1
	case LTEConnected:
		return 2
	case LTERegistered:
		return 3
	}
	return 0
}

// Annotated is deliberately partial, with the justification attached.
func Annotated(e cp.EventType) int {
	//cplint:partial-ok only attach matters to this counter
	switch e {
	case cp.Attach:
		return 1
	}
	return 0
}

// Ignored shapes: a tagless switch and a switch over a non-enum.
func Ignored(e cp.EventType, n int) int {
	switch {
	case e == cp.Attach:
		return 1
	}
	switch n {
	case 0:
		return 0
	}
	return 2
}

// PointerState returns the first transition for a UE state, dropping
// StateDeregistered.
func PointerState(s cp.UEState) int {
	switch s { // want `covers 2 of 3 values of UEState \(missing StateDeregistered\)`
	case cp.StateConnected:
		return 1
	case cp.StateIdle:
		return 2
	}
	return 0
}
