// Package hot is the hotalloc fixture: only functions annotated
// //cplint:hotpath are checked, wherever the package lives.
package hot

import (
	"fmt"
	"strconv"
)

type enc struct {
	buf []byte
}

// Format demonstrates the formatting anti-patterns on a hot path.
//
//cplint:hotpath fixture
func (e *enc) Format(vals []int64) string {
	s := ""
	for _, v := range vals {
		s += strconv.FormatInt(v, 10) // want `string \+= .* allocates on every loop iteration`
	}
	line := fmt.Sprintf("%d values", len(vals)) // want `fmt.Sprintf allocates`
	return s + line
}

// Grow allocates and grows a throwaway slice.
//
//cplint:hotpath fixture
func Grow(n int) []int {
	out := make([]int, 0, n) // want `make\(\[\]int, 0, n\) allocates`
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append grows out, a slice freshly allocated`
	}
	return out
}

// Reuse appends into a receiver-owned buffer reset with buf[:0] — the
// sanctioned pattern, reported clean.
//
//cplint:hotpath fixture
func (e *enc) Reuse(v int64) []byte {
	b := append(e.buf[:0], 'v', ' ')
	b = strconv.AppendInt(b, v, 10)
	e.buf = b
	return b
}

// Capture builds closures that pin their environment on the heap.
//
//cplint:hotpath fixture
func Capture(xs []int, use func(func() int)) {
	total := 0
	for _, x := range xs {
		use(func() int { return total + x }) // want `closure captures total` `closure captures x`
	}
}

func sink(v any) { _ = v }

// Box passes a concrete value to an interface parameter.
//
//cplint:hotpath fixture
func Box(n int) {
	sink(n) // want `argument n is boxed into interface`
}

// batch mimics the struct-of-arrays event batch: three parallel
// columns appended in lockstep.
type batch struct {
	t  []int64
	ue []uint32
	ty []uint8
}

// FillBatch is the batch-shaped hot function done right: it appends
// into caller-owned columns reset with col[:0], so the steady state is
// allocation-free. Reported clean.
//
//cplint:hotpath fixture
func (b *batch) FillBatch(ts []int64, ues []uint32, tys []uint8) {
	b.t = b.t[:0]
	b.ue = b.ue[:0]
	b.ty = b.ty[:0]
	for i := range ts {
		b.t = append(b.t, ts[i])
		b.ue = append(b.ue, ues[i])
		b.ty = append(b.ty, tys[i])
	}
}

// DrainBatch is the batch-shaped anti-pattern: fresh local columns per
// call, so every drain pays three growing allocations.
//
//cplint:hotpath fixture
func DrainBatch(n int) ([]int64, []uint32, []uint8) {
	var ts []int64
	var ues []uint32
	var tys []uint8
	for i := 0; i < n; i++ {
		ts = append(ts, int64(i))    // want `append grows ts, a slice freshly allocated`
		ues = append(ues, uint32(i)) // want `append grows ues, a slice freshly allocated`
		tys = append(tys, uint8(i))  // want `append grows tys, a slice freshly allocated`
	}
	return ts, ues, tys
}

// NotHot is Grow without the annotation: never checked.
func NotHot(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
