// Package trace is the buffer-reuse fixture stub: a miniature of the
// real columnar event batch, annotated //cplint:reused so the retain
// fixtures exercise the contract against the shape the pipeline uses.
// Fixture trees shadow the module, so the stub keeps the retain
// fixtures self-contained; its own methods double as the negative
// space (receiver-owned writes and copy idioms report clean).
package trace

// Event is one row gathered from the columns.
type Event struct {
	T    int64
	UE   uint32
	Type uint8
}

// Batch is the reused struct-of-arrays buffer: the scanner overwrites
// the columns after every callback.
//
//cplint:reused ScanBatches overwrites the columns after every callback; retained views read corrupted events
type Batch struct {
	T    []int64
	UE   []uint32
	Type []uint8
}

// Len returns the number of events in the batch.
func (b *Batch) Len() int { return len(b.T) }

// Reset empties the batch, keeping the column storage for reuse.
func (b *Batch) Reset() {
	b.T = b.T[:0]
	b.UE = b.UE[:0]
	b.Type = b.Type[:0]
}

// Append adds one event to the batch.
func (b *Batch) Append(e Event) {
	b.T = append(b.T, e.T)
	b.UE = append(b.UE, e.UE)
	b.Type = append(b.Type, e.Type)
}

// AppendTo appends the batch's events to dst in order and returns the
// extended slice — the sanctioned row-copy idiom.
func (b *Batch) AppendTo(dst []Event) []Event {
	for i := range b.T {
		dst = append(dst, Event{T: b.T[i], UE: b.UE[i], Type: b.Type[i]})
	}
	return dst
}

// CopyBatch returns an independent deep copy of b — the sanctioned
// column-copy idiom.
func CopyBatch(b *Batch) *Batch {
	return &Batch{
		T:    append([]int64(nil), b.T...),
		UE:   append([]uint32(nil), b.UE...),
		Type: append([]uint8(nil), b.Type...),
	}
}

// ScanBatches delivers the events to fn one batch at a time, reusing a
// single batch across calls — the contract the retain analyzer guards.
func ScanBatches(events []Event, fn func(*Batch) bool) {
	b := &Batch{}
	for _, e := range events {
		b.Reset()
		b.Append(e)
		if !fn(b) {
			return
		}
	}
}
