// Package cluster is the directive-hygiene fixture: malformed and
// misplaced //cplint: annotations, checked by explicit assertions in
// annotations_test.go (a directive occupies its whole line, so it
// cannot also carry a want comment).
package cluster

// MissingReason annotates a map range without saying why.
func MissingReason(m map[string]int, sink func(string)) {
	//cplint:ordered-ok
	for k := range m {
		sink(k)
	}
}

// WrongNode annotates a slice range: ordered-ok only applies to ranges
// over maps.
func WrongNode(xs []int) int {
	n := 0
	//cplint:ordered-ok this loop is not a map range
	for _, x := range xs {
		n += x
	}
	return n
}

//cplint:hotpath a type declaration is not a function
type NotAFunction struct{}

// Unknown carries a typo'd directive name.
func Unknown() int {
	//cplint:frobnicate whatever
	return 0
}
