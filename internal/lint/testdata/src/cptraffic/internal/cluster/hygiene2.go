// partial-ok hygiene: the directive shares the machine-checked rules
// of ordered-ok — a reason is mandatory, and the annotation must be
// attached to a site one of its owning analyzers recognizes.
package cluster

import "cptraffic/internal/cp"

// PartialNoReason suppresses a partial enum switch without saying why:
// the switch is not re-reported (the annotation attaches), but the
// missing justification is an error.
func PartialNoReason(e cp.EventType) int {
	//cplint:partial-ok
	switch e {
	case cp.Attach:
		return 1
	}
	return 0
}

//cplint:partial-ok a fine reason, attached to nothing an analyzer recognizes
var Unattached = 0
