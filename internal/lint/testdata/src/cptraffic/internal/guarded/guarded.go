// Package guarded is the guardedby fixture: fields annotated
// //cplint:guardedby <mutexField> may only be touched with the named
// sibling mutex held. Covered here: plain Lock/Unlock, defer Unlock,
// early-return paths, per-iteration locking, RWMutex read/write
// levels, the interprocedural entry-lock summary (helper reached both
// locked and unlocked is flagged with the unlocked chain named), func
// literals losing the held set, and the unguarded-ok escape.
package guarded

import "sync"

// A Counter is the basic contract: n only moves under mu.
type Counter struct {
	mu sync.Mutex
	n  int //cplint:guardedby mu
}

// Inc locks around the write: clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Get holds via defer to the return: clean.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Racy reads with no lock at all.
func (c *Counter) Racy() int {
	return c.n // want `field Counter\.n is guarded by mu \(//cplint:guardedby\), which is not held at this read`
}

// AfterUnlock reads after the lock is already gone.
func (c *Counter) AfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `field Counter\.n is guarded by mu \(//cplint:guardedby\), which is not held at this read`
}

// Branchy unlocks on the early-return path only: the fallthrough path
// still holds the lock at the read.
func (c *Counter) Branchy(flip bool) int {
	c.mu.Lock()
	if flip {
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// Drain locks per iteration: not held at the loop head, held at the
// access. Clean.
func (c *Counter) Drain(rounds int) int {
	total := 0
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		total += c.n
		c.mu.Unlock()
	}
	return total
}

// Spawn captures the counter in a literal that runs at an unknown
// time: the held set does not transfer into it.
func (c *Counter) Spawn() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `field Counter\.n is guarded by mu \(//cplint:guardedby\), which is not held at this read`
	}
}

// NewCounter builds unshared state: the composite literal is exempt by
// construction, and the follow-up write is a reasoned escape.
func NewCounter(seed int) *Counter {
	c := &Counter{n: seed}
	c.n = seed + 1 //cplint:unguarded-ok fixture: c is not shared until NewCounter returns
	return c
}

// A Store pairs locked entry points with unexported helpers: the
// entry-lock summary rides the call graph.
type Store struct {
	mu sync.Mutex
	m  map[string]int //cplint:guardedby mu
}

// Put locks, then delegates: put inherits the lock at this call site.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(k, v)
}

// put is reached locked (Put) and unlocked (Sloppy): the intersection
// gives it no entry credit, and the unlocked chain is named.
func (s *Store) put(k string, v int) {
	s.m[k] = v // want `field Store\.m is guarded by mu \(//cplint:guardedby\), which is not held at this write \[lock chain: Store\.Sloppy → Store\.put\]`
}

// Sloppy forgets the lock before delegating.
func (s *Store) Sloppy(k string, v int) {
	s.put(k, v)
}

// get is reached only with the lock held: entry credit keeps it clean.
func (s *Store) get(k string) int {
	return s.m[k]
}

// Get locks then delegates: clean end to end.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(k)
}

// A Gauge is the RWMutex contract: reads under RLock, writes under
// Lock.
type Gauge struct {
	mu sync.RWMutex
	v  int //cplint:guardedby mu
}

// Read under RLock: clean.
func (g *Gauge) Read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// Bump writes under only the read lock.
func (g *Gauge) Bump() {
	g.mu.RLock()
	g.v++ // want `field Gauge\.v is guarded by mu; this write needs mu\.Lock\(\), but only mu\.RLock\(\) is held`
	g.mu.RUnlock()
}

// Set under the write lock: clean.
func (g *Gauge) Set(x int) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}
