// Package cp is the enum fixture: a miniature of the real event and
// state vocabularies, declared at the import path the exhaustive
// analyzer treats as an enum home.
package cp

// EventType enumerates control-plane event kinds.
type EventType uint8

const (
	Attach EventType = iota
	Detach
	ServiceRequest
	Handover
)

// numEventTypes is untyped and must never count as an enum member.
const numEventTypes = 4

// UEState is the coarse per-UE state.
type UEState uint8

const (
	StateDeregistered UEState = iota
	StateConnected
	StateIdle
)

// Alone has a single member: too small to be an enum worth checking.
type Alone uint8

const OnlyValue Alone = 0
