package core

// Fit builds a model. fit.go is whitelisted: fitting mutates the model
// it is constructing, before generation can have compiled it.
func Fit(n int) *ModelSet {
	ms := &ModelSet{Machine: "LTE", Weights: map[string]float64{}}
	for i := 0; i < n; i++ {
		d := &DeviceModel{}
		d.Weight = float64(i)
		d.Hours = append(d.Hours, HourModel{})
		d.Hours[0].Rate = 1
		ms.Devices = append(ms.Devices, d)
	}
	return ms
}
