package core

// Rescale mutates a shared model in place: every write goes through
// storage the compiled-model cache may already depend on.
func Rescale(ms *ModelSet, f float64) {
	ms.Machine = "rescaled" // want `write to ms.Machine mutates ModelSet state`
	for _, d := range ms.Devices {
		d.Weight *= f // want `write to d.Weight mutates DeviceModel state`
	}
	ms.Devices[0].Hours[0].Rate = f // want `mutates HourModel state`
	ms.Weights["a"] = f             // want `mutates ModelSet state`
}

// CopyStruct mutates a value copy's scalar field: private storage.
func CopyStruct(d DeviceModel) DeviceModel {
	d.Weight = 0
	return d
}

// CopySliceField writes through a value copy's slice field: the
// backing array is still the shared model's.
func CopySliceField(d DeviceModel) {
	d.Hours[0].Rate = 0 // want `mutates HourModel state`
}

// Fresh builds and mutates its own model: construction, not mutation.
func Fresh() *ModelSet {
	ms := &ModelSet{Weights: map[string]float64{}}
	ms.Machine = "LTE"
	ms.Devices = append(ms.Devices, &DeviceModel{})
	ms.Weights["a"] = 1
	var d DeviceModel
	d.Hours = make([]HourModel, 1)
	d.Hours[0].Rate = 2
	ms.Devices[0] = &d
	return ms
}

// Rebind repoints a local variable: the model itself is untouched.
func Rebind(ms *ModelSet) *ModelSet {
	ms = Fit(1)
	return ms
}

// Annotated mutates with a justification attached.
func Annotated(ms *ModelSet) {
	//cplint:partial-ok fixture: caller guarantees generation has not started
	ms.Machine = "tuned"
}
