// Package core is the frozen fixture: a miniature of the real model
// family. model.go and fit.go carry the whitelisted basenames — they
// are the construction surface — while consume.go holds the writes the
// analyzer must judge.
package core

// ModelSet is the root of the frozen family.
type ModelSet struct {
	Machine string
	Devices []*DeviceModel
	Weights map[string]float64
}

// DeviceModel is reachable from ModelSet through an exported field.
type DeviceModel struct {
	Weight float64
	Hours  []HourModel
}

// HourModel is reachable through DeviceModel.
type HourModel struct {
	Rate float64
}

// Normalize mutates in place, but model.go is the construction
// surface: the codec repairs what it decodes before anyone generates.
func (ms *ModelSet) Normalize() {
	ms.Machine = "LTE"
}
