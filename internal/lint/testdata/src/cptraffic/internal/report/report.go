// Package report is the cross-package frozen fixture: it imports the
// model family and must treat it as read-only.
package report

import "cptraffic/internal/core"

// Normalize mutates the model it was handed.
func Normalize(ms *core.ModelSet) {
	ms.Machine = "norm" // want `write to ms.Machine mutates ModelSet state`
	for _, d := range ms.Devices {
		d.Weight /= 2 // want `write to d.Weight mutates DeviceModel state`
	}
}

// Build constructs a fresh model and may mutate it freely.
func Build() *core.ModelSet {
	ms := &core.ModelSet{Machine: "LTE"}
	ms.Devices = append(ms.Devices, &core.DeviceModel{Weight: 1})
	return ms
}

// Summarize only reads: never flagged.
func Summarize(ms *core.ModelSet) float64 {
	total := 0.0
	for _, d := range ms.Devices {
		total += d.Weight
	}
	return total
}
