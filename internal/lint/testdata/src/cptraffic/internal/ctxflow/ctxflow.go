// Package ctxflow is the ctxflow fixture: a function with a named
// context.Context parameter must pass that context (or a context.With*
// derivative of it) to context-accepting callees. A fresh
// context.Background()/TODO() below an entry point breaks the
// cancellation chain and is flagged — directly, and through With*
// derivation and variable assignment. Entry points (no context
// parameter) are exempt, and a deliberate detach takes a reasoned
// //cplint:detached-ok.
package ctxflow

import "context"

// store is a context-accepting sink.
func store(ctx context.Context, v int) { _, _ = ctx, v }

// fetch is a context-accepting source.
func fetch(ctx context.Context) int { _ = ctx; return 0 }

// Serve propagates the in-scope context and a derivative: clean.
func Serve(ctx context.Context) {
	store(ctx, 1)
	c2, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = fetch(c2)
}

// Launder swaps the caller's context for a fresh Background.
func Launder(ctx context.Context) {
	store(context.Background(), 1) // want `context\.Background\(\) passed to store while ctx is in scope: cancellation stops here`
}

// LaunderTODO does the same with TODO.
func LaunderTODO(ctx context.Context) {
	store(context.TODO(), 2) // want `context\.TODO\(\) passed to store while ctx is in scope: cancellation stops here`
}

// Derived launders through a With* chain and a variable: the taint
// follows the assignment.
func Derived(ctx context.Context) {
	c2, cancel := context.WithCancel(context.Background())
	defer cancel()
	store(c2, 3) // want `context derived from context\.Background\(\)/TODO\(\) passed to store while ctx is in scope`
}

// Entry has no context parameter: Background belongs here.
func Entry() {
	store(context.Background(), 4)
}

// Detach deliberately outlives the request, and says so.
func Detach(ctx context.Context) {
	store(context.Background(), 5) //cplint:detached-ok fixture: audit write must survive request cancellation
}

// Spawn shows a nested literal inheriting the enclosing scope.
func Spawn(ctx context.Context) {
	f := func() {
		store(context.Background(), 6) // want `context\.Background\(\) passed to store while ctx is in scope`
	}
	f()
}

// Rebound: a literal with its own context parameter rebinds the scope,
// and propagating the inner one is clean.
func Rebound(ctx context.Context) func(context.Context) {
	return func(inner context.Context) {
		store(inner, 7)
	}
}
